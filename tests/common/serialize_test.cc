#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace psi {
namespace {

TEST(SerializeTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0xbeef);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);

  BinaryReader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintRoundTripBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  BinaryWriter w;
  for (uint64_t v : values) w.WriteVarU64(v);
  BinaryReader r(w.buffer());
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(r.ReadVarU64(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintSizes) {
  auto size_of = [](uint64_t v) {
    BinaryWriter w;
    w.WriteVarU64(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  BinaryWriter w;
  w.WriteString("hello \xf0\x9f\x8c\x8d");
  w.WriteBytes({0, 255, 1, 254});
  w.WriteString("");

  BinaryReader r(w.buffer());
  std::string s1, s3;
  std::vector<uint8_t> b;
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadBytes(&b).ok());
  ASSERT_TRUE(r.ReadString(&s3).ok());
  EXPECT_EQ(s1, "hello \xf0\x9f\x8c\x8d");
  EXPECT_EQ(b, (std::vector<uint8_t>{0, 255, 1, 254}));
  EXPECT_TRUE(s3.empty());
}

TEST(SerializeTest, ReadPastEndFails) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer());
  uint64_t v;
  EXPECT_EQ(r.ReadU64(&v).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, TruncatedStringFails) {
  BinaryWriter w;
  w.WriteVarU64(100);  // Claims 100 bytes follow; none do.
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, MalformedVarintFails) {
  std::vector<uint8_t> bad(11, 0x80);  // Never terminates within 10 bytes.
  BinaryReader r(bad);
  uint64_t v;
  EXPECT_EQ(r.ReadVarU64(&v).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, RemainingTracksPosition) {
  BinaryWriter w;
  w.WriteU64(1);
  w.WriteU64(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 16u);
  uint64_t v;
  ASSERT_TRUE(r.ReadU64(&v).ok());
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(SerializeTest, TruncatedVarintFailsAtEveryCutPoint) {
  BinaryWriter w;
  w.WriteVarU64(std::numeric_limits<uint64_t>::max());  // 10-byte encoding.
  const auto& full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> cut(full.begin(),
                             full.begin() + static_cast<ptrdiff_t>(len));
    BinaryReader r(cut);
    uint64_t v;
    EXPECT_EQ(r.ReadVarU64(&v).code(), StatusCode::kSerializationError)
        << "len=" << len;
  }
}

TEST(SerializeTest, ReadCountRejectsImpossibleCounts) {
  // A one-byte buffer claiming 2^64 - 1 elements: ReadCount must reject it
  // without attempting any allocation.
  BinaryWriter w;
  w.WriteVarU64(std::numeric_limits<uint64_t>::max());
  w.WriteU8(0);
  BinaryReader r(w.buffer());
  uint64_t count;
  EXPECT_EQ(r.ReadCount(&count).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, ReadCountScalesByElementSize) {
  // 4 elements follow, 8 bytes each.
  BinaryWriter w;
  w.WriteVarU64(4);
  for (uint64_t i = 0; i < 4; ++i) w.WriteU64(i);

  {
    BinaryReader r(w.buffer());
    uint64_t count;
    ASSERT_TRUE(r.ReadCount(&count, /*min_bytes_per_element=*/8).ok());
    EXPECT_EQ(count, 4u);
  }
  {
    // The same prefix is impossible if each element needs at least 9 bytes.
    BinaryReader r(w.buffer());
    uint64_t count;
    EXPECT_EQ(r.ReadCount(&count, /*min_bytes_per_element=*/9).code(),
              StatusCode::kSerializationError);
  }
}

TEST(SerializeTest, ReadCountAcceptsExactFit) {
  BinaryWriter w;
  w.WriteVarU64(3);
  w.WriteRaw(reinterpret_cast<const uint8_t*>("abc"), 3);
  BinaryReader r(w.buffer());
  uint64_t count;
  ASSERT_TRUE(r.ReadCount(&count).ok());
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(SerializeTest, OverlongLengthPrefixOnBytesFails) {
  // Length prefix exceeds the remaining buffer by one byte.
  BinaryWriter w;
  w.WriteVarU64(5);
  w.WriteRaw(reinterpret_cast<const uint8_t*>("abcd"), 4);
  BinaryReader r(w.buffer());
  std::vector<uint8_t> out;
  EXPECT_EQ(r.ReadBytes(&out).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, EveryReadFailsCleanlyOnRandomTruncations) {
  // Build one buffer with every field type, then replay every possible
  // truncation. No read may succeed past the cut or touch memory out of
  // bounds (ASan job enforces the latter).
  BinaryWriter w;
  w.WriteU8(1);
  w.WriteU16(2);
  w.WriteU32(3);
  w.WriteU64(4);
  w.WriteVarU64(1u << 20);
  w.WriteString("payload");
  w.WriteBytes({9, 8, 7});
  const auto& full = w.buffer();

  for (size_t len = 0; len <= full.size(); ++len) {
    std::vector<uint8_t> cut(full.begin(),
                             full.begin() + static_cast<ptrdiff_t>(len));
    BinaryReader r(cut);
    uint8_t u8;
    uint16_t u16;
    uint32_t u32;
    uint64_t u64, var;
    std::string s;
    std::vector<uint8_t> b;
    Status st = r.ReadU8(&u8);
    if (st.ok()) st = r.ReadU16(&u16);
    if (st.ok()) st = r.ReadU32(&u32);
    if (st.ok()) st = r.ReadU64(&u64);
    if (st.ok()) st = r.ReadVarU64(&var);
    if (st.ok()) st = r.ReadString(&s);
    if (st.ok()) st = r.ReadBytes(&b);
    if (len < full.size()) {
      EXPECT_EQ(st.code(), StatusCode::kSerializationError) << "len=" << len;
    } else {
      EXPECT_TRUE(st.ok());
      EXPECT_TRUE(r.AtEnd());
    }
  }
}

TEST(SerializeTest, Crc32KnownVectors) {
  // The standard CRC-32 check value.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const char* a = "a";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(a), 1), 0xE8B7BE43u);
}

TEST(SerializeTest, Crc32DistinguishesNearbyBuffers) {
  std::vector<uint8_t> buf(64, 0x5a);
  uint32_t base = Crc32(buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    auto flipped = buf;
    flipped[i] ^= 1;
    EXPECT_NE(Crc32(flipped), base) << "byte " << i;
  }
}

TEST(SerializeTest, NegativeAndSpecialDoubles) {
  BinaryWriter w;
  w.WriteDouble(-0.0);
  w.WriteDouble(std::numeric_limits<double>::infinity());
  w.WriteDouble(1e-300);
  BinaryReader r(w.buffer());
  double a, b, c;
  ASSERT_TRUE(r.ReadDouble(&a).ok());
  ASSERT_TRUE(r.ReadDouble(&b).ok());
  ASSERT_TRUE(r.ReadDouble(&c).ok());
  EXPECT_EQ(a, 0.0);
  EXPECT_TRUE(std::signbit(a));
  EXPECT_TRUE(std::isinf(b));
  EXPECT_DOUBLE_EQ(c, 1e-300);
}

}  // namespace
}  // namespace psi
