#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace psi {
namespace {

TEST(SerializeTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0xbeef);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);

  BinaryReader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintRoundTripBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  BinaryWriter w;
  for (uint64_t v : values) w.WriteVarU64(v);
  BinaryReader r(w.buffer());
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(r.ReadVarU64(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintSizes) {
  auto size_of = [](uint64_t v) {
    BinaryWriter w;
    w.WriteVarU64(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  BinaryWriter w;
  w.WriteString("hello \xf0\x9f\x8c\x8d");
  w.WriteBytes({0, 255, 1, 254});
  w.WriteString("");

  BinaryReader r(w.buffer());
  std::string s1, s3;
  std::vector<uint8_t> b;
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadBytes(&b).ok());
  ASSERT_TRUE(r.ReadString(&s3).ok());
  EXPECT_EQ(s1, "hello \xf0\x9f\x8c\x8d");
  EXPECT_EQ(b, (std::vector<uint8_t>{0, 255, 1, 254}));
  EXPECT_TRUE(s3.empty());
}

TEST(SerializeTest, ReadPastEndFails) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer());
  uint64_t v;
  EXPECT_EQ(r.ReadU64(&v).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, TruncatedStringFails) {
  BinaryWriter w;
  w.WriteVarU64(100);  // Claims 100 bytes follow; none do.
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, MalformedVarintFails) {
  std::vector<uint8_t> bad(11, 0x80);  // Never terminates within 10 bytes.
  BinaryReader r(bad);
  uint64_t v;
  EXPECT_EQ(r.ReadVarU64(&v).code(), StatusCode::kSerializationError);
}

TEST(SerializeTest, RemainingTracksPosition) {
  BinaryWriter w;
  w.WriteU64(1);
  w.WriteU64(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 16u);
  uint64_t v;
  ASSERT_TRUE(r.ReadU64(&v).ok());
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(SerializeTest, NegativeAndSpecialDoubles) {
  BinaryWriter w;
  w.WriteDouble(-0.0);
  w.WriteDouble(std::numeric_limits<double>::infinity());
  w.WriteDouble(1e-300);
  BinaryReader r(w.buffer());
  double a, b, c;
  ASSERT_TRUE(r.ReadDouble(&a).ok());
  ASSERT_TRUE(r.ReadDouble(&b).ok());
  ASSERT_TRUE(r.ReadDouble(&c).ok());
  EXPECT_EQ(a, 0.0);
  EXPECT_TRUE(std::signbit(a));
  EXPECT_TRUE(std::isinf(b));
  EXPECT_DOUBLE_EQ(c, 1e-300);
}

}  // namespace
}  // namespace psi
