// Failure injection: deserializers must reject arbitrary adversarial bytes
// with a clean Status — never crash, hang, or over-allocate. (In the
// deployment model every message crosses an organizational boundary.)

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "bigint/biguint.h"
#include "common/random.h"
#include "common/serialize.h"

namespace psi {
namespace {

TEST(FuzzTest, BinaryReaderSurvivesRandomBytes) {
  Rng rng(0xf022);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.UniformU64(64));
    rng.FillBytes(junk.data(), junk.size());
    BinaryReader r(junk);
    // Drain with a random sequence of reads; every call must return
    // cleanly (ok or SerializationError).
    for (int op = 0; op < 8 && !r.AtEnd(); ++op) {
      switch (rng.UniformU64(6)) {
        case 0: {
          uint8_t v;
          (void)r.ReadU8(&v);
          break;
        }
        case 1: {
          uint64_t v;
          (void)r.ReadU64(&v);
          break;
        }
        case 2: {
          uint64_t v;
          (void)r.ReadVarU64(&v);
          break;
        }
        case 3: {
          double v;
          (void)r.ReadDouble(&v);
          break;
        }
        case 4: {
          std::string s;
          (void)r.ReadString(&s);
          break;
        }
        default: {
          std::vector<uint8_t> b;
          (void)r.ReadBytes(&b);
          break;
        }
      }
    }
  }
  SUCCEED();
}

TEST(FuzzTest, BigUIntReaderSurvivesRandomBytes) {
  Rng rng(0xabcd);
  size_t ok_count = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.UniformU64(48));
    rng.FillBytes(junk.data(), junk.size());
    BinaryReader r(junk);
    BigUInt v;
    if (ReadBigUInt(&r, &v).ok()) ++ok_count;
  }
  // Some random buffers decode (fine); none may crash.
  SUCCEED() << ok_count << " buffers happened to parse";
}

TEST(FuzzTest, BigUIntReaderRejectsHugeLimbClaims) {
  // A length prefix claiming 2^40 limbs must be rejected before allocation.
  BinaryWriter w;
  w.WriteVarU64(1ull << 40);
  BinaryReader r(w.buffer());
  BigUInt v;
  EXPECT_EQ(ReadBigUInt(&r, &v).code(), StatusCode::kSerializationError);
}

TEST(FuzzTest, BigIntReaderSurvivesRandomBytes) {
  Rng rng(0x7777);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.UniformU64(48));
    rng.FillBytes(junk.data(), junk.size());
    BinaryReader r(junk);
    BigInt v;
    (void)ReadBigInt(&r, &v);
  }
  SUCCEED();
}

TEST(FuzzTest, TruncationOfValidPayloadsDetected) {
  // Serialize a valid BigUInt, then truncate at every prefix length: every
  // truncation must fail cleanly (or, for the empty value, stay valid).
  Rng rng(0x9e37);
  BigUInt original = BigUInt::RandomBits(&rng, 300);
  BinaryWriter w;
  WriteBigUInt(&w, original);
  const auto& full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> prefix(full.begin(),
                                full.begin() + static_cast<ptrdiff_t>(len));
    BinaryReader r(prefix);
    BigUInt v;
    Status s = ReadBigUInt(&r, &v);
    if (s.ok()) {
      // A prefix can only parse to a *different* (shorter) value if the
      // length byte itself was cut; it must never reproduce the original.
      EXPECT_NE(v, original) << "truncated parse equals original at " << len;
    }
  }
}

}  // namespace
}  // namespace psi
