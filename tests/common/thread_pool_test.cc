#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace psi {
namespace {

// The global pool is shared process state; every test restores the default
// size so ordering between test cases does not matter.
class ThreadPoolTest : public ::testing::Test {
 protected:
  ~ThreadPoolTest() override { ThreadPool::Global().SetNumThreads(1); }
};

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool::Global().SetNumThreads(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST_F(ThreadPoolTest, ZeroAndOneIndexEdges) {
  ThreadPool::Global().SetNumThreads(4);
  size_t calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // n == 1 degrades to a plain call on the calling thread (no atomics
  // needed to observe it).
  ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST_F(ThreadPoolTest, ResultsMatchSerialForAnyThreadCount) {
  constexpr size_t kN = 513;  // Deliberately not a multiple of any pool size.
  std::vector<uint64_t> serial(kN);
  ThreadPool::Global().SetNumThreads(1);
  ParallelFor(kN, [&](size_t i) { serial[i] = i * i + 7; });
  for (size_t threads : {2u, 3u, 8u}) {
    ThreadPool::Global().SetNumThreads(threads);
    std::vector<uint64_t> parallel(kN);
    ParallelFor(kN, [&](size_t i) { parallel[i] = i * i + 7; });
    EXPECT_EQ(parallel, serial) << "threads " << threads;
  }
}

TEST_F(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool::Global().SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(64,
                    [&](size_t i) {
                      if (i == 13) throw std::runtime_error("boom");
                    }),
        std::runtime_error)
        << "threads " << threads;
  }
}

TEST_F(ThreadPoolTest, ExceptionDoesNotPoisonPool) {
  ThreadPool::Global().SetNumThreads(4);
  EXPECT_THROW(ParallelFor(8, [](size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  // The pool keeps working after an exceptional job.
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ThreadPoolTest, NestedCallsDegradeToSerial) {
  ThreadPool::Global().SetNumThreads(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  ParallelFor(16, [&](size_t outer) {
    // Inner loop must run inline on the worker, not deadlock on the pool.
    ParallelFor(16, [&](size_t inner) { hits[outer * 16 + inner].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ThreadPoolTest, ChunkCountDependsOnlyOnN) {
  EXPECT_EQ(ThreadPool::NumChunks(0), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(7), 7u);
  EXPECT_EQ(ThreadPool::NumChunks(ThreadPool::kMaxChunks), ThreadPool::kMaxChunks);
  EXPECT_EQ(ThreadPool::NumChunks(100000), ThreadPool::kMaxChunks);
  // Chunked slices tile [0, n) in order with identical boundaries for every
  // pool size — the invariant floating-point reductions rely on.
  constexpr size_t kN = 1000;
  std::vector<std::pair<size_t, size_t>> bounds_serial;
  ThreadPool::Global().SetNumThreads(1);
  {
    std::mutex mu;
    ParallelForChunked(kN, [&](size_t chunk, size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      bounds_serial.resize(std::max(bounds_serial.size(), chunk + 1));
      bounds_serial[chunk] = {begin, end};
    });
  }
  ThreadPool::Global().SetNumThreads(8);
  std::vector<std::pair<size_t, size_t>> bounds_parallel;
  {
    std::mutex mu;
    ParallelForChunked(kN, [&](size_t chunk, size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      bounds_parallel.resize(std::max(bounds_parallel.size(), chunk + 1));
      bounds_parallel[chunk] = {begin, end};
    });
  }
  EXPECT_EQ(bounds_parallel, bounds_serial);
  ASSERT_EQ(bounds_serial.size(), ThreadPool::NumChunks(kN));
  size_t expect_begin = 0;
  for (const auto& [begin, end] : bounds_serial) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LE(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, kN);
}

TEST_F(ThreadPoolTest, ParallelForStatusReportsLowestFailingIndex) {
  for (size_t threads : {1u, 8u}) {
    ThreadPool::Global().SetNumThreads(threads);
    Status s = ParallelForStatus(100, [](size_t i) -> Status {
      if (i == 30) return Status::InvalidArgument("first");
      if (i == 70) return Status::InvalidArgument("second");
      return Status::OK();
    });
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("first"), std::string::npos)
        << "threads " << threads << ": " << s.message();
  }
}

TEST_F(ThreadPoolTest, ParallelForStatusOkWhenAllSucceed) {
  ThreadPool::Global().SetNumThreads(4);
  std::vector<std::atomic<int>> hits(50);
  Status s = ParallelForStatus(50, [&](size_t i) -> Status {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ThreadPoolTest, SetNumThreadsClampsToAtLeastOne) {
  ThreadPool::Global().SetNumThreads(0);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
  size_t calls = 0;
  ParallelFor(5, [&](size_t) { ++calls; });  // Serial => plain counter is fine.
  EXPECT_EQ(calls, 5u);
}

}  // namespace
}  // namespace psi
