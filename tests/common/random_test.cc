#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stats.h"

namespace psi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsIndependentOfParentStream) {
  // A fork must not change the parent's subsequent output beyond the one
  // draw it consumes, and forks with different labels must differ.
  Rng parent1(7), parent2(7);
  Rng fork_a = parent1.Fork("a");
  Rng fork_b = parent2.Fork("b");
  EXPECT_NE(fork_a.NextU64(), fork_b.NextU64());
  // Parents continue identically after forking (same number of draws).
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent1.NextU64(), parent2.NextU64());
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(5);
  std::vector<uint64_t> buckets(16, 0);
  const int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.UniformU64(16)];
  // Chi-squared with 15 dof: 99.99th percentile ~ 44.3.
  EXPECT_LT(ChiSquaredUniform(buckets), 45.0);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformReal();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRealOpenNeverZeroOrOne) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformRealOpen();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRealMeanAndVariance) {
  Rng rng(19);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.UniformReal();
  EXPECT_NEAR(Mean(xs), 0.5, 0.01);
  EXPECT_NEAR(Variance(xs), 1.0 / 12.0, 0.005);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SampleZMatchesTheoreticalCdf) {
  // Z has CDF F(mu) = 1 - 1/mu on [1, inf): P(M <= 2) = 0.5, P(M <= 4) = .75.
  Rng rng(29);
  int le2 = 0, le4 = 0, le10 = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double m = rng.SampleZ();
    EXPECT_GE(m, 1.0);
    le2 += m <= 2.0;
    le4 += m <= 4.0;
    le10 += m <= 10.0;
  }
  EXPECT_NEAR(le2 / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(le4 / static_cast<double>(kDraws), 0.75, 0.01);
  EXPECT_NEAR(le10 / static_cast<double>(kDraws), 0.9, 0.01);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(31);
  auto perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, PermutationIsNotIdentityForLargeN) {
  Rng rng(37);
  auto perm = rng.Permutation(64);
  size_t fixed = 0;
  for (size_t i = 0; i < perm.size(); ++i) fixed += perm[i] == i;
  EXPECT_LT(fixed, 10u);  // Expected number of fixed points is 1.
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 2, 3, 5, 8, 13};
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, FillBytesDeterministic) {
  Rng a(55), b(55);
  std::vector<uint8_t> ba(1000), bb(1000);
  a.FillBytes(ba.data(), ba.size());
  b.FillBytes(bb.data(), bb.size());
  EXPECT_EQ(ba, bb);
}

TEST(RngTest, ByteStreamLooksUnbiased) {
  Rng rng(59);
  std::vector<uint8_t> bytes(1 << 16);
  rng.FillBytes(bytes.data(), bytes.size());
  std::vector<uint64_t> counts(256, 0);
  for (uint8_t b : bytes) ++counts[b];
  // 255 dof; the 99.99th percentile is ~ 341.
  EXPECT_LT(ChiSquaredUniform(counts), 350.0);
}

// Parameterized sweep: rejection sampling must be exact for awkward bounds.
class UniformBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniformBoundTest, AllResiduesReachable) {
  uint64_t bound = GetParam();
  Rng rng(bound * 2654435761u + 1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformU64(bound);
    ASSERT_LT(v, bound);
    if (bound <= 16) {
      seen.insert(v);
    }
  }
  if (bound <= 16) {
    EXPECT_EQ(seen.size(), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformBoundTest,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 1000,
                                           (1ull << 63) + 1));

TEST(RngStateTest, SaveAndLoadReproduceTheExactStream) {
  Rng rng(1234);
  for (int i = 0; i < 37; ++i) rng.NextU64();  // Mid-block cursor position.
  const std::vector<uint8_t> snapshot = rng.SaveState();
  ASSERT_EQ(snapshot.size(), Rng::kStateBytes);
  std::vector<uint64_t> expected(100);
  for (auto& v : expected) v = rng.NextU64();

  ASSERT_TRUE(rng.LoadState(snapshot).ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(rng.NextU64(), expected[i]) << "draw " << i;
  }

  // A fresh generator restored from the snapshot continues the same stream.
  Rng other(999);
  ASSERT_TRUE(other.LoadState(snapshot).ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(other.NextU64(), expected[i]) << "draw " << i;
  }
}

TEST(RngStateTest, LoadRejectsMalformedSnapshots) {
  Rng rng(7);
  std::vector<uint8_t> snapshot = rng.SaveState();

  std::vector<uint8_t> truncated(snapshot.begin(), snapshot.end() - 1);
  EXPECT_FALSE(rng.LoadState(truncated).ok());

  std::vector<uint8_t> oversized = snapshot;
  oversized.push_back(0);
  EXPECT_FALSE(rng.LoadState(oversized).ok());

  EXPECT_FALSE(rng.LoadState({}).ok());

  // A corrupt cursor (past the block buffer) must be rejected, not read
  // out of bounds. The cursor is the trailing u64.
  std::vector<uint8_t> bad_cursor = snapshot;
  for (size_t i = Rng::kStateBytes - 8; i < Rng::kStateBytes; ++i) {
    bad_cursor[i] = 0xFF;
  }
  EXPECT_FALSE(rng.LoadState(bad_cursor).ok());

  // After all the rejections the generator still works.
  ASSERT_TRUE(rng.LoadState(snapshot).ok());
  rng.NextU64();
}

}  // namespace
}  // namespace psi
