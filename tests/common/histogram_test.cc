#include "common/histogram.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(HistogramTest, BinsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.99);  // bin 9
  h.Add(5.0);   // bin 5
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OverflowAndUnderflow) {
  Histogram h(-1.0, 1.0, 4);
  h.Add(-2.0);
  h.Add(1.0);  // Right edge is exclusive -> overflow.
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, MeanIncludesAllSamples) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.0);
  h.Add(10.0);  // Overflow still counts toward the mean.
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(-3.0, 3.0, 6);
  auto [lo, hi] = h.bin_edges(0);
  EXPECT_DOUBLE_EQ(lo, -3.0);
  EXPECT_DOUBLE_EQ(hi, -2.0);
  auto [lo5, hi5] = h.bin_edges(5);
  EXPECT_DOUBLE_EQ(lo5, 2.0);
  EXPECT_DOUBLE_EQ(hi5, 3.0);
}

TEST(HistogramTest, AddAllMatchesIndividualAdds) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  std::vector<double> samples{0.1, 0.3, 0.3, 0.9, 0.5};
  for (double s : samples) a.Add(s);
  b.AddAll(samples);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(a.bin_count(i), b.bin_count(i));
}

TEST(HistogramTest, RenderContainsCountsAndBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.Add(0.5);
  h.Add(1.5);
  std::string render = h.Render(20);
  EXPECT_NE(render.find("10"), std::string::npos);
  EXPECT_NE(render.find("####"), std::string::npos);
}

TEST(HistogramTest, EmptyRenderDoesNotCrash) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_FALSE(h.Render().empty());
}

}  // namespace
}  // namespace psi
