#include "common/status.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ProtocolError("").code(), StatusCode::kProtocolError);
  EXPECT_EQ(Status::CryptoError("").code(), StatusCode::kCryptoError);
  EXPECT_EQ(Status::SerializationError("").code(),
            StatusCode::kSerializationError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PSI_ASSIGN_OR_RETURN(int h, Half(x));
  PSI_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagatesValues) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd at the second step.
  EXPECT_FALSE(Quarter(5).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Wrapper(int x) {
  PSI_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Wrapper(1).ok());
  EXPECT_EQ(Wrapper(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace psi
