#include "common/stats.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceIsUnbiasedSample) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
  // Sample variance of {1,2,3} is 1 (dividing by n-1 = 2).
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 2.0, 3.0}), 1.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatsTest, PercentileClampsP) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 2.0), 2.0);
}

TEST(StatsTest, PearsonCorrelationPerfectAndInverse) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateCases) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);      // Too short.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 2.0}, {3.0}), 0.0);  // Mismatch.
  // Constant series has zero variance.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(StatsTest, ChiSquaredUniformZeroForExactUniform) {
  EXPECT_DOUBLE_EQ(ChiSquaredUniform({10, 10, 10, 10}), 0.0);
}

TEST(StatsTest, ChiSquaredUniformGrowsWithSkew) {
  double mild = ChiSquaredUniform({12, 8, 10, 10});
  double heavy = ChiSquaredUniform({40, 0, 0, 0});
  EXPECT_GT(heavy, mild);
  EXPECT_GT(mild, 0.0);
}

TEST(StatsTest, ChiSquaredEmptyAndZeroTotals) {
  EXPECT_DOUBLE_EQ(ChiSquaredUniform({}), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredUniform({0, 0, 0}), 0.0);
}

}  // namespace
}  // namespace psi
