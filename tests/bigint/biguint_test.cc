#include "bigint/biguint.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psi {
namespace {

TEST(BigUIntTest, DefaultIsZero) {
  BigUInt v;
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.BitLength(), 0u);
  EXPECT_EQ(v.ToDecimalString(), "0");
  EXPECT_EQ(v.ToHexString(), "0");
}

TEST(BigUIntTest, SmallValueBasics) {
  BigUInt v(42);
  EXPECT_FALSE(v.IsZero());
  EXPECT_TRUE(v.IsEven());
  EXPECT_EQ(v.BitLength(), 6u);
  EXPECT_EQ(v.ToUint64().ValueOrDie(), 42u);
  EXPECT_EQ(v.ToDecimalString(), "42");
  EXPECT_EQ(v.ToHexString(), "2a");
}

TEST(BigUIntTest, AdditionWithCarryAcrossLimbs) {
  BigUInt max64(UINT64_MAX);
  BigUInt sum = max64 + BigUInt(1);
  EXPECT_EQ(sum.BitLength(), 65u);
  EXPECT_EQ(sum.ToHexString(), "10000000000000000");
  EXPECT_EQ(sum - BigUInt(1), max64);
}

TEST(BigUIntTest, SubtractionBorrowAcrossLimbs) {
  BigUInt big = BigUInt::PowerOfTwo(128);
  BigUInt r = big - BigUInt(1);
  EXPECT_EQ(r.BitLength(), 128u);
  EXPECT_EQ(r + BigUInt(1), big);
}

TEST(BigUIntTest, CheckedSubDetectsUnderflow) {
  auto r = BigUInt(3).CheckedSub(BigUInt(5));
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(BigUInt(5).CheckedSub(BigUInt(3)).ValueOrDie(), BigUInt(2));
}

TEST(BigUIntTest, MultiplicationKnownValues) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigUInt max64(UINT64_MAX);
  BigUInt sq = max64 * max64;
  BigUInt expected = BigUInt::PowerOfTwo(128) - BigUInt::PowerOfTwo(65) +
                     BigUInt(1);
  EXPECT_EQ(sq, expected);
  EXPECT_EQ(BigUInt(0) * max64, BigUInt(0));
  EXPECT_EQ(BigUInt(1) * max64, max64);
}

TEST(BigUIntTest, DecimalParseKnownValue) {
  auto v = BigUInt::FromDecimalString("340282366920938463463374607431768211456")
               .ValueOrDie();  // 2^128
  EXPECT_EQ(v, BigUInt::PowerOfTwo(128));
}

TEST(BigUIntTest, DecimalParseRejectsGarbage) {
  EXPECT_FALSE(BigUInt::FromDecimalString("").ok());
  EXPECT_FALSE(BigUInt::FromDecimalString("12a3").ok());
  EXPECT_FALSE(BigUInt::FromDecimalString("-5").ok());
}

TEST(BigUIntTest, HexParseRoundTrip) {
  auto v = BigUInt::FromHexString("deadbeefcafebabe0123456789").ValueOrDie();
  EXPECT_EQ(v.ToHexString(), "deadbeefcafebabe0123456789");
  EXPECT_FALSE(BigUInt::FromHexString("xyz").ok());
}

TEST(BigUIntTest, ShiftsMatchMultiplication) {
  BigUInt v(0x123456789abcdefull);
  EXPECT_EQ(v << 1, v * BigUInt(2));
  EXPECT_EQ(v << 64, v * BigUInt::PowerOfTwo(64));
  EXPECT_EQ(v << 100, v * BigUInt::PowerOfTwo(100));
  EXPECT_EQ((v << 100) >> 100, v);
  EXPECT_EQ(v >> 200, BigUInt(0));
  EXPECT_EQ(v >> 0, v);
}

TEST(BigUIntTest, GetSetBit) {
  BigUInt v;
  v.SetBit(200);
  EXPECT_EQ(v, BigUInt::PowerOfTwo(200));
  EXPECT_TRUE(v.GetBit(200));
  EXPECT_FALSE(v.GetBit(199));
  EXPECT_FALSE(v.GetBit(100000));
}

TEST(BigUIntTest, ComparisonOrdering) {
  BigUInt a(5), b(7), c = BigUInt::PowerOfTwo(64);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_GT(c, a);
  EXPECT_EQ(a, BigUInt(5));
  EXPECT_LE(a, a);
}

TEST(BigUIntTest, DivModSingleLimbDivisor) {
  auto v = BigUInt::FromDecimalString("123456789012345678901234567890")
               .ValueOrDie();
  BigUInt q, r;
  BigUInt::DivMod(v, BigUInt(97), &q, &r);
  EXPECT_EQ(q * BigUInt(97) + r, v);
  EXPECT_LT(r, BigUInt(97));
}

TEST(BigUIntTest, DivModMultiLimbKnownValue) {
  // (2^192 + 5) / (2^64 + 3)
  BigUInt num = BigUInt::PowerOfTwo(192) + BigUInt(5);
  BigUInt den = BigUInt::PowerOfTwo(64) + BigUInt(3);
  BigUInt q, r;
  BigUInt::DivMod(num, den, &q, &r);
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

TEST(BigUIntTest, DivModNumeratorSmallerThanDenominator) {
  BigUInt q, r;
  BigUInt::DivMod(BigUInt(5), BigUInt::PowerOfTwo(100), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r, BigUInt(5));
}

// The qhat-correction path of Knuth D triggers on specific patterns; this
// randomized sweep hits it reliably.
TEST(BigUIntTest, DivModRandomizedInvariant) {
  Rng rng(4242);
  for (int i = 0; i < 3000; ++i) {
    BigUInt a = BigUInt::RandomBits(&rng, 1 + rng.UniformU64(512));
    BigUInt b = BigUInt::RandomBits(&rng, 1 + rng.UniformU64(512));
    if (b.IsZero()) b = BigUInt(1);
    BigUInt q, r;
    BigUInt::DivMod(a, b, &q, &r);
    ASSERT_EQ(q * b + r, a);
    ASSERT_LT(r, b);
  }
}

TEST(BigUIntTest, DivModAddBackCase) {
  // Constructed to exercise the rare add-back branch: divisor with
  // maximum-value high limbs.
  BigUInt den = (BigUInt(UINT64_MAX) << 64) + BigUInt(UINT64_MAX);
  BigUInt num = (den << 64) - BigUInt(1);
  BigUInt q, r;
  BigUInt::DivMod(num, den, &q, &r);
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

TEST(BigUIntTest, DecimalRoundTripRandomized) {
  Rng rng(777);
  for (int i = 0; i < 200; ++i) {
    BigUInt v = BigUInt::RandomBits(&rng, 1 + rng.UniformU64(600));
    EXPECT_EQ(BigUInt::FromDecimalString(v.ToDecimalString()).ValueOrDie(), v);
  }
}

TEST(BigUIntTest, BytesRoundTrip) {
  Rng rng(888);
  for (int i = 0; i < 100; ++i) {
    BigUInt v = BigUInt::RandomBits(&rng, 1 + rng.UniformU64(300));
    EXPECT_EQ(BigUInt::FromLittleEndianBytes(v.ToLittleEndianBytes()), v);
  }
  EXPECT_TRUE(BigUInt::FromLittleEndianBytes({}).IsZero());
}

TEST(BigUIntTest, ToUint64Overflow) {
  EXPECT_TRUE(BigUInt(UINT64_MAX).ToUint64().ok());
  EXPECT_EQ(BigUInt::PowerOfTwo(64).ToUint64().status().code(),
            StatusCode::kOutOfRange);
}

TEST(BigUIntTest, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(BigUInt(0).ToDouble(), 0.0);
  EXPECT_DOUBLE_EQ(BigUInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigUInt::PowerOfTwo(100).ToDouble(), std::ldexp(1.0, 100));
  // Relative error of top-64-bit truncation is < 2^-52.
  BigUInt v = BigUInt::FromDecimalString("98765432109876543210987654321")
                  .ValueOrDie();
  double expected = 9.8765432109876543210987654321e28;
  EXPECT_NEAR(v.ToDouble() / expected, 1.0, 1e-12);
}

TEST(BigUIntTest, DivideToDoubleExactness) {
  EXPECT_DOUBLE_EQ(DivideToDouble(BigUInt(1), BigUInt(2)), 0.5);
  EXPECT_DOUBLE_EQ(DivideToDouble(BigUInt(0), BigUInt(9)), 0.0);
  EXPECT_DOUBLE_EQ(DivideToDouble(BigUInt(9), BigUInt(0)), 0.0);  // Convention.
  // Huge operands with a small exact ratio.
  BigUInt a = BigUInt::PowerOfTwo(300) * BigUInt(3);
  BigUInt b = BigUInt::PowerOfTwo(300) * BigUInt(4);
  EXPECT_DOUBLE_EQ(DivideToDouble(a, b), 0.75);
}

TEST(BigUIntTest, BigUIntFromDoubleValues) {
  EXPECT_TRUE(BigUIntFromDouble(0.0).ValueOrDie().IsZero());
  EXPECT_TRUE(BigUIntFromDouble(0.999).ValueOrDie().IsZero());
  EXPECT_EQ(BigUIntFromDouble(1.0).ValueOrDie(), BigUInt(1));
  EXPECT_EQ(BigUIntFromDouble(123.99).ValueOrDie(), BigUInt(123));
  EXPECT_EQ(BigUIntFromDouble(std::ldexp(1.0, 100)).ValueOrDie(),
            BigUInt::PowerOfTwo(100));
  EXPECT_FALSE(BigUIntFromDouble(-1.0).ok());
  EXPECT_FALSE(BigUIntFromDouble(std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(BigUIntFromDouble(std::nan("")).ok());
}

TEST(BigUIntTest, RandomBelowStaysInRangeAndCoversIt) {
  Rng rng(999);
  BigUInt bound(10);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 2000; ++i) {
    BigUInt v = BigUInt::RandomBelow(&rng, bound);
    ASSERT_LT(v, bound);
    ++seen[v.ToUint64().ValueOrDie()];
  }
  for (int count : seen) EXPECT_GT(count, 100);  // ~200 expected each.
}

TEST(BigUIntTest, RandomBitsExactWidthDistribution) {
  Rng rng(1001);
  for (int i = 0; i < 50; ++i) {
    BigUInt v = BigUInt::RandomBits(&rng, 130);
    EXPECT_LE(v.BitLength(), 130u);
  }
}

TEST(BigUIntTest, SerializationRoundTrip) {
  Rng rng(1003);
  BinaryWriter w;
  std::vector<BigUInt> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(BigUInt::RandomBits(&rng, rng.UniformU64(400)));
    WriteBigUInt(&w, values.back());
  }
  BinaryReader r(w.buffer());
  for (const auto& expected : values) {
    BigUInt v;
    ASSERT_TRUE(ReadBigUInt(&r, &v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BigUIntTest, SerializedSizeMatchesActual) {
  Rng rng(1005);
  for (int i = 0; i < 50; ++i) {
    BigUInt v = BigUInt::RandomBits(&rng, rng.UniformU64(1000));
    BinaryWriter w;
    WriteBigUInt(&w, v);
    EXPECT_EQ(w.size(), v.SerializedSize());
  }
}

// Associativity / distributivity spot checks over random operands.
TEST(BigUIntTest, AlgebraicIdentities) {
  Rng rng(1007);
  for (int i = 0; i < 200; ++i) {
    BigUInt a = BigUInt::RandomBits(&rng, 200);
    BigUInt b = BigUInt::RandomBits(&rng, 180);
    BigUInt c = BigUInt::RandomBits(&rng, 160);
    ASSERT_EQ((a + b) + c, a + (b + c));
    ASSERT_EQ(a * (b + c), a * b + a * c);
    ASSERT_EQ((a + b) * c, c * a + c * b);
  }
}

TEST(BigUIntTest, KaratsubaMatchesSchoolbookProducts) {
  // Operand sizes straddle the Karatsuba threshold (32 limbs = 2048 bits).
  Rng rng(1009);
  for (size_t bits : {1000u, 2000u, 3000u, 5000u, 9000u}) {
    BigUInt a = BigUInt::RandomBits(&rng, bits);
    BigUInt b = BigUInt::RandomBits(&rng, bits + 171);
    BigUInt p = a * b;
    if (!b.IsZero()) {
      EXPECT_EQ(p / b, a);
      EXPECT_TRUE((p % b).IsZero());
    }
  }
}

}  // namespace
}  // namespace psi
