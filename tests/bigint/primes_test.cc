#include "bigint/primes.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"

namespace psi {
namespace {

TEST(PrimesTest, SmallPrimesClassifiedCorrectly) {
  Rng rng(1);
  const uint64_t primes[] = {2, 3, 5, 7, 11, 13, 97, 101, 997, 7919};
  const uint64_t composites[] = {0, 1, 4, 6, 9, 15, 91, 561, 1001, 7917};
  for (uint64_t p : primes) EXPECT_TRUE(IsProbablePrime(BigUInt(p), &rng));
  for (uint64_t c : composites) {
    EXPECT_FALSE(IsProbablePrime(BigUInt(c), &rng)) << c;
  }
}

TEST(PrimesTest, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  Rng rng(2);
  for (uint64_t c : {561ull, 1105ull, 1729ull, 2465ull, 2821ull, 6601ull,
                     8911ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(BigUInt(c), &rng)) << c;
  }
}

TEST(PrimesTest, KnownLargePrimes) {
  Rng rng(3);
  // 2^127 - 1 (Mersenne) and 2^255 - 19 (Curve25519 field prime).
  auto m127 = BigUInt::PowerOfTwo(127) - BigUInt(1);
  auto ed = BigUInt::PowerOfTwo(255) - BigUInt(19);
  EXPECT_TRUE(IsProbablePrime(m127, &rng));
  EXPECT_TRUE(IsProbablePrime(ed, &rng));
  EXPECT_FALSE(IsProbablePrime(m127 * BigUInt(3), &rng));
}

TEST(PrimesTest, KnownLargeComposite) {
  Rng rng(4);
  // 2^128 + 1 is composite (= 59649589127497217 * 5704689200685129054721).
  EXPECT_FALSE(IsProbablePrime(BigUInt::PowerOfTwo(128) + BigUInt(1), &rng));
}

TEST(PrimesTest, RandomPrimeHasExactBitLengthAndIsOdd) {
  Rng rng(5);
  for (size_t bits : {64u, 128u, 256u}) {
    BigUInt p = RandomPrime(&rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, &rng));
    // Second-highest bit set (RSA sizing invariant).
    EXPECT_TRUE(p.GetBit(bits - 2));
  }
}

TEST(PrimesTest, ProductOfSizedPrimesHasFullLength) {
  Rng rng(6);
  BigUInt p = RandomPrime(&rng, 128);
  BigUInt q = RandomPrime(&rng, 128);
  EXPECT_EQ((p * q).BitLength(), 256u);
}

TEST(PrimesTest, NextPrimeBehaviour) {
  Rng rng(7);
  EXPECT_EQ(NextPrime(BigUInt(0), &rng), BigUInt(2));
  EXPECT_EQ(NextPrime(BigUInt(2), &rng), BigUInt(2));
  EXPECT_EQ(NextPrime(BigUInt(8), &rng), BigUInt(11));
  EXPECT_EQ(NextPrime(BigUInt(14), &rng), BigUInt(17));
  EXPECT_EQ(NextPrime(BigUInt(7919), &rng), BigUInt(7919));
  EXPECT_EQ(NextPrime(BigUInt(7920), &rng), BigUInt(7927));
}

TEST(PrimesTest, GeneratedPrimesAreDistinct) {
  Rng rng(8);
  BigUInt a = RandomPrime(&rng, 96);
  BigUInt b = RandomPrime(&rng, 96);
  EXPECT_NE(a, b);  // Collision probability is negligible.
}

TEST(PrimesTest, FermatHoldsForGeneratedPrime) {
  Rng rng(9);
  BigUInt p = RandomPrime(&rng, 160);
  for (int i = 0; i < 10; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, p - BigUInt(2)) + BigUInt(2);
    EXPECT_TRUE(ModPow(a, p - BigUInt(1), p).IsOne());
  }
}

}  // namespace
}  // namespace psi
