// Differential tests for the fixed-width big-integer engine: every
// FixedUInt / limb-kernel / FixedMontEngine operation is checked limb for
// limb against the heap BigUInt path across all instantiated widths
// (4/8/16/32/64 limbs), on random operands and on the edge operands the
// kernels are most likely to get wrong (0, 1, modulus-1, values straddling
// R). A separate case pins the portable and x86 kernel variants to
// identical limbs, so runtime dispatch can never change a transcript.

#include "bigint/fixed_uint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bigint/fixed_mont.h"
#include "bigint/limb_kernel.h"
#include "bigint/modular.h"
#include "bigint/montgomery.h"
#include "common/random.h"
#include "crypto/paillier.h"

namespace psi {
namespace {

#if PSI_LIMB_KERNEL_X86
// -n^-1 mod 2^64 by Newton-Hensel, as MontgomeryContext computes it. Only
// the portable-vs-x86 kernel comparison needs it; the portable-only build
// compiles that test body out.
uint64_t NPrime(const BigUInt& n) {
  const uint64_t odd = n.limb(0);
  uint64_t x = odd;
  for (int i = 0; i < 6; ++i) x *= 2 - odd * x;
  return ~x + 1;
}
#endif  // PSI_LIMB_KERNEL_X86

// A random odd modulus of exactly `limbs` limbs (top bit set).
BigUInt RandomModulus(Rng* rng, size_t limbs) {
  BigUInt m = BigUInt::RandomBits(rng, limbs * 64);
  m.SetBit(limbs * 64 - 1);
  m.SetBit(0);
  return m;
}

template <size_t L>
void CheckAddSubMul(Rng* rng) {
  const BigUInt truncator = BigUInt(1) << (L * 64);
  for (int trial = 0; trial < 50; ++trial) {
    BigUInt a = BigUInt::RandomBits(rng, L * 64);
    BigUInt b = BigUInt::RandomBits(rng, L * 64);
    const auto fa = FixedUInt<L>::FromBigUInt(a);
    const auto fb = FixedUInt<L>::FromBigUInt(b);

    FixedUInt<L> sum;
    const uint64_t carry = FixedUInt<L>::Add(fa, fb, &sum);
    const BigUInt want_sum = a + b;
    EXPECT_EQ(sum.ToBigUInt(), want_sum % truncator) << "width " << L;
    EXPECT_EQ(carry, want_sum >= truncator ? 1u : 0u) << "width " << L;

    FixedUInt<L> diff;
    const uint64_t borrow = FixedUInt<L>::Sub(fa, fb, &diff);
    if (a >= b) {
      EXPECT_EQ(diff.ToBigUInt(), a - b) << "width " << L;
      EXPECT_EQ(borrow, 0u) << "width " << L;
    } else {
      EXPECT_EQ(diff.ToBigUInt(), truncator - (b - a)) << "width " << L;
      EXPECT_EQ(borrow, 1u) << "width " << L;
    }

    FixedUInt<2 * L> prod;
    FixedUInt<L>::MulFull(fa, fb, &prod);
    EXPECT_EQ(prod.ToBigUInt(), a * b) << "width " << L;

    EXPECT_EQ(FixedUInt<L>::Compare(fa, fb), a < b ? -1 : (a == b ? 0 : 1));
  }
  // Edge operands: zero and all-ones.
  const auto zero = FixedUInt<L>();
  auto ones = FixedUInt<L>::FromBigUInt(truncator - BigUInt(1));
  FixedUInt<L> out;
  EXPECT_EQ(FixedUInt<L>::Add(ones, ones, &out), 1u);
  EXPECT_EQ(out.ToBigUInt(), truncator - BigUInt(2));
  EXPECT_EQ(FixedUInt<L>::Sub(zero, ones, &out), 1u);
  EXPECT_EQ(out.ToBigUInt(), BigUInt(1));
  FixedUInt<2 * L> sq;
  FixedUInt<L>::MulFull(ones, ones, &sq);
  const BigUInt max = truncator - BigUInt(1);
  EXPECT_EQ(sq.ToBigUInt(), max * max);
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(ones.IsZero());
}

TEST(FixedUIntTest, AddSubMulMatchBigUIntAllWidths) {
  Rng rng(71);
  CheckAddSubMul<4>(&rng);
  CheckAddSubMul<8>(&rng);
  CheckAddSubMul<16>(&rng);
  CheckAddSubMul<32>(&rng);
  CheckAddSubMul<64>(&rng);
}

TEST(FixedUIntTest, RoundTripAndFits) {
  Rng rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    BigUInt v = BigUInt::RandomBits(&rng, 8 * 64);
    ASSERT_TRUE(FixedUInt<8>::Fits(v));
    EXPECT_EQ(FixedUInt<8>::FromBigUInt(v).ToBigUInt(), v);
    EXPECT_TRUE(FixedUInt<16>::Fits(v));
  }
  const BigUInt wide = BigUInt(1) << (9 * 64);
  EXPECT_FALSE(FixedUInt<8>::Fits(wide));
}

// The operand set MontMul differentials sweep: random residues plus the
// boundary values (0, 1, n-1) and values straddling R mod n (Montgomery 1
// plus/minus small deltas, where the conditional-subtract decision flips).
std::vector<BigUInt> EdgeResidues(Rng* rng, const BigUInt& n,
                                  const BigUInt& r_mod_n) {
  std::vector<BigUInt> v;
  v.push_back(BigUInt(0));
  v.push_back(BigUInt(1));
  v.push_back(n - BigUInt(1));
  v.push_back(r_mod_n);
  v.push_back((r_mod_n + BigUInt(1)) % n);
  v.push_back((r_mod_n + n - BigUInt(1)) % n);
  for (int i = 0; i < 4; ++i) v.push_back(BigUInt::RandomBelow(rng, n));
  return v;
}

template <size_t L>
void CheckMontgomeryDifferential(Rng* rng) {
  const BigUInt n = RandomModulus(rng, L);
  auto fixed = MontgomeryContext::Create(n).ValueOrDie();
  auto heap = MontgomeryContext::Create(n, EngineMode::kHeapOnly).ValueOrDie();
  ASSERT_NE(fixed.fixed_engine(), nullptr) << "width " << L;
  ASSERT_EQ(heap.fixed_engine(), nullptr) << "width " << L;
  ASSERT_EQ(fixed.fixed_engine()->limbs(), L);

  const auto operands = EdgeResidues(rng, n, fixed.OneMontgomery());
  for (const BigUInt& a : operands) {
    EXPECT_EQ(fixed.ToMontgomery(a), heap.ToMontgomery(a)) << "width " << L;
    EXPECT_EQ(fixed.FromMontgomery(a), heap.FromMontgomery(a))
        << "width " << L;
    for (const BigUInt& b : operands) {
      EXPECT_EQ(fixed.Multiply(a, b), heap.Multiply(a, b)) << "width " << L;
    }
  }

  // Pow: random exponents plus degenerate ones.
  std::vector<BigUInt> exps{BigUInt(0), BigUInt(1), BigUInt(2),
                            n - BigUInt(1),
                            BigUInt::RandomBits(rng, L * 64),
                            BigUInt::RandomBits(rng, 17)};
  for (const BigUInt& base : operands) {
    for (const BigUInt& e : exps) {
      EXPECT_EQ(fixed.Pow(base, e), heap.Pow(base, e))
          << "width " << L << " base " << base.ToHexString();
    }
  }
}

TEST(FixedUIntTest, MontgomeryEngineMatchesHeapAllWidths) {
  Rng rng(73);
  CheckMontgomeryDifferential<4>(&rng);
  CheckMontgomeryDifferential<8>(&rng);
  CheckMontgomeryDifferential<16>(&rng);
  CheckMontgomeryDifferential<32>(&rng);
  CheckMontgomeryDifferential<64>(&rng);
}

TEST(FixedUIntTest, EngineAttachesOnlyOnExactWidthMatch) {
  Rng rng(74);
  // 5 limbs is not an instantiated geometry; 4 is.
  auto odd_width = MontgomeryContext::Create(RandomModulus(&rng, 5));
  ASSERT_TRUE(odd_width.ok());
  EXPECT_EQ(odd_width.ValueOrDie().fixed_engine(), nullptr);
  auto matching = MontgomeryContext::Create(RandomModulus(&rng, 4));
  ASSERT_TRUE(matching.ok());
  EXPECT_NE(matching.ValueOrDie().fixed_engine(), nullptr);
}

template <size_t L>
void CheckKernelVariantsAgree(Rng* rng) {
#if PSI_LIMB_KERNEL_X86
  if (!limb_kernel::X86KernelsAvailable()) GTEST_SKIP();
  const BigUInt n = RandomModulus(rng, L);
  const uint64_t n0 = NPrime(n);
  const auto fn = FixedUInt<L>::FromBigUInt(n);
  for (int trial = 0; trial < 30; ++trial) {
    BigUInt a = BigUInt::RandomBelow(rng, n);
    BigUInt b = trial == 0 ? n - BigUInt(1) : BigUInt::RandomBelow(rng, n);
    const auto fa = FixedUInt<L>::FromBigUInt(a);
    const auto fb = FixedUInt<L>::FromBigUInt(b);
    uint64_t portable[L], x86[L];
    limb_kernel::MontMulFixedPortable<L>(fa.data(), fb.data(), fn.data(), n0,
                                         portable);
    limb_kernel::MontMulFixedX86<L>(fa.data(), fb.data(), fn.data(), n0, x86);
    ASSERT_EQ(std::memcmp(portable, x86, sizeof(portable)), 0)
        << "width " << L << " trial " << trial;

    uint64_t mul_p[2 * L] = {};
    uint64_t mul_x[2 * L] = {};
    limb_kernel::MulPortable(fa.data(), L, fb.data(), L, mul_p);
    limb_kernel::MulX86(fa.data(), L, fb.data(), L, mul_x);
    ASSERT_EQ(std::memcmp(mul_p, mul_x, sizeof(mul_p)), 0) << "width " << L;
  }
#else
  (void)rng;
  GTEST_SKIP() << "x86 kernels not compiled in";
#endif
}

TEST(FixedUIntTest, PortableAndX86KernelsProduceIdenticalLimbs) {
  Rng rng(75);
  CheckKernelVariantsAgree<4>(&rng);
  CheckKernelVariantsAgree<8>(&rng);
  CheckKernelVariantsAgree<16>(&rng);
  CheckKernelVariantsAgree<32>(&rng);
  CheckKernelVariantsAgree<64>(&rng);
}

TEST(FixedUIntTest, ScopedHeapOnlyModPowMatchesEnginePath) {
  Rng rng(76);
  const BigUInt n = RandomModulus(&rng, 8);
  const BigUInt base = BigUInt::RandomBelow(&rng, n);
  const BigUInt exp = BigUInt::RandomBits(&rng, 512);
  const BigUInt with_engine = ModPow(base, exp, n);
  {
    ScopedHeapOnlyModPow heap_only;
    auto ctx = MontgomeryContext::Create(n).ValueOrDie();
    EXPECT_EQ(ctx.fixed_engine(), nullptr)
        << "guard must force heap contexts even under EngineMode::kAuto";
    EXPECT_EQ(ModPow(base, exp, n), with_engine);
  }
  // Engine path restored after the guard dies.
  auto ctx = MontgomeryContext::Create(n).ValueOrDie();
  EXPECT_NE(ctx.fixed_engine(), nullptr);
  EXPECT_EQ(ModPow(base, exp, n), with_engine);
}

TEST(FixedUIntTest, PaillierDecryptMatchesUnderHeapGuard) {
  Rng rng(77);
  auto kp = PaillierGenerateKeyPair(&rng, 256).ValueOrDie();
  const BigUInt m(123456789u);
  const BigUInt c = PaillierEncrypt(kp.public_key, m, &rng).ValueOrDie();
  const BigUInt fast = PaillierDecryptCrt(kp.private_key, c).ValueOrDie();
  EXPECT_EQ(fast, m);
  {
    ScopedHeapOnlyModPow heap_only;
    EXPECT_EQ(PaillierDecryptCrt(kp.private_key, c).ValueOrDie(), fast);
    EXPECT_EQ(PaillierDecrypt(kp.private_key, c).ValueOrDie(), fast);
  }
}

}  // namespace
}  // namespace psi
