#include "bigint/bigint.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(BigIntTest, ConstructionFromNative) {
  EXPECT_TRUE(BigInt(0).IsZero());
  EXPECT_FALSE(BigInt(0).IsNegative());
  EXPECT_FALSE(BigInt(5).IsNegative());
  EXPECT_TRUE(BigInt(-5).IsNegative());
  EXPECT_EQ(BigInt(INT64_MIN).ToInt64().ValueOrDie(), INT64_MIN);
  EXPECT_EQ(BigInt(INT64_MAX).ToInt64().ValueOrDie(), INT64_MAX);
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  BigInt z(BigUInt(0), /*negative=*/true);
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z, BigInt(0));
  EXPECT_EQ(-BigInt(0), BigInt(0));
}

TEST(BigIntTest, AdditionSignCombinations) {
  EXPECT_EQ(BigInt(3) + BigInt(4), BigInt(7));
  EXPECT_EQ(BigInt(-3) + BigInt(-4), BigInt(-7));
  EXPECT_EQ(BigInt(10) + BigInt(-4), BigInt(6));
  EXPECT_EQ(BigInt(4) + BigInt(-10), BigInt(-6));
  EXPECT_EQ(BigInt(-4) + BigInt(4), BigInt(0));
}

TEST(BigIntTest, SubtractionSignCombinations) {
  EXPECT_EQ(BigInt(3) - BigInt(10), BigInt(-7));
  EXPECT_EQ(BigInt(-3) - BigInt(-10), BigInt(7));
  EXPECT_EQ(BigInt(-3) - BigInt(10), BigInt(-13));
  EXPECT_EQ(BigInt(3) - BigInt(-10), BigInt(13));
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ(BigInt(3) * BigInt(-4), BigInt(-12));
  EXPECT_EQ(BigInt(-3) * BigInt(-4), BigInt(12));
  EXPECT_EQ(BigInt(-3) * BigInt(0), BigInt(0));
}

TEST(BigIntTest, TruncatedDivisionMatchesCpp) {
  // C++ semantics: -17 / 5 == -3, -17 % 5 == -2.
  EXPECT_EQ(BigInt(-17) / BigInt(5), BigInt(-3));
  EXPECT_EQ(BigInt(-17) % BigInt(5), BigInt(-2));
  EXPECT_EQ(BigInt(17) / BigInt(-5), BigInt(-3));
  EXPECT_EQ(BigInt(17) % BigInt(-5), BigInt(2));
  EXPECT_EQ(BigInt(-17) / BigInt(-5), BigInt(3));
}

TEST(BigIntTest, DivisionIdentityRandomized) {
  Rng rng(31337);
  for (int i = 0; i < 500; ++i) {
    BigInt a(BigUInt::RandomBits(&rng, 150), rng.Bernoulli(0.5));
    BigInt b(BigUInt::RandomBits(&rng, 100), rng.Bernoulli(0.5));
    if (b.IsZero()) b = BigInt(1);
    ASSERT_EQ((a / b) * b + (a % b), a);
  }
}

TEST(BigIntTest, Ordering) {
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(-3), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(2));
  EXPECT_LT(BigInt(-100), BigInt(100));
  EXPECT_GT(BigInt(-3), BigInt(-5));
}

TEST(BigIntTest, ModProducesCanonicalResidue) {
  BigUInt m(7);
  EXPECT_EQ(BigInt(10).Mod(m), BigUInt(3));
  EXPECT_EQ(BigInt(-10).Mod(m), BigUInt(4));
  EXPECT_EQ(BigInt(-7).Mod(m), BigUInt(0));
  EXPECT_EQ(BigInt(0).Mod(m), BigUInt(0));
}

TEST(BigIntTest, ModMatchesReconstruction) {
  // The share-correction invariant: (s2 - S) mod S == s2 mod S.
  BigUInt s = BigUInt::PowerOfTwo(80);
  BigInt s2(BigUInt(12345));
  BigInt corrected = s2 - BigInt(s);
  EXPECT_TRUE(corrected.IsNegative());
  EXPECT_EQ(corrected.Mod(s), BigUInt(12345));
}

TEST(BigIntTest, DecimalStrings) {
  EXPECT_EQ(BigInt(-123).ToDecimalString(), "-123");
  EXPECT_EQ(BigInt(0).ToDecimalString(), "0");
  auto parsed = BigInt::FromDecimalString("-98765432109876543210").ValueOrDie();
  EXPECT_EQ(parsed.ToDecimalString(), "-98765432109876543210");
  EXPECT_FALSE(BigInt::FromDecimalString("--3").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("-").ok());
}

TEST(BigIntTest, ToInt64Bounds) {
  EXPECT_FALSE(BigInt(BigUInt::PowerOfTwo(63)).ToInt64().ok());
  EXPECT_EQ(BigInt(BigUInt::PowerOfTwo(63), true).ToInt64().ValueOrDie(),
            INT64_MIN);
  EXPECT_FALSE(
      (BigInt(BigUInt::PowerOfTwo(63), true) - BigInt(1)).ToInt64().ok());
}

TEST(BigIntTest, ToDoubleSigned) {
  EXPECT_DOUBLE_EQ(BigInt(-12345).ToDouble(), -12345.0);
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
}

TEST(BigIntTest, SerializationRoundTrip) {
  Rng rng(31339);
  BinaryWriter w;
  std::vector<BigInt> values;
  for (int i = 0; i < 50; ++i) {
    values.emplace_back(BigUInt::RandomBits(&rng, rng.UniformU64(200)),
                        rng.Bernoulli(0.5));
    WriteBigInt(&w, values.back());
  }
  BinaryReader r(w.buffer());
  for (const auto& expected : values) {
    BigInt v;
    ASSERT_TRUE(ReadBigInt(&r, &v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(BigIntTest, SerializationRejectsBadSignByte) {
  std::vector<uint8_t> bad{7, 0};
  BinaryReader r(bad);
  BigInt v;
  EXPECT_EQ(ReadBigInt(&r, &v).code(), StatusCode::kSerializationError);
}

}  // namespace
}  // namespace psi
