#include "bigint/montgomery.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"
#include "bigint/primes.h"

namespace psi {
namespace {

// Generic reference modpow (no Montgomery routing).
BigUInt ReferencePow(const BigUInt& base, const BigUInt& exp,
                     const BigUInt& m) {
  BigUInt result(1);
  BigUInt b = base % m;
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = (result * result) % m;
    if (exp.GetBit(i)) result = (result * b) % m;
  }
  return result;
}

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(0)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(1)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(2)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(100)).ok());  // Even.
  EXPECT_TRUE(MontgomeryContext::Create(BigUInt(3)).ok());
}

TEST(MontgomeryTest, RoundTripThroughDomain) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    BigUInt m = BigUInt::RandomBits(&rng, 64 + rng.UniformU64(300));
    m.SetBit(0);
    if (m < BigUInt(3)) continue;
    auto ctx = MontgomeryContext::Create(m).ValueOrDie();
    BigUInt a = BigUInt::RandomBelow(&rng, m);
    EXPECT_EQ(ctx.FromMontgomery(ctx.ToMontgomery(a)), a);
  }
}

TEST(MontgomeryTest, MultiplyMatchesModMul) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    BigUInt m = BigUInt::RandomBits(&rng, 256);
    m.SetBit(0);
    m.SetBit(255);
    auto ctx = MontgomeryContext::Create(m).ValueOrDie();
    BigUInt a = BigUInt::RandomBelow(&rng, m);
    BigUInt b = BigUInt::RandomBelow(&rng, m);
    BigUInt product = ctx.FromMontgomery(
        ctx.Multiply(ctx.ToMontgomery(a), ctx.ToMontgomery(b)));
    EXPECT_EQ(product, ModMul(a, b, m));
  }
}

TEST(MontgomeryTest, PowMatchesReferenceAcrossSizes) {
  Rng rng(3);
  for (size_t bits : {64u, 128u, 512u, 1024u}) {
    for (int trial = 0; trial < 10; ++trial) {
      BigUInt m = BigUInt::RandomBits(&rng, bits);
      m.SetBit(0);
      m.SetBit(bits - 1);
      BigUInt base = BigUInt::RandomBelow(&rng, m);
      BigUInt exp = BigUInt::RandomBits(&rng, bits);
      auto ctx = MontgomeryContext::Create(m).ValueOrDie();
      ASSERT_EQ(ctx.Pow(base, exp), ReferencePow(base, exp, m))
          << "bits " << bits;
    }
  }
}

TEST(MontgomeryTest, PowEdgeCases) {
  BigUInt m(1000003);  // Odd prime.
  auto ctx = MontgomeryContext::Create(m).ValueOrDie();
  EXPECT_EQ(ctx.Pow(BigUInt(5), BigUInt(0)), BigUInt(1));
  EXPECT_EQ(ctx.Pow(BigUInt(0), BigUInt(5)), BigUInt(0));
  EXPECT_EQ(ctx.Pow(BigUInt(0), BigUInt(0)), BigUInt(1));
  EXPECT_EQ(ctx.Pow(BigUInt(1), BigUInt(1u << 20)), BigUInt(1));
  // Base larger than the modulus reduces first.
  EXPECT_EQ(ctx.Pow(m + BigUInt(2), BigUInt(3)), BigUInt(8));
}

TEST(MontgomeryTest, ModPowRoutesThroughMontgomeryConsistently) {
  // The public ModPow must agree with the naive reference for odd moduli
  // (Montgomery path) and even moduli (generic path) alike.
  Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    BigUInt m = BigUInt::RandomBits(&rng, 200);
    if (m < BigUInt(3)) continue;
    BigUInt base = BigUInt::RandomBits(&rng, 300);
    BigUInt exp = BigUInt::RandomBits(&rng, 100);
    ASSERT_EQ(ModPow(base, exp, m), ReferencePow(base, exp, m))
        << (m.IsOdd() ? "odd" : "even") << " modulus trial " << trial;
  }
}

TEST(MontgomeryTest, FermatWithRealPrime) {
  Rng rng(5);
  BigUInt p = RandomPrime(&rng, 512);
  auto ctx = MontgomeryContext::Create(p).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, p - BigUInt(2)) + BigUInt(1);
    EXPECT_TRUE(ctx.Pow(a, p - BigUInt(1)).IsOne());
  }
}

}  // namespace
}  // namespace psi
