#include "bigint/montgomery.h"

#include <gtest/gtest.h>

#include <vector>

#include "bigint/modular.h"
#include "bigint/primes.h"

namespace psi {
namespace {

// Generic reference modpow (no Montgomery routing).
BigUInt ReferencePow(const BigUInt& base, const BigUInt& exp,
                     const BigUInt& m) {
  BigUInt result(1);
  BigUInt b = base % m;
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = (result * result) % m;
    if (exp.GetBit(i)) result = (result * b) % m;
  }
  return result;
}

TEST(MontgomeryTest, RejectsBadModuli) {
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(0)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(1)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(2)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUInt(100)).ok());  // Even.
  EXPECT_TRUE(MontgomeryContext::Create(BigUInt(3)).ok());
}

TEST(MontgomeryTest, RoundTripThroughDomain) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    BigUInt m = BigUInt::RandomBits(&rng, 64 + rng.UniformU64(300));
    m.SetBit(0);
    if (m < BigUInt(3)) continue;
    auto ctx = MontgomeryContext::Create(m).ValueOrDie();
    BigUInt a = BigUInt::RandomBelow(&rng, m);
    EXPECT_EQ(ctx.FromMontgomery(ctx.ToMontgomery(a)), a);
  }
}

TEST(MontgomeryTest, MultiplyMatchesModMul) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    BigUInt m = BigUInt::RandomBits(&rng, 256);
    m.SetBit(0);
    m.SetBit(255);
    auto ctx = MontgomeryContext::Create(m).ValueOrDie();
    BigUInt a = BigUInt::RandomBelow(&rng, m);
    BigUInt b = BigUInt::RandomBelow(&rng, m);
    BigUInt product = ctx.FromMontgomery(
        ctx.Multiply(ctx.ToMontgomery(a), ctx.ToMontgomery(b)));
    EXPECT_EQ(product, ModMul(a, b, m));
  }
}

TEST(MontgomeryTest, PowMatchesReferenceAcrossSizes) {
  Rng rng(3);
  for (size_t bits : {64u, 128u, 512u, 1024u}) {
    for (int trial = 0; trial < 10; ++trial) {
      BigUInt m = BigUInt::RandomBits(&rng, bits);
      m.SetBit(0);
      m.SetBit(bits - 1);
      BigUInt base = BigUInt::RandomBelow(&rng, m);
      BigUInt exp = BigUInt::RandomBits(&rng, bits);
      auto ctx = MontgomeryContext::Create(m).ValueOrDie();
      ASSERT_EQ(ctx.Pow(base, exp), ReferencePow(base, exp, m))
          << "bits " << bits;
    }
  }
}

TEST(MontgomeryTest, PowEdgeCases) {
  BigUInt m(1000003);  // Odd prime.
  auto ctx = MontgomeryContext::Create(m).ValueOrDie();
  EXPECT_EQ(ctx.Pow(BigUInt(5), BigUInt(0)), BigUInt(1));
  EXPECT_EQ(ctx.Pow(BigUInt(0), BigUInt(5)), BigUInt(0));
  EXPECT_EQ(ctx.Pow(BigUInt(0), BigUInt(0)), BigUInt(1));
  EXPECT_EQ(ctx.Pow(BigUInt(1), BigUInt(1u << 20)), BigUInt(1));
  // Base larger than the modulus reduces first.
  EXPECT_EQ(ctx.Pow(m + BigUInt(2), BigUInt(3)), BigUInt(8));
}

TEST(MontgomeryTest, ModPowRoutesThroughMontgomeryConsistently) {
  // The public ModPow must agree with the naive reference for odd moduli
  // (Montgomery path) and even moduli (generic path) alike.
  Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    BigUInt m = BigUInt::RandomBits(&rng, 200);
    if (m < BigUInt(3)) continue;
    BigUInt base = BigUInt::RandomBits(&rng, 300);
    BigUInt exp = BigUInt::RandomBits(&rng, 100);
    ASSERT_EQ(ModPow(base, exp, m), ReferencePow(base, exp, m))
        << (m.IsOdd() ? "odd" : "even") << " modulus trial " << trial;
  }
}

TEST(MontgomeryTest, WindowedPowMatchesReferenceOnLargeModuli) {
  // The fixed-window path kicks in for big exponents; cross-check it against
  // the naive square-and-multiply reference over random 512..2048-bit odd
  // moduli (window sizes 4 and 5 per WindowBitsFor).
  Rng rng(6);
  for (size_t bits : {512u, 1024u, 2048u}) {
    for (int trial = 0; trial < 3; ++trial) {
      BigUInt m = BigUInt::RandomBits(&rng, bits);
      m.SetBit(0);
      m.SetBit(bits - 1);
      BigUInt base = BigUInt::RandomBelow(&rng, m);
      BigUInt exp = BigUInt::RandomBits(&rng, bits);
      auto ctx = MontgomeryContext::Create(m).ValueOrDie();
      ASSERT_EQ(ctx.Pow(base, exp), ReferencePow(base, exp, m))
          << "bits " << bits << " trial " << trial;
    }
  }
}

TEST(MontgomeryTest, WindowedPowExponentStructureEdges) {
  // Exponents whose windows are all-zero, all-one, or straddle the top
  // digit stress the first-digit and skip-zero-window logic.
  Rng rng(7);
  BigUInt m = BigUInt::RandomBits(&rng, 512);
  m.SetBit(0);
  m.SetBit(511);
  auto ctx = MontgomeryContext::Create(m).ValueOrDie();
  BigUInt base = BigUInt::RandomBelow(&rng, m);
  std::vector<BigUInt> exps;
  exps.push_back(BigUInt::PowerOfTwo(511));                // Lone top bit.
  exps.push_back(BigUInt::PowerOfTwo(512) - BigUInt(1));   // All ones.
  exps.push_back(BigUInt::PowerOfTwo(253));                // Mid-digit bit.
  exps.push_back(BigUInt(1));
  exps.push_back(BigUInt((1u << 16) - 1));                 // Short exponent.
  for (const auto& exp : exps) {
    ASSERT_EQ(ctx.Pow(base, exp), ReferencePow(base, exp, m))
        << "exp bits " << exp.BitLength();
  }
}

TEST(MontgomeryTest, FixedBaseTableMatchesGenericPow) {
  Rng rng(8);
  for (size_t bits : {512u, 1024u, 2048u}) {
    BigUInt m = BigUInt::RandomBits(&rng, bits);
    m.SetBit(0);
    m.SetBit(bits - 1);
    auto ctx = MontgomeryContext::Create(m).ValueOrDie();
    BigUInt base = BigUInt::RandomBelow(&rng, m);
    FixedBaseTable table(&ctx, base, bits);
    for (int trial = 0; trial < 5; ++trial) {
      BigUInt exp = BigUInt::RandomBits(&rng, bits);
      ASSERT_EQ(table.Pow(exp), ctx.Pow(base, exp))
          << "bits " << bits << " trial " << trial;
    }
    // Degenerate exponents.
    EXPECT_EQ(table.Pow(BigUInt(0)), BigUInt(1));
    EXPECT_EQ(table.Pow(BigUInt(1)), base % m);
  }
}

TEST(MontgomeryTest, FixedBaseTableFallsBackOnOversizeExponent) {
  Rng rng(9);
  BigUInt m = BigUInt::RandomBits(&rng, 512);
  m.SetBit(0);
  m.SetBit(511);
  auto ctx = MontgomeryContext::Create(m).ValueOrDie();
  BigUInt base = BigUInt::RandomBelow(&rng, m);
  FixedBaseTable table(&ctx, base, /*max_exp_bits=*/128);
  // An exponent wider than the table still computes correctly (generic
  // path), and an in-range exponent uses the table.
  BigUInt big_exp = BigUInt::RandomBits(&rng, 512);
  EXPECT_EQ(table.Pow(big_exp), ctx.Pow(base, big_exp));
  BigUInt small_exp = BigUInt::RandomBits(&rng, 128);
  EXPECT_EQ(table.Pow(small_exp), ctx.Pow(base, small_exp));
}

TEST(MontgomeryTest, FixedBaseTableSmallExponentWindow) {
  // max_exp_bits <= 64 selects the narrow window; exhaustively check small
  // exponents against direct computation.
  auto ctx = MontgomeryContext::Create(BigUInt(1000003)).ValueOrDie();
  BigUInt base(12345);
  FixedBaseTable table(&ctx, base, /*max_exp_bits=*/16);
  for (uint64_t e = 0; e < 300; ++e) {
    ASSERT_EQ(table.Pow(BigUInt(e)), ctx.Pow(base, BigUInt(e))) << "e " << e;
  }
}

TEST(MontgomeryTest, FermatWithRealPrime) {
  Rng rng(5);
  BigUInt p = RandomPrime(&rng, 512);
  auto ctx = MontgomeryContext::Create(p).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, p - BigUInt(2)) + BigUInt(1);
    EXPECT_TRUE(ctx.Pow(a, p - BigUInt(1)).IsOne());
  }
}

}  // namespace
}  // namespace psi
