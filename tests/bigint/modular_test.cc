#include "bigint/modular.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(ModularTest, ModAddWrapsCorrectly) {
  BigUInt m(100);
  EXPECT_EQ(ModAdd(BigUInt(30), BigUInt(40), m), BigUInt(70));
  EXPECT_EQ(ModAdd(BigUInt(60), BigUInt(70), m), BigUInt(30));
  EXPECT_EQ(ModAdd(BigUInt(99), BigUInt(1), m), BigUInt(0));
}

TEST(ModularTest, ModSubWrapsCorrectly) {
  BigUInt m(100);
  EXPECT_EQ(ModSub(BigUInt(40), BigUInt(30), m), BigUInt(10));
  EXPECT_EQ(ModSub(BigUInt(30), BigUInt(40), m), BigUInt(90));
  EXPECT_EQ(ModSub(BigUInt(0), BigUInt(1), m), BigUInt(99));
  EXPECT_EQ(ModSub(BigUInt(5), BigUInt(5), m), BigUInt(0));
}

TEST(ModularTest, ModMulReduces) {
  BigUInt m(97);
  EXPECT_EQ(ModMul(BigUInt(50), BigUInt(60), m), BigUInt(3000 % 97));
}

TEST(ModularTest, ModPowKnownValues) {
  EXPECT_EQ(ModPow(BigUInt(2), BigUInt(10), BigUInt(1000)), BigUInt(24));
  EXPECT_EQ(ModPow(BigUInt(3), BigUInt(0), BigUInt(7)), BigUInt(1));
  EXPECT_EQ(ModPow(BigUInt(0), BigUInt(0), BigUInt(7)), BigUInt(1));
  EXPECT_EQ(ModPow(BigUInt(0), BigUInt(5), BigUInt(7)), BigUInt(0));
  EXPECT_EQ(ModPow(BigUInt(5), BigUInt(3), BigUInt(1)), BigUInt(0));
}

TEST(ModularTest, ModPowFermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p and gcd(a, p) = 1.
  BigUInt p = BigUInt::FromDecimalString("170141183460469231731687303715884105727")
                  .ValueOrDie();  // 2^127 - 1, prime.
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, p - BigUInt(1)) + BigUInt(1);
    EXPECT_TRUE(ModPow(a, p - BigUInt(1), p).IsOne());
  }
}

TEST(ModularTest, ModPowLargeExponentConsistency) {
  // (a^e1)^e2 == a^(e1*e2) mod m.
  Rng rng(19);
  BigUInt m = BigUInt::RandomBits(&rng, 256);
  m.SetBit(0);  // Odd modulus.
  BigUInt a = BigUInt::RandomBelow(&rng, m);
  BigUInt e1(12345), e2(678);
  EXPECT_EQ(ModPow(ModPow(a, e1, m), e2, m), ModPow(a, e1 * e2, m));
}

TEST(ModularTest, GcdKnownValues) {
  EXPECT_EQ(Gcd(BigUInt(48), BigUInt(36)), BigUInt(12));
  EXPECT_EQ(Gcd(BigUInt(17), BigUInt(13)), BigUInt(1));
  EXPECT_EQ(Gcd(BigUInt(0), BigUInt(5)), BigUInt(5));
  EXPECT_EQ(Gcd(BigUInt(5), BigUInt(0)), BigUInt(5));
  EXPECT_EQ(Gcd(BigUInt(0), BigUInt(0)), BigUInt(0));
}

TEST(ModularTest, GcdDividesBoth) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    BigUInt a = BigUInt::RandomBits(&rng, 128);
    BigUInt b = BigUInt::RandomBits(&rng, 96);
    BigUInt g = Gcd(a, b);
    if (g.IsZero()) continue;
    EXPECT_TRUE((a % g).IsZero());
    EXPECT_TRUE((b % g).IsZero());
  }
}

TEST(ModularTest, LcmTimesGcdEqualsProduct) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    BigUInt a = BigUInt::RandomBits(&rng, 64) + BigUInt(1);
    BigUInt b = BigUInt::RandomBits(&rng, 64) + BigUInt(1);
    EXPECT_EQ(Lcm(a, b) * Gcd(a, b), a * b);
  }
  EXPECT_TRUE(Lcm(BigUInt(0), BigUInt(7)).IsZero());
}

TEST(ModularTest, ModInverseRoundTrip) {
  Rng rng(31);
  BigUInt m = BigUInt::FromDecimalString("1000000007").ValueOrDie();
  for (int i = 0; i < 100; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, m - BigUInt(1)) + BigUInt(1);
    BigUInt inv = ModInverse(a, m).ValueOrDie();
    EXPECT_TRUE(ModMul(a, inv, m).IsOne());
    EXPECT_LT(inv, m);
  }
}

TEST(ModularTest, ModInverseRejectsNonCoprime) {
  EXPECT_FALSE(ModInverse(BigUInt(6), BigUInt(9)).ok());
  EXPECT_FALSE(ModInverse(BigUInt(0), BigUInt(9)).ok());
  EXPECT_FALSE(ModInverse(BigUInt(3), BigUInt(1)).ok());
}

TEST(ModularTest, ModInverseLargeModulus) {
  Rng rng(37);
  BigUInt m = BigUInt::PowerOfTwo(255);
  for (int i = 0; i < 20; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, m);
    a.SetBit(0);  // Odd => coprime with 2^255.
    BigUInt inv = ModInverse(a, m).ValueOrDie();
    EXPECT_TRUE(ModMul(a, inv, m).IsOne());
  }
}

}  // namespace
}  // namespace psi
