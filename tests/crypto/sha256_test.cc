#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

// NIST FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(1000000, 'a'))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Padding boundaries: lengths 55, 56, 63, 64, 65 hit distinct padding paths.
TEST(Sha256Test, PaddingBoundaryLengthsAreConsistentWithIncremental) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    auto oneshot = Sha256::Hash(msg);
    Sha256 inc;
    for (char c : msg) inc.Update(reinterpret_cast<const uint8_t*>(&c), 1);
    EXPECT_EQ(oneshot, inc.Finish()) << "length " << len;
  }
}

TEST(Sha256Test, IncrementalChunkingInvariance) {
  std::string msg;
  for (int i = 0; i < 1000; ++i) msg += static_cast<char>('a' + i % 26);
  auto oneshot = Sha256::Hash(msg);
  for (size_t chunk : {1u, 3u, 17u, 64u, 100u, 999u}) {
    Sha256 h;
    for (size_t pos = 0; pos < msg.size(); pos += chunk) {
      h.Update(msg.substr(pos, chunk));
    }
    EXPECT_EQ(h.Finish(), oneshot) << "chunk " << chunk;
  }
}

TEST(Sha256Test, AvalancheOnSingleBitFlip) {
  std::vector<uint8_t> a(64, 0);
  std::vector<uint8_t> b = a;
  b[20] ^= 1;
  auto da = Sha256::Hash(a);
  auto db = Sha256::Hash(b);
  int differing_bits = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    differing_bits += __builtin_popcount(da[i] ^ db[i]);
  }
  // Expect ~128 of 256 bits to flip; a broken implementation shows far less.
  EXPECT_GT(differing_bits, 80);
  EXPECT_LT(differing_bits, 176);
}

TEST(Sha256Test, DigestToHexFormat) {
  auto d = Sha256::Hash(std::string("abc"));
  std::string hex = DigestToHex(d);
  EXPECT_EQ(hex.size(), 64u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace psi
