#include "crypto/shift_cipher.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(ShiftCipherTest, EncryptDecryptRoundTrip) {
  ShiftCipher c(37, 100);
  for (uint64_t t = 0; t < 100; ++t) {
    EXPECT_EQ(c.Decrypt(c.Encrypt(t)), t);
    EXPECT_LT(c.Encrypt(t), 100u);
  }
}

TEST(ShiftCipherTest, ZeroKeyIsIdentity) {
  ShiftCipher c(0, 50);
  for (uint64_t t = 0; t < 50; ++t) EXPECT_EQ(c.Encrypt(t), t);
}

TEST(ShiftCipherTest, KeyReducedModuloFrame) {
  ShiftCipher c(105, 100);
  EXPECT_EQ(c.key(), 5u);
  EXPECT_EQ(c.Encrypt(0), 5u);
}

TEST(ShiftCipherTest, WrapAround) {
  ShiftCipher c(10, 12);
  EXPECT_EQ(c.Encrypt(5), 3u);   // 15 mod 12
  EXPECT_EQ(c.Decrypt(3), 5u);
  EXPECT_EQ(c.Encrypt(11), 9u);  // 21 mod 12
}

TEST(ShiftCipherTest, PreservesCyclicDifferences) {
  // The property Protocol 5 relies on: e(t') - e(t) mod frame == t' - t.
  ShiftCipher c(73, 200);
  for (uint64_t t = 0; t < 200; t += 7) {
    for (uint64_t d = 1; d <= 10; ++d) {
      uint64_t t2 = (t + d) % 200;
      uint64_t diff = (c.Encrypt(t2) + 200 - c.Encrypt(t)) % 200;
      EXPECT_EQ(diff, d);
    }
  }
}

TEST(ShiftCipherTest, RandomKeyInRange) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    auto c = ShiftCipher::Random(&rng, 123);
    EXPECT_LT(c.key(), 123u);
    EXPECT_EQ(c.frame(), 123u);
  }
}

TEST(ShiftCipherTest, RandomKeysCoverFrame) {
  Rng rng(9);
  std::vector<bool> seen(20, false);
  for (int i = 0; i < 1000; ++i) {
    seen[ShiftCipher::Random(&rng, 20).key()] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace psi
