#include "crypto/commitment.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(CommitmentTest, VerifiesHonestOpening) {
  Rng rng(1);
  auto open = MakeOpening({1, 2, 3, 4}, &rng);
  auto com = Commit(open);
  EXPECT_TRUE(VerifyCommitment(com, open));
}

TEST(CommitmentTest, RejectsTamperedValue) {
  Rng rng(2);
  auto open = MakeOpening({1, 2, 3, 4}, &rng);
  auto com = Commit(open);
  open.value[2] ^= 1;
  EXPECT_FALSE(VerifyCommitment(com, open));
}

TEST(CommitmentTest, RejectsTamperedBlinding) {
  Rng rng(3);
  auto open = MakeOpening({9, 9}, &rng);
  auto com = Commit(open);
  open.blinding[0] ^= 1;
  EXPECT_FALSE(VerifyCommitment(com, open));
}

TEST(CommitmentTest, HidingSameValueDifferentBlinding) {
  Rng rng(4);
  auto o1 = MakeOpening({5, 5, 5}, &rng);
  auto o2 = MakeOpening({5, 5, 5}, &rng);
  EXPECT_NE(Commit(o1), Commit(o2));
}

TEST(CommitmentTest, EmptyValueCommits) {
  Rng rng(5);
  auto open = MakeOpening({}, &rng);
  EXPECT_TRUE(VerifyCommitment(Commit(open), open));
}

TEST(CommitmentTest, BlindingBoundaryNotConfusable) {
  // Commit(b || v) with shifted boundary must differ: (b, v=03) vs (b', v').
  Rng rng(6);
  auto o1 = MakeOpening({3}, &rng);
  auto o2 = o1;
  // Move the value's first byte into the blinding tail.
  o2.blinding[31] = o1.value[0];
  o2.value = {};
  EXPECT_NE(Commit(o1), Commit(o2));
}

}  // namespace
}  // namespace psi
