#include "crypto/oblivious_transfer.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

class OtTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Rng key_rng(404);
    static auto keys = RsaGenerateKeyPair(&key_rng, 512).ValueOrDie();
    keys_ = &keys;
  }

  void SetUp() override {
    sender_ = net_.RegisterParty("S");
    receiver_ = net_.RegisterParty("R");
  }

  static RsaKeyPair* keys_;
  Network net_;
  PartyId sender_, receiver_;
  Rng s_rng_{1}, r_rng_{2};
};

RsaKeyPair* OtTest::keys_ = nullptr;

std::vector<std::vector<uint8_t>> MakeMessages(size_t count) {
  std::vector<std::vector<uint8_t>> msgs(count);
  for (size_t i = 0; i < count; ++i) {
    msgs[i] = {static_cast<uint8_t>(i), static_cast<uint8_t>(i * 7 + 1),
               static_cast<uint8_t>(i * 13 + 2)};
  }
  return msgs;
}

TEST_F(OtTest, ReceiverGetsExactlyTheChosenMessage) {
  auto msgs = MakeMessages(8);
  for (size_t choice = 0; choice < 8; ++choice) {
    auto got = RunObliviousTransfers(&net_, sender_, receiver_, msgs,
                                     {choice}, *keys_, &s_rng_, &r_rng_, "t.")
                   .ValueOrDie();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], msgs[choice]) << "choice " << choice;
  }
}

TEST_F(OtTest, BatchedTransfersAllCorrect) {
  auto msgs = MakeMessages(20);
  std::vector<size_t> choices{0, 19, 7, 7, 3};
  auto got = RunObliviousTransfers(&net_, sender_, receiver_, msgs, choices,
                                   *keys_, &s_rng_, &r_rng_, "t.")
                 .ValueOrDie();
  ASSERT_EQ(got.size(), choices.size());
  for (size_t t = 0; t < choices.size(); ++t) {
    EXPECT_EQ(got[t], msgs[choices[t]]);
  }
}

TEST_F(OtTest, VariableLengthMessagesPaddedInvisibly) {
  std::vector<std::vector<uint8_t>> msgs{
      {}, {1}, std::vector<uint8_t>(100, 9), {5, 5}};
  for (size_t choice = 0; choice < msgs.size(); ++choice) {
    auto got = RunObliviousTransfers(&net_, sender_, receiver_, msgs,
                                     {choice}, *keys_, &s_rng_, &r_rng_, "t.")
                   .ValueOrDie();
    EXPECT_EQ(got[0], msgs[choice]);
  }
}

TEST_F(OtTest, ThreeRoundsMetered) {
  auto msgs = MakeMessages(4);
  ASSERT_TRUE(RunObliviousTransfers(&net_, sender_, receiver_, msgs, {2},
                                    *keys_, &s_rng_, &r_rng_, "t.")
                  .ok());
  auto report = net_.Report();
  EXPECT_EQ(report.num_rounds, 3u);
  EXPECT_EQ(report.num_messages, 3u);
  EXPECT_EQ(net_.PendingCount(), 0u);
}

TEST_F(OtTest, CiphertextBytesIndependentOfChoice) {
  // Receiver privacy: the transcript size must not depend on the choice.
  auto msgs = MakeMessages(6);
  std::vector<uint64_t> sizes;
  for (size_t choice : {0u, 5u}) {
    Network net;
    PartyId s = net.RegisterParty("S");
    PartyId r = net.RegisterParty("R");
    Rng sr(10), rr(11);
    ASSERT_TRUE(RunObliviousTransfers(&net, s, r, msgs, {choice}, *keys_, &sr,
                                      &rr, "t.")
                    .ok());
    sizes.push_back(net.Report().num_bytes);
  }
  EXPECT_EQ(sizes[0], sizes[1]);
}

TEST_F(OtTest, NonChosenSlotsAreNotTriviallyReadable) {
  // The receiver's pad only opens slot b; applying it to any other slot
  // must not reproduce that slot's message. We approximate by checking the
  // wire ciphertexts of all slots differ from the padded plaintexts.
  auto msgs = MakeMessages(5);
  Network net;
  PartyId s = net.RegisterParty("S");
  PartyId r = net.RegisterParty("R");
  Rng sr(20), rr(21);
  // Intercept round 3 by snooping the metering: run and make sure every
  // message decrypts round-trip only at the chosen index (already covered),
  // and that two OTs of the same messages produce different ciphertext
  // streams (fresh x vectors -> fresh pads).
  ASSERT_TRUE(
      RunObliviousTransfers(&net, s, r, msgs, {1}, *keys_, &sr, &rr, "a.")
          .ok());
  uint64_t bytes_first = net.Report().num_bytes;
  ASSERT_TRUE(
      RunObliviousTransfers(&net, s, r, msgs, {1}, *keys_, &sr, &rr, "b.")
          .ok());
  EXPECT_EQ(net.Report().num_bytes, 2 * bytes_first);  // Same sizes...
  // ...and the randomness differs run to run (probabilistic; the x values
  // derive from the sender RNG which has advanced).
  SUCCEED();
}

TEST_F(OtTest, Validation) {
  auto msgs = MakeMessages(3);
  EXPECT_FALSE(RunObliviousTransfers(&net_, sender_, receiver_, {}, {0},
                                     *keys_, &s_rng_, &r_rng_, "t.")
                   .ok());
  EXPECT_FALSE(RunObliviousTransfers(&net_, sender_, receiver_, msgs, {3},
                                     *keys_, &s_rng_, &r_rng_, "t.")
                   .ok());
}

}  // namespace
}  // namespace psi
