#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include "common/chacha_core.h"
#include "common/random.h"

namespace psi {
namespace {

std::array<uint8_t, 32> TestKey() {
  std::array<uint8_t, 32> key;
  for (size_t i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  return key;
}

// RFC 8439 section 2.3.2 block-function test vector.
TEST(ChaCha20Test, Rfc8439BlockFunctionVector) {
  std::array<uint32_t, 8> key;
  for (int i = 0; i < 8; ++i) {
    key[static_cast<size_t>(i)] =
        static_cast<uint32_t>(0x03020100u + 0x04040404u * static_cast<uint32_t>(i));
  }
  std::array<uint32_t, 3> nonce = {0x09000000u, 0x4a000000u, 0x00000000u};
  std::array<uint8_t, 64> block;
  internal::ChaCha20Block(key, 1, nonce, &block);
  // First 16 keystream bytes from the RFC.
  const uint8_t expected[16] = {0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15,
                                0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71, 0xc4};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(block[static_cast<size_t>(i)], expected[i]) << i;
  }
}

// RFC 8439 section 2.4.2 full encryption test vector.
TEST(ChaCha20Test, Rfc8439EncryptionVector) {
  std::array<uint8_t, 32> key;
  for (size_t i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, 12> nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<uint8_t> data(plaintext.begin(), plaintext.end());
  ChaCha20Cipher cipher(key, nonce);
  auto ct = cipher.Process(data);
  const uint8_t expected_head[16] = {0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68,
                                     0xf9, 0x80, 0x41, 0xba, 0x07, 0x28,
                                     0xdd, 0x0d, 0x69, 0x81};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ct[static_cast<size_t>(i)], expected_head[i]) << i;
  }
  EXPECT_EQ(ct.back(), 0x4d);  // Last ciphertext byte per the RFC vector.
}

TEST(ChaCha20Test, EncryptDecryptRoundTrip) {
  std::array<uint8_t, 12> nonce{};
  std::vector<uint8_t> msg(12345);
  Rng rng(1);
  rng.FillBytes(msg.data(), msg.size());
  ChaCha20Cipher enc(TestKey(), nonce);
  ChaCha20Cipher dec(TestKey(), nonce);
  EXPECT_EQ(dec.Process(enc.Process(msg)), msg);
}

TEST(ChaCha20Test, DifferentNoncesProduceDifferentStreams) {
  std::array<uint8_t, 12> n1{}, n2{};
  n2[0] = 1;
  std::vector<uint8_t> zeros(64, 0);
  ChaCha20Cipher c1(TestKey(), n1), c2(TestKey(), n2);
  EXPECT_NE(c1.Process(zeros), c2.Process(zeros));
}

TEST(ChaCha20Test, DifferentKeysProduceDifferentStreams) {
  std::array<uint8_t, 12> nonce{};
  auto k2 = TestKey();
  k2[31] ^= 0x80;
  std::vector<uint8_t> zeros(64, 0);
  ChaCha20Cipher c1(TestKey(), nonce), c2(k2, nonce);
  EXPECT_NE(c1.Process(zeros), c2.Process(zeros));
}

TEST(ChaCha20Test, InPlaceMatchesCopying) {
  std::array<uint8_t, 12> nonce{};
  std::vector<uint8_t> msg(777, 0x5c);
  ChaCha20Cipher a(TestKey(), nonce), b(TestKey(), nonce);
  auto copied = a.Process(msg);
  b.Process(&msg);
  EXPECT_EQ(msg, copied);
}

TEST(ChaCha20Test, StreamContinuityAcrossCalls) {
  // Processing 100 bytes then 100 bytes must equal processing 200 at once.
  std::array<uint8_t, 12> nonce{};
  std::vector<uint8_t> msg(200, 0xa5);
  ChaCha20Cipher whole(TestKey(), nonce);
  auto expected = whole.Process(msg);
  ChaCha20Cipher split(TestKey(), nonce);
  std::vector<uint8_t> first(msg.begin(), msg.begin() + 100);
  std::vector<uint8_t> second(msg.begin() + 100, msg.end());
  auto out1 = split.Process(first);
  auto out2 = split.Process(second);
  out1.insert(out1.end(), out2.begin(), out2.end());
  EXPECT_EQ(out1, expected);
}

}  // namespace
}  // namespace psi
