#include "crypto/permutation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace psi {
namespace {

TEST(SecretPermutationTest, ApplyInvertRoundTrip) {
  Rng rng(1);
  auto perm = SecretPermutation::Random(&rng, 500);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(perm.Invert(perm.Apply(i)), i);
    EXPECT_EQ(perm.Apply(perm.Invert(i)), i);
  }
}

TEST(SecretPermutationTest, IsBijection) {
  Rng rng(2);
  auto perm = SecretPermutation::Random(&rng, 100);
  std::set<size_t> images;
  for (size_t i = 0; i < 100; ++i) images.insert(perm.Apply(i));
  EXPECT_EQ(images.size(), 100u);
}

TEST(SecretPermutationTest, FromMappingValidation) {
  EXPECT_TRUE(SecretPermutation::FromMapping({2, 0, 1}).ok());
  EXPECT_FALSE(SecretPermutation::FromMapping({0, 0, 1}).ok());  // Duplicate.
  EXPECT_FALSE(SecretPermutation::FromMapping({0, 3, 1}).ok());  // Range.
  EXPECT_TRUE(SecretPermutation::FromMapping({}).ok());          // Empty ok.
}

TEST(SecretPermutationTest, ScatterGatherInverse) {
  Rng rng(3);
  auto perm = SecretPermutation::Random(&rng, 50);
  std::vector<int> data(50);
  for (int i = 0; i < 50; ++i) data[static_cast<size_t>(i)] = i * 7;
  auto scattered = perm.Scatter(data);
  EXPECT_EQ(perm.Gather(scattered), data);
  // Scatter places element i at position pi(i).
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(scattered[perm.Apply(i)], data[i]);
  }
}

TEST(SecretPermutationTest, RandomPermutationsDiffer) {
  Rng rng(4);
  auto a = SecretPermutation::Random(&rng, 64);
  auto b = SecretPermutation::Random(&rng, 64);
  size_t same = 0;
  for (size_t i = 0; i < 64; ++i) same += a.Apply(i) == b.Apply(i);
  EXPECT_LT(same, 10u);
}

TEST(SecretInjectionTest, RoundTripAndFakes) {
  Rng rng(5);
  auto inj = SecretInjection::Random(&rng, 40, 15);
  EXPECT_EQ(inj.domain_size(), 40u);
  EXPECT_EQ(inj.codomain_size(), 55u);
  std::set<size_t> images;
  for (size_t i = 0; i < 40; ++i) {
    size_t img = inj.Apply(i);
    ASSERT_LT(img, 55u);
    EXPECT_FALSE(inj.IsFake(img));
    EXPECT_EQ(inj.InvertOrFake(img), i);
    images.insert(img);
  }
  EXPECT_EQ(images.size(), 40u);  // Injective.
  auto fakes = inj.FakeIds();
  EXPECT_EQ(fakes.size(), 15u);
  for (size_t f : fakes) {
    EXPECT_TRUE(inj.IsFake(f));
    EXPECT_FALSE(images.contains(f));
  }
}

TEST(SecretInjectionTest, ZeroFakesIsPermutation) {
  Rng rng(6);
  auto inj = SecretInjection::Random(&rng, 30, 0);
  EXPECT_TRUE(inj.FakeIds().empty());
  std::set<size_t> images;
  for (size_t i = 0; i < 30; ++i) images.insert(inj.Apply(i));
  EXPECT_EQ(images.size(), 30u);
}

TEST(SecretInjectionTest, FakeIdsScatterUniformly) {
  // Fakes must not cluster at the top of the id space, or the aggregator
  // could identify them by value.
  Rng rng(7);
  size_t low_half = 0;
  const size_t trials = 200;
  for (size_t t = 0; t < trials; ++t) {
    auto inj = SecretInjection::Random(&rng, 10, 10);
    for (size_t f : inj.FakeIds()) low_half += f < 10;
  }
  // Expected: half the fakes land in the low half of the codomain.
  double frac = static_cast<double>(low_half) / (trials * 10);
  EXPECT_NEAR(frac, 0.5, 0.05);
}

}  // namespace
}  // namespace psi
