#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"

namespace psi {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Rng rng(101);
    static auto kp = RsaGenerateKeyPair(&rng, 512).ValueOrDie();
    key_pair_ = &kp;
    rng_ = &rng;
  }
  static RsaKeyPair* key_pair_;
  static Rng* rng_;
};

RsaKeyPair* RsaTest::key_pair_ = nullptr;
Rng* RsaTest::rng_ = nullptr;

TEST_F(RsaTest, KeyShapes) {
  EXPECT_EQ(key_pair_->public_key.ModulusBits(), 512u);
  EXPECT_EQ(key_pair_->public_key.e, BigUInt(65537));
  EXPECT_EQ(key_pair_->public_key.CiphertextBytes(), 64u);
  EXPECT_EQ(key_pair_->private_key.p * key_pair_->private_key.q,
            key_pair_->public_key.n);
}

TEST_F(RsaTest, EdTimesDIsOneModPhi) {
  const auto& priv = key_pair_->private_key;
  BigUInt phi = (priv.p - BigUInt(1)) * (priv.q - BigUInt(1));
  EXPECT_TRUE(ModMul(key_pair_->public_key.e, priv.d, phi).IsOne());
}

TEST_F(RsaTest, EncryptDecryptRoundTripRandomized) {
  for (int i = 0; i < 50; ++i) {
    BigUInt m = BigUInt::RandomBelow(rng_, key_pair_->public_key.n);
    BigUInt c = RsaEncrypt(key_pair_->public_key, m).ValueOrDie();
    EXPECT_EQ(RsaDecrypt(key_pair_->private_key, c).ValueOrDie(), m);
  }
}

TEST_F(RsaTest, EdgePlaintexts) {
  for (uint64_t m : {0ull, 1ull, 2ull}) {
    BigUInt c = RsaEncrypt(key_pair_->public_key, BigUInt(m)).ValueOrDie();
    EXPECT_EQ(RsaDecrypt(key_pair_->private_key, c).ValueOrDie(), BigUInt(m));
  }
  BigUInt n_minus_1 = key_pair_->public_key.n - BigUInt(1);
  BigUInt c = RsaEncrypt(key_pair_->public_key, n_minus_1).ValueOrDie();
  EXPECT_EQ(RsaDecrypt(key_pair_->private_key, c).ValueOrDie(), n_minus_1);
}

TEST_F(RsaTest, RejectsOversizedOperands) {
  EXPECT_FALSE(RsaEncrypt(key_pair_->public_key, key_pair_->public_key.n).ok());
  EXPECT_FALSE(RsaDecrypt(key_pair_->private_key, key_pair_->public_key.n).ok());
}

TEST_F(RsaTest, MultiplicativeHomomorphism) {
  // Textbook RSA: E(a)*E(b) = E(ab) — the malleability the randomized
  // padding in Protocol 6 works around.
  BigUInt a(12345), b(67890);
  const auto& pub = key_pair_->public_key;
  BigUInt ca = RsaEncrypt(pub, a).ValueOrDie();
  BigUInt cb = RsaEncrypt(pub, b).ValueOrDie();
  BigUInt cab = ModMul(ca, cb, pub.n);
  EXPECT_EQ(RsaDecrypt(key_pair_->private_key, cab).ValueOrDie(), a * b);
}

TEST_F(RsaTest, GenerateRejectsBadSizes) {
  Rng rng(5);
  EXPECT_FALSE(RsaGenerateKeyPair(&rng, 64).ok());
  EXPECT_FALSE(RsaGenerateKeyPair(&rng, 513).ok());
}

TEST_F(RsaTest, DistinctKeysFromDistinctSeeds) {
  Rng r1(1), r2(2);
  auto k1 = RsaGenerateKeyPair(&r1, 256).ValueOrDie();
  auto k2 = RsaGenerateKeyPair(&r2, 256).ValueOrDie();
  EXPECT_NE(k1.public_key.n, k2.public_key.n);
}

TEST_F(RsaTest, HybridRoundTrip) {
  for (size_t len : {0u, 1u, 100u, 5000u}) {
    std::vector<uint8_t> msg(len);
    rng_->FillBytes(msg.data(), msg.size());
    auto ct = HybridEncrypt(key_pair_->public_key, msg, rng_).ValueOrDie();
    EXPECT_EQ(HybridDecrypt(key_pair_->private_key, ct).ValueOrDie(), msg);
  }
}

TEST_F(RsaTest, HybridIsRandomized) {
  std::vector<uint8_t> msg(100, 7);
  auto c1 = HybridEncrypt(key_pair_->public_key, msg, rng_).ValueOrDie();
  auto c2 = HybridEncrypt(key_pair_->public_key, msg, rng_).ValueOrDie();
  EXPECT_NE(c1.encapsulated_key, c2.encapsulated_key);
  EXPECT_NE(c1.payload, c2.payload);
}

TEST_F(RsaTest, HybridCiphertextSizeIsOneRsaBlockPlusPayload) {
  std::vector<uint8_t> msg(1000, 1);
  auto ct = HybridEncrypt(key_pair_->public_key, msg, rng_).ValueOrDie();
  // Encapsulated key <= one RSA block; payload == plaintext size (stream).
  EXPECT_EQ(ct.payload.size(), msg.size());
  EXPECT_LE(ct.encapsulated_key.SerializedSize(),
            key_pair_->public_key.CiphertextBytes() + 16);
}

TEST_F(RsaTest, HybridRejectsTinyModulus) {
  Rng rng(9);
  auto small = RsaGenerateKeyPair(&rng, 256).ValueOrDie();
  std::vector<uint8_t> msg(10, 1);
  EXPECT_FALSE(HybridEncrypt(small.public_key, msg, &rng).ok());
}

TEST_F(RsaTest, HybridDecryptRejectsBadNonce) {
  std::vector<uint8_t> msg(10, 1);
  auto ct = HybridEncrypt(key_pair_->public_key, msg, rng_).ValueOrDie();
  ct.nonce.pop_back();
  EXPECT_FALSE(HybridDecrypt(key_pair_->private_key, ct).ok());
}

}  // namespace
}  // namespace psi
