#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"

namespace psi {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Rng rng(202);
    static auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
    key_pair_ = &kp;
    rng_ = &rng;
  }
  static PaillierKeyPair* key_pair_;
  static Rng* rng_;
};

PaillierKeyPair* PaillierTest::key_pair_ = nullptr;
Rng* PaillierTest::rng_ = nullptr;

TEST_F(PaillierTest, KeyShapes) {
  EXPECT_EQ(key_pair_->public_key.n_squared,
            key_pair_->public_key.n * key_pair_->public_key.n);
  EXPECT_EQ(key_pair_->public_key.n.BitLength(), 512u);
}

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int i = 0; i < 25; ++i) {
    BigUInt m = BigUInt::RandomBelow(rng_, key_pair_->public_key.n);
    BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c).ValueOrDie(), m);
  }
}

TEST_F(PaillierTest, EdgePlaintexts) {
  for (uint64_t m : {0ull, 1ull}) {
    BigUInt c =
        PaillierEncrypt(key_pair_->public_key, BigUInt(m), rng_).ValueOrDie();
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c).ValueOrDie(),
              BigUInt(m));
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigUInt m(42);
  BigUInt c1 = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  BigUInt c2 = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  EXPECT_NE(c1, c2);
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  const auto& pub = key_pair_->public_key;
  for (int i = 0; i < 10; ++i) {
    uint64_t a = rng_->UniformU64(1u << 30);
    uint64_t b = rng_->UniformU64(1u << 30);
    BigUInt ca = PaillierEncrypt(pub, BigUInt(a), rng_).ValueOrDie();
    BigUInt cb = PaillierEncrypt(pub, BigUInt(b), rng_).ValueOrDie();
    BigUInt sum = PaillierAddCiphertexts(pub, ca, cb);
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, sum).ValueOrDie(),
              BigUInt(a + b));
  }
}

TEST_F(PaillierTest, HomomorphismWrapsModN) {
  const auto& pub = key_pair_->public_key;
  BigUInt near_n = pub.n - BigUInt(1);
  BigUInt ca = PaillierEncrypt(pub, near_n, rng_).ValueOrDie();
  BigUInt cb = PaillierEncrypt(pub, BigUInt(2), rng_).ValueOrDie();
  BigUInt sum = PaillierAddCiphertexts(pub, ca, cb);
  // (n - 1) + 2 == 1 (mod n)
  EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, sum).ValueOrDie(),
            BigUInt(1));
}

TEST_F(PaillierTest, ScalarMultiplication) {
  const auto& pub = key_pair_->public_key;
  BigUInt c = PaillierEncrypt(pub, BigUInt(1111), rng_).ValueOrDie();
  BigUInt c9 = PaillierMultiplyPlain(pub, c, BigUInt(9));
  EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c9).ValueOrDie(),
            BigUInt(9999));
}

TEST_F(PaillierTest, ManyTermAggregation) {
  // The homomorphic-sum extension protocol folds many ciphertexts together.
  const auto& pub = key_pair_->public_key;
  uint64_t expected = 0;
  BigUInt acc = PaillierEncrypt(pub, BigUInt(0), rng_).ValueOrDie();
  for (int i = 1; i <= 20; ++i) {
    expected += static_cast<uint64_t>(i) * 13;
    BigUInt c = PaillierEncrypt(pub, BigUInt(static_cast<uint64_t>(i) * 13),
                                rng_)
                    .ValueOrDie();
    acc = PaillierAddCiphertexts(pub, acc, c);
  }
  EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, acc).ValueOrDie(),
            BigUInt(expected));
}

TEST_F(PaillierTest, RejectsOversizedOperands) {
  EXPECT_FALSE(
      PaillierEncrypt(key_pair_->public_key, key_pair_->public_key.n, rng_)
          .ok());
  EXPECT_FALSE(
      PaillierDecrypt(key_pair_->private_key, key_pair_->public_key.n_squared)
          .ok());
}

TEST_F(PaillierTest, GenerateRejectsBadSizes) {
  Rng rng(7);
  EXPECT_FALSE(PaillierGenerateKeyPair(&rng, 100).ok());
  EXPECT_FALSE(PaillierGenerateKeyPair(&rng, 513).ok());
}

}  // namespace
}  // namespace psi
