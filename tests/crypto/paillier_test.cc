#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"
#include "common/serialize.h"

namespace psi {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Rng rng(202);
    static auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
    key_pair_ = &kp;
    rng_ = &rng;
  }
  static PaillierKeyPair* key_pair_;
  static Rng* rng_;
};

PaillierKeyPair* PaillierTest::key_pair_ = nullptr;
Rng* PaillierTest::rng_ = nullptr;

TEST_F(PaillierTest, KeyShapes) {
  EXPECT_EQ(key_pair_->public_key.n_squared,
            key_pair_->public_key.n * key_pair_->public_key.n);
  EXPECT_EQ(key_pair_->public_key.n.BitLength(), 512u);
}

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int i = 0; i < 25; ++i) {
    BigUInt m = BigUInt::RandomBelow(rng_, key_pair_->public_key.n);
    BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c).ValueOrDie(), m);
  }
}

TEST_F(PaillierTest, EdgePlaintexts) {
  for (uint64_t m : {0ull, 1ull}) {
    BigUInt c =
        PaillierEncrypt(key_pair_->public_key, BigUInt(m), rng_).ValueOrDie();
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c).ValueOrDie(),
              BigUInt(m));
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigUInt m(42);
  BigUInt c1 = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  BigUInt c2 = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  EXPECT_NE(c1, c2);
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  const auto& pub = key_pair_->public_key;
  for (int i = 0; i < 10; ++i) {
    uint64_t a = rng_->UniformU64(1u << 30);
    uint64_t b = rng_->UniformU64(1u << 30);
    BigUInt ca = PaillierEncrypt(pub, BigUInt(a), rng_).ValueOrDie();
    BigUInt cb = PaillierEncrypt(pub, BigUInt(b), rng_).ValueOrDie();
    BigUInt sum = PaillierAddCiphertexts(pub, ca, cb);
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, sum).ValueOrDie(),
              BigUInt(a + b));
  }
}

TEST_F(PaillierTest, HomomorphismWrapsModN) {
  const auto& pub = key_pair_->public_key;
  BigUInt near_n = pub.n - BigUInt(1);
  BigUInt ca = PaillierEncrypt(pub, near_n, rng_).ValueOrDie();
  BigUInt cb = PaillierEncrypt(pub, BigUInt(2), rng_).ValueOrDie();
  BigUInt sum = PaillierAddCiphertexts(pub, ca, cb);
  // (n - 1) + 2 == 1 (mod n)
  EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, sum).ValueOrDie(),
            BigUInt(1));
}

TEST_F(PaillierTest, ScalarMultiplication) {
  const auto& pub = key_pair_->public_key;
  BigUInt c = PaillierEncrypt(pub, BigUInt(1111), rng_).ValueOrDie();
  BigUInt c9 = PaillierMultiplyPlain(pub, c, BigUInt(9));
  EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c9).ValueOrDie(),
            BigUInt(9999));
}

TEST_F(PaillierTest, ManyTermAggregation) {
  // The homomorphic-sum extension protocol folds many ciphertexts together.
  const auto& pub = key_pair_->public_key;
  uint64_t expected = 0;
  BigUInt acc = PaillierEncrypt(pub, BigUInt(0), rng_).ValueOrDie();
  for (int i = 1; i <= 20; ++i) {
    expected += static_cast<uint64_t>(i) * 13;
    BigUInt c = PaillierEncrypt(pub, BigUInt(static_cast<uint64_t>(i) * 13),
                                rng_)
                    .ValueOrDie();
    acc = PaillierAddCiphertexts(pub, acc, c);
  }
  EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, acc).ValueOrDie(),
            BigUInt(expected));
}

TEST_F(PaillierTest, RejectsOversizedOperands) {
  EXPECT_FALSE(
      PaillierEncrypt(key_pair_->public_key, key_pair_->public_key.n, rng_)
          .ok());
  EXPECT_FALSE(
      PaillierDecrypt(key_pair_->private_key, key_pair_->public_key.n_squared)
          .ok());
}

TEST_F(PaillierTest, GenerateRejectsBadSizes) {
  Rng rng(7);
  EXPECT_FALSE(PaillierGenerateKeyPair(&rng, 100).ok());
  EXPECT_FALSE(PaillierGenerateKeyPair(&rng, 513).ok());
}

// ------------------------------------------------------- CRT decryption --

TEST_F(PaillierTest, KeygenFillsCrtBlock) {
  const auto& sk = key_pair_->private_key;
  ASSERT_TRUE(sk.HasCrt());
  EXPECT_EQ(sk.p * sk.q, sk.n);
  EXPECT_EQ(sk.p_squared, sk.p * sk.p);
  EXPECT_EQ(sk.q_squared, sk.q * sk.q);
  EXPECT_EQ(ModMul(sk.q % sk.p, sk.q_inv_p, sk.p), BigUInt(1));
}

TEST_F(PaillierTest, CrtMatchesClassicDecrypt) {
  for (int i = 0; i < 25; ++i) {
    BigUInt m = BigUInt::RandomBelow(rng_, key_pair_->public_key.n);
    BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
    EXPECT_EQ(PaillierDecryptCrt(key_pair_->private_key, c).ValueOrDie(), m);
    EXPECT_EQ(PaillierDecrypt(key_pair_->private_key, c).ValueOrDie(), m);
  }
}

TEST_F(PaillierTest, CrtEdgePlaintexts) {
  // m = 0 and m = n - 1 are the extremes of the plaintext space.
  for (const BigUInt& m :
       {BigUInt(), key_pair_->public_key.n - BigUInt(1)}) {
    BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
    EXPECT_EQ(PaillierDecryptCrt(key_pair_->private_key, c).ValueOrDie(), m);
  }
}

TEST_F(PaillierTest, CrtRejectsOversizedCiphertext) {
  EXPECT_FALSE(
      PaillierDecryptCrt(key_pair_->private_key,
                         key_pair_->public_key.n_squared)
          .ok());
  EXPECT_FALSE(PaillierDecryptCrt(key_pair_->private_key,
                                  key_pair_->public_key.n_squared + BigUInt(5))
                   .ok());
}

TEST_F(PaillierTest, CrtRejectsNonCoprimeCiphertext) {
  // gcd(c, n) != 1 can never come out of a valid encryption; the classic
  // path detects it via u != 1 (mod n), the CRT path via the gcd check.
  const BigUInt& p = key_pair_->private_key.p;
  EXPECT_FALSE(PaillierDecryptCrt(key_pair_->private_key, p).ok());
  EXPECT_FALSE(PaillierDecrypt(key_pair_->private_key, p).ok());
}

TEST_F(PaillierTest, CrtFallsBackWithoutCrtBlock) {
  PaillierPrivateKey stripped = key_pair_->private_key;
  stripped.p = BigUInt();
  ASSERT_FALSE(stripped.HasCrt());
  BigUInt m(987654321);
  BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  EXPECT_EQ(PaillierDecryptCrt(stripped, c).ValueOrDie(), m);
}

TEST_F(PaillierTest, DecryptBatchMatchesSerial) {
  std::vector<BigUInt> cts;
  std::vector<BigUInt> expected;
  for (int i = 0; i < 17; ++i) {
    BigUInt m = BigUInt::RandomBelow(rng_, key_pair_->public_key.n);
    expected.push_back(m);
    cts.push_back(
        PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie());
  }
  auto batch = PaillierDecryptBatch(key_pair_->private_key, cts).ValueOrDie();
  ASSERT_EQ(batch.size(), expected.size());
  for (size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(batch[i], expected[i]);
}

TEST_F(PaillierTest, DecryptBatchSurfacesMalformedCiphertext) {
  std::vector<BigUInt> cts = {
      PaillierEncrypt(key_pair_->public_key, BigUInt(1), rng_).ValueOrDie(),
      key_pair_->public_key.n_squared + BigUInt(1)};
  EXPECT_FALSE(PaillierDecryptBatch(key_pair_->private_key, cts).ok());
}

// --------------------------------------------------- key serialization --

TEST_F(PaillierTest, PrivateKeySerializationRoundTrip) {
  BinaryWriter w;
  WritePaillierPrivateKey(&w, key_pair_->private_key);
  BinaryReader r(w.buffer());
  PaillierPrivateKey back;
  ASSERT_TRUE(ReadPaillierPrivateKey(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  ASSERT_TRUE(back.HasCrt());
  EXPECT_EQ(back.n, key_pair_->private_key.n);
  EXPECT_EQ(back.lambda, key_pair_->private_key.lambda);
  EXPECT_EQ(back.mu, key_pair_->private_key.mu);
  EXPECT_EQ(back.p, key_pair_->private_key.p);
  EXPECT_EQ(back.q, key_pair_->private_key.q);
  EXPECT_EQ(back.hp, key_pair_->private_key.hp);
  EXPECT_EQ(back.hq, key_pair_->private_key.hq);
  EXPECT_EQ(back.q_inv_p, key_pair_->private_key.q_inv_p);
  BigUInt m(31337);
  BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  EXPECT_EQ(PaillierDecryptCrt(back, c).ValueOrDie(), m);
}

TEST_F(PaillierTest, ReadsLegacyPrivateKeyFormat) {
  // The pre-CRT wire layout: n, lambda, mu with no version byte. A valid
  // modulus starts with a limb-count varint >= 2, which is how the reader
  // tells the two formats apart.
  BinaryWriter w;
  WriteBigUInt(&w, key_pair_->private_key.n);
  WriteBigUInt(&w, key_pair_->private_key.lambda);
  WriteBigUInt(&w, key_pair_->private_key.mu);
  BinaryReader r(w.buffer());
  PaillierPrivateKey back;
  ASSERT_TRUE(ReadPaillierPrivateKey(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(back.HasCrt());
  EXPECT_EQ(back.n, key_pair_->private_key.n);
  // Classic decryption still works (CRT transparently falls back).
  BigUInt m(271828);
  BigUInt c = PaillierEncrypt(key_pair_->public_key, m, rng_).ValueOrDie();
  EXPECT_EQ(PaillierDecryptCrt(back, c).ValueOrDie(), m);
}

TEST_F(PaillierTest, SerializationRejectsInconsistentCrtBlock) {
  PaillierPrivateKey tampered = key_pair_->private_key;
  tampered.p += BigUInt(2);  // p * q no longer equals n.
  BinaryWriter w;
  WritePaillierPrivateKey(&w, tampered);
  BinaryReader r(w.buffer());
  PaillierPrivateKey back;
  EXPECT_FALSE(ReadPaillierPrivateKey(&r, &back).ok());
}

}  // namespace
}  // namespace psi
