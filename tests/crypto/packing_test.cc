#include "crypto/packing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace psi {
namespace {

TEST(PackingCodecTest, GeometryFromBoundAndBudget) {
  // 20-bit bound, 4 addends -> 2 guard bits -> 22-bit slots, 23 of which fit
  // a 511-bit plaintext.
  auto codec =
      PackingCodec::Create(511, BigUInt((1ull << 20) - 1), 4).ValueOrDie();
  EXPECT_EQ(codec.guard_bits(), 2u);
  EXPECT_EQ(codec.slot_bits(), 22u);
  EXPECT_EQ(codec.slots_per_plaintext(), 23u);
  EXPECT_EQ(codec.pad_bits(), 0u);
  EXPECT_EQ(codec.NumPlaintexts(0), 0u);
  EXPECT_EQ(codec.NumPlaintexts(1), 1u);
  EXPECT_EQ(codec.NumPlaintexts(23), 1u);
  EXPECT_EQ(codec.NumPlaintexts(24), 2u);
  EXPECT_EQ(codec.NumPlaintexts(230), 10u);
}

TEST(PackingCodecTest, CreateRejectsDegenerateGeometry) {
  const BigUInt bound((1ull << 20) - 1);
  // Slot wider than the plaintext.
  EXPECT_FALSE(PackingCodec::Create(16, bound, 1).ok());
  // The pad eats every bit the slot would need.
  EXPECT_FALSE(PackingCodec::Create(30, bound, 1, /*pad_bits=*/20).ok());
  EXPECT_FALSE(PackingCodec::Create(20, bound, 1, /*pad_bits=*/20).ok());
  // Nonsense parameters.
  EXPECT_FALSE(PackingCodec::Create(511, BigUInt(), 1).ok());
  EXPECT_FALSE(PackingCodec::Create(511, bound, 0).ok());
}

TEST(PackingCodecTest, RoundTripAtEverySlotWidth) {
  // Sweep slot widths 1 .. n_bits/2 for a 64-bit plaintext by varying the
  // counter bound (max_additions = 1 -> no guard bits -> slot == BitLength).
  constexpr size_t kPlaintextBits = 64;
  Rng rng(4242);
  for (size_t w = 1; w <= kPlaintextBits / 2; ++w) {
    const BigUInt bound = BigUInt::PowerOfTwo(w) - BigUInt(1);
    auto codec = PackingCodec::Create(kPlaintextBits, bound, 1).ValueOrDie();
    ASSERT_EQ(codec.slot_bits(), w) << "width " << w;
    ASSERT_EQ(codec.slots_per_plaintext(), kPlaintextBits / w);

    // Enough counters for two full plaintexts plus a ragged tail; always
    // include both extremes of the slot range.
    std::vector<BigUInt> counters = {BigUInt(), bound};
    const size_t total = 2 * codec.slots_per_plaintext() + 3;
    while (counters.size() < total) {
      counters.push_back(BigUInt::RandomBelow(&rng, bound + BigUInt(1)));
    }

    auto packed = codec.Pack(counters).ValueOrDie();
    ASSERT_EQ(packed.size(), codec.NumPlaintexts(total));
    auto back = codec.Unpack(packed, total).ValueOrDie();
    ASSERT_EQ(back.size(), total);
    for (size_t i = 0; i < total; ++i) {
      ASSERT_EQ(back[i], counters[i]) << "width " << w << " counter " << i;
    }
  }
}

TEST(PackingCodecTest, PackRejectsCounterAboveBound) {
  auto codec = PackingCodec::Create(64, BigUInt(255), 1).ValueOrDie();
  // In-bounds values pack fine; bound + 1 is a hard pack-time error, not
  // silent truncation.
  EXPECT_TRUE(codec.Pack(std::vector<BigUInt>{BigUInt(255)}).ok());
  auto over = codec.Pack(std::vector<BigUInt>{BigUInt(3), BigUInt(256)});
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);
}

TEST(PackingCodecTest, AdditionBudgetIsEnforced) {
  auto codec = PackingCodec::Create(128, BigUInt(1000), 5).ValueOrDie();
  EXPECT_TRUE(codec.CheckAdditionBudget(1).ok());
  EXPECT_TRUE(codec.CheckAdditionBudget(5).ok());
  auto over = codec.CheckAdditionBudget(6);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kFailedPrecondition);
}

TEST(PackingCodecTest, GuardBitsAbsorbSlotWiseSums) {
  // 8-bit bound with a budget of 4 -> 10-bit slots. Adding four packed
  // plaintexts of all-maximal counters lands exactly on the worst case
  // 4 * 255 = 1020 < 2^10, so every slot sum is exact with no carry into
  // its neighbour. A fifth addend (5 * 255 = 1275) would overflow the slot,
  // which is precisely what CheckAdditionBudget rejects above.
  constexpr uint64_t kAddends = 4;
  auto codec = PackingCodec::Create(64, BigUInt(255), kAddends).ValueOrDie();
  ASSERT_EQ(codec.slot_bits(), 10u);
  const size_t count = codec.slots_per_plaintext();
  std::vector<BigUInt> maxed(count, BigUInt(255));
  auto packed = codec.Pack(maxed).ValueOrDie();
  ASSERT_EQ(packed.size(), 1u);
  BigUInt sum;
  for (uint64_t i = 0; i < kAddends; ++i) sum += packed[0];
  auto slots = codec.Unpack({sum}, count).ValueOrDie();
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(slots[i], BigUInt(255 * kAddends));
  }
}

TEST(PackingCodecTest, PadsOccupyLowBitsAndAreSkippedOnUnpack) {
  auto codec =
      PackingCodec::Create(64, BigUInt(255), 1, /*pad_bits=*/16).ValueOrDie();
  ASSERT_EQ(codec.slots_per_plaintext(), 6u);
  std::vector<BigUInt> counters = {BigUInt(1), BigUInt(2), BigUInt(3),
                                   BigUInt(4), BigUInt(5), BigUInt(6),
                                   BigUInt(7)};
  std::vector<BigUInt> pads = {BigUInt(0xBEEF), BigUInt(0x7)};
  auto packed = codec.Pack(counters, pads).ValueOrDie();
  ASSERT_EQ(packed.size(), 2u);
  // The pad sits verbatim in the low pad_bits of each plaintext.
  EXPECT_EQ(packed[0] % BigUInt::PowerOfTwo(16), pads[0]);
  EXPECT_EQ(packed[1] % BigUInt::PowerOfTwo(16), pads[1]);
  // Unpack returns the counters only.
  auto back = codec.Unpack(packed, counters.size()).ValueOrDie();
  for (size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(back[i], counters[i]);
  }
  // One pad per plaintext, and it must fit the reserved width.
  EXPECT_FALSE(codec.Pack(counters, {BigUInt(1)}).ok());
  EXPECT_FALSE(
      codec.Pack(counters, {BigUInt(1ull << 16), BigUInt(2)}).ok());
}

TEST(PackingCodecTest, UnpackRejectsMalformedInput) {
  auto codec = PackingCodec::Create(32, BigUInt(255), 1).ValueOrDie();
  // Wrong plaintext count for the requested number of counters.
  EXPECT_FALSE(codec.Unpack({}, 1).ok());
  EXPECT_FALSE(codec.Unpack({BigUInt(1), BigUInt(2)}, 3).ok());
  // A plaintext wider than the declared geometry is rejected, not wrapped.
  EXPECT_FALSE(codec.Unpack({BigUInt::PowerOfTwo(40)}, 1).ok());
}

TEST(PackingCodecTest, UnpackU64NarrowsWithRangeCheck) {
  // 70-bit slots hold values no uint64 can: UnpackU64 must refuse them.
  const BigUInt bound = BigUInt::PowerOfTwo(70) - BigUInt(1);
  auto codec = PackingCodec::Create(256, bound, 1).ValueOrDie();
  std::vector<BigUInt> small = {BigUInt(77), BigUInt(0)};
  auto packed_small = codec.Pack(small).ValueOrDie();
  auto u64s = codec.UnpackU64(packed_small, small.size()).ValueOrDie();
  EXPECT_EQ(u64s[0], 77u);
  EXPECT_EQ(u64s[1], 0u);
  std::vector<BigUInt> wide = {BigUInt::PowerOfTwo(65)};
  auto packed_wide = codec.Pack(wide).ValueOrDie();
  EXPECT_FALSE(codec.UnpackU64(packed_wide, wide.size()).ok());
}

TEST(PackingCodecTest, CeilLog2Values) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
  EXPECT_EQ(CeilLog2(uint64_t{1} << 63), 63u);
}

}  // namespace
}  // namespace psi
