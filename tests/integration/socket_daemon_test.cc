// Loopback-socket recovery sweeps: Protocols 4 and 6 through a forked psid
// daemon that is SIGKILLed and restarted at every round of the protocol.
//
// The acceptance invariants (docs/TRANSPORT.md, docs/FAULTS.md):
//   1. A session whose peer daemon is SIGKILLed mid-RunSession completes
//      with a transcript bitwise identical to the fault-free run — the
//      resume handshake reconnects, resynchronizes (attempt, next_stage)
//      and recomputes nothing that was checkpointed.
//   2. A recovery that needed exactly one resume meters exactly one
//      handshake round, matching SessionResumeCosts to the byte.
//   3. The seeded chaos plans that drive FaultyNetwork run unchanged
//      through the shared FaultInjector over sockets, and the chaos
//      invariant holds there too: bitwise-exact result or clean error,
//      with PendingCount() == 0 on every outcome.
//   4. One daemon serves multiple concurrent sessions.
//
// The daemon runs in a forked child so SIGKILL genuinely destroys its
// state (sockets, parsers, queues); the parent's client transport must
// detect the dead wire, back off, re-dial the restarted process on the
// same port, and resume.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"
#include "mpc/session.h"
#include "net/cost_model.h"
#include "net/daemon.h"
#include "net/fault.h"
#include "net/socket_transport.h"

namespace psi {
namespace {

// Seeds for the socket chaos sweep. Every dropped frame over the wire waits
// out a real receive deadline, so the default is far smaller than the
// simulator sweep's 200; PSI_CHAOS_SEEDS scales it for the CI soak.
uint64_t NumSocketChaosSeeds() {
  const char* env = std::getenv("PSI_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return 12;
  const uint64_t parsed = std::strtoull(env, nullptr, 10);
  return parsed == 0 ? 12 : parsed / 16 + 2;
}

const uint64_t kNumSocketChaosSeeds = NumSocketChaosSeeds();

// ---------------------------------------------------------------------------
// ForkedDaemon: a psid process the test can SIGKILL.

class ForkedDaemon {
 public:
  explicit ForkedDaemon(uint16_t port = 0) { Spawn(port); }
  ~ForkedDaemon() { Kill(); }
  ForkedDaemon(const ForkedDaemon&) = delete;
  ForkedDaemon& operator=(const ForkedDaemon&) = delete;

  uint16_t port() const { return port_; }

  /// SIGKILL the daemon process: no goodbye frames, no orderly close — the
  /// kernel resets its connections, exactly like a crashed host.
  void Kill() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
  }

  /// Kill (if needed) and start a fresh process on the same port. The
  /// daemon holds no protocol state, so the replacement needs nothing from
  /// its predecessor; SO_REUSEADDR reclaims the port.
  void Restart() {
    Kill();
    Spawn(port_);
  }

 private:
  void Spawn(uint16_t port) {
    PsidConfig config;
    config.hosted_parties = {"P1"};
    PsidDaemon daemon(config);
    // Listen in the parent so the bound (possibly ephemeral) port is known
    // before the child exists; the child inherits the listening socket.
    auto bound = daemon.Listen(port);
    ASSERT_TRUE(bound.ok()) << bound.status().message();
    port_ = bound.ValueOrDie();
    pid_ = fork();
    ASSERT_NE(pid_, -1);
    if (pid_ == 0) {
      // Child: serve until SIGKILL. _exit keeps the parent's gtest/atexit
      // machinery from running twice.
      const Status served = daemon.Run();
      (void)served;
      _exit(0);
    }
    // Parent: the child owns the sockets now.
    daemon.CloseAll();
  }

  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

// ---------------------------------------------------------------------------
// Shared world and protocol runners. The world and every RNG seed mirror
// tests/integration/chaos_test.cc, so socket transcripts are directly
// comparable with the simulator sweeps.

struct WorldData {
  size_t m = 0;
  size_t n = 0;
  size_t actions = 0;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
};

WorldData MakeWorldData(size_t m, size_t n, size_t arcs, size_t actions,
                        uint64_t seed) {
  WorldData w;
  w.m = m;
  w.n = n;
  w.actions = actions;
  Rng rng(seed);
  w.graph = std::make_unique<SocialGraph>(
      ErdosRenyiArcs(&rng, n, arcs).ValueOrDie());
  auto truth = GroundTruthInfluence::Random(&rng, *w.graph, 0.1, 0.7);
  CascadeParams params;
  params.num_actions = actions;
  params.seeds_per_action = 2;
  w.log = GenerateCascades(&rng, *w.graph, truth, params).ValueOrDie();
  w.provider_logs = ExclusivePartition(&rng, w.log, m).ValueOrDie();
  return w;
}

struct Parties {
  PartyId host;
  std::vector<PartyId> providers;
};

Parties RegisterParties(Network* net, size_t m) {
  Parties p;
  p.host = net->RegisterParty("H");
  for (size_t k = 0; k < m; ++k) {
    p.providers.push_back(net->RegisterParty("P" + std::to_string(k + 1)));
  }
  return p;
}

SocketTransportConfig FastConfig(const std::string& session) {
  SocketTransportConfig config;
  config.seed = 21;
  config.session_name = session;
  config.recv_timeout_ms = 2000;
  config.connect_timeout_ms = 1000;
  config.handshake_timeout_ms = 1000;
  config.heartbeat_interval_ms = 20;
  config.heartbeat_timeout_ms = 300;
  config.max_reconnect_attempts = 8;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 30;
  return config;
}

// Connects provider P1 to the daemon. Every channel touching P1 then
// crosses the wire through the forked process, and killing it severs those
// channels mid-protocol; the other channels stay in-process, exactly like
// the simulator.
void ConnectP1(SocketNetwork* net, const Parties& parties,
               const ForkedDaemon& daemon) {
  Status connected =
      net->ConnectDaemon("127.0.0.1", daemon.port(), {parties.providers[0]});
  ASSERT_TRUE(connected.ok()) << connected.message();
}

// The protocol runners take pre-registered parties so callers can attach
// daemons between registration and the run. RNG seeds are fixed: any two
// completed runs, on any backend, must agree bitwise.
Result<LinkInfluence> RunP4(const WorldData& w, Network* net,
                            const Parties& parties,
                            const RetryPolicy* retry = nullptr,
                            SessionStats* stats = nullptr) {
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.paillier_bits = 384;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(1000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(501), pair_secret(502);
  LinkInfluenceProtocol proto(net, parties.host, parties.providers, cfg);
  if (retry == nullptr) {
    return proto.Run(*w.graph, w.actions, w.provider_logs, &host_rng,
                     rng_ptrs, &pair_secret);
  }
  return proto.RunSession(*w.graph, w.actions, w.provider_logs, &host_rng,
                          rng_ptrs, &pair_secret, *retry, stats);
}

Result<Protocol6Output> RunP6(const WorldData& w, Network* net,
                              const Parties& parties,
                              const RetryPolicy* retry = nullptr,
                              SessionStats* stats = nullptr) {
  Protocol6Config cfg;
  cfg.rsa_bits = 384;
  cfg.encryption = Protocol6Config::EncryptionMode::kHybrid;
  cfg.obfuscation_factor = 1.5;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(2000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(601);
  PropagationGraphProtocol proto(net, parties.host, parties.providers, cfg);
  if (retry == nullptr) {
    return proto.Run(*w.graph, w.actions, w.provider_logs, &host_rng,
                     rng_ptrs);
  }
  return proto.RunSession(*w.graph, w.actions, w.provider_logs, &host_rng,
                          rng_ptrs, *retry, stats);
}

std::vector<std::array<uint64_t, 4>> CanonicalArcs(const Protocol6Output& out) {
  std::vector<std::array<uint64_t, 4>> arcs;
  for (size_t a = 0; a < out.graphs.size(); ++a) {
    for (NodeId v = 0; v < out.graphs[a].num_nodes(); ++v) {
      for (const auto& arc : out.graphs[a].OutArcs(v)) {
        arcs.push_back({a, static_cast<uint64_t>(v),
                        static_cast<uint64_t>(arc.to), arc.delta_t});
      }
    }
  }
  std::sort(arcs.begin(), arcs.end());
  return arcs;
}

void ExpectSameInfluence(const LinkInfluence& got,
                         const LinkInfluence& baseline,
                         const std::string& context) {
  ASSERT_EQ(got.p.size(), baseline.p.size()) << context;
  for (size_t e = 0; e < got.p.size(); ++e) {
    ASSERT_EQ(got.p[e], baseline.p[e]) << context << " arc=" << e;
  }
}

// When a run recovered with exactly one resume, its handshake round must
// meter exactly the analytic SessionResumeCosts — over the wire just as on
// the simulator (transport framing is never protocol metering).
void ExpectOneRoundResumeMetering(Network* net, const SessionStats& stats,
                                  size_t num_parties,
                                  const std::string& context) {
  SessionResumeCostParams p;
  p.num_parties = num_parties;
  auto model = SessionResumeCosts(p).ValueOrDie();
  ASSERT_EQ(model.nr, 1u);
  auto report = net->Report();
  const RoundStats* resume_round = nullptr;
  for (const auto& round : report.rounds) {
    if (round.label.find(".resume") != std::string::npos) {
      ASSERT_EQ(resume_round, nullptr)
          << context << ": two resume rounds for one resume";
      resume_round = &round;
    }
  }
  ASSERT_NE(resume_round, nullptr) << context;
  EXPECT_EQ(resume_round->num_messages, model.nm) << context;
  EXPECT_EQ(resume_round->num_payload_bytes * 8, model.ms_bits) << context;
  EXPECT_EQ(resume_round->num_bytes,
            resume_round->num_payload_bytes +
                model.nm * kEnvelopeOverheadBytes)
      << context;
  EXPECT_EQ(stats.handshake_messages, model.nm) << context;
  EXPECT_EQ(stats.handshake_bytes, resume_round->num_bytes) << context;
}

// ---------------------------------------------------------------------------
// Baseline parity: a clean socket run is metered identically to the
// simulator run, byte for byte — the property that makes every other
// cross-backend comparison in this file meaningful.

TEST(SocketDaemonTest, CleanSocketRunMatchesSimulatorTranscript) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network sim;
  auto baseline = RunP4(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie();
  auto sim_report = sim.Report();

  ForkedDaemon daemon;
  SocketNetwork net(FastConfig("clean-parity"));
  Parties parties = RegisterParties(&net, w.m);
  ConnectP1(&net, parties, daemon);
  auto result = RunP4(w, &net, parties);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ExpectSameInfluence(result.ValueOrDie(), baseline, "clean socket run");

  // Bitwise-identical protocol transcript: same rounds, same message
  // counts, same wire bytes — the socket backend meters nothing extra.
  auto sock_report = net.Report();
  ASSERT_EQ(sock_report.rounds.size(), sim_report.rounds.size());
  for (size_t i = 0; i < sim_report.rounds.size(); ++i) {
    EXPECT_EQ(sock_report.rounds[i].label, sim_report.rounds[i].label);
    EXPECT_EQ(sock_report.rounds[i].num_messages,
              sim_report.rounds[i].num_messages);
    EXPECT_EQ(sock_report.rounds[i].num_bytes,
              sim_report.rounds[i].num_bytes);
    EXPECT_EQ(sock_report.rounds[i].num_payload_bytes,
              sim_report.rounds[i].num_payload_bytes);
  }
  EXPECT_EQ(sock_report.num_bytes, sim_report.num_bytes);
  // But real frames crossed the wire, and every relay was echoed back.
  EXPECT_GT(net.transport_stats().frames_relayed, 0u);
  EXPECT_EQ(net.transport_stats().frames_echoed,
            net.transport_stats().frames_relayed);
  EXPECT_EQ(net.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// The SIGKILL sweeps: kill + restart the daemon at every protocol round.

// Counts the protocol's rounds with a clean socket run.
uint64_t CountRounds(const WorldData& w, bool p6) {
  ForkedDaemon daemon;
  SocketNetwork net(FastConfig(p6 ? "count-p6" : "count-p4"));
  Parties parties = RegisterParties(&net, w.m);
  ConnectP1(&net, parties, daemon);
  uint64_t rounds = 0;
  net.SetRoundObserver(
      [&rounds](const std::string&, uint64_t index) { rounds = index + 1; });
  if (p6) {
    if (!RunP6(w, &net, parties).ok()) return 0;
  } else {
    if (!RunP4(w, &net, parties).ok()) return 0;
  }
  return rounds;
}

TEST(SocketDaemonTest, Protocol4SurvivesDaemonSigkillAtEveryRound) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network sim;
  auto baseline = RunP4(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie();
  const uint64_t rounds = CountRounds(w, /*p6=*/false);
  ASSERT_GT(rounds, 2u);

  uint64_t recovered_runs = 0, metered_resumes = 0;
  for (uint64_t kill_at = 1; kill_at < rounds; ++kill_at) {
    ForkedDaemon daemon;
    SocketNetwork net(FastConfig("p4-kill-" + std::to_string(kill_at)));
    Parties parties = RegisterParties(&net, w.m);
    ConnectP1(&net, parties, daemon);
    bool killed = false;
    net.SetRoundObserver([&](const std::string&, uint64_t index) {
      if (index == kill_at && !killed) {
        killed = true;
        // SIGKILL the daemon process and restart it on the same port: the
        // client must detect the dead wire mid-round, fail the attempt
        // cleanly, reconnect with backoff, and resume from checkpoints.
        daemon.Restart();
      }
    });
    RetryPolicy retry;
    retry.max_attempts = 5;
    SessionStats stats;
    auto result = RunP4(w, &net, parties, &retry, &stats);
    ASSERT_TRUE(killed) << "kill_at=" << kill_at
                        << ": observer never fired (round count stale?)";
    ASSERT_EQ(net.PendingCount(), 0u) << "kill_at=" << kill_at;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "kill_at=" << kill_at;
    ASSERT_TRUE(result.ok())
        << "kill_at=" << kill_at << ": " << result.status().message();
    ExpectSameInfluence(result.ValueOrDie(), baseline,
                        "kill_at=" + std::to_string(kill_at));
    if (stats.resumes > 0) ++recovered_runs;
    if (stats.resumes == 1) {
      ++metered_resumes;
      ExpectOneRoundResumeMetering(&net, stats, w.m + 1,
                                   "kill_at=" + std::to_string(kill_at));
    }
  }
  // The sweep must exercise actual recovery, and at least one position must
  // recover with a single, exactly-metered resume round.
  EXPECT_GT(recovered_runs, 0u);
  EXPECT_GT(metered_resumes, 0u);
}

TEST(SocketDaemonTest, Protocol6SurvivesDaemonSigkillAtEveryRound) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network sim;
  auto baseline =
      CanonicalArcs(RunP6(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie());
  const uint64_t rounds = CountRounds(w, /*p6=*/true);
  ASSERT_GT(rounds, 2u);

  uint64_t recovered_runs = 0, metered_resumes = 0;
  for (uint64_t kill_at = 1; kill_at < rounds; ++kill_at) {
    ForkedDaemon daemon;
    SocketNetwork net(FastConfig("p6-kill-" + std::to_string(kill_at)));
    Parties parties = RegisterParties(&net, w.m);
    ConnectP1(&net, parties, daemon);
    bool killed = false;
    net.SetRoundObserver([&](const std::string&, uint64_t index) {
      if (index == kill_at && !killed) {
        killed = true;
        daemon.Restart();
      }
    });
    RetryPolicy retry;
    retry.max_attempts = 5;
    SessionStats stats;
    auto result = RunP6(w, &net, parties, &retry, &stats);
    ASSERT_TRUE(killed) << "kill_at=" << kill_at;
    ASSERT_EQ(net.PendingCount(), 0u) << "kill_at=" << kill_at;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "kill_at=" << kill_at;
    ASSERT_TRUE(result.ok())
        << "kill_at=" << kill_at << ": " << result.status().message();
    ASSERT_EQ(CanonicalArcs(result.ValueOrDie()), baseline)
        << "kill_at=" << kill_at;
    if (stats.resumes > 0) ++recovered_runs;
    if (stats.resumes == 1) {
      ++metered_resumes;
      ExpectOneRoundResumeMetering(&net, stats, w.m + 1,
                                   "kill_at=" + std::to_string(kill_at));
    }
  }
  EXPECT_GT(recovered_runs, 0u);
  EXPECT_GT(metered_resumes, 0u);
}

// ---------------------------------------------------------------------------
// Chaos over sockets: the same seeded plan generator that drives the
// simulator sweeps (chaos_test.cc), through the shared FaultInjector
// decorating the socket relay path. The chaos invariant must hold over the
// wire: bitwise-exact result or clean error, never a wrong answer, never a
// leaked frame. (Exact per-seed schedule equality with the simulator is
// deliberately not asserted: a loaded machine can stretch an echo past the
// receive deadline, changing retransmission counts without breaking any
// invariant.)

TEST(SocketDaemonTest, ChaosPlansHoldInvariantsOverSockets) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network clean;
  auto baseline = RunP4(w, &clean, RegisterParties(&clean, w.m)).ValueOrDie();
  ForkedDaemon daemon;

  uint64_t ok_runs = 0, failed_runs = 0, faults_injected = 0;
  for (uint64_t seed = 0; seed < kNumSocketChaosSeeds; ++seed) {
    // A short receive deadline keeps dropped-frame waits cheap; a fresh
    // session name per seed keeps a failed run's in-flight frames from
    // leaking into the next run through the shared daemon.
    SocketTransportConfig config =
        FastConfig("chaos-" + std::to_string(seed));
    config.recv_timeout_ms = 150;
    config.heartbeat_timeout_ms = 2000;  // No kills here: be load-tolerant.
    SocketNetwork net(config);
    Parties parties = RegisterParties(&net, w.m);
    ConnectP1(&net, parties, daemon);
    net.AttachFaultInjector(FaultPlan::RandomPlan(seed, w.m + 1));
    auto result = RunP4(w, &net, parties);
    ASSERT_NE(net.fault_stats(), nullptr);
    faults_injected += net.fault_stats()->injected();

    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      ExpectSameInfluence(result.ValueOrDie(), baseline,
                          "seed=" + std::to_string(seed));
    } else {
      ++failed_runs;
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kNumSocketChaosSeeds);
  // The plans must actually fire over the wire, and some runs must survive
  // their schedules end to end.
  EXPECT_GT(faults_injected, 0u);
  EXPECT_GT(ok_runs, 0u);
}

// ---------------------------------------------------------------------------
// One daemon, many sessions.

TEST(SocketDaemonTest, OneDaemonServesConcurrentSessions) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network sim;
  auto baseline = RunP4(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie();
  ForkedDaemon daemon;

  // Two independent client transports, distinct session names, one daemon
  // process: both protocol runs proceed concurrently on their own threads
  // and both must reproduce the baseline exactly.
  constexpr size_t kSessions = 2;
  std::vector<Result<LinkInfluence>> results(
      kSessions, Result<LinkInfluence>(LinkInfluence{}));
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      SocketNetwork net(FastConfig("concurrent-" + std::to_string(s)));
      Parties parties = RegisterParties(&net, w.m);
      Status connected = net.ConnectDaemon("127.0.0.1", daemon.port(),
                                           {parties.providers[0]});
      if (!connected.ok()) {
        results[s] = Result<LinkInfluence>(connected);
        return;
      }
      results[s] = RunP4(w, &net, parties);
    });
  }
  for (auto& t : threads) t.join();
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(results[s].ok())
        << "session " << s << ": " << results[s].status().message();
    ExpectSameInfluence(results[s].ValueOrDie(), baseline,
                        "session " + std::to_string(s));
  }
}

}  // namespace
}  // namespace psi
