// Remote stage execution through forked psid daemons, and every way of
// killing them.
//
// The acceptance invariants (docs/TRANSPORT.md, "Remote execution"):
//   1. A clean remote run — every provider stage executed by the daemon
//      hosting that provider — produces output bitwise identical to the
//      in-process simulator, and a protocol TrafficReport identical byte
//      for byte: exec traffic is transport metering, never protocol
//      metering.
//   2. SIGKILLing the daemon before *every* stage still converges to the
//      bitwise baseline: the host reconnects, re-ships the last committed
//      checkpoint (kNeedState), and recomputes zero checkpointed crypto
//      operations from its own ledger.
//   3. SIGSTOP is slowness, not death: a stalled daemon trips the per-call
//      deadline (remote stages) or the receive deadline (wire stages) and
//      recovery after SIGCONT needs no reconnect at all.
//   4. When remote execution is impossible the ladder is explicit: degrade
//      to local (hairpin) execution — metered, logged, bitwise-identical —
//      or, with fallback disabled, a clean ProtocolError naming the stage
//      and the spent attempt budget. Never a hang, never a wrong answer,
//      never a leaked frame.
//
// The daemon runs in a forked child so the signals genuinely hit a separate
// process owning separate state, exactly like a crashed or wedged host.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"
#include "mpc/remote_exec.h"
#include "mpc/session.h"
#include "mpc/wire.h"
#include "net/daemon.h"
#include "net/envelope.h"
#include "net/socket_transport.h"
#include "net/socket_util.h"

namespace psi {
namespace {

// ---------------------------------------------------------------------------
// ExecDaemon: a psid process with the execution engine wired in, which the
// test can SIGKILL, SIGSTOP/SIGCONT, or SIGTERM.

PsidDaemon* g_child_daemon = nullptr;

void ChildSignalHandler(int /*sig*/) {
  if (g_child_daemon != nullptr) g_child_daemon->Stop();
}

class ExecDaemon {
 public:
  explicit ExecDaemon(bool with_engine = true, uint16_t port = 0) {
    Spawn(port, with_engine);
  }
  ~ExecDaemon() { Kill(); }
  ExecDaemon(const ExecDaemon&) = delete;
  ExecDaemon& operator=(const ExecDaemon&) = delete;

  uint16_t port() const { return port_; }

  /// SIGKILL: no goodbye, no drain — the kernel resets its connections.
  void Kill() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
  }

  /// Kill (if needed) and start a fresh process on the same port. The
  /// replacement holds no executor slots: the host must restore state.
  void Restart(bool with_engine = true) {
    Kill();
    Spawn(port_, with_engine);
  }

  /// SIGSTOP: the daemon is alive but wedged — sockets stay open, frames
  /// queue in the kernel, nothing is processed until Cont().
  void Stop() {
    if (pid_ > 0) kill(pid_, SIGSTOP);
  }

  void Cont() {
    if (pid_ > 0) kill(pid_, SIGCONT);
  }

  /// SIGTERM and reap: returns the raw waitpid status so the caller can
  /// assert an orderly drain (exit code 0), not a signal death.
  int TermAndWait() {
    if (pid_ <= 0) return -1;
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

 private:
  void Spawn(uint16_t port, bool with_engine) {
    // Register before forking so the child's registry can run the
    // protocols' stage programs without ever driving a session.
    RegisterLinkInfluenceStagePrograms();
    RegisterPropagationStagePrograms();
    // The engine must exist before the daemon: PsidConfig::exec_handler is
    // fixed at construction. The executor lives in this frame; the child
    // never returns from Run() (_exit skips unwinding), so it stays alive
    // for the daemon's whole life there, while the parent's copy is inert.
    StageExecutor executor;
    PsidConfig config;
    config.hosted_parties = {"P1", "P2", "P3"};
    if (with_engine) config.exec_handler = executor.Handler();
    PsidDaemon daemon(config);
    auto bound = daemon.Listen(port);
    ASSERT_TRUE(bound.ok()) << bound.status().message();
    port_ = bound.ValueOrDie();
    pid_ = fork();
    ASSERT_NE(pid_, -1);
    if (pid_ == 0) {
      // Child: serve until a signal. SIGTERM routes through Stop() so
      // Run() returns via the drain path and the exit code distinguishes
      // graceful shutdown (0) from a serve error (1).
      g_child_daemon = &daemon;
      signal(SIGTERM, ChildSignalHandler);
      signal(SIGINT, ChildSignalHandler);
      const Status served = daemon.Run();
      _exit(served.ok() ? 0 : 1);
    }
    daemon.CloseAll();
  }

  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

// ---------------------------------------------------------------------------
// Shared world and runners; seeds mirror socket_daemon_test.cc and
// chaos_test.cc so transcripts stay comparable across the whole suite.

struct WorldData {
  size_t m = 0;
  size_t n = 0;
  size_t actions = 0;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
};

WorldData MakeWorldData(size_t m, size_t n, size_t arcs, size_t actions,
                        uint64_t seed) {
  WorldData w;
  w.m = m;
  w.n = n;
  w.actions = actions;
  Rng rng(seed);
  w.graph = std::make_unique<SocialGraph>(
      ErdosRenyiArcs(&rng, n, arcs).ValueOrDie());
  auto truth = GroundTruthInfluence::Random(&rng, *w.graph, 0.1, 0.7);
  CascadeParams params;
  params.num_actions = actions;
  params.seeds_per_action = 2;
  w.log = GenerateCascades(&rng, *w.graph, truth, params).ValueOrDie();
  w.provider_logs = ExclusivePartition(&rng, w.log, m).ValueOrDie();
  return w;
}

struct Parties {
  PartyId host;
  std::vector<PartyId> providers;
};

Parties RegisterParties(Network* net, size_t m) {
  Parties p;
  p.host = net->RegisterParty("H");
  for (size_t k = 0; k < m; ++k) {
    p.providers.push_back(net->RegisterParty("P" + std::to_string(k + 1)));
  }
  return p;
}

SocketTransportConfig FastConfig(const std::string& session) {
  SocketTransportConfig config;
  config.seed = 21;
  config.session_name = session;
  config.recv_timeout_ms = 2000;
  config.connect_timeout_ms = 1000;
  config.handshake_timeout_ms = 1000;
  config.heartbeat_interval_ms = 20;
  config.heartbeat_timeout_ms = 300;
  config.max_reconnect_attempts = 8;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 30;
  return config;
}

// A SIGSTOPped daemon must read as slow, never as dead: the heartbeat
// dead-peer window comfortably outlasts the longest stall the tests inject.
SocketTransportConfig StallTolerantConfig(const std::string& session) {
  SocketTransportConfig config = FastConfig(session);
  config.heartbeat_timeout_ms = 1500;
  return config;
}

// Connects every provider to the daemon: all provider channels cross the
// wire and every provider stage is eligible for remote execution.
void ConnectAll(SocketNetwork* net, const Parties& parties,
                const ExecDaemon& daemon) {
  Status connected =
      net->ConnectDaemon("127.0.0.1", daemon.port(), parties.providers);
  ASSERT_TRUE(connected.ok()) << connected.message();
}

// The runners fix every RNG seed: any two completed runs, on any backend,
// local or remote or degraded, must agree bitwise. A null orchestrator
// means the plain single-attempt local path.
Result<LinkInfluence> RunP4(const WorldData& w, Network* net,
                            const Parties& parties,
                            SessionOrchestrator* orchestrator = nullptr,
                            SessionStats* stats = nullptr) {
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.paillier_bits = 384;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(1000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(501), pair_secret(502);
  LinkInfluenceProtocol proto(net, parties.host, parties.providers, cfg);
  if (orchestrator == nullptr && stats == nullptr) {
    return proto.Run(*w.graph, w.actions, w.provider_logs, &host_rng,
                     rng_ptrs, &pair_secret);
  }
  RetryPolicy retry;  // Ignored when an orchestrator is injected.
  return proto.RunSession(*w.graph, w.actions, w.provider_logs, &host_rng,
                          rng_ptrs, &pair_secret, retry, stats, {},
                          orchestrator);
}

Result<Protocol6Output> RunP6(const WorldData& w, Network* net,
                              const Parties& parties,
                              SessionOrchestrator* orchestrator = nullptr,
                              SessionStats* stats = nullptr) {
  Protocol6Config cfg;
  cfg.rsa_bits = 384;
  cfg.encryption = Protocol6Config::EncryptionMode::kHybrid;
  cfg.obfuscation_factor = 1.5;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(2000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(601);
  PropagationGraphProtocol proto(net, parties.host, parties.providers, cfg);
  if (orchestrator == nullptr && stats == nullptr) {
    return proto.Run(*w.graph, w.actions, w.provider_logs, &host_rng,
                     rng_ptrs);
  }
  RetryPolicy retry;  // Ignored when an orchestrator is injected.
  return proto.RunSession(*w.graph, w.actions, w.provider_logs, &host_rng,
                          rng_ptrs, retry, stats, orchestrator);
}

std::vector<std::array<uint64_t, 4>> CanonicalArcs(const Protocol6Output& out) {
  std::vector<std::array<uint64_t, 4>> arcs;
  for (size_t a = 0; a < out.graphs.size(); ++a) {
    for (NodeId v = 0; v < out.graphs[a].num_nodes(); ++v) {
      for (const auto& arc : out.graphs[a].OutArcs(v)) {
        arcs.push_back({a, static_cast<uint64_t>(v),
                        static_cast<uint64_t>(arc.to), arc.delta_t});
      }
    }
  }
  std::sort(arcs.begin(), arcs.end());
  return arcs;
}

void ExpectSameInfluence(const LinkInfluence& got,
                         const LinkInfluence& baseline,
                         const std::string& context) {
  ASSERT_EQ(got.p.size(), baseline.p.size()) << context;
  for (size_t e = 0; e < got.p.size(); ++e) {
    ASSERT_EQ(got.p[e], baseline.p[e]) << context << " arc=" << e;
  }
}

RemoteExecPolicy FastExecPolicy() {
  RemoteExecPolicy exec;
  exec.stage_deadline_ms = 2000;
  exec.backoff_base_ms = 1;
  exec.backoff_max_ms = 30;
  return exec;
}

// Counts the session's stages with a clean remote run (discarding the
// result), so the sweeps can aim a signal at every stage boundary.
uint32_t CountStages(const WorldData& w, bool p6) {
  ExecDaemon daemon;
  SocketNetwork net(FastConfig(p6 ? "stage-count-p6" : "stage-count-p4"));
  Parties parties = RegisterParties(&net, w.m);
  ConnectAll(&net, parties, daemon);
  RemoteSessionOrchestrator orch(RetryPolicy{}, FastExecPolicy());
  uint32_t stages = 0;
  orch.SetStageObserver([&stages](uint32_t index, const std::string&) {
    stages = index + 1;
  });
  if (p6) {
    if (!RunP6(w, &net, parties, &orch).ok()) return 0;
  } else {
    if (!RunP4(w, &net, parties, &orch).ok()) return 0;
  }
  return stages;
}

// ---------------------------------------------------------------------------
// Exec wire format: round trips and hardened-decode rejections.

TEST(ExecWireTest, RequestRoundTripsWithAndWithoutState) {
  wire::ExecRequest req;
  req.session = "s-1";
  req.program = "p6/encrypt";
  req.stage_index = 3;
  req.attempt = 2;
  req.party = 7;
  req.includes_state = true;
  req.state_blob = {1, 2, 3, 4, 5};
  req.rng_blobs.emplace_back("provider0", Rng(11).SaveState());
  req.rng_blobs.emplace_back("provider1", Rng(12).SaveState());

  wire::ExecRequest back;
  ASSERT_TRUE(wire::UnpackExecRequest(wire::PackExecRequest(req), &back).ok());
  EXPECT_EQ(back.session, req.session);
  EXPECT_EQ(back.program, req.program);
  EXPECT_EQ(back.stage_index, req.stage_index);
  EXPECT_EQ(back.attempt, req.attempt);
  EXPECT_EQ(back.party, req.party);
  EXPECT_TRUE(back.includes_state);
  EXPECT_EQ(back.state_blob, req.state_blob);
  ASSERT_EQ(back.rng_blobs.size(), 2u);
  EXPECT_EQ(back.rng_blobs[0], req.rng_blobs[0]);
  EXPECT_EQ(back.rng_blobs[1], req.rng_blobs[1]);

  // RNG snapshots ride even when the state stays home.
  req.includes_state = false;
  req.state_blob.clear();
  ASSERT_TRUE(wire::UnpackExecRequest(wire::PackExecRequest(req), &back).ok());
  EXPECT_FALSE(back.includes_state);
  EXPECT_TRUE(back.state_blob.empty());
  ASSERT_EQ(back.rng_blobs.size(), 2u);
}

TEST(ExecWireTest, ResponseRoundTripsCheckpointOnlyOnOk) {
  SessionState state;
  state.Put("k", {9, 9, 9});
  wire::ExecResponse ok;
  ok.outcome = wire::ExecOutcome::kOk;
  ok.crypto_ops = 42;
  ok.state_blob = state.Serialize();
  ok.rng_blobs.emplace_back("provider0", Rng(5).SaveState());

  wire::ExecResponse back;
  ASSERT_TRUE(wire::UnpackExecResponse(wire::PackExecResponse(ok), &back).ok());
  EXPECT_EQ(back.outcome, wire::ExecOutcome::kOk);
  EXPECT_EQ(back.crypto_ops, 42u);
  EXPECT_EQ(back.state_blob, ok.state_blob);
  ASSERT_EQ(back.rng_blobs.size(), 1u);
  EXPECT_EQ(back.rng_blobs[0], ok.rng_blobs[0]);

  wire::ExecResponse err;
  err.outcome = wire::ExecOutcome::kNeedState;
  err.message = "daemon holds 0 completed stage(s)";
  ASSERT_TRUE(
      wire::UnpackExecResponse(wire::PackExecResponse(err), &back).ok());
  EXPECT_EQ(back.outcome, wire::ExecOutcome::kNeedState);
  EXPECT_EQ(back.message, err.message);
  EXPECT_TRUE(back.state_blob.empty());
  EXPECT_TRUE(back.rng_blobs.empty());
}

TEST(ExecWireTest, DecodersRejectMalformedFrames) {
  wire::ExecRequest req;
  req.session = "s";
  req.program = "p";
  req.rng_blobs.emplace_back("r", Rng(1).SaveState());
  std::vector<uint8_t> req_buf = wire::PackExecRequest(req);
  wire::ExecResponse resp;
  resp.outcome = wire::ExecOutcome::kOk;
  resp.state_blob = {1};
  std::vector<uint8_t> resp_buf = wire::PackExecResponse(resp);

  wire::ExecRequest rq;
  wire::ExecResponse rs;
  // Wrong version.
  std::vector<uint8_t> bad = req_buf;
  bad[0] ^= 0xff;
  EXPECT_FALSE(wire::UnpackExecRequest(bad, &rq).ok());
  bad = resp_buf;
  bad[0] ^= 0xff;
  EXPECT_FALSE(wire::UnpackExecResponse(bad, &rs).ok());
  // Truncation.
  bad = req_buf;
  bad.pop_back();
  EXPECT_FALSE(wire::UnpackExecRequest(bad, &rq).ok());
  bad = resp_buf;
  bad.pop_back();
  EXPECT_FALSE(wire::UnpackExecResponse(bad, &rs).ok());
  // Trailing garbage.
  bad = req_buf;
  bad.push_back(0);
  EXPECT_FALSE(wire::UnpackExecRequest(bad, &rq).ok());
  bad = resp_buf;
  bad.push_back(0);
  EXPECT_FALSE(wire::UnpackExecResponse(bad, &rs).ok());
  // Empty.
  EXPECT_FALSE(wire::UnpackExecRequest({}, &rq).ok());
  EXPECT_FALSE(wire::UnpackExecResponse({}, &rs).ok());
}

// ---------------------------------------------------------------------------
// StageExecutor, driven directly with sealed frames: the daemon-side
// checkpoint-and-cache discipline.

constexpr char kTestProgram[] = "test/incr";

void RegisterTestProgram() {
  StageProgramRegistry::Global().Register(
      kTestProgram, [](StageProgramContext* ctx) -> Status {
        if (ctx->state == nullptr || ctx->rngs.size() != 1) {
          return Status::FailedPrecondition(
              "test/incr wants one state and one RNG");
        }
        PSI_ASSIGN_OR_RETURN(const std::vector<uint8_t> buf,
                             ctx->state->Get("x"));
        std::vector<uint64_t> x;
        PSI_RETURN_NOT_OK(wire::UnpackU64s(buf, &x));
        if (x.size() != 1) return Status::FailedPrecondition("bad x");
        x[0] += 1 + ctx->rngs[0]->UniformU64(10);
        ctx->state->Put("x", wire::PackU64s(x));
        ctx->crypto_ops += 1;
        return Status::OK();
      });
}

std::vector<uint8_t> SealRequest(const wire::ExecRequest& req) {
  return SealEnvelope(ProtocolId::kExec, wire::kExecStepRequest, req.party,
                      req.stage_index, wire::PackExecRequest(req));
}

wire::ExecResponse OpenResult(const std::vector<uint8_t>& frame,
                              uint64_t* seq = nullptr) {
  auto env = OpenEnvelope(frame);
  EXPECT_TRUE(env.ok()) << env.status().message();
  wire::ExecResponse resp;
  if (env.ok()) {
    if (seq != nullptr) *seq = env.ValueOrDie().seq;
    Status decoded =
        wire::UnpackExecResponse(env.ValueOrDie().payload, &resp);
    EXPECT_TRUE(decoded.ok()) << decoded.message();
  }
  return resp;
}

TEST(StageExecutorTest, ExecutesCachesAndRestoresState) {
  RegisterTestProgram();
  StageExecutor executor;

  SessionState initial;
  initial.Put("x", wire::PackU64s({41}));
  Rng rng(77);
  wire::ExecRequest req;
  req.session = "unit";
  req.program = kTestProgram;
  req.stage_index = 0;
  req.party = 1;
  req.includes_state = true;
  req.state_blob = initial.Serialize();
  req.rng_blobs.emplace_back("r", rng.SaveState());

  // Fresh run: state installed, program executed, checkpoint returned.
  wire::ExecResponse first = OpenResult(executor.Handle(SealRequest(req)));
  ASSERT_EQ(first.outcome, wire::ExecOutcome::kOk);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.crypto_ops, 1u);
  ASSERT_EQ(first.rng_blobs.size(), 1u);
  // The program drew from the RNG, so the returned snapshot advanced.
  EXPECT_NE(first.rng_blobs[0].second, req.rng_blobs[0].second);
  auto after = SessionState::Deserialize(first.state_blob).ValueOrDie();
  std::vector<uint64_t> x;
  ASSERT_TRUE(wire::UnpackU64s(after.Get("x").ValueOrDie(), &x).ok());
  Rng replay(77);
  EXPECT_EQ(x[0], 41 + 1 + replay.UniformU64(10));
  EXPECT_EQ(executor.stats().executed, 1u);
  EXPECT_EQ(executor.stats().states_loaded, 1u);
  EXPECT_EQ(executor.num_slots(), 1u);

  // Retry of the same stage (the answer was "lost"): served from cache,
  // bitwise the same checkpoint, nothing recomputed.
  req.includes_state = false;
  req.state_blob.clear();
  req.attempt = 2;
  wire::ExecResponse retry = OpenResult(executor.Handle(SealRequest(req)));
  ASSERT_EQ(retry.outcome, wire::ExecOutcome::kOk);
  EXPECT_TRUE(retry.from_cache);
  EXPECT_EQ(retry.state_blob, first.state_blob);
  EXPECT_EQ(retry.rng_blobs, first.rng_blobs);
  EXPECT_EQ(executor.stats().executed, 1u);
  EXPECT_EQ(executor.stats().cache_hits, 1u);

  // A stage the daemon has no state for: kNeedState, not a guess.
  req.stage_index = 5;
  wire::ExecResponse ahead = OpenResult(executor.Handle(SealRequest(req)));
  EXPECT_EQ(ahead.outcome, wire::ExecOutcome::kNeedState);
  EXPECT_EQ(executor.stats().need_state, 1u);

  // Unknown program: kUnsupported with the name in the message.
  req.stage_index = 1;
  req.program = "no/such-program";
  wire::ExecResponse unknown = OpenResult(executor.Handle(SealRequest(req)));
  EXPECT_EQ(unknown.outcome, wire::ExecOutcome::kUnsupported);
  EXPECT_NE(unknown.message.find("no/such-program"), std::string::npos);
  EXPECT_EQ(executor.stats().unsupported, 1u);
}

TEST(StageExecutorTest, MalformedRequestGetsWellFormedError) {
  StageExecutor executor;
  uint64_t seq = 99;
  wire::ExecResponse resp =
      OpenResult(executor.Handle({0xde, 0xad, 0xbe, 0xef}), &seq);
  EXPECT_EQ(resp.outcome, wire::ExecOutcome::kError);
  EXPECT_NE(resp.message.find("malformed"), std::string::npos);
  // Sealed under seq 0: the host drops it as stale, which is the correct
  // fate of a reply to a frame the host cannot have sent.
  EXPECT_EQ(seq, 0u);
  EXPECT_EQ(executor.stats().malformed, 1u);
  EXPECT_EQ(executor.stats().executed, 0u);
  EXPECT_EQ(executor.num_slots(), 0u);
}

// ---------------------------------------------------------------------------
// Clean remote parity: daemon-executed stages are bitwise-invisible in the
// protocol transcript.

TEST(RemoteExecTest, CleanRemoteP6MatchesSimulatorBitwise) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network sim;
  auto baseline =
      CanonicalArcs(RunP6(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie());
  auto sim_report = sim.Report();

  ExecDaemon daemon;
  SocketNetwork net(FastConfig("remote-clean-p6"));
  Parties parties = RegisterParties(&net, w.m);
  ConnectAll(&net, parties, daemon);
  RemoteSessionOrchestrator orch(RetryPolicy{}, FastExecPolicy());
  SessionStats stats;
  auto result = RunP6(w, &net, parties, &orch, &stats);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(CanonicalArcs(result.ValueOrDie()), baseline);

  // Every provider stage ran on the daemon, none degraded, and the
  // daemon-side crypto work was metered home.
  const RemoteExecStats& xs = orch.exec_stats();
  EXPECT_EQ(xs.remote_stages, w.m);
  EXPECT_EQ(xs.degraded_to_local, 0u);
  EXPECT_EQ(xs.timeouts, 0u);
  EXPECT_GT(xs.remote_crypto_ops, 0u);
  EXPECT_GE(stats.crypto_ops_total, xs.remote_crypto_ops);

  // The protocol transcript is bitwise the simulator's: exec frames are
  // transport traffic, invisible to protocol metering.
  auto sock_report = net.Report();
  ASSERT_EQ(sock_report.rounds.size(), sim_report.rounds.size());
  for (size_t i = 0; i < sim_report.rounds.size(); ++i) {
    EXPECT_EQ(sock_report.rounds[i].label, sim_report.rounds[i].label);
    EXPECT_EQ(sock_report.rounds[i].num_messages,
              sim_report.rounds[i].num_messages);
    EXPECT_EQ(sock_report.rounds[i].num_bytes,
              sim_report.rounds[i].num_bytes);
  }
  EXPECT_EQ(sock_report.num_bytes, sim_report.num_bytes);
  // But the exec channel did real work on the wire.
  EXPECT_GE(net.transport_stats().exec_calls, w.m);
  EXPECT_GT(net.transport_stats().exec_bytes_rx, 0u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST(RemoteExecTest, CleanRemoteP4MatchesSimulatorBitwise) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network sim;
  auto baseline = RunP4(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie();
  auto sim_report = sim.Report();

  ExecDaemon daemon;
  SocketNetwork net(FastConfig("remote-clean-p4"));
  Parties parties = RegisterParties(&net, w.m);
  ConnectAll(&net, parties, daemon);
  RemoteSessionOrchestrator orch(RetryPolicy{}, FastExecPolicy());
  auto result = RunP4(w, &net, parties, &orch);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ExpectSameInfluence(result.ValueOrDie(), baseline, "clean remote p4");

  EXPECT_EQ(orch.exec_stats().remote_stages, w.m);
  EXPECT_EQ(orch.exec_stats().degraded_to_local, 0u);
  auto sock_report = net.Report();
  EXPECT_EQ(sock_report.num_bytes, sim_report.num_bytes);
  EXPECT_EQ(sock_report.rounds.size(), sim_report.rounds.size());
  EXPECT_EQ(net.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// SIGKILL at every stage: the deployment survives losing the whole remote
// executor — its state, its caches, its sockets — at every boundary.

TEST(RemoteExecTest, Protocol6SurvivesDaemonSigkillAtEveryStage) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network sim;
  auto baseline =
      CanonicalArcs(RunP6(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie());
  const uint32_t stages = CountStages(w, /*p6=*/true);
  ASSERT_GT(stages, 4u);

  uint64_t restores = 0, resumes = 0;
  for (uint32_t kill_at = 0; kill_at < stages; ++kill_at) {
    ExecDaemon daemon;
    SocketNetwork net(FastConfig("p6-exec-kill-" + std::to_string(kill_at)));
    Parties parties = RegisterParties(&net, w.m);
    ConnectAll(&net, parties, daemon);
    RetryPolicy retry;
    retry.max_attempts = 5;
    RemoteSessionOrchestrator orch(retry, FastExecPolicy());
    bool killed = false;
    orch.SetStageObserver([&](uint32_t index, const std::string&) {
      if (index == kill_at && !killed) {
        killed = true;
        // The replacement process holds no slots: a remote stage must see
        // kNeedState and ship the last committed checkpoint; a wire stage
        // must fail the attempt and resume through the session handshake.
        daemon.Restart();
      }
    });
    SessionStats stats;
    auto result = RunP6(w, &net, parties, &orch, &stats);
    ASSERT_TRUE(killed) << "kill_at=" << kill_at
                        << ": observer never fired (stage count stale?)";
    ASSERT_EQ(net.PendingCount(), 0u) << "kill_at=" << kill_at;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "kill_at=" << kill_at;
    ASSERT_TRUE(result.ok())
        << "kill_at=" << kill_at << ": " << result.status().message();
    ASSERT_EQ(CanonicalArcs(result.ValueOrDie()), baseline)
        << "kill_at=" << kill_at;
    restores += orch.exec_stats().restores_shipped;
    resumes += stats.resumes;
  }
  // The sweep must exercise both recovery paths: checkpoint restores into
  // a fresh daemon, and session-level resumes for wire-stage kills.
  EXPECT_GT(restores, 0u);
  EXPECT_GT(resumes, 0u);
}

TEST(RemoteExecTest, Protocol4SurvivesDaemonSigkillAtEveryStage) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network sim;
  auto baseline = RunP4(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie();
  const uint32_t stages = CountStages(w, /*p6=*/false);
  ASSERT_GT(stages, 4u);

  uint64_t restores = 0, resumes = 0;
  for (uint32_t kill_at = 0; kill_at < stages; ++kill_at) {
    ExecDaemon daemon;
    SocketNetwork net(FastConfig("p4-exec-kill-" + std::to_string(kill_at)));
    Parties parties = RegisterParties(&net, w.m);
    ConnectAll(&net, parties, daemon);
    RetryPolicy retry;
    retry.max_attempts = 5;
    RemoteSessionOrchestrator orch(retry, FastExecPolicy());
    bool killed = false;
    orch.SetStageObserver([&](uint32_t index, const std::string&) {
      if (index == kill_at && !killed) {
        killed = true;
        daemon.Restart();
      }
    });
    SessionStats stats;
    auto result = RunP4(w, &net, parties, &orch, &stats);
    ASSERT_TRUE(killed) << "kill_at=" << kill_at;
    ASSERT_EQ(net.PendingCount(), 0u) << "kill_at=" << kill_at;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "kill_at=" << kill_at;
    ASSERT_TRUE(result.ok())
        << "kill_at=" << kill_at << ": " << result.status().message();
    ExpectSameInfluence(result.ValueOrDie(), baseline,
                        "kill_at=" + std::to_string(kill_at));
    restores += orch.exec_stats().restores_shipped;
    resumes += stats.resumes;
  }
  EXPECT_GT(restores, 0u);
  EXPECT_GT(resumes, 0u);
}

// ---------------------------------------------------------------------------
// SIGSTOP at every stage: a wedged daemon is slowness, not death. Remote
// calls trip their per-stage deadline and retry; wire stages just run slow;
// nothing reconnects, nothing is recomputed, the output is bitwise.

TEST(RemoteExecTest, Protocol6SurvivesDaemonSigstopAtEveryStage) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network sim;
  auto baseline =
      CanonicalArcs(RunP6(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie());
  const uint32_t stages = CountStages(w, /*p6=*/true);
  ASSERT_GT(stages, 4u);

  uint64_t timeouts = 0;
  for (uint32_t stop_at = 0; stop_at < stages; ++stop_at) {
    ExecDaemon daemon;
    SocketNetwork net(
        StallTolerantConfig("p6-exec-stop-" + std::to_string(stop_at)));
    Parties parties = RegisterParties(&net, w.m);
    ConnectAll(&net, parties, daemon);
    RetryPolicy retry;
    retry.max_attempts = 5;
    RemoteExecPolicy exec = FastExecPolicy();
    exec.stage_deadline_ms = 250;  // < the 400 ms stall: attempt 1 times out.
    exec.max_attempts_per_stage = 4;
    RemoteSessionOrchestrator orch(retry, exec);
    bool stopped = false;
    std::thread watchdog;
    orch.SetStageObserver([&](uint32_t index, const std::string&) {
      if (index == stop_at && !stopped) {
        stopped = true;
        daemon.Stop();
        watchdog = std::thread([&daemon] {
          SleepMs(400);
          daemon.Cont();
        });
      }
    });
    SessionStats stats;
    auto result = RunP6(w, &net, parties, &orch, &stats);
    if (watchdog.joinable()) watchdog.join();
    ASSERT_TRUE(stopped) << "stop_at=" << stop_at;
    ASSERT_EQ(net.PendingCount(), 0u) << "stop_at=" << stop_at;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "stop_at=" << stop_at;
    ASSERT_TRUE(result.ok())
        << "stop_at=" << stop_at << ": " << result.status().message();
    ASSERT_EQ(CanonicalArcs(result.ValueOrDie()), baseline)
        << "stop_at=" << stop_at;
    // Slow is not dead: the stall never trips heartbeat dead-peer
    // detection and recovery after SIGCONT needs no reconnect.
    EXPECT_EQ(net.transport_stats().dead_peers_detected, 0u)
        << "stop_at=" << stop_at;
    EXPECT_EQ(net.transport_stats().reconnects, 0u) << "stop_at=" << stop_at;
    EXPECT_EQ(orch.exec_stats().degraded_to_local, 0u)
        << "stop_at=" << stop_at;
    timeouts += orch.exec_stats().timeouts;
  }
  // Stalls aimed at remote stages must actually trip the call deadline.
  EXPECT_GT(timeouts, 0u);
}

TEST(RemoteExecTest, Protocol4SurvivesDaemonSigstopAtEveryStage) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network sim;
  auto baseline = RunP4(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie();
  const uint32_t stages = CountStages(w, /*p6=*/false);
  ASSERT_GT(stages, 4u);

  uint64_t timeouts = 0;
  for (uint32_t stop_at = 0; stop_at < stages; ++stop_at) {
    ExecDaemon daemon;
    SocketNetwork net(
        StallTolerantConfig("p4-exec-stop-" + std::to_string(stop_at)));
    Parties parties = RegisterParties(&net, w.m);
    ConnectAll(&net, parties, daemon);
    RetryPolicy retry;
    retry.max_attempts = 5;
    RemoteExecPolicy exec = FastExecPolicy();
    exec.stage_deadline_ms = 250;
    exec.max_attempts_per_stage = 4;
    RemoteSessionOrchestrator orch(retry, exec);
    bool stopped = false;
    std::thread watchdog;
    orch.SetStageObserver([&](uint32_t index, const std::string&) {
      if (index == stop_at && !stopped) {
        stopped = true;
        daemon.Stop();
        watchdog = std::thread([&daemon] {
          SleepMs(400);
          daemon.Cont();
        });
      }
    });
    SessionStats stats;
    auto result = RunP4(w, &net, parties, &orch, &stats);
    if (watchdog.joinable()) watchdog.join();
    ASSERT_TRUE(stopped) << "stop_at=" << stop_at;
    ASSERT_EQ(net.PendingCount(), 0u) << "stop_at=" << stop_at;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "stop_at=" << stop_at;
    ASSERT_TRUE(result.ok())
        << "stop_at=" << stop_at << ": " << result.status().message();
    ExpectSameInfluence(result.ValueOrDie(), baseline,
                        "stop_at=" + std::to_string(stop_at));
    EXPECT_EQ(net.transport_stats().dead_peers_detected, 0u)
        << "stop_at=" << stop_at;
    EXPECT_EQ(net.transport_stats().reconnects, 0u) << "stop_at=" << stop_at;
    EXPECT_EQ(orch.exec_stats().degraded_to_local, 0u)
        << "stop_at=" << stop_at;
    timeouts += orch.exec_stats().timeouts;
  }
  EXPECT_GT(timeouts, 0u);
}

// ---------------------------------------------------------------------------
// The degradation ladder, bottom rungs.

TEST(RemoteExecTest, DegradesToLocalWhenReplacementHasNoEngine) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network sim;
  auto baseline =
      CanonicalArcs(RunP6(w, &sim, RegisterParties(&sim, w.m)).ValueOrDie());

  ExecDaemon daemon;
  SocketNetwork net(FastConfig("p6-degrade"));
  Parties parties = RegisterParties(&net, w.m);
  ConnectAll(&net, parties, daemon);
  RetryPolicy retry;
  retry.max_attempts = 5;
  RemoteSessionOrchestrator orch(retry, FastExecPolicy());
  bool swapped = false;
  orch.SetStageObserver([&](uint32_t, const std::string& name) {
    if (name == "encrypt-P0" && !swapped) {
      swapped = true;
      // The replacement routes frames but refuses exec: the orchestrator
      // must give up on remote execution immediately (no point burning the
      // budget) and hairpin every provider stage locally.
      daemon.Restart(/*with_engine=*/false);
    }
  });
  SessionStats stats;
  auto result = RunP6(w, &net, parties, &orch, &stats);
  ASSERT_TRUE(swapped);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(CanonicalArcs(result.ValueOrDie()), baseline);
  const RemoteExecStats& xs = orch.exec_stats();
  EXPECT_EQ(xs.degraded_to_local, w.m);  // Every encrypt stage fell back.
  EXPECT_EQ(xs.remote_stages, 0u);
  EXPECT_GE(xs.unsupported, w.m);
  EXPECT_EQ(stats.crypto_ops_recomputed, 0u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST(RemoteExecTest, FallbackDisabledFailsCleanlyNamingStageAndBudget) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  ExecDaemon daemon;
  SocketTransportConfig config = FastConfig("p6-no-fallback");
  config.max_reconnect_attempts = 2;  // Keep the doomed repair loop short.
  SocketNetwork net(config);
  Parties parties = RegisterParties(&net, w.m);
  ConnectAll(&net, parties, daemon);
  RetryPolicy retry;
  retry.max_attempts = 1;
  RemoteExecPolicy exec = FastExecPolicy();
  exec.max_attempts_per_stage = 2;
  exec.allow_local_fallback = false;
  RemoteSessionOrchestrator orch(retry, exec);
  bool killed = false;
  orch.SetStageObserver([&](uint32_t, const std::string& name) {
    if (name == "encrypt-P0" && !killed) {
      killed = true;
      daemon.Kill();  // Never restarted: recovery is impossible.
    }
  });
  SessionStats stats;
  auto result = RunP6(w, &net, parties, &orch, &stats);
  ASSERT_TRUE(killed);
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  // The error carries full context: the stage, the spent remote budget,
  // the disabled fallback, and the session-level attempt count.
  EXPECT_NE(message.find("in stage 'encrypt-P0'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("local fallback disabled"), std::string::npos)
      << message;
  EXPECT_NE(message.find("2 attempt(s)"), std::string::npos) << message;
  EXPECT_NE(message.find("failed after 1 attempt(s)"), std::string::npos)
      << message;
  // A failed session never leaks frames into a successor.
  EXPECT_EQ(net.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// Retry exhaustion, every path: backoff ceiling, budget spent, dead link.

TEST(RemoteExecTest, BackoffCeilingAndBudgetExhaustionEndInCleanError) {
  Network net;
  const PartyId a = net.RegisterParty("A");
  const PartyId b = net.RegisterParty("B");
  ProtocolSession session("doomed", &net, {a, b});
  uint32_t runs = 0;
  session.AddStage("boom", [&runs]() -> Status {
    ++runs;
    return Status::Internal("synthetic failure #" + std::to_string(runs));
  });
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_rounds_base = 1;
  retry.backoff_rounds_cap = 2;  // Attempts 3+ sit at the ceiling.
  SessionOrchestrator orch(retry);
  Status run = orch.Run(&session);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.message().find("failed after 4 attempt(s)"),
            std::string::npos)
      << run.message();
  EXPECT_NE(run.message().find("in stage 'boom'"), std::string::npos)
      << run.message();
  EXPECT_NE(run.message().find("synthetic failure #4"), std::string::npos)
      << run.message();
  EXPECT_EQ(runs, 4u);
  EXPECT_EQ(orch.stats().attempts, 4u);
  // Three backoffs of at most cap + jitter each; at least one per retry.
  EXPECT_GE(orch.stats().backoff_rounds, 3u);
  EXPECT_LE(orch.stats().backoff_rounds,
            3u * (retry.backoff_rounds_cap + retry.backoff_jitter_rounds));
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST(RemoteExecTest, DeadLinkRefusesRetransmitUntilReestablished) {
  ExecDaemon daemon;
  SocketNetwork net(FastConfig("dead-link-retransmit"));
  Parties parties = RegisterParties(&net, /*m=*/3);
  ConnectAll(&net, parties, daemon);

  // Prove the channel works, then kill the daemon under it.
  net.BeginRound("probe");
  ASSERT_TRUE(net.SendFramed(parties.host, parties.providers[0],
                             ProtocolId::kSession, /*step=*/7, {1, 2, 3})
                  .ok());
  auto echoed = net.RecvValidated(parties.providers[0], parties.host,
                                  ProtocolId::kSession, /*step=*/7);
  ASSERT_TRUE(echoed.ok()) << echoed.status().message();
  daemon.Kill();

  // The next receive discovers the dead wire; once it is known dead, the
  // transport refuses to retransmit into it instead of pretending.
  RecvOptions opts;
  opts.deadline_ms = 200;
  opts.max_attempts = 3;
  // The send may or may not fail depending on when the kernel notices the
  // reset; the receive below discovers the dead wire either way.
  const Status sent = net.SendFramed(parties.host, parties.providers[0],
                                     ProtocolId::kSession, /*step=*/8, {4});
  (void)sent;
  auto lost = net.RecvValidated(parties.providers[0], parties.host,
                                ProtocolId::kSession, /*step=*/8, opts);
  ASSERT_FALSE(lost.ok());
  auto refused =
      net.RequestRetransmit(parties.providers[0], parties.host, /*seq=*/1);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("retransmit refused"),
            std::string::npos)
      << refused.status().message();
  EXPECT_NE(refused.status().message().find("reestablish"),
            std::string::npos)
      << refused.status().message();
  EXPECT_FALSE(net.LinkAlive(parties.providers[0]));
  EXPECT_EQ(net.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// Slow versus dead, on the raw framed channel: a SIGSTOPped daemon trips
// the caller's receive deadline, never dead-peer detection, and resuming it
// needs no reconnect.

TEST(RemoteExecTest, SigstoppedDaemonIsSlowNotDead) {
  ExecDaemon daemon;
  SocketTransportConfig config = FastConfig("slow-not-dead");
  config.heartbeat_timeout_ms = 10000;  // Dead-peer detection out of play.
  SocketNetwork net(config);
  Parties parties = RegisterParties(&net, /*m=*/3);
  ConnectAll(&net, parties, daemon);

  daemon.Stop();
  net.BeginRound("stalled");
  ASSERT_TRUE(net.SendFramed(parties.host, parties.providers[0],
                             ProtocolId::kSession, /*step=*/1, {42})
                  .ok());
  RecvOptions opts;
  opts.deadline_ms = 300;
  // No retransmission: the transport would otherwise re-deliver the frame
  // from its own pristine sent log and mask the stall entirely.
  opts.max_retransmits = 0;
  auto stalled = net.RecvValidated(parties.providers[0], parties.host,
                                   ProtocolId::kSession, /*step=*/1, opts);
  // The stall surfaces as the caller's bounded receive — the deadline or
  // the attempt budget, whichever trips first — never as a dead peer.
  ASSERT_FALSE(stalled.ok());
  const std::string& stall_message = stalled.status().message();
  EXPECT_TRUE(stall_message.find("deadline") != std::string::npos ||
              stall_message.find("giving up") != std::string::npos)
      << stall_message;
  EXPECT_TRUE(net.LinkAlive(parties.providers[0]));
  EXPECT_EQ(net.transport_stats().dead_peers_detected, 0u);
  EXPECT_EQ(net.transport_stats().reconnects, 0u);

  // SIGCONT: the queued frame arrives on the same connection. No
  // handshake, no reconnect, no duplicate delivery.
  daemon.Cont();
  auto resumed = net.RecvValidated(parties.providers[0], parties.host,
                                   ProtocolId::kSession, /*step=*/1);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed.ValueOrDie(), std::vector<uint8_t>({42}));
  EXPECT_EQ(net.transport_stats().reconnects, 0u);
  EXPECT_EQ(net.transport_stats().dead_peers_detected, 0u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// Graceful shutdown: SIGTERM drains and exits 0, mid-session state
// included.

TEST(RemoteExecTest, SigtermDrainsAndExitsCleanly) {
  ExecDaemon daemon;
  SocketNetwork net(FastConfig("graceful-term"));
  Parties parties = RegisterParties(&net, /*m=*/3);
  ConnectAll(&net, parties, daemon);

  // Give the daemon live traffic so the drain path has work to do.
  net.BeginRound("traffic");
  ASSERT_TRUE(net.SendFramed(parties.host, parties.providers[0],
                             ProtocolId::kSession, /*step=*/3, {9, 9})
                  .ok());
  auto echoed = net.RecvValidated(parties.providers[0], parties.host,
                                  ProtocolId::kSession, /*step=*/3);
  ASSERT_TRUE(echoed.ok()) << echoed.status().message();

  // SIGTERM: stop accepting, send goodbyes, flush within the grace window,
  // and exit through main's normal return path — status 0, not a signal
  // death.
  const int status = daemon.TermAndWait();
  ASSERT_TRUE(WIFEXITED(status)) << "daemon died of a signal, raw status "
                                 << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace psi
