// Thread-count determinism regression: the parallel crypto engine must not
// change a single transcript byte. Every RNG draw happens in serial program
// order and only pure modular arithmetic fans out (common/thread_pool.h), so
// a protocol run with an 8-worker pool must produce the exact envelope
// sequence — frame for frame, byte for byte — and the exact metering report
// of the single-threaded run. This pins the contract that lets the chaos
// suite, the cost model, and golden transcripts ignore PSI_THREADS.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "influence/em_learner.h"
#include "mpc/homomorphic_sum.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"
#include "mpc/session.h"
#include "net/fault.h"

namespace psi {
namespace {

// Network that records every transmitted frame (envelope bytes included)
// in order. Two runs are transcript-identical iff their logs compare equal.
class TranscriptNetwork : public Network {
 public:
  struct Frame {
    PartyId from;
    PartyId to;
    std::vector<uint8_t> bytes;
    bool operator==(const Frame& o) const {
      return std::tie(from, to, bytes) == std::tie(o.from, o.to, o.bytes);
    }
  };

  const std::vector<Frame>& frames() const { return frames_; }

 protected:
  Status Transmit(PartyId from, PartyId to,
                  std::vector<uint8_t> frame) override {
    frames_.push_back(Frame{from, to, frame});
    return Network::Transmit(from, to, std::move(frame));
  }

 private:
  std::vector<Frame> frames_;
};

class DeterminismTest : public ::testing::Test {
 protected:
  ~DeterminismTest() override { ThreadPool::Global().SetNumThreads(1); }
};

struct P6Run {
  std::vector<TranscriptNetwork::Frame> frames;
  std::string traffic;
  std::vector<std::vector<std::tuple<NodeId, NodeId, uint64_t>>> arcs;
};

P6Run RunProtocol6(size_t num_threads,
                   Protocol6Config::EncryptionMode mode =
                       Protocol6Config::EncryptionMode::kPerInteger) {
  ThreadPool::Global().SetNumThreads(num_threads);
  Rng world_rng(77);
  auto graph = ErdosRenyiArcs(&world_rng, 30, 120).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&world_rng, graph, 0.2, 0.8);
  CascadeParams params;
  params.num_actions = 12;
  params.seeds_per_action = 2;
  auto log = GenerateCascades(&world_rng, graph, truth, params).ValueOrDie();
  auto provider_logs = ExclusivePartition(&world_rng, log, 3).ValueOrDie();

  TranscriptNetwork net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2"),
                                 net.RegisterParty("P3")};
  Protocol6Config cfg;
  cfg.rsa_bits = 384;
  cfg.encryption = mode;
  Rng r1(31), r2(32), r3(33), host_rng(34);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  PropagationGraphProtocol proto(&net, host, providers, cfg);
  auto out = proto.Run(graph, params.num_actions, provider_logs, &host_rng,
                       rngs).ValueOrDie();

  P6Run run;
  run.frames = net.frames();
  run.traffic = net.Report().ToString();
  run.arcs.resize(out.graphs.size());
  for (size_t a = 0; a < out.graphs.size(); ++a) {
    for (NodeId v = 0; v < out.graphs[a].num_nodes(); ++v) {
      for (const auto& arc : out.graphs[a].OutArcs(v)) {
        run.arcs[a].emplace_back(v, arc.to, arc.delta_t);
      }
    }
  }
  return run;
}

TEST_F(DeterminismTest, Protocol6TranscriptInvariantUnderThreadCount) {
  P6Run serial = RunProtocol6(1);
  P6Run threaded = RunProtocol6(8);
  ASSERT_EQ(serial.frames.size(), threaded.frames.size());
  for (size_t i = 0; i < serial.frames.size(); ++i) {
    ASSERT_EQ(serial.frames[i], threaded.frames[i]) << "frame " << i;
  }
  EXPECT_EQ(serial.traffic, threaded.traffic);
  EXPECT_EQ(serial.arcs, threaded.arcs);
}

TEST_F(DeterminismTest, PackedProtocol6TranscriptInvariantUnderThreadCount) {
  // kPackedInteger draws one pad per packed ciphertext (serially) instead of
  // one per Delta; the transcript must still ignore the pool size.
  constexpr auto kMode = Protocol6Config::EncryptionMode::kPackedInteger;
  P6Run serial = RunProtocol6(1, kMode);
  P6Run threaded = RunProtocol6(8, kMode);
  ASSERT_EQ(serial.frames.size(), threaded.frames.size());
  for (size_t i = 0; i < serial.frames.size(); ++i) {
    ASSERT_EQ(serial.frames[i], threaded.frames[i]) << "frame " << i;
  }
  EXPECT_EQ(serial.traffic, threaded.traffic);
  EXPECT_EQ(serial.arcs, threaded.arcs);
}

struct HSumRun {
  std::vector<TranscriptNetwork::Frame> frames;
  std::string traffic;
  std::vector<BigUInt> s1;
  std::vector<BigUInt> s2;
};

HSumRun RunHomomorphicSum(size_t num_threads, bool packed) {
  ThreadPool::Global().SetNumThreads(num_threads);
  TranscriptNetwork net;
  std::vector<PartyId> players{net.RegisterParty("P1"),
                               net.RegisterParty("P2"),
                               net.RegisterParty("P3")};
  std::vector<std::vector<uint64_t>> inputs{{5, 0, 19, 3}, {7, 1, 2, 8},
                                            {11, 4, 6, 100}};
  Rng r1(91), r2(92), r3(93);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  HomomorphicSumConfig cfg;
  cfg.paillier_bits = 512;
  if (packed) cfg.counter_bound = BigUInt(1000);
  HomomorphicSumProtocol proto(&net, players, cfg);
  auto shares = proto.Run(inputs, rngs, "det.").ValueOrDie();
  EXPECT_EQ(proto.last_run_packed(), packed);
  HSumRun run;
  run.frames = net.frames();
  run.traffic = net.Report().ToString();
  run.s1 = std::move(shares.s1);
  run.s2 = std::move(shares.s2);
  return run;
}

void ExpectIdenticalHSumRuns(const HSumRun& serial, const HSumRun& threaded) {
  ASSERT_EQ(serial.frames.size(), threaded.frames.size());
  for (size_t i = 0; i < serial.frames.size(); ++i) {
    ASSERT_EQ(serial.frames[i], threaded.frames[i]) << "frame " << i;
  }
  EXPECT_EQ(serial.traffic, threaded.traffic);
  EXPECT_EQ(serial.s1, threaded.s1);
  EXPECT_EQ(serial.s2, threaded.s2);
}

TEST_F(DeterminismTest, PaillierSumTranscriptInvariantUnderThreadCount) {
  ExpectIdenticalHSumRuns(RunHomomorphicSum(1, /*packed=*/false),
                          RunHomomorphicSum(8, /*packed=*/false));
}

TEST_F(DeterminismTest, PackedPaillierSumTranscriptInvariantUnderThreadCount) {
  // Packed mode adds batch encryption/decryption and per-slot mask draws;
  // the masks are drawn serially on the protocol thread, so the transcript
  // must stay byte-identical under any pool size.
  ExpectIdenticalHSumRuns(RunHomomorphicSum(1, /*packed=*/true),
                          RunHomomorphicSum(8, /*packed=*/true));
}

TEST_F(DeterminismTest, PackedPaillierSumDiffersOnlyInSizeFromUnpacked) {
  // Sanity on the comparison above: packed and unpacked runs of the same
  // inputs reconstruct the same sums (checked elsewhere) over a *smaller*
  // transcript, so the two suites exercise genuinely different wire paths.
  HSumRun packed = RunHomomorphicSum(1, /*packed=*/true);
  HSumRun unpacked = RunHomomorphicSum(1, /*packed=*/false);
  size_t packed_bytes = 0, unpacked_bytes = 0;
  for (const auto& fr : packed.frames) packed_bytes += fr.bytes.size();
  for (const auto& fr : unpacked.frames) unpacked_bytes += fr.bytes.size();
  EXPECT_LT(packed_bytes, unpacked_bytes);
}

// Fault-injecting network that also logs every transmission attempt (before
// the fault pipeline mutates it), so two crash-recovered runs can be compared
// frame for frame.
class TranscriptFaultyNetwork : public FaultyNetwork {
 public:
  using FaultyNetwork::FaultyNetwork;

  const std::vector<TranscriptNetwork::Frame>& frames() const {
    return frames_;
  }

 protected:
  Status Transmit(PartyId from, PartyId to,
                  std::vector<uint8_t> frame) override {
    frames_.push_back(TranscriptNetwork::Frame{from, to, frame});
    return FaultyNetwork::Transmit(from, to, std::move(frame));
  }

 private:
  std::vector<TranscriptNetwork::Frame> frames_;
};

struct P4World {
  std::unique_ptr<SocialGraph> graph;
  size_t actions = 20;
  std::vector<ActionLog> provider_logs;
};

P4World MakeP4World() {
  P4World w;
  Rng rng(77);
  w.graph = std::make_unique<SocialGraph>(
      ErdosRenyiArcs(&rng, 16, 50).ValueOrDie());
  auto truth = GroundTruthInfluence::Random(&rng, *w.graph, 0.1, 0.7);
  CascadeParams params;
  params.num_actions = w.actions;
  params.seeds_per_action = 2;
  auto log = GenerateCascades(&rng, *w.graph, truth, params).ValueOrDie();
  w.provider_logs = ExclusivePartition(&rng, log, 3).ValueOrDie();
  return w;
}

struct P4SessionRun {
  Result<LinkInfluence> result = Status::Internal("not run");
  SessionStats stats;
  std::vector<TranscriptNetwork::Frame> frames;
};

P4SessionRun RunP4SessionOnce(const P4World& w, size_t num_threads,
                              uint64_t crash_after) {
  ThreadPool::Global().SetNumThreads(num_threads);
  FaultPlan plan;
  plan.crash = CrashSpec{/*party=*/1, crash_after, crash_after + 3};
  TranscriptFaultyNetwork net(plan);
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2"),
                                 net.RegisterParty("P3")};
  Protocol4Config cfg;
  cfg.h = 4;
  Rng r1(31), r2(32), r3(33), host_rng(34), pair_secret(35);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  LinkInfluenceProtocol proto(&net, host, providers, cfg);
  RetryPolicy retry;
  retry.max_attempts = 4;
  P4SessionRun run;
  run.result = proto.RunSession(*w.graph, w.actions, w.provider_logs,
                                &host_rng, rngs, &pair_secret, retry,
                                &run.stats);
  run.frames = net.frames();
  return run;
}

TEST_F(DeterminismTest, ResumedSessionTranscriptInvariantUnderThreadCount) {
  // Crash-restart recovery replays a checkpointed stage; the replay must be
  // byte-identical no matter the pool size, or golden transcripts and the
  // bitwise chaos comparisons would depend on PSI_THREADS.
  P4World w = MakeP4World();
  // Find a crash window the session actually recovers from (serially).
  uint64_t crash_after = 0;
  for (uint64_t after = 1; after <= 10; ++after) {
    P4SessionRun probe = RunP4SessionOnce(w, 1, after);
    if (probe.result.ok() && probe.stats.resumes > 0) {
      crash_after = after;
      break;
    }
  }
  ASSERT_GT(crash_after, 0u) << "no recoverable crash window found";

  P4SessionRun serial = RunP4SessionOnce(w, 1, crash_after);
  P4SessionRun threaded = RunP4SessionOnce(w, 8, crash_after);
  ASSERT_TRUE(serial.result.ok());
  ASSERT_TRUE(threaded.result.ok());
  EXPECT_GT(serial.stats.resumes, 0u);
  EXPECT_EQ(serial.stats.resumes, threaded.stats.resumes);
  EXPECT_EQ(serial.stats.stages_resumed, threaded.stats.stages_resumed);
  ASSERT_EQ(serial.frames.size(), threaded.frames.size());
  for (size_t i = 0; i < serial.frames.size(); ++i) {
    ASSERT_EQ(serial.frames[i], threaded.frames[i]) << "frame " << i;
  }
  const LinkInfluence& a = serial.result.ValueOrDie();
  const LinkInfluence& b = threaded.result.ValueOrDie();
  ASSERT_EQ(a.p.size(), b.p.size());
  for (size_t e = 0; e < a.p.size(); ++e) {
    ASSERT_EQ(a.p[e], b.p[e]) << "arc " << e;
  }
}

TEST_F(DeterminismTest, EmLearnerBitIdenticalAcrossThreadCounts) {
  // The E-step reduction uses thread-count-invariant chunking, so learned
  // probabilities must compare EXACTLY equal (not just within tolerance).
  Rng rng(55);
  auto graph = ErdosRenyiArcs(&rng, 60, 360).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.35);
  CascadeParams params;
  params.num_actions = 40;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  EmConfig cfg;
  cfg.h = 4;
  cfg.max_iterations = 15;

  ThreadPool::Global().SetNumThreads(1);
  auto serial = LearnInfluenceEm(graph, log, cfg).ValueOrDie();
  ThreadPool::Global().SetNumThreads(8);
  auto threaded = LearnInfluenceEm(graph, log, cfg).ValueOrDie();

  EXPECT_EQ(serial.iterations, threaded.iterations);
  ASSERT_EQ(serial.influence.p.size(), threaded.influence.p.size());
  for (size_t k = 0; k < serial.influence.p.size(); ++k) {
    EXPECT_EQ(serial.influence.p[k], threaded.influence.p[k]) << "arc " << k;
  }
  EXPECT_EQ(serial.log_likelihood, threaded.log_likelihood);
}

}  // namespace
}  // namespace psi
