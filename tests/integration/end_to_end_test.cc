// End-to-end integration: the full paper pipeline on one synthetic world —
// graph generation, cascade generation, provider partitioning, Protocol 4
// link strengths, Protocol 6 + scores, the non-exclusive variant, and the
// downstream influence-maximization consumer — checked against the
// plaintext baselines and the ground truth that generated the data.

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "common/stats.h"
#include "graph/generators.h"
#include "influence/influence_max.h"
#include "influence/link_influence.h"
#include "influence/user_score.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/non_exclusive.h"
#include "mpc/secure_user_score.h"

namespace psi {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr size_t kUsers = 50;
  static constexpr size_t kArcs = 250;
  static constexpr size_t kActions = 120;
  static constexpr size_t kProviders = 4;
  static constexpr uint64_t kWindow = 4;

  void SetUp() override {
    rng_ = std::make_unique<Rng>(20140324);  // EDBT 2014.
    graph_ = std::make_unique<SocialGraph>(
        BarabasiAlbert(rng_.get(), kUsers, 3).ValueOrDie());
    truth_ = GroundTruthInfluence::Random(rng_.get(), *graph_, 0.05, 0.7);
    CascadeParams params;
    params.num_actions = kActions;
    params.seeds_per_action = 2;
    params.max_delay = kWindow;
    log_ = GenerateCascades(rng_.get(), *graph_, truth_, params).ValueOrDie();

    host_ = net_.RegisterParty("H");
    for (size_t k = 0; k < kProviders; ++k) {
      providers_.push_back(net_.RegisterParty("P" + std::to_string(k + 1)));
      provider_rngs_.push_back(std::make_unique<Rng>(9000 + k));
    }
    host_rng_ = std::make_unique<Rng>(1);
    pair_secret_ = std::make_unique<Rng>(2);
    class_secret_ = std::make_unique<Rng>(3);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : provider_rngs_) out.push_back(r.get());
    return out;
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<SocialGraph> graph_;
  GroundTruthInfluence truth_;
  ActionLog log_;
  Network net_;
  PartyId host_;
  std::vector<PartyId> providers_;
  std::vector<std::unique_ptr<Rng>> provider_rngs_;
  std::unique_ptr<Rng> host_rng_, pair_secret_, class_secret_;
};

TEST_F(EndToEndTest, ExclusivePipelineRecoversPlaintextAndTracksTruth) {
  auto provider_logs =
      ExclusivePartition(rng_.get(), log_, kProviders).ValueOrDie();

  Protocol4Config cfg;
  cfg.h = kWindow;
  LinkInfluenceProtocol p4(&net_, host_, providers_, cfg);
  auto secure = p4.Run(*graph_, kActions, provider_logs, host_rng_.get(),
                       RngPtrs(), pair_secret_.get())
                    .ValueOrDie();

  auto plain = ComputeLinkInfluence(log_, graph_->arcs(), kUsers, kWindow)
                   .ValueOrDie();
  EXPECT_LT(MeanAbsoluteError(secure, plain).ValueOrDie(), 1e-10);

  // Learned strengths correlate with the generating ground truth.
  double corr = PearsonCorrelation(truth_.prob, secure.p);
  EXPECT_GT(corr, 0.3);
}

TEST_F(EndToEndTest, NonExclusivePipelineEqualsExclusiveResult) {
  auto class_cfg = ActionClassConfig::Random(rng_.get(), kActions, 6,
                                             kProviders, 2, kProviders)
                       .ValueOrDie();
  auto provider_logs =
      NonExclusivePartition(rng_.get(), log_, kProviders, class_cfg)
          .ValueOrDie();

  NonExclusiveConfig cfg;
  cfg.protocol4.h = kWindow;
  NonExclusivePipeline pipe(&net_, host_, providers_, cfg);
  auto secure = pipe.Run(*graph_, kActions, provider_logs, class_cfg,
                         host_rng_.get(), RngPtrs(), pair_secret_.get(),
                         class_secret_.get())
                    .ValueOrDie();
  auto plain = ComputeLinkInfluence(log_, graph_->arcs(), kUsers, kWindow)
                   .ValueOrDie();
  EXPECT_LT(MeanAbsoluteError(secure, plain).ValueOrDie(), 1e-10);
}

TEST_F(EndToEndTest, SecureScoresFeedTopInfluencerRanking) {
  auto provider_logs =
      ExclusivePartition(rng_.get(), log_, kProviders).ValueOrDie();
  SecureScoreConfig cfg;
  cfg.protocol6.rsa_bits = 512;
  cfg.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
  cfg.score_options.tau = 10;
  SecureUserScoreProtocol pipeline(&net_, host_, providers_, cfg);
  auto secure_scores =
      pipeline.Run(*graph_, kActions, provider_logs, host_rng_.get(),
                   RngPtrs(), pair_secret_.get())
          .ValueOrDie();
  auto plain_scores =
      ComputeUserInfluenceScores(*graph_, log_, cfg.score_options)
          .ValueOrDie();
  // Identical scores imply identical top-k rankings.
  EXPECT_EQ(TopKUsers(secure_scores, 5), TopKUsers(plain_scores, 5));
}

TEST_F(EndToEndTest, LearnedStrengthsDriveInfluenceMaximization) {
  // Close the loop the paper motivates: learn p_ij securely, then run the
  // downstream influence-maximization and compare against using the ground
  // truth directly. The learned seeds should achieve a spread close to the
  // truth-derived seeds.
  auto provider_logs =
      ExclusivePartition(rng_.get(), log_, kProviders).ValueOrDie();
  Protocol4Config cfg;
  cfg.h = kWindow;
  LinkInfluenceProtocol p4(&net_, host_, providers_, cfg);
  auto learned = p4.Run(*graph_, kActions, provider_logs, host_rng_.get(),
                        RngPtrs(), pair_secret_.get())
                     .ValueOrDie();

  Rng opt_rng(77);
  auto seeds_learned =
      CelfInfluenceMaximization(*graph_, learned.p, 3, &opt_rng, 150)
          .ValueOrDie();
  auto seeds_truth =
      CelfInfluenceMaximization(*graph_, truth_.prob, 3, &opt_rng, 150)
          .ValueOrDie();

  Rng eval_rng(88);
  double spread_learned = EstimateSpread(*graph_, truth_.prob,
                                         seeds_learned.seeds, &eval_rng, 2000)
                              .ValueOrDie();
  double spread_truth = EstimateSpread(*graph_, truth_.prob,
                                       seeds_truth.seeds, &eval_rng, 2000)
                            .ValueOrDie();
  EXPECT_GT(spread_learned, 0.6 * spread_truth)
      << "seeds from learned influence should be competitive";
}

TEST_F(EndToEndTest, WholeSessionLeavesNoPendingMessages) {
  auto provider_logs =
      ExclusivePartition(rng_.get(), log_, kProviders).ValueOrDie();
  Protocol4Config cfg;
  LinkInfluenceProtocol p4(&net_, host_, providers_, cfg);
  ASSERT_TRUE(p4.Run(*graph_, kActions, provider_logs, host_rng_.get(),
                     RngPtrs(), pair_secret_.get())
                  .ok());
  SecureScoreConfig scfg;
  scfg.protocol6.rsa_bits = 512;
  scfg.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
  SecureUserScoreProtocol p6(&net_, host_, providers_, scfg);
  ASSERT_TRUE(p6.Run(*graph_, kActions, provider_logs, host_rng_.get(),
                     RngPtrs(), pair_secret_.get())
                  .ok());
  EXPECT_EQ(net_.PendingCount(), 0u);
  // 8 rounds for Protocol 4 + 4 for Protocol 6 + 4 + 3 for the a_i reveal.
  EXPECT_EQ(net_.Report().num_rounds, 8u + 4u + 4u + 3u);
}

}  // namespace
}  // namespace psi
