// Compilation test for the umbrella header: every public header must be
// self-contained and IWYU-clean enough to coexist in one translation unit,
// and a symbol from each subsystem must be reachable through it.

#include "psi.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(UmbrellaHeaderTest, EverySubsystemReachable) {
  // common
  EXPECT_TRUE(Status::OK().ok());
  Rng rng(1);
  EXPECT_LT(rng.UniformReal(), 1.0);
  // bigint
  EXPECT_EQ(BigUInt(2) + BigUInt(3), BigUInt(5));
  EXPECT_TRUE(MontgomeryContext::Create(BigUInt(101)).ok());
  // crypto
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))).size(), 64u);
  EXPECT_EQ(ShiftCipher(3, 10).Encrypt(9), 2u);
  // net
  Network net;
  EXPECT_EQ(net.RegisterParty("X"), 0u);
  // graph
  SocialGraph g(3);
  EXPECT_TRUE(g.AddArc(0, 1).ok());
  EXPECT_DOUBLE_EQ(Reciprocity(g), 0.0);
  // actionlog
  ActionLog log;
  log.Add({0, 0, 1});
  EXPECT_EQ(ComputeActionCounts(log, 3)[0], 1u);
  // influence
  EXPECT_EQ(TopKUsers({0.5, 0.9}, 1)[0], 1u);
  EXPECT_TRUE(KendallTau({1.0, 2.0}, {1.0, 2.0}).ok());
  // mpc
  EXPECT_EQ(AllOrderedPairs(3).size(), 6u);
  IntegerShares shares{BigUInt(7), BigInt(-3)};
  EXPECT_EQ(shares.Reconstruct(), BigInt(4));
  // privacy
  EXPECT_EQ(UniformPrior(10).size(), 11u);
  EXPECT_TRUE(
      ComputeLeakageProbabilities(1, BigUInt(10), BigUInt(1000)).ok());
}

}  // namespace
}  // namespace psi
