// Chaos harness: Protocols 4 and 6 under hundreds of seeded fault schedules.
//
// The invariant (docs/FAULTS.md): with the fault layer between the drivers
// and the wire, a protocol run under ANY fault schedule either produces
// exactly the result of the fault-free run, or terminates with a clean
// non-OK Status within the bounded retransmission budget. It never returns
// a wrong answer, crashes, or deadlocks. The fault layer draws from its own
// RNG, so protocol randomness streams are identical across runs and a
// completed faulty run must match the baseline bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "mpc/homomorphic_sum.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"
#include "mpc/session.h"
#include "net/cost_model.h"
#include "net/fault.h"

namespace psi {
namespace {

// Seeds per chaos sweep. Defaults to 200; CI's sanitizer job soaks with
// PSI_CHAOS_SEEDS=1000, and local debugging can shrink it the same way.
uint64_t NumChaosSeeds() {
  const char* env = std::getenv("PSI_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return 200;
  const uint64_t parsed = std::strtoull(env, nullptr, 10);
  return parsed == 0 ? 200 : parsed;
}

const uint64_t kNumChaosSeeds = NumChaosSeeds();

// Static world: graph, cascades and provider partition are built once; only
// the network and the (re-seeded) party RNGs differ between runs.
struct WorldData {
  size_t m = 0;
  size_t n = 0;
  size_t actions = 0;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
};

WorldData MakeWorldData(size_t m, size_t n, size_t arcs, size_t actions,
                        uint64_t seed) {
  WorldData w;
  w.m = m;
  w.n = n;
  w.actions = actions;
  Rng rng(seed);
  w.graph = std::make_unique<SocialGraph>(
      ErdosRenyiArcs(&rng, n, arcs).ValueOrDie());
  auto truth = GroundTruthInfluence::Random(&rng, *w.graph, 0.1, 0.7);
  CascadeParams params;
  params.num_actions = actions;
  params.seeds_per_action = 2;
  w.log = GenerateCascades(&rng, *w.graph, truth, params).ValueOrDie();
  w.provider_logs = ExclusivePartition(&rng, w.log, m).ValueOrDie();
  return w;
}

struct Parties {
  PartyId host;
  std::vector<PartyId> providers;
};

Parties RegisterParties(Network* net, size_t m) {
  Parties p;
  p.host = net->RegisterParty("H");
  for (size_t k = 0; k < m; ++k) {
    p.providers.push_back(net->RegisterParty("P" + std::to_string(k + 1)));
  }
  return p;
}

// Runs Protocol 4 on `net` with fixed RNG seeds (identical across calls, so
// any two completed runs must agree exactly). Optionally reports the modulus
// size and |Omega_E'| for the cost-model comparison.
Result<LinkInfluence> RunP4(const WorldData& w, Network* net,
                            size_t* log_s = nullptr, size_t* q = nullptr,
                            P4Aggregation aggregation =
                                P4Aggregation::kSecureSum) {
  Parties parties = RegisterParties(net, w.m);
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.aggregation = aggregation;
  cfg.paillier_bits = 384;  // Keeps per-seed keygen cheap in chaos sweeps.
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(1000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(501), pair_secret(502);
  LinkInfluenceProtocol proto(net, parties.host, parties.providers, cfg);
  auto result = proto.Run(*w.graph, w.actions, w.provider_logs, &host_rng,
                          rng_ptrs, &pair_secret);
  if (log_s != nullptr) *log_s = proto.modulus().BitLength();
  if (q != nullptr) *q = proto.views().omega.size();
  return result;
}

Result<Protocol6Output> RunP6(const WorldData& w, Network* net,
                              Protocol6Config::EncryptionMode mode =
                                  Protocol6Config::EncryptionMode::kHybrid) {
  Parties parties = RegisterParties(net, w.m);
  Protocol6Config cfg;
  cfg.rsa_bits = 384;
  cfg.encryption = mode;
  cfg.obfuscation_factor = 1.5;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(2000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(601);
  PropagationGraphProtocol proto(net, parties.host, parties.providers, cfg);
  return proto.Run(*w.graph, w.actions, w.provider_logs, &host_rng, rng_ptrs);
}

// RunP4 through the session/recovery layer (mpc/session.h): same world,
// same RNG seeds, so a completed session run must reproduce RunP4's result
// bit for bit no matter how many crash-restart cycles it survived.
Result<LinkInfluence> RunP4Session(const WorldData& w, Network* net,
                                   const RetryPolicy& retry,
                                   SessionStats* stats,
                                   P4Aggregation aggregation =
                                       P4Aggregation::kSecureSum,
                                   size_t* log_s = nullptr,
                                   size_t* q = nullptr) {
  Parties parties = RegisterParties(net, w.m);
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.aggregation = aggregation;
  cfg.paillier_bits = 384;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(1000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(501), pair_secret(502);
  LinkInfluenceProtocol proto(net, parties.host, parties.providers, cfg);
  auto result = proto.RunSession(*w.graph, w.actions, w.provider_logs,
                                 &host_rng, rng_ptrs, &pair_secret, retry,
                                 stats);
  if (log_s != nullptr) *log_s = proto.modulus().BitLength();
  if (q != nullptr) *q = proto.views().omega.size();
  return result;
}

Result<Protocol6Output> RunP6Session(const WorldData& w, Network* net,
                                     const RetryPolicy& retry,
                                     SessionStats* stats) {
  Parties parties = RegisterParties(net, w.m);
  Protocol6Config cfg;
  cfg.rsa_bits = 384;
  cfg.encryption = Protocol6Config::EncryptionMode::kHybrid;
  cfg.obfuscation_factor = 1.5;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < w.m; ++k) {
    rngs.push_back(std::make_unique<Rng>(2000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(601);
  PropagationGraphProtocol proto(net, parties.host, parties.providers, cfg);
  return proto.RunSession(*w.graph, w.actions, w.provider_logs, &host_rng,
                          rng_ptrs, retry, stats);
}

// Canonical flat encoding of a Protocol 6 output for exact comparison.
std::vector<std::array<uint64_t, 4>> CanonicalArcs(const Protocol6Output& out) {
  std::vector<std::array<uint64_t, 4>> arcs;
  for (size_t a = 0; a < out.graphs.size(); ++a) {
    for (NodeId v = 0; v < out.graphs[a].num_nodes(); ++v) {
      for (const auto& arc : out.graphs[a].OutArcs(v)) {
        arcs.push_back({a, static_cast<uint64_t>(v),
                        static_cast<uint64_t>(arc.to), arc.delta_t});
      }
    }
  }
  std::sort(arcs.begin(), arcs.end());
  return arcs;
}

TEST(ChaosTest, Protocol4SurvivesRandomFaultSchedules) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network clean;
  auto baseline = RunP4(w, &clean).ValueOrDie();

  uint64_t ok_runs = 0, failed_runs = 0, faults_injected = 0;
  for (uint64_t seed = 0; seed < kNumChaosSeeds; ++seed) {
    FaultyNetwork net(FaultPlan::RandomPlan(seed, /*num_parties=*/w.m + 1));
    auto result = RunP4(w, &net);
    faults_injected += net.fault_stats().injected();
    // Drained mailboxes on every outcome: a failed run must not leak frames
    // into whatever would run next on this network.
    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      const LinkInfluence& got = result.ValueOrDie();
      ASSERT_EQ(got.p.size(), baseline.p.size()) << "seed=" << seed;
      for (size_t e = 0; e < got.p.size(); ++e) {
        // Bitwise equality: the fault layer must never perturb the result.
        ASSERT_EQ(got.p[e], baseline.p[e]) << "seed=" << seed << " arc=" << e;
      }
    } else {
      ++failed_runs;
      // A clean, described error — not a crash, not a hang.
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kNumChaosSeeds);
  // The schedule generator must actually exercise both outcomes.
  EXPECT_GT(faults_injected, 0u);
  EXPECT_GT(ok_runs, 0u);
  EXPECT_GT(failed_runs, 0u);
}

TEST(ChaosTest, Protocol6SurvivesRandomFaultSchedules) {
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network clean;
  auto baseline = CanonicalArcs(RunP6(w, &clean).ValueOrDie());

  uint64_t ok_runs = 0, failed_runs = 0, faults_injected = 0;
  for (uint64_t seed = 0; seed < kNumChaosSeeds; ++seed) {
    FaultyNetwork net(FaultPlan::RandomPlan(seed, /*num_parties=*/w.m + 1));
    auto result = RunP6(w, &net);
    faults_injected += net.fault_stats().injected();
    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      ASSERT_EQ(CanonicalArcs(result.ValueOrDie()), baseline)
          << "seed=" << seed;
    } else {
      ++failed_runs;
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kNumChaosSeeds);
  EXPECT_GT(faults_injected, 0u);
  EXPECT_GT(ok_runs, 0u);
  EXPECT_GT(failed_runs, 0u);
}

TEST(ChaosTest, PackedAggregationSurvivesRandomFaultSchedules) {
  // Packed Paillier envelopes (ciphertext vectors, the published key) ride
  // the same fault layer: every completed faulty run must reproduce the
  // clean run bit for bit, every aborted run must fail cleanly.
  const uint64_t kSeeds =
      (kNumChaosSeeds * 3) / 5;  // Each run pays a Paillier keygen.
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network clean;
  auto baseline = RunP4(w, &clean, nullptr, nullptr,
                        P4Aggregation::kPaillierPacked)
                      .ValueOrDie();

  uint64_t ok_runs = 0, failed_runs = 0, faults_injected = 0;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultyNetwork net(FaultPlan::RandomPlan(seed, /*num_parties=*/w.m + 1));
    auto result =
        RunP4(w, &net, nullptr, nullptr, P4Aggregation::kPaillierPacked);
    faults_injected += net.fault_stats().injected();
    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      const LinkInfluence& got = result.ValueOrDie();
      ASSERT_EQ(got.p.size(), baseline.p.size()) << "seed=" << seed;
      for (size_t e = 0; e < got.p.size(); ++e) {
        ASSERT_EQ(got.p[e], baseline.p[e]) << "seed=" << seed << " arc=" << e;
      }
    } else {
      ++failed_runs;
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kSeeds);
  EXPECT_GT(faults_injected, 0u);
  EXPECT_GT(ok_runs, 0u);
  EXPECT_GT(failed_runs, 0u);
}

TEST(ChaosTest, PackedProtocol6SurvivesRandomFaultSchedules) {
  const uint64_t kSeeds = (kNumChaosSeeds * 3) / 5;
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  constexpr auto kMode = Protocol6Config::EncryptionMode::kPackedInteger;
  Network clean;
  auto baseline = CanonicalArcs(RunP6(w, &clean, kMode).ValueOrDie());

  uint64_t ok_runs = 0, failed_runs = 0, faults_injected = 0;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultyNetwork net(FaultPlan::RandomPlan(seed, /*num_parties=*/w.m + 1));
    auto result = RunP6(w, &net, kMode);
    faults_injected += net.fault_stats().injected();
    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      ASSERT_EQ(CanonicalArcs(result.ValueOrDie()), baseline)
          << "seed=" << seed;
    } else {
      ++failed_runs;
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kSeeds);
  EXPECT_GT(faults_injected, 0u);
  EXPECT_GT(ok_runs, 0u);
  EXPECT_GT(failed_runs, 0u);
}

TEST(ChaosTest, PackedHomomorphicSumZeroFaultPlanMetersExactly) {
  // Zero-fault metering stays exact for packed envelopes: the fault layer
  // adds nothing, and the analytic model predicts the wire bytes.
  FaultyNetwork net(FaultPlan::None());
  const size_t m = 3;
  std::vector<PartyId> players;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < m; ++k) {
    players.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rngs.push_back(std::make_unique<Rng>(3000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  HomomorphicSumConfig config;
  config.paillier_bits = 512;
  config.counter_bound = BigUInt((1ull << 20) - 1);
  HomomorphicSumProtocol proto(&net, players, config);
  const size_t count = 30;
  std::vector<std::vector<uint64_t>> inputs(m, std::vector<uint64_t>(count));
  for (size_t k = 0; k < m; ++k) {
    for (size_t c = 0; c < count; ++c) inputs[k][c] = 31 * k + c;
  }
  ASSERT_TRUE(proto.Run(inputs, rng_ptrs, "h.").ok());
  ASSERT_TRUE(proto.last_run_packed());
  EXPECT_EQ(net.fault_stats().injected(), 0u);

  HomomorphicSumCostParams p;
  p.m = m;
  p.count = count;
  p.key_bits = 512;
  p.slots_per_ciphertext = proto.last_run_slots();
  auto model = HomomorphicSumCosts(p).ValueOrDie();
  auto report = net.Report();
  EXPECT_EQ(report.num_rounds, model.nr);
  EXPECT_EQ(report.num_messages, model.nm);
  EXPECT_EQ(report.num_bytes * 8, EnvelopedBits(model));
  EXPECT_EQ(report.num_bytes,
            report.num_payload_bytes + model.nm * kEnvelopeOverheadBytes);
}

TEST(ChaosTest, Protocol4ZeroFaultPlanMatchesCostModelExactly) {
  WorldData w = MakeWorldData(3, 16, 50, 20, 77);
  FaultyNetwork net(FaultPlan::None());
  size_t log_s = 0, q = 0;
  ASSERT_TRUE(RunP4(w, &net, &log_s, &q).ok());
  EXPECT_EQ(net.fault_stats().injected(), 0u);
  EXPECT_EQ(net.fault_stats().retransmits_served, 0u);

  Protocol4CostParams params;
  params.m = w.m;
  params.n = w.n;
  params.q = q;
  params.log_s = log_s;
  auto model = Protocol4Costs(params).ValueOrDie();

  auto report = net.Report();
  // NR and NM agree with the analytic Table 1 model exactly.
  EXPECT_EQ(report.num_rounds, model.nr);
  EXPECT_EQ(report.num_messages, model.nm);
  ASSERT_EQ(report.rounds.size(), model.rows.size());
  for (size_t i = 0; i < model.rows.size(); ++i) {
    EXPECT_EQ(report.rounds[i].num_messages, model.rows[i].num_messages)
        << "round " << i;
    // Every round meters the fixed envelope overhead on top of its payload.
    EXPECT_EQ(report.rounds[i].num_bytes,
              report.rounds[i].num_payload_bytes +
                  report.rounds[i].num_messages * kEnvelopeOverheadBytes)
        << "round " << i;
  }
  // Wire MS differs from payload MS by exactly 29 bytes per message, the
  // same fixed overhead EnvelopedBits() adds to the analytic model.
  EXPECT_EQ(report.num_bytes,
            report.num_payload_bytes + model.nm * kEnvelopeOverheadBytes);
  EXPECT_EQ(EnvelopedBits(model) - model.ms_bits,
            model.nm * kEnvelopeOverheadBytes * 8);
}

TEST(ChaosTest, Protocol6ZeroFaultPlanMatchesCostModelExactly) {
  WorldData w = MakeWorldData(3, 14, 40, 8, 88);
  FaultyNetwork net(FaultPlan::None());
  ASSERT_TRUE(RunP6(w, &net).ok());
  EXPECT_EQ(net.fault_stats().injected(), 0u);

  auto report = net.Report();
  // Table 2: NR = 4, NM = 3m.
  EXPECT_EQ(report.num_rounds, 4u);
  EXPECT_EQ(report.num_messages, 3 * w.m);
  for (const auto& round : report.rounds) {
    EXPECT_EQ(round.num_bytes,
              round.num_payload_bytes +
                  round.num_messages * kEnvelopeOverheadBytes)
        << round.label;
  }
  EXPECT_EQ(report.num_bytes,
            report.num_payload_bytes +
                report.num_messages * kEnvelopeOverheadBytes);
}

TEST(ChaosTest, Protocol4SessionRecoversFromCrashRestartSchedules) {
  // The tentpole invariant: under crash-restart schedules, a session run
  // either reproduces the fault-free transcript bit for bit — resuming from
  // checkpoints, recomputing NOTHING that was already checkpointed — or
  // fails with a clean error once the attempt budget is spent.
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/16, /*arcs=*/50, /*actions=*/20,
                              /*seed=*/77);
  Network clean;
  auto baseline = RunP4(w, &clean).ValueOrDie();

  uint64_t ok_runs = 0, failed_runs = 0, recovered_runs = 0;
  for (uint64_t seed = 0; seed < kNumChaosSeeds; ++seed) {
    FaultyNetwork net(
        FaultPlan::RandomRestartPlan(seed, /*num_parties=*/w.m + 1));
    RetryPolicy retry;
    retry.max_attempts = 4;
    SessionStats stats;
    auto result = RunP4Session(w, &net, retry, &stats);
    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    // Stage-resume never redoes checkpointed crypto work, recovered or not.
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      if (stats.resumes > 0) ++recovered_runs;
      const LinkInfluence& got = result.ValueOrDie();
      ASSERT_EQ(got.p.size(), baseline.p.size()) << "seed=" << seed;
      for (size_t e = 0; e < got.p.size(); ++e) {
        ASSERT_EQ(got.p[e], baseline.p[e]) << "seed=" << seed << " arc=" << e;
      }
    } else {
      ++failed_runs;
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kNumChaosSeeds);
  EXPECT_GT(ok_runs, 0u);
  // The sweep must actually exercise recovery, not just fault-free luck:
  // some runs must have completed only via resume handshakes.
  EXPECT_GT(recovered_runs, 0u);
}

TEST(ChaosTest, Protocol6SessionRecoversFromCrashRestartSchedules) {
  const uint64_t kSeeds = (kNumChaosSeeds * 3) / 5;  // RSA keygen per run.
  WorldData w = MakeWorldData(/*m=*/3, /*n=*/14, /*arcs=*/40, /*actions=*/8,
                              /*seed=*/88);
  Network clean;
  auto baseline = CanonicalArcs(RunP6(w, &clean).ValueOrDie());

  uint64_t ok_runs = 0, failed_runs = 0, recovered_runs = 0;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultyNetwork net(
        FaultPlan::RandomRestartPlan(seed, /*num_parties=*/w.m + 1));
    RetryPolicy retry;
    retry.max_attempts = 4;
    SessionStats stats;
    auto result = RunP6Session(w, &net, retry, &stats);
    ASSERT_EQ(net.PendingCount(), 0u) << "seed=" << seed;
    ASSERT_EQ(stats.crypto_ops_recomputed, 0u) << "seed=" << seed;
    if (result.ok()) {
      ++ok_runs;
      if (stats.resumes > 0) ++recovered_runs;
      ASSERT_EQ(CanonicalArcs(result.ValueOrDie()), baseline)
          << "seed=" << seed;
    } else {
      ++failed_runs;
      ASSERT_FALSE(result.status().message().empty()) << "seed=" << seed;
    }
  }
  EXPECT_EQ(ok_runs + failed_runs, kSeeds);
  EXPECT_GT(ok_runs, 0u);
  EXPECT_GT(recovered_runs, 0u);
}

TEST(ChaosTest, Protocol4SessionZeroFaultPlanMatchesCostModelExactly) {
  // With no faults, the session layer must be invisible on the wire: one
  // attempt, no handshake, no backoff — metering identical to the analytic
  // Table 1 model, byte for byte, even with a multi-attempt retry budget.
  WorldData w = MakeWorldData(3, 16, 50, 20, 77);
  FaultyNetwork net(FaultPlan::None());
  RetryPolicy retry;  // Defaults: max_attempts = 3, resume on.
  SessionStats stats;
  size_t log_s = 0, q = 0;
  ASSERT_TRUE(RunP4Session(w, &net, retry, &stats,
                           P4Aggregation::kSecureSum, &log_s, &q)
                  .ok());
  EXPECT_EQ(net.PendingCount(), 0u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.resumes, 0u);
  EXPECT_EQ(stats.backoff_rounds, 0u);
  EXPECT_EQ(stats.handshake_messages, 0u);
  EXPECT_EQ(stats.handshake_bytes, 0u);
  EXPECT_EQ(stats.crypto_ops_recomputed, 0u);
  EXPECT_GT(stats.checkpoints_written, 0u);

  Protocol4CostParams params;
  params.m = w.m;
  params.n = w.n;
  params.q = q;
  params.log_s = log_s;
  auto model = Protocol4Costs(params).ValueOrDie();
  auto report = net.Report();
  EXPECT_EQ(report.num_rounds, model.nr);
  EXPECT_EQ(report.num_messages, model.nm);
  EXPECT_EQ(report.num_bytes,
            report.num_payload_bytes + model.nm * kEnvelopeOverheadBytes);
}

// A crash-only plan (no probabilistic rules) taking down provider P1 for the
// round window (after_round, restart_round). Deterministic: the handshake
// round then carries exactly the analytic resume traffic.
FaultPlan CrashOnlyPlan(PartyId party, uint64_t after_round,
                        uint64_t restart_round) {
  FaultPlan plan;
  plan.crash = CrashSpec{party, after_round, restart_round};
  return plan;
}

TEST(ChaosTest, ForcedResumeHandshakeMetersExactly) {
  WorldData w = MakeWorldData(3, 16, 50, 20, 77);
  Network clean;
  auto baseline = RunP4(w, &clean).ValueOrDie();
  // Party ids are registration order: host, then providers (RunP4Session
  // registers the same way every run).
  const PartyId provider1 = 1;

  bool found = false;
  for (uint64_t after = 1; after <= 10 && !found; ++after) {
    FaultyNetwork net(CrashOnlyPlan(provider1, after, after + 3));
    RetryPolicy retry;
    retry.max_attempts = 4;
    SessionStats stats;
    auto result = RunP4Session(w, &net, retry, &stats);
    ASSERT_EQ(net.PendingCount(), 0u) << "after_round=" << after;
    if (!result.ok() || stats.resumes != 1) continue;
    found = true;

    // The recovered run converges to the fault-free transcript...
    const LinkInfluence& got = result.ValueOrDie();
    ASSERT_EQ(got.p.size(), baseline.p.size());
    for (size_t e = 0; e < got.p.size(); ++e) {
      ASSERT_EQ(got.p[e], baseline.p[e]) << "arc=" << e;
    }
    // ...skipping checkpointed stages instead of recomputing them.
    EXPECT_GT(stats.stages_resumed, 0u);
    EXPECT_EQ(stats.crypto_ops_recomputed, 0u);

    // The one resume round meters exactly what the analytic model predicts.
    SessionResumeCostParams p;
    p.num_parties = w.m + 1;
    auto model = SessionResumeCosts(p).ValueOrDie();
    auto report = net.Report();
    const RoundStats* resume_round = nullptr;
    for (const auto& round : report.rounds) {
      if (round.label.find(".resume") != std::string::npos) {
        ASSERT_EQ(resume_round, nullptr) << "two resume rounds in one resume";
        resume_round = &round;
      }
    }
    ASSERT_NE(resume_round, nullptr);
    EXPECT_EQ(model.nr, 1u);
    EXPECT_EQ(resume_round->num_messages, model.nm);
    EXPECT_EQ(resume_round->num_payload_bytes * 8, model.ms_bits);
    EXPECT_EQ(resume_round->num_bytes,
              resume_round->num_payload_bytes +
                  model.nm * kEnvelopeOverheadBytes);
    EXPECT_EQ(stats.handshake_messages, model.nm);
    EXPECT_EQ(stats.handshake_bytes, resume_round->num_bytes);
  }
  // Some crash window in the probe range must trigger exactly one recovery;
  // if none does, the recovery machinery is broken (or the probe is stale).
  ASSERT_TRUE(found);
}

TEST(ChaosTest, FullRestartBaselineRecomputesPackedCryptoOps) {
  // The ablation behind bench_recovery: with resume_from_checkpoint off,
  // every retry restarts from scratch, so completed Paillier work is redone
  // and the ledger must show it. Same inputs, same final bits — the only
  // difference is the wasted work.
  WorldData w = MakeWorldData(3, 16, 50, 20, 77);
  Network clean;
  auto baseline =
      RunP4(w, &clean, nullptr, nullptr, P4Aggregation::kPaillierPacked)
          .ValueOrDie();
  const PartyId provider1 = 1;

  bool found = false;
  for (uint64_t after = 1; after <= 10 && !found; ++after) {
    // Resume-mode probe first: find a window that recovers, then rerun the
    // identical schedule with checkpoint resume disabled.
    FaultyNetwork net(CrashOnlyPlan(provider1, after, after + 3));
    RetryPolicy retry;
    retry.max_attempts = 4;
    SessionStats stats;
    auto result = RunP4Session(w, &net, retry, &stats,
                               P4Aggregation::kPaillierPacked);
    ASSERT_EQ(net.PendingCount(), 0u) << "after_round=" << after;
    if (!result.ok() || stats.resumes == 0 || stats.crypto_ops_saved == 0) {
      continue;
    }
    found = true;
    EXPECT_EQ(stats.crypto_ops_recomputed, 0u);

    FaultyNetwork net_full(CrashOnlyPlan(provider1, after, after + 3));
    RetryPolicy full_restart = retry;
    full_restart.resume_from_checkpoint = false;
    SessionStats full_stats;
    auto full_result = RunP4Session(w, &net_full, full_restart, &full_stats,
                                    P4Aggregation::kPaillierPacked);
    ASSERT_EQ(net_full.PendingCount(), 0u);
    ASSERT_TRUE(full_result.ok());
    EXPECT_GT(full_stats.crypto_ops_recomputed, 0u);
    EXPECT_EQ(full_stats.crypto_ops_saved, 0u);
    const LinkInfluence& got = full_result.ValueOrDie();
    ASSERT_EQ(got.p.size(), baseline.p.size());
    for (size_t e = 0; e < got.p.size(); ++e) {
      ASSERT_EQ(got.p[e], baseline.p[e]) << "arc=" << e;
    }
  }
  ASSERT_TRUE(found);
}

}  // namespace
}  // namespace psi
