#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace psi {
namespace {

TEST(GraphIoTest, RoundTripThroughStream) {
  Rng rng(1);
  auto graph = ErdosRenyiArcs(&rng, 40, 200).ValueOrDie();
  std::stringstream ss;
  ASSERT_TRUE(WriteGraphText(graph, &ss).ok());
  auto loaded = ReadGraphText(&ss).ValueOrDie();
  EXPECT_EQ(loaded.num_nodes(), graph.num_nodes());
  EXPECT_EQ(loaded.num_arcs(), graph.num_arcs());
  for (const Arc& a : graph.arcs()) {
    EXPECT_TRUE(loaded.HasArc(a.from, a.to));
  }
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  SocialGraph g(5);
  std::stringstream ss;
  ASSERT_TRUE(WriteGraphText(g, &ss).ok());
  auto loaded = ReadGraphText(&ss).ValueOrDie();
  EXPECT_EQ(loaded.num_nodes(), 5u);
  EXPECT_EQ(loaded.num_arcs(), 0u);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\nnodes 3\n# mid comment\narc 0 1\n");
  auto loaded = ReadGraphText(&ss).ValueOrDie();
  EXPECT_EQ(loaded.num_nodes(), 3u);
  EXPECT_TRUE(loaded.HasArc(0, 1));
}

TEST(GraphIoTest, RejectsMalformedInput) {
  {
    std::stringstream ss("arc 0 1\n");  // Arc before nodes.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
  {
    std::stringstream ss("nodes 0\n");  // Zero nodes.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
  {
    std::stringstream ss("nodes 3\nnodes 3\n");  // Duplicate directive.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
  {
    std::stringstream ss("nodes 3\narc 0 7\n");  // Out of range.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
  {
    std::stringstream ss("nodes 3\nedge 0 1\n");  // Unknown record.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
  {
    std::stringstream ss("nodes 3\narc 0\n");  // Truncated arc.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
  {
    std::stringstream ss("");  // Missing nodes.
    EXPECT_FALSE(ReadGraphText(&ss).ok());
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  Rng rng(2);
  auto graph = ErdosRenyiArcs(&rng, 20, 80).ValueOrDie();
  std::string path = ::testing::TempDir() + "/psi_graph_io_test.txt";
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path).ValueOrDie();
  EXPECT_EQ(loaded.num_arcs(), graph.num_arcs());
  EXPECT_FALSE(LoadGraph("/nonexistent/nowhere.txt").ok());
}

}  // namespace
}  // namespace psi
