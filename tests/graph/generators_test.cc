#include "graph/generators.h"

#include <gtest/gtest.h>

#include <set>

namespace psi {
namespace {

TEST(GeneratorsTest, ErdosRenyiArcsExactCount) {
  Rng rng(1);
  auto g = ErdosRenyiArcs(&rng, 50, 200).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_arcs(), 200u);
}

TEST(GeneratorsTest, ErdosRenyiArcsValidation) {
  Rng rng(2);
  EXPECT_FALSE(ErdosRenyiArcs(&rng, 1, 0).ok());
  EXPECT_FALSE(ErdosRenyiArcs(&rng, 3, 7).ok());  // > n(n-1) = 6.
  EXPECT_TRUE(ErdosRenyiArcs(&rng, 3, 6).ok());   // Complete digraph.
}

TEST(GeneratorsTest, ErdosRenyiProbDensityTracksP) {
  Rng rng(3);
  auto g = ErdosRenyiProb(&rng, 100, 0.1).ValueOrDie();
  double density = static_cast<double>(g.num_arcs()) / (100.0 * 99.0);
  EXPECT_NEAR(density, 0.1, 0.02);
  EXPECT_FALSE(ErdosRenyiProb(&rng, 10, 1.5).ok());
}

TEST(GeneratorsTest, ErdosRenyiProbExtremes) {
  Rng rng(4);
  EXPECT_EQ(ErdosRenyiProb(&rng, 20, 0.0).ValueOrDie().num_arcs(), 0u);
  EXPECT_EQ(ErdosRenyiProb(&rng, 20, 1.0).ValueOrDie().num_arcs(),
            20u * 19u);
}

TEST(GeneratorsTest, BarabasiAlbertShape) {
  Rng rng(5);
  auto g = BarabasiAlbert(&rng, 200, 3).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 200u);
  // Every non-seed node attaches to exactly 3 targets, both directions.
  // Seed clique: 4*3 = 12 arcs; growth: 196 * 3 * 2 = 1176.
  EXPECT_EQ(g.num_arcs(), 12u + 196u * 6u);
}

TEST(GeneratorsTest, BarabasiAlbertIsHeavyTailed) {
  Rng rng(6);
  auto g = BarabasiAlbert(&rng, 500, 2).ValueOrDie();
  size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GT(max_deg, 20u);
}

TEST(GeneratorsTest, BarabasiAlbertValidation) {
  Rng rng(7);
  EXPECT_FALSE(BarabasiAlbert(&rng, 5, 0).ok());
  EXPECT_FALSE(BarabasiAlbert(&rng, 3, 3).ok());
}

TEST(GeneratorsTest, WattsStrogatzRingWithoutRewiring) {
  Rng rng(8);
  auto g = WattsStrogatz(&rng, 20, 2, 0.0).ValueOrDie();
  // Pure ring: each node connects to 2 clockwise neighbors, symmetric.
  EXPECT_EQ(g.num_arcs(), 20u * 2u * 2u);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_TRUE(g.HasArc(1, 0));
  EXPECT_TRUE(g.HasArc(0, 2));
  EXPECT_FALSE(g.HasArc(0, 3));
}

TEST(GeneratorsTest, WattsStrogatzRewiringChangesTopology) {
  Rng rng(9);
  auto g = WattsStrogatz(&rng, 100, 3, 0.5).ValueOrDie();
  // With beta = 0.5 some ring arcs must have been rewired away.
  size_t ring_arcs = 0;
  for (NodeId u = 0; u < 100; ++u) {
    for (size_t j = 1; j <= 3; ++j) {
      if (g.HasArc(u, static_cast<NodeId>((u + j) % 100))) ++ring_arcs;
    }
  }
  EXPECT_LT(ring_arcs, 300u);
  EXPECT_GT(ring_arcs, 100u);
  EXPECT_FALSE(WattsStrogatz(&rng, 10, 5, 0.1).ok());  // k >= n/2.
}

TEST(GeneratorsTest, ObfuscateArcSetIsSupersetWithFactor) {
  Rng rng(10);
  auto g = ErdosRenyiArcs(&rng, 40, 100).ValueOrDie();
  auto omega = ObfuscateArcSet(&rng, g, 2.5).ValueOrDie();
  EXPECT_EQ(omega.size(), 250u);
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const Arc& a : omega) {
    EXPECT_NE(a.from, a.to);  // No self-loops among decoys.
    EXPECT_TRUE(pairs.insert({a.from, a.to}).second) << "duplicate pair";
  }
  for (const Arc& a : g.arcs()) {
    EXPECT_TRUE(pairs.contains({a.from, a.to})) << "missing true arc";
  }
}

TEST(GeneratorsTest, ObfuscateArcSetShufflesPositions) {
  // True arcs must not occupy the leading positions, or Omega would reveal E.
  Rng rng(11);
  auto g = ErdosRenyiArcs(&rng, 40, 100).ValueOrDie();
  auto omega = ObfuscateArcSet(&rng, g, 2.0).ValueOrDie();
  size_t true_in_first_half = 0;
  for (size_t i = 0; i < omega.size() / 2; ++i) {
    if (g.HasArc(omega[i].from, omega[i].to)) ++true_in_first_half;
  }
  // Expected 50 of 100 true arcs in the first half; reject extreme skew.
  EXPECT_GT(true_in_first_half, 25u);
  EXPECT_LT(true_in_first_half, 75u);
}

TEST(GeneratorsTest, ObfuscateArcSetCapsAtCompleteDigraph) {
  Rng rng(12);
  SocialGraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) {
        ASSERT_TRUE(g.AddArc(u, v).ok());
      }
    }
  }
  auto omega = ObfuscateArcSet(&rng, g, 3.0).ValueOrDie();
  EXPECT_EQ(omega.size(), 12u);  // n(n-1) is the ceiling.
}

TEST(GeneratorsTest, ObfuscateRejectsFactorBelowOne) {
  Rng rng(13);
  auto g = ErdosRenyiArcs(&rng, 10, 20).ValueOrDie();
  EXPECT_FALSE(ObfuscateArcSet(&rng, g, 1.0).ok());
  EXPECT_FALSE(ObfuscateArcSet(&rng, g, 0.5).ok());
}

}  // namespace
}  // namespace psi
