#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace psi {
namespace {

TEST(SocialGraphTest, EmptyGraph) {
  SocialGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_FALSE(g.HasArc(0, 1));
  EXPECT_TRUE(g.OutNeighbors(0).empty());
}

TEST(SocialGraphTest, AddArcUpdatesAdjacency) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddArc(0, 1).ok());
  ASSERT_TRUE(g.AddArc(0, 2).ok());
  ASSERT_TRUE(g.AddArc(3, 0).ok());
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));  // Directed.
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InNeighbors(0), std::vector<NodeId>{3});
}

TEST(SocialGraphTest, RejectsSelfLoopsDuplicatesAndOutOfRange) {
  SocialGraph g(3);
  EXPECT_EQ(g.AddArc(1, 1).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddArc(0, 1).ok());
  EXPECT_EQ(g.AddArc(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddArc(0, 3).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddArc(7, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.num_arcs(), 1u);
}

TEST(SocialGraphTest, AddSymmetricCreatesBothArcs) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddSymmetric(0, 2).ok());
  EXPECT_TRUE(g.HasArc(0, 2));
  EXPECT_TRUE(g.HasArc(2, 0));
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(SocialGraphTest, ArcsPreserveInsertionOrder) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddArc(2, 3).ok());
  ASSERT_TRUE(g.AddArc(0, 1).ok());
  ASSERT_EQ(g.arcs().size(), 2u);
  EXPECT_EQ(g.arcs()[0], (Arc{2, 3}));
  EXPECT_EQ(g.arcs()[1], (Arc{0, 1}));
}

TEST(SocialGraphTest, ArcOrderingOperator) {
  EXPECT_LT((Arc{0, 5}), (Arc{1, 0}));
  EXPECT_LT((Arc{1, 2}), (Arc{1, 3}));
  EXPECT_FALSE((Arc{1, 3}) < (Arc{1, 3}));
}

TEST(SocialGraphTest, LargeGraphMembershipIsConsistent) {
  SocialGraph g(1000);
  Rng rng(12);
  std::vector<Arc> added;
  for (int i = 0; i < 5000; ++i) {
    auto u = static_cast<NodeId>(rng.UniformU64(1000));
    auto v = static_cast<NodeId>(rng.UniformU64(1000));
    if (u == v) continue;
    if (g.AddArc(u, v).ok()) added.push_back(Arc{u, v});
  }
  EXPECT_EQ(g.num_arcs(), added.size());
  for (const Arc& a : added) EXPECT_TRUE(g.HasArc(a.from, a.to));
}

}  // namespace
}  // namespace psi
