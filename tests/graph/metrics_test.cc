#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace psi {
namespace {

SocialGraph Triangle() {
  SocialGraph g(3);
  PSI_CHECK_OK(g.AddSymmetric(0, 1));
  PSI_CHECK_OK(g.AddSymmetric(1, 2));
  PSI_CHECK_OK(g.AddSymmetric(0, 2));
  return g;
}

TEST(MetricsTest, DegreeStatsHandComputed) {
  SocialGraph g(4);
  PSI_CHECK_OK(g.AddArc(0, 1));
  PSI_CHECK_OK(g.AddArc(0, 2));
  PSI_CHECK_OK(g.AddArc(0, 3));
  PSI_CHECK_OK(g.AddArc(1, 0));
  auto stats = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(stats.mean_out, 1.0);
  EXPECT_EQ(stats.max_out, 3u);
  EXPECT_EQ(stats.max_in, 1u);
  EXPECT_EQ(stats.out_histogram[0], 2u);  // Nodes 2 and 3.
  EXPECT_EQ(stats.out_histogram[1], 1u);
  EXPECT_EQ(stats.out_histogram[3], 1u);
}

TEST(MetricsTest, DegreeHistogramTailBin) {
  SocialGraph g(5);
  for (NodeId v = 1; v < 5; ++v) PSI_CHECK_OK(g.AddArc(0, v));
  auto stats = ComputeDegreeStats(g, /*max_bins=*/3);
  EXPECT_EQ(stats.out_histogram.size(), 3u);
  EXPECT_EQ(stats.out_histogram[2], 1u);  // Degree 4 absorbed by last bin.
}

TEST(MetricsTest, ReciprocityExtremes) {
  EXPECT_DOUBLE_EQ(Reciprocity(Triangle()), 1.0);
  SocialGraph oneway(3);
  PSI_CHECK_OK(oneway.AddArc(0, 1));
  PSI_CHECK_OK(oneway.AddArc(1, 2));
  EXPECT_DOUBLE_EQ(Reciprocity(oneway), 0.0);
  SocialGraph empty(3);
  EXPECT_DOUBLE_EQ(Reciprocity(empty), 0.0);
}

TEST(MetricsTest, ClusteringOfTriangleIsOne) {
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(Triangle()), 1.0);
}

TEST(MetricsTest, ClusteringOfStarIsZero) {
  SocialGraph g(5);
  for (NodeId v = 1; v < 5; ++v) PSI_CHECK_OK(g.AddArc(0, v));
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(g), 0.0);
}

TEST(MetricsTest, WattsStrogatzRingHasHighClustering) {
  Rng rng(1);
  auto ring = WattsStrogatz(&rng, 100, 3, 0.0).ValueOrDie();
  auto rewired = WattsStrogatz(&rng, 100, 3, 0.9).ValueOrDie();
  EXPECT_GT(ClusteringCoefficient(ring), 0.5);
  EXPECT_GT(ClusteringCoefficient(ring), ClusteringCoefficient(rewired));
}

TEST(MetricsTest, ReachableCountChainAndIsland) {
  SocialGraph g(5);
  PSI_CHECK_OK(g.AddArc(0, 1));
  PSI_CHECK_OK(g.AddArc(1, 2));
  // Node 3, 4 isolated.
  EXPECT_EQ(ReachableCount(g, 0), 2u);
  EXPECT_EQ(ReachableCount(g, 2), 0u);
  EXPECT_EQ(ReachableCount(g, 3), 0u);
}

TEST(MetricsTest, ReachableHandlesCycles) {
  SocialGraph g(3);
  PSI_CHECK_OK(g.AddArc(0, 1));
  PSI_CHECK_OK(g.AddArc(1, 2));
  PSI_CHECK_OK(g.AddArc(2, 0));
  EXPECT_EQ(ReachableCount(g, 0), 2u);
}

TEST(MetricsTest, EmptyGraph) {
  SocialGraph g(0);
  auto stats = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(stats.mean_out, 0.0);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(g), 0.0);
}

}  // namespace
}  // namespace psi
