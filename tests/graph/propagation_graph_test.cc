#include "graph/propagation_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace psi {
namespace {

TEST(PropagationGraphTest, AddArcValidation) {
  PropagationGraph pg(3);
  EXPECT_TRUE(pg.AddArc(0, 1, 5).ok());
  EXPECT_EQ(pg.AddArc(0, 1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pg.AddArc(0, 3, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pg.num_arcs(), 1u);
}

TEST(PropagationGraphTest, BoundedReachableChain) {
  // 0 -(2)-> 1 -(3)-> 2 -(4)-> 3
  PropagationGraph pg(4);
  ASSERT_TRUE(pg.AddArc(0, 1, 2).ok());
  ASSERT_TRUE(pg.AddArc(1, 2, 3).ok());
  ASSERT_TRUE(pg.AddArc(2, 3, 4).ok());
  EXPECT_EQ(pg.InfluenceSphereSize(0, 1), 0u);
  EXPECT_EQ(pg.InfluenceSphereSize(0, 2), 1u);
  EXPECT_EQ(pg.InfluenceSphereSize(0, 5), 2u);
  EXPECT_EQ(pg.InfluenceSphereSize(0, 9), 3u);
  EXPECT_EQ(pg.InfluenceSphereSize(1, 7), 2u);
}

TEST(PropagationGraphTest, SourceExcludedFromSphere) {
  PropagationGraph pg(2);
  ASSERT_TRUE(pg.AddArc(0, 1, 1).ok());
  auto reach = pg.BoundedReachable(0, 10);
  EXPECT_EQ(reach, std::vector<NodeId>{1});
  EXPECT_TRUE(std::find(reach.begin(), reach.end(), 0u) == reach.end());
}

TEST(PropagationGraphTest, ShortestPathUsedNotFirstPath) {
  // Two routes 0->2: direct cost 10, via 1 cost 2+2=4.
  PropagationGraph pg(3);
  ASSERT_TRUE(pg.AddArc(0, 2, 10).ok());
  ASSERT_TRUE(pg.AddArc(0, 1, 2).ok());
  ASSERT_TRUE(pg.AddArc(1, 2, 2).ok());
  EXPECT_EQ(pg.InfluenceSphereSize(0, 4), 2u);  // Both 1 and 2 within 4.
  EXPECT_EQ(pg.InfluenceSphereSize(0, 3), 1u);  // Only 1.
}

TEST(PropagationGraphTest, CyclesDoNotLoopForever) {
  PropagationGraph pg(3);
  ASSERT_TRUE(pg.AddArc(0, 1, 1).ok());
  ASSERT_TRUE(pg.AddArc(1, 2, 1).ok());
  ASSERT_TRUE(pg.AddArc(2, 0, 1).ok());
  EXPECT_EQ(pg.InfluenceSphereSize(0, 100), 2u);
}

TEST(PropagationGraphTest, ParallelArcsPickCheapest) {
  PropagationGraph pg(2);
  ASSERT_TRUE(pg.AddArc(0, 1, 9).ok());
  ASSERT_TRUE(pg.AddArc(0, 1, 2).ok());  // Multi-arcs allowed in PG.
  EXPECT_EQ(pg.InfluenceSphereSize(0, 2), 1u);
}

TEST(PropagationGraphTest, DisconnectedNodesUnreachable) {
  PropagationGraph pg(5);
  ASSERT_TRUE(pg.AddArc(0, 1, 1).ok());
  EXPECT_EQ(pg.InfluenceSphereSize(0, 1000), 1u);
  EXPECT_EQ(pg.InfluenceSphereSize(3, 1000), 0u);
}

TEST(PropagationGraphTest, TauZeroReachesNothing) {
  PropagationGraph pg(2);
  ASSERT_TRUE(pg.AddArc(0, 1, 1).ok());
  EXPECT_EQ(pg.InfluenceSphereSize(0, 0), 0u);
}

TEST(PropagationGraphTest, LargeRandomGraphTerminates) {
  PropagationGraph pg(500);
  Rng rng(99);
  for (int i = 0; i < 3000; ++i) {
    auto u = static_cast<NodeId>(rng.UniformU64(500));
    auto v = static_cast<NodeId>(rng.UniformU64(500));
    if (u != v) {
      ASSERT_TRUE(pg.AddArc(u, v, 1 + rng.UniformU64(10)).ok());
    }
  }
  size_t reach = pg.InfluenceSphereSize(0, 50);
  EXPECT_LE(reach, 499u);
}

}  // namespace
}  // namespace psi
