#include "privacy/posterior.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace psi {
namespace {

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(PosteriorTest, PriorsAreNormalizedDistributions) {
  for (auto prior : {UniformPrior(10), UnimodalPrior(10)}) {
    double sum = 0.0;
    for (double p : prior) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(prior.size(), 11u);
  }
}

TEST(PosteriorTest, UnimodalPriorMatchesPaperFormula) {
  // A = 10: f(i) = (i+1)/36 for i <= 5, (11-i)/36 for i > 5.
  auto prior = UnimodalPrior(10);
  EXPECT_NEAR(prior[0], 1.0 / 36.0, 1e-12);
  EXPECT_NEAR(prior[5], 6.0 / 36.0, 1e-12);
  EXPECT_NEAR(prior[6], 5.0 / 36.0, 1e-12);
  EXPECT_NEAR(prior[10], 1.0 / 36.0, 1e-12);
}

TEST(PosteriorTest, PriorMean) {
  auto an = PosteriorAnalyzer::Create(UniformPrior(10)).ValueOrDie();
  EXPECT_NEAR(an.PriorMean(), 5.0, 1e-12);
  auto an2 = PosteriorAnalyzer::Create(UnimodalPrior(10)).ValueOrDie();
  EXPECT_NEAR(an2.PriorMean(), 5.0, 1e-12);  // Symmetric around 5.
}

TEST(PosteriorTest, PosteriorIsNormalizedAndExcludesZero) {
  auto an = PosteriorAnalyzer::Create(UniformPrior(10)).ValueOrDie();
  for (double y : {0.1, 0.5, 1.0, 3.7, 9.99, 10.0, 42.0}) {
    auto post = an.Posterior(y).ValueOrDie();
    EXPECT_DOUBLE_EQ(post[0], 0.0) << "y > 0 rules out x = 0";
    double sum = 0.0;
    for (double p : post) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "y = " << y;
  }
}

TEST(PosteriorTest, ClosedFormMatchesNumericalIntegration) {
  // The strongest check of Theorem 4.4: two independent derivations agree.
  for (auto prior : {UniformPrior(10), UnimodalPrior(10)}) {
    auto an = PosteriorAnalyzer::Create(prior).ValueOrDie();
    for (double y : {0.3, 0.9, 1.0, 1.7, 4.2, 7.5, 9.9, 10.5, 25.0, 300.0}) {
      auto cf = an.Posterior(y).ValueOrDie();
      auto num = an.PosteriorNumerical(y, 20000).ValueOrDie();
      EXPECT_LT(MaxAbsDiff(cf, num), 2e-3) << "y = " << y;
    }
  }
}

TEST(PosteriorTest, LargeYPosteriorIndependentOfY) {
  // Paper remark after Theorem 4.4: any y > A induces the same posterior.
  auto an = PosteriorAnalyzer::Create(UnimodalPrior(10)).ValueOrDie();
  auto p1 = an.Posterior(10.001).ValueOrDie();
  auto p2 = an.Posterior(1e6).ValueOrDie();
  EXPECT_LT(MaxAbsDiff(p1, p2), 1e-12);
}

TEST(PosteriorTest, SmallYFavorsSmallX) {
  // y = r*x with r usually around 1: a small y is evidence for small x.
  auto an = PosteriorAnalyzer::Create(UniformPrior(10)).ValueOrDie();
  auto post = an.Posterior(0.5).ValueOrDie();
  EXPECT_GT(post[1], post[10]);
}

TEST(PosteriorTest, LargeYExcludesNothing) {
  // Theorem 4.3: every x with prior mass stays possible.
  auto an = PosteriorAnalyzer::Create(UniformPrior(10)).ValueOrDie();
  for (double y : {0.2, 5.0, 50.0}) {
    auto post = an.Posterior(y).ValueOrDie();
    for (size_t x = 1; x <= 10; ++x) {
      EXPECT_GT(post[x], 0.0) << "x = " << x << " y = " << y;
    }
  }
}

TEST(PosteriorTest, ZeroPriorMassStaysZero) {
  // Theorem 4.3's second clause: impossible values stay impossible.
  std::vector<double> prior{0.0, 0.5, 0.0, 0.5};
  auto an = PosteriorAnalyzer::Create(prior).ValueOrDie();
  auto post = an.Posterior(1.3).ValueOrDie();
  EXPECT_DOUBLE_EQ(post[2], 0.0);
  EXPECT_GT(post[1], 0.0);
  EXPECT_GT(post[3], 0.0);
}

TEST(PosteriorTest, TrimsTrailingZeroMass) {
  std::vector<double> prior{0.2, 0.8, 0.0, 0.0};
  auto an = PosteriorAnalyzer::Create(prior).ValueOrDie();
  EXPECT_EQ(an.bound_a(), 1u);
}

TEST(PosteriorTest, CreateValidation) {
  EXPECT_FALSE(PosteriorAnalyzer::Create({}).ok());
  EXPECT_FALSE(PosteriorAnalyzer::Create({1.0}).ok());
  EXPECT_FALSE(PosteriorAnalyzer::Create({1.0, 0.0}).ok());  // Mass only at 0.
  EXPECT_FALSE(PosteriorAnalyzer::Create({0.5, -0.5, 1.0}).ok());
  EXPECT_TRUE(PosteriorAnalyzer::Create({0.0, 2.0}).ok());  // Normalizes.
}

TEST(PosteriorTest, PosteriorValidation) {
  auto an = PosteriorAnalyzer::Create(UniformPrior(5)).ValueOrDie();
  EXPECT_FALSE(an.Posterior(0.0).ok());
  EXPECT_FALSE(an.Posterior(-1.0).ok());
  EXPECT_FALSE(an.PosteriorNumerical(1.0, 4).ok());  // Grid too coarse.
}

// The paper's Theorem 4.4 posterior deliberately weights the mask scale mu
// by its (support-truncated) prior rather than its Bayes posterior given y,
// so it is an approximation of the exact conditional f(x | Y = y). Two
// checks: (a) the *exact* Bayes posterior — derivable in closed form as
// f(x|y) ~ f(x)/x * min(1, x/y)^2 for the mu^-2 prior — calibrates against
// simulation of the generative process; (b) the paper's posterior agrees
// with the exact one in direction (same ordering of beliefs), which is what
// the Figure-1 gain experiment relies on.
TEST(PosteriorTest, ExactBayesPosteriorCalibratesAgainstSimulation) {
  const size_t a = 6;
  const double y_lo = 2.0, y_hi = 2.2;
  auto exact_posterior = [&](double y) {
    std::vector<double> post(a + 1, 0.0);
    double total = 0.0;
    for (size_t x = 1; x <= a; ++x) {
      double xf = static_cast<double>(x);
      double scale = std::min(1.0, xf / y);
      post[x] = (1.0 / xf) * scale * scale;  // Uniform prior cancels.
      total += post[x];
    }
    for (auto& p : post) p /= total;
    return post;
  };
  Rng rng(404);
  std::vector<double> x_counts(a + 1, 0.0);
  std::vector<double> avg_exact(a + 1, 0.0);
  size_t hits = 0;
  for (int trial = 0; trial < 400000 && hits < 5000; ++trial) {
    auto x = static_cast<size_t>(rng.UniformU64(a + 1));
    if (x == 0) continue;
    double m = rng.SampleZ();
    double r = rng.UniformReal() * m;
    double y = r * static_cast<double>(x);
    if (y < y_lo || y > y_hi) continue;  // Condition on a narrow y-window.
    ++hits;
    x_counts[x] += 1.0;
    auto post = exact_posterior(y);
    for (size_t i = 0; i <= a; ++i) avg_exact[i] += post[i];
  }
  ASSERT_GT(hits, 500u);
  for (size_t i = 1; i <= a; ++i) {
    x_counts[i] /= static_cast<double>(hits);
    avg_exact[i] /= static_cast<double>(hits);
    EXPECT_NEAR(x_counts[i], avg_exact[i], 0.05) << "x = " << i;
  }
}

TEST(PosteriorTest, PaperPosteriorOrdersBeliefsLikeExactBayes) {
  auto an = PosteriorAnalyzer::Create(UniformPrior(10)).ValueOrDie();
  for (double y : {0.7, 2.5, 6.0}) {
    auto paper = an.Posterior(y).ValueOrDie();
    std::vector<double> exact(11, 0.0);
    double total = 0.0;
    for (size_t x = 1; x <= 10; ++x) {
      double xf = static_cast<double>(x);
      double s = std::min(1.0, xf / y);
      exact[x] = (1.0 / xf) * s * s;
      total += exact[x];
    }
    for (auto& p : exact) p /= total;
    // Strongly positively related across the support (the approximation can
    // shift the argmax by one near ties, but the belief shapes agree).
    std::vector<double> ps(paper.begin() + 1, paper.end());
    std::vector<double> es(exact.begin() + 1, exact.end());
    EXPECT_GT(PearsonCorrelation(ps, es), 0.8) << "y = " << y;
  }
}

}  // namespace
}  // namespace psi
