#include "privacy/leakage.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psi {
namespace {

TEST(LeakageTest, ClosedFormProbabilities) {
  auto p = ComputeLeakageProbabilities(5, BigUInt(10), BigUInt(256))
               .ValueOrDie();
  EXPECT_NEAR(p.p2_lower, 5.0 / 256.0, 1e-12);
  EXPECT_NEAR(p.p2_upper, 5.0 / 256.0, 1e-12);
  EXPECT_NEAR(p.p2_nothing, 1.0 - 10.0 / 256.0, 1e-12);
  EXPECT_NEAR(p.p3_lower_max, 10.0 / 246.0, 1e-12);
}

TEST(LeakageTest, ExtremeXValues) {
  auto at_zero =
      ComputeLeakageProbabilities(0, BigUInt(10), BigUInt(256)).ValueOrDie();
  EXPECT_DOUBLE_EQ(at_zero.p2_lower, 0.0);  // No nontrivial lower bound on 0.
  auto at_bound =
      ComputeLeakageProbabilities(10, BigUInt(10), BigUInt(256)).ValueOrDie();
  EXPECT_DOUBLE_EQ(at_bound.p2_upper, 0.0);  // No nontrivial upper bound on A.
}

TEST(LeakageTest, ProbabilitiesVanishForHugeS) {
  auto p = ComputeLeakageProbabilities(500, BigUInt(1000),
                                       BigUInt::PowerOfTwo(128))
               .ValueOrDie();
  EXPECT_LT(p.p2_lower, 1e-30);
  EXPECT_LT(p.p3_lower_max, 1e-30);
  EXPECT_GE(p.p2_nothing, 1.0 - 1e-29);
}

TEST(LeakageTest, Validation) {
  EXPECT_FALSE(ComputeLeakageProbabilities(11, BigUInt(10), BigUInt(256)).ok());
  EXPECT_FALSE(ComputeLeakageProbabilities(5, BigUInt(10), BigUInt(20)).ok());
}

TEST(LeakageTest, ClassifyP2Cases) {
  BigUInt a(10);
  // No correction: lower bound unless s2 == 0.
  EXPECT_EQ(ClassifyP2Observation(BigUInt(0), false, a), LeakKind::kNothing);
  EXPECT_EQ(ClassifyP2Observation(BigUInt(3), false, a),
            LeakKind::kLowerBound);
  EXPECT_EQ(ClassifyP2Observation(BigUInt(100), false, a),
            LeakKind::kLowerBound);
  // Correction: upper bound only when s2 <= A.
  EXPECT_EQ(ClassifyP2Observation(BigUInt(7), true, a), LeakKind::kUpperBound);
  EXPECT_EQ(ClassifyP2Observation(BigUInt(10), true, a),
            LeakKind::kUpperBound);
  EXPECT_EQ(ClassifyP2Observation(BigUInt(11), true, a), LeakKind::kNothing);
}

TEST(LeakageTest, ClassifyP3Cases) {
  BigUInt a(10);
  BigUInt s(256);
  EXPECT_EQ(ClassifyP3Observation(BigUInt(9), a, s), LeakKind::kUpperBound);
  EXPECT_EQ(ClassifyP3Observation(BigUInt(10), a, s), LeakKind::kNothing);
  EXPECT_EQ(ClassifyP3Observation(BigUInt(245), a, s), LeakKind::kNothing);
  EXPECT_EQ(ClassifyP3Observation(BigUInt(246), a, s), LeakKind::kLowerBound);
  EXPECT_EQ(ClassifyP3Observation(BigUInt(255), a, s), LeakKind::kLowerBound);
}

TEST(LeakageTest, RequiredModulusInvertsTheBound) {
  BigUInt a(1000);
  const uint64_t counters = 4096;
  const uint64_t eps_log2 = 30;
  BigUInt s = RequiredModulusForBudget(a, counters, eps_log2);
  // Per-run leak probability is ~ 2A/S; over `counters` runs the union
  // bound must stay below 2^-eps.
  double per_run = 2.0 * a.ToDouble() / s.ToDouble();
  double total = per_run * static_cast<double>(counters);
  EXPECT_LT(total, std::ldexp(1.0, -static_cast<int>(eps_log2)) * 1.01);
}

TEST(LeakageTest, RequiredModulusMonotonicInInputs) {
  BigUInt a(100);
  EXPECT_GE(RequiredModulusForBudget(a, 1000, 40),
            RequiredModulusForBudget(a, 10, 40));
  EXPECT_GE(RequiredModulusForBudget(a, 10, 60),
            RequiredModulusForBudget(a, 10, 40));
  EXPECT_GE(RequiredModulusForBudget(BigUInt(10000), 10, 40),
            RequiredModulusForBudget(a, 10, 40));
}

}  // namespace
}  // namespace psi
