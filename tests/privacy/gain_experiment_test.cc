#include "privacy/gain_experiment.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(GainExperimentTest, ProducesExpectedSampleCount) {
  Rng rng(1);
  GainExperimentConfig cfg;
  cfg.trials_per_x = 100;
  auto res = RunGainExperiment(UniformPrior(10), cfg, &rng).ValueOrDie();
  EXPECT_EQ(res.gains.size(), 1000u);  // A * trials = 10 * 100.
  EXPECT_EQ(res.histogram.total(), 1000u);
}

TEST(GainExperimentTest, PaperQualitativeFindingsHold) {
  // Figure 1's claims: average gain positive but small; positive trials
  // outnumber negative ones without overwhelming bias.
  Rng rng(2);
  GainExperimentConfig cfg;
  cfg.trials_per_x = 1000;  // The paper's setting (10,000 gains total).
  for (auto prior : {UniformPrior(10), UnimodalPrior(10)}) {
    auto res = RunGainExperiment(prior, cfg, &rng).ValueOrDie();
    EXPECT_GT(res.average_gain, 0.0);
    EXPECT_LT(res.average_gain, 1.2)
        << "gain should be small relative to the prior error scale (~2.7)";
    EXPECT_GT(res.positive_fraction, 0.5);
    EXPECT_LT(res.positive_fraction, 0.9);
  }
}

TEST(GainExperimentTest, GainsAreBoundedByPriorError) {
  // |x - prior_mean| <= 5 for A = 10, so no gain can exceed 5 and no loss
  // can exceed the posterior's worst error (10).
  Rng rng(3);
  GainExperimentConfig cfg;
  cfg.trials_per_x = 200;
  auto res = RunGainExperiment(UniformPrior(10), cfg, &rng).ValueOrDie();
  for (double g : res.gains) {
    EXPECT_LE(g, 5.0 + 1e-9);
    EXPECT_GE(g, -10.0);
  }
}

TEST(GainExperimentTest, DeterministicUnderFixedSeed) {
  GainExperimentConfig cfg;
  cfg.trials_per_x = 50;
  Rng r1(7), r2(7);
  auto a = RunGainExperiment(UnimodalPrior(10), cfg, &r1).ValueOrDie();
  auto b = RunGainExperiment(UnimodalPrior(10), cfg, &r2).ValueOrDie();
  EXPECT_EQ(a.gains, b.gains);
  EXPECT_DOUBLE_EQ(a.average_gain, b.average_gain);
}

TEST(GainExperimentTest, HistogramCoversGains) {
  Rng rng(8);
  GainExperimentConfig cfg;
  cfg.trials_per_x = 300;
  auto res = RunGainExperiment(UniformPrior(10), cfg, &rng).ValueOrDie();
  // The central bins (around zero) must hold substantial mass.
  uint64_t central = 0;
  for (size_t b = 0; b < res.histogram.num_bins(); ++b) {
    auto [lo, hi] = res.histogram.bin_edges(b);
    if (lo >= -0.75 && hi <= 0.75) central += res.histogram.bin_count(b);
  }
  EXPECT_GT(static_cast<double>(central) /
                static_cast<double>(res.histogram.total()),
            0.25);
}

TEST(GainExperimentTest, DegenerateKnownXPriorGivesZeroGain) {
  // If the prior already pins x exactly (all mass at one point) the
  // posterior cannot improve: gains must all be ~0 for that x.
  std::vector<double> prior(11, 0.0);
  prior[7] = 1.0;
  Rng rng(9);
  GainExperimentConfig cfg;
  cfg.trials_per_x = 50;
  auto res = RunGainExperiment(prior, cfg, &rng).ValueOrDie();
  // bound_a trims to 7; 7 * 50 trials, every x has prior mass only at 7 —
  // posterior mean is always 7, so gains equal E_pre - |x - 7| ... for the
  // experiment's x = 7 row, E_pre = 0 and E_pos = 0.
  for (size_t i = 6 * 50; i < 7 * 50; ++i) {  // x = 7 row.
    EXPECT_NEAR(res.gains[i], 0.0, 1e-9);
  }
}

TEST(GainExperimentTest, RejectsDegeneratePrior) {
  Rng rng(10);
  GainExperimentConfig cfg;
  EXPECT_FALSE(RunGainExperiment({}, cfg, &rng).ok());
  EXPECT_FALSE(RunGainExperiment({1.0}, cfg, &rng).ok());
}

}  // namespace
}  // namespace psi
