#include "mpc/homomorphic_sum.h"

#include <gtest/gtest.h>

#include <memory>

#include "bigint/modular.h"

namespace psi {
namespace {

struct HomFixture {
  explicit HomFixture(size_t m) {
    for (size_t k = 0; k < m; ++k) {
      players.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(2000 + k));
    }
  }
  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }
  Network net;
  std::vector<PartyId> players;
  std::vector<std::unique_ptr<Rng>> rngs;
};

TEST(HomomorphicSumTest, SharesReconstructModN) {
  for (size_t m : {2u, 3u, 5u}) {
    HomFixture f(m);
    HomomorphicSumProtocol proto(&f.net, f.players, 512);
    std::vector<std::vector<uint64_t>> inputs(m,
                                              std::vector<uint64_t>(10));
    std::vector<uint64_t> expected(10, 0);
    Rng in(3);
    for (size_t c = 0; c < 10; ++c) {
      for (size_t k = 0; k < m; ++k) {
        inputs[k][c] = in.UniformU64(100000);
        expected[c] += inputs[k][c];
      }
    }
    auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
    const BigUInt& n = proto.modulus();
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_EQ(ModAdd(shares.s1[c], shares.s2[c], n), BigUInt(expected[c]))
          << "m=" << m << " c=" << c;
    }
    EXPECT_EQ(f.net.PendingCount(), 0u);
  }
}

TEST(HomomorphicSumTest, FewerMessagesThanBenaloh) {
  // The extension's selling point: 2m - 2 messages vs m(m-1) + (m-2).
  const size_t m = 6;
  HomFixture f(m);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> inputs(m, std::vector<uint64_t>{1});
  ASSERT_TRUE(proto.Run(inputs, f.RngPtrs(), "h.").ok());
  auto report = f.net.Report();
  EXPECT_EQ(report.num_messages, 2 * m - 2);
  EXPECT_EQ(report.num_rounds, 3u);
  EXPECT_LT(report.num_messages, m * (m - 1) + (m - 2));
}

TEST(HomomorphicSumTest, ZeroInputs) {
  HomFixture f(3);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> inputs(3, std::vector<uint64_t>{0, 0});
  auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
  const BigUInt& n = proto.modulus();
  EXPECT_TRUE(ModAdd(shares.s1[0], shares.s2[0], n).IsZero());
}

TEST(HomomorphicSumTest, MaskMakesP1ShareNonTrivial) {
  // s1 must not equal the plain sum (P2's mask hides it).
  HomFixture f(2);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> inputs{{5}, {7}};
  auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
  // With overwhelming probability the random mask is not 0 or tiny.
  EXPECT_NE(shares.s1[0], BigUInt(12));
  EXPECT_GT(shares.s1[0].BitLength(), 64u);
}

TEST(HomomorphicSumTest, InputValidation) {
  HomFixture f(3);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> ragged{{1}, {2, 3}, {4}};
  EXPECT_FALSE(proto.Run(ragged, f.RngPtrs(), "h.").ok());
  std::vector<std::vector<uint64_t>> wrong_count{{1}, {2}};
  EXPECT_FALSE(proto.Run(wrong_count, f.RngPtrs(), "h.").ok());
}

}  // namespace
}  // namespace psi
