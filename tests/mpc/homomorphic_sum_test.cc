#include "mpc/homomorphic_sum.h"

#include <gtest/gtest.h>

#include <memory>

#include "bigint/modular.h"

namespace psi {
namespace {

struct HomFixture {
  explicit HomFixture(size_t m) {
    for (size_t k = 0; k < m; ++k) {
      players.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(2000 + k));
    }
  }
  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }
  Network net;
  std::vector<PartyId> players;
  std::vector<std::unique_ptr<Rng>> rngs;
};

TEST(HomomorphicSumTest, SharesReconstructModN) {
  for (size_t m : {2u, 3u, 5u}) {
    HomFixture f(m);
    HomomorphicSumProtocol proto(&f.net, f.players, 512);
    std::vector<std::vector<uint64_t>> inputs(m,
                                              std::vector<uint64_t>(10));
    std::vector<uint64_t> expected(10, 0);
    Rng in(3);
    for (size_t c = 0; c < 10; ++c) {
      for (size_t k = 0; k < m; ++k) {
        inputs[k][c] = in.UniformU64(100000);
        expected[c] += inputs[k][c];
      }
    }
    auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
    const BigUInt& n = proto.modulus();
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_EQ(ModAdd(shares.s1[c], shares.s2[c], n), BigUInt(expected[c]))
          << "m=" << m << " c=" << c;
    }
    EXPECT_EQ(f.net.PendingCount(), 0u);
  }
}

TEST(HomomorphicSumTest, FewerMessagesThanBenaloh) {
  // The extension's selling point: 2m - 2 messages vs m(m-1) + (m-2).
  const size_t m = 6;
  HomFixture f(m);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> inputs(m, std::vector<uint64_t>{1});
  ASSERT_TRUE(proto.Run(inputs, f.RngPtrs(), "h.").ok());
  auto report = f.net.Report();
  EXPECT_EQ(report.num_messages, 2 * m - 2);
  EXPECT_EQ(report.num_rounds, 3u);
  EXPECT_LT(report.num_messages, m * (m - 1) + (m - 2));
}

TEST(HomomorphicSumTest, ZeroInputs) {
  HomFixture f(3);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> inputs(3, std::vector<uint64_t>{0, 0});
  auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
  const BigUInt& n = proto.modulus();
  EXPECT_TRUE(ModAdd(shares.s1[0], shares.s2[0], n).IsZero());
}

TEST(HomomorphicSumTest, MaskMakesP1ShareNonTrivial) {
  // s1 must not equal the plain sum (P2's mask hides it).
  HomFixture f(2);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> inputs{{5}, {7}};
  auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
  // With overwhelming probability the random mask is not 0 or tiny.
  EXPECT_NE(shares.s1[0], BigUInt(12));
  EXPECT_GT(shares.s1[0].BitLength(), 64u);
}

TEST(HomomorphicSumTest, InputValidation) {
  HomFixture f(3);
  HomomorphicSumProtocol proto(&f.net, f.players, 512);
  std::vector<std::vector<uint64_t>> ragged{{1}, {2, 3}, {4}};
  EXPECT_FALSE(proto.Run(ragged, f.RngPtrs(), "h.").ok());
  std::vector<std::vector<uint64_t>> wrong_count{{1}, {2}};
  EXPECT_FALSE(proto.Run(wrong_count, f.RngPtrs(), "h.").ok());
}

// ------------------------------------------------------------ packed mode --

HomomorphicSumConfig PackedConfig(uint64_t bound) {
  HomomorphicSumConfig config;
  config.paillier_bits = 512;
  config.counter_bound = BigUInt(bound);
  config.packing_epsilon_log2 = 40;
  return config;
}

TEST(HomomorphicSumTest, PackedSharesReconstructModN) {
  for (size_t m : {2u, 3u, 5u}) {
    HomFixture f(m);
    HomomorphicSumProtocol proto(&f.net, f.players,
                                 PackedConfig((1ull << 20) - 1));
    const size_t count = 30;  // Forces several ciphertexts per provider.
    std::vector<std::vector<uint64_t>> inputs(m, std::vector<uint64_t>(count));
    std::vector<uint64_t> expected(count, 0);
    Rng in(9);
    for (size_t c = 0; c < count; ++c) {
      for (size_t k = 0; k < m; ++k) {
        inputs[k][c] = in.UniformU64(1ull << 20);
        expected[c] += inputs[k][c];
      }
    }
    auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
    EXPECT_TRUE(proto.last_run_packed()) << "m=" << m;
    EXPECT_GT(proto.last_run_slots(), 1u);
    const BigUInt& n = proto.modulus();
    for (size_t c = 0; c < count; ++c) {
      EXPECT_EQ(ModAdd(shares.s1[c], shares.s2[c], n), BigUInt(expected[c]))
          << "m=" << m << " c=" << c;
    }
    EXPECT_EQ(f.net.PendingCount(), 0u);
  }
}

TEST(HomomorphicSumTest, PackedMatchesUnpackedSums) {
  // The packed and unpacked paths must agree on the reconstructed values.
  const size_t m = 3;
  std::vector<std::vector<uint64_t>> inputs{
      {5, 0, 19, 3}, {7, 1, 2, 8}, {11, 4, 6, 100}};
  HomFixture fp(m);
  HomomorphicSumProtocol packed(&fp.net, fp.players, PackedConfig(1000));
  auto ps = packed.Run(inputs, fp.RngPtrs(), "h.").ValueOrDie();
  ASSERT_TRUE(packed.last_run_packed());
  HomFixture fu(m);
  HomomorphicSumProtocol unpacked(&fu.net, fu.players, 512);
  auto us = unpacked.Run(inputs, fu.RngPtrs(), "h.").ValueOrDie();
  ASSERT_FALSE(unpacked.last_run_packed());
  for (size_t c = 0; c < inputs[0].size(); ++c) {
    EXPECT_EQ(ModAdd(ps.s1[c], ps.s2[c], packed.modulus()),
              ModAdd(us.s1[c], us.s2[c], unpacked.modulus()));
  }
}

TEST(HomomorphicSumTest, PackedShrinksTraffic) {
  const size_t m = 3;
  const size_t count = 64;
  std::vector<std::vector<uint64_t>> inputs(m, std::vector<uint64_t>(count));
  for (size_t k = 0; k < m; ++k) {
    for (size_t c = 0; c < count; ++c) inputs[k][c] = 17 * k + c;
  }
  HomFixture fp(m);
  HomomorphicSumProtocol packed(&fp.net, fp.players,
                                PackedConfig((1ull << 20) - 1));
  ASSERT_TRUE(packed.Run(inputs, fp.RngPtrs(), "h.").ok());
  ASSERT_TRUE(packed.last_run_packed());
  HomFixture fu(m);
  HomomorphicSumProtocol unpacked(&fu.net, fu.players, 512);
  ASSERT_TRUE(unpacked.Run(inputs, fu.RngPtrs(), "h.").ok());
  // Same round/message structure, several-fold fewer ciphertext bytes.
  EXPECT_EQ(fp.net.Report().num_messages, fu.net.Report().num_messages);
  EXPECT_EQ(fp.net.Report().num_rounds, fu.net.Report().num_rounds);
  EXPECT_LT(fp.net.Report().num_bytes * 4, fu.net.Report().num_bytes);
}

TEST(HomomorphicSumTest, FallsBackWhenInputExceedsBound) {
  HomFixture f(3);
  HomomorphicSumProtocol proto(&f.net, f.players, PackedConfig(100));
  std::vector<std::vector<uint64_t>> inputs{{5, 101}, {7, 1}, {11, 4}};
  auto shares = proto.Run(inputs, f.RngPtrs(), "h.").ValueOrDie();
  EXPECT_FALSE(proto.last_run_packed());
  EXPECT_EQ(proto.last_run_slots(), 1u);
  // The fallback still aggregates correctly.
  const BigUInt& n = proto.modulus();
  EXPECT_EQ(ModAdd(shares.s1[0], shares.s2[0], n), BigUInt(23));
  EXPECT_EQ(ModAdd(shares.s1[1], shares.s2[1], n), BigUInt(106));
}

TEST(HomomorphicSumTest, IntegerSharesReconstructExactly) {
  const size_t m = 3;
  HomFixture f(m);
  HomomorphicSumProtocol proto(&f.net, f.players, PackedConfig(1ull << 16));
  std::vector<std::vector<uint64_t>> inputs{
      {0, 65536, 12, 900}, {1, 0, 40000, 2}, {2, 3, 5, 65536}};
  auto shares = proto.RunInteger(inputs, f.RngPtrs(), "h.").ValueOrDie();
  ASSERT_TRUE(proto.last_run_packed());
  ASSERT_EQ(shares.size(), inputs[0].size());
  for (size_t c = 0; c < shares.size(); ++c) {
    uint64_t expected = 0;
    for (size_t k = 0; k < m; ++k) expected += inputs[k][c];
    // s1 + s2 == sum over the integers, with s2 <= 0: the exact contract
    // Protocol 4's share-masking stage consumes.
    EXPECT_EQ(shares.At(c).Reconstruct(), BigInt(BigUInt(expected)));
    EXPECT_TRUE(shares.s2[c].IsNegative() || shares.s2[c].IsZero());
  }
}

TEST(HomomorphicSumTest, IntegerSharesRequireProvableBound) {
  HomFixture f(3);
  std::vector<std::vector<uint64_t>> inputs{{5}, {7}, {11}};
  // No bound configured: packed-only RunInteger must refuse.
  HomomorphicSumProtocol unbounded(&f.net, f.players, 512);
  auto no_bound = unbounded.RunInteger(inputs, f.RngPtrs(), "h.");
  ASSERT_FALSE(no_bound.ok());
  EXPECT_EQ(no_bound.status().code(), StatusCode::kFailedPrecondition);
  // Bound configured but violated by an input: same refusal, no silent
  // fallback (integer shares cannot come out of the unpacked path).
  HomomorphicSumProtocol bounded(&f.net, f.players, PackedConfig(10));
  std::vector<std::vector<uint64_t>> over{{5}, {11}, {2}};
  auto violated = bounded.RunInteger(over, f.RngPtrs(), "h.");
  ASSERT_FALSE(violated.ok());
  EXPECT_EQ(violated.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace psi
