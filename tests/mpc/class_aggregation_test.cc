#include "mpc/class_aggregation.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "actionlog/counters.h"
#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"

namespace psi {
namespace {

struct P5Fixture {
  explicit P5Fixture(size_t group_size, uint64_t seed = 11) : rng(seed) {
    graph = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, 25, 120).ValueOrDie());
    auto truth = GroundTruthInfluence::Uniform(*graph, 0.5);
    CascadeParams params;
    params.num_actions = 40;
    log = GenerateCascades(&rng, *graph, truth, params).ValueOrDie();
    // Spread the unified log across the group (every action shared).
    ActionClassConfig cfg;
    cfg.class_of_action.assign(40, 0);
    cfg.provider_groups.push_back({});
    for (size_t k = 0; k < group_size; ++k) {
      cfg.provider_groups[0].push_back(k);
    }
    class_logs =
        NonExclusivePartition(&rng, log, group_size, cfg).ValueOrDie();

    aggregator = net.RegisterParty("P-hat");
    for (size_t k = 0; k < group_size; ++k) {
      group.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    }
    group_secret = std::make_unique<Rng>(seed + 1);
  }

  Rng rng;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> class_logs;
  Network net;
  PartyId aggregator;
  std::vector<PartyId> group;
  std::unique_ptr<Rng> group_secret;
};

Protocol5Config MakeConfig(ObfuscationMethod method, uint64_t frame_t,
                           uint64_t h = 4) {
  Protocol5Config cfg;
  cfg.h = h;
  cfg.method = method;
  cfg.num_fake_users = 6;
  cfg.time_frame_t = frame_t;
  return cfg;
}

void ExpectCountersMatchPlaintext(const AggregatedClassCounters& agg,
                                  const ActionLog& unified_log, uint64_t h) {
  auto expected_a = ComputeActionCounts(unified_log, 25);
  ASSERT_EQ(agg.a.size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(agg.a[i], expected_a[i]) << "a_" << i;
  }
  // Check b over all ordered pairs, not just graph arcs: Protocol 5 returns
  // counters for every pair with activity.
  std::vector<Arc> all_pairs;
  for (NodeId i = 0; i < 25; ++i) {
    for (NodeId j = 0; j < 25; ++j) {
      if (i != j) all_pairs.push_back({i, j});
    }
  }
  auto expected_b = ComputeFollowCounts(unified_log, all_pairs, h);
  for (size_t p = 0; p < all_pairs.size(); ++p) {
    uint64_t got =
        agg.FollowCount(all_pairs[p].from, all_pairs[p].to, h);
    ASSERT_EQ(got, expected_b[p])
        << "pair (" << all_pairs[p].from << "," << all_pairs[p].to << ")";
  }
}

TEST(Protocol5Test, BasicObfuscationRecoversExactCounters) {
  P5Fixture f(3);
  ClassAggregationProtocol proto(
      &f.net, f.group, f.aggregator,
      MakeConfig(ObfuscationMethod::kBasic, f.log.MaxTime() + 1));
  auto agg = proto.Run(f.class_logs, 25, f.group_secret.get(), "t.")
                 .ValueOrDie();
  ExpectCountersMatchPlaintext(agg, f.log, 4);
}

TEST(Protocol5Test, EnhancedObfuscationRecoversExactCounters) {
  P5Fixture f(3);
  ClassAggregationProtocol proto(
      &f.net, f.group, f.aggregator,
      MakeConfig(ObfuscationMethod::kEnhanced, f.log.MaxTime() + 1));
  auto agg = proto.Run(f.class_logs, 25, f.group_secret.get(), "t.")
                 .ValueOrDie();
  ExpectCountersMatchPlaintext(agg, f.log, 4);
}

TEST(Protocol5Test, CrossProviderFollowsAreRecovered) {
  // The motivating case: u buys at P1, v follows at P2. Neither provider
  // alone sees the episode, the aggregate must.
  Network net;
  PartyId aggregator = net.RegisterParty("P-hat");
  std::vector<PartyId> group{net.RegisterParty("P1"), net.RegisterParty("P2")};
  ActionLog log1, log2;
  log1.Add({0, 0, 10});  // u = 0 buys book 0 at P1.
  log2.Add({1, 0, 12});  // v = 1 buys it at P2, 2 steps later.
  Rng secret(5);
  ClassAggregationProtocol proto(
      &net, group, aggregator,
      MakeConfig(ObfuscationMethod::kEnhanced, 13));
  auto agg = proto.Run({log1, log2}, 2, &secret, "t.").ValueOrDie();
  EXPECT_EQ(agg.a[0], 1u);
  EXPECT_EQ(agg.a[1], 1u);
  EXPECT_EQ(agg.FollowCount(0, 1, 4), 1u);
  EXPECT_EQ(agg.FollowCount(1, 0, 4), 0u);
  // Exact delay recorded at l = 2.
  auto it = agg.c_by_delay.find((0ull << 32) | 1);
  ASSERT_NE(it, agg.c_by_delay.end());
  EXPECT_EQ(it->second[1], 1u);
}

TEST(Protocol5Test, AggregatorNeverSeesRealUserIdsInEnhancedMode) {
  // With the enhanced method the aggregator's view uses injected ids over a
  // larger space; at least some must exceed the real id range, and fake
  // padding must be present.
  P5Fixture f(2);
  ClassAggregationProtocol proto(
      &f.net, f.group, f.aggregator,
      MakeConfig(ObfuscationMethod::kEnhanced, f.log.MaxTime() + 1));
  ASSERT_TRUE(proto.Run(f.class_logs, 25, f.group_secret.get(), "t.").ok());
  size_t total_records = 0;
  for (const auto& records : proto.views().aggregator_logs) {
    total_records += records.size();
  }
  EXPECT_GT(total_records, f.log.size());  // Fake padding inflates the logs.
}

TEST(Protocol5Test, EnhancedPaddingEqualizesTimestampHistogram) {
  // Per provider, every encrypted timestamp must carry the same number of
  // records — otherwise the shift key leaks from the activity histogram.
  P5Fixture f(2);
  uint64_t frame_t = f.log.MaxTime() + 1;
  ClassAggregationProtocol proto(
      &f.net, f.group, f.aggregator,
      MakeConfig(ObfuscationMethod::kEnhanced, frame_t));
  ASSERT_TRUE(proto.Run(f.class_logs, 25, f.group_secret.get(), "t.").ok());
  uint64_t frame = frame_t + 4;
  for (const auto& records : proto.views().aggregator_logs) {
    std::vector<uint64_t> per_time(frame, 0);
    for (const auto& r : records) {
      ASSERT_LT(r.time, frame);
      ++per_time[r.time];
    }
    std::set<uint64_t> distinct(per_time.begin(), per_time.end());
    EXPECT_EQ(distinct.size(), 1u) << "timestamp histogram is not flat";
  }
}

TEST(Protocol5Test, BasicModeLeavesTimestampsInClear) {
  P5Fixture f(2);
  ClassAggregationProtocol proto(
      &f.net, f.group, f.aggregator,
      MakeConfig(ObfuscationMethod::kBasic, f.log.MaxTime() + 1));
  ASSERT_TRUE(proto.Run(f.class_logs, 25, f.group_secret.get(), "t.").ok());
  // Collect the multiset of times seen by the aggregator; in basic mode it
  // equals the multiset of real times.
  std::multiset<uint64_t> seen, real;
  for (const auto& records : proto.views().aggregator_logs) {
    for (const auto& r : records) seen.insert(r.time);
  }
  for (const auto& r : f.log.records()) real.insert(r.time);
  EXPECT_EQ(seen, real);
}

TEST(Protocol5Test, SplitOutClassPartitionsRecords) {
  ActionLog log;
  log.Add({0, 0, 1});
  log.Add({0, 1, 2});
  log.Add({1, 2, 3});
  std::vector<uint32_t> classes{0, 1, 0};
  auto [in_class, rest] = SplitOutClass(log, classes, 0);
  EXPECT_EQ(in_class.size(), 2u);
  EXPECT_EQ(rest.size(), 1u);
  uint64_t t;
  EXPECT_TRUE(rest.Lookup(0, 1, &t));
}

TEST(Protocol5Test, Validation) {
  Network net;
  PartyId agg = net.RegisterParty("A");
  PartyId p1 = net.RegisterParty("P1");
  Rng secret(1);
  // Aggregator inside the group.
  ClassAggregationProtocol bad(&net, {p1, agg}, agg,
                               MakeConfig(ObfuscationMethod::kBasic, 10));
  EXPECT_FALSE(bad.Run({ActionLog{}, ActionLog{}}, 5, &secret, "t.").ok());
  // Missing frame.
  ClassAggregationProtocol no_frame(&net, {p1}, agg,
                                    MakeConfig(ObfuscationMethod::kBasic, 0));
  EXPECT_FALSE(no_frame.Run({ActionLog{}}, 5, &secret, "t.").ok());
  // Record beyond the public frame.
  ActionLog late;
  late.Add({0, 0, 100});
  ClassAggregationProtocol overflow(&net, {p1}, agg,
                                    MakeConfig(ObfuscationMethod::kBasic, 50));
  EXPECT_FALSE(overflow.Run({late}, 5, &secret, "t.").ok());
}

TEST(Protocol5Test, CommunicationPattern) {
  P5Fixture f(3);
  ClassAggregationProtocol proto(
      &f.net, f.group, f.aggregator,
      MakeConfig(ObfuscationMethod::kBasic, f.log.MaxTime() + 1));
  ASSERT_TRUE(proto.Run(f.class_logs, 25, f.group_secret.get(), "t.").ok());
  auto report = f.net.Report();
  EXPECT_EQ(report.num_rounds, 2u);
  EXPECT_EQ(report.num_messages, 4u);  // d logs in, 1 counter bundle out.
  EXPECT_EQ(f.net.PendingCount(), 0u);
}

}  // namespace
}  // namespace psi
