#include "mpc/multi_host.h"

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"

namespace psi {
namespace {

struct MultiHostFixture {
  MultiHostFixture(size_t num_hosts, size_t num_providers, uint64_t seed = 51)
      : rng(seed) {
    // One "global" graph generates the activity; each host owns a random
    // slice of its arcs (platforms see different parts of the relationship
    // graph). Slices may overlap.
    global = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, 30, 180).ValueOrDie());
    auto truth = GroundTruthInfluence::Random(&rng, *global, 0.1, 0.7);
    CascadeParams params;
    params.num_actions = 50;
    log = GenerateCascades(&rng, *global, truth, params).ValueOrDie();
    provider_logs =
        ExclusivePartition(&rng, log, num_providers).ValueOrDie();

    for (size_t h = 0; h < num_hosts; ++h) {
      auto g = std::make_unique<SocialGraph>(global->num_nodes());
      for (const Arc& a : global->arcs()) {
        if (rng.Bernoulli(0.6)) PSI_CHECK_OK(g->AddArc(a.from, a.to));
      }
      host_graphs.push_back(std::move(g));
    }

    for (size_t h = 0; h < num_hosts; ++h) {
      hosts.push_back(net.RegisterParty("H" + std::to_string(h + 1)));
      host_rng_store.push_back(std::make_unique<Rng>(seed + 500 + h));
    }
    for (size_t k = 0; k < num_providers; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      provider_rng_store.push_back(std::make_unique<Rng>(seed + 900 + k));
    }
    pair_secret = std::make_unique<Rng>(seed + 77);
  }

  std::vector<const SocialGraph*> GraphPtrs() const {
    std::vector<const SocialGraph*> out;
    for (const auto& g : host_graphs) out.push_back(g.get());
    return out;
  }
  std::vector<Rng*> HostRngs() {
    std::vector<Rng*> out;
    for (auto& r : host_rng_store) out.push_back(r.get());
    return out;
  }
  std::vector<Rng*> ProviderRngs() {
    std::vector<Rng*> out;
    for (auto& r : provider_rng_store) out.push_back(r.get());
    return out;
  }

  Rng rng;
  std::unique_ptr<SocialGraph> global;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
  std::vector<std::unique_ptr<SocialGraph>> host_graphs;
  Network net;
  std::vector<PartyId> hosts;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> host_rng_store;
  std::vector<std::unique_ptr<Rng>> provider_rng_store;
  std::unique_ptr<Rng> pair_secret;
};

TEST(MultiHostTest, EveryHostGetsItsExactPlaintextStrengths) {
  MultiHostFixture f(3, 3);
  Protocol4Config cfg;
  cfg.h = 4;
  MultiHostLinkInfluenceProtocol proto(&f.net, f.hosts, f.providers, cfg);
  auto results = proto.Run(f.GraphPtrs(), 50, f.provider_logs, f.HostRngs(),
                           f.ProviderRngs(), f.pair_secret.get())
                     .ValueOrDie();
  ASSERT_EQ(results.size(), 3u);
  for (size_t h = 0; h < 3; ++h) {
    auto plain = ComputeLinkInfluence(f.log, f.host_graphs[h]->arcs(), 30, 4)
                     .ValueOrDie();
    ASSERT_EQ(results[h].p.size(), plain.p.size());
    for (size_t e = 0; e < plain.p.size(); ++e) {
      EXPECT_NEAR(results[h].p[e], plain.p[e], 1e-9)
          << "host " << h << " arc " << e;
    }
  }
  EXPECT_EQ(f.net.PendingCount(), 0u);
}

TEST(MultiHostTest, SingleHostDegeneratesToProtocol4Result) {
  MultiHostFixture f(1, 2);
  Protocol4Config cfg;
  MultiHostLinkInfluenceProtocol proto(&f.net, f.hosts, f.providers, cfg);
  auto results = proto.Run(f.GraphPtrs(), 50, f.provider_logs, f.HostRngs(),
                           f.ProviderRngs(), f.pair_secret.get())
                     .ValueOrDie();
  auto plain = ComputeLinkInfluence(f.log, f.host_graphs[0]->arcs(), 30,
                                    cfg.h)
                   .ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(results[0].p[e], plain.p[e], 1e-9);
  }
}

TEST(MultiHostTest, SharesOneSecureSumAcrossHosts) {
  // The amortization claim: the expensive m^2 share round happens once,
  // regardless of the host count, so the round count stays flat.
  for (size_t r : {1u, 2u, 4u}) {
    MultiHostFixture f(r, 3, 60 + r);
    Protocol4Config cfg;
    MultiHostLinkInfluenceProtocol proto(&f.net, f.hosts, f.providers, cfg);
    ASSERT_TRUE(proto.Run(f.GraphPtrs(), 50, f.provider_logs, f.HostRngs(),
                          f.ProviderRngs(), f.pair_secret.get())
                    .ok());
    EXPECT_EQ(f.net.Report().num_rounds, 8u) << "hosts=" << r;
  }
}

TEST(MultiHostTest, OmegaSizesReflectObfuscation) {
  MultiHostFixture f(2, 2);
  Protocol4Config cfg;
  cfg.obfuscation_factor = 3.0;
  MultiHostLinkInfluenceProtocol proto(&f.net, f.hosts, f.providers, cfg);
  ASSERT_TRUE(proto.Run(f.GraphPtrs(), 50, f.provider_logs, f.HostRngs(),
                        f.ProviderRngs(), f.pair_secret.get())
                  .ok());
  ASSERT_EQ(proto.omega_sizes().size(), 2u);
  for (size_t h = 0; h < 2; ++h) {
    EXPECT_EQ(proto.omega_sizes()[h], 3 * f.host_graphs[h]->num_arcs());
  }
}

TEST(MultiHostTest, Validation) {
  MultiHostFixture f(2, 2);
  Protocol4Config cfg;
  MultiHostLinkInfluenceProtocol proto(&f.net, f.hosts, f.providers, cfg);
  // Wrong graph count.
  std::vector<const SocialGraph*> one{f.host_graphs[0].get()};
  EXPECT_FALSE(proto.Run(one, 50, f.provider_logs, f.HostRngs(),
                         f.ProviderRngs(), f.pair_secret.get())
                   .ok());
  // Mismatched user universe.
  SocialGraph other(7);
  std::vector<const SocialGraph*> bad{f.host_graphs[0].get(), &other};
  EXPECT_FALSE(proto.Run(bad, 50, f.provider_logs, f.HostRngs(),
                         f.ProviderRngs(), f.pair_secret.get())
                   .ok());
}

TEST(MultiHostTest, WeightedVariantMatchesPlaintextEq2) {
  MultiHostFixture f(2, 3, 77);
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.weights = TemporalWeights::LinearDecay(4);
  MultiHostLinkInfluenceProtocol proto(&f.net, f.hosts, f.providers, cfg);
  auto results = proto.Run(f.GraphPtrs(), 50, f.provider_logs, f.HostRngs(),
                           f.ProviderRngs(), f.pair_secret.get())
                     .ValueOrDie();
  for (size_t h = 0; h < 2; ++h) {
    auto plain = ComputeWeightedLinkInfluence(f.log, f.host_graphs[h]->arcs(),
                                              30, *cfg.weights)
                     .ValueOrDie();
    for (size_t e = 0; e < plain.p.size(); ++e) {
      EXPECT_NEAR(results[h].p[e], plain.p[e], 1e-3)
          << "host " << h << " arc " << e;
    }
  }
}

}  // namespace
}  // namespace psi
