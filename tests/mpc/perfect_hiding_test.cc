#include "mpc/perfect_hiding.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"

namespace psi {
namespace {

TEST(PerfectHidingTest, AllPairsIndexIsABijection) {
  const size_t n = 9;
  auto pairs = AllOrderedPairs(n);
  ASSERT_EQ(pairs.size(), n * (n - 1));
  std::set<size_t> seen;
  for (const Arc& a : pairs) {
    size_t idx = AllPairsIndex(a.from, a.to, n);
    ASSERT_LT(idx, pairs.size());
    EXPECT_TRUE(seen.insert(idx).second);
    // The canonical list itself is indexed consistently.
    EXPECT_EQ(pairs[idx].from, a.from);
    EXPECT_EQ(pairs[idx].to, a.to);
  }
}

TEST(PerfectHidingTest, MatchesPlaintextOnSmallGraph) {
  Rng rng(33);
  auto graph = ErdosRenyiArcs(&rng, 10, 30).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 30;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto logs = ExclusivePartition(&rng, log, 2).ValueOrDie();

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2")};
  Rng hr(1), p1(2), p2(3), secret(4);
  std::vector<Rng*> rngs{&p1, &p2};

  PerfectHidingConfig cfg;
  cfg.h = 4;
  PerfectHidingLinkInfluenceProtocol proto(&net, host, providers, cfg);
  auto secure = proto.Run(graph, 30, logs, &hr, rngs, &secret).ValueOrDie();

  auto plain = ComputeLinkInfluence(log, graph.arcs(), 10, 4).ValueOrDie();
  ASSERT_EQ(secure.p.size(), plain.p.size());
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9) << "arc " << e;
  }
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST(PerfectHidingTest, ProvidersNeverReceiveArcInformation) {
  // Structural property: in this variant no message from H to the providers
  // exists at all (the pair list is public), so the providers' combined
  // inbound traffic from H is zero bytes.
  Rng rng(34);
  auto graph = ErdosRenyiArcs(&rng, 8, 20).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 20;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto logs = ExclusivePartition(&rng, log, 2).ValueOrDie();

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2")};
  Rng hr(1), p1(2), p2(3), secret(4);
  std::vector<Rng*> rngs{&p1, &p2};
  PerfectHidingConfig cfg;
  PerfectHidingLinkInfluenceProtocol proto(&net, host, providers, cfg);
  ASSERT_TRUE(proto.Run(graph, 20, logs, &hr, rngs, &secret).ok());
  // H sent only the OT round-2 blinded choices, which are uniform group
  // elements: 2 messages (one per OT batch), independent of E's shape.
  uint64_t host_sent = net.BytesSentBy(host);
  EXPECT_GT(host_sent, 0u);
  // Re-run with a very different arc count; H's sent bytes per arc must
  // scale only with |E| (one blinded element each), never with structure.
  Rng rng2(35);
  auto graph2 = ErdosRenyiArcs(&rng2, 8, 40).ValueOrDie();
  auto truth2 = GroundTruthInfluence::Uniform(graph2, 0.5);
  auto log2 = GenerateCascades(&rng2, graph2, truth2, params).ValueOrDie();
  auto logs2 = ExclusivePartition(&rng2, log2, 2).ValueOrDie();
  Network net2;
  PartyId host2 = net2.RegisterParty("H");
  std::vector<PartyId> providers2{net2.RegisterParty("P1"),
                                  net2.RegisterParty("P2")};
  Rng hr2(1), p1b(2), p2b(3), secret2(4);
  std::vector<Rng*> rngs2{&p1b, &p2b};
  PerfectHidingLinkInfluenceProtocol proto2(&net2, host2, providers2, cfg);
  ASSERT_TRUE(proto2.Run(graph2, 20, logs2, &hr2, rngs2, &secret2).ok());
  double per_arc_1 = static_cast<double>(host_sent) / 20.0;
  double per_arc_2 = static_cast<double>(net2.BytesSentBy(host2)) / 40.0;
  EXPECT_NEAR(per_arc_1, per_arc_2, per_arc_1 * 0.2);
}

TEST(PerfectHidingTest, Validation) {
  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1")};
  PerfectHidingConfig cfg;
  PerfectHidingLinkInfluenceProtocol one(&net, host, providers, cfg);
  SocialGraph g(5);
  Rng hr(1), p1(2), secret(3);
  EXPECT_FALSE(one.Run(g, 10, {ActionLog{}}, &hr, {&p1}, &secret).ok());
}

}  // namespace
}  // namespace psi
