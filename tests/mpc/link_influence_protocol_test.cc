#include "mpc/link_influence_protocol.h"

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"

namespace psi {
namespace {

struct P4Fixture {
  P4Fixture(size_t num_providers, size_t num_users, size_t num_arcs,
            size_t num_actions, uint64_t seed = 7)
      : rng(seed) {
    graph = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, num_users, num_arcs).ValueOrDie());
    auto truth = GroundTruthInfluence::Random(&rng, *graph, 0.1, 0.7);
    CascadeParams params;
    params.num_actions = num_actions;
    params.seeds_per_action = 2;
    log = GenerateCascades(&rng, *graph, truth, params).ValueOrDie();
    provider_logs = ExclusivePartition(&rng, log, num_providers).ValueOrDie();

    host = net.RegisterParty("H");
    for (size_t k = 0; k < num_providers; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(seed * 100 + k));
    }
    host_rng = std::make_unique<Rng>(seed + 1);
    pair_secret = std::make_unique<Rng>(seed + 2);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }

  Rng rng;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::unique_ptr<Rng> host_rng;
  std::unique_ptr<Rng> pair_secret;
};

TEST(Protocol4Test, SecureOutputEqualsPlaintextEq1) {
  P4Fixture f(3, 40, 200, 60);
  Protocol4Config cfg;
  cfg.h = 4;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 60, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 40, cfg.h).ValueOrDie();
  ASSERT_EQ(secure.p.size(), plain.p.size());
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9) << "arc " << e;
  }
}

TEST(Protocol4Test, CommunicationMatchesTable1Totals) {
  for (size_t m : {2u, 3u, 5u}) {
    P4Fixture f(m, 25, 100, 30, m);
    Protocol4Config cfg;
    LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
    ASSERT_TRUE(proto.Run(*f.graph, 30, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ok());
    auto report = f.net.Report();
    EXPECT_EQ(report.num_rounds, 8u) << "m=" << m;
    EXPECT_EQ(report.num_messages, m * m + m + 7) << "m=" << m;
    EXPECT_EQ(f.net.PendingCount(), 0u);
  }
}

TEST(Protocol4Test, WeightedVariantMatchesPlaintextEq2) {
  P4Fixture f(3, 30, 150, 50);
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.weights = TemporalWeights::LinearDecay(4);
  cfg.weight_scale = 1u << 16;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 50, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain = ComputeWeightedLinkInfluence(f.log, f.graph->arcs(), 30,
                                            *cfg.weights)
                   .ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    // Fixed-point weight rounding bounds the error by h/scale per unit.
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-3) << "arc " << e;
  }
}

TEST(Protocol4Test, OmegaHidesTrueArcsAmongDecoys) {
  P4Fixture f(2, 30, 120, 40);
  Protocol4Config cfg;
  cfg.obfuscation_factor = 3.0;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  ASSERT_TRUE(proto.Run(*f.graph, 40, f.provider_logs, f.host_rng.get(),
                        f.RngPtrs(), f.pair_secret.get())
                  .ok());
  const auto& omega = proto.views().omega;
  EXPECT_EQ(omega.size(), 360u);  // c * |E|.
  size_t true_arcs = 0;
  for (const Arc& a : omega) true_arcs += f.graph->HasArc(a.from, a.to);
  EXPECT_EQ(true_arcs, 120u);  // All of E is inside, hidden among decoys.
}

TEST(Protocol4Test, HostMaskedViewsHideCounters) {
  // The masked value r_i * a_i that H sees must differ from a_i itself
  // (masking) while preserving the quotient relationships.
  P4Fixture f(2, 20, 80, 30);
  Protocol4Config cfg;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  ASSERT_TRUE(proto.Run(*f.graph, 30, f.provider_logs, f.host_rng.get(),
                        f.RngPtrs(), f.pair_secret.get())
                  .ok());
  auto a = ComputeActionCounts(f.log, 20);
  const auto& masked = proto.views().host_masked_a;
  size_t equal = 0;
  for (size_t i = 0; i < 20; ++i) {
    if (a[i] != 0 &&
        std::abs(masked[i] - static_cast<double>(a[i])) < 1e-9) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1u);  // r_i == 1.0 exactly is measure-zero.
}

TEST(Protocol4Test, ModulusAutoSizingTracksProblemSize) {
  P4Fixture small(2, 10, 30, 10);
  P4Fixture large(2, 10, 30, 10);
  Protocol4Config cfg_small;
  cfg_small.epsilon_log2 = 20;
  Protocol4Config cfg_large;
  cfg_large.epsilon_log2 = 80;
  LinkInfluenceProtocol ps(&small.net, small.host, small.providers, cfg_small);
  LinkInfluenceProtocol pl(&large.net, large.host, large.providers, cfg_large);
  ASSERT_TRUE(ps.Run(*small.graph, 10, small.provider_logs,
                     small.host_rng.get(), small.RngPtrs(),
                     small.pair_secret.get())
                  .ok());
  ASSERT_TRUE(pl.Run(*large.graph, 10, large.provider_logs,
                     large.host_rng.get(), large.RngPtrs(),
                     large.pair_secret.get())
                  .ok());
  EXPECT_GE(pl.modulus().BitLength(), ps.modulus().BitLength() + 55u);
}

TEST(Protocol4Test, ExplicitModulusOverride) {
  P4Fixture f(2, 15, 60, 20);
  Protocol4Config cfg;
  cfg.modulus_s = BigUInt::PowerOfTwo(256);
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  EXPECT_EQ(proto.modulus(), BigUInt::PowerOfTwo(256));
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 15, cfg.h).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9);
  }
}

TEST(Protocol4Test, PermutationOffStillCorrect) {
  P4Fixture f(3, 20, 80, 25);
  Protocol4Config cfg;
  cfg.use_secret_permutation = false;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 20, cfg.h).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9);
  }
}

TEST(Protocol4Test, Validation) {
  P4Fixture f(2, 10, 30, 10);
  Protocol4Config cfg;
  LinkInfluenceProtocol one_provider(&f.net, f.host, {f.providers[0]}, cfg);
  EXPECT_FALSE(one_provider
                   .Run(*f.graph, 10, {f.provider_logs[0]}, f.host_rng.get(),
                        {f.rngs[0].get()}, f.pair_secret.get())
                   .ok());
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  std::vector<ActionLog> wrong_count{f.provider_logs[0]};
  EXPECT_FALSE(proto.Run(*f.graph, 10, wrong_count, f.host_rng.get(),
                         f.RngPtrs(), f.pair_secret.get())
                   .ok());
}

TEST(Protocol4Test, PackedAggregationMatchesPlaintext) {
  P4Fixture f(3, 30, 120, 40);
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.aggregation = P4Aggregation::kPaillierPacked;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 40, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  EXPECT_TRUE(proto.views().used_packed_aggregation);
  EXPECT_GT(proto.views().packed_slots, 1u);
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 30, cfg.h).ValueOrDie();
  ASSERT_EQ(secure.p.size(), plain.p.size());
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9) << "arc " << e;
  }
}

TEST(Protocol4Test, PackedAggregationMatchesSecureSum) {
  // Identical worlds through both aggregation backends: the estimates must
  // coincide (both are exact), only the transcript shape differs.
  P4Fixture fp(3, 25, 100, 30, 77);
  P4Fixture fs(3, 25, 100, 30, 77);
  Protocol4Config packed_cfg;
  packed_cfg.aggregation = P4Aggregation::kPaillierPacked;
  Protocol4Config sum_cfg;  // Default kSecureSum.
  LinkInfluenceProtocol packed(&fp.net, fp.host, fp.providers, packed_cfg);
  LinkInfluenceProtocol sums(&fs.net, fs.host, fs.providers, sum_cfg);
  auto sp = packed
                .Run(*fp.graph, 30, fp.provider_logs, fp.host_rng.get(),
                     fp.RngPtrs(), fp.pair_secret.get())
                .ValueOrDie();
  auto ss = sums
                .Run(*fs.graph, 30, fs.provider_logs, fs.host_rng.get(),
                     fs.RngPtrs(), fs.pair_secret.get())
                .ValueOrDie();
  ASSERT_TRUE(packed.views().used_packed_aggregation);
  ASSERT_FALSE(sums.views().used_packed_aggregation);
  ASSERT_EQ(sp.p.size(), ss.p.size());
  for (size_t e = 0; e < sp.p.size(); ++e) {
    EXPECT_NEAR(sp.p[e], ss.p[e], 1e-9) << "arc " << e;
  }
}

TEST(Protocol4Test, PackedAggregationWithTemporalWeights) {
  // Eq. (2) inflates the counter bound by weight_scale * h; packing must
  // derive its geometry from that inflated bound and still be exact.
  P4Fixture f(3, 30, 150, 50);
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.weights = TemporalWeights::LinearDecay(4);
  cfg.weight_scale = 1u << 16;
  cfg.aggregation = P4Aggregation::kPaillierPacked;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 50, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  EXPECT_TRUE(proto.views().used_packed_aggregation);
  auto plain = ComputeWeightedLinkInfluence(f.log, f.graph->arcs(), 30,
                                            *cfg.weights)
                   .ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-3) << "arc " << e;
  }
}

TEST(Protocol4Test, PackedAggregationFallsBackWhenNoSlotFits) {
  // A huge statistical-mask headroom makes the slot wider than the Paillier
  // plaintext; the protocol must detect that up front and fall back to the
  // Protocol 2 backend, still producing the exact estimates.
  P4Fixture f(2, 15, 60, 20);
  Protocol4Config cfg;
  cfg.aggregation = P4Aggregation::kPaillierPacked;
  cfg.epsilon_log2 = 600;  // Slot would need > 600 bits; |N| - 2 = 510.
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  EXPECT_FALSE(proto.views().used_packed_aggregation);
  EXPECT_EQ(proto.views().packed_slots, 1u);
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 15, cfg.h).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9) << "arc " << e;
  }
}

// Parameterized sweep across provider counts: correctness and the NM
// formula must hold for every m.
class Protocol4ProviderSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Protocol4ProviderSweep, CorrectAndMetered) {
  const size_t m = GetParam();
  P4Fixture f(m, 20, 80, 25, 31 + m);
  Protocol4Config cfg;
  cfg.h = 3;
  LinkInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 20, 3).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    ASSERT_NEAR(secure.p[e], plain.p[e], 1e-9);
  }
  EXPECT_EQ(f.net.Report().num_messages, m * m + m + 7);
}

INSTANTIATE_TEST_SUITE_P(ProviderCounts, Protocol4ProviderSweep,
                         ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace psi
