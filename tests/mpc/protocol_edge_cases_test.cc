// Degenerate-world edge cases: the protocols must behave exactly like the
// plaintext baselines when logs are empty, graphs are minimal, or activity
// is one-sided — the configurations where division-by-zero conventions and
// empty batches bite.

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/generator.h"
#include "graph/generators.h"
#include "influence/link_influence.h"
#include "influence/user_score.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/secure_user_score.h"

namespace psi {
namespace {

struct TinyWorld {
  explicit TinyWorld(size_t n) : graph(n) {
    host = net.RegisterParty("H");
    providers = {net.RegisterParty("P1"), net.RegisterParty("P2")};
    rngs = {&p1_rng, &p2_rng};
  }
  SocialGraph graph;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  Rng host_rng{1}, p1_rng{2}, p2_rng{3}, pair_secret{4};
  std::vector<Rng*> rngs;
};

TEST(ProtocolEdgeCases, EmptyLogsYieldAllZeroInfluence) {
  TinyWorld w(5);
  PSI_CHECK_OK(w.graph.AddArc(0, 1));
  PSI_CHECK_OK(w.graph.AddArc(1, 2));
  std::vector<ActionLog> logs(2);  // Nobody ever did anything.
  Protocol4Config cfg;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto result = proto.Run(w.graph, 10, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  for (double p : result.p) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(ProtocolEdgeCases, TwoUserGraphSingleFollow) {
  TinyWorld w(2);
  PSI_CHECK_OK(w.graph.AddArc(0, 1));
  std::vector<ActionLog> logs(2);
  logs[0].Add({0, 0, 10});
  logs[0].Add({1, 0, 12});
  Protocol4Config cfg;
  cfg.h = 4;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto result = proto.Run(w.graph, 1, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  ASSERT_EQ(result.p.size(), 1u);
  EXPECT_NEAR(result.p[0], 1.0, 1e-9);  // 1 follow / 1 action.
}

TEST(ProtocolEdgeCases, InfluencerWhoNeverActsScoresZero) {
  // User 0 has followers but never acts: a_0 = 0 -> p_0j = 0 by convention.
  TinyWorld w(3);
  PSI_CHECK_OK(w.graph.AddArc(0, 1));
  PSI_CHECK_OK(w.graph.AddArc(0, 2));
  std::vector<ActionLog> logs(2);
  logs[0].Add({1, 0, 5});
  logs[0].Add({2, 0, 6});
  Protocol4Config cfg;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto result = proto.Run(w.graph, 1, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  for (double p : result.p) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(ProtocolEdgeCases, OneProviderHoldsEverything) {
  // Degenerate partition: provider 2 has an empty log. Secure result must
  // still equal the plaintext over the union.
  Rng rng(5);
  auto graph = ErdosRenyiArcs(&rng, 15, 60).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 20;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();

  TinyWorld w(15);
  std::vector<ActionLog> logs{log, ActionLog{}};
  Protocol4Config cfg;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto secure = proto.Run(graph, 20, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  auto plain = ComputeLinkInfluence(log, graph.arcs(), 15, cfg.h).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9);
  }
}

TEST(ProtocolEdgeCases, SecureScoresOnEmptyWorld) {
  TinyWorld w(4);
  PSI_CHECK_OK(w.graph.AddArc(0, 1));
  std::vector<ActionLog> logs(2);
  SecureScoreConfig cfg;
  cfg.protocol6.rsa_bits = 512;
  cfg.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
  SecureUserScoreProtocol proto(&w.net, w.host, w.providers, cfg);
  auto scores = proto.Run(w.graph, 5, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ProtocolEdgeCases, SingleActionUniverse) {
  // |A| = 1 drives the counter bound A to its minimum; the modulus sizing
  // and share arithmetic must still hold up. (Exclusive case: the whole
  // action's trace lives at one provider.)
  TinyWorld w(3);
  PSI_CHECK_OK(w.graph.AddArc(0, 1));
  std::vector<ActionLog> logs(2);
  logs[0].Add({0, 0, 1});
  logs[0].Add({1, 0, 2});
  Protocol4Config cfg;
  cfg.h = 2;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto result = proto.Run(w.graph, 1, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  EXPECT_NEAR(result.p[0], 1.0, 1e-9);
}

TEST(ProtocolEdgeCases, DenseGraphObfuscationSaturates) {
  // A complete digraph leaves no room for decoys; the protocol must still
  // run with Omega == all pairs.
  TinyWorld w(5);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      if (i != j) PSI_CHECK_OK(w.graph.AddArc(i, j));
    }
  }
  std::vector<ActionLog> logs(2);
  logs[0].Add({0, 0, 1});
  logs[0].Add({1, 0, 2});
  Protocol4Config cfg;
  cfg.obfuscation_factor = 10.0;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto result = proto.Run(w.graph, 1, logs, &w.host_rng, w.rngs,
                          &w.pair_secret)
                    .ValueOrDie();
  EXPECT_EQ(proto.views().omega.size(), 20u);  // 5*4 pairs, saturated.
  EXPECT_EQ(result.p.size(), 20u);
}

}  // namespace
}  // namespace psi
