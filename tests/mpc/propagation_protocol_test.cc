#include "mpc/propagation_protocol.h"

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "influence/user_score.h"

namespace psi {
namespace {

struct P6Fixture {
  P6Fixture(size_t num_providers, uint64_t seed = 13) : rng(seed) {
    graph = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, 30, 140).ValueOrDie());
    auto truth = GroundTruthInfluence::Uniform(*graph, 0.5);
    CascadeParams params;
    params.num_actions = 25;
    log = GenerateCascades(&rng, *graph, truth, params).ValueOrDie();
    provider_logs = ExclusivePartition(&rng, log, num_providers).ValueOrDie();

    host = net.RegisterParty("H");
    for (size_t k = 0; k < num_providers; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(seed * 10 + k));
    }
    host_rng = std::make_unique<Rng>(seed + 100);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }

  Rng rng;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::unique_ptr<Rng> host_rng;
};

Protocol6Config SmallRsaConfig(
    Protocol6Config::EncryptionMode mode =
        Protocol6Config::EncryptionMode::kHybrid) {
  Protocol6Config cfg;
  cfg.rsa_bits = 512;
  cfg.encryption = mode;
  return cfg;
}

void ExpectGraphsMatchPlaintext(const Protocol6Output& out,
                                const SocialGraph& graph,
                                const ActionLog& log, size_t num_actions) {
  ASSERT_EQ(out.graphs.size(), num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    auto expected = BuildPropagationGraph(graph, log, a).ValueOrDie();
    ASSERT_EQ(out.graphs[a].num_arcs(), expected.num_arcs()) << "action " << a;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      auto got = out.graphs[a].OutArcs(v);
      auto want = expected.OutArcs(v);
      auto key = [](const LabeledArc& x) {
        return (static_cast<uint64_t>(x.to) << 32) | x.delta_t;
      };
      std::vector<uint64_t> gk, wk;
      for (const auto& x : got) gk.push_back(key(x));
      for (const auto& x : want) wk.push_back(key(x));
      std::sort(gk.begin(), gk.end());
      std::sort(wk.begin(), wk.end());
      ASSERT_EQ(gk, wk) << "action " << a << " node " << v;
    }
  }
}

TEST(Protocol6Test, HybridModeReconstructsAllPropagationGraphs) {
  P6Fixture f(3);
  PropagationGraphProtocol proto(&f.net, f.host, f.providers,
                                 SmallRsaConfig());
  auto out = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                       f.RngPtrs())
                 .ValueOrDie();
  ExpectGraphsMatchPlaintext(out, *f.graph, f.log, 25);
}

TEST(Protocol6Test, PerIntegerModeReconstructsAllPropagationGraphs) {
  P6Fixture f(2);
  // Keep the size modest: per-integer RSA decrypts q * A ciphertexts.
  Protocol6Config cfg =
      SmallRsaConfig(Protocol6Config::EncryptionMode::kPerInteger);
  cfg.obfuscation_factor = 1.5;
  PropagationGraphProtocol proto(&f.net, f.host, f.providers, cfg);
  auto out = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                       f.RngPtrs())
                 .ValueOrDie();
  ExpectGraphsMatchPlaintext(out, *f.graph, f.log, 25);
}

TEST(Protocol6Test, PackedModeReconstructsAllPropagationGraphs) {
  P6Fixture f(3);
  Protocol6Config cfg =
      SmallRsaConfig(Protocol6Config::EncryptionMode::kPackedInteger);
  PropagationGraphProtocol proto(&f.net, f.host, f.providers, cfg);
  auto out = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                       f.RngPtrs())
                 .ValueOrDie();
  ExpectGraphsMatchPlaintext(out, *f.graph, f.log, 25);
}

TEST(Protocol6Test, PackedModeShrinksPerIntegerTraffic) {
  // Same world through kPerInteger and kPackedInteger: identical graphs,
  // several-fold fewer ciphertext bytes.
  P6Fixture fp(2, 21);
  P6Fixture fu(2, 21);
  Protocol6Config packed_cfg =
      SmallRsaConfig(Protocol6Config::EncryptionMode::kPackedInteger);
  Protocol6Config plain_cfg =
      SmallRsaConfig(Protocol6Config::EncryptionMode::kPerInteger);
  PropagationGraphProtocol packed(&fp.net, fp.host, fp.providers, packed_cfg);
  PropagationGraphProtocol plain(&fu.net, fu.host, fu.providers, plain_cfg);
  auto po = packed
                .Run(*fp.graph, 25, fp.provider_logs, fp.host_rng.get(),
                     fp.RngPtrs())
                .ValueOrDie();
  auto uo = plain
                .Run(*fu.graph, 25, fu.provider_logs, fu.host_rng.get(),
                     fu.RngPtrs())
                .ValueOrDie();
  ExpectGraphsMatchPlaintext(po, *fp.graph, fp.log, 25);
  ExpectGraphsMatchPlaintext(uo, *fu.graph, fu.log, 25);
  EXPECT_EQ(fp.net.Report().num_messages, fu.net.Report().num_messages);
  EXPECT_LT(fp.net.Report().num_bytes * 3, fu.net.Report().num_bytes);
}

TEST(Protocol6Test, PackedModeFallsBackPerVectorOnLargeDeltas) {
  // A 1-tick Delta bound is violated by almost every real vector, forcing
  // the per-action kPerInteger fallback; correctness must be unaffected.
  P6Fixture f(2);
  Protocol6Config cfg =
      SmallRsaConfig(Protocol6Config::EncryptionMode::kPackedInteger);
  cfg.packed_delta_bound = 1;
  PropagationGraphProtocol proto(&f.net, f.host, f.providers, cfg);
  auto out = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                       f.RngPtrs())
                 .ValueOrDie();
  ExpectGraphsMatchPlaintext(out, *f.graph, f.log, 25);
}

TEST(Protocol6Test, CommunicationMatchesTable2Totals) {
  for (size_t m : {2u, 3u, 4u}) {
    P6Fixture f(m, 17 + m);
    PropagationGraphProtocol proto(&f.net, f.host, f.providers,
                                   SmallRsaConfig());
    ASSERT_TRUE(proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs())
                    .ok());
    auto report = f.net.Report();
    EXPECT_EQ(report.num_rounds, 4u) << "m=" << m;
    EXPECT_EQ(report.num_messages, 3 * m) << "m=" << m;
    EXPECT_EQ(f.net.PendingCount(), 0u);
  }
}

TEST(Protocol6Test, DecoyArcsNeverEnterPropagationGraphs) {
  P6Fixture f(2);
  Protocol6Config cfg = SmallRsaConfig();
  cfg.obfuscation_factor = 4.0;  // Lots of decoys.
  PropagationGraphProtocol proto(&f.net, f.host, f.providers, cfg);
  auto out = proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                       f.RngPtrs())
                 .ValueOrDie();
  for (const auto& pg : out.graphs) {
    for (NodeId v = 0; v < f.graph->num_nodes(); ++v) {
      for (const auto& arc : pg.OutArcs(v)) {
        EXPECT_TRUE(f.graph->HasArc(v, arc.to))
            << "PG contains non-social arc " << v << "->" << arc.to;
      }
    }
  }
}

TEST(Protocol6Test, ActionsNobodyPerformedYieldEmptyGraphs) {
  P6Fixture f(2);
  PropagationGraphProtocol proto(&f.net, f.host, f.providers,
                                 SmallRsaConfig());
  // Declare more actions than the log contains.
  auto out = proto.Run(*f.graph, 40, f.provider_logs, f.host_rng.get(),
                       f.RngPtrs())
                 .ValueOrDie();
  ASSERT_EQ(out.graphs.size(), 40u);
  for (ActionId a = f.log.MaxActionId(); a < 40; ++a) {
    EXPECT_EQ(out.graphs[a].num_arcs(), 0u);
  }
}

TEST(Protocol6Test, RelayedBytesAreCiphertextOnly) {
  P6Fixture f(3);
  PropagationGraphProtocol proto(&f.net, f.host, f.providers,
                                 SmallRsaConfig());
  ASSERT_TRUE(proto.Run(*f.graph, 25, f.provider_logs, f.host_rng.get(),
                        f.RngPtrs())
                  .ok());
  // P1 relayed the payloads of providers 2..m.
  EXPECT_GT(proto.views().p1_relayed_bytes, 0u);
}

TEST(Protocol6Test, Validation) {
  P6Fixture f(2);
  PropagationGraphProtocol one(&f.net, f.host, {f.providers[0]},
                               SmallRsaConfig());
  EXPECT_FALSE(one.Run(*f.graph, 25, {f.provider_logs[0]}, f.host_rng.get(),
                       {f.rngs[0].get()})
                   .ok());
  PropagationGraphProtocol proto(&f.net, f.host, f.providers,
                                 SmallRsaConfig());
  EXPECT_FALSE(proto.Run(*f.graph, 25, {f.provider_logs[0]},
                         f.host_rng.get(), f.RngPtrs())
                   .ok());
}

}  // namespace
}  // namespace psi
