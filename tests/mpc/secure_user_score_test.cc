#include "mpc/secure_user_score.h"

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/counters.h"
#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"

namespace psi {
namespace {

struct ScoreFixture {
  ScoreFixture(size_t num_providers, uint64_t seed = 23) : rng(seed) {
    graph = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, 30, 140).ValueOrDie());
    auto truth = GroundTruthInfluence::Uniform(*graph, 0.5);
    CascadeParams params;
    params.num_actions = 20;
    log = GenerateCascades(&rng, *graph, truth, params).ValueOrDie();
    provider_logs = ExclusivePartition(&rng, log, num_providers).ValueOrDie();

    host = net.RegisterParty("H");
    for (size_t k = 0; k < num_providers; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(seed * 10 + k));
    }
    host_rng = std::make_unique<Rng>(seed + 100);
    pair_secret = std::make_unique<Rng>(seed + 200);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }

  SecureScoreConfig Config(uint64_t tau = 12) {
    SecureScoreConfig cfg;
    cfg.protocol6.rsa_bits = 512;
    cfg.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
    cfg.score_options.tau = tau;
    return cfg;
  }

  Rng rng;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::unique_ptr<Rng> host_rng;
  std::unique_ptr<Rng> pair_secret;
};

TEST(SecureUserScoreTest, ScoresMatchPlaintextBaseline) {
  ScoreFixture f(3);
  auto cfg = f.Config();
  SecureUserScoreProtocol proto(&f.net, f.host, f.providers, cfg);
  auto scores = proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeUserInfluenceScores(*f.graph, f.log, cfg.score_options)
          .ValueOrDie();
  ASSERT_EQ(scores.size(), plain.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], plain[i], 1e-9) << "user " << i;
  }
}

TEST(SecureUserScoreTest, RevealedActionCountsAreExact) {
  ScoreFixture f(2);
  auto cfg = f.Config();
  SecureUserScoreProtocol proto(&f.net, f.host, f.providers, cfg);
  ASSERT_TRUE(proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                        f.RngPtrs(), f.pair_secret.get())
                  .ok());
  auto expected = ComputeActionCounts(f.log, f.graph->num_nodes());
  EXPECT_EQ(proto.revealed_action_counts(), expected);
}

TEST(SecureUserScoreTest, TauSweepConsistentWithPlaintext) {
  ScoreFixture f(2);
  for (uint64_t tau : {1u, 5u, 30u}) {
    auto cfg = f.Config(tau);
    SecureUserScoreProtocol proto(&f.net, f.host, f.providers, cfg);
    auto scores = proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                            f.RngPtrs(), f.pair_secret.get())
                      .ValueOrDie();
    auto plain =
        ComputeUserInfluenceScores(*f.graph, f.log, cfg.score_options)
            .ValueOrDie();
    for (size_t i = 0; i < scores.size(); ++i) {
      ASSERT_NEAR(scores[i], plain[i], 1e-9) << "tau " << tau;
    }
  }
}

TEST(SecureUserScoreTest, IncludeSelfIsRejected) {
  ScoreFixture f(2);
  auto cfg = f.Config();
  cfg.score_options.include_self = true;
  SecureUserScoreProtocol proto(&f.net, f.host, f.providers, cfg);
  auto result = proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                          f.RngPtrs(), f.pair_secret.get());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(SecureUserScoreTest, CleanMailboxesAfterRun) {
  ScoreFixture f(4);
  auto cfg = f.Config();
  SecureUserScoreProtocol proto(&f.net, f.host, f.providers, cfg);
  ASSERT_TRUE(proto.Run(*f.graph, 20, f.provider_logs, f.host_rng.get(),
                        f.RngPtrs(), f.pair_secret.get())
                  .ok());
  EXPECT_EQ(f.net.PendingCount(), 0u);
}

}  // namespace
}  // namespace psi
