#include "mpc/secure_division.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace psi {
namespace {

class SecureDivisionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    p1_ = net_.RegisterParty("P1");
    p2_ = net_.RegisterParty("P2");
    host_ = net_.RegisterParty("H");
  }
  Network net_;
  PartyId p1_, p2_, host_;
};

TEST_F(SecureDivisionTest, QuotientIsExact) {
  Rng r1(1), r2(2);
  SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
  double q = proto.Run(6, 4, &r1, &r2, "t.").ValueOrDie();
  EXPECT_NEAR(q, 1.5, 1e-9);
}

TEST_F(SecureDivisionTest, ZeroDenominatorYieldsZero) {
  Rng r1(3), r2(4);
  SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
  EXPECT_DOUBLE_EQ(proto.Run(5, 0, &r1, &r2, "t.").ValueOrDie(), 0.0);
}

TEST_F(SecureDivisionTest, ZeroNumerator) {
  Rng r1(5), r2(6);
  SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
  EXPECT_DOUBLE_EQ(proto.Run(0, 7, &r1, &r2, "t.").ValueOrDie(), 0.0);
}

TEST_F(SecureDivisionTest, RandomizedQuotientsAccurate) {
  Rng r1(7), r2(8), cases(9);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = cases.UniformU64(1000);
    uint64_t b = 1 + cases.UniformU64(999);
    SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
    double q = proto.Run(a, b, &r1, &r2, "t.").ValueOrDie();
    ASSERT_NEAR(q, static_cast<double>(a) / static_cast<double>(b), 1e-6);
  }
}

TEST_F(SecureDivisionTest, CommunicationPattern) {
  Rng r1(10), r2(11);
  SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
  ASSERT_TRUE(proto.Run(3, 7, &r1, &r2, "t.").ok());
  auto report = net_.Report();
  // Two joint-randomness rounds (2 messages each) + one masked round (2).
  EXPECT_EQ(report.num_rounds, 3u);
  EXPECT_EQ(report.num_messages, 6u);
  EXPECT_EQ(net_.PendingCount(), 0u);
}

TEST_F(SecureDivisionTest, HostSeesOnlyMaskedValues) {
  Rng r1(12), r2(13);
  const uint64_t a1 = 123, a2 = 456;
  SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
  ASSERT_TRUE(proto.Run(a1, a2, &r1, &r2, "t.").ok());
  const auto& v = proto.views();
  // The masked values hide the inputs: ratio preserved, magnitudes scaled.
  EXPECT_NE(v.masked_a1, static_cast<double>(a1));
  EXPECT_NE(v.masked_a2, static_cast<double>(a2));
  EXPECT_NEAR(v.masked_a1 / v.masked_a2, 123.0 / 456.0, 1e-9);
  // r = masked/actual must agree across the two values (same mask).
  EXPECT_NEAR(v.masked_a1 / 123.0, v.masked_a2 / 456.0, 1e-9);
}

TEST_F(SecureDivisionTest, MasksVaryAcrossRuns) {
  Rng r1(14), r2(15);
  SecureDivisionProtocol a(&net_, p1_, p2_, host_);
  SecureDivisionProtocol b(&net_, p1_, p2_, host_);
  ASSERT_TRUE(a.Run(10, 20, &r1, &r2, "t.").ok());
  ASSERT_TRUE(b.Run(10, 20, &r1, &r2, "t.").ok());
  EXPECT_NE(a.views().masked_a1, b.views().masked_a1);
}

TEST_F(SecureDivisionTest, MaskDistributionMatchesZTimesUniform) {
  // r = u * M with M ~ Z: P(M <= 2) = 1/2, so r is unbounded but small
  // masks dominate. Sanity-check the median of r over many runs.
  Rng r1(16), r2(17);
  std::vector<double> masks;
  for (int i = 0; i < 500; ++i) {
    SecureDivisionProtocol proto(&net_, p1_, p2_, host_);
    ASSERT_TRUE(proto.Run(1, 1, &r1, &r2, "t.").ok());
    masks.push_back(proto.views().masked_a1);  // r * 1 == r.
  }
  std::sort(masks.begin(), masks.end());
  double median = masks[masks.size() / 2];
  // Median of U(0,1)*Z: empirically ~ 0.9-1.1; assert a loose envelope.
  EXPECT_GT(median, 0.4);
  EXPECT_LT(median, 2.5);
  EXPECT_GT(masks.front(), 0.0);
}

}  // namespace
}  // namespace psi
