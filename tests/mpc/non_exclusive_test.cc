#include "mpc/non_exclusive.h"

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/counters.h"
#include "actionlog/generator.h"
#include "graph/generators.h"
#include "influence/link_influence.h"

namespace psi {
namespace {

struct PipelineFixture {
  PipelineFixture(size_t num_providers, size_t num_classes, uint64_t seed = 41)
      : rng(seed) {
    graph = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, 30, 150).ValueOrDie());
    auto truth = GroundTruthInfluence::Random(&rng, *graph, 0.1, 0.7);
    CascadeParams params;
    params.num_actions = 50;
    log = GenerateCascades(&rng, *graph, truth, params).ValueOrDie();
    class_config = ActionClassConfig::Random(&rng, 50, num_classes,
                                             num_providers, 2,
                                             num_providers)
                       .ValueOrDie();
    provider_logs =
        NonExclusivePartition(&rng, log, num_providers, class_config)
            .ValueOrDie();

    host = net.RegisterParty("H");
    for (size_t k = 0; k < num_providers; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(seed * 10 + k));
    }
    host_rng = std::make_unique<Rng>(seed + 1);
    pair_secret = std::make_unique<Rng>(seed + 2);
    class_secret = std::make_unique<Rng>(seed + 3);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }

  Rng rng;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  ActionClassConfig class_config;
  std::vector<ActionLog> provider_logs;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::unique_ptr<Rng> host_rng, pair_secret, class_secret;
};

TEST(NonExclusiveTest, PipelineMatchesPlaintextOnUnifiedLog) {
  PipelineFixture f(4, 5);
  NonExclusiveConfig cfg;
  cfg.protocol4.h = 4;
  NonExclusivePipeline pipe(&f.net, f.host, f.providers, cfg);
  auto secure = pipe.Run(*f.graph, 50, f.provider_logs, f.class_config,
                         f.host_rng.get(), f.RngPtrs(), f.pair_secret.get(),
                         f.class_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 30, 4).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9) << "arc " << e;
  }
  EXPECT_EQ(f.net.PendingCount(), 0u);
}

TEST(NonExclusiveTest, NaiveLocalEstimatesUnderestimateInfluence) {
  // The paper's motivation: without conjoining, cross-provider follows are
  // invisible. The naive union of per-provider estimates must miss
  // episodes the pipeline finds.
  PipelineFixture f(4, 3);
  // Naive: each provider computes b over its own log only; sum the b's.
  std::vector<Arc> arcs = f.graph->arcs();
  uint64_t naive_total = 0;
  for (const auto& l : f.provider_logs) {
    for (uint64_t b : ComputeFollowCounts(l, arcs, 4)) naive_total += b;
  }
  uint64_t unified_total = 0;
  for (uint64_t b : ComputeFollowCounts(f.log, arcs, 4)) unified_total += b;
  EXPECT_LT(naive_total, unified_total)
      << "expected cross-provider follow episodes to be lost locally";
}

TEST(NonExclusiveTest, WeightedVariantThroughPipeline) {
  PipelineFixture f(3, 3);
  NonExclusiveConfig cfg;
  cfg.protocol4.h = 4;
  cfg.protocol4.weights = TemporalWeights::ExponentialDecay(4, 0.5);
  NonExclusivePipeline pipe(&f.net, f.host, f.providers, cfg);
  auto secure = pipe.Run(*f.graph, 50, f.provider_logs, f.class_config,
                         f.host_rng.get(), f.RngPtrs(), f.pair_secret.get(),
                         f.class_secret.get())
                    .ValueOrDie();
  auto plain = ComputeWeightedLinkInfluence(f.log, f.graph->arcs(), 30,
                                            *cfg.protocol4.weights)
                   .ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-3) << "arc " << e;
  }
}

TEST(NonExclusiveTest, SingleProviderClassesSkipProtocol5) {
  PipelineFixture f(3, 2);
  // Force single-provider groups: effectively the exclusive case.
  for (auto& group : f.class_config.provider_groups) group.resize(1);
  auto logs = NonExclusivePartition(&f.rng, f.log, 3, f.class_config)
                  .ValueOrDie();
  NonExclusiveConfig cfg;
  NonExclusivePipeline pipe(&f.net, f.host, f.providers, cfg);
  auto secure = pipe.Run(*f.graph, 50, logs, f.class_config,
                         f.host_rng.get(), f.RngPtrs(), f.pair_secret.get(),
                         f.class_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 30, cfg.protocol4.h)
          .ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9);
  }
  // No Protocol 5 rounds: exactly the 8 rounds of Protocol 4.
  EXPECT_EQ(f.net.Report().num_rounds, 8u);
}

TEST(NonExclusiveTest, MergeAggregatesAddsCounters) {
  AggregatedClassCounters a, b;
  a.a = {1, 2, 0};
  b.a = {0, 3, 5};
  a.c_by_delay[42] = {1, 0};
  b.c_by_delay[42] = {2, 2};
  b.c_by_delay[7] = {9, 9};
  MergeAggregates(b, &a);
  EXPECT_EQ(a.a, (std::vector<uint64_t>{1, 5, 5}));
  EXPECT_EQ(a.c_by_delay[42], (std::vector<uint64_t>{3, 2}));
  EXPECT_EQ(a.c_by_delay[7], (std::vector<uint64_t>{9, 9}));
}

TEST(NonExclusiveTest, BasicObfuscationPipelineAlsoExact) {
  PipelineFixture f(3, 4);
  NonExclusiveConfig cfg;
  cfg.protocol5.method = ObfuscationMethod::kBasic;
  NonExclusivePipeline pipe(&f.net, f.host, f.providers, cfg);
  auto secure = pipe.Run(*f.graph, 50, f.provider_logs, f.class_config,
                         f.host_rng.get(), f.RngPtrs(), f.pair_secret.get(),
                         f.class_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 30, cfg.protocol4.h)
          .ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.p[e], plain.p[e], 1e-9);
  }
}

TEST(NonExclusiveTest, Validation) {
  PipelineFixture f(3, 2);
  NonExclusiveConfig cfg;
  NonExclusivePipeline pipe(&f.net, f.host, f.providers, cfg);
  std::vector<ActionLog> wrong{f.provider_logs[0]};
  EXPECT_FALSE(pipe.Run(*f.graph, 50, wrong, f.class_config,
                        f.host_rng.get(), f.RngPtrs(), f.pair_secret.get(),
                        f.class_secret.get())
                   .ok());
  ActionClassConfig bad;
  EXPECT_FALSE(pipe.Run(*f.graph, 50, f.provider_logs, bad, f.host_rng.get(),
                        f.RngPtrs(), f.pair_secret.get(),
                        f.class_secret.get())
                   .ok());
}

}  // namespace
}  // namespace psi
