#include "mpc/wire.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/serialize.h"
#include "mpc/class_aggregation.h"

namespace psi {
namespace {

// Builds a buffer whose leading varint claims `count` elements but which
// carries only `payload_bytes` further bytes.
std::vector<uint8_t> CountOnlyBuffer(uint64_t count, size_t payload_bytes) {
  BinaryWriter w;
  w.WriteVarU64(count);
  for (size_t i = 0; i < payload_bytes; ++i) w.WriteU8(0);
  return w.TakeBuffer();
}

TEST(WireArcs, RoundTrips) {
  std::vector<Arc> arcs = {{1, 2}, {3, 4}, {0, 7}};
  std::vector<Arc> decoded;
  ASSERT_TRUE(wire::UnpackArcs(wire::PackArcs(arcs), &decoded).ok());
  EXPECT_EQ(decoded, arcs);
}

TEST(WireArcs, RoundTripsEmpty) {
  std::vector<Arc> decoded = {{9, 9}};
  ASSERT_TRUE(wire::UnpackArcs(wire::PackArcs({}), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

// Regression: the old decoder resized to the claimed count before reading a
// single element, so a 10-byte buffer could demand a huge allocation.
TEST(WireArcs, RejectsCountExceedingBuffer) {
  auto buf = CountOnlyBuffer(std::numeric_limits<uint32_t>::max(), 8);
  std::vector<Arc> decoded;
  EXPECT_FALSE(wire::UnpackArcs(buf, &decoded).ok());
}

TEST(WireArcs, RejectsTruncatedElement) {
  auto good = wire::PackArcs({{1, 2}, {3, 4}});
  good.pop_back();
  std::vector<Arc> decoded;
  EXPECT_FALSE(wire::UnpackArcs(good, &decoded).ok());
}

TEST(WireArcs, RejectsTrailingBytes) {
  auto good = wire::PackArcs({{1, 2}});
  good.push_back(0);
  std::vector<Arc> decoded;
  EXPECT_FALSE(wire::UnpackArcs(good, &decoded).ok());
}

TEST(WireBigUInts, RoundTrips) {
  std::vector<BigUInt> v = {BigUInt(0), BigUInt(42), BigUInt(7) << 100};
  std::vector<BigUInt> decoded;
  ASSERT_TRUE(wire::UnpackBigUInts(wire::PackBigUInts(v), &decoded).ok());
  ASSERT_EQ(decoded.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(decoded[i], v[i]);
}

TEST(WireBigUInts, RejectsCountExceedingBuffer) {
  auto buf = CountOnlyBuffer(uint64_t{1} << 40, 4);
  std::vector<BigUInt> decoded;
  EXPECT_FALSE(wire::UnpackBigUInts(buf, &decoded).ok());
}

// Regression for ReadBigUInt itself: a tiny buffer used to pass the fixed
// 2^24 limb cap and drive a multi-hundred-megabyte allocation.
TEST(WireBigUInts, RejectsElementLimbCountExceedingBuffer) {
  BinaryWriter w;
  w.WriteVarU64(1);          // one BigUInt follows
  w.WriteVarU64(1u << 20);   // ... claiming 2^20 limbs (8 MiB)
  w.WriteU64(7);             // ... with one actual limb
  std::vector<BigUInt> decoded;
  EXPECT_FALSE(wire::UnpackBigUInts(w.TakeBuffer(), &decoded).ok());
}

TEST(WireBigInts, RoundTrips) {
  std::vector<BigInt> v = {BigInt(0), BigInt(-42), BigInt(BigUInt(99))};
  std::vector<BigInt> decoded;
  ASSERT_TRUE(wire::UnpackBigInts(wire::PackBigInts(v), &decoded).ok());
  ASSERT_EQ(decoded.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(decoded[i], v[i]);
}

// Regression: the old secure_user_score decoder read the count with a plain
// ReadVarU64 and resized immediately.
TEST(WireBigInts, RejectsCountExceedingBuffer) {
  auto buf = CountOnlyBuffer(uint64_t{1} << 40, 4);
  std::vector<BigInt> decoded;
  EXPECT_FALSE(wire::UnpackBigInts(buf, &decoded).ok());
}

TEST(WireBigInts, RejectsTrailingBytes) {
  auto good = wire::PackBigInts({BigInt(5)});
  good.push_back(0);
  std::vector<BigInt> decoded;
  EXPECT_FALSE(wire::UnpackBigInts(good, &decoded).ok());
}

TEST(WireRecords, RoundTrips) {
  std::vector<ActionRecord> recs = {{1, 2, 30}, {4, 5, 60}};
  std::vector<ActionRecord> decoded;
  ASSERT_TRUE(wire::UnpackRecords(wire::PackRecords(recs), &decoded).ok());
  EXPECT_EQ(decoded, recs);
}

// Regression: the old class_aggregation decoder resized to the claimed
// record count before reading any 16-byte record.
TEST(WireRecords, RejectsCountExceedingBuffer) {
  auto buf = CountOnlyBuffer(uint64_t{1} << 32, 16);
  std::vector<ActionRecord> decoded;
  EXPECT_FALSE(wire::UnpackRecords(buf, &decoded).ok());
}

TEST(WireRecords, RejectsTruncatedElement) {
  auto good = wire::PackRecords({{1, 2, 3}});
  good.pop_back();
  std::vector<ActionRecord> decoded;
  EXPECT_FALSE(wire::UnpackRecords(good, &decoded).ok());
}

TEST(CountersCodec, RoundTrips) {
  internal::ObfuscatedCounters counters;
  counters.a = {{3, 7}, {9, 1}};
  counters.c = {{42, {1, 0, 2}}, {99, {0, 5, 0}}};
  const uint64_t h = 3;
  internal::ObfuscatedCounters decoded;
  ASSERT_TRUE(
      internal::UnpackCounters(internal::PackCounters(counters, h), h, &decoded)
          .ok());
  EXPECT_EQ(decoded.a, counters.a);
  EXPECT_EQ(decoded.c, counters.c);
}

// Regression: both loop bounds used to come straight from unchecked
// varints, so a short buffer could spin the decode loops billions of times.
TEST(CountersCodec, RejectsACountExceedingBuffer) {
  auto buf = CountOnlyBuffer(uint64_t{1} << 40, 5);
  internal::ObfuscatedCounters decoded;
  EXPECT_FALSE(internal::UnpackCounters(buf, /*h=*/4, &decoded).ok());
}

TEST(CountersCodec, RejectsCCountExceedingBuffer) {
  BinaryWriter w;
  w.WriteVarU64(0);                 // no a-entries
  w.WriteVarU64(uint64_t{1} << 40); // absurd c-entry count
  w.WriteU64(0);
  internal::ObfuscatedCounters decoded;
  EXPECT_FALSE(internal::UnpackCounters(w.TakeBuffer(), /*h=*/4, &decoded).ok());
}

TEST(CountersCodec, RejectsTrailingBytes) {
  internal::ObfuscatedCounters counters;
  counters.a = {{1, 1}};
  const uint64_t h = 2;
  auto buf = internal::PackCounters(counters, h);
  buf.push_back(0);
  internal::ObfuscatedCounters decoded;
  EXPECT_FALSE(internal::UnpackCounters(buf, h, &decoded).ok());
}

TEST(WireU64s, RoundTrips) {
  std::vector<uint64_t> values = {0, 1, UINT64_MAX, 1ull << 40, 42};
  std::vector<uint64_t> decoded = {9};
  ASSERT_TRUE(wire::UnpackU64s(wire::PackU64s(values), &decoded).ok());
  EXPECT_EQ(decoded, values);

  ASSERT_TRUE(wire::UnpackU64s(wire::PackU64s({}), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(WireU64s, RejectsOversizedCount) {
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(
      wire::UnpackU64s(CountOnlyBuffer(1ull << 40, 16), &decoded).ok());
}

TEST(WireU64s, RejectsTruncationAndTrailingBytes) {
  auto buf = wire::PackU64s({7, 8, 9});
  std::vector<uint64_t> decoded;
  for (size_t len = 0; len < buf.size(); ++len) {
    std::vector<uint8_t> prefix(buf.begin(),
                                buf.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(wire::UnpackU64s(prefix, &decoded).ok()) << "len=" << len;
  }
  buf.push_back(0);
  EXPECT_FALSE(wire::UnpackU64s(buf, &decoded).ok());
}

}  // namespace
}  // namespace psi
