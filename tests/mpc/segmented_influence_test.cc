#include "mpc/segmented_influence.h"

#include <gtest/gtest.h>

#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"

namespace psi {
namespace {

struct SegFixture {
  SegFixture(size_t num_providers, uint32_t num_segments, uint64_t seed = 71)
      : rng(seed) {
    graph = std::make_unique<SocialGraph>(
        ErdosRenyiArcs(&rng, 25, 120).ValueOrDie());
    auto truth = GroundTruthInfluence::Random(&rng, *graph, 0.1, 0.7);
    CascadeParams params;
    params.num_actions = 60;
    log = GenerateCascades(&rng, *graph, truth, params).ValueOrDie();
    provider_logs =
        ExclusivePartition(&rng, log, num_providers).ValueOrDie();
    segments.resize(60);
    for (auto& g : segments) {
      g = static_cast<uint32_t>(rng.UniformU64(num_segments));
    }

    host = net.RegisterParty("H");
    for (size_t k = 0; k < num_providers; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rng_store.push_back(std::make_unique<Rng>(seed + k));
    }
    host_rng = std::make_unique<Rng>(seed + 100);
    pair_secret = std::make_unique<Rng>(seed + 200);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rng_store) out.push_back(r.get());
    return out;
  }

  Rng rng;
  std::unique_ptr<SocialGraph> graph;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
  std::vector<uint32_t> segments;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> rng_store;
  std::unique_ptr<Rng> host_rng;
  std::unique_ptr<Rng> pair_secret;
};

TEST(SegmentedInfluenceTest, MatchesPlaintextPerSegment) {
  SegFixture f(3, 4);
  Protocol4Config cfg;
  cfg.h = 4;
  SegmentedInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 60, f.provider_logs, f.segments, 4,
                          f.host_rng.get(), f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain = ComputeSegmentedLinkInfluence(f.log, f.graph->arcs(), 25, 4,
                                             f.segments, 4)
                   .ValueOrDie();
  ASSERT_EQ(secure.num_segments(), 4u);
  for (uint32_t g = 0; g < 4; ++g) {
    for (size_t e = 0; e < plain.per_segment[g].p.size(); ++e) {
      EXPECT_NEAR(secure.per_segment[g].p[e], plain.per_segment[g].p[e],
                  1e-9)
          << "segment " << g << " arc " << e;
    }
  }
  EXPECT_EQ(f.net.PendingCount(), 0u);
}

TEST(SegmentedInfluenceTest, KeepsProtocol4RoundCount) {
  SegFixture f(3, 5);
  Protocol4Config cfg;
  SegmentedInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  ASSERT_TRUE(proto.Run(*f.graph, 60, f.provider_logs, f.segments, 5,
                        f.host_rng.get(), f.RngPtrs(), f.pair_secret.get())
                  .ok());
  // Same eight rounds and m^2+m+7 messages as the unsegmented protocol:
  // segmentation only widens the batches.
  EXPECT_EQ(f.net.Report().num_rounds, 8u);
  EXPECT_EQ(f.net.Report().num_messages, 3u * 3u + 3u + 7u);
}

TEST(SegmentedInfluenceTest, OneSegmentMatchesProtocol4Semantics) {
  SegFixture f(2, 1);
  std::fill(f.segments.begin(), f.segments.end(), 0u);
  Protocol4Config cfg;
  SegmentedInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  auto secure = proto.Run(*f.graph, 60, f.provider_logs, f.segments, 1,
                          f.host_rng.get(), f.RngPtrs(), f.pair_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(f.log, f.graph->arcs(), 25, cfg.h).ValueOrDie();
  for (size_t e = 0; e < plain.p.size(); ++e) {
    EXPECT_NEAR(secure.per_segment[0].p[e], plain.p[e], 1e-9);
  }
}

TEST(SegmentedInfluenceTest, Validation) {
  SegFixture f(2, 2);
  Protocol4Config cfg;
  SegmentedInfluenceProtocol proto(&f.net, f.host, f.providers, cfg);
  EXPECT_FALSE(proto.Run(*f.graph, 60, f.provider_logs, f.segments, 0,
                         f.host_rng.get(), f.RngPtrs(), f.pair_secret.get())
                   .ok());
  Protocol4Config wcfg;
  wcfg.weights = TemporalWeights::Uniform(4);
  SegmentedInfluenceProtocol wproto(&f.net, f.host, f.providers, wcfg);
  EXPECT_EQ(wproto
                .Run(*f.graph, 60, f.provider_logs, f.segments, 2,
                     f.host_rng.get(), f.RngPtrs(), f.pair_secret.get())
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace psi
