// Unit tests for the session/recovery layer (mpc/session.h): durable state
// serialization, retry orchestration, RNG rewind, and the crypto-op ledger.

#include "mpc/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/serialize.h"

namespace psi {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) { return v; }

TEST(SessionStateTest, PutGetHasClear) {
  SessionState state;
  EXPECT_FALSE(state.Has("omega"));
  EXPECT_EQ(state.NumEntries(), 0u);
  state.Put("omega", Bytes({1, 2, 3}));
  state.Put("masks", Bytes({9}));
  EXPECT_TRUE(state.Has("omega"));
  EXPECT_EQ(state.NumEntries(), 2u);
  EXPECT_EQ(state.ByteSize(), 5u + 5u + 3u + 1u);  // keys 5+5, values 3+1.
  EXPECT_EQ(state.Get("omega").ValueOrDie(), Bytes({1, 2, 3}));
  state.Put("omega", Bytes({7}));  // Overwrite.
  EXPECT_EQ(state.Get("omega").ValueOrDie(), Bytes({7}));
  state.Clear();
  EXPECT_EQ(state.NumEntries(), 0u);
  EXPECT_FALSE(state.Has("omega"));
}

TEST(SessionStateTest, GetMissingKeyIsFailedPrecondition) {
  SessionState state;
  auto result = state.Get("absent");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionStateTest, SerializeRoundTrips) {
  SessionState state;
  state.Put("a", Bytes({}));  // Empty values are legal.
  state.Put("counters", Bytes({0, 255, 128}));
  state.Put("pubkey", std::vector<uint8_t>(300, 0x5a));
  auto restored = SessionState::Deserialize(state.Serialize()).ValueOrDie();
  EXPECT_EQ(restored.NumEntries(), 3u);
  EXPECT_EQ(restored.Get("a").ValueOrDie(), Bytes({}));
  EXPECT_EQ(restored.Get("counters").ValueOrDie(), Bytes({0, 255, 128}));
  EXPECT_EQ(restored.Get("pubkey").ValueOrDie(),
            std::vector<uint8_t>(300, 0x5a));
  // Byte-stable: serializing the restored state reproduces the buffer.
  EXPECT_EQ(restored.Serialize(), state.Serialize());
}

TEST(SessionStateTest, EmptyStateRoundTrips) {
  auto restored = SessionState::Deserialize(SessionState().Serialize());
  EXPECT_EQ(restored.ValueOrDie().NumEntries(), 0u);
}

TEST(SessionStateTest, DeserializeRejectsTruncationAtEveryPrefix) {
  SessionState state;
  state.Put("key", Bytes({1, 2, 3, 4}));
  state.Put("second", Bytes({5}));
  const std::vector<uint8_t> buf = state.Serialize();
  for (size_t len = 0; len < buf.size(); ++len) {
    std::vector<uint8_t> prefix(buf.begin(),
                                buf.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(SessionState::Deserialize(prefix).ok()) << "len=" << len;
  }
}

TEST(SessionStateTest, DeserializeRejectsWrongVersion) {
  SessionState state;
  state.Put("key", Bytes({1}));
  std::vector<uint8_t> buf = state.Serialize();
  buf[0] ^= 0xFF;  // Version is the leading u32.
  auto result = SessionState::Deserialize(buf);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSerializationError);
}

TEST(SessionStateTest, DeserializeRejectsTrailingBytes) {
  SessionState state;
  state.Put("key", Bytes({1}));
  std::vector<uint8_t> buf = state.Serialize();
  buf.push_back(0);
  auto result = SessionState::Deserialize(buf);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSerializationError);
}

TEST(SessionStateTest, DeserializeRejectsDuplicateKeys) {
  BinaryWriter w;
  w.WriteU32(kSessionStateVersion);
  w.WriteVarU64(2);
  w.WriteString("dup");
  w.WriteBytes(Bytes({1}));
  w.WriteString("dup");
  w.WriteBytes(Bytes({2}));
  auto result = SessionState::Deserialize(w.TakeBuffer());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSerializationError);
}

TEST(SessionStateTest, DeserializeRejectsOversizedCount) {
  BinaryWriter w;
  w.WriteU32(kSessionStateVersion);
  w.WriteVarU64(1u << 30);  // Claims a billion entries in a tiny buffer.
  auto result = SessionState::Deserialize(w.TakeBuffer());
  EXPECT_FALSE(result.ok());
}

// -- Orchestrator -----------------------------------------------------------

struct TestWorld {
  Network net;
  PartyId alice;
  PartyId bob;
  TestWorld() : alice(net.RegisterParty("A")), bob(net.RegisterParty("B")) {}
};

TEST(SessionOrchestratorTest, RunsAllStagesOnceWhenNothingFails) {
  TestWorld w;
  ProtocolSession session("t", &w.net, {w.alice, w.bob});
  int runs = 0;
  session.AddStage("one", [&] {
    ++runs;
    return Status::OK();
  });
  session.AddStage("two", [&] {
    ++runs;
    return Status::OK();
  });
  SessionOrchestrator orchestrator(RetryPolicy{});
  ASSERT_TRUE(orchestrator.Run(&session).ok());
  EXPECT_EQ(runs, 2);
  const SessionStats& stats = orchestrator.stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.resumes, 0u);
  EXPECT_EQ(stats.stages_run, 2u);
  EXPECT_EQ(stats.stages_resumed, 0u);
  EXPECT_EQ(stats.checkpoints_written, 2u);
  EXPECT_EQ(stats.handshake_messages, 0u);
  EXPECT_EQ(stats.backoff_rounds, 0u);
  EXPECT_EQ(w.net.PendingCount(), 0u);
}

TEST(SessionOrchestratorTest, ResumesOnlyTheFailedStage) {
  TestWorld w;
  ProtocolSession session("t", &w.net, {w.alice, w.bob});
  int stage1_runs = 0, stage2_runs = 0;
  session.AddStage("one", [&] {
    ++stage1_runs;
    return Status::OK();
  });
  session.AddStage("two", [&] {
    ++stage2_runs;
    return stage2_runs == 1 ? Status::ProtocolError("transient") : Status::OK();
  });
  SessionOrchestrator orchestrator(RetryPolicy{});
  ASSERT_TRUE(orchestrator.Run(&session).ok());
  EXPECT_EQ(stage1_runs, 1);  // Resumed from the checkpoint, never replayed.
  EXPECT_EQ(stage2_runs, 2);
  const SessionStats& stats = orchestrator.stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.resumes, 1u);
  EXPECT_EQ(stats.stages_run, 3u);
  EXPECT_EQ(stats.stages_resumed, 1u);
  // Two parties -> two ordered pairs -> two sync frames per handshake.
  EXPECT_EQ(stats.handshake_messages, 2u);
  EXPECT_GT(stats.handshake_bytes, 0u);
  EXPECT_EQ(w.net.PendingCount(), 0u);
}

TEST(SessionOrchestratorTest, ExhaustsAttemptBudgetWithWrappedError) {
  TestWorld w;
  ProtocolSession session("doomed", &w.net, {w.alice, w.bob});
  session.AddStage("always-fails",
                   [&] { return Status::ProtocolError("peer sent garbage"); });
  RetryPolicy retry;
  retry.max_attempts = 2;
  SessionOrchestrator orchestrator(retry);
  Status status = orchestrator.Run(&session);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("doomed"), std::string::npos);
  EXPECT_NE(status.message().find("2 attempt"), std::string::npos);
  EXPECT_NE(status.message().find("peer sent garbage"), std::string::npos);
  EXPECT_EQ(orchestrator.stats().attempts, 2u);
  EXPECT_EQ(w.net.PendingCount(), 0u);
}

TEST(SessionOrchestratorTest, LedgerSavesCheckpointedCryptoOps) {
  TestWorld w;
  ProtocolSession session("t", &w.net, {w.alice, w.bob});
  int stage2_runs = 0;
  session.AddStage("expensive", [&] {
    session.MeterCryptoOps(10);
    return Status::OK();
  });
  session.AddStage("flaky", [&] {
    session.MeterCryptoOps(3);
    ++stage2_runs;
    return stage2_runs == 1 ? Status::ProtocolError("transient") : Status::OK();
  });
  SessionOrchestrator orchestrator(RetryPolicy{});
  ASSERT_TRUE(orchestrator.Run(&session).ok());
  const SessionStats& stats = orchestrator.stats();
  EXPECT_EQ(stats.crypto_ops_total, 10u + 3u + 3u);
  EXPECT_EQ(stats.crypto_ops_saved, 10u);
  EXPECT_EQ(stats.crypto_ops_recomputed, 0u);
}

TEST(SessionOrchestratorTest, FullRestartBaselineRecomputesOps) {
  TestWorld w;
  ProtocolSession session("t", &w.net, {w.alice, w.bob});
  int stage2_runs = 0;
  session.AddStage("expensive", [&] {
    session.MeterCryptoOps(10);
    return Status::OK();
  });
  session.AddStage("flaky", [&] {
    ++stage2_runs;
    return stage2_runs == 1 ? Status::ProtocolError("transient") : Status::OK();
  });
  RetryPolicy retry;
  retry.resume_from_checkpoint = false;
  SessionOrchestrator orchestrator(retry);
  ASSERT_TRUE(orchestrator.Run(&session).ok());
  const SessionStats& stats = orchestrator.stats();
  // The retry replays the expensive stage from scratch: its ops are redone.
  EXPECT_EQ(stats.crypto_ops_recomputed, 10u);
  EXPECT_EQ(stats.crypto_ops_saved, 0u);
  EXPECT_EQ(stats.stages_resumed, 0u);
}

TEST(SessionOrchestratorTest, RngRewindReplaysIdenticalDraws) {
  TestWorld w;
  Rng rng(42);
  ProtocolSession session("t", &w.net, {w.alice, w.bob});
  session.RegisterRng("shared", &rng);
  uint64_t first_draw = 0, second_draw = 0;
  int runs = 0;
  session.AddStage("one", [&] { return Status::OK(); });
  session.AddStage("draws", [&] {
    ++runs;
    if (runs == 1) {
      first_draw = rng.NextU64();
      return Status::ProtocolError("fail after drawing");
    }
    second_draw = rng.NextU64();
    return Status::OK();
  });
  SessionOrchestrator orchestrator(RetryPolicy{});
  ASSERT_TRUE(orchestrator.Run(&session).ok());
  // The checkpoint rewound the stream: the replay re-derives the same bits,
  // which is what makes recovered transcripts converge bitwise.
  EXPECT_EQ(second_draw, first_draw);
}

TEST(SessionOrchestratorTest, RestoreDiscardsFailedAttemptStateWrites) {
  TestWorld w;
  ProtocolSession session("t", &w.net, {w.alice, w.bob});
  int stage2_runs = 0;
  std::vector<uint8_t> seen_on_replay;
  session.AddStage("writes", [&] {
    session.PartyState(w.alice).Put("x", Bytes({1}));
    return Status::OK();
  });
  session.AddStage("clobbers-then-fails", [&] {
    ++stage2_runs;
    if (stage2_runs == 1) {
      session.PartyState(w.alice).Put("x", Bytes({2}));
      return Status::ProtocolError("fail after clobbering");
    }
    seen_on_replay = session.PartyState(w.alice).Get("x").ValueOrDie();
    return Status::OK();
  });
  SessionOrchestrator orchestrator(RetryPolicy{});
  ASSERT_TRUE(orchestrator.Run(&session).ok());
  // The replayed stage sees the checkpointed value, not the failed write.
  EXPECT_EQ(seen_on_replay, Bytes({1}));
}

TEST(SessionOrchestratorTest, BackoffScheduleIsDeterministic) {
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_jitter_rounds = 3;
  uint64_t first_backoff = 0;
  for (int run = 0; run < 2; ++run) {
    TestWorld w;
    ProtocolSession session("t", &w.net, {w.alice, w.bob});
    session.AddStage("always-fails",
                     [&] { return Status::ProtocolError("down"); });
    SessionOrchestrator orchestrator(retry);
    EXPECT_FALSE(orchestrator.Run(&session).ok());
    if (run == 0) {
      first_backoff = orchestrator.stats().backoff_rounds;
    } else {
      EXPECT_EQ(orchestrator.stats().backoff_rounds, first_backoff);
    }
  }
  // 3 retries with base 1, cap 8: deterministic 1+2+4 plus seeded jitter.
  EXPECT_GE(first_backoff, 7u);
  EXPECT_LE(first_backoff, 7u + 3u * 3u);
}

TEST(SessionOrchestratorTest, RejectsDegenerateSessions) {
  TestWorld w;
  SessionOrchestrator orchestrator(RetryPolicy{});
  EXPECT_FALSE(orchestrator.Run(nullptr).ok());

  ProtocolSession no_stages("t", &w.net, {w.alice, w.bob});
  EXPECT_FALSE(orchestrator.Run(&no_stages).ok());

  ProtocolSession one_party("t", &w.net, {w.alice});
  one_party.AddStage("s", [] { return Status::OK(); });
  EXPECT_FALSE(orchestrator.Run(&one_party).ok());

  RetryPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  SessionOrchestrator rejecting(zero_attempts);
  ProtocolSession fine("t", &w.net, {w.alice, w.bob});
  fine.AddStage("s", [] { return Status::OK(); });
  EXPECT_FALSE(rejecting.Run(&fine).ok());
}

}  // namespace
}  // namespace psi
