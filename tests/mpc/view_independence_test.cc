// Semi-honest view-independence properties: the *distribution* of what a
// non-output party observes must not depend on the other parties' inputs
// (the simulation argument of Section 4.1, tested statistically).

#include <gtest/gtest.h>

#include <memory>

#include "common/stats.h"
#include "mpc/secure_sum.h"

namespace psi {
namespace {

// Collects the values player `observer` receives during Protocol 1 runs with
// the given inputs, as coarse histogram buckets over Z_S.
std::vector<uint64_t> ObserveShareHistogram(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t seed,
    size_t observer, size_t runs, size_t buckets, uint64_t s_val) {
  std::vector<uint64_t> histogram(buckets, 0);
  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> players{net.RegisterParty("P1"),
                               net.RegisterParty("P2"),
                               net.RegisterParty("P3")};
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(100);
  cfg.modulus_s = BigUInt(s_val);
  Rng r1(seed), r2(seed + 1), r3(seed + 2);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  for (size_t run = 0; run < runs; ++run) {
    SecureSumProtocol proto(&net, players, host, cfg);
    auto shares = proto.RunProtocol1(inputs, rngs, "vi.").ValueOrDie();
    uint64_t observed = proto.views()
                            .player_share_vectors[observer][0]
                            .ToUint64()
                            .ValueOrDie();
    ++histogram[observed * buckets / s_val];
  }
  return histogram;
}

// Two-sample chi-squared statistic.
double TwoSampleChi2(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  double chi2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double ai = static_cast<double>(a[i]);
    double bi = static_cast<double>(b[i]);
    double total = ai + bi;
    if (total == 0) continue;
    // Equal sample sizes: expected half/half.
    chi2 += (ai - bi) * (ai - bi) / total;
  }
  return chi2;
}

TEST(ViewIndependenceTest, Protocol1ShareDistributionIgnoresInputs) {
  // Player P3's accumulated share must be distributed identically whether
  // the inputs are (0, 0, 0) or (33, 41, 26): 16 buckets, 4000 runs each.
  const uint64_t s_val = 4096;
  auto zeros = ObserveShareHistogram({{0}, {0}, {0}}, 900, /*observer=*/2,
                                     4000, 16, s_val);
  auto loaded = ObserveShareHistogram({{33}, {41}, {26}}, 901, /*observer=*/2,
                                      4000, 16, s_val);
  // 15 dof; 99.9th percentile ~ 37.7.
  EXPECT_LT(TwoSampleChi2(zeros, loaded), 38.0);
  // And each is individually uniform.
  EXPECT_LT(ChiSquaredUniform(zeros), 38.0);
  EXPECT_LT(ChiSquaredUniform(loaded), 38.0);
}

TEST(ViewIndependenceTest, Protocol1P1ShareAlsoInputIndependent) {
  const uint64_t s_val = 4096;
  auto zeros = ObserveShareHistogram({{0}, {0}, {0}}, 902, /*observer=*/0,
                                     4000, 16, s_val);
  auto loaded = ObserveShareHistogram({{99}, {1}, {0}}, 903, /*observer=*/0,
                                      4000, 16, s_val);
  EXPECT_LT(TwoSampleChi2(zeros, loaded), 38.0);
}

TEST(ViewIndependenceTest, ShareOfSameRunsDifferAcrossCounters) {
  // Within one batched run, shares of different counters are independent:
  // the share values of counter 0 and counter 1 must not be correlated.
  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> players{net.RegisterParty("P1"),
                               net.RegisterParty("P2")};
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(10);
  cfg.modulus_s = BigUInt(1u << 20);
  Rng r1(1), r2(2);
  std::vector<Rng*> rngs{&r1, &r2};
  std::vector<double> share0, share1;
  for (int run = 0; run < 500; ++run) {
    SecureSumProtocol proto(&net, players, host, cfg);
    auto shares =
        proto.RunProtocol1({{5, 5}, {3, 3}}, rngs, "vi.").ValueOrDie();
    share0.push_back(shares.s1[0].ToDouble());
    share1.push_back(shares.s1[1].ToDouble());
  }
  EXPECT_LT(std::abs(PearsonCorrelation(share0, share1)), 0.12);
}

}  // namespace
}  // namespace psi
