#include "mpc/secure_sum.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "bigint/modular.h"
#include "common/stats.h"
#include "privacy/leakage.h"

namespace psi {
namespace {

// Test harness: m providers + a host acting as third party for m == 2.
struct SumFixture {
  explicit SumFixture(size_t m) {
    host = net.RegisterParty("H");
    for (size_t k = 0; k < m; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(1000 + k));
    }
    pair_secret = std::make_unique<Rng>(555);
  }

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : rngs) out.push_back(r.get());
    return out;
  }

  PartyId ThirdParty() const {
    return providers.size() > 2 ? providers[2] : host;
  }

  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::unique_ptr<Rng> pair_secret;
};

SecureSumConfig MakeConfig(uint64_t bound, size_t s_bits) {
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(bound);
  cfg.modulus_s = BigUInt::PowerOfTwo(s_bits);
  return cfg;
}

TEST(SecureSumTest, Protocol1SharesReconstructModS) {
  SumFixture f(4);
  auto cfg = MakeConfig(1000, 64);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(), cfg);
  std::vector<std::vector<uint64_t>> inputs{
      {10, 0, 999}, {20, 0, 0}, {30, 0, 1}, {40, 0, 0}};
  auto shares =
      proto.RunProtocol1(inputs, f.RngPtrs(), "t.").ValueOrDie();
  const BigUInt& s = cfg.modulus_s;
  std::vector<uint64_t> expected{100, 0, 1000};
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(ModAdd(shares.s1[c] % s, shares.s2[c] % s, s),
              BigUInt(expected[c]));
  }
}

TEST(SecureSumTest, Protocol1MessageCountMatchesTable1Rows) {
  for (size_t m : {2u, 3u, 5u}) {
    SumFixture f(m);
    SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(),
                            MakeConfig(10, 64));
    std::vector<std::vector<uint64_t>> inputs(m, std::vector<uint64_t>{1, 2});
    ASSERT_TRUE(proto.RunProtocol1(inputs, f.RngPtrs(), "t.").ok());
    auto report = f.net.Report();
    ASSERT_EQ(report.rounds.size(), 2u);
    EXPECT_EQ(report.rounds[0].num_messages, m * (m - 1));
    EXPECT_EQ(report.rounds[1].num_messages, m - 2);
  }
}

TEST(SecureSumTest, Protocol2IntegerSharesReconstructExactly) {
  for (size_t m : {2u, 3u, 6u}) {
    SumFixture f(m);
    SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(),
                            MakeConfig(100000, 128));
    Rng input_rng(m);
    std::vector<std::vector<uint64_t>> inputs(
        m, std::vector<uint64_t>(50));
    std::vector<uint64_t> expected(50, 0);
    for (size_t c = 0; c < 50; ++c) {
      for (size_t k = 0; k < m; ++k) {
        inputs[k][c] = input_rng.UniformU64(100000 / m);
        expected[c] += inputs[k][c];
      }
    }
    auto shares = proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(),
                                     "t.")
                      .ValueOrDie();
    for (size_t c = 0; c < 50; ++c) {
      EXPECT_EQ(shares.At(c).Reconstruct(), BigInt(BigUInt(expected[c])))
          << "m=" << m << " c=" << c;
    }
    EXPECT_EQ(f.net.PendingCount(), 0u);
  }
}

TEST(SecureSumTest, Protocol2HandlesZeroAndBoundValues) {
  SumFixture f(3);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(),
                          MakeConfig(100, 80));
  std::vector<std::vector<uint64_t>> inputs{{0, 100, 1}, {0, 0, 0}, {0, 0, 0}};
  auto shares =
      proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(), "t.")
          .ValueOrDie();
  EXPECT_EQ(shares.At(0).Reconstruct(), BigInt(0));
  EXPECT_EQ(shares.At(1).Reconstruct(), BigInt(100));
  EXPECT_EQ(shares.At(2).Reconstruct(), BigInt(1));
}

TEST(SecureSumTest, Protocol2CorrectionBranchExercised) {
  // s1 is uniform on Z_S, so the no-correction branch (s1 <= x) happens with
  // probability (x+1)/S. With S = 64 and x around 5-9 both branches appear
  // across 400 counters; with S huge, corrections dominate. Reconstruction
  // must be exact either way.
  SumFixture f(2);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(),
                          MakeConfig(10, 6));  // S = 64 > 4A.
  std::vector<std::vector<uint64_t>> inputs(2, std::vector<uint64_t>(400, 0));
  for (size_t c = 0; c < 400; ++c) {
    inputs[0][c] = c % 5;
    inputs[1][c] = c % 6;
  }
  auto shares =
      proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(), "t.")
          .ValueOrDie();
  size_t corrections = 0;
  for (size_t c = 0; c < 400; ++c) {
    EXPECT_EQ(shares.At(c).Reconstruct(),
              BigInt(BigUInt(inputs[0][c] + inputs[1][c])));
    if (proto.views().p2_correction[c]) ++corrections;
  }
  // Expected corrections ~ 400 * (1 - (x+1)/64) ~ 360.
  EXPECT_GT(corrections, 300u);
  EXPECT_LT(corrections, 399u);
}

TEST(SecureSumTest, P1ShareIsUniformlyDistributed) {
  // Theorem: s1 is uniform on Z_S regardless of the inputs. Use a tiny S
  // and chi-square the observed s1 values.
  const uint64_t s_small = 64;
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(4);
  cfg.modulus_s = BigUInt(s_small);
  std::vector<uint64_t> counts(s_small, 0);
  SumFixture f(3);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(), cfg);
  std::vector<std::vector<uint64_t>> inputs(3,
                                            std::vector<uint64_t>(2000, 1));
  inputs[2].assign(2000, 2);
  auto shares = proto.RunProtocol1(inputs, f.RngPtrs(), "t.").ValueOrDie();
  for (const auto& s1 : shares.s1) {
    ++counts[s1.ToUint64().ValueOrDie()];
  }
  // 63 dof: 99.99th percentile ~ 120.
  double chi2 = ChiSquaredUniform(counts);
  EXPECT_LT(chi2, 125.0);
}

TEST(SecureSumTest, ViewsRecordThirdPartyObservations) {
  SumFixture f(2);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(),
                          MakeConfig(50, 64));
  std::vector<std::vector<uint64_t>> inputs{{7, 13}, {11, 17}};
  ASSERT_TRUE(proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(),
                                 "t.")
                  .ok());
  const auto& v = proto.views();
  EXPECT_EQ(v.third_party_s1.size(), 2u);
  EXPECT_EQ(v.third_party_masked_s2.size(), 2u);
  EXPECT_EQ(v.comparison_bits.size(), 2u);
  EXPECT_EQ(v.p2_correction.size(), 2u);
}

TEST(SecureSumTest, SecretPermutationShufflesThirdPartyOrder) {
  // With distinctive per-counter sums and the permutation on, the third
  // party's comparison-bit pattern should not align with counter order.
  // We verify the permutation is applied by checking reconstruction remains
  // correct while the transmitted s1 differ from the held s1 in order.
  SumFixture f(2);
  SecureSumConfig cfg = MakeConfig(1000, 64);
  cfg.use_secret_permutation = true;
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(), cfg);
  std::vector<std::vector<uint64_t>> inputs(
      2, std::vector<uint64_t>(64));
  for (size_t c = 0; c < 64; ++c) {
    inputs[0][c] = c;
    inputs[1][c] = c;
  }
  auto shares = proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(),
                                   "t.")
                    .ValueOrDie();
  for (size_t c = 0; c < 64; ++c) {
    ASSERT_EQ(shares.At(c).Reconstruct(), BigInt(BigUInt(2 * c)));
  }
  size_t same_position = 0;
  for (size_t c = 0; c < 64; ++c) {
    if (proto.views().third_party_s1[c] == shares.s1[c]) ++same_position;
  }
  EXPECT_LT(same_position, 16u);  // A permutation fixes ~1 point on average.
}

TEST(SecureSumTest, EmpiricalLeakageWithinTheorem41Bounds) {
  // Run Protocol 2 many times with x = 5, A = 10, S = 256 and compare the
  // frequencies at which P2/P3 learn a bound with the closed-form rates.
  const uint64_t x = 5, bound = 10, s_val = 256;
  size_t p2_lower = 0, p2_upper = 0, p3_leaks = 0;
  const size_t kTrials = 4000;
  SumFixture f(2);
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(bound);
  cfg.modulus_s = BigUInt(s_val);
  cfg.use_secret_permutation = false;
  for (size_t t = 0; t < kTrials; ++t) {
    SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(), cfg);
    std::vector<std::vector<uint64_t>> inputs{{2}, {3}};
    auto shares =
        proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(), "t.")
            .ValueOrDie();
    const auto& v = proto.views();
    // Reconstruct s2 before correction to classify P2's observation.
    BigUInt s2_pre = v.p2_correction[0]
                         ? (shares.s2[0] + BigInt(BigUInt(s_val))).magnitude()
                         : shares.s2[0].magnitude();
    LeakKind p2 = ClassifyP2Observation(s2_pre, v.p2_correction[0],
                                        BigUInt(bound));
    p2_lower += p2 == LeakKind::kLowerBound;
    p2_upper += p2 == LeakKind::kUpperBound;
    // P3 observed y = s1 + s2 + r; z = x + r = y mod S... y or y - S.
    BigUInt y = v.third_party_s1[0] + v.third_party_masked_s2[0];
    BigUInt z = (y >= BigUInt(s_val)) ? y - BigUInt(s_val) : y;
    LeakKind p3 = ClassifyP3Observation(z, BigUInt(bound), BigUInt(s_val));
    p3_leaks += p3 != LeakKind::kNothing;
  }
  auto probs =
      ComputeLeakageProbabilities(x, BigUInt(bound), BigUInt(s_val))
          .ValueOrDie();
  double p2_lower_rate = static_cast<double>(p2_lower) / kTrials;
  double p2_upper_rate = static_cast<double>(p2_upper) / kTrials;
  double p3_rate = static_cast<double>(p3_leaks) / kTrials;
  // Theorem rates: p2_lower = 5/256 ~ 0.0195, p2_upper = 5/256.
  EXPECT_NEAR(p2_lower_rate, probs.p2_lower, 0.01);
  EXPECT_NEAR(p2_upper_rate, probs.p2_upper, 0.01);
  EXPECT_LE(p3_rate, probs.p3_lower_max + probs.p3_upper_max + 0.01);
}

TEST(SecureSumTest, InputValidation) {
  SumFixture f(3);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(),
                          MakeConfig(10, 64));
  std::vector<std::vector<uint64_t>> ragged{{1, 2}, {3}, {4, 5}};
  EXPECT_FALSE(proto.RunProtocol1(ragged, f.RngPtrs(), "t.").ok());
  std::vector<std::vector<uint64_t>> too_big{{9}, {9}, {9}};  // Sum 27 > 10.
  EXPECT_FALSE(proto.RunProtocol1(too_big, f.RngPtrs(), "t.").ok());
  // Third party must not be P1 or P2.
  SecureSumProtocol bad(&f.net, f.providers, f.providers[0],
                        MakeConfig(10, 64));
  std::vector<std::vector<uint64_t>> inputs(3, std::vector<uint64_t>{1});
  EXPECT_FALSE(bad.RunProtocol1(inputs, f.RngPtrs(), "t.").ok());
  // Modulus must dwarf the bound.
  SecureSumConfig tiny;
  tiny.input_bound_a = BigUInt(100);
  tiny.modulus_s = BigUInt(128);
  SecureSumProtocol tiny_proto(&f.net, f.providers, f.ThirdParty(), tiny);
  EXPECT_FALSE(tiny_proto.RunProtocol1(inputs, f.RngPtrs(), "t.").ok());
}

TEST(SecureSumTest, RecommendedModulusSatisfiesGuidance) {
  BigUInt a(1000);
  BigUInt s = RecommendedModulus(a, 5000, 40);
  // S >= A(1 + 2 * 5000 * 2^40).
  BigUInt target = a * (BigUInt(1) + (BigUInt(2) * BigUInt(5000) << 40));
  EXPECT_GE(s, target);
  // Power of two.
  EXPECT_EQ(s, BigUInt::PowerOfTwo(s.BitLength() - 1));
}

TEST(SecureSumTest, LargeModulusMultiLimbShares) {
  // Hundreds-of-bits S exercises the BigUInt share paths end to end.
  SumFixture f(3);
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(1u << 20);
  cfg.modulus_s = BigUInt::PowerOfTwo(300);
  SecureSumProtocol proto(&f.net, f.providers, f.ThirdParty(), cfg);
  std::vector<std::vector<uint64_t>> inputs{{123456}, {654321}, {111111}};
  auto shares = proto.RunProtocol2(inputs, f.RngPtrs(), f.pair_secret.get(),
                                   "t.")
                    .ValueOrDie();
  EXPECT_EQ(shares.At(0).Reconstruct(), BigInt(BigUInt(888888)));
  EXPECT_GT(shares.s1[0].BitLength(), 200u);  // Shares really are huge.
}

}  // namespace
}  // namespace psi
