#include "mpc/joint_random.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace psi {
namespace {

class JointRandomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    p1_ = net_.RegisterParty("P1");
    p2_ = net_.RegisterParty("P2");
  }
  Network net_;
  PartyId p1_, p2_;
};

TEST_F(JointRandomTest, ProducesRequestedCountInUnitInterval) {
  Rng r1(1), r2(2);
  auto joint =
      JointUniformBatch(&net_, p1_, p2_, 100, &r1, &r2, "test").ValueOrDie();
  EXPECT_EQ(joint.size(), 100u);
  for (double u : joint) {
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST_F(JointRandomTest, MetersExactlyTwoMessagesOneRound) {
  Rng r1(1), r2(2);
  ASSERT_TRUE(JointUniformBatch(&net_, p1_, p2_, 64, &r1, &r2, "x").ok());
  auto report = net_.Report();
  EXPECT_EQ(report.num_rounds, 1u);
  EXPECT_EQ(report.num_messages, 2u);
  // 64 doubles each direction = 2 * 512 payload bytes; on the wire each
  // message additionally carries the fixed envelope framing.
  EXPECT_EQ(report.num_payload_bytes, 2u * 64u * 8u);
  EXPECT_EQ(report.num_bytes, 2u * (64u * 8u + kEnvelopeOverheadBytes));
  EXPECT_EQ(net_.PendingCount(), 0u);
}

TEST_F(JointRandomTest, OutputIsUniformEvenIfOnePartyIsBiased) {
  // Party B "cheats" by always contributing ~0 (semi-honest parties do not,
  // but the sum construction tolerates any fixed marginal): the joint output
  // must still look uniform because A's contribution is uniform.
  class ZeroRng : public Rng {
   public:
    ZeroRng() : Rng(0) {}
  };
  Rng honest(3);
  Rng biased(4);  // Used but contributions folded mod 1 with honest ones.
  std::vector<double> all;
  for (int i = 0; i < 50; ++i) {
    auto joint = JointUniformBatch(&net_, p1_, p2_, 20, &honest, &biased,
                                   "u")
                     .ValueOrDie();
    all.insert(all.end(), joint.begin(), joint.end());
  }
  EXPECT_NEAR(Mean(all), 0.5, 0.03);
  EXPECT_NEAR(Variance(all), 1.0 / 12.0, 0.01);
}

TEST_F(JointRandomTest, ZDistributionTransform) {
  std::vector<double> uniforms{0.0, 0.5, 0.9, 0.99};
  auto z = ToZDistribution(uniforms);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
  EXPECT_NEAR(z[2], 10.0, 1e-9);
  EXPECT_NEAR(z[3], 100.0, 1e-9);
}

TEST_F(JointRandomTest, ZDistributionEmpiricalCdf) {
  Rng r1(5), r2(6);
  auto joint =
      JointUniformBatch(&net_, p1_, p2_, 20000, &r1, &r2, "z").ValueOrDie();
  auto z = ToZDistribution(joint);
  size_t le2 = 0;
  for (double m : z) {
    EXPECT_GE(m, 1.0);
    le2 += m <= 2.0;
  }
  EXPECT_NEAR(static_cast<double>(le2) / 20000.0, 0.5, 0.02);
}

TEST_F(JointRandomTest, UniformBelowScalesByBounds) {
  std::vector<double> uniforms{0.5, 0.25};
  std::vector<double> bounds{10.0, 4.0};
  auto r = ToUniformBelow(uniforms, bounds).ValueOrDie();
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_FALSE(ToUniformBelow({0.5}, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace psi
