// Socket transport unit tests: framing, admission, the daemon-relayed data
// path, deadlines, dead-peer detection and reconnection — all over real TCP
// loopback against an in-process PsidDaemon served from a background
// thread. The fork-based SIGKILL recovery sweeps live in
// tests/integration/socket_daemon_test.cc; this file exercises the
// transport machinery piece by piece.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/daemon.h"
#include "net/envelope.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "net/socket_transport.h"
#include "net/socket_util.h"

namespace psi {
namespace {

// ---------------------------------------------------------------------------
// TransportParser / PackTransportMsg.

TEST(SocketUtilTest, ParserRoundTripsOneMessage) {
  std::vector<uint8_t> body = {1, 2, 3, 4, 5};
  auto packed = PackTransportMsg(TransportMsgKind::kData, kTransportFlagFront,
                                 body);
  ASSERT_EQ(packed.size(), kTransportHeaderBytes + body.size());

  TransportParser parser;
  parser.Append(packed.data(), packed.size());
  TransportMsg msg;
  ASSERT_TRUE(parser.Next(&msg).ValueOrDie());
  EXPECT_EQ(msg.kind, TransportMsgKind::kData);
  EXPECT_EQ(msg.flags, kTransportFlagFront);
  EXPECT_EQ(msg.body, body);
  EXPECT_FALSE(parser.Next(&msg).ValueOrDie());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(SocketUtilTest, ParserReframesAcrossArbitraryFragmentation) {
  // Three messages of different kinds and sizes, delivered one byte at a
  // time: TCP guarantees order, not boundaries, and the parser must
  // reconstruct every frame exactly.
  std::vector<std::vector<uint8_t>> bodies = {
      {}, {42}, std::vector<uint8_t>(1000, 7)};
  std::vector<TransportMsgKind> kinds = {TransportMsgKind::kHeartbeat,
                                         TransportMsgKind::kHelloAck,
                                         TransportMsgKind::kData};
  std::vector<uint8_t> stream;
  for (size_t i = 0; i < bodies.size(); ++i) {
    auto packed = PackTransportMsg(kinds[i], 0, bodies[i]);
    stream.insert(stream.end(), packed.begin(), packed.end());
  }

  TransportParser parser;
  std::vector<TransportMsg> got;
  for (uint8_t byte : stream) {
    parser.Append(&byte, 1);
    TransportMsg msg;
    while (parser.Next(&msg).ValueOrDie()) got.push_back(std::move(msg));
  }
  ASSERT_EQ(got.size(), bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ(got[i].kind, kinds[i]) << "message " << i;
    EXPECT_EQ(got[i].body, bodies[i]) << "message " << i;
  }
}

TEST(SocketUtilTest, ParserRejectsBadMagicPermanently) {
  std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0, 0, 0, 0, 0};
  TransportParser parser;
  parser.Append(junk.data(), junk.size());
  TransportMsg msg;
  auto produced = parser.Next(&msg);
  ASSERT_FALSE(produced.ok());
  EXPECT_NE(produced.status().message().find("magic"), std::string::npos);
}

TEST(SocketUtilTest, ParserRejectsOversizedBody) {
  // A header that announces a body beyond kMaxTransportBodyBytes is a
  // framing violation, not a request for a giant allocation.
  auto packed = PackTransportMsg(TransportMsgKind::kData, 0, {1, 2, 3});
  const uint32_t huge = kMaxTransportBodyBytes + 1;
  packed[8] = static_cast<uint8_t>(huge);
  packed[9] = static_cast<uint8_t>(huge >> 8);
  packed[10] = static_cast<uint8_t>(huge >> 16);
  packed[11] = static_cast<uint8_t>(huge >> 24);
  TransportParser parser;
  parser.Append(packed.data(), packed.size());
  TransportMsg msg;
  EXPECT_FALSE(parser.Next(&msg).ok());
}

// ---------------------------------------------------------------------------
// In-process daemon harness: a PsidDaemon served by a background thread, so
// the single-threaded client transport can block against a live peer.

class DaemonThread {
 public:
  explicit DaemonThread(PsidConfig config = {}) : daemon_(std::move(config)) {
    port_ = daemon_.Listen(0).ValueOrDie();
    thread_ = std::thread([this] {
      const Status served = daemon_.Run();
      (void)served;  // Exits when Stop() is called; errors end the test via
                     // the client-side assertions.
    });
  }

  ~DaemonThread() { StopAndJoin(); }

  void StopAndJoin() {
    if (thread_.joinable()) {
      daemon_.Stop();
      thread_.join();
    }
  }

  uint16_t port() const { return port_; }

  /// Only meaningful after StopAndJoin(): the daemon is single-threaded.
  const PsidStats& stats() const { return daemon_.stats(); }

 private:
  PsidDaemon daemon_;
  uint16_t port_ = 0;
  std::thread thread_;
};

SocketTransportConfig FastConfig() {
  SocketTransportConfig config;
  config.seed = 11;
  config.recv_timeout_ms = 1000;
  config.connect_timeout_ms = 500;
  config.handshake_timeout_ms = 500;
  config.heartbeat_interval_ms = 20;
  config.heartbeat_timeout_ms = 250;
  config.max_reconnect_attempts = 4;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 20;
  return config;
}

// ---------------------------------------------------------------------------
// Admission.

TEST(SocketTransportTest, ConnectDaemonAuthenticatesWithSharedToken) {
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  (void)h;
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());
  EXPECT_TRUE(net.LinkAlive(p1));
  EXPECT_EQ(net.transport_stats().connects, 1u);
  net.Shutdown();
  daemon.StopAndJoin();
  EXPECT_EQ(daemon.stats().connections_accepted, 1u);
  EXPECT_EQ(daemon.stats().auth_failures, 0u);
}

TEST(SocketTransportTest, ConnectDaemonRejectsWrongToken) {
  DaemonThread daemon;
  SocketTransportConfig config = FastConfig();
  config.auth_token = "not-the-token";
  SocketNetwork net(config);
  PartyId p1 = net.RegisterParty("P1");
  Status connected = net.ConnectDaemon("127.0.0.1", daemon.port(), {p1});
  ASSERT_FALSE(connected.ok());
  EXPECT_NE(connected.message().find("rejected"), std::string::npos);
  EXPECT_FALSE(net.LinkAlive(p1));
  daemon.StopAndJoin();
  EXPECT_EQ(daemon.stats().auth_failures, 1u);
}

TEST(SocketTransportTest, ConnectDaemonValidatesPartyAssignments) {
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId p1 = net.RegisterParty("P1");
  // Unknown party id.
  EXPECT_FALSE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1 + 7}).ok());
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());
  // A party may be hosted by at most one daemon.
  Status twice = net.ConnectDaemon("127.0.0.1", daemon.port(), {p1});
  ASSERT_FALSE(twice.ok());
  EXPECT_NE(twice.message().find("already hosted"), std::string::npos);
}

TEST(SocketTransportTest, ConnectToClosedPortFailsCleanly) {
  // Grab an ephemeral port, close the daemon, and dial the corpse: the
  // connect must fail with a described error inside its timeout.
  uint16_t dead_port = 0;
  {
    DaemonThread daemon;
    dead_port = daemon.port();
  }
  SocketNetwork net(FastConfig());
  PartyId p1 = net.RegisterParty("P1");
  Status connected = net.ConnectDaemon("127.0.0.1", dead_port, {p1});
  ASSERT_FALSE(connected.ok());
  EXPECT_FALSE(connected.message().empty());
}

// ---------------------------------------------------------------------------
// The relayed data path.

TEST(SocketTransportTest, FramedTrafficHairpinsThroughDaemon) {
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());

  net.BeginRound("socket.roundtrip");
  std::vector<uint8_t> payload = {10, 20, 30, 40};
  ASSERT_TRUE(
      net.SendFramed(h, p1, ProtocolId::kSecureSum, /*step=*/3, payload).ok());
  auto got = net.RecvValidated(p1, h, ProtocolId::kSecureSum, /*step=*/3);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.ValueOrDie(), payload);

  // Protocol metering is identical to the simulator: one message, envelope
  // overhead on the wire, payload bytes underneath. Transport framing is
  // tallied separately.
  auto report = net.Report();
  EXPECT_EQ(report.num_messages, 1u);
  EXPECT_EQ(report.num_payload_bytes, payload.size());
  EXPECT_EQ(report.num_bytes, payload.size() + kEnvelopeOverheadBytes);
  EXPECT_EQ(net.transport_stats().frames_relayed, 1u);
  EXPECT_EQ(net.transport_stats().frames_echoed, 1u);
  EXPECT_GT(net.transport_stats().wire_bytes_tx, report.num_bytes);

  EXPECT_EQ(net.PendingCount(), 0u);
  net.Shutdown();
  daemon.StopAndJoin();
  EXPECT_EQ(daemon.stats().frames_hairpinned, 1u);
}

TEST(SocketTransportTest, RawRecvPumpsTheEventLoop) {
  // Raw Send/Recv drivers (no envelopes, no RecvValidated) must also work
  // over the asynchronous wire: Recv pumps until the echo arrives.
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());

  net.BeginRound("socket.raw");
  std::vector<uint8_t> payload = {9, 8, 7};
  ASSERT_TRUE(net.Send(h, p1, payload).ok());
  auto got = net.Recv(p1, h);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.ValueOrDie(), payload);
}

TEST(SocketTransportTest, LocalChannelsStayInProcess) {
  // A channel between two unhosted parties never touches the wire.
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId a = net.RegisterParty("A");
  PartyId b = net.RegisterParty("B");
  PartyId hosted = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {hosted}).ok());

  net.BeginRound("socket.local");
  ASSERT_TRUE(net.SendFramed(a, b, ProtocolId::kSecureSum, 1, {5, 6}).ok());
  auto got = net.RecvValidated(b, a, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(net.transport_stats().frames_relayed, 0u);
  EXPECT_EQ(net.transport_stats().frames_echoed, 0u);
}

TEST(SocketTransportTest, RecvDeadlineExpiresAsCleanProtocolError) {
  DaemonThread daemon;
  SocketTransportConfig config = FastConfig();
  config.recv_timeout_ms = 150;  // Backend default deadline under test.
  SocketNetwork net(config);
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());

  net.BeginRound("socket.deadline");
  // Nothing was ever sent: the call must give up within the deadline with
  // an error naming it — never hang on the silent wire.
  const uint64_t before = MonotonicMs();
  auto got = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1);
  const uint64_t waited = MonotonicMs() - before;
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("deadline"), std::string::npos)
      << got.status().message();
  EXPECT_GE(waited, 100u);
  EXPECT_LT(waited, 5000u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// Dead peers, retransmission, reconnection.

TEST(SocketTransportTest, DeadDaemonIsDetectedAndRefusesRetransmits) {
  auto daemon = std::make_unique<DaemonThread>();
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon->port(), {p1}).ok());

  net.BeginRound("socket.dead");
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 1, {1}).ok());
  auto first = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(first.ok()) << first.status().message();

  // Stop the daemon: the next receive must fail cleanly (connection reset
  // or heartbeat silence), not hang.
  daemon->StopAndJoin();
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 2, {2}).ok());
  auto got = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 2);
  ASSERT_FALSE(got.ok());
  EXPECT_FALSE(got.status().message().empty());
  EXPECT_FALSE(net.LinkAlive(p1));
  EXPECT_EQ(net.PendingCount(), 0u);

  // A dead wire cannot retransmit: the pristine log must not silently heal
  // the channel without a reconnect.
  auto retransmit = net.RequestRetransmit(p1, h, /*seq=*/1);
  ASSERT_FALSE(retransmit.ok());
  EXPECT_NE(retransmit.status().message().find("reestablish"),
            std::string::npos)
      << retransmit.status().message();
}

TEST(SocketTransportTest, ReestablishReconnectsToRestartedDaemon) {
  PsidConfig daemon_config;
  auto daemon = std::make_unique<DaemonThread>(daemon_config);
  const uint16_t port = daemon->port();

  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", port, {p1}).ok());

  net.BeginRound("socket.restart");
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 1, {1}).ok());
  ASSERT_TRUE(net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1).ok());

  // Kill the daemon and release its listener (a live process would have
  // died with its fds), then restart on the same port (SO_REUSEADDR).
  daemon->StopAndJoin();
  daemon.reset();
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 2, {2}).ok());
  ASSERT_FALSE(net.RecvValidated(p1, h, ProtocolId::kSecureSum, 2).ok());
  ASSERT_FALSE(net.LinkAlive(p1));

  PsidDaemon restarted(daemon_config);
  ASSERT_EQ(restarted.Listen(port).ValueOrDie(), port);
  std::thread serve([&restarted] {
    const Status served = restarted.Run();
    (void)served;
  });

  Status repaired = net.Reestablish();
  ASSERT_TRUE(repaired.ok()) << repaired.message();
  EXPECT_TRUE(net.LinkAlive(p1));
  EXPECT_GE(net.transport_stats().reconnects, 1u);
  EXPECT_GE(net.transport_stats().reconnect_attempts, 1u);

  // The repaired link carries traffic again; the receiver resyncs the
  // channel exactly as a session resume would, so the lost in-flight frame
  // becomes a stale sequence number instead of a wedge.
  net.ResyncChannel(h, p1);
  net.BeginRound("socket.after-restart");
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 3, {3}).ok());
  auto got = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 3);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.ValueOrDie(), std::vector<uint8_t>({3}));

  net.Shutdown();
  restarted.Stop();
  serve.join();
  EXPECT_GE(restarted.stats().resumed_hellos, 1u);
}

TEST(SocketTransportTest, ReestablishGivesUpAfterBoundedBackoff) {
  SocketTransportConfig config = FastConfig();
  config.max_reconnect_attempts = 3;
  SocketNetwork net(config);
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  // Stage the link through a live daemon, then take the daemon away for
  // good: its port stays dead, so every reconnect attempt must fail.
  {
    auto daemon = std::make_unique<DaemonThread>();
    ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon->port(), {p1}).ok());
    daemon->StopAndJoin();
  }

  net.BeginRound("socket.unreachable");
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 1, {1}).ok());
  ASSERT_FALSE(net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1).ok());
  ASSERT_FALSE(net.LinkAlive(p1));

  Status repaired = net.Reestablish();
  ASSERT_FALSE(repaired.ok());
  EXPECT_NE(repaired.message().find("unreachable after 3 attempt"),
            std::string::npos)
      << repaired.message();
  // Backoff actually slept between attempts (seeded, deterministic).
  EXPECT_GT(net.transport_stats().backoff_sleep_ms, 0u);
  EXPECT_EQ(net.transport_stats().reconnect_attempts, 3u);
}

TEST(SocketTransportTest, RetransmitServedFromPristineLogOverLiveLink) {
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());

  net.BeginRound("socket.retransmit");
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 1, {1, 2}).ok());
  ASSERT_TRUE(net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1).ok());

  // The pristine log serves a re-request for the already-delivered frame
  // (sequence numbers start at 0) and refuses unknown sequences.
  auto served = net.RequestRetransmit(p1, h, /*seq=*/0);
  ASSERT_TRUE(served.ok()) << served.status().message();
  EXPECT_EQ(PeekEnvelopeSeq(served.ValueOrDie()).ValueOrDie(), 0u);
  auto unknown = net.RequestRetransmit(p1, h, /*seq=*/999);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("no frame with seq"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The shared fault decorator over sockets.

TEST(SocketTransportTest, AttachedInjectorExposesFaultStats) {
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());
  EXPECT_EQ(net.fault_stats(), nullptr);  // No injector attached yet.

  net.AttachFaultInjector(FaultPlan::None());
  ASSERT_NE(net.fault_stats(), nullptr);

  net.BeginRound("socket.faultless");
  ASSERT_TRUE(net.SendFramed(h, p1, ProtocolId::kSecureSum, 1, {4}).ok());
  auto got = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(net.fault_stats()->injected(), 0u);
}

TEST(SocketTransportTest, DroppedFrameIsRepairedByRetransmissionOverWire) {
  // One deterministic drop rule on the (H -> P1) channel: the first
  // delivery is swallowed, RecvValidated requests a retransmission, the
  // injector serves the pristine copy, and the payload arrives intact.
  DaemonThread daemon;
  SocketNetwork net(FastConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  ASSERT_TRUE(net.ConnectDaemon("127.0.0.1", daemon.port(), {p1}).ok());

  FaultPlan plan;
  plan.seed = 5;
  FaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.from = h;
  rule.to = p1;
  rule.probability = 1.0;
  rule.max_triggers = 1;
  plan.rules.push_back(rule);
  net.AttachFaultInjector(plan);

  net.BeginRound("socket.drop");
  std::vector<uint8_t> payload = {6, 6, 6};
  ASSERT_TRUE(
      net.SendFramed(h, p1, ProtocolId::kSecureSum, 1, payload).ok());
  auto got = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.ValueOrDie(), payload);
  ASSERT_NE(net.fault_stats(), nullptr);
  EXPECT_EQ(net.fault_stats()->dropped, 1u);
  EXPECT_EQ(net.fault_stats()->retransmits_served, 1u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

}  // namespace
}  // namespace psi
