#include "net/envelope.h"

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace psi {
namespace {

std::vector<uint8_t> SamplePayload(size_t n) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(i * 37 + 11);
  return p;
}

TEST(EnvelopeTest, SealOpenRoundtrip) {
  auto payload = SamplePayload(100);
  auto frame = SealEnvelope(ProtocolId::kSecureSum, /*step=*/3, /*sender=*/7,
                            /*seq=*/42, payload);
  EXPECT_EQ(frame.size(), payload.size() + kEnvelopeOverheadBytes);

  auto env = OpenEnvelope(frame).ValueOrDie();
  EXPECT_EQ(env.protocol_id, ProtocolId::kSecureSum);
  EXPECT_EQ(env.step, 3u);
  EXPECT_EQ(env.sender, 7u);
  EXPECT_EQ(env.seq, 42u);
  EXPECT_EQ(env.payload, payload);
}

TEST(EnvelopeTest, EmptyPayloadRoundtrip) {
  auto frame = SealEnvelope(ProtocolId::kJointRandom, 1, 0, 0, {});
  EXPECT_EQ(frame.size(), kEnvelopeOverheadBytes);
  auto env = OpenEnvelope(frame).ValueOrDie();
  EXPECT_TRUE(env.payload.empty());
}

TEST(EnvelopeTest, RejectsShortFrame) {
  auto frame = SealEnvelope(ProtocolId::kSecureSum, 1, 0, 0, SamplePayload(8));
  for (size_t len : {size_t{0}, size_t{4}, kEnvelopeOverheadBytes - 1}) {
    std::vector<uint8_t> cut(frame.begin(),
                             frame.begin() + static_cast<ptrdiff_t>(len));
    auto r = OpenEnvelope(cut);
    ASSERT_FALSE(r.ok()) << "len=" << len;
    EXPECT_EQ(r.status().code(), StatusCode::kSerializationError);
  }
}

TEST(EnvelopeTest, RejectsBadMagicAndVersion) {
  auto frame = SealEnvelope(ProtocolId::kSecureSum, 1, 0, 0, SamplePayload(8));
  auto bad_magic = frame;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(OpenEnvelope(bad_magic).ok());

  auto bad_version = frame;
  bad_version[4] = kEnvelopeVersion + 1;
  EXPECT_FALSE(OpenEnvelope(bad_version).ok());
}

TEST(EnvelopeTest, AnySingleBitFlipIsDetected) {
  auto frame = SealEnvelope(ProtocolId::kPropagationGraph, 4, 2, 9,
                            SamplePayload(32));
  // CRC-32 detects every single-bit error; flipping any bit of the frame
  // (header, payload or trailer) must fail validation.
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto damaged = frame;
    damaged[bit / 8] = static_cast<uint8_t>(damaged[bit / 8] ^
                                            (1u << (bit % 8)));
    EXPECT_FALSE(OpenEnvelope(damaged).ok()) << "bit=" << bit;
  }
}

TEST(EnvelopeTest, RejectsTruncationAndExtension) {
  auto frame = SealEnvelope(ProtocolId::kSecureSum, 1, 0, 0, SamplePayload(40));
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    std::vector<uint8_t> truncated(frame.begin(),
                                   frame.end() - static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(OpenEnvelope(truncated).ok()) << "cut=" << cut;
  }
  auto extended = frame;
  extended.push_back(0);
  EXPECT_FALSE(OpenEnvelope(extended).ok());
}

TEST(EnvelopeTest, RejectsLengthFieldMismatch) {
  auto frame = SealEnvelope(ProtocolId::kSecureSum, 1, 0, 0, SamplePayload(16));
  // Rewrite payload_len (offset 21) to lie about the size; even with a
  // recomputed CRC the frame-size cross-check rejects it.
  auto lying = frame;
  lying[21] = 200;
  uint32_t crc = Crc32(lying.data(), lying.size() - 4);
  std::memcpy(lying.data() + lying.size() - 4, &crc, 4);
  auto r = OpenEnvelope(lying);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("length"), std::string::npos);
}

TEST(EnvelopeTest, PeekSeqReadsWithoutFullValidation) {
  auto frame = SealEnvelope(ProtocolId::kSecureSum, 1, 0, 777, {});
  EXPECT_EQ(PeekEnvelopeSeq(frame).ValueOrDie(), 777u);
  // Peek still rejects garbage that is too short or mistagged.
  EXPECT_FALSE(PeekEnvelopeSeq({1, 2, 3}).ok());
  auto bad = frame;
  bad[1] ^= 0x40;
  EXPECT_FALSE(PeekEnvelopeSeq(bad).ok());
}

TEST(EnvelopeTest, ProtocolIdNames) {
  EXPECT_STREQ(ProtocolIdToString(ProtocolId::kSecureSum), "SecureSum");
  EXPECT_STREQ(ProtocolIdToString(ProtocolId::kPropagationGraph),
               "PropagationGraph");
  EXPECT_STREQ(ProtocolIdToString(static_cast<ProtocolId>(999)), "Unknown");
}

}  // namespace
}  // namespace psi
