#include "net/network.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = net_.RegisterParty("A");
    b_ = net_.RegisterParty("B");
    c_ = net_.RegisterParty("C");
  }
  Network net_;
  PartyId a_, b_, c_;
};

TEST_F(NetworkTest, RegisterAssignsSequentialIds) {
  EXPECT_EQ(a_, 0u);
  EXPECT_EQ(b_, 1u);
  EXPECT_EQ(c_, 2u);
  EXPECT_EQ(net_.num_parties(), 3u);
  EXPECT_EQ(net_.party_name(1), "B");
}

TEST_F(NetworkTest, SendRecvDeliversPayload) {
  net_.BeginRound("r1");
  ASSERT_TRUE(net_.Send(a_, b_, {1, 2, 3}).ok());
  auto msg = net_.Recv(b_, a_).ValueOrDie();
  EXPECT_EQ(msg, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(NetworkTest, FifoOrderPerChannel) {
  net_.BeginRound("r1");
  ASSERT_TRUE(net_.Send(a_, b_, {1}).ok());
  ASSERT_TRUE(net_.Send(a_, b_, {2}).ok());
  EXPECT_EQ(net_.Recv(b_, a_).ValueOrDie()[0], 1);
  EXPECT_EQ(net_.Recv(b_, a_).ValueOrDie()[0], 2);
}

TEST_F(NetworkTest, ChannelsAreDirectional) {
  net_.BeginRound("r1");
  ASSERT_TRUE(net_.Send(a_, b_, {9}).ok());
  EXPECT_FALSE(net_.Recv(a_, b_).ok());   // Wrong direction.
  EXPECT_FALSE(net_.Recv(b_, c_).ok());   // Wrong sender.
  EXPECT_TRUE(net_.Recv(b_, a_).ok());
}

TEST_F(NetworkTest, RecvOnEmptyChannelFails) {
  EXPECT_EQ(net_.Recv(b_, a_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(NetworkTest, SendValidations) {
  net_.BeginRound("r1");
  EXPECT_EQ(net_.Send(a_, a_, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(net_.Send(a_, 99, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(net_.Send(99, a_, {}).code(), StatusCode::kInvalidArgument);
}

TEST_F(NetworkTest, SendBeforeRoundFails) {
  EXPECT_EQ(net_.Send(a_, b_, {1}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(NetworkTest, MeteringCountsMessagesAndBytes) {
  net_.BeginRound("round one");
  ASSERT_TRUE(net_.Send(a_, b_, std::vector<uint8_t>(10)).ok());
  ASSERT_TRUE(net_.Send(b_, c_, std::vector<uint8_t>(20)).ok());
  net_.BeginRound("round two");
  ASSERT_TRUE(net_.Send(c_, a_, std::vector<uint8_t>(5)).ok());

  auto report = net_.Report();
  EXPECT_EQ(report.num_rounds, 2u);
  EXPECT_EQ(report.num_messages, 3u);
  EXPECT_EQ(report.num_bytes, 35u);
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].label, "round one");
  EXPECT_EQ(report.rounds[0].num_messages, 2u);
  EXPECT_EQ(report.rounds[0].num_bytes, 30u);
  EXPECT_EQ(report.rounds[1].num_messages, 1u);
}

TEST_F(NetworkTest, PerPartyByteAccounting) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.Send(a_, b_, std::vector<uint8_t>(7)).ok());
  ASSERT_TRUE(net_.Send(a_, c_, std::vector<uint8_t>(3)).ok());
  EXPECT_EQ(net_.BytesSentBy(a_), 10u);
  EXPECT_EQ(net_.BytesSentBy(b_), 0u);
}

TEST_F(NetworkTest, PendingCountAndHasPending) {
  net_.BeginRound("r");
  EXPECT_EQ(net_.PendingCount(), 0u);
  ASSERT_TRUE(net_.Send(a_, b_, {1}).ok());
  EXPECT_TRUE(net_.HasPending(b_, a_));
  EXPECT_FALSE(net_.HasPending(a_, b_));
  EXPECT_EQ(net_.PendingCount(), 1u);
  ASSERT_TRUE(net_.Recv(b_, a_).ok());
  EXPECT_EQ(net_.PendingCount(), 0u);
}

TEST_F(NetworkTest, ResetMeteringRequiresEmptyMailboxes) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.Send(a_, b_, {1}).ok());
  EXPECT_EQ(net_.ResetMetering().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(net_.Recv(b_, a_).ok());
  ASSERT_TRUE(net_.ResetMetering().ok());
  EXPECT_EQ(net_.Report().num_rounds, 0u);
  EXPECT_EQ(net_.BytesSentBy(a_), 0u);
}

TEST_F(NetworkTest, ReportRenderingContainsTotals) {
  net_.BeginRound("alpha");
  ASSERT_TRUE(net_.Send(a_, b_, std::vector<uint8_t>(100)).ok());
  std::string s = net_.Report().ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

TEST_F(NetworkTest, RecvErrorNamesPartiesAndRound) {
  net_.BeginRound("P4.Step2 (H -> P_k: Omega_E')");
  auto r = net_.Recv(b_, a_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("A -> B"), std::string::npos);
  EXPECT_NE(r.status().message().find("P4.Step2"), std::string::npos);
}

TEST_F(NetworkTest, RecvErrorBeforeAnyRound) {
  auto r = net_.Recv(b_, a_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("<no round>"), std::string::npos);
}

TEST_F(NetworkTest, DrainReportsAndClearsUndelivered) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.Send(a_, c_, std::vector<uint8_t>(4)).ok());
  ASSERT_TRUE(net_.Send(a_, c_, std::vector<uint8_t>(9)).ok());
  ASSERT_TRUE(net_.Send(b_, c_, std::vector<uint8_t>(2)).ok());
  ASSERT_TRUE(net_.Send(a_, b_, std::vector<uint8_t>(1)).ok());

  std::string summary = net_.Drain(c_);
  EXPECT_NE(summary.find("2 message(s) from A"), std::string::npos);
  EXPECT_NE(summary.find("4 9 bytes"), std::string::npos);
  EXPECT_NE(summary.find("1 message(s) from B"), std::string::npos);
  // C's mailboxes are now empty, B's message is untouched.
  EXPECT_EQ(net_.PendingCount(), 1u);
  EXPECT_EQ(net_.Drain(c_), "");
  EXPECT_TRUE(net_.HasPending(b_, a_));
}

TEST_F(NetworkTest, SendFramedMetersWireAndPayloadSeparately) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                              std::vector<uint8_t>(50)).ok());
  auto report = net_.Report();
  EXPECT_EQ(report.num_payload_bytes, 50u);
  EXPECT_EQ(report.num_bytes, 50u + kEnvelopeOverheadBytes);
  EXPECT_EQ(net_.BytesSentBy(a_), 50u + kEnvelopeOverheadBytes);
}

TEST_F(NetworkTest, RecvValidatedRoundtripAndSequencing) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {10}).ok());
  ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {20}).ok());
  auto m1 = net_.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1).ValueOrDie();
  auto m2 = net_.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1).ValueOrDie();
  EXPECT_EQ(m1[0], 10);
  EXPECT_EQ(m2[0], 20);
}

TEST_F(NetworkTest, RecvValidatedRejectsWrongProtocolOrStep) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {1}).ok());
  auto r = net_.RecvValidated(b_, a_, ProtocolId::kPropagationGraph, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(r.status().message().find("SecureSum"), std::string::npos);
  EXPECT_NE(r.status().message().find("PropagationGraph"), std::string::npos);

  ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 2, {1}).ok());
  EXPECT_FALSE(net_.RecvValidated(b_, a_, ProtocolId::kSecureSum, 9).ok());
}

TEST_F(NetworkTest, RecvValidatedRejectsRawTraffic) {
  net_.BeginRound("r");
  ASSERT_TRUE(net_.Send(a_, b_, {1, 2, 3}).ok());
  auto r = net_.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
}

TEST_F(NetworkTest, BaseNetworkHasNoRetransmissionStore) {
  net_.BeginRound("r");
  auto r = net_.RequestRetransmit(b_, a_, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("A -> B"), std::string::npos);
}

TEST_F(NetworkTest, ResyncChannelSkipsStaleInFlightFrames) {
  net_.BeginRound("r1");
  for (uint8_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {i}).ok());
  }
  ASSERT_TRUE(net_.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1).ok());

  // A session resume: the receiver jumps past everything the failed attempt
  // sent; the two undelivered frames become stale duplicates.
  net_.ResyncChannel(a_, b_);
  net_.BeginRound("r2");
  ASSERT_TRUE(net_.SendFramed(a_, b_, ProtocolId::kSecureSum, 2, {42}).ok());
  auto fresh = net_.RecvValidated(b_, a_, ProtocolId::kSecureSum, 2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.ValueOrDie()[0], 42);
  // The stale frames were discarded on the way, not misdelivered.
  EXPECT_EQ(net_.PendingCount(), 0u);
  EXPECT_EQ(net_.StashedCount(a_, b_), 0u);
}

}  // namespace
}  // namespace psi
