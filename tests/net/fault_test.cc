#include "net/fault.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

FaultRule Always(FaultKind kind, uint32_t max_triggers = UINT32_MAX) {
  FaultRule rule;
  rule.kind = kind;
  rule.probability = 1.0;
  rule.max_triggers = max_triggers;
  return rule;
}

class FaultTest : public ::testing::Test {
 protected:
  void Register(Network* net) {
    a_ = net->RegisterParty("A");
    b_ = net->RegisterParty("B");
  }
  PartyId a_ = 0, b_ = 0;
};

TEST_F(FaultTest, ZeroPlanBehavesLikeLosslessNetwork) {
  FaultyNetwork net(FaultPlan::None());
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                             std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(net.Send(a_, b_, std::vector<uint8_t>(7)).ok());
  auto framed = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(framed.ValueOrDie().size(), 100u);
  ASSERT_TRUE(net.Recv(b_, a_).ok());

  EXPECT_EQ(net.fault_stats().injected(), 0u);
  EXPECT_EQ(net.fault_stats().retransmits_served, 0u);
  auto report = net.Report();
  EXPECT_EQ(report.num_messages, 2u);
  EXPECT_EQ(report.num_payload_bytes, 107u);
  EXPECT_EQ(report.num_bytes, 107u + kEnvelopeOverheadBytes);
}

TEST_F(FaultTest, DroppedFrameRecoveredByRetransmission) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(Always(FaultKind::kDrop, /*max_triggers=*/1));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {42}).ok());
  EXPECT_FALSE(net.HasPending(b_, a_));

  auto r = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), (std::vector<uint8_t>{42}));
  EXPECT_EQ(net.fault_stats().dropped, 1u);
  EXPECT_EQ(net.fault_stats().retransmits_served, 1u);
}

TEST_F(FaultTest, CorruptedFrameRecoveredByRetransmission) {
  FaultPlan plan;
  plan.seed = 11;
  plan.rules.push_back(Always(FaultKind::kCorrupt, /*max_triggers=*/1));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                             std::vector<uint8_t>(64, 0xAB)).ok());
  auto r = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), std::vector<uint8_t>(64, 0xAB));
  EXPECT_EQ(net.fault_stats().corrupted, 1u);
  EXPECT_GE(net.fault_stats().retransmits_served, 1u);
}

TEST_F(FaultTest, TruncatedFrameRecoveredByRetransmission) {
  FaultPlan plan;
  plan.seed = 13;
  plan.rules.push_back(Always(FaultKind::kTruncate, /*max_triggers=*/1));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                             std::vector<uint8_t>(64, 0xCD)).ok());
  auto r = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), std::vector<uint8_t>(64, 0xCD));
  EXPECT_EQ(net.fault_stats().truncated, 1u);
}

TEST_F(FaultTest, DuplicateIsDeliveredOnceAndStaleCopyDiscarded) {
  FaultPlan plan;
  plan.seed = 17;
  plan.rules.push_back(Always(FaultKind::kDuplicate, /*max_triggers=*/1));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {1}).ok());
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {2}).ok());
  EXPECT_EQ(net.PendingCount(), 3u);  // Duplicate of the first frame.

  EXPECT_EQ(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1)
                .ValueOrDie()[0], 1);
  // The second call skips the stale duplicate of seq 0 and returns seq 1.
  EXPECT_EQ(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1)
                .ValueOrDie()[0], 2);
  EXPECT_EQ(net.fault_stats().duplicated, 1u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST_F(FaultTest, ReorderedFramesAreStashedAndResequenced) {
  FaultPlan plan;
  plan.seed = 19;
  plan.rules.push_back(Always(FaultKind::kReorder, /*max_triggers=*/2));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  // Both sends jump the queue: after the second, the mailbox is [seq1, seq0].
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {1}).ok());
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {2}).ok());

  EXPECT_EQ(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1)
                .ValueOrDie()[0], 1);
  EXPECT_EQ(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1)
                .ValueOrDie()[0], 2);
  EXPECT_EQ(net.fault_stats().reordered, 2u);
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST_F(FaultTest, DelayedFrameSurfacesAtNextRound) {
  FaultPlan plan;
  plan.seed = 23;
  plan.rules.push_back(Always(FaultKind::kDelay, /*max_triggers=*/1));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {5}).ok());
  EXPECT_FALSE(net.HasPending(b_, a_));
  net.BeginRound("r2");
  EXPECT_TRUE(net.HasPending(b_, a_));
  EXPECT_EQ(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1)
                .ValueOrDie()[0], 5);
  EXPECT_EQ(net.fault_stats().delayed, 1u);
}

TEST_F(FaultTest, PersistentDropExhaustsBoundedAttempts) {
  FaultPlan plan;
  plan.seed = 29;
  plan.rules.push_back(Always(FaultKind::kDrop));  // Unlimited budget.
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("hopeless round");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {1}).ok());

  auto r = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(r.status().message().find("giving up"), std::string::npos);
  EXPECT_NE(r.status().message().find("A -> B"), std::string::npos);
  EXPECT_NE(r.status().message().find("hopeless round"), std::string::npos);
}

TEST_F(FaultTest, CrashedPartyYieldsCleanProtocolError) {
  FaultPlan plan;
  plan.seed = 31;
  plan.crash = CrashSpec{/*party=*/0, /*after_round=*/0};
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");  // Round index 0: A still alive.
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {1}).ok());
  ASSERT_TRUE(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1).ok());

  net.BeginRound("r2");  // Round index 1 > after_round: A is gone.
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1, {2}).ok());
  auto r = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(r.status().message().find("crashed"), std::string::npos);
  EXPECT_GE(net.fault_stats().crash_dropped, 1u);
  EXPECT_GE(net.fault_stats().retransmits_refused, 1u);
}

TEST_F(FaultTest, RetransmitRefusedForUnknownSequence) {
  FaultyNetwork net(FaultPlan::None());
  Register(&net);
  net.BeginRound("r1");
  auto r = net.RequestRetransmit(b_, a_, /*seq=*/99);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("seq 99"), std::string::npos);
  EXPECT_EQ(net.fault_stats().retransmits_refused, 1u);
}

TEST_F(FaultTest, RetransmissionsAreMetered) {
  FaultPlan plan;
  plan.seed = 37;
  plan.rules.push_back(Always(FaultKind::kDrop, /*max_triggers=*/1));
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("r1");
  ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                             std::vector<uint8_t>(10)).ok());
  ASSERT_TRUE(net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1).ok());
  // Original send plus one retransmission, both at wire size.
  auto report = net.Report();
  EXPECT_EQ(report.num_messages, 2u);
  EXPECT_EQ(report.num_bytes, 2u * (10u + kEnvelopeOverheadBytes));
  EXPECT_EQ(report.num_payload_bytes, 20u);
}

TEST_F(FaultTest, SameSeedSameSchedule) {
  auto run = [this](uint64_t seed) {
    FaultyNetwork net(FaultPlan::RandomPlan(seed, 2));
    Register(&net);
    net.BeginRound("r1");
    std::vector<bool> outcomes;
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                                 {static_cast<uint8_t>(i)}).ok());
      outcomes.push_back(
          net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1).ok());
    }
    return std::make_pair(outcomes, net.fault_stats().injected());
  };
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto first = run(seed);
    auto second = run(seed);
    EXPECT_EQ(first.first, second.first) << "seed=" << seed;
    EXPECT_EQ(first.second, second.second) << "seed=" << seed;
  }
}

TEST_F(FaultTest, RandomPlanIsDeterministicAndBounded) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FaultPlan p1 = FaultPlan::RandomPlan(seed, 4);
    FaultPlan p2 = FaultPlan::RandomPlan(seed, 4);
    ASSERT_EQ(p1.rules.size(), p2.rules.size());
    EXPECT_GE(p1.rules.size(), 1u);
    EXPECT_LE(p1.rules.size(), 3u);
    for (size_t i = 0; i < p1.rules.size(); ++i) {
      EXPECT_EQ(p1.rules[i].kind, p2.rules[i].kind);
      EXPECT_EQ(p1.rules[i].probability, p2.rules[i].probability);
    }
    EXPECT_EQ(p1.crash.has_value(), p2.crash.has_value());
    if (p1.crash.has_value()) {
      // The host (party 0) is never crashed.
      EXPECT_GE(p1.crash->party, 1u);
    }
  }
}

TEST_F(FaultTest, FaultKindNames) {
  EXPECT_STREQ(FaultKindToString(FaultKind::kDrop), "drop");
  EXPECT_STREQ(FaultKindToString(FaultKind::kDelay), "delay");
}

TEST_F(FaultTest, EarlyFrameStashIsBounded) {
  // A lost first frame turns every later frame on the channel into an
  // "early" one. The receiver stashes a bounded number, then refuses to
  // buffer more with a clean error instead of growing without limit.
  FaultPlan plan;
  FaultRule drop_first = Always(FaultKind::kDrop, /*max_triggers=*/1);
  plan.rules.push_back(drop_first);
  FaultyNetwork net(plan);
  Register(&net);
  net.BeginRound("flood");
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(net.SendFramed(a_, b_, ProtocolId::kSecureSum, 1,
                               std::vector<uint8_t>(4)).ok());
  }
  RecvOptions opts;
  opts.max_attempts = 200;
  // First call fills the stash to the cap and gives up on seq 0.
  auto first = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1, opts);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(net.StashedCount(a_, b_), kMaxStashedFramesPerChannel);
  // The next early frame hits the cap: a clean refusal, not more buffering.
  auto second = net.RecvValidated(b_, a_, ProtocolId::kSecureSum, 1, opts);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(second.status().message().find("stash overflow"),
            std::string::npos);
  EXPECT_EQ(net.StashedCount(a_, b_), kMaxStashedFramesPerChannel);
  // A resume repairs the channel: stash dropped, stale frames discarded.
  net.ResyncChannel(a_, b_);
  EXPECT_EQ(net.StashedCount(a_, b_), 0u);
  (void)net.DrainAll();
  EXPECT_EQ(net.PendingCount(), 0u);
}

TEST_F(FaultTest, CrashRestartWindowSilencesOnlyItsRounds) {
  FaultPlan plan;
  plan.crash = CrashSpec{/*party=*/1, /*after_round=*/0, /*restart_round=*/2};
  FaultyNetwork net(plan);
  Register(&net);

  net.BeginRound("r0");  // Round index 0: before the window, b is up.
  ASSERT_TRUE(net.Send(b_, a_, {1}).ok());
  EXPECT_TRUE(net.Recv(a_, b_).ok());

  net.BeginRound("r1");  // Round index 1: inside (0, 2), b is down.
  ASSERT_TRUE(net.Send(b_, a_, {2}).ok());
  EXPECT_FALSE(net.HasPending(a_, b_));
  EXPECT_EQ(net.fault_stats().crash_dropped, 1u);

  net.BeginRound("r2");  // Round index 2: restarted, b is up again.
  ASSERT_TRUE(net.Send(b_, a_, {3}).ok());
  auto msg = net.Recv(a_, b_);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.ValueOrDie()[0], 3);
}

TEST_F(FaultTest, RandomRestartPlanIsDeterministicAndAlwaysRestarts) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FaultPlan p1 = FaultPlan::RandomRestartPlan(seed, 4);
    FaultPlan p2 = FaultPlan::RandomRestartPlan(seed, 4);
    ASSERT_TRUE(p1.crash.has_value());
    ASSERT_TRUE(p2.crash.has_value());
    EXPECT_EQ(p1.crash->party, p2.crash->party);
    EXPECT_EQ(p1.crash->after_round, p2.crash->after_round);
    EXPECT_EQ(p1.crash->restart_round, p2.crash->restart_round);
    // Never the host, always a finite restart: every schedule is
    // recoverable in principle, which is what the session sweeps rely on.
    EXPECT_GE(p1.crash->party, 1u);
    EXPECT_LT(p1.crash->restart_round, UINT64_MAX);
    EXPECT_GT(p1.crash->restart_round, p1.crash->after_round + 1);
    EXPECT_LE(p1.rules.size(), 2u);
  }
}

}  // namespace
}  // namespace psi
