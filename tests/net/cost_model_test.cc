#include "net/cost_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "mpc/homomorphic_sum.h"
#include "net/envelope.h"
#include "net/network.h"
#include "net/socket_util.h"

namespace psi {
namespace {

Protocol4CostParams P4Params(uint64_t m, uint64_t n, uint64_t q,
                             uint64_t log_s) {
  Protocol4CostParams p;
  p.m = m;
  p.n = n;
  p.q = q;
  p.log_s = log_s;
  return p;
}

TEST(CostModelTest, Protocol4TotalsMatchPaperFormulas) {
  // Section 7.1.1: NR = 8, NM = m^2 + m + 7.
  for (uint64_t m : {2u, 3u, 5u, 10u, 20u}) {
    auto s = Protocol4Costs(P4Params(m, 1000, 5000, 128)).ValueOrDie();
    EXPECT_EQ(s.nr, 8u) << "m=" << m;
    EXPECT_EQ(s.nm, m * m + m + 7) << "m=" << m;
  }
}

TEST(CostModelTest, Protocol4DominantTermScalesAsM2NQLogS) {
  // MS = O(m^2 (n+q) log S): doubling log S roughly doubles the share rounds.
  auto base = Protocol4Costs(P4Params(5, 1000, 5000, 64)).ValueOrDie();
  auto big = Protocol4Costs(P4Params(5, 1000, 5000, 128)).ValueOrDie();
  // The real-valued and index rounds do not scale with log S, so the ratio
  // sits slightly below 2.
  double ratio = static_cast<double>(big.ms_bits) /
                 static_cast<double>(base.ms_bits);
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.0);
}

TEST(CostModelTest, Protocol4RowStructure) {
  auto s = Protocol4Costs(P4Params(4, 100, 300, 64)).ValueOrDie();
  ASSERT_EQ(s.rows.size(), 8u);
  // Row 2 is the m(m-1) pairwise share exchange of (n+q) log S bits.
  EXPECT_EQ(s.rows[1].num_messages, 12u);
  EXPECT_EQ(s.rows[1].bits_per_message, (100 + 300) * 64u);
  // Row 5 is the one comparison-bit message: (n+q) bits.
  EXPECT_EQ(s.rows[4].num_messages, 1u);
  EXPECT_EQ(s.rows[4].bits_per_message, 400u);
  // Rows 6-7 carry n reals in each direction.
  EXPECT_EQ(s.rows[5].num_messages, 2u);
  EXPECT_EQ(s.rows[5].bits_per_message, 100u * 64u);
}

TEST(CostModelTest, Protocol4TwoProvidersHasEmptyFoldRound) {
  auto s = Protocol4Costs(P4Params(2, 10, 20, 64)).ValueOrDie();
  EXPECT_EQ(s.rows[2].num_messages, 0u);  // m - 2 == 0.
  EXPECT_EQ(s.nm, 2u * 2u + 2u + 7u);
}

TEST(CostModelTest, Protocol6TotalsMatchPaperFormulas) {
  // Section 7.1.2: NR = 4, NM = 3m, MS <= 2qzA.
  for (uint64_t m : {2u, 4u, 8u}) {
    Protocol6CostParams p;
    p.m = m;
    p.q = 1000;
    p.z = 1024;
    p.kappa = 2048;
    p.actions_per_provider.assign(m, 50);
    auto s = Protocol6Costs(p).ValueOrDie();
    EXPECT_EQ(s.nr, 4u) << "m=" << m;
    EXPECT_EQ(s.nm, 3 * m) << "m=" << m;
    uint64_t total_actions = 50 * m;
    EXPECT_LE(s.ms_bits, 2 * p.q * p.z * total_actions + p.m * p.kappa +
                             p.m * 2 * p.q * p.index_bits);
  }
}

TEST(CostModelTest, Protocol6DominatedByCiphertextRounds) {
  Protocol6CostParams p;
  p.m = 3;
  p.q = 2000;
  p.z = 1024;
  p.kappa = 2048;
  p.actions_per_provider = {100, 100, 100};
  auto s = Protocol6Costs(p).ValueOrDie();
  // Last round: q * z * A bits = 2000 * 1024 * 300.
  EXPECT_EQ(s.rows.back().bits_per_message, 2000ull * 1024 * 300);
  // The two ciphertext rounds are ~ 2qzA of the total.
  uint64_t cipher_bits = 2000ull * 1024 * (200 + 300);
  EXPECT_GT(static_cast<double>(cipher_bits) / static_cast<double>(s.ms_bits),
            0.99);
}

TEST(CostModelTest, Protocol6UnequalProvidersExactTotal) {
  Protocol6CostParams p;
  p.m = 3;
  p.q = 10;
  p.z = 100;
  p.kappa = 200;
  p.actions_per_provider = {7, 3, 5};
  auto s = Protocol6Costs(p).ValueOrDie();
  uint64_t expected = 3 * (2 * 10 * p.index_bits)  // Omega round
                      + 3 * 200                    // key round
                      + 10 * 100 * (3 + 5)         // relay round (P2, P3)
                      + 10 * 100 * 15;             // forward round (all)
  EXPECT_EQ(s.ms_bits, expected);
}

TEST(CostModelTest, SummaryRendering) {
  auto s = Protocol4Costs(P4Params(3, 10, 20, 64)).ValueOrDie();
  std::string text = s.ToString();
  EXPECT_NE(text.find("NR=8"), std::string::npos);
  EXPECT_NE(text.find("Prot.1"), std::string::npos);
}

TEST(CostModelTest, Protocol4RejectsTooFewProviders) {
  auto r = Protocol4Costs(P4Params(1, 10, 20, 64));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("two providers"), std::string::npos);
}

TEST(CostModelTest, Protocol6RejectsMismatchedActionCounts) {
  Protocol6CostParams p;
  p.m = 3;
  p.q = 10;
  p.z = 100;
  p.kappa = 200;
  p.actions_per_provider = {7, 3};  // Only two entries for three providers.
  auto r = Protocol6Costs(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  p.m = 0;
  p.actions_per_provider.clear();
  EXPECT_FALSE(Protocol6Costs(p).ok());
}

TEST(CostModelTest, EnvelopedBitsAddsFixedPerMessageOverhead) {
  auto s = Protocol4Costs(P4Params(3, 10, 20, 64)).ValueOrDie();
  EXPECT_EQ(EnvelopedBits(s), s.ms_bits + s.nm * kEnvelopeOverheadBytes * 8);
}

TEST(CostModelTest, Protocol6SlotsOneIsBitIdenticalToTable2) {
  Protocol6CostParams p;
  p.m = 3;
  p.q = 10;
  p.z = 100;
  p.kappa = 200;
  p.actions_per_provider = {7, 3, 5};
  Protocol6CostParams packed = p;
  packed.slots_per_ciphertext = 1;  // Explicit 1 == the historical model.
  auto base = Protocol6Costs(p).ValueOrDie();
  auto same = Protocol6Costs(packed).ValueOrDie();
  EXPECT_EQ(base.ms_bits, same.ms_bits);
  EXPECT_EQ(base.nm, same.nm);

  // slots = 4: each action vector costs ceil(10 / 4) = 3 ciphertexts.
  packed.slots_per_ciphertext = 4;
  auto fewer = Protocol6Costs(packed).ValueOrDie();
  uint64_t expected = 3 * (2 * 10 * p.index_bits)  // Omega round (unchanged)
                      + 3 * 200                    // key round (unchanged)
                      + 3 * 100 * (3 + 5)          // relay round
                      + 3 * 100 * 15;              // forward round
  EXPECT_EQ(fewer.ms_bits, expected);
  EXPECT_EQ(fewer.nm, base.nm);  // Same message structure, smaller payloads.

  packed.slots_per_ciphertext = 0;
  EXPECT_FALSE(Protocol6Costs(packed).ok());
}

TEST(CostModelTest, HomomorphicSumTotals) {
  for (uint64_t m : {2u, 3u, 6u}) {
    HomomorphicSumCostParams p;
    p.m = m;
    p.count = 100;
    p.key_bits = 512;
    auto s = HomomorphicSumCosts(p).ValueOrDie();
    EXPECT_EQ(s.nr, 3u) << "m=" << m;
    EXPECT_EQ(s.nm, 2 * m - 2) << "m=" << m;
  }
  HomomorphicSumCostParams bad;
  bad.m = 1;
  bad.count = 1;
  bad.key_bits = 512;
  EXPECT_FALSE(HomomorphicSumCosts(bad).ok());
}

TEST(CostModelTest, HomomorphicSumCostsMatchMeteredRun) {
  // The analytic model must reproduce the simulator's zero-fault byte count
  // exactly, for both the unpacked and the packed path.
  for (bool use_packed : {false, true}) {
    Network net;
    std::vector<PartyId> players;
    std::vector<std::unique_ptr<Rng>> rngs;
    std::vector<Rng*> rng_ptrs;
    const size_t m = 3;
    for (size_t k = 0; k < m; ++k) {
      players.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
      rngs.push_back(std::make_unique<Rng>(500 + k));
      rng_ptrs.push_back(rngs.back().get());
    }
    HomomorphicSumConfig config;
    config.paillier_bits = 512;
    if (use_packed) config.counter_bound = BigUInt((1ull << 20) - 1);
    HomomorphicSumProtocol proto(&net, players, config);
    const size_t count = 40;
    std::vector<std::vector<uint64_t>> inputs(m,
                                              std::vector<uint64_t>(count));
    for (size_t k = 0; k < m; ++k) {
      for (size_t c = 0; c < count; ++c) inputs[k][c] = 1000 * k + 7 * c;
    }
    ASSERT_TRUE(proto.Run(inputs, rng_ptrs, "h.").ok());
    ASSERT_EQ(proto.last_run_packed(), use_packed);

    HomomorphicSumCostParams p;
    p.m = m;
    p.count = count;
    p.key_bits = 512;
    p.slots_per_ciphertext = proto.last_run_slots();
    auto s = HomomorphicSumCosts(p).ValueOrDie();
    auto report = net.Report();
    EXPECT_EQ(report.num_messages, s.nm) << "packed=" << use_packed;
    EXPECT_EQ(report.num_rounds, s.nr) << "packed=" << use_packed;
    EXPECT_EQ(report.num_bytes * 8, EnvelopedBits(s))
        << "packed=" << use_packed;
  }
}

TEST(CostModelTest, HomomorphicSumPackingSavingsRatio) {
  HomomorphicSumCostParams p;
  p.m = 3;
  p.count = 512;
  p.key_bits = 512;
  p.slots_per_ciphertext = 9;  // The 20-bit-counter geometry at 512 bits.
  auto report = HomomorphicSumPackingSavings(p).ValueOrDie();
  EXPECT_EQ(report.unpacked.nm, report.packed.nm);
  EXPECT_GT(report.unpacked.ms_bits, report.packed.ms_bits);
  EXPECT_GT(report.EnvelopeRatio(), 8.0);

  p.slots_per_ciphertext = 1;
  auto flat = HomomorphicSumPackingSavings(p).ValueOrDie();
  EXPECT_DOUBLE_EQ(flat.EnvelopeRatio(), 1.0);
}

TEST(CostModelTest, SessionResumeCosts) {
  SessionResumeCostParams p;
  p.num_parties = 4;  // H + 3 providers.
  auto s = SessionResumeCosts(p).ValueOrDie();
  // One round; one 8-byte sync frame per ordered pair of parties.
  EXPECT_EQ(s.nr, 1u);
  EXPECT_EQ(s.nm, 4u * 3u);
  EXPECT_EQ(s.ms_bits, s.nm * 64u);

  p.num_parties = 2;
  auto pair = SessionResumeCosts(p).ValueOrDie();
  EXPECT_EQ(pair.nm, 2u);

  p.num_parties = 1;
  EXPECT_FALSE(SessionResumeCosts(p).ok());
}

TEST(CostModelTest, TransportOverheadCosts) {
  TransportOverheadCostParams p;
  p.relayed_messages = 10;
  p.heartbeats = 5;
  p.reconnects = 1;
  p.session_name_bytes = 16;
  p.hosted_parties = 1;
  auto report = TransportOverheadCosts(p).ValueOrDie();
  // Each relayed frame is framed twice: 12-byte transport header plus the
  // 8-byte routing prefix, client -> daemon and on the echo back.
  EXPECT_EQ(report.relay_overhead_bytes, 10u * 2u * (12u + 8u));
  // A probe and its ack each cost one empty-body header.
  EXPECT_EQ(report.heartbeat_bytes, 5u * 2u * 12u);
  // challenge(16-byte nonce) + hello(session, 32-byte digest, party list)
  // + ack(verdict byte, short reason), each under a 12-byte header.
  const uint64_t hello_body = (1 + 16) + (1 + 32) + 1 + 1;
  const uint64_t ack_body = 1 + (1 + 2);
  EXPECT_EQ(report.reconnect_bytes,
            (12u + 16u) + (12u + hello_body) + (12u + ack_body));
  EXPECT_EQ(report.total_overhead_bytes,
            report.relay_overhead_bytes + report.heartbeat_bytes +
                report.reconnect_bytes);
  // Ratio against a protocol transcript; zero protocol bytes is not a
  // division crash.
  EXPECT_GT(report.OverheadRatio(4000), 0.0);
  EXPECT_DOUBLE_EQ(report.OverheadRatio(0), 0.0);
}

TEST(CostModelTest, TransportOverheadCostsRejectsWidePartyLists) {
  TransportOverheadCostParams p;
  p.relayed_messages = 1;
  p.hosted_parties = 128;  // Beyond the 1-byte-varint model.
  EXPECT_FALSE(TransportOverheadCosts(p).ok());
}

TEST(CostModelTest, TransportOverheadMatchesMeasuredRelayFraming) {
  // The model's per-relay constant is exactly the transport header plus
  // the routing prefix the implementation writes (net/socket_util.h):
  // kData body = [u32 from][u32 to][envelope frame].
  TransportOverheadCostParams p;
  p.relayed_messages = 1;
  auto one = TransportOverheadCosts(p).ValueOrDie();
  EXPECT_EQ(one.relay_overhead_bytes, 2 * (kTransportHeaderBytes + 8));
}

}  // namespace
}  // namespace psi
