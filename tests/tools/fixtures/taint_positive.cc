// Fixture: flow-sensitive taint — violations via assignment propagation,
// function summaries, and the constant-time sinks.
#include "common/annotations.h"

namespace fx {

struct Key {
  PSI_SECRET unsigned d;
  unsigned n;
};

// Summary taint: the return value derives from the secret field.
unsigned Derive(const Key& k) {
  unsigned m = k.d + 1;              // m tainted by assignment
  return m * 3;                      // -> Derive() is secret-derived
}

unsigned Use(const Key& k, const unsigned* table, unsigned x) {
  unsigned m = k.d;                  // taint propagates through locals
  unsigned c = m ^ x;
  if (c > 7) return 0;               // branch on derived secret
  unsigned idx = Derive(k);          // summary taint at the call site
  unsigned v = table[idx];           // secret-indexed subscript
  unsigned s = x << m;               // secret shift count
  return v + s;
}

bool Same(const Key& k, const unsigned char* a, const unsigned char* b) {
  return memcmp(a, b, k.d) == 0;     // secret length in early-exit compare
}

unsigned Kill(const Key& k, unsigned x) {
  unsigned m = k.d;
  m = x;                             // plain re-assignment kills the taint
  if (m > 2) return 1;               // clean: no finding
  return 0;
}

}  // namespace fx
