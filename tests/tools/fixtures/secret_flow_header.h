// Fixture header: the annotation lives here; the paired .cc must inherit it.
#include "common/annotations.h"

namespace fx {
struct Mask {
  PSI_SECRET unsigned long long r;
};
}  // namespace fx
