// Fixture: RNG draws inside parallel bodies break transcript determinism.
#include "common/thread_pool.h"

namespace fx {

void Bad(ThreadPool* pool, Rng* rng, std::vector<int>* out) {
  ParallelFor(0, out->size(), [&](size_t i) {
    (*out)[i] = rng->UniformU64(10);      // draw inside a parallel body
  });
  pool->Submit([&] {
    auto x = rng->NextBlock();            // draw inside a submitted task
    (void)x;
  });
  ParallelForChunked(0, 8, 2, [&](size_t lo, size_t hi) {
    my_prng.Fill(lo, hi);                 // prng method call in parallel body
  });
}

}  // namespace fx
