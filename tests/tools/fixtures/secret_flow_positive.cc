// Fixture: every secret use below is a violation.
#include "common/annotations.h"

namespace fx {

struct Key {
  PSI_SECRET int d;
  int n;
};

int Use(const Key& k, int x) {
  if (k.d > 0) return 1;             // branch on a secret
  int a = x % k.d;                   // secret modulo operand
  int b = k.d / x;                   // secret division operand
  int c = k.d > x ? 1 : 0;           // secret in a ternary condition
  PSI_LOG(INFO) << k.d;              // secret logged
  return a + b + c;
}

void Leak(Network* net, const Key& k) {
  net->Send(0, 1, Pack(k.d));        // secret sent without masking
}

}  // namespace fx
