// Fixture: ReadCount and explicit guards make deserialized counts safe.
#include "common/serialize.h"

namespace fx {

Status GoodReadCount(BinaryReader* r, std::vector<int>* out) {
  uint64_t count;
  PSI_RETURN_NOT_OK(r->ReadCount(&count, /*min_bytes_per_element=*/8));
  out->resize(count);                       // bounded by ReadCount
  return Status::OK();
}

Status GoodGuard(BinaryReader* r, std::vector<int>* out) {
  uint64_t n;
  PSI_RETURN_NOT_OK(r->ReadU64(&n));
  if (n > r->remaining()) return Status::SerializationError("bad count");
  out->resize(n);                           // guarded above
  return Status::OK();
}

Status GoodCheck(BinaryReader* r) {
  uint64_t n;
  PSI_RETURN_NOT_OK(r->ReadVarU64(&n));
  PSI_CHECK(n <= 64) << "count out of range";
  for (uint64_t i = 0; i < n; ++i) Touch(i);  // bounded by the check
  return Status::OK();
}

Status GoodReassigned(BinaryReader* r, std::vector<int>* out) {
  uint64_t n;
  PSI_RETURN_NOT_OK(r->ReadU64(&n));
  n = 16;                                   // overwritten: no longer tainted
  out->resize(n);
  return Status::OK();
}

}  // namespace fx
