// Fixture: malformed suppressions are findings themselves.
#include "common/annotations.h"

namespace fx {

struct Key {
  PSI_SECRET int d;
};

int Use(const Key& k) {
  // psi-lint: allow(secret-flow)
  if (k.d > 0) return 1;               // missing justification

  // psi-lint: allow(not-a-check) some words
  if (k.d > 1) return 2;               // unknown check name

  // psi-lint: allow secret-flow no parens
  if (k.d > 2) return 3;               // missing parentheses

  // psi-lint: disable(secret-flow) wrong verb
  if (k.d > 3) return 4;               // unknown directive

  return 0;
}

}  // namespace fx
