// Fixture header: Status/Result functions missing [[nodiscard]].
#include "common/status.h"

namespace fx {

Status Connect(int fd);                     // missing [[nodiscard]]
Result<int> Parse(const char* s);           // missing [[nodiscard]]

class Client {
 public:
  Status Flush();                           // missing [[nodiscard]]
};

}  // namespace fx
