// Fixture: valid suppressions silence a real finding, both same-line and
// line-above.
#include "common/annotations.h"

namespace fx {

struct Key {
  PSI_SECRET int d;
};

int Use(const Key& k) {
  // psi-lint: allow(secret-flow) fixture demonstrates the line-above form
  if (k.d > 0) return 1;
  return k.d > 2 ? 3 : 4;  // psi-lint: allow(secret-flow) same-line form
}

}  // namespace fx
