// Fixture: every Status is consumed.
#include "nodiscard_status_negative.h"

namespace fx {

Status Caller(Client* c) {
  PSI_RETURN_NOT_OK(c->Flush());
  Status s = Connect(3);                    // assigned
  if (!s.ok()) return s;
  return Connect(4);                        // returned
}

}  // namespace fx
