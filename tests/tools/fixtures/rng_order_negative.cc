// Fixture: serial draws, and parallel bodies that only consume pre-drawn
// values, are fine.
#include "common/thread_pool.h"

namespace fx {

void Good(ThreadPool* pool, Rng* rng, std::vector<int>* out) {
  std::vector<int> pre(out->size());
  for (auto& v : pre) v = rng->UniformU64(10);   // serial program order
  ParallelFor(0, out->size(), [&](size_t i) {
    (*out)[i] = pre[i] * 2;                       // pure compute
  });
  pool->Submit([&] {
    int x = pre[0];
    (void)x;
  });
  auto later = rng->NextBlock();                  // after the parallel region
  (void)later;
}

}  // namespace fx
