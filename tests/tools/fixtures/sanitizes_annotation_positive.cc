// Fixture: the PSI_SANITIZES vocabulary is explicit — a function merely
// NAMED like a sanitizer no longer launders anything.
#include "common/annotations.h"

namespace fx {

struct Key {
  PSI_SECRET unsigned s;
};

// No annotation: despite the name, calls do not declassify.
unsigned MaskBytes(unsigned v) { return v; }

void Leak(Network* net, const Key& k) {
  if (MaskBytes(k.s) != 0) {              // name-vocabulary no longer sanitizes
    net->Send(0, 1, MaskBytes(k.s));
  }
}

}  // namespace fx
