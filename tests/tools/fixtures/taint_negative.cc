// Fixture: no violations — taint killed by re-assignment, laundered by
// PSI_SANITIZES, or never reaching a sink.
#include "common/annotations.h"

namespace fx {

PSI_SANITIZES unsigned Blind(unsigned v);

struct Key {
  PSI_SECRET unsigned d;
  unsigned n;
};

// The sanitizer annotation stops the summary: Launder is NOT secret-derived
// even though its return expression touches the secret.
PSI_SANITIZES unsigned Launder(const Key& k) { return k.d * 2654435761u; }

unsigned Use(const Key& k, const unsigned* table, unsigned x) {
  unsigned m = k.d;
  m = x;                             // taint killed before any sink
  if (m > 7) return 0;
  unsigned idx = Launder(k);         // declassified at the call site
  unsigned v = table[idx];           // public index
  unsigned b = Blind(k.d);           // laundered assignment: b is clean
  unsigned s = x << b;
  return v + s + table[m % 4];
}

unsigned Projection(const Key& k, const unsigned* table) {
  // Size-like projections of a secret object are public structure.
  return table[sizeof(k) % 4];
}

}  // namespace fx
