// Fixture: secret flow inside a templated class (the fixed-width Montgomery
// engine shape — fixed_mont.cc). The checker must see through the template
// header: PSI_SECRET parameters of template member functions are tracked
// exactly like non-template ones, and a suppression on the ladder line
// still works inside a template body.
#include "common/annotations.h"

namespace fx {

template <unsigned L>
class Engine {
 public:
  int Pow(int base, PSI_SECRET int exp) const {
    int result = 1;
    for (int i = 0; i < 8; ++i) {
      result *= base;
      if ((exp >> i) & 1) result *= base;  // secret exponent bit branches
    }
    return result;
  }

  int Masked(int base, PSI_SECRET int exp) const {
    int result = base;
    // psi-lint: allow(secret-flow) fixture: suppression inside a template
    if (exp != 0) result *= base;
    return result;
  }

  PSI_SECRET int key_ = 0;
};

template <unsigned L>
int Digit(const Engine<L>& e, PSI_SECRET unsigned exp, unsigned pos) {
  return static_cast<int>((exp >> pos) % (1u << L));  // secret '%' operand
}

int Drive(int x) {
  Engine<4> e;
  return e.Pow(x, 3) + e.Masked(x, 1) + Digit(e, 9u, 1u);
}

}  // namespace fx
