// Fixture: no violations — every SendFramed pairs with a RecvValidated with
// the flipped party pair, the same ProtocolId and the same step, and stage
// names are unique non-empty literals.
#include "common/annotations.h"

namespace fx {

void Paired(Network* net, PartyId a, PartyId b) {
  net->SendFramed(a, b, ProtocolId::kLinkInfluence, kStepOmega, payload);
  net->RecvValidated(b, a, ProtocolId::kLinkInfluence, kStepOmega);
}

void Stages(ProtocolSession& session, Network* net) {
  session.AddStage("omega", [&]() {
    net->SendFramed(host, provider, ProtocolId::kLinkInfluence, kStepOmega,
                    buf);
    net->RecvValidated(provider, host, ProtocolId::kLinkInfluence, kStepOmega);
  });
  session.AddStage("masks", [&]() {
    for (size_t k = 0; k < m; ++k) {
      net->SendFramed(players[k], players[0], ProtocolId::kLinkInfluence,
                      kStepMasks, shares[k]);
    }
    for (size_t k = 0; k < m; ++k) {
      net->RecvValidated(players[0], players[k], ProtocolId::kLinkInfluence,
                         kStepMasks);
    }
  });
}

// One-sided helpers are exempt: the peer recv lives in another function.
void SendSide(Network* net, PartyId a, PartyId b) {
  net->SendFramed(a, b, ProtocolId::kSecureSum, kStepShare, payload);
}

void RecvSide(Network* net, PartyId a, PartyId b) {
  net->RecvValidated(b, a, ProtocolId::kSecureSum, kStepShare);
}

}  // namespace fx
