// Fixture: counts deserialized from a peer drive allocations and loops
// without any bound check.
#include "common/serialize.h"

namespace fx {

Status Bad(BinaryReader* r, std::vector<int>* out) {
  uint64_t count;
  PSI_RETURN_NOT_OK(r->ReadVarU64(&count));
  out->resize(count);                       // unchecked resize
  return Status::OK();
}

Status BadLoop(BinaryReader* r) {
  uint64_t n;
  PSI_RETURN_NOT_OK(r->ReadU64(&n));
  for (uint64_t i = 0; i < n; ++i) {        // unchecked loop bound
    Touch(i);
  }
  return Status::OK();
}

Status BadReserve(BinaryReader* r, std::vector<int>* out) {
  uint64_t k;
  PSI_RETURN_NOT_OK(r->ReadU32(&k));
  out->reserve(k);                          // unchecked reserve
  return Status::OK();
}

}  // namespace fx
