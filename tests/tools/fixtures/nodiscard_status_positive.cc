// Fixture: call sites that silently discard a Status.
#include "nodiscard_status_positive.h"

namespace fx {

void Caller(Client* c) {
  c->Flush();                               // discarded Status
  Connect(3);                               // discarded Status
}

}  // namespace fx
