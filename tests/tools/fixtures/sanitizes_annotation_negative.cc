// Fixture: no violations — PSI_SANITIZES declassifiers on declarations,
// definitions, and inline members all launder taint at their call sites.
#include "common/annotations.h"

namespace fx {

struct Key {
  PSI_SECRET unsigned s;

  // Inline member declassifier.
  PSI_SANITIZES unsigned Commit() const { return s * 40503u; }
};

// Declaration-only declassifier.
PSI_SANITIZES unsigned MaskShare(unsigned v, unsigned r);

// Definition-site declassifier.
PSI_SANITIZES unsigned Pad(unsigned v) { return v ^ 0x5a5au; }

void Publish(Network* net, const Key& k, unsigned r) {
  if (k.Commit() != 0) {             // declassified branch
    net->Send(0, 1, MaskShare(k.s, r));
  }
  PSI_LOG(INFO) << Pad(k.s);
}

}  // namespace fx
