// Fixture header: correctly annotated declarations.
#include "common/status.h"

namespace fx {

[[nodiscard]] Status Connect(int fd);
[[nodiscard]] Result<int> Parse(const char* s);

class Client {
 public:
  [[nodiscard]] Status Flush();
};

}  // namespace fx
