// Fixture: uses a secret declared only in the paired header.
#include "secret_flow_header.h"

namespace fx {
int Branch(const Mask& m) {
  if (m.r != 0) return 1;            // violation via inherited annotation
  return 0;
}
}  // namespace fx
