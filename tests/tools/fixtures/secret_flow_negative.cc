// Fixture: no violations — secrets only reach sinks through PSI_SANITIZES
// declassifiers, and public values may do anything.
#include "common/annotations.h"

namespace fx {

PSI_SANITIZES int Mask(int v);
PSI_SANITIZES int Encrypt(int v);

struct Key {
  PSI_SECRET int d;
  int n;
};

int Use(const Key& k, int x) {
  if (k.n > 0) return 1;             // public value in a branch is fine
  int a = x % k.n;                   // public modulo operand
  int b = Mask(k.d) % x;             // sanitized before the sink
  PSI_LOG(INFO) << k.n;              // public log
  return a + b;
}

void Ok(Network* net, const Key& k) {
  net->Send(0, 1, Encrypt(k.d));     // encrypted before sending
}

}  // namespace fx
