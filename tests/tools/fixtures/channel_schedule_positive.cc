// Fixture: channel-schedule violations — the seeded desync (a SendFramed no
// peer ever consumes), a recv with no preceding send, a stage mixing
// protocol ids, and unstable stage names.
#include "common/annotations.h"

namespace fx {

void Stages(ProtocolSession& session, Network* net) {
  session.AddStage("omega", [&]() {
    // Seeded desync: nothing in this stage consumes the frame.
    net->SendFramed(host, provider, ProtocolId::kLinkInfluence, kStepOmega,
                    buf);
  });
  session.AddStage("counters", [&]() {
    // Deadlock: the recv has no preceding send with the flipped pair.
    net->RecvValidated(host, provider, ProtocolId::kLinkInfluence,
                       kStepCounters);
  });
  session.AddStage("mixed", [&]() {
    net->SendFramed(host, provider, ProtocolId::kLinkInfluence, kStepOmega,
                    buf);
    net->RecvValidated(provider, host, ProtocolId::kPropagationGraph,
                       kStepOmega);
  });
  session.AddStage(stage_name, [&]() {});  // non-literal name
  session.AddStage("omega", [&]() {});     // duplicate name
}

// A function with both sides present is held to pairing: the step tags
// differ, so the send is orphaned and the recv blocks.
void Mismatched(Network* net, PartyId a, PartyId b) {
  net->SendFramed(a, b, ProtocolId::kSecureSum, kStepShare, payload);
  net->RecvValidated(b, a, ProtocolId::kSecureSum, kStepRecombine);
}

}  // namespace fx
