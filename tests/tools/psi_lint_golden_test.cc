// Golden-file tests for psi_lint (docs/STATIC_ANALYSIS.md).
//
// Every fixture under fixtures/ has a sibling `<name>.expected` holding the
// findings psi_lint must report for that file, one `line: check: message`
// per line (empty file = clean). The whole directory is linted in one pass,
// so cross-file behavior — header annotation inheritance, the project-wide
// discarded-Status call-site pass — is exercised exactly as the CLI does it.
//
// To update after an intentional checker change: run
//   psi_lint tests/tools/fixtures
// review the diff, and copy the per-file findings into the .expected files.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "sarif.h"

namespace psi_lint {
namespace {

namespace fs = std::filesystem;

const char kFixtureDir[] = PSI_LINT_FIXTURE_DIR;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

struct Expectations {
  // file name (no directory) -> expected "line: check: message" lines.
  std::map<std::string, std::vector<std::string>> per_file;
  size_t suppressed = 0;
};

Expectations LoadExpectations() {
  Expectations out;
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    const fs::path& p = entry.path();
    if (p.extension() != ".expected") continue;
    // foo.cc.expected -> foo.cc
    const std::string source_name = p.stem().string();
    std::ifstream in(p);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("suppressed ", 0) == 0) {
        out.suppressed += static_cast<size_t>(std::stoul(line.substr(11)));
        continue;
      }
      lines.push_back(line);
    }
    out.per_file[source_name] = std::move(lines);
  }
  return out;
}

TEST(PsiLintGolden, EveryFixtureHasExpectations) {
  const Expectations expected = LoadExpectations();
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    if (!IsSourceFile(entry.path())) continue;
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(expected.per_file.count(name))
        << "fixture " << name << " has no .expected file";
  }
}

TEST(PsiLintGolden, FindingsMatchExpectations) {
  const Expectations expected = LoadExpectations();
  const LintResult result = LintPaths({kFixtureDir});
  ASSERT_GT(result.files_scanned, 0u);

  std::map<std::string, std::vector<std::string>> actual;
  for (const auto& [name, unused] : expected.per_file) actual[name];
  for (const Finding& f : result.findings) {
    const std::string name = fs::path(f.file).filename().string();
    std::ostringstream line;
    line << f.line << ": " << f.check << ": " << f.message;
    actual[name].push_back(line.str());
  }

  for (const auto& [name, want] : expected.per_file) {
    EXPECT_EQ(actual[name], want) << "findings mismatch for fixture " << name;
  }
  for (const auto& [name, got] : actual) {
    EXPECT_TRUE(expected.per_file.count(name))
        << "unexpected findings in " << name;
  }
  EXPECT_EQ(result.suppressed, expected.suppressed);
}

TEST(PsiLintGolden, OnlyChecksFilterRestrictsFindings) {
  LintOptions options;
  options.only_checks = {"read-bounds"};
  const LintResult result = LintPaths({kFixtureDir}, options);
  ASSERT_FALSE(result.findings.empty());
  for (const Finding& f : result.findings) {
    // bad-suppression findings always survive the filter.
    EXPECT_TRUE(f.check == "read-bounds" || f.check == "bad-suppression")
        << f.ToString();
  }
}

TEST(PsiLintGolden, JsonReportIsWellFormed) {
  const LintResult result = LintPaths({kFixtureDir});
  const std::string json = ToJson(result);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\""), std::string::npos);
  // Every finding's check name appears in the JSON.
  for (const Finding& f : result.findings) {
    EXPECT_NE(json.find("\"" + f.check + "\""), std::string::npos);
  }
}

TEST(PsiLintGolden, UnreadablePathIsIoErrorFinding) {
  const LintResult result =
      LintPaths({std::string(kFixtureDir) + "/does_not_exist.cc"});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "io-error");
}

TEST(PsiLintGolden, KnownCheckNames) {
  EXPECT_TRUE(IsKnownCheck("secret-flow"));
  EXPECT_TRUE(IsKnownCheck("rng-order"));
  EXPECT_TRUE(IsKnownCheck("read-bounds"));
  EXPECT_TRUE(IsKnownCheck("nodiscard-status"));
  EXPECT_TRUE(IsKnownCheck("channel-schedule"));
  EXPECT_FALSE(IsKnownCheck("bad-suppression"));
  EXPECT_FALSE(IsKnownCheck("made-up"));
}

// The seeded desync in channel_schedule_positive.cc (a SendFramed whose
// RecvValidated never runs) must be flagged when the check is on and must be
// the ONLY thing standing between the fixture and a pass when it is off —
// i.e. the gate genuinely depends on channel-schedule being enabled.
TEST(PsiLintGolden, SeededDesyncIsCaughtOnlyByChannelScheduleCheck) {
  const std::string fixture =
      std::string(kFixtureDir) + "/channel_schedule_positive.cc";

  LintOptions with;
  with.only_checks = {"channel-schedule"};
  const LintResult on = LintPaths({fixture}, with);
  bool saw_desync = false;
  for (const Finding& f : on.findings) {
    EXPECT_EQ(f.check, "channel-schedule") << f.ToString();
    if (f.message.find("never consumed") != std::string::npos) {
      saw_desync = true;
    }
  }
  EXPECT_TRUE(saw_desync)
      << "seeded desync fixture did not produce a desync finding";

  LintOptions without;
  without.only_checks = {"secret-flow", "rng-order", "read-bounds",
                         "nodiscard-status"};
  const LintResult off = LintPaths({fixture}, without);
  for (const Finding& f : off.findings) {
    EXPECT_NE(f.check, "channel-schedule") << f.ToString();
    EXPECT_EQ(f.message.find("never consumed"), std::string::npos)
        << "desync finding leaked past the only_checks filter: "
        << f.ToString();
  }
}

TEST(PsiLintGolden, SarifReportIsWellFormed) {
  const LintResult result = LintPaths({kFixtureDir});
  ASSERT_FALSE(result.findings.empty());
  const std::string sarif = ToSarif(result);

  // Schema-level required properties of a SARIF 2.1.0 log.
  EXPECT_NE(sarif.find("\"$schema\""), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  EXPECT_NE(sarif.find("\"tool\""), std::string::npos);
  EXPECT_NE(sarif.find("\"psi_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);

  // Every finding appears as a result with its rule id and location.
  for (const Finding& f : result.findings) {
    EXPECT_NE(sarif.find("\"ruleId\":\"" + f.check + "\""),
              std::string::npos)
        << f.check;
  }

  // Balanced braces/brackets outside string literals — a cheap structural
  // JSON validity proxy that catches truncated emission.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : sarif) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace psi_lint
