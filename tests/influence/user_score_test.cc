#include "influence/user_score.h"

#include <gtest/gtest.h>

#include "actionlog/counters.h"
#include "actionlog/generator.h"
#include "graph/generators.h"

namespace psi {
namespace {

// Path graph 0 -> 1 -> 2 -> 3 with one action propagating along it.
struct ChainFixture {
  ChainFixture() : graph(4) {
    PSI_CHECK_OK(graph.AddArc(0, 1));
    PSI_CHECK_OK(graph.AddArc(1, 2));
    PSI_CHECK_OK(graph.AddArc(2, 3));
    log.Add({0, 0, 0});
    log.Add({1, 0, 2});
    log.Add({2, 0, 5});
    log.Add({3, 0, 9});
  }
  SocialGraph graph;
  ActionLog log;
};

TEST(UserScoreTest, PropagationGraphFollowsDefinition31) {
  ChainFixture f;
  auto pg = BuildPropagationGraph(f.graph, f.log, 0).ValueOrDie();
  EXPECT_EQ(pg.num_arcs(), 3u);
  ASSERT_EQ(pg.OutArcs(0).size(), 1u);
  EXPECT_EQ(pg.OutArcs(0)[0].to, 1u);
  EXPECT_EQ(pg.OutArcs(0)[0].delta_t, 2u);
  EXPECT_EQ(pg.OutArcs(1)[0].delta_t, 3u);
  EXPECT_EQ(pg.OutArcs(2)[0].delta_t, 4u);
}

TEST(UserScoreTest, PropagationGraphRequiresSocialArc) {
  // Users 0 and 2 both act but have no arc: no PG arc between them.
  SocialGraph g(3);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  log.Add({0, 0, 0});
  log.Add({2, 0, 1});
  auto pg = BuildPropagationGraph(g, log, 0).ValueOrDie();
  EXPECT_EQ(pg.num_arcs(), 0u);
}

TEST(UserScoreTest, PropagationGraphIgnoresNonPositiveDeltas) {
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  PSI_CHECK_OK(g.AddArc(1, 0));
  ActionLog log;
  log.Add({0, 0, 5});
  log.Add({1, 0, 5});  // Simultaneous: no influence either way.
  auto pg = BuildPropagationGraph(g, log, 0).ValueOrDie();
  EXPECT_EQ(pg.num_arcs(), 0u);
}

TEST(UserScoreTest, ChainScoresHandComputed) {
  ChainFixture f;
  UserScoreOptions opt;
  opt.tau = 100;  // Everything within reach.
  auto scores = ComputeUserInfluenceScores(f.graph, f.log, opt).ValueOrDie();
  // Each user performed exactly 1 action; spheres: 0 -> {1,2,3}, 1 -> {2,3},
  // 2 -> {3}, 3 -> {}.
  EXPECT_DOUBLE_EQ(scores[0], 3.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
  EXPECT_DOUBLE_EQ(scores[2], 1.0);
  EXPECT_DOUBLE_EQ(scores[3], 0.0);
}

TEST(UserScoreTest, TauLimitsSphere) {
  ChainFixture f;
  UserScoreOptions opt;
  opt.tau = 5;  // 0 reaches 1 (2) and 2 (5) but not 3 (9).
  auto scores = ComputeUserInfluenceScores(f.graph, f.log, opt).ValueOrDie();
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  opt.tau = 1;
  scores = ComputeUserInfluenceScores(f.graph, f.log, opt).ValueOrDie();
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

TEST(UserScoreTest, IncludeSelfAddsOnePerAction) {
  ChainFixture f;
  UserScoreOptions opt;
  opt.tau = 100;
  opt.include_self = true;
  auto scores = ComputeUserInfluenceScores(f.graph, f.log, opt).ValueOrDie();
  EXPECT_DOUBLE_EQ(scores[0], 4.0);
  EXPECT_DOUBLE_EQ(scores[3], 1.0);
}

TEST(UserScoreTest, ScoreAveragesOverActions) {
  // User 0 acts twice; influences only on the first action.
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  log.Add({0, 0, 0});
  log.Add({1, 0, 1});
  log.Add({0, 1, 10});  // Nobody follows.
  UserScoreOptions opt;
  opt.tau = 10;
  auto scores = ComputeUserInfluenceScores(g, log, opt).ValueOrDie();
  EXPECT_DOUBLE_EQ(scores[0], 0.5);  // (1 + 0) / 2.
}

TEST(UserScoreTest, NonActorScoresZero) {
  ChainFixture f;
  SocialGraph g5(5);  // Node 4 exists but never acts.
  PSI_CHECK_OK(g5.AddArc(0, 1));
  UserScoreOptions opt;
  auto scores = ComputeUserInfluenceScores(g5, f.log, opt).ValueOrDie();
  EXPECT_DOUBLE_EQ(scores[4], 0.0);
}

TEST(UserScoreTest, ScoresFromPropagationGraphsMatchesDirect) {
  Rng rng(5);
  auto graph = ErdosRenyiArcs(&rng, 35, 180).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
  CascadeParams params;
  params.num_actions = 40;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  UserScoreOptions opt;
  opt.tau = 12;
  auto direct = ComputeUserInfluenceScores(graph, log, opt).ValueOrDie();

  std::vector<PropagationGraph> graphs;
  std::vector<std::vector<NodeId>> performers;
  for (ActionId a = 0; a < 40; ++a) {
    graphs.push_back(BuildPropagationGraph(graph, log, a).ValueOrDie());
    std::vector<NodeId> who;
    for (const auto& r : log.RecordsOfAction(a)) who.push_back(r.user);
    performers.push_back(who);
  }
  auto counts = ComputeActionCounts(log, graph.num_nodes());
  auto indirect =
      ScoresFromPropagationGraphs(graphs, performers, counts, opt).ValueOrDie();
  ASSERT_EQ(direct.size(), indirect.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], indirect[i], 1e-12);
  }
}

TEST(UserScoreTest, TopKOrderingAndTies) {
  std::vector<double> scores{0.5, 3.0, 3.0, 1.0, 0.0};
  auto top = TopKUsers(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // Tie broken by smaller id.
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
  EXPECT_EQ(TopKUsers(scores, 99).size(), 5u);
  EXPECT_TRUE(TopKUsers({}, 3).empty());
}

}  // namespace
}  // namespace psi
