#include "influence/influence_max.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace psi {
namespace {

// Star graph: node 0 points at everyone with probability 1.
SocialGraph Star(size_t n) {
  SocialGraph g(n);
  for (NodeId v = 1; v < n; ++v) PSI_CHECK_OK(g.AddArc(0, v));
  return g;
}

TEST(InfluenceMaxTest, SpreadOfDeterministicStar) {
  auto g = Star(10);
  ArcProbabilities probs(g.num_arcs(), 1.0);
  Rng rng(1);
  double spread = EstimateSpread(g, probs, {0}, &rng, 50).ValueOrDie();
  EXPECT_DOUBLE_EQ(spread, 10.0);  // Seed + all 9 leaves, every run.
  double leaf = EstimateSpread(g, probs, {3}, &rng, 50).ValueOrDie();
  EXPECT_DOUBLE_EQ(leaf, 1.0);  // Leaves influence nobody.
}

TEST(InfluenceMaxTest, SpreadZeroProbabilities) {
  auto g = Star(8);
  ArcProbabilities probs(g.num_arcs(), 0.0);
  Rng rng(2);
  double spread = EstimateSpread(g, probs, {0, 3}, &rng, 40).ValueOrDie();
  EXPECT_DOUBLE_EQ(spread, 2.0);  // Seeds only.
}

TEST(InfluenceMaxTest, SpreadMatchesBernoulliExpectation) {
  // Single arc with p = 0.3: expected spread of {0} is 1.3.
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ArcProbabilities probs{0.3};
  Rng rng(3);
  double spread = EstimateSpread(g, probs, {0}, &rng, 20000).ValueOrDie();
  EXPECT_NEAR(spread, 1.3, 0.02);
}

TEST(InfluenceMaxTest, SpreadValidation) {
  auto g = Star(5);
  ArcProbabilities probs(g.num_arcs(), 0.5);
  Rng rng(4);
  EXPECT_FALSE(EstimateSpread(g, probs, {0}, &rng, 0).ok());
  EXPECT_FALSE(EstimateSpread(g, probs, {99}, &rng, 10).ok());
  ArcProbabilities wrong(g.num_arcs() + 1, 0.5);
  EXPECT_FALSE(EstimateSpread(g, wrong, {0}, &rng, 10).ok());
}

TEST(InfluenceMaxTest, GreedyPicksTheHubFirst) {
  auto g = Star(12);
  ArcProbabilities probs(g.num_arcs(), 0.9);
  Rng rng(5);
  auto sel = GreedyInfluenceMaximization(g, probs, 1, &rng, 100).ValueOrDie();
  ASSERT_EQ(sel.seeds.size(), 1u);
  EXPECT_EQ(sel.seeds[0], 0u);
  EXPECT_GT(sel.expected_spread, 8.0);
}

TEST(InfluenceMaxTest, GreedyOnTwoStars) {
  // Two disjoint stars: greedy with k = 2 must take both hubs.
  SocialGraph g(20);
  for (NodeId v = 1; v < 10; ++v) PSI_CHECK_OK(g.AddArc(0, v));
  for (NodeId v = 11; v < 20; ++v) PSI_CHECK_OK(g.AddArc(10, v));
  ArcProbabilities probs(g.num_arcs(), 1.0);
  Rng rng(6);
  auto sel = GreedyInfluenceMaximization(g, probs, 2, &rng, 30).ValueOrDie();
  std::vector<NodeId> sorted = sel.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 10}));
  EXPECT_DOUBLE_EQ(sel.expected_spread, 20.0);
}

TEST(InfluenceMaxTest, CelfMatchesGreedySelection) {
  Rng rng(7);
  auto g = BarabasiAlbert(&rng, 60, 2).ValueOrDie();
  ArcProbabilities probs(g.num_arcs());
  for (auto& p : probs) p = rng.UniformReal(0.05, 0.3);
  Rng rng_g(100), rng_c(100);
  auto greedy =
      GreedyInfluenceMaximization(g, probs, 3, &rng_g, 200).ValueOrDie();
  auto celf = CelfInfluenceMaximization(g, probs, 3, &rng_c, 200).ValueOrDie();
  // Monte Carlo noise can flip near-ties, so compare achieved spreads.
  Rng eval(55);
  double gs = EstimateSpread(g, probs, greedy.seeds, &eval, 2000).ValueOrDie();
  double cs = EstimateSpread(g, probs, celf.seeds, &eval, 2000).ValueOrDie();
  EXPECT_NEAR(gs, cs, std::max(1.0, 0.1 * gs));
}

TEST(InfluenceMaxTest, CelfUsesFewerEvaluations) {
  Rng rng(8);
  auto g = BarabasiAlbert(&rng, 80, 2).ValueOrDie();
  ArcProbabilities probs(g.num_arcs(), 0.1);
  Rng rng_g(9), rng_c(9);
  auto greedy =
      GreedyInfluenceMaximization(g, probs, 4, &rng_g, 50).ValueOrDie();
  auto celf = CelfInfluenceMaximization(g, probs, 4, &rng_c, 50).ValueOrDie();
  EXPECT_LT(celf.spread_evaluations, greedy.spread_evaluations);
}

TEST(InfluenceMaxTest, GreedyBeatsOrMatchesDegreeHeuristic) {
  Rng rng(10);
  auto g = WattsStrogatz(&rng, 70, 3, 0.2).ValueOrDie();
  ArcProbabilities probs(g.num_arcs());
  for (auto& p : probs) p = rng.UniformReal(0.02, 0.4);
  Rng rng_g(11);
  auto greedy =
      GreedyInfluenceMaximization(g, probs, 3, &rng_g, 150).ValueOrDie();
  auto degree = DegreeHeuristic(g, 3);
  Rng eval(12);
  double gs = EstimateSpread(g, probs, greedy.seeds, &eval, 3000).ValueOrDie();
  double ds = EstimateSpread(g, probs, degree.seeds, &eval, 3000).ValueOrDie();
  EXPECT_GE(gs, ds - 0.6);  // Greedy never loses except by MC noise.
}

TEST(InfluenceMaxTest, DegreeHeuristicOrdering) {
  auto g = Star(6);
  auto sel = DegreeHeuristic(g, 2);
  ASSERT_EQ(sel.seeds.size(), 2u);
  EXPECT_EQ(sel.seeds[0], 0u);  // The hub has out-degree 5.
}

TEST(InfluenceMaxTest, SelectionValidation) {
  auto g = Star(5);
  ArcProbabilities probs(g.num_arcs(), 0.5);
  Rng rng(13);
  EXPECT_FALSE(GreedyInfluenceMaximization(g, probs, 0, &rng, 10).ok());
  EXPECT_FALSE(GreedyInfluenceMaximization(g, probs, 6, &rng, 10).ok());
  EXPECT_FALSE(CelfInfluenceMaximization(g, probs, 0, &rng, 10).ok());
}

}  // namespace
}  // namespace psi
