#include "influence/em_learner.h"

#include <gtest/gtest.h>

#include "actionlog/generator.h"
#include "common/stats.h"
#include "graph/generators.h"

namespace psi {
namespace {

TEST(EmLearnerTest, SingleArcDeterministicFollow) {
  // v follows u on every action u performs: p should converge to ~1.
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  for (ActionId a = 0; a < 10; ++a) {
    log.Add({0, a, a * 10});
    log.Add({1, a, a * 10 + 1});
  }
  EmConfig cfg;
  auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  EXPECT_NEAR(res.influence.p[0], 1.0, 1e-6);
}

TEST(EmLearnerTest, SingleArcNeverFollows) {
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  for (ActionId a = 0; a < 10; ++a) log.Add({0, a, a * 10});
  EmConfig cfg;
  auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  EXPECT_NEAR(res.influence.p[0], 0.0, 1e-9);
}

TEST(EmLearnerTest, HalfFollowRateMatchesFrequency) {
  // With a single possible parent, EM reduces to the frequency estimate.
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  for (ActionId a = 0; a < 20; ++a) {
    log.Add({0, a, a * 10});
    if (a % 2 == 0) log.Add({1, a, a * 10 + 2});
  }
  EmConfig cfg;
  auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  EXPECT_NEAR(res.influence.p[0], 0.5, 1e-6);
}

TEST(EmLearnerTest, CreditSplitBetweenCompetingParents) {
  // Both u1 and u2 always precede v; each alone would look deterministic,
  // EM must split the credit instead of assigning 1.0 to both.
  SocialGraph g(3);
  PSI_CHECK_OK(g.AddArc(0, 2));
  PSI_CHECK_OK(g.AddArc(1, 2));
  ActionLog log;
  for (ActionId a = 0; a < 30; ++a) {
    log.Add({0, a, a * 10});
    log.Add({1, a, a * 10 + 1});
    log.Add({2, a, a * 10 + 2});
  }
  EmConfig cfg;
  auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  double p0 = res.influence.p[0], p1 = res.influence.p[1];
  // Likelihood only constrains 1 - (1-p0)(1-p1) = 1 given the data; the
  // symmetric initialization keeps the solution symmetric and below 1.
  EXPECT_NEAR(p0, p1, 1e-6);
  EXPECT_GT(p0, 0.3);
  EXPECT_LE(p0, 1.0);
}

TEST(EmLearnerTest, WindowExcludesSlowFollows) {
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  log.Add({0, 0, 0});
  log.Add({1, 0, 100});  // Way beyond any reasonable window.
  EmConfig cfg;
  cfg.h = 4;
  auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  EXPECT_NEAR(res.influence.p[0], 0.0, 1e-9);
}

TEST(EmLearnerTest, ConvergesAndReportsIterations) {
  Rng rng(1);
  auto g = ErdosRenyiArcs(&rng, 30, 150).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(g, 0.4);
  CascadeParams params;
  params.num_actions = 60;
  auto log = GenerateCascades(&rng, g, truth, params).ValueOrDie();
  EmConfig cfg;
  cfg.max_iterations = 100;
  cfg.tolerance = 1e-8;
  auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  EXPECT_GT(res.iterations, 1u);
  EXPECT_LE(res.iterations, 100u);
  if (res.iterations < 100) {
    EXPECT_LT(res.final_delta, 1e-8);
  }
  for (double p : res.influence.p) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(EmLearnerTest, TracksGroundTruthAtLeastAsWellAsEq1) {
  // The paper cites EM as the (heavier) state of the art; on clean IC data
  // it should correlate with the ground truth at least comparably to the
  // Eq. (1) frequency estimator.
  Rng rng(2);
  auto g = ErdosRenyiArcs(&rng, 40, 200).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, g, 0.05, 0.9);
  CascadeParams params;
  params.num_actions = 400;
  params.max_delay = 3;
  auto log = GenerateCascades(&rng, g, truth, params).ValueOrDie();
  EmConfig cfg;
  cfg.h = 3;
  auto em = LearnInfluenceEm(g, log, cfg).ValueOrDie();
  auto eq1 =
      ComputeLinkInfluence(log, g.arcs(), g.num_nodes(), 3).ValueOrDie();
  double em_corr = PearsonCorrelation(truth.prob, em.influence.p);
  double eq1_corr = PearsonCorrelation(truth.prob, eq1.p);
  EXPECT_GT(em_corr, 0.4);
  EXPECT_GT(em_corr, eq1_corr - 0.1);
}

TEST(EmLearnerTest, LikelihoodNonDecreasingAcrossIterations) {
  Rng rng(3);
  auto g = ErdosRenyiArcs(&rng, 25, 120).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(g, 0.5);
  CascadeParams params;
  params.num_actions = 40;
  auto log = GenerateCascades(&rng, g, truth, params).ValueOrDie();
  double prev = -1e300;
  for (size_t iters : {1u, 3u, 10u, 40u}) {
    EmConfig cfg;
    cfg.max_iterations = iters;
    cfg.tolerance = 0.0;
    auto res = LearnInfluenceEm(g, log, cfg).ValueOrDie();
    EXPECT_GE(res.log_likelihood, prev - 1e-6) << "iters " << iters;
    prev = res.log_likelihood;
  }
}

TEST(EmLearnerTest, Validation) {
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  EmConfig cfg;
  cfg.h = 0;
  EXPECT_FALSE(LearnInfluenceEm(g, log, cfg).ok());
  cfg.h = 4;
  cfg.initial_p = 1.0;
  EXPECT_FALSE(LearnInfluenceEm(g, log, cfg).ok());
  cfg.initial_p = 0.5;
  cfg.max_iterations = 0;
  EXPECT_FALSE(LearnInfluenceEm(g, log, cfg).ok());
}

}  // namespace
}  // namespace psi
