#include "influence/link_influence.h"

#include <gtest/gtest.h>

#include "actionlog/generator.h"
#include "graph/generators.h"

namespace psi {
namespace {

// user 0 acts 4 times; user 1 follows on 2 of them within h=2.
ActionLog TwoUserLog() {
  ActionLog log;
  log.Add({0, 0, 0});
  log.Add({0, 1, 10});
  log.Add({0, 2, 20});
  log.Add({0, 3, 30});
  log.Add({1, 0, 1});   // diff 1.
  log.Add({1, 1, 12});  // diff 2.
  log.Add({1, 2, 25});  // diff 5: outside h=2.
  return log;
}

TEST(LinkInfluenceTest, Eq1HandComputedValue) {
  auto li = ComputeLinkInfluence(TwoUserLog(), {{0, 1}}, 2, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(li.p[0], 2.0 / 4.0);
}

TEST(LinkInfluenceTest, ZeroDenominatorYieldsZero) {
  // User 2 never acts: p_{2,j} = 0 by the paper's convention.
  auto li = ComputeLinkInfluence(TwoUserLog(), {{2, 0}}, 3, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(li.p[0], 0.0);
}

TEST(LinkInfluenceTest, ProbabilitiesAreInUnitInterval) {
  Rng rng(1);
  auto graph = ErdosRenyiArcs(&rng, 40, 200).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.1, 0.9);
  CascadeParams params;
  params.num_actions = 100;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto li = ComputeLinkInfluence(log, graph.arcs(), 40, 4).ValueOrDie();
  for (double p : li.p) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LinkInfluenceTest, WindowMonotonicity) {
  Rng rng(2);
  auto graph = ErdosRenyiArcs(&rng, 30, 150).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 60;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto li2 = ComputeLinkInfluence(log, graph.arcs(), 30, 2).ValueOrDie();
  auto li8 = ComputeLinkInfluence(log, graph.arcs(), 30, 8).ValueOrDie();
  for (size_t k = 0; k < li2.p.size(); ++k) {
    EXPECT_LE(li2.p[k], li8.p[k]);
  }
}

TEST(LinkInfluenceTest, WeightedWithUniformWeightsEqualsEq1) {
  Rng rng(3);
  auto graph = ErdosRenyiArcs(&rng, 25, 120).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 50;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto eq1 = ComputeLinkInfluence(log, graph.arcs(), 25, 4).ValueOrDie();
  auto eq2 = ComputeWeightedLinkInfluence(log, graph.arcs(), 25,
                                          TemporalWeights::Uniform(4))
                 .ValueOrDie();
  for (size_t k = 0; k < eq1.p.size(); ++k) {
    EXPECT_DOUBLE_EQ(eq1.p[k], eq2.p[k]);
  }
}

TEST(LinkInfluenceTest, DecayWeightsEmphasizeFastFollows) {
  // Fast follower (diff 1) vs slow follower (diff 4), equal counts: under
  // decay the fast link must score strictly higher.
  ActionLog log;
  log.Add({0, 0, 0});
  log.Add({1, 0, 1});  // Fast.
  log.Add({2, 0, 4});  // Slow.
  auto li = ComputeWeightedLinkInfluence(log, {{0, 1}, {0, 2}}, 3,
                                         TemporalWeights::LinearDecay(4))
                .ValueOrDie();
  EXPECT_GT(li.p[0], li.p[1]);
  EXPECT_GT(li.p[1], 0.0);
}

TEST(LinkInfluenceTest, RejectsZeroWindow) {
  EXPECT_FALSE(ComputeLinkInfluence(TwoUserLog(), {{0, 1}}, 2, 0).ok());
}

TEST(LinkInfluenceTest, MeanAbsoluteError) {
  LinkInfluence a, b;
  a.p = {0.0, 0.5, 1.0};
  b.p = {0.1, 0.5, 0.7};
  EXPECT_NEAR(MeanAbsoluteError(a, b).ValueOrDie(), (0.1 + 0.0 + 0.3) / 3.0,
              1e-12);
  b.p = {0.1};
  EXPECT_FALSE(MeanAbsoluteError(a, b).ok());
  LinkInfluence e1, e2;
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(e1, e2).ValueOrDie(), 0.0);
}

}  // namespace
}  // namespace psi
