#include "influence/segmented.h"

#include <gtest/gtest.h>

#include "actionlog/generator.h"
#include "graph/generators.h"

namespace psi {
namespace {

TEST(SegmentedTest, FilterKeepsOnlySegmentActions) {
  ActionLog log;
  log.Add({0, 0, 1});
  log.Add({1, 1, 2});
  log.Add({2, 2, 3});
  std::vector<uint32_t> seg{0, 1, 0};
  auto s0 = FilterLogBySegment(log, seg, 0);
  EXPECT_EQ(s0.size(), 2u);
  auto s1 = FilterLogBySegment(log, seg, 1);
  EXPECT_EQ(s1.size(), 1u);
  uint64_t t;
  EXPECT_TRUE(s1.Lookup(1, 1, &t));
  // Actions beyond the labeling vector are dropped.
  log.Add({3, 9, 4});
  EXPECT_EQ(FilterLogBySegment(log, seg, 0).size(), 2u);
}

TEST(SegmentedTest, SegmentsPartitionTheEvidence) {
  // Hand-built: u influences v only on segment-0 actions.
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  log.Add({0, 0, 0});   // seg 0: followed.
  log.Add({1, 0, 1});
  log.Add({0, 1, 10});  // seg 1: not followed.
  log.Add({0, 2, 20});  // seg 0: followed.
  log.Add({1, 2, 22});
  log.Add({0, 3, 30});  // seg 1: not followed.
  std::vector<uint32_t> seg{0, 1, 0, 1};
  auto result =
      ComputeSegmentedLinkInfluence(log, g.arcs(), 2, 4, seg, 2).ValueOrDie();
  ASSERT_EQ(result.num_segments(), 2u);
  EXPECT_DOUBLE_EQ(result.per_segment[0].p[0], 1.0);  // 2/2 in segment 0.
  EXPECT_DOUBLE_EQ(result.per_segment[1].p[0], 0.0);  // 0/2 in segment 1.
  // The pooled estimate blurs the distinction: 2/4.
  auto pooled = ComputeLinkInfluence(log, g.arcs(), 2, 4).ValueOrDie();
  EXPECT_DOUBLE_EQ(pooled.p[0], 0.5);
}

TEST(SegmentedTest, SingleSegmentEqualsPooled) {
  Rng rng(1);
  auto g = ErdosRenyiArcs(&rng, 25, 100).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(g, 0.4);
  CascadeParams params;
  params.num_actions = 40;
  auto log = GenerateCascades(&rng, g, truth, params).ValueOrDie();
  std::vector<uint32_t> seg(40, 0);
  auto segmented =
      ComputeSegmentedLinkInfluence(log, g.arcs(), 25, 4, seg, 1).ValueOrDie();
  auto pooled = ComputeLinkInfluence(log, g.arcs(), 25, 4).ValueOrDie();
  for (size_t e = 0; e < pooled.p.size(); ++e) {
    EXPECT_DOUBLE_EQ(segmented.per_segment[0].p[e], pooled.p[e]);
  }
}

TEST(SegmentedTest, EmptySegmentYieldsZeros) {
  Rng rng(2);
  auto g = ErdosRenyiArcs(&rng, 10, 40).ValueOrDie();
  ActionLog log;
  log.Add({0, 0, 1});
  std::vector<uint32_t> seg{0};
  auto result =
      ComputeSegmentedLinkInfluence(log, g.arcs(), 10, 4, seg, 3).ValueOrDie();
  for (double p : result.per_segment[2].p) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(SegmentedTest, Validation) {
  SocialGraph g(2);
  PSI_CHECK_OK(g.AddArc(0, 1));
  ActionLog log;
  EXPECT_FALSE(
      ComputeSegmentedLinkInfluence(log, g.arcs(), 2, 4, {}, 0).ok());
  std::vector<uint32_t> bad{5};
  EXPECT_FALSE(
      ComputeSegmentedLinkInfluence(log, g.arcs(), 2, 4, bad, 2).ok());
}

}  // namespace
}  // namespace psi
