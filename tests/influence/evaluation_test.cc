#include "influence/evaluation.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace psi {
namespace {

TEST(EvaluationTest, KendallTauPerfectAgreementAndReversal) {
  std::vector<double> up{1, 2, 3, 4, 5};
  std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(up, up).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(up, down).ValueOrDie(), -1.0);
}

TEST(EvaluationTest, KendallTauHandComputed) {
  // a = (1,2,3), b = (1,3,2): pairs (1,2)C,(1,3)C,(2,3)D -> (2-1)/3.
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 3, 2};
  EXPECT_NEAR(KendallTau(a, b).ValueOrDie(), 1.0 / 3.0, 1e-12);
}

TEST(EvaluationTest, KendallTauTiesDontCount) {
  std::vector<double> a{1, 1, 2};
  std::vector<double> b{1, 2, 3};
  // Pair (0,1) tied in a: neither concordant nor discordant.
  EXPECT_NEAR(KendallTau(a, b).ValueOrDie(), 2.0 / 3.0, 1e-12);
}

TEST(EvaluationTest, KendallTauNearZeroForIndependentRandom) {
  Rng rng(1);
  std::vector<double> a(300), b(300);
  for (auto& x : a) x = rng.UniformReal();
  for (auto& x : b) x = rng.UniformReal();
  EXPECT_LT(std::abs(KendallTau(a, b).ValueOrDie()), 0.1);
}

TEST(EvaluationTest, KendallTauValidation) {
  EXPECT_FALSE(KendallTau({1.0}, {1.0, 2.0}).ok());
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {2.0}).ValueOrDie(), 0.0);
}

TEST(EvaluationTest, TopKOverlapBasics) {
  std::vector<double> ref{9, 8, 7, 1, 0};
  std::vector<double> same_top{5, 4, 3, 0.2, 0.1};
  std::vector<double> inverted{0, 1, 7, 8, 9};
  EXPECT_DOUBLE_EQ(TopKOverlap(ref, same_top, 3).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap(ref, inverted, 2).ValueOrDie(), 0.0);
  // Overlap of {0,1,2} with {2,3,4} is 1/3.
  EXPECT_NEAR(TopKOverlap(ref, inverted, 3).ValueOrDie(), 1.0 / 3.0, 1e-12);
}

TEST(EvaluationTest, TopKOverlapValidation) {
  std::vector<double> v{1, 2, 3};
  EXPECT_FALSE(TopKOverlap(v, {1.0, 2.0}, 1).ok());
  EXPECT_FALSE(TopKOverlap(v, v, 0).ok());
  EXPECT_FALSE(TopKOverlap(v, v, 4).ok());
}

TEST(EvaluationTest, ReciprocalRankOfBest) {
  std::vector<double> ref{1, 9, 2};  // Best item: index 1.
  EXPECT_DOUBLE_EQ(
      ReciprocalRankOfBest(ref, {0.1, 0.9, 0.2}).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(
      ReciprocalRankOfBest(ref, {0.9, 0.5, 0.1}).ValueOrDie(), 0.5);
  EXPECT_DOUBLE_EQ(
      ReciprocalRankOfBest(ref, {0.9, 0.1, 0.5}).ValueOrDie(), 1.0 / 3.0);
  EXPECT_FALSE(ReciprocalRankOfBest({}, {}).ok());
}

}  // namespace
}  // namespace psi
