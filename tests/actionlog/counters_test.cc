#include "actionlog/counters.h"

#include <gtest/gtest.h>

#include "actionlog/generator.h"
#include "graph/generators.h"

namespace psi {
namespace {

// Hand-checkable fixture:
//   user 0: action 0 at t=0, action 1 at t=10
//   user 1: action 0 at t=2, action 1 at t=11
//   user 2: action 0 at t=5
ActionLog SmallLog() {
  ActionLog log;
  log.Add({0, 0, 0});
  log.Add({0, 1, 10});
  log.Add({1, 0, 2});
  log.Add({1, 1, 11});
  log.Add({2, 0, 5});
  return log;
}

TEST(CountersTest, ActionCounts) {
  auto a = ComputeActionCounts(SmallLog(), 4);
  EXPECT_EQ(a, (std::vector<uint64_t>{2, 2, 1, 0}));
}

TEST(CountersTest, ActionCountsIgnoreOutOfRangeUsers) {
  ActionLog log;
  log.Add({10, 0, 1});
  auto a = ComputeActionCounts(log, 3);
  EXPECT_EQ(a, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(CountersTest, FollowCountsWindowSemantics) {
  auto log = SmallLog();
  std::vector<Arc> pairs{{0, 1}, {1, 0}, {0, 2}, {2, 1}, {1, 2}};
  // h = 2: user1 followed user0 on action 0 (t=0 -> 2, diff 2 <= 2) and
  // action 1 (10 -> 11, diff 1). user2 followed user0? 0 -> 5: diff 5 > 2.
  // user2 followed... user1 on action0: 2 -> 5 diff 3 > 2.
  auto b2 = ComputeFollowCounts(log, pairs, 2);
  EXPECT_EQ(b2, (std::vector<uint64_t>{2, 0, 0, 0, 0}));
  // h = 5: (0,2) diff 5 now counts; (1,2) diff 3 counts.
  auto b5 = ComputeFollowCounts(log, pairs, 5);
  EXPECT_EQ(b5, (std::vector<uint64_t>{2, 0, 1, 0, 1}));
}

TEST(CountersTest, FollowIsStrictlyAfter) {
  // Simultaneous adoption is not influence (Delta t > 0 per Def. 3.1).
  ActionLog log;
  log.Add({0, 0, 5});
  log.Add({1, 0, 5});
  auto b = ComputeFollowCounts(log, {{0, 1}}, 10);
  EXPECT_EQ(b[0], 0u);
}

TEST(CountersTest, ExactDelayCountsDecomposeFollowCounts) {
  // Property: b^h = sum_l c^l for every pair and window.
  Rng rng(42);
  auto graph = ErdosRenyiArcs(&rng, 30, 150).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
  CascadeParams params;
  params.num_actions = 50;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  for (uint64_t h : {1u, 3u, 6u}) {
    auto b = ComputeFollowCounts(log, graph.arcs(), h);
    auto c = ComputeExactDelayCounts(log, graph.arcs(), h);
    for (size_t p = 0; p < graph.arcs().size(); ++p) {
      uint64_t sum = 0;
      for (uint64_t l = 0; l < h; ++l) sum += c[p][l];
      ASSERT_EQ(sum, b[p]) << "pair " << p << " h " << h;
    }
  }
}

TEST(CountersTest, FollowCountsMonotoneInWindow) {
  Rng rng(43);
  auto graph = ErdosRenyiArcs(&rng, 25, 100).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 40;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto b1 = ComputeFollowCounts(log, graph.arcs(), 1);
  auto b4 = ComputeFollowCounts(log, graph.arcs(), 4);
  auto b9 = ComputeFollowCounts(log, graph.arcs(), 9);
  for (size_t p = 0; p < graph.arcs().size(); ++p) {
    EXPECT_LE(b1[p], b4[p]);
    EXPECT_LE(b4[p], b9[p]);
  }
}

TEST(CountersTest, TemporalWeightsSumToH) {
  for (uint64_t h : {1u, 4u, 10u}) {
    for (auto tw : {TemporalWeights::Uniform(h), TemporalWeights::LinearDecay(h),
                    TemporalWeights::ExponentialDecay(h, 0.7)}) {
      double sum = 0.0;
      for (double w : tw.w) {
        EXPECT_GT(w, 0.0);  // Paper constraint: 0 < w_l.
        sum += w;
      }
      EXPECT_NEAR(sum, static_cast<double>(h), 1e-9);
    }
  }
}

TEST(CountersTest, DecayWeightsAreDecreasing) {
  auto lin = TemporalWeights::LinearDecay(5);
  auto exp = TemporalWeights::ExponentialDecay(5, 1.0);
  for (size_t l = 1; l < 5; ++l) {
    EXPECT_GT(lin.w[l - 1], lin.w[l]);
    EXPECT_GT(exp.w[l - 1], exp.w[l]);
  }
}

TEST(CountersTest, UniformWeightsReduceEq2ToEq1) {
  Rng rng(44);
  auto graph = ErdosRenyiArcs(&rng, 20, 80).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  CascadeParams params;
  params.num_actions = 30;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  uint64_t h = 4;
  auto b = ComputeFollowCounts(log, graph.arcs(), h);
  auto weighted = ComputeWeightedFollowCounts(log, graph.arcs(),
                                              TemporalWeights::Uniform(h));
  for (size_t p = 0; p < b.size(); ++p) {
    EXPECT_DOUBLE_EQ(weighted[p], static_cast<double>(b[p]));
  }
}

TEST(CountersTest, ScaledWeightsRounding) {
  auto tw = TemporalWeights::LinearDecay(3);
  auto scaled = tw.Scaled(1000);
  ASSERT_EQ(scaled.size(), 3u);
  for (size_t l = 0; l < 3; ++l) {
    EXPECT_NEAR(static_cast<double>(scaled[l]), tw.w[l] * 1000.0, 0.51);
  }
}

TEST(CountersTest, EmptyPairListIsFine) {
  auto b = ComputeFollowCounts(SmallLog(), {}, 4);
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace psi
