#include "actionlog/action_log.h"

#include <gtest/gtest.h>

namespace psi {
namespace {

TEST(ActionLogTest, EmptyLog) {
  ActionLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.MaxTime(), 0u);
  EXPECT_EQ(log.MaxActionId(), 0u);
  EXPECT_EQ(log.MaxUserId(), 0u);
  uint64_t t;
  EXPECT_FALSE(log.Lookup(0, 0, &t));
}

TEST(ActionLogTest, AddAndLookup) {
  ActionLog log;
  log.Add({3, 7, 100});
  uint64_t t = 0;
  EXPECT_TRUE(log.Lookup(3, 7, &t));
  EXPECT_EQ(t, 100u);
  EXPECT_FALSE(log.Lookup(3, 8, &t));
  EXPECT_FALSE(log.Lookup(4, 7, &t));
  EXPECT_EQ(log.MaxUserId(), 4u);
  EXPECT_EQ(log.MaxActionId(), 8u);
  EXPECT_EQ(log.MaxTime(), 100u);
}

TEST(ActionLogTest, DuplicateUserActionKeepsEarliest) {
  // The paper: a user performs any action at most once (first purchase).
  ActionLog log;
  log.Add({1, 1, 50});
  log.Add({1, 1, 30});  // Earlier: replaces.
  log.Add({1, 1, 80});  // Later: ignored.
  EXPECT_EQ(log.size(), 1u);
  uint64_t t;
  ASSERT_TRUE(log.Lookup(1, 1, &t));
  EXPECT_EQ(t, 30u);
}

TEST(ActionLogTest, MergeDeduplicatesAcrossLogs) {
  ActionLog a, b;
  a.Add({1, 1, 10});
  a.Add({2, 1, 20});
  b.Add({1, 1, 5});   // Earlier copy of (1,1).
  b.Add({3, 2, 30});
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  uint64_t t;
  ASSERT_TRUE(a.Lookup(1, 1, &t));
  EXPECT_EQ(t, 5u);
}

TEST(ActionLogTest, RecordsOfActionFilters) {
  ActionLog log;
  log.Add({1, 1, 10});
  log.Add({2, 1, 20});
  log.Add({3, 2, 30});
  auto recs = log.RecordsOfAction(1);
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_TRUE(log.RecordsOfAction(9).empty());
}

TEST(ActionLogTest, UserIndexReflectsUpdates) {
  ActionLog log;
  log.Add({1, 1, 10});
  EXPECT_EQ(log.UserIndex(1).at(1), 10u);
  log.Add({1, 2, 20});
  // Index rebuilds lazily after mutation.
  EXPECT_EQ(log.UserIndex(1).size(), 2u);
  log.Add({1, 1, 5});  // Earlier duplicate updates the time.
  EXPECT_EQ(log.UserIndex(1).at(1), 5u);
  EXPECT_TRUE(log.UserIndex(42).empty());
}

TEST(ActionLogTest, LookupWithoutOutParam) {
  ActionLog log;
  log.Add({1, 1, 10});
  EXPECT_TRUE(log.Lookup(1, 1, nullptr));
}

}  // namespace
}  // namespace psi
