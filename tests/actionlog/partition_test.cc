#include "actionlog/partition.h"

#include <gtest/gtest.h>

#include "actionlog/generator.h"
#include "graph/generators.h"

namespace psi {
namespace {

ActionLog MakeLog(Rng* rng, size_t num_actions = 50) {
  auto graph = ErdosRenyiArcs(rng, 30, 150).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
  CascadeParams params;
  params.num_actions = num_actions;
  return GenerateCascades(rng, graph, truth, params).ValueOrDie();
}

TEST(PartitionTest, ExclusiveUnionEqualsOriginal) {
  Rng rng(1);
  auto log = MakeLog(&rng);
  auto logs = ExclusivePartition(&rng, log, 4).ValueOrDie();
  ASSERT_EQ(logs.size(), 4u);
  ActionLog merged;
  size_t total = 0;
  for (const auto& l : logs) {
    merged.Merge(l);
    total += l.size();
  }
  EXPECT_EQ(total, log.size());  // Disjoint.
  EXPECT_EQ(merged.size(), log.size());
  for (const auto& r : log.records()) {
    uint64_t t;
    ASSERT_TRUE(merged.Lookup(r.user, r.action, &t));
    EXPECT_EQ(t, r.time);
  }
}

TEST(PartitionTest, ExclusiveKeepsActionsWhole) {
  Rng rng(2);
  auto log = MakeLog(&rng);
  auto logs = ExclusivePartition(&rng, log, 5).ValueOrDie();
  // Each action's records must all live at exactly one provider.
  for (ActionId a = 0; a < log.MaxActionId(); ++a) {
    int providers_with_action = 0;
    for (const auto& l : logs) {
      if (!l.RecordsOfAction(a).empty()) ++providers_with_action;
    }
    EXPECT_LE(providers_with_action, 1) << "action " << a;
  }
}

TEST(PartitionTest, ExclusiveValidation) {
  Rng rng(3);
  auto log = MakeLog(&rng);
  EXPECT_FALSE(ExclusivePartition(&rng, log, 0).ok());
}

TEST(PartitionTest, ClassConfigRandomIsValid) {
  Rng rng(4);
  auto cfg = ActionClassConfig::Random(&rng, 100, 6, 5, 2, 4).ValueOrDie();
  EXPECT_TRUE(cfg.Validate(5).ok());
  EXPECT_EQ(cfg.num_classes(), 6u);
  EXPECT_EQ(cfg.class_of_action.size(), 100u);
  for (const auto& group : cfg.provider_groups) {
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), 4u);
    EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
  }
}

TEST(PartitionTest, ClassConfigValidationCatchesBadShapes) {
  ActionClassConfig cfg;
  EXPECT_FALSE(cfg.Validate(3).ok());  // No classes.
  cfg.provider_groups = {{0, 1}, {}};
  EXPECT_FALSE(cfg.Validate(3).ok());  // Empty group.
  cfg.provider_groups = {{0, 5}};
  EXPECT_FALSE(cfg.Validate(3).ok());  // Provider out of range.
  cfg.provider_groups = {{0, 1}};
  cfg.class_of_action = {0, 1};
  EXPECT_FALSE(cfg.Validate(3).ok());  // Class index out of range.
  cfg.class_of_action = {0, 0};
  EXPECT_TRUE(cfg.Validate(3).ok());
  EXPECT_FALSE(ActionClassConfig::Random(nullptr, 10, 0, 3, 1, 2).ok());
}

TEST(PartitionTest, NonExclusiveUnionEqualsOriginal) {
  Rng rng(5);
  auto log = MakeLog(&rng);
  auto cfg = ActionClassConfig::Random(&rng, log.MaxActionId(), 4, 5, 2, 5)
                 .ValueOrDie();
  auto logs = NonExclusivePartition(&rng, log, 5, cfg).ValueOrDie();
  ActionLog merged;
  size_t total = 0;
  for (const auto& l : logs) {
    merged.Merge(l);
    total += l.size();
  }
  EXPECT_EQ(total, log.size());
  EXPECT_EQ(merged.size(), log.size());
}

TEST(PartitionTest, NonExclusiveRespectsProviderGroups) {
  Rng rng(6);
  auto log = MakeLog(&rng);
  auto cfg = ActionClassConfig::Random(&rng, log.MaxActionId(), 3, 6, 2, 3)
                 .ValueOrDie();
  auto logs = NonExclusivePartition(&rng, log, 6, cfg).ValueOrDie();
  for (size_t k = 0; k < 6; ++k) {
    for (const auto& r : logs[k].records()) {
      const auto& group = cfg.provider_groups[cfg.class_of_action[r.action]];
      EXPECT_TRUE(std::find(group.begin(), group.end(), k) != group.end())
          << "provider " << k << " holds action outside its classes";
    }
  }
}

TEST(PartitionTest, NonExclusiveSplitsPropagationTraces) {
  // The motivating scenario: with multi-provider groups, some action's
  // trace should end up scattered over >= 2 providers.
  Rng rng(7);
  auto log = MakeLog(&rng, 30);
  auto cfg = ActionClassConfig::Random(&rng, log.MaxActionId(), 2, 4, 3, 4)
                 .ValueOrDie();
  auto logs = NonExclusivePartition(&rng, log, 4, cfg).ValueOrDie();
  bool some_action_split = false;
  for (ActionId a = 0; a < log.MaxActionId(); ++a) {
    int holders = 0;
    for (const auto& l : logs) {
      if (!l.RecordsOfAction(a).empty()) ++holders;
    }
    if (holders >= 2) some_action_split = true;
  }
  EXPECT_TRUE(some_action_split);
}

TEST(PartitionTest, NonExclusiveValidation) {
  Rng rng(8);
  auto log = MakeLog(&rng);
  ActionClassConfig cfg;  // Invalid.
  EXPECT_FALSE(NonExclusivePartition(&rng, log, 3, cfg).ok());
  auto good = ActionClassConfig::Random(&rng, 10, 2, 3, 1, 2).ValueOrDie();
  // Config covers only 10 actions but the log has more.
  if (log.MaxActionId() > 10) {
    EXPECT_FALSE(NonExclusivePartition(&rng, log, 3, good).ok());
  }
}

}  // namespace
}  // namespace psi
