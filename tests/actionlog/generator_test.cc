#include "actionlog/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "actionlog/counters.h"
#include "common/stats.h"
#include "graph/generators.h"
#include "influence/link_influence.h"

namespace psi {
namespace {

TEST(GeneratorTest, GroundTruthShapes) {
  Rng rng(1);
  auto graph = ErdosRenyiArcs(&rng, 20, 60).ValueOrDie();
  auto uni = GroundTruthInfluence::Uniform(graph, 0.3);
  EXPECT_EQ(uni.prob.size(), 60u);
  for (double p : uni.prob) EXPECT_DOUBLE_EQ(p, 0.3);
  auto rnd = GroundTruthInfluence::Random(&rng, graph, 0.2, 0.8);
  for (double p : rnd.prob) {
    EXPECT_GE(p, 0.2);
    EXPECT_LT(p, 0.8);
  }
}

TEST(GeneratorTest, CascadeRespectsLogInvariants) {
  Rng rng(2);
  auto graph = ErdosRenyiArcs(&rng, 40, 200).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
  CascadeParams params;
  params.num_actions = 60;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  EXPECT_FALSE(log.empty());
  EXPECT_LE(log.MaxActionId(), 60u);
  EXPECT_LE(log.MaxUserId(), 40u);
  // At-most-once invariant is inherent to ActionLog; verify densely.
  std::set<std::pair<NodeId, ActionId>> seen;
  for (const auto& r : log.records()) {
    EXPECT_TRUE(seen.insert({r.user, r.action}).second);
  }
}

TEST(GeneratorTest, AdoptionOnlyTravelsAlongArcs) {
  // On a graph with no arcs only seeds can adopt.
  Rng rng(3);
  SocialGraph graph(30);
  GroundTruthInfluence truth;  // No arcs -> empty prob vector.
  CascadeParams params;
  params.num_actions = 20;
  params.seeds_per_action = 2;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  // Each action has at most seeds_per_action distinct adopters.
  for (ActionId a = 0; a < 20; ++a) {
    EXPECT_LE(log.RecordsOfAction(a).size(), 2u);
  }
}

TEST(GeneratorTest, ZeroProbabilityMeansNoPropagation) {
  Rng rng(4);
  auto graph = ErdosRenyiArcs(&rng, 30, 200).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.0);
  CascadeParams params;
  params.num_actions = 25;
  params.seeds_per_action = 1;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  for (ActionId a = 0; a < 25; ++a) {
    EXPECT_LE(log.RecordsOfAction(a).size(), 1u);
  }
}

TEST(GeneratorTest, HighProbabilitySpreadsWidely) {
  Rng rng(5);
  auto graph = BarabasiAlbert(&rng, 60, 3).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.95);
  CascadeParams params;
  params.num_actions = 10;
  params.seeds_per_action = 1;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  double avg = static_cast<double>(log.size()) / 10.0;
  EXPECT_GT(avg, 30.0);  // Near-full cascades on a connected BA graph.
}

TEST(GeneratorTest, DelaysRespectMaxDelay) {
  Rng rng(6);
  auto graph = ErdosRenyiArcs(&rng, 20, 100).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.8);
  CascadeParams params;
  params.num_actions = 15;
  params.max_delay = 3;
  params.start_time_span = 1;  // All seeds at t = 0.
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  // b with window >= max_delay captures every follow along an arc; a larger
  // window adds nothing beyond multi-hop coincidences, so c^l for l > 3 can
  // only come from non-adjacent pairs. Check arc-level delays directly:
  auto c = ComputeExactDelayCounts(log, graph.arcs(), 10);
  (void)c;  // Delays along arcs can exceed max_delay only via reconvergence;
  // the strong invariant is on direct parent-child events, which the log
  // does not distinguish. Instead check all adoption times are sane:
  uint64_t max_time = log.MaxTime();
  EXPECT_LT(max_time, 3u * 20u + 1u);  // <= diameter * max_delay + start.
}

TEST(GeneratorTest, LearnedInfluenceCorrelatesWithGroundTruth) {
  // The end-to-end sanity check of the whole influence-learning premise:
  // Eq. (1) estimates over generated cascades must correlate positively
  // with the generating probabilities.
  Rng rng(7);
  auto graph = ErdosRenyiArcs(&rng, 50, 250).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.05, 0.9);
  CascadeParams params;
  params.num_actions = 400;
  params.seeds_per_action = 3;
  params.max_delay = 3;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto learned =
      ComputeLinkInfluence(log, graph.arcs(), graph.num_nodes(), 3)
          .ValueOrDie();
  double corr = PearsonCorrelation(truth.prob, learned.p);
  EXPECT_GT(corr, 0.4) << "learned influence should track ground truth";
}

TEST(GeneratorTest, Validation) {
  Rng rng(8);
  auto graph = ErdosRenyiArcs(&rng, 10, 20).ValueOrDie();
  GroundTruthInfluence bad;  // Wrong size.
  bad.prob.assign(3, 0.5);
  CascadeParams params;
  EXPECT_FALSE(GenerateCascades(&rng, graph, bad, params).ok());
  auto truth = GroundTruthInfluence::Uniform(graph, 0.5);
  params.seeds_per_action = 0;
  EXPECT_FALSE(GenerateCascades(&rng, graph, truth, params).ok());
  params.seeds_per_action = 11;
  EXPECT_FALSE(GenerateCascades(&rng, graph, truth, params).ok());
  params.seeds_per_action = 2;
  params.max_delay = 0;
  EXPECT_FALSE(GenerateCascades(&rng, graph, truth, params).ok());
}

}  // namespace
}  // namespace psi
