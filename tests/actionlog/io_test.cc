#include "actionlog/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "actionlog/generator.h"
#include "graph/generators.h"

namespace psi {
namespace {

TEST(ActionLogIoTest, RoundTripThroughStream) {
  Rng rng(1);
  auto graph = ErdosRenyiArcs(&rng, 30, 150).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
  CascadeParams params;
  params.num_actions = 40;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();

  std::stringstream ss;
  ASSERT_TRUE(WriteActionLogText(log, &ss).ok());
  auto loaded = ReadActionLogText(&ss).ValueOrDie();
  EXPECT_EQ(loaded.size(), log.size());
  for (const auto& r : log.records()) {
    uint64_t t;
    ASSERT_TRUE(loaded.Lookup(r.user, r.action, &t));
    EXPECT_EQ(t, r.time);
  }
}

TEST(ActionLogIoTest, EmptyLogRoundTrip) {
  ActionLog log;
  std::stringstream ss;
  ASSERT_TRUE(WriteActionLogText(log, &ss).ok());
  auto loaded = ReadActionLogText(&ss).ValueOrDie();
  EXPECT_TRUE(loaded.empty());
}

TEST(ActionLogIoTest, DuplicatesCollapseOnLoad) {
  std::stringstream ss("1 2 30\n1 2 10\n1 2 50\n");
  auto loaded = ReadActionLogText(&ss).ValueOrDie();
  EXPECT_EQ(loaded.size(), 1u);
  uint64_t t;
  ASSERT_TRUE(loaded.Lookup(1, 2, &t));
  EXPECT_EQ(t, 10u);  // Earliest wins.
}

TEST(ActionLogIoTest, RejectsMalformedInput) {
  {
    std::stringstream ss("1 2\n");  // Missing time.
    EXPECT_FALSE(ReadActionLogText(&ss).ok());
  }
  {
    std::stringstream ss("a b c\n");  // Not numbers.
    EXPECT_FALSE(ReadActionLogText(&ss).ok());
  }
  {
    std::stringstream ss("5000000000 1 2\n");  // User id > 32 bits.
    EXPECT_FALSE(ReadActionLogText(&ss).ok());
  }
}

TEST(ActionLogIoTest, FileRoundTrip) {
  ActionLog log;
  log.Add({1, 2, 3});
  log.Add({4, 5, 6});
  std::string path = ::testing::TempDir() + "/psi_log_io_test.txt";
  ASSERT_TRUE(SaveActionLog(log, path).ok());
  auto loaded = LoadActionLog(path).ValueOrDie();
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_FALSE(LoadActionLog("/nonexistent/nowhere.log").ok());
}

}  // namespace
}  // namespace psi
