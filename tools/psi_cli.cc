// psi_cli — command-line driver for the library.
//
// Subcommands:
//   generate --out-dir D [--users N] [--arcs M] [--actions A]
//            [--providers P] [--seed S]
//       Generates a synthetic world: graph.txt (the host's input) and
//       provider_<k>.log (each provider's private input), plus the unified
//       log unified.log for reference.
//
//   learn    --dir D [--window H] [--providers P] [--seed S]
//       Loads graph.txt + provider logs and runs the full secure Protocol 4,
//       writing influence.txt ("from to p" per arc) and printing the
//       communication report. Also verifies against the plaintext baseline
//       computed from unified.log when present.
//
//   scores   --dir D [--tau T] [--providers P] [--seed S]
//       Runs the secure user-score pipeline (Protocol 6 + a_i reveal) and
//       prints the top influencers.
//
//   run-remote --dir D [--protocol p6|p4] [--providers P] [--seed S]
//              [--daemons N] [--attach PORT,PORT,...] [--window H]
//              [--no-fallback true]
//       Runs the chosen protocol with the providers' stage bodies executing
//       on psid daemons (mpc/remote_exec.h). By default forks N in-process
//       daemons with the execution engine enabled and distributes the
//       providers across them round-robin; --attach skips the forking and
//       dials already-running daemons on 127.0.0.1 instead (spawn them with
//       tools/psid). Prints the protocol TrafficReport (bitwise-identical
//       to a simulator run), the TransportStats of the wire, and the remote
//       execution counters.
//
// Exit status is nonzero on any error; diagnostics go to stderr.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "actionlog/generator.h"
#include "actionlog/io.h"
#include "actionlog/partition.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "influence/link_influence.h"
#include "influence/user_score.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"
#include "mpc/remote_exec.h"
#include "mpc/secure_user_score.h"
#include "net/daemon.h"
#include "net/socket_transport.h"

namespace psi {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::stoull(it->second);
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

[[nodiscard]] Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for " + arg);
    }
    flags.values[arg.substr(2)] = argv[++i];
  }
  return flags;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

[[nodiscard]] Status RunGenerate(const Flags& flags) {
  std::string dir = flags.GetString("out-dir", "");
  if (dir.empty()) return Status::InvalidArgument("--out-dir is required");
  uint64_t users = flags.GetInt("users", 100);
  uint64_t arcs = flags.GetInt("arcs", 500);
  uint64_t actions = flags.GetInt("actions", 200);
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 42);

  Rng rng(seed);
  PSI_ASSIGN_OR_RETURN(SocialGraph graph,
                       ErdosRenyiArcs(&rng, users, arcs));
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.05, 0.6);
  CascadeParams params;
  params.num_actions = actions;
  PSI_ASSIGN_OR_RETURN(ActionLog log,
                       GenerateCascades(&rng, graph, truth, params));
  PSI_ASSIGN_OR_RETURN(auto provider_logs,
                       ExclusivePartition(&rng, log, providers));

  PSI_RETURN_NOT_OK(SaveGraph(graph, dir + "/graph.txt"));
  PSI_RETURN_NOT_OK(SaveActionLog(log, dir + "/unified.log"));
  for (size_t k = 0; k < provider_logs.size(); ++k) {
    PSI_RETURN_NOT_OK(SaveActionLog(
        provider_logs[k], dir + "/provider_" + std::to_string(k) + ".log"));
  }
  std::printf("wrote %s/graph.txt (%zu users, %zu arcs), unified.log (%zu "
              "records) and %llu provider logs\n",
              dir.c_str(), graph.num_nodes(), graph.num_arcs(), log.size(),
              static_cast<unsigned long long>(providers));
  return Status::OK();
}

struct LoadedWorld {
  SocialGraph graph{1};
  std::vector<ActionLog> provider_logs;
};

[[nodiscard]] Result<LoadedWorld> LoadWorld(const std::string& dir, uint64_t providers) {
  LoadedWorld w;
  PSI_ASSIGN_OR_RETURN(w.graph, LoadGraph(dir + "/graph.txt"));
  for (uint64_t k = 0; k < providers; ++k) {
    PSI_ASSIGN_OR_RETURN(
        ActionLog log,
        LoadActionLog(dir + "/provider_" + std::to_string(k) + ".log"));
    w.provider_logs.push_back(std::move(log));
  }
  return w;
}

uint64_t CountActions(const std::vector<ActionLog>& logs) {
  ActionId max_action = 0;
  for (const auto& log : logs) {
    max_action = std::max(max_action, log.MaxActionId());
  }
  return max_action;
}

[[nodiscard]] Status RunLearn(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  uint64_t window = flags.GetInt("window", 4);
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 1);

  PSI_ASSIGN_OR_RETURN(LoadedWorld w, LoadWorld(dir, providers));
  uint64_t actions = CountActions(w.provider_logs);

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> provider_ids;
  std::vector<std::unique_ptr<Rng>> rng_store;
  std::vector<Rng*> provider_rngs;
  for (uint64_t k = 0; k < providers; ++k) {
    provider_ids.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.push_back(std::make_unique<Rng>(seed * 100 + k));
    provider_rngs.push_back(rng_store.back().get());
  }
  Rng host_rng(seed), pair_secret(seed + 1);

  Protocol4Config config;
  config.h = window;
  LinkInfluenceProtocol protocol(&net, host, provider_ids, config);
  PSI_ASSIGN_OR_RETURN(LinkInfluence result,
                       protocol.Run(w.graph, actions, w.provider_logs,
                                    &host_rng, provider_rngs, &pair_secret));

  std::ofstream out(dir + "/influence.txt");
  if (!out) return Status::NotFound("cannot write influence.txt");
  out << "# from to p\n";
  for (size_t e = 0; e < result.pairs.size(); ++e) {
    out << result.pairs[e].from << " " << result.pairs[e].to << " "
        << result.p[e] << "\n";
  }
  std::printf("learned %zu link strengths -> %s/influence.txt\n",
              result.p.size(), dir.c_str());
  std::printf("%s", net.Report().ToString().c_str());

  // Optional verification against the unified log.
  std::ifstream probe(dir + "/unified.log");
  if (probe) {
    PSI_ASSIGN_OR_RETURN(ActionLog unified,
                         LoadActionLog(dir + "/unified.log"));
    PSI_ASSIGN_OR_RETURN(LinkInfluence plain,
                         ComputeLinkInfluence(unified, w.graph.arcs(),
                                              w.graph.num_nodes(), window));
    PSI_ASSIGN_OR_RETURN(double mae, MeanAbsoluteError(result, plain));
    std::printf("verification vs unified.log: MAE %.2e\n", mae);
  }
  return Status::OK();
}

[[nodiscard]] Status RunScores(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  uint64_t tau = flags.GetInt("tau", 12);
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 1);

  PSI_ASSIGN_OR_RETURN(LoadedWorld w, LoadWorld(dir, providers));
  uint64_t actions = CountActions(w.provider_logs);

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> provider_ids;
  std::vector<std::unique_ptr<Rng>> rng_store;
  std::vector<Rng*> provider_rngs;
  for (uint64_t k = 0; k < providers; ++k) {
    provider_ids.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.push_back(std::make_unique<Rng>(seed * 100 + k));
    provider_rngs.push_back(rng_store.back().get());
  }
  Rng host_rng(seed), pair_secret(seed + 1);

  SecureScoreConfig config;
  config.protocol6.rsa_bits = 512;
  config.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
  config.score_options.tau = tau;
  SecureUserScoreProtocol pipeline(&net, host, provider_ids, config);
  PSI_ASSIGN_OR_RETURN(auto scores,
                       pipeline.Run(w.graph, actions, w.provider_logs,
                                    &host_rng, provider_rngs, &pair_secret));

  std::printf("top influencers (tau = %llu):\n",
              static_cast<unsigned long long>(tau));
  std::printf("%8s %12s %10s\n", "user", "score", "actions");
  for (NodeId u : TopKUsers(scores, 15)) {
    std::printf("%8u %12.3f %10llu\n", u, scores[u],
                static_cast<unsigned long long>(
                    pipeline.revealed_action_counts()[u]));
  }
  return Status::OK();
}

// ---- run-remote ----

PsidDaemon* g_child_daemon = nullptr;

void ChildSignal(int /*sig*/) {
  if (g_child_daemon != nullptr) g_child_daemon->Stop();
}

/// One forked psid with the execution engine on. The parent keeps only the
/// pid and port; the child owns the sockets and serves until SIGTERM.
struct SpawnedDaemon {
  pid_t pid = -1;
  uint16_t port = 0;
};

[[nodiscard]] Result<SpawnedDaemon> SpawnExecDaemon(
    const std::string& auth_token, uint64_t seed,
    std::vector<std::string> hosted) {
  // The engine is wired in before the fork (the daemon's config is fixed at
  // construction); the parent never runs the daemon, so its handler copy is
  // inert. In the child, the locals stay alive through Run(): _exit() never
  // unwinds this frame.
  StageExecutor executor;
  PsidConfig config;
  config.auth_token = auth_token;
  config.seed = seed;
  config.hosted_parties = std::move(hosted);
  config.exec_handler = executor.Handler();
  PsidDaemon daemon(config);
  PSI_ASSIGN_OR_RETURN(uint16_t port, daemon.Listen(0));
  pid_t pid = fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    g_child_daemon = &daemon;
    signal(SIGTERM, ChildSignal);
    signal(SIGINT, ChildSignal);
    Status run = daemon.Run();
    _exit(run.ok() ? 0 : 1);
  }
  daemon.CloseAll();
  SpawnedDaemon out;
  out.pid = pid;
  out.port = port;
  return out;
}

[[nodiscard]] Status RunRemote(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  const std::string protocol = flags.GetString("protocol", "p6");
  if (protocol != "p6" && protocol != "p4") {
    return Status::InvalidArgument("--protocol must be p6 or p4");
  }
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 1);
  uint64_t window = flags.GetInt("window", 4);
  uint64_t num_daemons = flags.GetInt("daemons", 2);
  const std::string attach = flags.GetString("attach", "");
  const bool fallback = flags.GetString("no-fallback", "") != "true";
  if (num_daemons == 0) return Status::InvalidArgument("--daemons must be > 0");

  RegisterLinkInfluenceStagePrograms();
  RegisterPropagationStagePrograms();

  PSI_ASSIGN_OR_RETURN(LoadedWorld w, LoadWorld(dir, providers));
  uint64_t actions = CountActions(w.provider_logs);

  // Daemon endpoints: forked children with the engine on, or ports the
  // operator already has psid listening on.
  std::vector<SpawnedDaemon> spawned;
  std::vector<uint16_t> ports;
  SocketTransportConfig net_config;
  net_config.seed = seed;
  net_config.session_name = "cli-remote";
  if (attach.empty()) {
    for (uint64_t d = 0; d < num_daemons; ++d) {
      std::vector<std::string> hosted;
      for (uint64_t k = d; k < providers; k += num_daemons) {
        hosted.push_back("P" + std::to_string(k + 1));
      }
      PSI_ASSIGN_OR_RETURN(
          SpawnedDaemon sd,
          SpawnExecDaemon(net_config.auth_token, seed + 100 + d,
                          std::move(hosted)));
      ports.push_back(sd.port);
      spawned.push_back(sd);
    }
  } else {
    size_t start = 0;
    while (start < attach.size()) {
      size_t comma = attach.find(',', start);
      if (comma == std::string::npos) comma = attach.size();
      ports.push_back(static_cast<uint16_t>(
          std::stoul(attach.substr(start, comma - start))));
      start = comma + 1;
    }
    num_daemons = ports.size();
  }

  auto reap = [&spawned]() {
    for (const SpawnedDaemon& sd : spawned) {
      kill(sd.pid, SIGTERM);
    }
    for (const SpawnedDaemon& sd : spawned) {
      int wstatus = 0;
      waitpid(sd.pid, &wstatus, 0);
    }
  };

  SocketNetwork net(net_config);
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> provider_ids;
  std::vector<std::unique_ptr<Rng>> rng_store;
  std::vector<Rng*> provider_rngs;
  for (uint64_t k = 0; k < providers; ++k) {
    provider_ids.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.push_back(std::make_unique<Rng>(seed * 100 + k));
    provider_rngs.push_back(rng_store.back().get());
  }
  Rng host_rng(seed), pair_secret(seed + 1);

  // Providers round-robin across the daemons; H stays local.
  Status connected = Status::OK();
  for (size_t d = 0; d < ports.size() && connected.ok(); ++d) {
    std::vector<PartyId> assigned;
    for (uint64_t k = d; k < providers; k += num_daemons) {
      assigned.push_back(provider_ids[k]);
    }
    if (!assigned.empty()) {
      connected = net.ConnectDaemon("127.0.0.1", ports[d], assigned);
    }
  }
  if (!connected.ok()) {
    reap();
    return connected;
  }

  RetryPolicy retry;
  retry.seed = seed;
  RemoteExecPolicy exec_policy;
  exec_policy.seed = seed;
  exec_policy.allow_local_fallback = fallback;
  RemoteSessionOrchestrator orchestrator(retry, exec_policy);
  SessionStats session_stats;

  Status run = Status::OK();
  if (protocol == "p6") {
    Protocol6Config config;
    config.encryption = Protocol6Config::EncryptionMode::kHybrid;
    PropagationGraphProtocol p6(&net, host, provider_ids, config);
    auto out = p6.RunSession(w.graph, actions + 1, w.provider_logs, &host_rng,
                             provider_rngs, retry, &session_stats,
                             &orchestrator);
    if (out.ok()) {
      size_t arcs = 0;
      for (const auto& g : out.ValueOrDie().graphs) arcs += g.num_arcs();
      std::printf("P6 remote: %zu propagation graphs, %zu labelled arcs\n",
                  out.ValueOrDie().graphs.size(), arcs);
    }
    run = out.status();
  } else {
    Protocol4Config config;
    config.h = window;
    LinkInfluenceProtocol p4(&net, host, provider_ids, config);
    auto out = p4.RunSession(w.graph, actions, w.provider_logs, &host_rng,
                             provider_rngs, &pair_secret, retry,
                             &session_stats, /*extras=*/{}, &orchestrator);
    if (out.ok()) {
      std::printf("P4 remote: learned %zu link strengths\n",
                  out.ValueOrDie().p.size());
    }
    run = out.status();
  }

  net.Shutdown();
  reap();
  PSI_RETURN_NOT_OK(run);

  std::printf("%s", net.Report().ToString().c_str());
  const RemoteExecStats& xs = orchestrator.exec_stats();
  std::printf(
      "remote exec: %llu stage(s) on daemons (%llu call(s), %llu cached, "
      "%llu state restore(s) shipped, %llu timeout(s), %llu degraded to "
      "local), %llu crypto op(s) daemon-side\n",
      static_cast<unsigned long long>(xs.remote_stages),
      static_cast<unsigned long long>(xs.remote_calls),
      static_cast<unsigned long long>(xs.cache_hits),
      static_cast<unsigned long long>(xs.restores_shipped),
      static_cast<unsigned long long>(xs.timeouts),
      static_cast<unsigned long long>(xs.degraded_to_local),
      static_cast<unsigned long long>(xs.remote_crypto_ops));
  std::printf(
      "session: %u attempt(s), %llu stage(s) run, %llu crypto op(s) total, "
      "%llu recomputed\n",
      session_stats.attempts,
      static_cast<unsigned long long>(session_stats.stages_run),
      static_cast<unsigned long long>(session_stats.crypto_ops_total),
      static_cast<unsigned long long>(session_stats.crypto_ops_recomputed));
  const TransportStats& ts = net.transport_stats();
  std::printf(
      "transport: %llu connect(s) (%llu reconnect(s)), %llu frame(s) "
      "relayed, %llu heartbeat(s), %llu exec byte(s) tx / %llu rx, %llu "
      "wire byte(s) tx / %llu rx\n",
      static_cast<unsigned long long>(ts.connects),
      static_cast<unsigned long long>(ts.reconnects),
      static_cast<unsigned long long>(ts.frames_relayed),
      static_cast<unsigned long long>(ts.heartbeats_sent),
      static_cast<unsigned long long>(ts.exec_bytes_tx),
      static_cast<unsigned long long>(ts.exec_bytes_rx),
      static_cast<unsigned long long>(ts.wire_bytes_tx),
      static_cast<unsigned long long>(ts.wire_bytes_rx));
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: psi_cli <generate|learn|scores|run-remote> "
                 "[--flag value ...]\n"
                 "see the header comment of tools/psi_cli.cc\n");
    return 2;
  }
  std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) return Fail(flags.status());
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "generate") status = RunGenerate(*flags);
  if (command == "learn") status = RunLearn(*flags);
  if (command == "scores") status = RunScores(*flags);
  if (command == "run-remote") status = RunRemote(*flags);
  return status.ok() ? 0 : Fail(status);
}

}  // namespace
}  // namespace psi

int main(int argc, char** argv) { return psi::Main(argc, argv); }
