// psi_cli — command-line driver for the library.
//
// Subcommands:
//   generate --out-dir D [--users N] [--arcs M] [--actions A]
//            [--providers P] [--seed S]
//       Generates a synthetic world: graph.txt (the host's input) and
//       provider_<k>.log (each provider's private input), plus the unified
//       log unified.log for reference.
//
//   learn    --dir D [--window H] [--providers P] [--seed S]
//       Loads graph.txt + provider logs and runs the full secure Protocol 4,
//       writing influence.txt ("from to p" per arc) and printing the
//       communication report. Also verifies against the plaintext baseline
//       computed from unified.log when present.
//
//   scores   --dir D [--tau T] [--providers P] [--seed S]
//       Runs the secure user-score pipeline (Protocol 6 + a_i reveal) and
//       prints the top influencers.
//
// Exit status is nonzero on any error; diagnostics go to stderr.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "actionlog/generator.h"
#include "actionlog/io.h"
#include "actionlog/partition.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "influence/link_influence.h"
#include "influence/user_score.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/secure_user_score.h"

namespace psi {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::stoull(it->second);
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

[[nodiscard]] Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for " + arg);
    }
    flags.values[arg.substr(2)] = argv[++i];
  }
  return flags;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

[[nodiscard]] Status RunGenerate(const Flags& flags) {
  std::string dir = flags.GetString("out-dir", "");
  if (dir.empty()) return Status::InvalidArgument("--out-dir is required");
  uint64_t users = flags.GetInt("users", 100);
  uint64_t arcs = flags.GetInt("arcs", 500);
  uint64_t actions = flags.GetInt("actions", 200);
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 42);

  Rng rng(seed);
  PSI_ASSIGN_OR_RETURN(SocialGraph graph,
                       ErdosRenyiArcs(&rng, users, arcs));
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.05, 0.6);
  CascadeParams params;
  params.num_actions = actions;
  PSI_ASSIGN_OR_RETURN(ActionLog log,
                       GenerateCascades(&rng, graph, truth, params));
  PSI_ASSIGN_OR_RETURN(auto provider_logs,
                       ExclusivePartition(&rng, log, providers));

  PSI_RETURN_NOT_OK(SaveGraph(graph, dir + "/graph.txt"));
  PSI_RETURN_NOT_OK(SaveActionLog(log, dir + "/unified.log"));
  for (size_t k = 0; k < provider_logs.size(); ++k) {
    PSI_RETURN_NOT_OK(SaveActionLog(
        provider_logs[k], dir + "/provider_" + std::to_string(k) + ".log"));
  }
  std::printf("wrote %s/graph.txt (%zu users, %zu arcs), unified.log (%zu "
              "records) and %llu provider logs\n",
              dir.c_str(), graph.num_nodes(), graph.num_arcs(), log.size(),
              static_cast<unsigned long long>(providers));
  return Status::OK();
}

struct LoadedWorld {
  SocialGraph graph{1};
  std::vector<ActionLog> provider_logs;
};

[[nodiscard]] Result<LoadedWorld> LoadWorld(const std::string& dir, uint64_t providers) {
  LoadedWorld w;
  PSI_ASSIGN_OR_RETURN(w.graph, LoadGraph(dir + "/graph.txt"));
  for (uint64_t k = 0; k < providers; ++k) {
    PSI_ASSIGN_OR_RETURN(
        ActionLog log,
        LoadActionLog(dir + "/provider_" + std::to_string(k) + ".log"));
    w.provider_logs.push_back(std::move(log));
  }
  return w;
}

uint64_t CountActions(const std::vector<ActionLog>& logs) {
  ActionId max_action = 0;
  for (const auto& log : logs) {
    max_action = std::max(max_action, log.MaxActionId());
  }
  return max_action;
}

[[nodiscard]] Status RunLearn(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  uint64_t window = flags.GetInt("window", 4);
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 1);

  PSI_ASSIGN_OR_RETURN(LoadedWorld w, LoadWorld(dir, providers));
  uint64_t actions = CountActions(w.provider_logs);

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> provider_ids;
  std::vector<std::unique_ptr<Rng>> rng_store;
  std::vector<Rng*> provider_rngs;
  for (uint64_t k = 0; k < providers; ++k) {
    provider_ids.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.push_back(std::make_unique<Rng>(seed * 100 + k));
    provider_rngs.push_back(rng_store.back().get());
  }
  Rng host_rng(seed), pair_secret(seed + 1);

  Protocol4Config config;
  config.h = window;
  LinkInfluenceProtocol protocol(&net, host, provider_ids, config);
  PSI_ASSIGN_OR_RETURN(LinkInfluence result,
                       protocol.Run(w.graph, actions, w.provider_logs,
                                    &host_rng, provider_rngs, &pair_secret));

  std::ofstream out(dir + "/influence.txt");
  if (!out) return Status::NotFound("cannot write influence.txt");
  out << "# from to p\n";
  for (size_t e = 0; e < result.pairs.size(); ++e) {
    out << result.pairs[e].from << " " << result.pairs[e].to << " "
        << result.p[e] << "\n";
  }
  std::printf("learned %zu link strengths -> %s/influence.txt\n",
              result.p.size(), dir.c_str());
  std::printf("%s", net.Report().ToString().c_str());

  // Optional verification against the unified log.
  std::ifstream probe(dir + "/unified.log");
  if (probe) {
    PSI_ASSIGN_OR_RETURN(ActionLog unified,
                         LoadActionLog(dir + "/unified.log"));
    PSI_ASSIGN_OR_RETURN(LinkInfluence plain,
                         ComputeLinkInfluence(unified, w.graph.arcs(),
                                              w.graph.num_nodes(), window));
    PSI_ASSIGN_OR_RETURN(double mae, MeanAbsoluteError(result, plain));
    std::printf("verification vs unified.log: MAE %.2e\n", mae);
  }
  return Status::OK();
}

[[nodiscard]] Status RunScores(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("--dir is required");
  uint64_t tau = flags.GetInt("tau", 12);
  uint64_t providers = flags.GetInt("providers", 3);
  uint64_t seed = flags.GetInt("seed", 1);

  PSI_ASSIGN_OR_RETURN(LoadedWorld w, LoadWorld(dir, providers));
  uint64_t actions = CountActions(w.provider_logs);

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> provider_ids;
  std::vector<std::unique_ptr<Rng>> rng_store;
  std::vector<Rng*> provider_rngs;
  for (uint64_t k = 0; k < providers; ++k) {
    provider_ids.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.push_back(std::make_unique<Rng>(seed * 100 + k));
    provider_rngs.push_back(rng_store.back().get());
  }
  Rng host_rng(seed), pair_secret(seed + 1);

  SecureScoreConfig config;
  config.protocol6.rsa_bits = 512;
  config.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
  config.score_options.tau = tau;
  SecureUserScoreProtocol pipeline(&net, host, provider_ids, config);
  PSI_ASSIGN_OR_RETURN(auto scores,
                       pipeline.Run(w.graph, actions, w.provider_logs,
                                    &host_rng, provider_rngs, &pair_secret));

  std::printf("top influencers (tau = %llu):\n",
              static_cast<unsigned long long>(tau));
  std::printf("%8s %12s %10s\n", "user", "score", "actions");
  for (NodeId u : TopKUsers(scores, 15)) {
    std::printf("%8u %12.3f %10llu\n", u, scores[u],
                static_cast<unsigned long long>(
                    pipeline.revealed_action_counts()[u]));
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: psi_cli <generate|learn|scores> [--flag value ...]\n"
                 "see the header comment of tools/psi_cli.cc\n");
    return 2;
  }
  std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) return Fail(flags.status());
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "generate") status = RunGenerate(*flags);
  if (command == "learn") status = RunLearn(*flags);
  if (command == "scores") status = RunScores(*flags);
  return status.ok() ? 0 : Fail(status);
}

}  // namespace
}  // namespace psi

int main(int argc, char** argv) { return psi::Main(argc, argv); }
