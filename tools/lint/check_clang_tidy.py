#!/usr/bin/env python3
"""Zero-new-warnings clang-tidy gate (docs/STATIC_ANALYSIS.md).

Runs clang-tidy (config: the committed .clang-tidy) over every translation
unit in a CMake compile database and compares the warnings against the
committed baseline. The build is clean when every warning's fingerprint —
``path:check-name`` with the path repo-relative, line numbers deliberately
excluded so unrelated edits don't shift the baseline — already appears in
the baseline. New fingerprints fail the gate; fingerprints that no longer
fire are reported so the baseline can be pruned.

Usage:
  check_clang_tidy.py --build-dir build [--baseline tools/lint/clang_tidy_baseline.txt]
  check_clang_tidy.py --build-dir build --update-baseline   # regenerate

Exit codes: 0 clean, 1 new warnings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

WARNING_RE = re.compile(r"^(?P<path>[^:]+):\d+:\d+: warning: .*\[(?P<check>[\w.,-]+)\]$")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def find_clang_tidy():
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def sources_from_compile_db(build_dir, root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"error: {db_path} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        db = json.load(f)
    sources = []
    for entry in db:
        path = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, root)
        # Gate the project's own code, not vendored/generated TUs.
        if rel.startswith(("src/", "tools/", "tests/", "bench/")):
            sources.append(path)
    return sorted(set(sources))


def run_clang_tidy(tidy, build_dir, sources, root):
    fingerprints = set()
    raw_lines = []
    for i in range(0, len(sources), 16):
        chunk = sources[i:i + 16]
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", *chunk],
            capture_output=True, text=True)
        for line in proc.stdout.splitlines():
            m = WARNING_RE.match(line)
            if not m:
                continue
            rel = os.path.relpath(os.path.abspath(m.group("path")), root)
            for check in m.group("check").split(","):
                fingerprints.add(f"{rel}:{check}")
            raw_lines.append(line)
    return fingerprints, raw_lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline",
                        default=os.path.join("tools", "lint", "clang_tidy_baseline.txt"))
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args()

    root = repo_root()
    tidy = find_clang_tidy()
    if tidy is None:
        print("error: clang-tidy not found on PATH", file=sys.stderr)
        return 2

    sources = sources_from_compile_db(args.build_dir, root)
    if not sources:
        print("error: compile database contains no project sources",
              file=sys.stderr)
        return 2
    found, raw = run_clang_tidy(tidy, args.build_dir, sources, root)

    baseline_path = os.path.join(root, args.baseline)
    if args.update_baseline:
        with open(baseline_path, "w") as f:
            for fp in sorted(found):
                f.write(fp + "\n")
        print(f"wrote {len(found)} fingerprint(s) to {args.baseline}")
        return 0

    baseline = set()
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = {l.strip() for l in f if l.strip() and not l.startswith("#")}

    new = sorted(found - baseline)
    fixed = sorted(baseline - found)
    if fixed:
        print(f"note: {len(fixed)} baselined warning(s) no longer fire; "
              f"prune with --update-baseline:")
        for fp in fixed:
            print(f"  {fp}")
    if new:
        print(f"error: {len(new)} clang-tidy warning(s) not in the baseline:")
        for fp in new:
            print(f"  {fp}")
        print("\nFull clang-tidy output for the new warnings' files:")
        for line in raw:
            print(f"  {line}")
        return 1
    print(f"clang-tidy clean: {len(found)} warning(s), all baselined "
          f"({len(sources)} translation units)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
