#!/usr/bin/env python3
"""clang-format gate: ``--dry-run -Werror`` over the project's C++ sources.

Files listed in the baseline (tools/lint/format_baseline.txt) predate the
.clang-format gate and are tolerated until they are reformatted; every other
file — in particular every NEW file — must be byte-identical to clang-format
output. When a baselined file becomes clean the script says so, so the
baseline only ever shrinks (a ratchet). Regenerate with --update-baseline
after reformatting.

Usage:
  check_format.py [--baseline tools/lint/format_baseline.txt]
  check_format.py --update-baseline

Exit codes: 0 clean, 1 violations outside the baseline, 2 environment error.
"""

import argparse
import os
import shutil
import subprocess
import sys

DIRS = ("src", "tools", "tests", "bench")
EXTS = (".h", ".hpp", ".cc", ".cpp")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def find_clang_format():
    for name in ("clang-format", "clang-format-18", "clang-format-17",
                 "clang-format-16", "clang-format-15", "clang-format-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def project_sources(root):
    out = subprocess.run(["git", "-C", root, "ls-files", *DIRS],
                         capture_output=True, text=True, check=True).stdout
    return sorted(f for f in out.splitlines()
                  if f.endswith(EXTS)
                  # psi_lint fixtures are test data with intentional style.
                  and not f.startswith("tests/tools/fixtures/"))


def nonconforming(fmt, root, files):
    bad = []
    for i in range(0, len(files), 32):
        chunk = files[i:i + 32]
        proc = subprocess.run([fmt, "--dry-run", "-Werror", "--style=file", *chunk],
                              cwd=root, capture_output=True, text=True)
        if proc.returncode == 0:
            continue
        # Re-run per file to attribute failures precisely.
        for f in chunk:
            one = subprocess.run([fmt, "--dry-run", "-Werror", "--style=file", f],
                                 cwd=root, capture_output=True, text=True)
            if one.returncode != 0:
                bad.append(f)
    return bad


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        default=os.path.join("tools", "lint", "format_baseline.txt"))
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args()

    root = repo_root()
    fmt = find_clang_format()
    if fmt is None:
        print("error: clang-format not found on PATH", file=sys.stderr)
        return 2

    files = project_sources(root)
    bad = nonconforming(fmt, root, files)

    baseline_path = os.path.join(root, args.baseline)
    if args.update_baseline:
        with open(baseline_path, "w") as f:
            for name in bad:
                f.write(name + "\n")
        print(f"wrote {len(bad)} file(s) to {args.baseline}")
        return 0

    baseline = set()
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = {l.strip() for l in f if l.strip() and not l.startswith("#")}

    new = sorted(set(bad) - baseline)
    cleaned = sorted(baseline - set(bad))
    if cleaned:
        print(f"note: {len(cleaned)} baselined file(s) now conform; prune with "
              "--update-baseline:")
        for name in cleaned:
            print(f"  {name}")
    if new:
        print(f"error: {len(new)} file(s) not clang-format clean and not baselined:")
        for name in new:
            print(f"  {name}")
        print("fix: clang-format -i <file>")
        return 1
    print(f"clang-format clean: {len(files)} file(s) checked, "
          f"{len(bad)} baselined exception(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
