#!/usr/bin/env python3
"""clang-format gate: ``--dry-run -Werror`` over the project's C++ sources.

Files listed in the baseline (tools/lint/format_baseline.txt) predate the
.clang-format gate and are tolerated until they are reformatted; every other
file — in particular every NEW file — must be byte-identical to clang-format
output. When a baselined file becomes clean the script says so, so the
baseline only ever shrinks (a ratchet). Regenerate with --update-baseline
after reformatting.

Usage:
  check_format.py [--baseline tools/lint/format_baseline.txt]
  check_format.py --update-baseline
  check_format.py --prune-baseline [--offline]

``--prune-baseline`` rechecks only the baselined files and rewrites the
baseline with the still-dirty ones — shrink-only, so it can never add an
exception the way ``--update-baseline`` can. With ``--offline`` (for
machines without clang-format) pruning falls back to a battery of
mechanically-checkable style invariants (tabs, CRLF, trailing whitespace,
column limit, blank-line runs, keyword spacing, brace attachment, pointer
alignment): an entry failing any invariant is provably still dirty and is
kept; an entry passing all of them is pruned. The offline battery is
conservative in what it keeps, not a proof of conformance — if a pruned
file turns out dirty under real clang-format, the next CI lint run reports
it as a new violation and it should be reformatted (preferred) or
re-baselined.

Exit codes: 0 clean, 1 violations outside the baseline, 2 environment error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

DIRS = ("src", "tools", "tests", "bench")
EXTS = (".h", ".hpp", ".cc", ".cpp")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def find_clang_format():
    for name in ("clang-format", "clang-format-18", "clang-format-17",
                 "clang-format-16", "clang-format-15", "clang-format-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def project_sources(root):
    out = subprocess.run(["git", "-C", root, "ls-files", *DIRS],
                         capture_output=True, text=True, check=True).stdout
    return sorted(f for f in out.splitlines()
                  if f.endswith(EXTS)
                  # psi_lint fixtures are test data with intentional style.
                  and not f.startswith("tests/tools/fixtures/"))


def nonconforming(fmt, root, files):
    bad = []
    for i in range(0, len(files), 32):
        chunk = files[i:i + 32]
        proc = subprocess.run([fmt, "--dry-run", "-Werror", "--style=file", *chunk],
                              cwd=root, capture_output=True, text=True)
        if proc.returncode == 0:
            continue
        # Re-run per file to attribute failures precisely.
        for f in chunk:
            one = subprocess.run([fmt, "--dry-run", "-Werror", "--style=file", f],
                                 cwd=root, capture_output=True, text=True)
            if one.returncode != 0:
                bad.append(f)
    return bad


def offline_violations(path):
    """Violations of style invariants decidable without clang-format.

    Every check is a necessary condition for .clang-format conformance
    (Google base, 90 columns, left pointer alignment, attached braces), so
    a non-empty result proves the file is still dirty. An empty result is
    evidence, not proof — clang-format's line-breaking and alignment
    decisions are not reproduced here.
    """
    with open(path, "rb") as f:
        raw = f.read()
    v = []
    if b"\t" in raw:
        v.append("tab")
    if b"\r" in raw:
        v.append("crlf")
    if not raw.endswith(b"\n") or raw.endswith(b"\n\n"):
        v.append("final-newline")
    blank = 0
    for i, line in enumerate(raw.decode("utf-8", "replace").split("\n"), 1):
        if line != line.rstrip():
            v.append(f"{i}:trailing-whitespace")
        if len(line) > 90:
            v.append(f"{i}:line-over-90-columns")
        blank = blank + 1 if line.strip() == "" else 0
        if blank > 1:
            v.append(f"{i}:consecutive-blank-lines")
        stripped = line.strip()
        if not stripped or stripped.startswith(("//", "/*", "*", "*/")):
            continue
        # Mask comments and string literals before token-level checks.
        code = re.sub(r"//.*", "", line)
        code = re.sub(r'"(\\.|[^"\\])*"', '""', code)
        indent = len(line) - len(line.lstrip(" "))
        # Continuation lines aligned to an open paren may legally sit at an
        # odd column, so odd indentation only *keeps* a file baselined when
        # pruning — a false positive here is the safe direction.
        if indent % 2 == 1 and not re.match(r"^ (public|private|protected):", line):
            v.append(f"{i}:odd-indentation")
        if re.search(r"\b(if|for|while|switch|catch)\(", code):
            v.append(f"{i}:missing-space-after-keyword")
        if re.search(r"\)\{", code):
            v.append(f"{i}:missing-space-before-brace")
        if re.match(r"^\s*else\b", code):
            v.append(f"{i}:else-not-attached")
        if re.match(r"^\s*{\s*$", code):
            v.append(f"{i}:unattached-open-brace")
    return v


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        default=os.path.join("tools", "lint", "format_baseline.txt"))
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="recheck only baselined files; rewrite the "
                             "baseline keeping the still-dirty ones")
    parser.add_argument("--offline", action="store_true",
                        help="with --prune-baseline: use the clang-format-"
                             "free invariant battery instead of clang-format")
    args = parser.parse_args()

    root = repo_root()
    baseline_path = os.path.join(root, args.baseline)

    if args.prune_baseline:
        baseline = []
        with open(baseline_path) as f:
            header = [l.rstrip("\n") for l in f if l.startswith("#")]
        with open(baseline_path) as f:
            baseline = [l.strip() for l in f
                        if l.strip() and not l.startswith("#")]
        checked = set(project_sources(root))
        live = [b for b in baseline if b in checked]
        gone = sorted(set(baseline) - set(live))

        fmt = None if args.offline else find_clang_format()
        if fmt is not None:
            still_dirty = set(nonconforming(fmt, root, live))
            how = "clang-format"
        elif args.offline:
            still_dirty = {b for b in live if offline_violations(b)}
            how = "offline invariant battery"
        else:
            print("error: clang-format not found on PATH "
                  "(use --offline for the invariant battery)",
                  file=sys.stderr)
            return 2

        kept = [b for b in baseline if b in still_dirty]
        pruned = sorted(set(live) - still_dirty)
        with open(baseline_path, "w") as f:
            for line in header:
                f.write(line + "\n")
            for name in kept:
                f.write(name + "\n")
        print(f"pruned {len(pruned)} clean entr(ies) via {how}, "
              f"{len(gone)} no longer checked, {len(kept)} kept")
        for name in pruned:
            print(f"  pruned: {name}")
        return 0

    fmt = find_clang_format()
    if fmt is None:
        print("error: clang-format not found on PATH", file=sys.stderr)
        return 2

    files = project_sources(root)
    bad = nonconforming(fmt, root, files)

    if args.update_baseline:
        with open(baseline_path, "w") as f:
            for name in bad:
                f.write(name + "\n")
        print(f"wrote {len(bad)} file(s) to {args.baseline}")
        return 0

    baseline = set()
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = {l.strip() for l in f if l.strip() and not l.startswith("#")}

    new = sorted(set(bad) - baseline)
    cleaned = sorted(baseline - set(bad))
    if cleaned:
        print(f"note: {len(cleaned)} baselined file(s) now conform; prune with "
              "--update-baseline:")
        for name in cleaned:
            print(f"  {name}")
    if new:
        print(f"error: {len(new)} file(s) not clang-format clean and not baselined:")
        for name in new:
            print(f"  {name}")
        print("fix: clang-format -i <file>")
        return 1
    print(f"clang-format clean: {len(files)} file(s) checked, "
          f"{len(bad)} baselined exception(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
