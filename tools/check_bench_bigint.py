#!/usr/bin/env python3
"""Bench regression gate for the fixed-width big-integer engine.

Validates a fresh bench_bigint JSON run against the committed baseline
(BENCH_bigint.json):

  1. Build-type sanity: both JSONs must come from a Release build of the
     psi libraries (context key `psi_build_type`, falling back to the
     google-benchmark `library_build_type` for pre-engine files). Debug
     numbers gate nothing and are rejected loudly.
  2. Absolute floors (the PR's acceptance criteria; machine independent
     because both sides of each ratio come from the same run):
       - BM_MontgomeryPow/1024 at least 2x faster than its *Heap twin;
       - BM_PaillierDecryptCrt/1024 at least 2x faster than its *Heap twin.
  3. Regression guard: neither ratio may fall more than 25% below the
     committed baseline's ratio.

The whole-protocol BM_Protocol4EndToEnd / BM_Protocol6EndToEnd deltas are
printed for the record but not gated: the protocol benches spend most of
their time outside modular exponentiation, so their engine-vs-heap ratio is
small and noisy on shared CI runners.

Usage: check_bench_bigint.py --baseline BENCH_bigint.json --run fresh.json
"""

import argparse
import json
import sys

GATED_PAIRS = [
    ("BM_MontgomeryPow/1024", "BM_MontgomeryPowHeap/1024"),
    ("BM_PaillierDecryptCrt/1024", "BM_PaillierDecryptCrtHeap/1024"),
]
REPORTED_PAIRS = [
    ("BM_MontgomeryPow/512", "BM_MontgomeryPowHeap/512"),
    ("BM_MontgomeryPow/2048", "BM_MontgomeryPowHeap/2048"),
    ("BM_PaillierDecryptCrt/512", "BM_PaillierDecryptCrtHeap/512"),
    ("BM_PaillierEncrypt/1024", "BM_PaillierEncryptHeap/1024"),
    ("BM_Protocol4EndToEnd", "BM_Protocol4EndToEndHeap"),
    ("BM_Protocol6EndToEnd", "BM_Protocol6EndToEndHeap"),
]

MIN_SPEEDUP = 2.0
MAX_REGRESSION = 0.25


def require_release_build(data, label):
    """Fails loudly unless the JSON was produced by a Release build."""
    context = data.get("context", {})
    build = context.get("psi_build_type", context.get("library_build_type"))
    if build is None:
        raise SystemExit(
            f"FAIL: {label} carries no psi_build_type/library_build_type "
            "context; re-record it with a current Release bench binary"
        )
    if build != "release":
        raise SystemExit(
            f"FAIL: {label} was recorded from a '{build}' build; bench "
            "gates only accept Release numbers (cmake "
            "-DCMAKE_BUILD_TYPE=Release)"
        )


def load(path, label):
    with open(path) as f:
        data = json.load(f)
    require_release_build(data, label)
    return {bench["name"]: bench for bench in data.get("benchmarks", [])}


def cpu_time(benches, name):
    if name not in benches:
        raise SystemExit(f"FAIL: benchmark '{name}' missing from results")
    value = benches[name].get("cpu_time")
    if value is None or value <= 0:
        raise SystemExit(f"FAIL: benchmark '{name}' has no positive cpu_time")
    return float(value)


def speedup(benches, engine_name, heap_name):
    """Heap time / engine time from the same run."""
    return cpu_time(benches, heap_name) / cpu_time(benches, engine_name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--run", required=True)
    args = parser.parse_args()

    baseline = load(args.baseline, f"baseline {args.baseline}")
    fresh = load(args.run, f"run {args.run}")

    failures = []
    for engine_name, heap_name in GATED_PAIRS:
        fresh_ratio = speedup(fresh, engine_name, heap_name)
        base_ratio = speedup(baseline, engine_name, heap_name)
        floor = base_ratio * (1.0 - MAX_REGRESSION)
        print(
            f"{engine_name}: {fresh_ratio:.2f}x over heap "
            f"(baseline {base_ratio:.2f}x, regression floor {floor:.2f}x)"
        )
        if fresh_ratio < MIN_SPEEDUP:
            failures.append(
                f"{engine_name} speedup {fresh_ratio:.2f}x < required "
                f"{MIN_SPEEDUP}x"
            )
        if fresh_ratio < floor:
            failures.append(
                f"{engine_name} regressed: {fresh_ratio:.2f}x vs baseline "
                f"{base_ratio:.2f}x (> {MAX_REGRESSION:.0%} drop)"
            )

    for engine_name, heap_name in REPORTED_PAIRS:
        if engine_name in fresh and heap_name in fresh:
            print(
                f"{engine_name}: {speedup(fresh, engine_name, heap_name):.2f}x "
                "over heap (reported, not gated)"
            )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: bigint bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
