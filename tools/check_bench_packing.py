#!/usr/bin/env python3
"""Bench regression gate for the ciphertext-packing hot path.

Validates a fresh bench_micro JSON run against the committed baseline
(BENCH_packing.json):

  1. Absolute floors (the PR's acceptance criteria, machine independent
     because both sides of each ratio come from the same run):
       - packed decrypt throughput >= 8x the unpacked per-counter decrypt;
       - packed homomorphic-sum bits per counter <= 1/8 of unpacked.
  2. Regression guard: the packed-vs-unpacked decrypt-per-counter ratio must
     not fall more than 25% below the committed baseline's ratio.

Usage: check_bench_packing.py --baseline BENCH_packing.json --run fresh.json
"""

import argparse
import json
import sys

DECRYPT_UNPACKED = "BM_PaillierDecrypt"
DECRYPT_PACKED = "BM_PackedCounterDecrypt"
HSUM_UNPACKED = "BM_HomomorphicSumUnpacked"
HSUM_PACKED = "BM_HomomorphicSumPacked"

MIN_RATIO = 8.0
MAX_REGRESSION = 0.25


def require_release_build(data, path):
    """Fails loudly unless the JSON was produced by a Release build."""
    context = data.get("context", {})
    build = context.get("psi_build_type", context.get("library_build_type"))
    if build is None:
        raise SystemExit(
            f"FAIL: {path} carries no psi_build_type/library_build_type "
            "context; re-record it with a current Release bench binary"
        )
    if build != "release":
        raise SystemExit(
            f"FAIL: {path} was recorded from a '{build}' build; bench "
            "gates only accept Release numbers (cmake "
            "-DCMAKE_BUILD_TYPE=Release)"
        )


def load(path):
    with open(path) as f:
        data = json.load(f)
    require_release_build(data, path)
    by_name = {}
    for bench in data.get("benchmarks", []):
        by_name[bench["name"]] = bench
    return by_name


def metric(benches, name, key):
    if name not in benches:
        raise SystemExit(f"FAIL: benchmark '{name}' missing from results")
    value = benches[name].get(key)
    if value is None or value <= 0:
        raise SystemExit(f"FAIL: benchmark '{name}' has no positive '{key}'")
    return float(value)


def decrypt_ratio(benches):
    """Packed / unpacked decrypted counters per second (same run)."""
    return metric(benches, DECRYPT_PACKED, "items_per_second") / metric(
        benches, DECRYPT_UNPACKED, "items_per_second"
    )


def bits_ratio(benches):
    """Unpacked / packed metered bits per counter (same run)."""
    return metric(benches, HSUM_UNPACKED, "bits_per_counter") / metric(
        benches, HSUM_PACKED, "bits_per_counter"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--run", required=True)
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.run)

    failures = []

    fresh_decrypt = decrypt_ratio(fresh)
    print(f"decrypt counters/s, packed vs unpacked: {fresh_decrypt:.2f}x")
    if fresh_decrypt < MIN_RATIO:
        failures.append(
            f"decrypt speedup {fresh_decrypt:.2f}x < required {MIN_RATIO}x"
        )

    fresh_bits = bits_ratio(fresh)
    print(f"metered bits/counter, unpacked vs packed: {fresh_bits:.2f}x")
    if fresh_bits < MIN_RATIO:
        failures.append(
            f"bandwidth reduction {fresh_bits:.2f}x < required {MIN_RATIO}x"
        )

    base_decrypt = decrypt_ratio(baseline)
    floor = base_decrypt * (1.0 - MAX_REGRESSION)
    print(
        f"baseline decrypt ratio {base_decrypt:.2f}x, regression floor "
        f"{floor:.2f}x"
    )
    if fresh_decrypt < floor:
        failures.append(
            f"decrypt-per-counter regressed: {fresh_decrypt:.2f}x vs "
            f"baseline {base_decrypt:.2f}x (> {MAX_REGRESSION:.0%} drop)"
        )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: packing bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
