// psid — the party-hosting daemon binary of the socket transport.
//
// Hosts one endpoint of the wire for the parties named on the command
// line and serves any number of concurrent protocol sessions (see
// src/net/daemon.h for the model). Prints the bound port on stdout so
// scripts can spawn it with --port 0 and discover the ephemeral port.
//
//   psid --port 7001 --token s3cret --host P1 --host P2
//
// Beyond routing frames, the daemon is an execution engine: the stage
// programs of Protocols 4 and 6 are registered at startup and a
// StageExecutor (mpc/remote_exec.h) services kExec requests, so a
// RemoteSessionOrchestrator on the host side can run its parties' stage
// bodies *here* instead of hairpinning the frames. --no-exec disables the
// engine (the daemon answers exec requests with "no engine" and the host
// degrades to local execution) for drills and A/B runs.
//
// SIGINT/SIGTERM shut it down gracefully: stop accepting, drain queued
// frames to every admitted connection (bounded by --drain-grace-ms), flush
// checkpointable executor state, and dump final stats to stderr.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"
#include "mpc/remote_exec.h"
#include "net/daemon.h"

namespace {

psi::PsidDaemon* g_daemon = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_daemon != nullptr) g_daemon->Stop();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--token T] "
               "[--seed N] [--drain-grace-ms N] [--no-exec] "
               "[--host PARTY]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  psi::PsidConfig config;
  uint16_t port = 0;
  bool enable_exec = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--bind" && has_value) {
      config.bind_host = argv[++i];
    } else if (arg == "--token" && has_value) {
      config.auth_token = argv[++i];
    } else if (arg == "--seed" && has_value) {
      config.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--drain-grace-ms" && has_value) {
      config.drain_grace_ms = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-exec") {
      enable_exec = false;
    } else if (arg == "--host" && has_value) {
      config.hosted_parties.push_back(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  // The execution engine: register every known stage program, then hand the
  // daemon a bytes-in/bytes-out handler. The daemon itself stays
  // codec-agnostic; the executor owns the exec wire format.
  psi::StageExecutor executor;
  if (enable_exec) {
    psi::RegisterLinkInfluenceStagePrograms();
    psi::RegisterPropagationStagePrograms();
    config.exec_handler = executor.Handler();
  }

  psi::PsidDaemon daemon(config);
  auto bound = daemon.Listen(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "psid: %s\n", bound.status().message().c_str());
    return 1;
  }
  g_daemon = &daemon;
  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  std::printf("%u\n", static_cast<unsigned>(bound.ValueOrDie()));
  std::fflush(stdout);
  std::string parties;
  for (const std::string& p : config.hosted_parties) {
    parties += (parties.empty() ? "" : ", ") + p;
  }
  std::fprintf(stderr, "psid: listening on %s:%u hosting [%s]%s\n",
               config.bind_host.c_str(),
               static_cast<unsigned>(bound.ValueOrDie()), parties.c_str(),
               enable_exec ? " (exec engine on)" : "");

  psi::Status served = daemon.Run();
  if (!served.ok()) {
    std::fprintf(stderr, "psid: %s\n", served.message().c_str());
    return 1;
  }
  const psi::PsidStats& stats = daemon.stats();
  std::fprintf(stderr,
               "psid: served %llu connection(s), %llu hairpinned + %llu "
               "forwarded frame(s), %llu auth failure(s), %llu drained on "
               "shutdown\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.frames_hairpinned),
               static_cast<unsigned long long>(stats.frames_forwarded),
               static_cast<unsigned long long>(stats.auth_failures),
               static_cast<unsigned long long>(stats.drained_connections));
  if (enable_exec) {
    const psi::StageExecutorStats& xs = executor.stats();
    std::fprintf(
        stderr,
        "psid: exec %llu request(s): %llu run, %llu cached, %llu "
        "need-state, %llu state(s) loaded, %llu unsupported, %llu program "
        "error(s), %llu malformed, %llu crypto op(s), %zu live slot(s)\n",
        static_cast<unsigned long long>(xs.requests),
        static_cast<unsigned long long>(xs.executed),
        static_cast<unsigned long long>(xs.cache_hits),
        static_cast<unsigned long long>(xs.need_state),
        static_cast<unsigned long long>(xs.states_loaded),
        static_cast<unsigned long long>(xs.unsupported),
        static_cast<unsigned long long>(xs.program_errors),
        static_cast<unsigned long long>(xs.malformed),
        static_cast<unsigned long long>(xs.crypto_ops), executor.num_slots());
  }
  return 0;
}
