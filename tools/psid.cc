// psid — the party-hosting daemon binary of the socket transport.
//
// Hosts one endpoint of the wire for the parties named on the command
// line and serves any number of concurrent protocol sessions (see
// src/net/daemon.h for the model). Prints the bound port on stdout so
// scripts can spawn it with --port 0 and discover the ephemeral port.
//
//   psid --port 7001 --token s3cret --host P1 --host P2
//
// SIGINT/SIGTERM shut it down cleanly.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/daemon.h"

namespace {

psi::PsidDaemon* g_daemon = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_daemon != nullptr) g_daemon->Stop();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--token T] "
               "[--seed N] [--host PARTY]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  psi::PsidConfig config;
  uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--bind" && has_value) {
      config.bind_host = argv[++i];
    } else if (arg == "--token" && has_value) {
      config.auth_token = argv[++i];
    } else if (arg == "--seed" && has_value) {
      config.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--host" && has_value) {
      config.hosted_parties.push_back(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  psi::PsidDaemon daemon(config);
  auto bound = daemon.Listen(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "psid: %s\n", bound.status().message().c_str());
    return 1;
  }
  g_daemon = &daemon;
  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  std::printf("%u\n", static_cast<unsigned>(bound.ValueOrDie()));
  std::fflush(stdout);
  std::string parties;
  for (const std::string& p : config.hosted_parties) {
    parties += (parties.empty() ? "" : ", ") + p;
  }
  std::fprintf(stderr, "psid: listening on %s:%u hosting [%s]\n",
               config.bind_host.c_str(),
               static_cast<unsigned>(bound.ValueOrDie()), parties.c_str());

  psi::Status served = daemon.Run();
  if (!served.ok()) {
    std::fprintf(stderr, "psid: %s\n", served.message().c_str());
    return 1;
  }
  const psi::PsidStats& stats = daemon.stats();
  std::fprintf(stderr,
               "psid: served %llu connection(s), %llu hairpinned + %llu "
               "forwarded frame(s), %llu auth failure(s)\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.frames_hairpinned),
               static_cast<unsigned long long>(stats.frames_forwarded),
               static_cast<unsigned long long>(stats.auth_failures));
  return 0;
}
