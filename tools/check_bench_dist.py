#!/usr/bin/env python3
"""Bench gate for distributed stage execution.

Validates a fresh bench_dist JSON run against the committed baseline
(BENCH_dist.json). Every gated counter is a deterministic meter (protocol
traffic, exec frame bytes, resume handshake messages), so the checks are
machine independent; real_time_ns is reported but never gated (loopback
scheduling is not reproducible across machines).

  1. Correctness invariants (same run):
       - all four scenarios complete and every backend reproduces the
         simulator's output bitwise (outputs_match == 1);
       - hairpin and remote runs meter protocol traffic identically to the
         simulator (metering_matches_simulator == 1) — exec traffic is
         transport overhead, never protocol metering;
       - the remote run executed every provider stage on the daemon
         (remote_stages == providers) with no degradation, no timeouts,
         and the daemon metered exactly the crypto ops the host credited;
       - the resume scenario recovered from losing its daemon with exactly
         one resume handshake round, costing exactly the analytic model's
         message count (SessionResumeCosts: P*(P-1) messages, NR == 1),
         zero recomputed checkpointed crypto ops, and one reconnect.
  2. Regression guard vs the committed baseline:
       - protocol wire traffic (messages and bytes) must not grow more
         than 25% over baseline;
       - exec channel cost (calls and request/result bytes — the
         remote-stage overhead vs hairpin) must not grow more than 25%;
       - resume handshake messages must not grow at all: resume cost is
         pinned at one round.

Usage: check_bench_dist.py --baseline BENCH_dist.json --run fresh.json
"""

import argparse
import json
import sys

LOCAL = "dist/local_session"
HAIRPIN = "dist/hairpin_session"
REMOTE = "dist/remote_session"
RESUME = "dist/remote_resume"

MAX_REGRESSION = 0.25


def require_release_build(data, path):
    """Fails loudly unless the JSON was produced by a Release build."""
    context = data.get("context", {})
    build = context.get("psi_build_type", context.get("library_build_type"))
    if build is None:
        raise SystemExit(
            f"FAIL: {path} carries no psi_build_type/library_build_type "
            "context; re-record it with a current Release bench binary"
        )
    if build != "release":
        raise SystemExit(
            f"FAIL: {path} was recorded from a '{build}' build; bench "
            "gates only accept Release numbers (cmake "
            "-DCMAKE_BUILD_TYPE=Release)"
        )


def load(path):
    with open(path) as f:
        data = json.load(f)
    require_release_build(data, path)
    by_name = {}
    for bench in data.get("benchmarks", []):
        by_name[bench["name"]] = bench
    return by_name, data.get("context", {})


def row(benches, name):
    if name not in benches:
        raise SystemExit(f"FAIL: benchmark '{name}' missing from results")
    return benches[name]


def counter(benches, name, key):
    value = row(benches, name).get(key)
    if value is None:
        raise SystemExit(f"FAIL: benchmark '{name}' has no counter '{key}'")
    return int(value)


def check_invariants(benches, providers, failures):
    for name in (LOCAL, HAIRPIN, REMOTE, RESUME):
        if counter(benches, name, "ok") != 1:
            failures.append(f"{name} did not complete")
    for name in (HAIRPIN, REMOTE, RESUME):
        if counter(benches, name, "outputs_match") != 1:
            failures.append(f"{name} output diverged from the simulator")

    for name in (HAIRPIN, REMOTE):
        if counter(benches, name, "metering_matches_simulator") != 1:
            failures.append(f"{name} metered differently from the simulator")
        for key in ("wire_messages", "wire_bytes"):
            sim = counter(benches, LOCAL, key)
            got = counter(benches, name, key)
            if sim != got:
                failures.append(
                    f"{key} differs: {LOCAL}={sim} vs {name}={got}"
                )

    if counter(benches, REMOTE, "remote_stages") != providers:
        failures.append(
            f"remote run executed "
            f"{counter(benches, REMOTE, 'remote_stages')} stages remotely "
            f"(expected one per provider, {providers})"
        )
    if counter(benches, REMOTE, "degraded_to_local") != 0:
        failures.append("clean remote run degraded a stage to local")
    if counter(benches, REMOTE, "timeouts") != 0:
        failures.append("clean remote run hit a stage deadline")
    remote_ops = counter(benches, REMOTE, "remote_crypto_ops")
    daemon_ops = counter(benches, REMOTE, "daemon_crypto_ops")
    if remote_ops == 0:
        failures.append("remote stages metered no crypto ops")
    if remote_ops != daemon_ops:
        failures.append(
            f"host credited {remote_ops} remote crypto ops but the daemon "
            f"metered {daemon_ops}"
        )
    if counter(benches, REMOTE, "exec_calls") == 0:
        failures.append("remote run made no exec calls")

    if counter(benches, RESUME, "resumes") != 1:
        failures.append("resume scenario did not resume exactly once")
    handshake = counter(benches, RESUME, "handshake_messages")
    model = counter(benches, RESUME, "model_handshake_messages")
    if handshake != model:
        failures.append(
            f"resume handshake cost {handshake} messages; the one-round "
            f"analytic model says {model}"
        )
    if counter(benches, RESUME, "model_handshake_rounds") != 1:
        failures.append("resume cost model no longer prices one round")
    if counter(benches, RESUME, "crypto_ops_recomputed") != 0:
        failures.append("resume recomputed checkpointed crypto ops")
    if counter(benches, RESUME, "crypto_ops_saved") == 0:
        failures.append("resume saved no checkpointed work")
    if counter(benches, RESUME, "dead_peers_detected") < 1:
        failures.append("crashed daemon went undetected as a dead peer")
    if counter(benches, RESUME, "reconnects") != 1:
        failures.append("resume scenario did not reconnect exactly once")


def check_regressions(benches, baseline, failures):
    grow_caps = [
        (REMOTE, "wire_messages"),
        (REMOTE, "wire_bytes"),
        (REMOTE, "exec_calls"),
        (REMOTE, "exec_bytes_tx"),
        (REMOTE, "exec_bytes_rx"),
    ]
    for name, key in grow_caps:
        fresh = counter(benches, name, key)
        base = counter(baseline, name, key)
        ceiling = base * (1.0 + MAX_REGRESSION)
        print(f"{name}/{key}: {fresh} (baseline {base}, ceiling {ceiling:.0f})")
        if fresh > ceiling:
            failures.append(
                f"{name}/{key} grew: {fresh} vs baseline {base} "
                f"(> {MAX_REGRESSION:.0%} increase)"
            )

    fresh_hs = counter(benches, RESUME, "handshake_messages")
    base_hs = counter(baseline, RESUME, "handshake_messages")
    print(f"{RESUME}/handshake_messages: {fresh_hs} (baseline {base_hs})")
    if fresh_hs > base_hs:
        failures.append(
            f"resume handshake grew to {fresh_hs} messages (baseline "
            f"{base_hs}): resume is no longer a single pinned round"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--run", required=True)
    args = parser.parse_args()

    baseline, base_context = load(args.baseline)
    fresh, context = load(args.run)

    providers = int(context.get("providers", 0))
    if providers < 2:
        print(
            f"FAIL: {args.run} context names {providers} providers; the "
            "bench world needs at least 2",
            file=sys.stderr,
        )
        return 1
    if providers != int(base_context.get("providers", 0)):
        print(
            f"FAIL: provider count changed shape vs baseline "
            f"({providers} vs {base_context.get('providers')}); re-record "
            "the baseline if the bench world changed",
            file=sys.stderr,
        )
        return 1

    failures = []
    check_invariants(fresh, providers, failures)
    check_regressions(fresh, baseline, failures)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: dist bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
