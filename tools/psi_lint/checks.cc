// The token-level psi_lint checks (see lint.h for the invariant statements).
//
// Everything here is a lexical approximation: the checks see tokens, bracket
// matching and brace depth — not types or dataflow. The approximations are
// chosen so that (a) every true violation of the written invariant in this
// codebase's idiom is caught, and (b) false positives are rare enough to
// justify individually with a `psi-lint: allow(...)` comment.
//
// The secret-flow check lives in taint.cc (flow-sensitive engine) and the
// channel-schedule check in schedule.cc; RunChecks at the bottom merges all
// engines into one per-file finding list.

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "lint.h"
#include "schedule.h"
#include "taint.h"

namespace psi_lint {
namespace internal {
namespace {

constexpr size_t kNone = LexedFile::kNoMatch;

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsRngishName(const std::string& name) {
  const std::string n = Lower(name);
  return n.find("rng") != std::string::npos ||
         n.find("prng") != std::string::npos ||
         n.find("random") != std::string::npos;
}

/// The reader methods whose output is a raw peer-controlled integer.
bool IsTaintingRead(const std::string& name) {
  return name == "ReadU16" || name == "ReadU32" || name == "ReadU64" ||
         name == "ReadI64" || name == "ReadVarU64";
}

bool IsComparisonPunct(const std::string& t) {
  return t == "<" || t == ">" || t == "<=" || t == ">=" || t == "==" ||
         t == "!=";
}

class CheckRunner {
 public:
  CheckRunner(const LexedFile& file,
              const std::vector<std::string>& known_status_functions)
      : f_(file),
        known_status_(known_status_functions.begin(),
                      known_status_functions.end()) {}

  std::vector<std::string> StatusFunctionNames() const {
    std::vector<std::string> names;
    ScanStatusDecls([&](const StatusDecl& d) {
      names.push_back(Tok(d.name_idx).text);
    });
    return names;
  }

  std::vector<Finding> Run() {
    CheckRngOrder();
    CheckReadBounds();
    CheckNodiscardDecls();
    CheckDiscardedCalls();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                if (a.check != b.check) return a.check < b.check;
                return a.message < b.message;
              });
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding& a, const Finding& b) {
                                  return a.line == b.line && a.check == b.check &&
                                         a.message == b.message;
                                }),
                    findings_.end());
    return std::move(findings_);
  }

 private:
  // -- token utilities ------------------------------------------------------

  size_t N() const { return f_.tokens.size(); }
  const Token& Tok(size_t i) const { return f_.tokens[i]; }
  bool P(size_t i, const char* text) const {
    return i < N() && Tok(i).kind == TokKind::kPunct && Tok(i).text == text;
  }
  bool Id(size_t i, const char* text) const {
    return i < N() && Tok(i).kind == TokKind::kIdent && Tok(i).text == text;
  }
  bool IsIdent(size_t i) const {
    return i < N() && Tok(i).kind == TokKind::kIdent;
  }
  size_t Match(size_t i) const {
    return i < f_.match.size() ? f_.match[i] : kNone;
  }

  void Report(size_t tok_idx, const std::string& check,
              const std::string& message) {
    findings_.push_back({f_.path, Tok(tok_idx).line, check, message});
  }

  /// Index right after the last `;` / `{` / `}` before `i` (statement start).
  size_t StatementStart(size_t i) const {
    while (i > 0) {
      const Token& t = Tok(i - 1);
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        break;
      }
      --i;
    }
    return i;
  }

  /// Index of the `;` closing the statement containing `i` (paren-depth 0
  /// relative to `i`), or N().
  size_t StatementEnd(size_t i) const {
    int depth = 0;
    for (size_t j = i; j < N(); ++j) {
      const std::string& t = Tok(j).text;
      if (Tok(j).kind != TokKind::kPunct) continue;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == ";" && depth <= 0) return j;
    }
    return N();
  }

  /// For a `<` at index `i`, the index just past its matching `>`, skipping
  /// nested angles (handles the `>>` double-closer token). kNone if this
  /// does not look like a template argument list.
  size_t SkipAngles(size_t i) const {
    int depth = 0;
    for (size_t j = i; j < N() && j < i + 256; ++j) {
      const std::string& t = Tok(j).text;
      if (Tok(j).kind == TokKind::kPunct) {
        if (t == "<") ++depth;
        else if (t == ">") { if (--depth == 0) return j + 1; }
        else if (t == ">>") { depth -= 2; if (depth <= 0) return j + 1; }
        else if (t == ";" || t == "{" || t == ")") return kNone;
      }
    }
    return kNone;
  }

  // -- check 2: rng-order ---------------------------------------------------

  void CheckRngOrder() {
    for (size_t i = 0; i < N(); ++i) {
      const bool entry = Id(i, "ParallelFor") || Id(i, "ParallelForChunked") ||
                         Id(i, "ParallelForStatus") || Id(i, "Submit");
      if (!entry || !P(i + 1, "(") || Match(i + 1) == kNone) continue;
      const size_t close = Match(i + 1);
      for (size_t j = i + 2; j < close; ++j) {
        if (!IsIdent(j) || !IsRngishName(Tok(j).text)) continue;
        size_t k = j + 1;
        if (P(k, "[") && Match(k) != kNone) k = Match(k) + 1;
        const bool direct_call = P(k, "(");
        const bool method_call = (P(k, ".") || P(k, "->")) && IsIdent(k + 1) &&
                                 P(k + 2, "(");
        if (direct_call || method_call) {
          Report(j, "rng-order",
                 "RNG call via '" + Tok(j).text + "' inside a " +
                     Tok(i).text +
                     " region; draw randomness before the parallel loop so "
                     "the transcript stays byte-identical at any thread "
                     "count");
        }
      }
    }
  }

  // -- check 3: read-bounds -------------------------------------------------

  void UntaintComparedNames(size_t begin, size_t end) {
    bool has_comparison = false;
    for (size_t j = begin; j < end; ++j) {
      if (Tok(j).kind == TokKind::kPunct && IsComparisonPunct(Tok(j).text)) {
        has_comparison = true;
        break;
      }
    }
    if (!has_comparison) return;
    for (size_t j = begin; j < end; ++j) {
      if (IsIdent(j)) tainted_.erase(Tok(j).text);
    }
  }

  void FlagTaintedInSpan(size_t begin, size_t end, const std::string& context) {
    for (size_t j = begin; j < end && j < N(); ++j) {
      if (!IsIdent(j)) continue;
      if (tainted_.count(Tok(j).text) == 0) continue;
      Report(j, "read-bounds",
             "peer-derived count '" + Tok(j).text + "' reaches " + context +
                 " without a bound check; use BinaryReader::ReadCount or "
                 "guard it with an explicit comparison first");
    }
  }

  void CheckReadBounds() {
    tainted_.clear();
    int depth = 0;
    for (size_t i = 0; i < N(); ++i) {
      if (P(i, "{")) ++depth;
      if (P(i, "}")) {
        --depth;
        for (auto it = tainted_.begin(); it != tainted_.end();) {
          it = it->second > depth ? tainted_.erase(it) : std::next(it);
        }
      }
      if (IsIdent(i) && P(i + 1, "(")) {
        const std::string& name = Tok(i).text;
        if (IsTaintingRead(name) && P(i + 2, "&") && IsIdent(i + 3)) {
          tainted_[Tok(i + 3).text] = depth;
        } else if (name == "ReadCount" && P(i + 2, "&") && IsIdent(i + 3)) {
          tainted_.erase(Tok(i + 3).text);  // ReadCount output is bounded.
        } else if ((name == "if" || name == "PSI_CHECK" ||
                    name == "PSI_DCHECK") &&
                   Match(i + 1) != kNone) {
          UntaintComparedNames(i + 2, Match(i + 1));
        } else if (name == "for" && Match(i + 1) != kNone) {
          // Loop bound = the segment between the first two top-level `;`.
          const size_t close = Match(i + 1);
          size_t semi1 = kNone, semi2 = kNone;
          int d = 0;
          for (size_t j = i + 2; j < close; ++j) {
            const std::string& t = Tok(j).text;
            if (Tok(j).kind != TokKind::kPunct) continue;
            if (t == "(" || t == "[" || t == "{") ++d;
            if (t == ")" || t == "]" || t == "}") --d;
            if (t == ";" && d == 0) {
              if (semi1 == kNone) semi1 = j;
              else { semi2 = j; break; }
            }
          }
          if (semi1 != kNone && semi2 != kNone) {
            FlagTaintedInSpan(semi1 + 1, semi2, "a loop bound");
          }
        } else if (name == "while" && Match(i + 1) != kNone) {
          FlagTaintedInSpan(i + 2, Match(i + 1), "a loop bound");
        }
      }
      if ((P(i, ".") || P(i, "->")) && IsIdent(i + 1) && P(i + 2, "(") &&
          Match(i + 2) != kNone) {
        const std::string& m = Tok(i + 1).text;
        if (m == "resize" || m == "reserve" || m == "assign") {
          FlagTaintedInSpan(i + 3, Match(i + 2), "." + m + "()");
        }
      }
      // Reassignment from something other than a reader kills the taint.
      if (IsIdent(i) && tainted_.count(Tok(i).text) != 0 && P(i + 1, "=")) {
        tainted_.erase(Tok(i).text);
      }
    }
  }

  // -- check 4: nodiscard-status --------------------------------------------

  struct StatusDecl {
    size_t name_idx;
    bool has_nodiscard;
    bool is_static;
  };

  /// Scans for Status / Result<T> function declarations; the shared engine
  /// behind both the declaration check and CollectStatusFunctions.
  template <typename Callback>
  void ScanStatusDecls(Callback cb) const {
    for (size_t i = 0; i < N(); ++i) {
      if (!Id(i, "Status") && !Id(i, "Result")) continue;
      if (P(i + 1, "::")) continue;  // Status::OK() etc.
      size_t j = i + 1;
      if (Id(i, "Result")) {
        if (!P(j, "<")) continue;
        j = SkipAngles(j);
        if (j == kNone) continue;
      }
      if (!IsIdent(j)) continue;
      size_t name_idx = j;
      while (P(j + 1, "::") && IsIdent(j + 2)) {
        j += 2;
        name_idx = j;
      }
      if (!P(j + 1, "(")) continue;
      const size_t open = j + 1;
      const size_t close = Match(open);
      if (close == kNone) continue;
      // After the parameter list a function declaration continues with one
      // of a small set of tokens; anything else is an expression or a
      // variable with constructor arguments.
      bool looks_like_function = false;
      if (P(close + 1, ";") || P(close + 1, "{") || Id(close + 1, "const") ||
          Id(close + 1, "noexcept") || Id(close + 1, "override") ||
          Id(close + 1, "final")) {
        looks_like_function = true;
      } else if (P(close + 1, "=") &&
                 (Id(close + 2, "default") || Id(close + 2, "delete") ||
                  (close + 2 < N() && Tok(close + 2).text == "0"))) {
        looks_like_function = true;
      }
      if (!looks_like_function) continue;
      // Walk backwards over specifiers/attributes to the declaration
      // context.
      bool decl = false, has_attr = false, is_static = false;
      size_t k = i;
      while (k > 0) {
        const Token& p = Tok(k - 1);
        if (p.kind == TokKind::kIdent &&
            (p.text == "static" || p.text == "virtual" ||
             p.text == "inline" || p.text == "constexpr" ||
             p.text == "explicit" || p.text == "friend")) {
          if (p.text == "static") is_static = true;
          --k;
          continue;
        }
        if (p.kind == TokKind::kPunct && p.text == "]" && k >= 2 &&
            P(k - 2, "]")) {
          const size_t attr_open = Match(k - 1);
          if (attr_open == kNone) break;
          for (size_t a = attr_open; a < k; ++a) {
            if (IsIdent(a) && (Tok(a).text == "nodiscard" ||
                               Tok(a).text == "warn_unused_result")) {
              has_attr = true;
            }
          }
          k = attr_open;
          continue;
        }
        if ((p.kind == TokKind::kPunct &&
             (p.text == ";" || p.text == "{" || p.text == "}" ||
              p.text == ":" || p.text == ">")) ||
            (p.kind == TokKind::kIdent &&
             (p.text == "public" || p.text == "private" ||
              p.text == "protected"))) {
          decl = true;
        }
        break;
      }
      if (k == 0) decl = true;
      if (!decl) continue;
      cb(StatusDecl{name_idx, has_attr, is_static});
    }
  }

  bool InAnonNamespace(size_t i) const {
    for (const auto& [begin, end] : AnonSpans()) {
      if (i > begin && i < end) return true;
    }
    return false;
  }

  const std::vector<std::pair<size_t, size_t>>& AnonSpans() const {
    if (!anon_spans_built_) {
      for (size_t i = 0; i + 1 < N(); ++i) {
        if (Id(i, "namespace") && P(i + 1, "{") && Match(i + 1) != kNone) {
          anon_spans_.push_back({i + 1, Match(i + 1)});
        }
      }
      anon_spans_built_ = true;
    }
    return anon_spans_;
  }

  void CheckNodiscardDecls() {
    const bool is_header = EndsWith(f_.path, ".h") || EndsWith(f_.path, ".hpp");
    ScanStatusDecls([&](const StatusDecl& d) {
      if (d.has_nodiscard) return;
      // Out-of-line definitions in a .cc inherit the attribute from their
      // header declaration; only header declarations and file-local
      // functions (static or anonymous-namespace) are required to carry it.
      if (!is_header && !d.is_static && !InAnonNamespace(d.name_idx)) return;
      Report(d.name_idx, "nodiscard-status",
             "function '" + Tok(d.name_idx).text +
                 "' returns Status/Result but is not [[nodiscard]]");
    });
  }

  void CheckDiscardedCalls() {
    if (known_status_.empty()) return;
    for (size_t i = 0; i < N(); ++i) {
      if (!IsIdent(i)) continue;
      // Statement-initial identifiers only.
      if (i > 0) {
        const Token& p = Tok(i - 1);
        const bool stmt_start =
            (p.kind == TokKind::kPunct &&
             (p.text == ";" || p.text == "{" || p.text == "}" ||
              p.text == ")")) ||
            (p.kind == TokKind::kIdent && (p.text == "else" || p.text == "do"));
        if (!stmt_start) continue;
      }
      // Walk the call chain: a, a::b, a.b, a->b ... callee is the last
      // identifier before the argument list.
      size_t j = i;
      std::string callee;
      while (j < N()) {
        if (P(j + 1, "(")) {
          callee = Tok(j).text;
          break;
        }
        if ((P(j + 1, "::") || P(j + 1, ".") || P(j + 1, "->")) &&
            IsIdent(j + 2)) {
          j += 2;
          continue;
        }
        break;
      }
      if (callee.empty() || known_status_.count(callee) == 0) continue;
      const size_t open = j + 1;
      const size_t close = Match(open);
      if (close == kNone || !P(close + 1, ";")) continue;
      Report(i, "nodiscard-status",
             "call to '" + callee +
                 "' discards its Status/Result; assign it, wrap it in "
                 "PSI_RETURN_NOT_OK/PSI_CHECK_OK, or cast to void");
    }
  }

  const LexedFile& f_;
  std::set<std::string> known_status_;
  std::map<std::string, int> tainted_;  // name -> brace depth of the taint.
  mutable std::vector<std::pair<size_t, size_t>> anon_spans_;
  mutable bool anon_spans_built_ = false;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<std::string> CollectSecretNames(const LexedFile& file) {
  std::vector<std::string> names;
  const auto& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "PSI_SECRET") {
      continue;
    }
    std::string last_ident;
    int angle_depth = 0;
    for (size_t j = i + 1; j < toks.size() && j < i + 128; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") { ++angle_depth; continue; }
        if (t.text == ">") { if (angle_depth > 0) --angle_depth; continue; }
        if (t.text == ">>") { angle_depth = std::max(0, angle_depth - 2); continue; }
        if (angle_depth > 0) continue;  // Inside template args.
        if (t.text == "," ) {
          if (!last_ident.empty()) names.push_back(last_ident);
          last_ident.clear();
          continue;
        }
        if (t.text == ";" || t.text == ")" || t.text == "{" || t.text == "=") {
          break;
        }
        continue;
      }
      if (t.kind == TokKind::kIdent && angle_depth == 0) last_ident = t.text;
    }
    if (!last_ident.empty()) names.push_back(last_ident);
  }
  return names;
}

std::vector<std::string> CollectStatusFunctions(const LexedFile& file) {
  return CheckRunner(file, {}).StatusFunctionNames();
}

std::vector<std::string> CollectVoidFunctions(const LexedFile& file) {
  std::vector<std::string> names;
  const auto& toks = file.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "void") continue;
    // `void Name(` or `void Class::Name(`; returning-a-pointer `void*` and
    // parameter positions (`(void)` casts, `void` params) never match the
    // ident-then-paren shape.
    size_t j = i + 1;
    if (toks[j].kind != TokKind::kIdent) continue;
    while (j + 2 < toks.size() && toks[j + 1].kind == TokKind::kPunct &&
           toks[j + 1].text == "::" && toks[j + 2].kind == TokKind::kIdent) {
      j += 2;
    }
    if (j + 1 < toks.size() && toks[j + 1].kind == TokKind::kPunct &&
        toks[j + 1].text == "(") {
      names.push_back(toks[j].text);
    }
  }
  return names;
}

std::vector<Finding> RunChecks(const LexedFile& file,
                               const std::vector<std::string>& extra_secrets,
                               const ProjectContext& project) {
  std::vector<std::string> secrets = CollectSecretNames(file);
  secrets.insert(secrets.end(), extra_secrets.begin(), extra_secrets.end());

  std::vector<Finding> findings = CheckRunner(file, project.status_functions).Run();
  TaintAnalysis taint = AnalyzeTaint(file, secrets, project.sanitizers,
                                     project.tainted_functions);
  findings.insert(findings.end(), taint.findings.begin(),
                  taint.findings.end());
  std::vector<Finding> schedule = RunScheduleCheck(file);
  findings.insert(findings.end(), schedule.begin(), schedule.end());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.check, a.message) <
                     std::tie(b.line, b.check, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line && a.check == b.check &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace internal
}  // namespace psi_lint
