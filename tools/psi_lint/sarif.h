// SARIF 2.1.0 emitter: psi_lint findings as a static-analysis report GitHub
// code scanning can ingest (`--sarif FILE` on the CLI; the CI lint job
// uploads it so findings surface as PR annotations).

#ifndef PSI_TOOLS_PSI_LINT_SARIF_H_
#define PSI_TOOLS_PSI_LINT_SARIF_H_

#include <string>

#include "lint.h"

namespace psi_lint {

/// Serializes `result` as a SARIF 2.1.0 document: one run, one driver
/// ("psi_lint"), one rule per check (including bad-suppression and
/// io-error), one result per finding with a physical location. Paths are
/// emitted as given (the CLI passes repo-relative paths in CI).
std::string ToSarif(const LintResult& result);

}  // namespace psi_lint

#endif  // PSI_TOOLS_PSI_LINT_SARIF_H_
