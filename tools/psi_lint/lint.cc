#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "symbols.h"
#include "taint.h"

namespace psi_lint {
namespace {

const char* const kChecks[] = {"secret-flow", "rng-order", "read-bounds",
                               "nodiscard-status", "channel-schedule"};

struct Suppression {
  int line = 0;
  std::string check;
};

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses the suppressions in one file's comments. Valid:
///   psi-lint: allow(check-name) non-empty justification
/// Anything that mentions psi-lint but does not match produces a
/// bad-suppression finding (never suppressible).
void ParseSuppressions(const LexedFile& file,
                       std::vector<Suppression>* suppressions,
                       std::vector<Finding>* findings) {
  for (const Comment& c : file.comments) {
    const size_t tag = c.text.find("psi-lint:");
    if (tag == std::string::npos) continue;
    // Comments that merely QUOTE the grammar are not directives: doc
    // comments (`///` / `/** ...` — the stripped text starts with another
    // delimiter character) and backtick-quoted mentions like
    // "a comment `psi-lint: allow(...)`".
    if (!c.text.empty() && (c.text[0] == '/' || c.text[0] == '*')) continue;
    if (c.text.find('`') != std::string::npos &&
        c.text.find('`') < tag) {
      continue;
    }
    std::string rest = Trim(c.text.substr(tag + 9));
    const std::string kAllow = "allow(";
    if (rest.compare(0, kAllow.size(), kAllow) != 0) {
      findings->push_back({file.path, c.line, "bad-suppression",
                           "unrecognized psi-lint directive (expected "
                           "'psi-lint: allow(<check>) <justification>')"});
      continue;
    }
    const size_t close = rest.find(')');
    if (close == std::string::npos) {
      findings->push_back({file.path, c.line, "bad-suppression",
                           "unterminated allow(...) directive"});
      continue;
    }
    const std::string check = Trim(rest.substr(kAllow.size(), close - kAllow.size()));
    const std::string justification = Trim(rest.substr(close + 1));
    if (!IsKnownCheck(check)) {
      findings->push_back({file.path, c.line, "bad-suppression",
                           "allow() names unknown check '" + check + "'"});
      continue;
    }
    if (justification.empty()) {
      findings->push_back(
          {file.path, c.line, "bad-suppression",
           "allow(" + check +
               ") requires a justification after the closing parenthesis"});
      continue;
    }
    suppressions->push_back({c.line, check});
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// "foo/bar.cc" -> "foo/bar"; used to pair a .cc with its header so that
/// PSI_SECRET annotations on fields in bar.h taint uses inside bar.cc.
std::string Stem(const std::string& path) {
  const size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

bool IsSourceExtension(const std::string& path) {
  return path.size() >= 2 &&
         (path.rfind(".h") == path.size() - 2 ||
          (path.size() >= 3 && path.rfind(".cc") == path.size() - 3) ||
          (path.size() >= 4 && (path.rfind(".hpp") == path.size() - 4 ||
                                path.rfind(".cpp") == path.size() - 4)));
}

}  // namespace

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": " + check + ": " + message;
}

bool IsKnownCheck(const std::string& name) {
  for (const char* c : kChecks) {
    if (name == c) return true;
  }
  return false;
}

LintResult LintSources(const std::vector<SourceBuffer>& sources,
                       const LintOptions& options) {
  LintResult result;
  std::vector<LexedFile> lexed;
  lexed.reserve(sources.size());
  for (const SourceBuffer& s : sources) {
    lexed.push_back(Lex(s.path, s.content));
  }
  result.files_scanned = lexed.size();

  // Project-wide tables: Status-returning function names, PSI_SANITIZES
  // declassifier names, and per-stem secret annotations.
  std::set<std::string> status_functions;
  std::set<std::string> void_functions;
  std::set<std::string> sanitizer_set;
  std::map<std::string, std::vector<std::string>> header_secrets;
  for (const LexedFile& f : lexed) {
    for (std::string& n : internal::CollectStatusFunctions(f)) {
      status_functions.insert(std::move(n));
    }
    for (std::string& n : internal::CollectVoidFunctions(f)) {
      void_functions.insert(std::move(n));
    }
    for (std::string& n : internal::CollectSanitizerNames(f)) {
      sanitizer_set.insert(std::move(n));
    }
    const bool is_header = f.path.size() >= 2 &&
                           (f.path.rfind(".h") == f.path.size() - 2 ||
                            (f.path.size() >= 4 &&
                             f.path.rfind(".hpp") == f.path.size() - 4));
    if (is_header) {
      std::vector<std::string> secrets = internal::CollectSecretNames(f);
      if (!secrets.empty()) header_secrets[Stem(f.path)] = std::move(secrets);
    }
  }

  internal::ProjectContext project;
  for (const std::string& n : void_functions) status_functions.erase(n);
  project.status_functions.assign(status_functions.begin(),
                                  status_functions.end());
  project.sanitizers.assign(sanitizer_set.begin(), sanitizer_set.end());

  // Effective per-file secret list (own annotations + paired header's).
  auto extra_secrets_for = [&](const LexedFile& f) {
    std::vector<std::string> extra;
    const auto it = header_secrets.find(Stem(f.path));
    if (it != header_secrets.end() && Stem(f.path) + ".h" != f.path &&
        Stem(f.path) + ".hpp" != f.path) {
      extra = it->second;
    }
    return extra;
  };

  // Summary-taint fixpoint: a function whose return value derives from a
  // secret is itself a taint source at its call sites — including call
  // sites in other files. Matching is by name, so a name only enters the
  // cross-file table when EVERY definition of it in the batch is tainted:
  // one secret-derived Run() among dozens of clean ones must not taint
  // every .Run() call in the project. Iterate until the admitted set stops
  // growing; it only grows, so this terminates (two or three rounds in
  // practice).
  std::map<std::string, size_t> def_count;
  bool have_defs = false;
  std::set<std::string> admitted;
  for (int round = 0; round < 8; ++round) {
    project.tainted_functions.assign(admitted.begin(), admitted.end());
    std::map<std::string, size_t> tainted_count;
    for (size_t fi = 0; fi < lexed.size(); ++fi) {
      const LexedFile& f = lexed[fi];
      std::vector<std::string> secrets = internal::CollectSecretNames(f);
      std::vector<std::string> extra = extra_secrets_for(f);
      secrets.insert(secrets.end(), extra.begin(), extra.end());
      internal::TaintAnalysis ta = internal::AnalyzeTaint(
          f, secrets, project.sanitizers, project.tainted_functions);
      if (!have_defs) {
        for (const std::string& n : ta.defined_functions) ++def_count[n];
      }
      for (const std::string& n : ta.tainted_functions) {
        ++tainted_count[n];
      }
    }
    have_defs = true;
    const size_t before = admitted.size();
    for (const auto& [name, count] : tainted_count) {
      if (count >= def_count[name]) admitted.insert(name);
    }
    if (admitted.size() == before) break;
  }
  project.tainted_functions.assign(admitted.begin(), admitted.end());

  const std::set<std::string> only(options.only_checks.begin(),
                                   options.only_checks.end());
  for (const LexedFile& f : lexed) {
    std::vector<Finding> findings =
        internal::RunChecks(f, extra_secrets_for(f), project);

    std::vector<Suppression> suppressions;
    ParseSuppressions(f, &suppressions, &result.findings);

    for (Finding& finding : findings) {
      if (!only.empty() && only.count(finding.check) == 0) continue;
      const bool suppressed =
          std::any_of(suppressions.begin(), suppressions.end(),
                      [&](const Suppression& s) {
                        return s.check == finding.check &&
                               (s.line == finding.line ||
                                s.line + 1 == finding.line);
                      });
      if (suppressed) {
        ++result.suppressed;
      } else {
        result.findings.push_back(std::move(finding));
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
  return result;
}

LintResult LintPaths(const std::vector<std::string>& paths,
                     const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::vector<Finding> io_errors;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && IsSourceExtension(it->path().string())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      io_errors.push_back({p, 0, "io-error", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceBuffer> sources;
  sources.reserve(files.size());
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      io_errors.push_back({f, 0, "io-error", "cannot open file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    sources.push_back({f, ss.str()});
  }

  LintResult result = LintSources(sources, options);
  result.findings.insert(result.findings.end(), io_errors.begin(),
                         io_errors.end());
  return result;
}

std::string ToJson(const LintResult& result) {
  std::ostringstream out;
  out << "{\"findings\":[";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    if (i > 0) out << ",";
    out << "{\"file\":\"" << JsonEscape(f.file) << "\",\"line\":" << f.line
        << ",\"check\":\"" << JsonEscape(f.check) << "\",\"message\":\""
        << JsonEscape(f.message) << "\"}";
  }
  out << "],\"files_scanned\":" << result.files_scanned
      << ",\"suppressed\":" << result.suppressed << "}";
  return out.str();
}

}  // namespace psi_lint
