#include "schedule.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "symbols.h"

namespace psi_lint {
namespace internal {
namespace {

constexpr size_t kNone = LexedFile::kNoMatch;

struct Stage {
  std::string name;       // Literal text without quotes ("" if not literal).
  bool literal = false;   // First AddStage argument is a string literal.
  int line = 0;
  size_t call_idx = 0;    // Token index of the AddStage identifier.
  size_t body_open = kNone;
  size_t body_close = kNone;
};

struct ChannelEvent {
  bool is_send = false;
  int line = 0;
  size_t idx = 0;  // Token index of the SendFramed/RecvValidated identifier.
  // Normalized argument spellings: sends are (from, to, pid, step), recvs
  // are (to, from, pid, step) — Network::RecvValidated names the receiver
  // first.
  std::string a1, a2, pid, step;
  bool matched = false;
};

/// "#" is the wildcard a bare identifier normalizes to.
bool FieldMatch(const std::string& a, const std::string& b) {
  return a == "#" || b == "#" || a == b;
}

class ScheduleChecker {
 public:
  explicit ScheduleChecker(const LexedFile& file) : v_(file) {}

  std::vector<Finding> Run() {
    functions_ = CollectFunctions(v_.file());
    CollectStages();
    CheckStageRegistration();
    CollectEvents();
    CheckPairing();
    return std::move(findings_);
  }

 private:
  void Report(size_t tok_idx, const std::string& message) {
    findings_.push_back({v_.file().path, v_.Tok(tok_idx).line,
                         "channel-schedule", message});
  }

  bool IsMethodCall(size_t i) const {
    return i > 0 && (v_.P(i - 1, ".") || v_.P(i - 1, "->")) &&
           v_.P(i + 1, "(") && v_.Match(i + 1) != kNone;
  }

  // -- stage collection -----------------------------------------------------

  void CollectStages() {
    for (size_t i = 0; i < v_.N(); ++i) {
      if (!v_.Id(i, "AddStage") || !IsMethodCall(i)) continue;
      const size_t open = i + 1;
      const size_t close = v_.Match(open);
      Stage st;
      st.call_idx = i;
      st.line = v_.Tok(i).line;
      if (open + 1 < close && v_.Tok(open + 1).kind == TokKind::kString) {
        st.literal = true;
        const std::string& lit = v_.Tok(open + 1).text;
        if (lit.size() >= 2) st.name = lit.substr(1, lit.size() - 2);
      }
      // The stage body is the first lambda inside the argument list.
      for (const FunctionInfo& fn : functions_) {
        if (!fn.is_lambda) continue;
        if (fn.body_open > open && fn.body_open < close) {
          st.body_open = fn.body_open;
          st.body_close = fn.body_close;
          break;
        }
      }
      stages_.push_back(st);
    }
  }

  void CheckStageRegistration() {
    // Names must be non-empty string literals, unique per registering
    // function: SessionOrchestrator checkpoints and the resume handshake
    // address stages by name.
    std::map<size_t, std::set<std::string>> seen_per_fn;
    for (const Stage& st : stages_) {
      if (!st.literal || st.name.empty()) {
        Report(st.call_idx,
               "AddStage name must be a non-empty string literal; "
               "checkpoint/resume addresses stages by name, so names must "
               "be stable across runs");
        continue;
      }
      const size_t fn = InnermostFunction(functions_, st.call_idx);
      if (!seen_per_fn[fn].insert(st.name).second) {
        Report(st.call_idx,
               "stage name '" + st.name +
                   "' is registered twice in this function; "
                   "checkpoint/resume addresses stages by name, which must "
                   "be unique within a session");
      }
    }
  }

  // -- event collection -----------------------------------------------------

  /// kConstant-style names (kStepOmega, kSessionStepResumeSync) are
  /// compile-time tags: keep them concrete so a step/id mismatch inside one
  /// scope is caught. Runtime-varying names (host_, players, from) stay
  /// wildcards.
  static bool IsTagConstant(const std::string& name) {
    return name.size() >= 2 && name[0] == 'k' && name[1] >= 'A' &&
           name[1] <= 'Z';
  }

  /// Normalizes one argument span [begin, end): a bare identifier becomes
  /// the wildcard "#" (unless it is a kConstant tag), a single-identifier
  /// subscript index becomes "[ # ]", everything else joins verbatim.
  std::string NormalizeArg(size_t begin, size_t end) const {
    if (end == begin + 1 && v_.IsIdent(begin)) {
      const std::string& name = v_.Tok(begin).text;
      return IsTagConstant(name) ? name : "#";
    }
    std::string out;
    for (size_t j = begin; j < end; ++j) {
      std::string text = v_.Tok(j).text;
      if (v_.IsIdent(j) && j > begin && j + 1 < end && v_.P(j - 1, "[") &&
          v_.P(j + 1, "]")) {
        text = "#";
      }
      if (!out.empty()) out += ' ';
      out += text;
    }
    return out;
  }

  void CollectEvents() {
    for (size_t i = 0; i < v_.N(); ++i) {
      const bool is_send = v_.Id(i, "SendFramed");
      const bool is_recv = v_.Id(i, "RecvValidated");
      if ((!is_send && !is_recv) || !IsMethodCall(i)) continue;
      const size_t open = i + 1;
      const size_t close = v_.Match(open);
      // Split the first four top-level arguments.
      std::vector<std::string> args;
      size_t arg_begin = open + 1;
      int depth = 0;
      for (size_t j = open + 1; j <= close && args.size() < 4; ++j) {
        const Token& t = v_.Tok(j);
        const bool top_comma =
            j == close ||
            (t.kind == TokKind::kPunct && t.text == "," && depth == 0);
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        }
        if (top_comma && j > arg_begin) {
          args.push_back(NormalizeArg(arg_begin, j));
          arg_begin = j + 1;
        }
      }
      if (args.size() < 4) continue;  // Not the framed-channel signature.
      ChannelEvent ev;
      ev.is_send = is_send;
      ev.line = v_.Tok(i).line;
      ev.idx = i;
      ev.a1 = args[0];
      ev.a2 = args[1];
      ev.pid = args[2];
      ev.step = args[3];
      events_.push_back(ev);
    }
  }

  // -- pairing --------------------------------------------------------------

  struct Scope {
    std::string describe;
    bool is_stage = false;
    size_t stage_idx = 0;
    std::vector<size_t> event_indices;  // Into events_, in token order.
  };

  /// Innermost stage body containing token `i`, or stages_.size().
  size_t InnermostStage(size_t i) const {
    size_t best = stages_.size();
    size_t best_width = static_cast<size_t>(-1);
    for (size_t k = 0; k < stages_.size(); ++k) {
      const Stage& st = stages_[k];
      if (st.body_open == kNone) continue;
      if (i <= st.body_open || i >= st.body_close) continue;
      const size_t width = st.body_close - st.body_open;
      if (width < best_width) {
        best = k;
        best_width = width;
      }
    }
    return best;
  }

  void CheckPairing() {
    // Group events by innermost stage body, else innermost function body,
    // else file scope.
    std::map<std::pair<int, size_t>, Scope> scopes;
    for (size_t e = 0; e < events_.size(); ++e) {
      const size_t i = events_[e].idx;
      const size_t st = InnermostStage(i);
      if (st != stages_.size()) {
        Scope& s = scopes[{0, st}];
        s.is_stage = true;
        s.stage_idx = st;
        s.describe = "stage '" + stages_[st].name + "'";
        s.event_indices.push_back(e);
        continue;
      }
      const size_t fn = InnermostFunction(functions_, i);
      if (fn != functions_.size()) {
        Scope& s = scopes[{1, fn}];
        const std::string& name = functions_[fn].name;
        s.describe = name.empty() ? "this lambda" : "function '" + name + "'";
        s.event_indices.push_back(e);
        continue;
      }
      Scope& s = scopes[{2, 0}];
      s.describe = "this file";
      s.event_indices.push_back(e);
    }

    for (auto& [key, scope] : scopes) {
      // One-sided helper functions pair with a peer elsewhere; only stage
      // bodies and mixed send/recv scopes are held to structural pairing.
      bool has_send = false, has_recv = false;
      for (size_t e : scope.event_indices) {
        (events_[e].is_send ? has_send : has_recv) = true;
      }
      if (!scope.is_stage && !(has_send && has_recv)) continue;

      std::vector<size_t> outstanding;  // Unmatched sends, in order.
      std::set<std::string> stage_pids;
      for (size_t e : scope.event_indices) {
        ChannelEvent& ev = events_[e];
        if (ev.pid != "#") stage_pids.insert(ev.pid);
        if (ev.is_send) {
          outstanding.push_back(e);
          continue;
        }
        // recv(to, from, ...) consumes the earliest send(from, to, ...)
        // with the party pair flipped and the same protocol id and step.
        bool found = false;
        for (size_t k = 0; k < outstanding.size(); ++k) {
          const ChannelEvent& send = events_[outstanding[k]];
          if (FieldMatch(send.a1, ev.a2) && FieldMatch(send.a2, ev.a1) &&
              FieldMatch(send.pid, ev.pid) && FieldMatch(send.step, ev.step)) {
            outstanding.erase(outstanding.begin() +
                              static_cast<std::ptrdiff_t>(k));
            found = true;
            break;
          }
        }
        if (!found) {
          Report(ev.idx,
                 "RecvValidated(" + ev.a1 + " <- " + ev.a2 + ", " + ev.pid +
                     ", step " + ev.step +
                     ") has no preceding SendFramed with the flipped party "
                     "pair in " + scope.describe +
                     "; the receiving party blocks forever (deadlock) — "
                     "send before receiving within a stage");
        }
      }
      for (size_t e : outstanding) {
        const ChannelEvent& send = events_[e];
        Report(send.idx,
               "SendFramed(" + send.a1 + " -> " + send.a2 + ", " + send.pid +
                   ", step " + send.step +
                   ") has no matching RecvValidated with the flipped party "
                   "pair in " + scope.describe +
                   "; the frame is never consumed and the channel "
                   "desynchronizes on the next round");
      }
      if (scope.is_stage && stage_pids.size() > 1) {
        std::string ids;
        for (const std::string& p : stage_pids) {
          if (!ids.empty()) ids += " vs ";
          ids += p;
        }
        Report(stages_[scope.stage_idx].call_idx,
               "stage '" + stages_[scope.stage_idx].name +
                   "' mixes protocol ids (" + ids +
                   "); a checkpointed stage replays as one protocol round "
                   "and must stay on a single ProtocolId");
      }
    }
  }

  TokenView v_;
  std::vector<FunctionInfo> functions_;
  std::vector<Stage> stages_;
  std::vector<ChannelEvent> events_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> RunScheduleCheck(const LexedFile& file) {
  return ScheduleChecker(file).Run();
}

}  // namespace internal
}  // namespace psi_lint
