// psi_lint CLI.
//
//   psi_lint [--json FILE] [--sarif FILE] [--check NAME]... <file-or-dir>...
//
// Prints findings as "file:line: check: message" and exits 1 when any
// finding survives suppression, 0 when clean, 2 on usage or I/O errors.
// docs/STATIC_ANALYSIS.md documents the checks and the suppression syntax.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"
#include "sarif.h"

namespace {

int Usage() {
  std::cerr
      << "usage: psi_lint [--json FILE] [--sarif FILE] [--check NAME]... "
         "<file-or-dir>...\n"
         "checks: secret-flow rng-order read-bounds nodiscard-status "
         "channel-schedule\n"
         "suppress: // psi-lint: allow(<check>) <justification>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string sarif_path;
  psi_lint::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) return Usage();
      json_path = argv[i];
    } else if (arg == "--sarif") {
      if (++i >= argc) return Usage();
      sarif_path = argv[i];
    } else if (arg == "--check") {
      if (++i >= argc) return Usage();
      if (!psi_lint::IsKnownCheck(argv[i])) {
        std::cerr << "psi_lint: unknown check '" << argv[i] << "'\n";
        return Usage();
      }
      options.only_checks.push_back(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "psi_lint: unknown flag '" << arg << "'\n";
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  const psi_lint::LintResult result = psi_lint::LintPaths(paths, options);

  bool io_error = false;
  for (const psi_lint::Finding& f : result.findings) {
    std::cout << f.ToString() << "\n";
    if (f.check == "io-error") io_error = true;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "psi_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << psi_lint::ToJson(result) << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "psi_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << psi_lint::ToSarif(result) << "\n";
  }
  std::cerr << "psi_lint: " << result.files_scanned << " file(s), "
            << result.findings.size() << " finding(s), " << result.suppressed
            << " suppressed\n";
  if (io_error) return 2;
  return result.findings.empty() ? 0 : 1;
}
