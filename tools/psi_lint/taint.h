// Flow-sensitive secret-taint engine behind the secret-flow check.
//
// The token-level check in PR 4 saw only direct uses of PSI_SECRET names at
// a sink. This engine propagates taint in lexical order through the file:
//
//   * assignments and initializations (`auto m = key_;`, `x += secret;`,
//     `PSI_ASSIGN_OR_RETURN(lhs, TaintedCall())`) taint the left-hand name;
//     a plain re-assignment from a clean right-hand side kills the taint,
//   * per-function summaries: a function (or named local lambda) whose
//     `return` expression derives from a secret is itself a taint source at
//     every call site, project-wide,
//   * laundering is explicit: only calls to functions declared with
//     PSI_SANITIZES (common/annotations.h) clear taint — the old
//     name-vocabulary ("anything containing 'mask' or 'hash'") is gone.
//
// Sinks are the four original ones (branch/ternary conditions, variable-time
// `%` and `/`, PSI_LOG, network sends) plus the constant-time sinks:
// secret-indexed subscripts, secret shift counts, and early-exit compares
// (`memcmp`/`strcmp` arguments, `==`/`!=` operands outside conditions).
//
// Known limits (documented in docs/STATIC_ANALYSIS.md): propagation is
// lexical, so taint does not follow loop back-edges; implicit flows
// (control-flow dependence) are not modeled; summaries are matched by name,
// not by receiver type.

#ifndef PSI_TOOLS_PSI_LINT_TAINT_H_
#define PSI_TOOLS_PSI_LINT_TAINT_H_

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace psi_lint {
namespace internal {

struct TaintAnalysis {
  std::vector<Finding> findings;
  /// One entry per function definition in this file whose return value
  /// derives from a secret (summary taint). Input for the project-wide
  /// fixpoint.
  std::vector<std::string> tainted_functions;
  /// One entry per named function definition in this file, tainted or not.
  /// LintSources admits a name into the cross-file summary table only when
  /// every definition of that name in the batch is tainted — a common
  /// method name like Run() with one secret-derived overload among dozens
  /// of clean ones would otherwise taint every call site in the project.
  std::vector<std::string> defined_functions;
};

/// Runs the taint engine over one file. `secrets` are the PSI_SECRET names
/// visible to the file (own + paired header), `sanitizers` the project-wide
/// PSI_SANITIZES function names, `tainted_functions` the current summary
/// table (call AnalyzeTaint repeatedly until the returned set stops
/// growing — LintSources does this).
TaintAnalysis AnalyzeTaint(const LexedFile& file,
                           const std::vector<std::string>& secrets,
                           const std::vector<std::string>& sanitizers,
                           const std::vector<std::string>& tainted_functions);

}  // namespace internal
}  // namespace psi_lint

#endif  // PSI_TOOLS_PSI_LINT_TAINT_H_
