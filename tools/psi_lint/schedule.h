// channel-schedule check: structural send/recv pairing for MPC drivers.
//
// Every `SendFramed(from, to, ProtocolId, step, ...)` a driver issues must
// have a structurally reachable `RecvValidated(to, from, ProtocolId, step)`
// in the same stage (or function) — the SPMD drivers run every party in one
// body, so an unpaired send is a frame nobody consumes (the peers
// desynchronize) and a recv with no preceding send blocks forever (the
// simulator deadlocks; the socket backend times out every retry).
//
// Matching is lexical over normalized argument spellings: a bare identifier
// (a loop variable like `from`) is a wildcard `#`, a single-identifier
// subscript (`players_[k]`) normalizes its index to `players_[#]`, and
// anything else (literals, `host_`, `providers_[0]`) must match verbatim
// with the party pair flipped. Scopes come from `AddStage("name", [...])`
// bodies first, then enclosing functions; a function is only held to the
// pairing rule when it contains both sends and recvs (one-sided helpers
// pair with a peer in another function, which token analysis cannot see).
//
// Stage registration is checked too: `AddStage` names must be non-empty
// string literals, unique per registering function (checkpoint/resume in
// session.cc addresses stages by name), and a stage body must stay on a
// single ProtocolId (a checkpointed stage replays as one protocol round).

#ifndef PSI_TOOLS_PSI_LINT_SCHEDULE_H_
#define PSI_TOOLS_PSI_LINT_SCHEDULE_H_

#include <vector>

#include "lexer.h"
#include "lint.h"

namespace psi_lint {
namespace internal {

/// Runs the channel-schedule check over one file.
std::vector<Finding> RunScheduleCheck(const LexedFile& file);

}  // namespace internal
}  // namespace psi_lint

#endif  // PSI_TOOLS_PSI_LINT_SCHEDULE_H_
