#include "taint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "symbols.h"

namespace psi_lint {
namespace internal {
namespace {

constexpr size_t kNone = LexedFile::kNoMatch;

bool IsMemcmpName(const std::string& n) {
  return n == "memcmp" || n == "strcmp" || n == "strncmp" ||
         n == "strcasecmp" || n == "bcmp";
}

bool IsStreamName(const std::string& n) {
  return n == "cout" || n == "cerr" || n == "clog" || n == "cin";
}

bool IsCompoundAssign(const std::string& t) {
  return t == "+=" || t == "-=" || t == "*=" || t == "&=" || t == "|=" ||
         t == "^=" || t == "<<=" || t == ">>=" || t == "%=" || t == "/=";
}

/// Length/emptiness projections of a container of secrets are public: the
/// adversary model already concedes message counts and sizes.
bool IsProjectionName(const std::string& n) {
  return n == "size" || n == "empty" || n == "length" || n == "capacity" ||
         n == "ok" || n == "remaining";
}

enum class MsgKind {
  kVarTime,    // % and / operands.
  kEarlyExit,  // == and != operands.
  kShift,      // Shift counts.
};

class TaintEngine {
 public:
  TaintEngine(const LexedFile& file, const std::vector<std::string>& secrets,
              const std::vector<std::string>& sanitizers,
              const std::vector<std::string>& tainted_functions)
      : v_(file),
        secrets_(secrets.begin(), secrets.end()),
        sanitizers_(sanitizers.begin(), sanitizers.end()),
        tainted_fns_(tainted_functions.begin(), tainted_functions.end()) {}

  TaintAnalysis Run() {
    TaintAnalysis out;
    functions_ = CollectFunctions(v_.file());
    // Clean files still report their definitions: the cross-file summary
    // admits a name only when every definition of it is tainted, so the
    // denominator needs the clean ones too.
    for (const FunctionInfo& fn : functions_) {
      if (!fn.name.empty()) out.defined_functions.push_back(fn.name);
    }
    if (secrets_.empty() && tainted_fns_.empty()) return out;
    for (size_t idx : TemplateCloserIndices(v_.file())) {
      template_closers_.insert(idx);
    }
    BuildConditionSpans();
    Walk();
    out.findings = std::move(findings_);
    for (size_t idx : tainted_out_) {
      out.tainted_functions.push_back(functions_[idx].name);
    }
    return out;
  }

 private:
  void Report(size_t tok_idx, const std::string& message) {
    findings_.push_back(
        {v_.file().path, v_.Tok(tok_idx).line, "secret-flow", message});
  }

  // -- taint state ----------------------------------------------------------

  bool IsTaintedName(const std::string& name) const {
    return secrets_.count(name) != 0 || derived_.count(name) != 0;
  }

  /// Tainted identifier use at `j` — skips public projections
  /// (`masks.size()`).
  bool IsTaintedUse(size_t j) const {
    if (!v_.IsIdent(j) || !IsTaintedName(v_.Tok(j).text)) return false;
    if ((v_.P(j + 1, ".") || v_.P(j + 1, "->")) && v_.IsIdent(j + 2) &&
        IsProjectionName(v_.Tok(j + 2).text) && v_.P(j + 3, "(")) {
      return false;
    }
    return true;
  }

  /// Call to a summary-tainted function at `j`.
  bool IsTaintedCall(size_t j) const {
    return v_.IsIdent(j) && tainted_fns_.count(v_.Tok(j).text) != 0 &&
           v_.P(j + 1, "(");
  }

  void Taint(const std::string& name) { derived_[name] = depth_; }

  // -- enclosing-call scans -------------------------------------------------

  /// True when the use at `idx` sits inside a call to a PSI_SANITIZES
  /// function whose argument list opened at or after `span_begin`:
  /// Send(Encrypt(key, secret)).
  bool Laundered(size_t idx, size_t span_begin) const {
    return EnclosedInCall(idx, span_begin, [this](const std::string& n) {
      return sanitizers_.count(n) != 0;
    });
  }

  /// True when the use at `idx` sits inside a memcmp-family call; the
  /// memcmp sink owns the report, so span scans skip these uses.
  bool InsideMemcmp(size_t idx, size_t span_begin) const {
    return EnclosedInCall(idx, span_begin,
                          [](const std::string& n) { return IsMemcmpName(n); });
  }

  template <typename Pred>
  bool EnclosedInCall(size_t idx, size_t span_begin, Pred pred) const {
    for (size_t j = span_begin; j < idx; ++j) {
      if (!v_.P(j, "(")) continue;
      const size_t close = v_.Match(j);
      if (close == kNone || close <= idx) continue;
      if (j > 0 && v_.IsIdent(j - 1) && pred(v_.Tok(j - 1).text)) return true;
    }
    return false;
  }

  // -- span evaluation ------------------------------------------------------

  bool SpanHasTaint(size_t begin, size_t end, bool allow_sanitizers) const {
    for (size_t j = begin; j < end && j < v_.N(); ++j) {
      const bool hit = IsTaintedUse(j) || IsTaintedCall(j);
      if (!hit) continue;
      if (allow_sanitizers && Laundered(j, begin)) continue;
      return true;
    }
    return false;
  }

  void SpanSink(size_t begin, size_t end, const std::string& context,
                bool allow_sanitizers, bool skip_memcmp_args) {
    for (size_t j = begin; j < end && j < v_.N(); ++j) {
      const bool use = IsTaintedUse(j);
      const bool call = !use && IsTaintedCall(j);
      if (!use && !call) continue;
      if (allow_sanitizers && Laundered(j, begin)) continue;
      if (skip_memcmp_args && InsideMemcmp(j, begin)) continue;
      const std::string& name = v_.Tok(j).text;
      Report(j, (use ? "secret '" + name + "'"
                     : "value of secret-derived function '" + name + "'") +
                    " reaches " + context +
                    "; route it through a masking/encryption call first");
    }
  }

  // -- operand walks (ported from the token-level check) --------------------

  void ReportOperand(size_t j, size_t op, MsgKind kind) {
    const bool use = IsTaintedUse(j);
    const bool call = !use && IsTaintedCall(j);
    if (!use && !call) return;
    const std::string& name = v_.Tok(j).text;
    const std::string subject =
        use ? "secret '" + name + "'"
            : "value of secret-derived function '" + name + "'";
    switch (kind) {
      case MsgKind::kVarTime:
        Report(j, subject + " is an operand of variable-time '" +
                      v_.Tok(op).text +
                      "'; mask it or use constant-time arithmetic");
        break;
      case MsgKind::kEarlyExit:
        Report(j, subject + " is an operand of early-exit '" +
                      v_.Tok(op).text +
                      "'; use a constant-time comparison over the full width");
        break;
      case MsgKind::kShift:
        Report(j, subject +
                      " is a shift count; a secret-dependent shift amount is "
                      "variable-time — mask the count or use a fixed-width "
                      "ladder");
        break;
    }
  }

  void OperandSpan(size_t begin, size_t end, size_t op, MsgKind kind) {
    for (size_t j = begin; j < end; ++j) {
      if (!v_.IsIdent(j)) continue;
      if (Laundered(j, begin)) continue;
      if (kind == MsgKind::kEarlyExit && InsideMemcmp(j, begin)) continue;
      ReportOperand(j, op, kind);
    }
  }

  void LeftOperand(size_t op, MsgKind kind) {
    size_t j = op;
    while (j > 0) {
      --j;
      const Token& t = v_.Tok(j);
      if (t.kind == TokKind::kPunct && (t.text == ")" || t.text == "]")) {
        const size_t open = v_.Match(j);
        if (open == kNone) return;
        OperandSpan(open, j, op, kind);
        if (open == 0) return;
        j = open;
        continue;  // foo(...) / arr[...]: keep walking through the name.
      }
      if (t.kind == TokKind::kIdent) {
        ReportOperand(j, op, kind);
        if (j > 0 && v_.Tok(j - 1).kind == TokKind::kPunct &&
            (v_.Tok(j - 1).text == "." || v_.Tok(j - 1).text == "->" ||
             v_.Tok(j - 1).text == "::")) {
          --j;  // Walk a.b.c chains.
          continue;
        }
        return;
      }
      if (t.kind == TokKind::kNumber || t.kind == TokKind::kString) return;
      return;  // Hit an operator: left operand ends.
    }
  }

  void RightOperand(size_t op, MsgKind kind) {
    size_t j = op + 1;
    while (j < v_.N() && v_.Tok(j).kind == TokKind::kPunct &&
           (v_.Tok(j).text == "-" || v_.Tok(j).text == "+" ||
            v_.Tok(j).text == "!" || v_.Tok(j).text == "~" ||
            v_.Tok(j).text == "*" || v_.Tok(j).text == "&")) {
      ++j;  // Unary prefixes.
    }
    while (j < v_.N()) {
      const Token& t = v_.Tok(j);
      if (t.kind == TokKind::kPunct && (t.text == "(" || t.text == "[")) {
        const size_t close = v_.Match(j);
        if (close == kNone) return;
        OperandSpan(j, close, op, kind);
        j = close + 1;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        ReportOperand(j, op, kind);
        ++j;
        continue;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == "." || t.text == "->" || t.text == "::")) {
        ++j;
        continue;
      }
      return;  // Number, operator, `;`, ... — operand over.
    }
  }

  // -- assignments ----------------------------------------------------------

  /// The base name written by the assignment whose `=`/`op=` is at `eq`,
  /// plus whether it is a plain local write (`name = ...`) eligible for a
  /// taint kill. Member/subscript writes taint the base object instead.
  std::pair<std::string, bool> LhsTarget(size_t eq) const {
    size_t j = eq;
    bool simple = true;
    while (j > 0) {
      const Token& t = v_.Tok(j - 1);
      if (t.kind == TokKind::kIdent) {
        if (j >= 2 && v_.Tok(j - 2).kind == TokKind::kPunct &&
            (v_.Tok(j - 2).text == "." || v_.Tok(j - 2).text == "->" ||
             v_.Tok(j - 2).text == "::")) {
          simple = false;
          j -= 2;
          continue;
        }
        return {t.text, simple};
      }
      if (t.kind == TokKind::kPunct && t.text == "]") {
        const size_t open = v_.Match(j - 1);
        if (open == kNone || open == 0) return {"", false};
        simple = false;
        j = open;
        continue;
      }
      return {"", false};
    }
    return {"", false};
  }

  void HandleAssign(size_t eq, bool compound) {
    const auto [base, simple] = LhsTarget(eq);
    if (base.empty()) return;
    const size_t rhs_end = v_.StatementEnd(eq);
    if (SpanHasTaint(eq + 1, rhs_end, /*allow_sanitizers=*/true)) {
      Taint(base);
    } else if (simple && !compound) {
      derived_.erase(base);
    }
  }

  void HandleAssignOrReturn(size_t i) {
    const size_t open = i + 1;
    const size_t close = v_.Match(open);
    if (close == kNone) return;
    size_t comma = kNone;
    int depth = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const std::string& t = v_.Tok(j).text;
      if (v_.Tok(j).kind != TokKind::kPunct) continue;
      if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
      if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
      if (t == "," && depth <= 0) {
        comma = j;
        break;
      }
    }
    if (comma == kNone) return;
    // The first argument is an lvalue; walk it back like an assignment LHS
    // so `out[i]` taints the base `out`, not the index.
    const auto [lhs, simple] = LhsTarget(comma);
    if (lhs.empty()) return;
    if (SpanHasTaint(comma + 1, close, /*allow_sanitizers=*/true)) {
      Taint(lhs);
    } else if (simple) {
      derived_.erase(lhs);
    }
  }

  void HandleRangeFor(size_t i) {
    const size_t open = i + 1;
    const size_t close = v_.Match(open);
    if (close == kNone) return;
    size_t colon = kNone;
    int depth = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const Token& t = v_.Tok(j);
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (t.text == ":" && depth == 0) {
        colon = j;
        break;
      }
      if (t.text == ";") return;  // Classic three-clause for.
    }
    if (colon == kNone) return;
    std::string loop_var;
    for (size_t j = open + 1; j < colon; ++j) {
      if (v_.IsIdent(j)) loop_var = v_.Tok(j).text;
    }
    if (loop_var.empty()) return;
    if (SpanHasTaint(colon + 1, close, /*allow_sanitizers=*/true)) {
      Taint(loop_var);
    } else {
      derived_.erase(loop_var);
    }
  }

  // -- function summaries ---------------------------------------------------

  void HandleReturn(size_t i) {
    const size_t fn = InnermostFunction(functions_, i);
    if (fn == functions_.size()) return;
    const FunctionInfo& info = functions_[fn];
    if (info.name.empty()) return;          // Unnamed lambda: no call sites.
    if (sanitizers_.count(info.name) != 0) return;  // Declared declassifier.
    if (SpanHasTaint(i + 1, v_.StatementEnd(i), /*allow_sanitizers=*/true)) {
      tainted_out_.insert(fn);
    }
  }

  // -- condition spans (== / != sink exclusion zone) ------------------------

  void BuildConditionSpans() {
    for (size_t i = 0; i < v_.N(); ++i) {
      if ((v_.Id(i, "if") || v_.Id(i, "while")) && v_.P(i + 1, "(") &&
          v_.Match(i + 1) != kNone) {
        cond_spans_.push_back({i + 2, v_.Match(i + 1)});
      } else if (v_.P(i, "?")) {
        cond_spans_.push_back({v_.StatementStart(i), i});
      }
    }
  }

  bool InConditionSpan(size_t i) const {
    for (const auto& [begin, end] : cond_spans_) {
      if (i >= begin && i < end) return true;
    }
    return false;
  }

  // -- sinks ----------------------------------------------------------------

  /// Span start for the ternary-condition scan: after the last top-level
  /// `=` so the name being initialized is not reported as its own
  /// condition (`int c = secret > x ? 1 : 0;`).
  size_t TernaryScanBegin(size_t q) const {
    size_t begin = v_.StatementStart(q);
    int depth = 0;
    for (size_t j = begin; j < q; ++j) {
      const Token& t = v_.Tok(j);
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (t.text == "=" && depth == 0) begin = j + 1;
    }
    return begin;
  }

  void ShiftSink(size_t i) {
    if (template_closers_.count(i) != 0) return;
    if (i > 0) {
      const Token& prev = v_.Tok(i - 1);
      if (prev.kind == TokKind::kString) return;  // os << "..." << x chains.
      if (prev.kind == TokKind::kIdent && IsStreamName(prev.text)) return;
    }
    if (v_.Id(v_.StatementStart(i), "PSI_LOG")) return;  // Log sink owns it.
    RightOperand(i, MsgKind::kShift);
  }

  void SubscriptSink(size_t i) {
    const size_t close = v_.Match(i);
    if (close == kNone) return;
    for (size_t j = i + 1; j < close; ++j) {
      const bool use = IsTaintedUse(j);
      const bool call = !use && IsTaintedCall(j);
      if (!use && !call) continue;
      if (Laundered(j, i + 1)) continue;
      const std::string& name = v_.Tok(j).text;
      Report(j, (use ? "secret '" + name + "'"
                     : "value of secret-derived function '" + name + "'") +
                    " indexes a memory access; a secret-dependent address is "
                    "a cache side channel — mask the index or use a "
                    "constant-time select");
    }
  }

  void MemcmpSink(size_t i) {
    const size_t close = v_.Match(i + 1);
    if (close == kNone) return;
    for (size_t j = i + 2; j < close; ++j) {
      const bool use = IsTaintedUse(j);
      const bool call = !use && IsTaintedCall(j);
      if (!use && !call) continue;
      if (Laundered(j, i + 2)) continue;
      const std::string& name = v_.Tok(j).text;
      Report(j, (use ? "secret '" + name + "'"
                     : "value of secret-derived function '" + name + "'") +
                    " is an argument of early-exit '" + v_.Tok(i).text +
                    "'; use a constant-time comparison over the full width");
    }
  }

  // -- main walk ------------------------------------------------------------

  void Walk() {
    for (size_t i = 0; i < v_.N(); ++i) {
      if (v_.P(i, "{")) ++depth_;
      if (v_.P(i, "}")) {
        --depth_;
        for (auto it = derived_.begin(); it != derived_.end();) {
          it = it->second > depth_ ? derived_.erase(it) : std::next(it);
        }
      }

      // Taint propagation.
      if (v_.P(i, "=")) {
        HandleAssign(i, /*compound=*/false);
      } else if (v_.Tok(i).kind == TokKind::kPunct &&
                 IsCompoundAssign(v_.Tok(i).text)) {
        HandleAssign(i, /*compound=*/true);
      } else if (v_.Id(i, "PSI_ASSIGN_OR_RETURN") && v_.P(i + 1, "(")) {
        HandleAssignOrReturn(i);
      } else if (v_.Id(i, "for") && v_.P(i + 1, "(")) {
        HandleRangeFor(i);
      }

      // Sinks.
      if ((v_.Id(i, "if") || v_.Id(i, "while")) && v_.P(i + 1, "(") &&
          v_.Match(i + 1) != kNone) {
        SpanSink(i + 2, v_.Match(i + 1), "a branch condition",
                 /*allow_sanitizers=*/true, /*skip_memcmp_args=*/true);
      } else if (v_.P(i, "?")) {
        SpanSink(TernaryScanBegin(i), i, "a ternary condition",
                 /*allow_sanitizers=*/true, /*skip_memcmp_args=*/true);
      } else if (v_.P(i, "%") || v_.P(i, "/") || v_.P(i, "%=") ||
                 v_.P(i, "/=")) {
        LeftOperand(i, MsgKind::kVarTime);
        RightOperand(i, MsgKind::kVarTime);
      } else if (v_.Id(i, "PSI_LOG")) {
        // The old check banned sanitizers in logs because the name
        // vocabulary was guesswork; an explicit PSI_SANITIZES declassifier
        // makes its value loggable like any other public value.
        SpanSink(i, v_.StatementEnd(i), "a log statement",
                 /*allow_sanitizers=*/true, /*skip_memcmp_args=*/false);
      } else if ((v_.Id(i, "Send") || v_.Id(i, "SendFramed")) &&
                 v_.P(i + 1, "(") && v_.Match(i + 1) != kNone) {
        SpanSink(i + 2, v_.Match(i + 1), "a network send",
                 /*allow_sanitizers=*/true, /*skip_memcmp_args=*/false);
      } else if (v_.IsSubscriptOpen(i)) {
        SubscriptSink(i);
      } else if (v_.P(i, "<<") || v_.P(i, ">>") || v_.P(i, "<<=") ||
                 v_.P(i, ">>=")) {
        ShiftSink(i);
      } else if (v_.IsIdent(i) && IsMemcmpName(v_.Tok(i).text) &&
                 v_.P(i + 1, "(")) {
        MemcmpSink(i);
      } else if ((v_.P(i, "==") || v_.P(i, "!=")) && !InConditionSpan(i)) {
        LeftOperand(i, MsgKind::kEarlyExit);
        RightOperand(i, MsgKind::kEarlyExit);
      } else if (v_.Id(i, "return")) {
        HandleReturn(i);
      }
    }
  }

  TokenView v_;
  std::set<std::string> secrets_;
  std::set<std::string> sanitizers_;
  std::set<std::string> tainted_fns_;
  std::map<std::string, int> derived_;  // name -> brace depth of the taint.
  int depth_ = 0;
  std::vector<FunctionInfo> functions_;
  std::set<size_t> template_closers_;
  std::vector<std::pair<size_t, size_t>> cond_spans_;
  std::set<size_t> tainted_out_;  // Indices into functions_.
  std::vector<Finding> findings_;
};

}  // namespace

TaintAnalysis AnalyzeTaint(const LexedFile& file,
                           const std::vector<std::string>& secrets,
                           const std::vector<std::string>& sanitizers,
                           const std::vector<std::string>& tainted_functions) {
  return TaintEngine(file, secrets, sanitizers, tainted_functions).Run();
}

}  // namespace internal
}  // namespace psi_lint
