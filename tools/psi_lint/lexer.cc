#include "lexer.h"

#include <array>
#include <cctype>

namespace psi_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so maximal munch works.
const std::array<const char*, 24> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
};

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

class Lexer {
 public:
  Lexer(const std::string& path, const std::string& src) : src_(src) {
    out_.path = path;
  }

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"' || (c == 'R' && Peek(1) == '"' && LooksLikeRawString())) {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent();
        continue;
      }
      LexPunct();
    }
    BuildMatchTable();
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, size_t begin, size_t end, int line) {
    out_.tokens.push_back({kind, src_.substr(begin, end - begin), line});
  }

  void SkipPreprocessor() {
    // Directives (and their continuation lines) carry no tokens the checks
    // care about, and `#include <net/envelope.h>` must not lex as division.
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') {
        ++pos_;
        ++line_;
        at_line_start_ = true;
        return;
      }
      ++pos_;
    }
  }

  void LexLineComment() {
    const int line = line_;
    const size_t begin = pos_ + 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back({line, Trim(src_.substr(begin, pos_ - begin))});
  }

  void LexBlockComment() {
    const int line = line_;
    const size_t begin = pos_ + 2;
    pos_ += 2;
    while (pos_ < src_.size() && !(src_[pos_] == '*' && Peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    const size_t end = pos_;
    if (pos_ < src_.size()) pos_ += 2;
    out_.comments.push_back({line, Trim(src_.substr(begin, end - begin))});
  }

  bool LooksLikeRawString() const {
    // R"delim( — a quote right after R, with a '(' within the short
    // delimiter window, and not part of a longer identifier.
    if (!out_.tokens.empty()) {
      // `FooR"x"`? Identifiers are lexed greedily, so if we are here the
      // previous character was not an identifier char.
    }
    for (size_t i = pos_ + 2; i < src_.size() && i < pos_ + 20; ++i) {
      if (src_[i] == '(') return true;
      if (src_[i] == '"' || src_[i] == '\n') return false;
    }
    return false;
  }

  void LexString() {
    const int line = line_;
    const size_t begin = pos_;
    if (src_[pos_] == 'R') {
      // Raw string: R"delim( ... )delim".
      pos_ += 2;  // R"
      size_t delim_begin = pos_;
      while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
      const std::string closer =
          ")" + src_.substr(delim_begin, pos_ - delim_begin) + "\"";
      while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < src_.size()) pos_ += closer.size();
    } else {
      ++pos_;  // opening quote
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < src_.size()) ++pos_;  // closing quote
    }
    Emit(TokKind::kString, begin, pos_, line);
  }

  void LexChar() {
    const int line = line_;
    const size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') break;  // Unterminated; bail at EOL.
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    Emit(TokKind::kChar, begin, pos_, line);
  }

  void LexNumber() {
    const int line = line_;
    const size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.') {
        ++pos_;
        continue;
      }
      if (c == '\'' && IsDigit(Peek(1))) {  // Digit separator: 1'000'000.
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokKind::kNumber, begin, pos_, line);
  }

  void LexIdent() {
    const int line = line_;
    const size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    Emit(TokKind::kIdent, begin, pos_, line);
  }

  void LexPunct() {
    const int line = line_;
    for (const char* p : kPuncts) {
      const size_t n = std::char_traits<char>::length(p);
      if (src_.compare(pos_, n, p) == 0) {
        Emit(TokKind::kPunct, pos_, pos_ + n, line);
        pos_ += n;
        return;
      }
    }
    Emit(TokKind::kPunct, pos_, pos_ + 1, line);
    ++pos_;
  }

  void BuildMatchTable() {
    out_.match.assign(out_.tokens.size(), LexedFile::kNoMatch);
    std::vector<size_t> stack;
    for (size_t i = 0; i < out_.tokens.size(); ++i) {
      const Token& t = out_.tokens[i];
      if (t.kind != TokKind::kPunct || t.text.size() != 1) continue;
      const char c = t.text[0];
      if (c == '(' || c == '[' || c == '{') {
        stack.push_back(i);
      } else if (c == ')' || c == ']' || c == '}') {
        const char open = c == ')' ? '(' : (c == ']' ? '[' : '{');
        // Pop until the matching opener kind; tolerates mismatched input.
        while (!stack.empty() && out_.tokens[stack.back()].text[0] != open) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          out_.match[stack.back()] = i;
          out_.match[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  const std::string& src_;
  LexedFile out_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexedFile Lex(const std::string& path, const std::string& content) {
  return Lexer(path, content).Run();
}

}  // namespace psi_lint
