#include "symbols.h"

#include <algorithm>
#include <set>

namespace psi_lint {
namespace internal {
namespace {

constexpr size_t kNone = LexedFile::kNoMatch;

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "new" || s == "delete";
}

bool IsBodySpecifier(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "constexpr" || s == "try";
}

}  // namespace

size_t TokenView::StatementStart(size_t i) const {
  while (i > 0) {
    const Token& t = Tok(i - 1);
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    --i;
  }
  return i;
}

size_t TokenView::StatementEnd(size_t i) const {
  int depth = 0;
  for (size_t j = i; j < N(); ++j) {
    const std::string& t = Tok(j).text;
    if (Tok(j).kind != TokKind::kPunct) continue;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (t == ";" && depth <= 0) return j;
  }
  return N();
}

bool TokenView::IsSubscriptOpen(size_t i) const {
  if (!P(i, "[") || i == 0) return false;
  const Token& prev = Tok(i - 1);
  return prev.kind == TokKind::kIdent ||
         (prev.kind == TokKind::kPunct &&
          (prev.text == ")" || prev.text == "]"));
}

std::vector<FunctionInfo> CollectFunctions(const LexedFile& file) {
  const TokenView v(file);
  std::vector<FunctionInfo> out;
  const size_t n = v.N();

  // Pass 1: lambdas. A `[` that is not a subscript (and not the inner
  // bracket of an attribute) introduces a capture list; the body is the
  // first `{` after the optional parameter list / specifiers / trailing
  // return type.
  for (size_t i = 0; i < n; ++i) {
    if (!v.P(i, "[") || v.IsSubscriptOpen(i)) continue;
    if (i > 0 && v.P(i - 1, "[")) continue;  // [[attribute]]
    if (v.P(i + 1, "[")) continue;           // [[attribute]]
    const size_t capture_close = v.Match(i);
    if (capture_close == kNone) continue;
    size_t j = capture_close + 1;
    if (v.P(j, "(")) {
      const size_t params_close = v.Match(j);
      if (params_close == kNone) continue;
      j = params_close + 1;
    }
    // Specifiers and an optional `-> Type` before the body.
    size_t guard = 0;
    while (j < n && guard++ < 64) {
      if (v.P(j, "{")) break;
      if (v.IsIdent(j) || v.P(j, "->") || v.P(j, "::") || v.P(j, "<") ||
          v.P(j, ">") || v.P(j, ">>") || v.P(j, "*") || v.P(j, "&") ||
          v.P(j, ",")) {
        ++j;
        continue;
      }
      break;
    }
    if (!v.P(j, "{") || v.Match(j) == kNone) continue;
    FunctionInfo fn;
    fn.is_lambda = true;
    fn.body_open = j;
    fn.body_close = v.Match(j);
    fn.name_idx = j;
    // `auto name = [...]` / `auto name = /*...*/ [...]`: credit the lambda
    // to the variable it initializes so call sites of the local can inherit
    // its taint summary.
    if (i >= 2 && v.P(i - 1, "=") && v.IsIdent(i - 2)) {
      fn.name = v.Tok(i - 2).text;
      fn.name_idx = i - 2;
    }
    out.push_back(fn);
  }

  // Pass 2: named functions. The signature shape is
  //   name ( params ) [specifiers | -> Type | : init-list] {
  // where `name` is an identifier that is not a control keyword.
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!v.P(i, "(")) continue;
    const size_t close = v.Match(i);
    if (close == kNone || i == 0) continue;
    if (!v.IsIdent(i - 1)) continue;
    const std::string& name = v.Tok(i - 1).text;
    if (IsControlKeyword(name)) continue;
    size_t j = close + 1;
    bool ok = true;
    size_t guard = 0;
    while (j < n && guard++ < 256) {
      if (v.P(j, "{")) break;
      if (v.IsIdent(j) && IsBodySpecifier(v.Tok(j).text)) {
        ++j;
        continue;
      }
      if (v.P(j, "->")) {  // Trailing return type: skip type tokens.
        ++j;
        while (j < n && (v.IsIdent(j) || v.P(j, "::") || v.P(j, "<") ||
                         v.P(j, ">") || v.P(j, ">>") || v.P(j, "*") ||
                         v.P(j, "&") || v.P(j, ",") ||
                         v.Tok(j).kind == TokKind::kNumber)) {
          ++j;
        }
        continue;
      }
      if (v.P(j, ":")) {  // Constructor initializer list.
        ++j;
        while (j < n) {
          if (v.P(j, "{")) {
            // An initializer brace (`a_{1}`) directly follows an identifier
            // or `>`; the body brace follows `)` / `}` / the init list comma
            // chain. Jump initializer braces whole.
            if (j > 0 && (v.IsIdent(j - 1) || v.P(j - 1, ">"))) {
              const size_t m = v.Match(j);
              if (m == kNone) break;
              j = m + 1;
              continue;
            }
            break;
          }
          if (v.P(j, "(")) {
            const size_t m = v.Match(j);
            if (m == kNone) break;
            j = m + 1;
            continue;
          }
          if (v.P(j, ";")) break;  // Not a definition after all.
          ++j;
        }
        continue;
      }
      ok = false;
      break;
    }
    if (!ok || j >= n || !v.P(j, "{") || v.Match(j) == kNone) continue;
    // Reject control-flow lookalikes: `a = b (c) {` cannot occur, but a
    // lambda body already claimed via pass 1 can share the same `{` when the
    // "name" is actually a capture — skip duplicates.
    bool duplicate = false;
    for (const FunctionInfo& fn : out) {
      if (fn.body_open == j) duplicate = true;
    }
    if (duplicate) continue;
    FunctionInfo fn;
    fn.name = name;
    fn.name_idx = i - 1;
    fn.body_open = j;
    fn.body_close = v.Match(j);
    out.push_back(fn);
  }

  std::sort(out.begin(), out.end(),
            [](const FunctionInfo& a, const FunctionInfo& b) {
              return a.body_open < b.body_open;
            });
  return out;
}

size_t InnermostFunction(const std::vector<FunctionInfo>& functions,
                         size_t i) {
  size_t best = functions.size();
  size_t best_width = static_cast<size_t>(-1);
  for (size_t k = 0; k < functions.size(); ++k) {
    const FunctionInfo& fn = functions[k];
    if (i <= fn.body_open || i >= fn.body_close) continue;
    const size_t width = fn.body_close - fn.body_open;
    if (width < best_width) {
      best = k;
      best_width = width;
    }
  }
  return best;
}

std::vector<std::string> CollectSanitizerNames(const LexedFile& file) {
  const TokenView v(file);
  std::vector<std::string> names;
  for (size_t i = 0; i < v.N(); ++i) {
    if (!v.Id(i, "PSI_SANITIZES")) continue;
    for (size_t j = i + 1; j < v.N() && j < i + 64; ++j) {
      if (v.P(j, ";") || v.P(j, "{") || v.P(j, "}")) break;
      if (v.IsIdent(j) && v.P(j + 1, "(")) {
        names.push_back(v.Tok(j).text);
        break;
      }
    }
  }
  return names;
}

std::vector<size_t> TemplateCloserIndices(const LexedFile& file) {
  const TokenView v(file);
  std::vector<size_t> closers;
  for (size_t i = 0; i < v.N(); ++i) {
    if (!v.P(i, "<") || i == 0 || !v.IsIdent(i - 1)) continue;
    // Walk forward: a template argument list holds only type-ish tokens.
    int depth = 0;
    std::vector<size_t> pending;
    bool is_template = false;
    for (size_t j = i; j < v.N() && j < i + 256; ++j) {
      const Token& t = v.Tok(j);
      if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber) continue;
      if (t.kind != TokKind::kPunct) break;
      if (t.text == "<") {
        ++depth;
      } else if (t.text == ">") {
        pending.push_back(j);
        if (--depth == 0) {
          is_template = true;
          break;
        }
      } else if (t.text == ">>") {
        pending.push_back(j);
        depth -= 2;
        if (depth <= 0) {
          is_template = true;
          break;
        }
      } else if (t.text == "," || t.text == "*" || t.text == "&" ||
                 t.text == "&&" || t.text == "::" || t.text == "...") {
        continue;
      } else {
        break;  // An operator/terminator templates never contain.
      }
    }
    if (is_template) {
      closers.insert(closers.end(), pending.begin(), pending.end());
    }
  }
  std::sort(closers.begin(), closers.end());
  closers.erase(std::unique(closers.begin(), closers.end()), closers.end());
  return closers;
}

}  // namespace internal
}  // namespace psi_lint
