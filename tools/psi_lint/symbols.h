// Scope and symbol model shared by the flow-sensitive engines.
//
// psi_lint stays token-level (no libclang), but the taint and
// channel-schedule engines need more structure than a flat token stream:
// which tokens form a function (or lambda) body, which functions carry the
// PSI_SANITIZES annotation, and where a statement begins and ends. This
// header provides that layer: a `TokenView` of positional utilities over a
// LexedFile, function/lambda body discovery, and annotation collection.
//
// Everything here is a lexical approximation with the same contract as
// checks.cc: catch every violation written in this codebase's idiom, keep
// false positives rare enough to justify individually.

#ifndef PSI_TOOLS_PSI_LINT_SYMBOLS_H_
#define PSI_TOOLS_PSI_LINT_SYMBOLS_H_

#include <string>
#include <vector>

#include "lexer.h"

namespace psi_lint {
namespace internal {

/// A function, member function, or lambda body discovered in the token
/// stream. `body_open`/`body_close` are token indices of the `{` / `}`.
struct FunctionInfo {
  std::string name;     // Last identifier before the parameter list; for a
                        // lambda, the variable it initializes ("" if none).
  size_t name_idx = 0;  // Token index of the name (body_open for unnamed).
  size_t body_open = 0;
  size_t body_close = 0;
  bool is_lambda = false;
};

/// Read-only positional helpers over a LexedFile. All engines share these so
/// "statement", "operand", and "template argument list" mean the same thing
/// everywhere.
class TokenView {
 public:
  explicit TokenView(const LexedFile& file) : f_(file) {}

  const LexedFile& file() const { return f_; }
  size_t N() const { return f_.tokens.size(); }
  const Token& Tok(size_t i) const { return f_.tokens[i]; }
  bool P(size_t i, const char* text) const {
    return i < N() && Tok(i).kind == TokKind::kPunct && Tok(i).text == text;
  }
  bool Id(size_t i, const char* text) const {
    return i < N() && Tok(i).kind == TokKind::kIdent && Tok(i).text == text;
  }
  bool IsIdent(size_t i) const {
    return i < N() && Tok(i).kind == TokKind::kIdent;
  }
  size_t Match(size_t i) const {
    return i < f_.match.size() ? f_.match[i] : LexedFile::kNoMatch;
  }

  /// Index right after the last `;` / `{` / `}` before `i` (statement start).
  size_t StatementStart(size_t i) const;

  /// Index of the `;` closing the statement containing `i` (paren-depth 0
  /// relative to `i`), or N().
  size_t StatementEnd(size_t i) const;

  /// True when the `[` at `i` opens a subscript (previous token is a value:
  /// identifier, `)`, or `]`) rather than a lambda capture or attribute.
  bool IsSubscriptOpen(size_t i) const;

 private:
  const LexedFile& f_;
};

/// Discovers every function / member function / lambda body in `file`,
/// sorted by `body_open`. Nested bodies (lambdas inside functions) are
/// separate entries; use InnermostFunction to attribute a token.
std::vector<FunctionInfo> CollectFunctions(const LexedFile& file);

/// Index into `functions` of the innermost body containing token `i`, or
/// `functions.size()` when `i` is at file scope.
size_t InnermostFunction(const std::vector<FunctionInfo>& functions, size_t i);

/// Names of functions declared with the PSI_SANITIZES annotation
/// (common/annotations.h): the first identifier after the macro that is
/// directly followed by `(`.
std::vector<std::string> CollectSanitizerNames(const LexedFile& file);

/// Token indices of `>` / `>>` tokens that close a template argument list
/// (so the shift sink never fires on `Result<std::vector<uint64_t>>`). A
/// span starting at `ident <` qualifies when it balances within the
/// statement using only type-ish tokens.
std::vector<size_t> TemplateCloserIndices(const LexedFile& file);

}  // namespace internal
}  // namespace psi_lint

#endif  // PSI_TOOLS_PSI_LINT_SYMBOLS_H_
