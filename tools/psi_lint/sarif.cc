#include "sarif.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace psi_lint {
namespace {

struct RuleInfo {
  const char* id;
  const char* description;
};

// Every check that can appear in a LintResult, in stable order so rule
// indices are deterministic across runs.
const RuleInfo kRules[] = {
    {"secret-flow",
     "PSI_SECRET-derived values must not reach branches, variable-time "
     "arithmetic, logs, sends, subscripts, shift counts, or early-exit "
     "compares except through a PSI_SANITIZES call"},
    {"rng-order",
     "No RNG draw inside ParallelFor/Submit regions; randomness stays in "
     "serial program order"},
    {"read-bounds",
     "Peer-deserialized counts must be bound-checked before sizing memory "
     "or bounding loops"},
    {"nodiscard-status",
     "Status/Result functions carry [[nodiscard]] and no call site "
     "discards one"},
    {"channel-schedule",
     "Every SendFramed needs a structurally reachable peer RecvValidated "
     "with the same ProtocolId in the same stage; stage names are unique "
     "non-empty literals"},
    {"bad-suppression",
     "Malformed psi-lint suppression comment (never itself suppressible)"},
    {"io-error", "Path could not be read"},
};

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const LintResult& result) {
  std::map<std::string, size_t> rule_index;
  for (size_t i = 0; i < sizeof(kRules) / sizeof(kRules[0]); ++i) {
    rule_index[kRules[i].id] = i;
  }

  std::ostringstream out;
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"psi_lint\","
         "\"informationUri\":\"docs/STATIC_ANALYSIS.md\","
         "\"rules\":[";
  for (size_t i = 0; i < sizeof(kRules) / sizeof(kRules[0]); ++i) {
    if (i > 0) out << ",";
    out << "{\"id\":\"" << kRules[i].id << "\",\"shortDescription\":{"
        << "\"text\":\"" << Escape(kRules[i].description) << "\"}}";
  }
  out << "]}},\"results\":[";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    if (i > 0) out << ",";
    const auto it = rule_index.find(f.check);
    // SARIF regions are 1-based; io-error findings carry line 0.
    const int line = std::max(f.line, 1);
    out << "{\"ruleId\":\"" << Escape(f.check) << "\"";
    if (it != rule_index.end()) out << ",\"ruleIndex\":" << it->second;
    out << ",\"level\":\"error\",\"message\":{\"text\":\""
        << Escape(f.message) << "\"},\"locations\":[{\"physicalLocation\":{"
        << "\"artifactLocation\":{\"uri\":\"" << Escape(f.file)
        << "\"},\"region\":{\"startLine\":" << line << "}}}]}";
  }
  out << "]}]}";
  return out.str();
}

}  // namespace psi_lint
