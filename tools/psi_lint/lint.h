// psi_lint — project-specific static checks for the psi codebase.
//
// Five invariants that functional tests cannot see (docs/STATIC_ANALYSIS.md):
//
//   secret-flow       PSI_SECRET-annotated values — and, via the taint
//                     engine (taint.h), anything assigned from them or
//                     returned by a function that derives from them — must
//                     not reach branch conditions, ternaries, `%` / `/`
//                     operands, PSI_LOG statements, network Send calls,
//                     array subscripts, shift counts, or early-exit
//                     compares except through a PSI_SANITIZES call.
//   rng-order         No RNG method call lexically inside a lambda passed to
//                     ParallelFor* / ThreadPool::Submit — every draw stays in
//                     serial program order (the transcript determinism
//                     contract of common/thread_pool.h).
//   read-bounds       A count deserialized from a peer (ReadU64 / ReadVarU64
//                     and friends) must be bound-checked — BinaryReader::
//                     ReadCount or an explicit `if` guard — before it reaches
//                     resize / reserve / assign or a loop bound.
//   nodiscard-status  Functions returning Status / Result<T> carry
//                     [[nodiscard]], and no call site silently discards one.
//   channel-schedule  Every SendFramed has a structurally reachable peer
//                     RecvValidated with the same ProtocolId in the same
//                     stage/function, and AddStage registration uses unique
//                     non-empty literal names (schedule.h).
//
// Findings are suppressed line-by-line with
//     a comment `psi-lint: allow(<check>) <justification>`
// on the finding's line or the line above; the justification text is
// mandatory. A malformed suppression is itself a finding (bad-suppression)
// and cannot be suppressed. Doc comments and backtick quotes that merely
// mention the grammar (like the line above) are ignored.

#ifndef PSI_TOOLS_PSI_LINT_LINT_H_
#define PSI_TOOLS_PSI_LINT_LINT_H_

#include <string>
#include <vector>

#include "lexer.h"

namespace psi_lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;    // "secret-flow", ..., or "bad-suppression".
  std::string message;

  std::string ToString() const;
};

/// An in-memory source buffer (tests) or a file loaded from disk (CLI).
struct SourceBuffer {
  std::string path;
  std::string content;
};

struct LintOptions {
  /// When non-empty, only findings of these checks are reported
  /// (bad-suppression is always reported).
  std::vector<std::string> only_checks;
};

struct LintResult {
  std::vector<Finding> findings;   // Sorted by (file, line, check).
  size_t files_scanned = 0;
  size_t suppressed = 0;           // Findings silenced by valid allow().
};

/// True iff `name` is one of the five check names.
bool IsKnownCheck(const std::string& name);

/// Lints a set of in-memory sources as one project: the nodiscard-status
/// call-site pass and the secret annotation table see all buffers, and a
/// `.cc` buffer inherits the PSI_SECRET annotations of the same-stem `.h`.
LintResult LintSources(const std::vector<SourceBuffer>& sources,
                       const LintOptions& options = {});

/// Expands `paths` (files, or directories searched recursively for
/// .h/.hpp/.cc/.cpp) and lints them. Unreadable paths produce a finding of
/// check "io-error".
LintResult LintPaths(const std::vector<std::string>& paths,
                     const LintOptions& options = {});

/// Machine-readable report:
/// {"findings":[{"file":...,"line":N,"check":...,"message":...}],
///  "files_scanned":N,"suppressed":N}
std::string ToJson(const LintResult& result);

namespace internal {

/// Project-wide symbol tables the per-file checks consume. LintSources
/// builds these over the whole batch: the discarded-call pass needs every
/// Status-returning function, the taint engine needs every PSI_SANITIZES
/// name and the summary-taint fixpoint.
struct ProjectContext {
  std::vector<std::string> status_functions;
  std::vector<std::string> sanitizers;
  std::vector<std::string> tainted_functions;
};

/// Runs the five checks over one lexed file. `extra_secrets` are secret
/// names inherited from a paired header. Suppressions are NOT applied here.
std::vector<Finding> RunChecks(const LexedFile& file,
                               const std::vector<std::string>& extra_secrets,
                               const ProjectContext& project);

/// Collects the names declared with PSI_SECRET in `file`.
std::vector<std::string> CollectSecretNames(const LexedFile& file);

/// Collects the names of Status/Result-returning functions declared in
/// `file` (whether or not they carry [[nodiscard]]).
std::vector<std::string> CollectStatusFunctions(const LexedFile& file);

/// Collects the names of void-returning functions declared in `file`.
/// LintSources drops these from the discarded-call set: matching is by
/// name, so a void Run() in one file must not flag discards of it just
/// because a Status Run() exists elsewhere.
std::vector<std::string> CollectVoidFunctions(const LexedFile& file);

}  // namespace internal

}  // namespace psi_lint

#endif  // PSI_TOOLS_PSI_LINT_LINT_H_
