// Token-level C++ lexer for psi_lint.
//
// psi_lint deliberately avoids libclang: the four project invariants it
// enforces (docs/STATIC_ANALYSIS.md) are all expressible over the token
// stream plus bracket matching, and a dependency-free scanner can run as a
// ctest gate on every machine that can build the repo. The lexer therefore
// handles exactly as much of C++ as the checks need:
//
//   * comments are lexed out of the token stream but retained (with line
//     numbers) for suppression and annotation parsing,
//   * preprocessor directives are skipped whole (including continuation
//     lines), so `#include <a/b.h>` never looks like division,
//   * string/char literals are single tokens (raw strings included),
//   * multi-character operators are single tokens so `->` and `::` chains
//     are easy to walk.

#ifndef PSI_TOOLS_PSI_LINT_LEXER_H_
#define PSI_TOOLS_PSI_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace psi_lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// A comment with its starting line ("//" and "/* */" both included, text
/// without the delimiters, trimmed).
struct Comment {
  int line = 0;
  std::string text;
};

/// A lexed source file: tokens (no whitespace / comments / preprocessor),
/// the comments on the side, and a bracket-match table.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  /// For each token index holding `(`, `[` or `{`: the index of the
  /// matching closer; for each closer the index of the opener; else npos.
  std::vector<size_t> match;

  static constexpr size_t kNoMatch = static_cast<size_t>(-1);
};

/// Lexes `content` (the text of `path`). Never fails: unterminated
/// constructs are truncated at end-of-file.
LexedFile Lex(const std::string& path, const std::string& content);

}  // namespace psi_lint

#endif  // PSI_TOOLS_PSI_LINT_LEXER_H_
