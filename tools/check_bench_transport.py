#!/usr/bin/env python3
"""Bench gate for the socket transport layer.

Validates a fresh bench_transport JSON run against the committed baseline
(BENCH_transport.json). Every gated counter is a deterministic meter
(protocol traffic, relay frame counts, reconnect attempts), so the checks
are machine independent; real_time_ns / roundtrip_ns are reported but never
gated (loopback scheduling is not reproducible across machines).

  1. Correctness invariants (same run):
       - all three scenarios complete;
       - the socket backend meters protocol traffic identically to the
         simulator (metering_matches_simulator == 1) and its wire counters
         equal the simulator row's counters exactly;
       - every relayed frame came back (frames_echoed == frames_relayed)
         and the daemon hairpinned each one, with zero protocol
         violations;
       - the relay framing overhead matches the analytic cost model:
         relay_overhead_bytes == frames_relayed * 2 * (12 + 8);
       - the reconnect scenario detected the dead peer, reconnected, and
         the restarted daemon saw a resume hello.
  2. Regression guard vs the committed baseline:
       - protocol wire traffic (messages and bytes) must not grow more
         than 25% over baseline;
       - relayed frame count and relay overhead must not grow more than
         25% (transport chatter creeping into the data path);
       - reconnect_attempts must not grow at all: recovery from a
         listening daemon must stay a first-dial success.

Usage: check_bench_transport.py --baseline BENCH_transport.json --run fresh.json
"""

import argparse
import json
import sys

SIM = "transport/simulator_roundtrip"
SOCK = "transport/socket_roundtrip"
RECONNECT = "transport/reconnect_resume"

MAX_REGRESSION = 0.25

# Per-relayed-frame framing cost: each protocol frame is framed twice
# (client -> daemon, echo back), a 12-byte transport header plus the
# 8-byte from/to routing prefix each way (docs/TRANSPORT.md).
RELAY_OVERHEAD_PER_FRAME = 2 * (12 + 8)


def require_release_build(data, path):
    """Fails loudly unless the JSON was produced by a Release build."""
    context = data.get("context", {})
    build = context.get("psi_build_type", context.get("library_build_type"))
    if build is None:
        raise SystemExit(
            f"FAIL: {path} carries no psi_build_type/library_build_type "
            "context; re-record it with a current Release bench binary"
        )
    if build != "release":
        raise SystemExit(
            f"FAIL: {path} was recorded from a '{build}' build; bench "
            "gates only accept Release numbers (cmake "
            "-DCMAKE_BUILD_TYPE=Release)"
        )


def load(path):
    with open(path) as f:
        data = json.load(f)
    require_release_build(data, path)
    by_name = {}
    for bench in data.get("benchmarks", []):
        by_name[bench["name"]] = bench
    return by_name


def row(benches, name):
    if name not in benches:
        raise SystemExit(f"FAIL: benchmark '{name}' missing from results")
    return benches[name]


def counter(benches, name, key):
    value = row(benches, name).get(key)
    if value is None:
        raise SystemExit(f"FAIL: benchmark '{name}' has no counter '{key}'")
    return int(value)


def check_invariants(benches, failures):
    for name in (SIM, SOCK, RECONNECT):
        if counter(benches, name, "ok") != 1:
            failures.append(f"{name} did not complete")

    if counter(benches, SOCK, "metering_matches_simulator") != 1:
        failures.append("socket run metered differently from the simulator")
    for key in ("wire_messages", "wire_bytes", "wire_payload_bytes"):
        sim = counter(benches, SIM, key)
        sock = counter(benches, SOCK, key)
        if sim != sock:
            failures.append(f"{key} differs across backends: {sim} vs {sock}")

    relayed = counter(benches, SOCK, "frames_relayed")
    if relayed == 0:
        failures.append("no frames crossed the wire")
    if counter(benches, SOCK, "frames_echoed") != relayed:
        failures.append("relayed and echoed frame counts differ")
    if counter(benches, SOCK, "frames_hairpinned") != relayed:
        failures.append("daemon hairpin count disagrees with the client")
    if counter(benches, SOCK, "daemon_protocol_violations") != 0:
        failures.append("daemon recorded protocol violations on a clean run")

    overhead = counter(benches, SOCK, "relay_overhead_bytes")
    expected = relayed * RELAY_OVERHEAD_PER_FRAME
    if overhead != expected:
        failures.append(
            f"relay overhead diverged from the analytic model: "
            f"{overhead} vs {expected} for {relayed} frames"
        )

    if counter(benches, RECONNECT, "dead_peers_detected") < 1:
        failures.append("dead daemon went undetected")
    if counter(benches, RECONNECT, "reconnects") != 1:
        failures.append("reconnect scenario did not reconnect exactly once")
    if counter(benches, RECONNECT, "resumed_hellos") < 1:
        failures.append("restarted daemon never saw a resume hello")


def check_regressions(benches, baseline, failures):
    grow_caps = [
        (SOCK, "wire_messages"),
        (SOCK, "wire_bytes"),
        (SOCK, "frames_relayed"),
        (SOCK, "relay_overhead_bytes"),
    ]
    for name, key in grow_caps:
        fresh = counter(benches, name, key)
        base = counter(baseline, name, key)
        ceiling = base * (1.0 + MAX_REGRESSION)
        print(f"{name}/{key}: {fresh} (baseline {base}, ceiling {ceiling:.0f})")
        if fresh > ceiling:
            failures.append(
                f"{name}/{key} grew: {fresh} vs baseline {base} "
                f"(> {MAX_REGRESSION:.0%} increase)"
            )

    fresh_attempts = counter(benches, RECONNECT, "reconnect_attempts")
    base_attempts = counter(baseline, RECONNECT, "reconnect_attempts")
    print(
        f"{RECONNECT}/reconnect_attempts: {fresh_attempts} "
        f"(baseline {base_attempts})"
    )
    if fresh_attempts > base_attempts:
        failures.append(
            f"reconnecting to a listening daemon took {fresh_attempts} "
            f"dials (baseline {base_attempts}): first-dial recovery broke"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--run", required=True)
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.run)

    failures = []
    check_invariants(fresh, failures)
    check_regressions(fresh, baseline, failures)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: transport bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
