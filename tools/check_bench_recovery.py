#!/usr/bin/env python3
"""Bench gate for the session/recovery layer.

Validates a fresh bench_recovery JSON run against the committed baseline
(BENCH_recovery.json). Every gated counter is a deterministic meter
(session stats, wire traffic), so the checks are machine independent;
real_time_ns is reported but never gated.

  1. Correctness invariants (same run):
       - all three scenarios complete and reproduce the fault-free
         influence estimates bit for bit;
       - the fault-free control is wire-invisible: one attempt, zero
         handshake traffic, zero backoff;
       - stage resume never redoes checkpointed crypto work
         (crypto_ops_recomputed == 0) and actually skips completed stages
         (crypto_ops_saved > 0, stages_resumed > 0, resumes >= 1);
       - the full-restart ablation redoes that exact work
         (crypto_ops_recomputed == stage-resume's crypto_ops_saved,
         crypto_ops_saved == 0).
  2. Regression guard vs the committed baseline:
       - resume handshake traffic (messages and bytes) must not grow more
         than 25% over baseline;
       - the fraction of crypto work recovery saves must not fall more
         than 25% below baseline.

Usage: check_bench_recovery.py --baseline BENCH_recovery.json --run fresh.json
"""

import argparse
import json
import sys

NO_FAULT = "recovery/no_fault"
RESUME = "recovery/stage_resume"
FULL = "recovery/full_restart"

MAX_REGRESSION = 0.25


def require_release_build(data, path):
    """Fails loudly unless the JSON was produced by a Release build."""
    context = data.get("context", {})
    build = context.get("psi_build_type", context.get("library_build_type"))
    if build is None:
        raise SystemExit(
            f"FAIL: {path} carries no psi_build_type/library_build_type "
            "context; re-record it with a current Release bench binary"
        )
    if build != "release":
        raise SystemExit(
            f"FAIL: {path} was recorded from a '{build}' build; bench "
            "gates only accept Release numbers (cmake "
            "-DCMAKE_BUILD_TYPE=Release)"
        )


def load(path):
    with open(path) as f:
        data = json.load(f)
    require_release_build(data, path)
    by_name = {}
    for bench in data.get("benchmarks", []):
        by_name[bench["name"]] = bench
    return by_name


def row(benches, name):
    if name not in benches:
        raise SystemExit(f"FAIL: benchmark '{name}' missing from results")
    return benches[name]


def counter(benches, name, key):
    value = row(benches, name).get(key)
    if value is None:
        raise SystemExit(f"FAIL: benchmark '{name}' has no counter '{key}'")
    return int(value)


def saved_fraction(benches):
    """Share of total crypto ops that stage resume skipped (same run)."""
    total = counter(benches, RESUME, "crypto_ops_total")
    if total == 0:
        raise SystemExit(f"FAIL: '{RESUME}' metered zero crypto ops")
    return counter(benches, RESUME, "crypto_ops_saved") / total


def check_invariants(benches, failures):
    for name in (NO_FAULT, RESUME, FULL):
        if counter(benches, name, "ok") != 1:
            failures.append(f"{name} did not complete")
        if counter(benches, name, "result_matches_fault_free") != 1:
            failures.append(f"{name} diverged from the fault-free result")

    if counter(benches, NO_FAULT, "attempts") != 1:
        failures.append("no-fault control needed more than one attempt")
    for key in ("handshake_messages", "handshake_bytes", "backoff_rounds"):
        if counter(benches, NO_FAULT, key) != 0:
            failures.append(f"no-fault control has nonzero {key}")

    if counter(benches, RESUME, "resumes") < 1:
        failures.append("stage-resume run never resumed (probe found no crash)")
    if counter(benches, RESUME, "stages_resumed") < 1:
        failures.append("stage-resume run skipped no stages")
    if counter(benches, RESUME, "crypto_ops_recomputed") != 0:
        failures.append("stage resume recomputed checkpointed crypto work")
    saved = counter(benches, RESUME, "crypto_ops_saved")
    if saved == 0:
        failures.append("stage resume saved no crypto work")

    if counter(benches, FULL, "crypto_ops_saved") != 0:
        failures.append("full-restart ablation claims saved crypto work")
    redone = counter(benches, FULL, "crypto_ops_recomputed")
    if redone == 0:
        failures.append("full-restart ablation redid no crypto work")
    elif redone != saved:
        failures.append(
            f"ledger mismatch: full restart redid {redone} ops but stage "
            f"resume saved {saved} on the identical schedule"
        )


def check_regressions(benches, baseline, failures):
    for key in ("handshake_messages", "handshake_bytes"):
        fresh = counter(benches, RESUME, key)
        base = counter(baseline, RESUME, key)
        ceiling = base * (1.0 + MAX_REGRESSION)
        print(f"{key}: {fresh} (baseline {base}, ceiling {ceiling:.0f})")
        if fresh > ceiling:
            failures.append(
                f"{key} grew: {fresh} vs baseline {base} "
                f"(> {MAX_REGRESSION:.0%} increase)"
            )

    fresh_frac = saved_fraction(benches)
    base_frac = saved_fraction(baseline)
    floor = base_frac * (1.0 - MAX_REGRESSION)
    print(
        f"crypto ops saved by resume: {fresh_frac:.0%} of total "
        f"(baseline {base_frac:.0%}, floor {floor:.0%})"
    )
    if fresh_frac < floor:
        failures.append(
            f"recovery saves less work: {fresh_frac:.0%} vs baseline "
            f"{base_frac:.0%} (> {MAX_REGRESSION:.0%} drop)"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--run", required=True)
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.run)

    failures = []
    check_invariants(fresh, failures)
    check_regressions(fresh, baseline, failures)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: recovery bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
