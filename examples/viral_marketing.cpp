// Viral marketing end to end — the scenario from the paper's introduction.
//
// Four book stores (P1..P4) sell overlapping catalogs: the same best-seller
// can be bought at any of them, so the propagation trace of a title is
// scattered across stores (the *non-exclusive* case). The stores and the
// social-network host H:
//   1. run Protocol 5 per action class so each class's counters are pooled
//      by a representative without any store exposing its sales log,
//   2. run Protocol 4 so H learns the influence strength of every link,
//   3. H runs influence maximization (CELF greedy under the IC model) on
//      the learned strengths to pick the seed users for the campaign.
//
// The example also shows what goes wrong without cooperation: each store's
// local estimate misses the cross-store follow episodes.

#include <cstdio>

#include "actionlog/counters.h"
#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "influence/influence_max.h"
#include "influence/link_influence.h"
#include "mpc/non_exclusive.h"

using namespace psi;  // Example code only.

int main() {
  constexpr size_t kUsers = 80;
  constexpr size_t kStores = 4;
  constexpr size_t kTitles = 120;
  constexpr uint64_t kWindow = 4;

  // --- A scale-free "followers" graph and ground-truth influence. ---
  Rng rng(7);
  SocialGraph graph = BarabasiAlbert(&rng, kUsers, 3).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.05, 0.5);
  CascadeParams cascade;
  cascade.num_actions = kTitles;
  cascade.max_delay = kWindow;
  ActionLog sales = GenerateCascades(&rng, graph, truth, cascade).ValueOrDie();

  // --- Non-exclusive catalogs: 6 genres, each sold by 2-4 stores. ---
  ActionClassConfig genres =
      ActionClassConfig::Random(&rng, kTitles, 6, kStores, 2, kStores)
          .ValueOrDie();
  std::vector<ActionLog> store_logs =
      NonExclusivePartition(&rng, sales, kStores, genres).ValueOrDie();

  std::printf("Unified log: %zu purchases; per store:", sales.size());
  for (const auto& log : store_logs) std::printf(" %zu", log.size());
  std::printf("\n");

  // --- What a single store would estimate on its own. ---
  uint64_t local_episodes = 0, unified_episodes = 0;
  for (const auto& log : store_logs) {
    for (uint64_t b : ComputeFollowCounts(log, graph.arcs(), kWindow)) {
      local_episodes += b;
    }
  }
  for (uint64_t b : ComputeFollowCounts(sales, graph.arcs(), kWindow)) {
    unified_episodes += b;
  }
  std::printf(
      "Influence episodes visible: %llu locally vs %llu after pooling "
      "(%.0f%% lost without cooperation)\n",
      static_cast<unsigned long long>(local_episodes),
      static_cast<unsigned long long>(unified_episodes),
      100.0 * (1.0 - static_cast<double>(local_episodes) /
                         static_cast<double>(unified_episodes)));

  // --- The secure pipeline: Protocol 5 per genre, then Protocol 4. ---
  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> stores;
  std::vector<Rng> store_rng_store;
  for (size_t k = 0; k < kStores; ++k) {
    stores.push_back(net.RegisterParty("Store" + std::to_string(k + 1)));
    store_rng_store.emplace_back(100 + k);
  }
  std::vector<Rng*> store_rngs;
  for (auto& r : store_rng_store) store_rngs.push_back(&r);
  Rng host_rng(1), pair_secret(2), class_secret(3);

  NonExclusiveConfig config;
  config.protocol4.h = kWindow;
  NonExclusivePipeline pipeline(&net, host, stores, config);
  LinkInfluence learned =
      pipeline.Run(graph, kTitles, store_logs, genres, &host_rng, store_rngs,
                   &pair_secret, &class_secret)
          .ValueOrDie();

  LinkInfluence plain = ComputeLinkInfluence(sales, graph.arcs(), kUsers,
                                             kWindow)
                            .ValueOrDie();
  std::printf("Secure vs plaintext MAE: %.2e (exact)\n",
              MeanAbsoluteError(learned, plain).ValueOrDie());

  // --- Influence maximization on the learned strengths. ---
  Rng opt_rng(42);
  auto seeds =
      CelfInfluenceMaximization(graph, learned.p, /*k=*/5, &opt_rng, 300)
          .ValueOrDie();
  std::printf("\nCampaign seed users (CELF, k=5):");
  for (NodeId s : seeds.seeds) std::printf(" %u", s);
  std::printf("\nExpected spread under learned model : %.1f users\n",
              seeds.expected_spread);

  Rng eval_rng(43);
  double spread_truth =
      EstimateSpread(graph, truth.prob, seeds.seeds, &eval_rng, 3000)
          .ValueOrDie();
  auto degree_seeds = DegreeHeuristic(graph, 5);
  double spread_degree =
      EstimateSpread(graph, truth.prob, degree_seeds.seeds, &eval_rng, 3000)
          .ValueOrDie();
  std::printf("Spread under the TRUE model         : %.1f users\n",
              spread_truth);
  std::printf("Degree-heuristic baseline           : %.1f users\n",
              spread_degree);
  std::printf("\nTotal secure communication: %llu bytes over %llu rounds\n",
              static_cast<unsigned long long>(net.Report().num_bytes),
              static_cast<unsigned long long>(net.Report().num_rounds));
  return 0;
}
