// What does the host actually learn? A tour of the library's privacy
// analysis tools (Section 4 + Section 7.2):
//   * Protocol 3's masking in action: the host sees y = r*x, not x;
//   * the Theorem 4.4 posterior the host can form from y;
//   * the Theorem 4.1 leakage probabilities of Protocol 2 and the
//     modulus-sizing rule that makes them negligible.

#include <cstdio>

#include "common/random.h"
#include "mpc/secure_division.h"
#include "net/network.h"
#include "privacy/gain_experiment.h"
#include "privacy/leakage.h"
#include "privacy/posterior.h"

using namespace psi;  // Example code only.

int main() {
  // --- 1. Protocol 3: the host computes a quotient from masked values. ---
  Network net;
  PartyId p1 = net.RegisterParty("P1");
  PartyId p2 = net.RegisterParty("P2");
  PartyId host = net.RegisterParty("H");
  Rng r1(1), r2(2);

  const uint64_t b_count = 3;  // b_ij: times v_j followed v_i.
  const uint64_t a_count = 8;  // a_i : actions v_i performed.
  SecureDivisionProtocol division(&net, p1, p2, host);
  double p_ij = division.Run(b_count, a_count, &r1, &r2, "demo.").ValueOrDie();
  std::printf("Protocol 3: H computed p_ij = %.4f (true %u/%u)\n", p_ij,
              3u, 8u);
  std::printf("  H saw masked values  r*b = %.4f,  r*a = %.4f\n",
              division.views().masked_a1, division.views().masked_a2);

  // --- 2. What H can believe about a_i after seeing y = r*a. ---
  const double y = division.views().masked_a2;
  auto analyzer = PosteriorAnalyzer::Create(UniformPrior(10)).ValueOrDie();
  auto posterior = analyzer.Posterior(y).ValueOrDie();
  std::printf(
      "\nTheorem 4.4 posterior over a_i in {0..10} given y = %.3f "
      "(uniform prior):\n  ",
      y);
  for (size_t x = 0; x <= 10; ++x) std::printf("%5.3f ", posterior[x]);
  std::printf("\n  (every positive value stays plausible — Theorem 4.3)\n");

  // --- 3. The Figure 1 experiment in miniature. ---
  Rng exp_rng(3);
  GainExperimentConfig cfg;
  cfg.trials_per_x = 200;
  auto gains = RunGainExperiment(UniformPrior(10), cfg, &exp_rng).ValueOrDie();
  std::printf(
      "\nGuessing-gain experiment (%zu trials): average gain %+0.3f, "
      "positive fraction %.2f\n",
      gains.gains.size(), gains.average_gain, gains.positive_fraction);

  // --- 4. Protocol 2 leakage and how to size the modulus S. ---
  std::printf("\nTheorem 4.1 — probability that P2 learns a bound on the "
              "sum x (A = 1000):\n");
  std::printf("%22s %18s\n", "S", "P(any P2 leak)");
  for (size_t bits : {16u, 32u, 64u, 128u}) {
    auto probs = ComputeLeakageProbabilities(500, BigUInt(1000),
                                             BigUInt::PowerOfTwo(bits))
                     .ValueOrDie();
    std::printf("%22s %18.3e\n", ("2^" + std::to_string(bits)).c_str(),
                probs.p2_lower + probs.p2_upper);
  }
  BigUInt s = RequiredModulusForBudget(BigUInt(1000), /*num_counters=*/100000,
                                       /*epsilon_log2=*/40);
  std::printf(
      "\nTo cap total leakage at 2^-40 across 100k parallel counters, "
      "choose S = 2^%zu\n(shares are then %zu-bit numbers — still cheap).\n",
      s.BitLength() - 1, s.BitLength() - 1);
  return 0;
}
