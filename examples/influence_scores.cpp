// User influence scores (Section 6): the alternative to the full influence
// maximization framework. H obtains every propagation graph PG(alpha)
// through Protocol 6, the action counts a_i through the Protocol 4
// machinery, and scores every user by the average size of its tau-influence
// sphere (Definition 3.3) — then ranks the top influencers.

#include <cstdio>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "influence/user_score.h"
#include "mpc/secure_user_score.h"

using namespace psi;  // Example code only.

int main() {
  constexpr size_t kUsers = 60;
  constexpr size_t kProviders = 3;
  constexpr size_t kActions = 80;

  Rng rng(99);
  SocialGraph graph = WattsStrogatz(&rng, kUsers, 3, 0.2).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.1, 0.6);
  CascadeParams cascade;
  cascade.num_actions = kActions;
  ActionLog log = GenerateCascades(&rng, graph, truth, cascade).ValueOrDie();
  std::vector<ActionLog> provider_logs =
      ExclusivePartition(&rng, log, kProviders).ValueOrDie();

  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers;
  std::vector<Rng> rng_store;
  for (size_t k = 0; k < kProviders; ++k) {
    providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.emplace_back(200 + k);
  }
  std::vector<Rng*> provider_rngs;
  for (auto& r : rng_store) provider_rngs.push_back(&r);
  Rng host_rng(5), pair_secret(6);

  SecureScoreConfig config;
  config.protocol6.rsa_bits = 512;
  config.protocol6.encryption = Protocol6Config::EncryptionMode::kHybrid;
  config.score_options.tau = 12;  // Max propagation time for a sphere.

  SecureUserScoreProtocol pipeline(&net, host, providers, config);
  std::vector<double> scores =
      pipeline.Run(graph, kActions, provider_logs, &host_rng, provider_rngs,
                   &pair_secret)
          .ValueOrDie();

  // Cross-check against the all-data-in-one-place baseline.
  std::vector<double> plain =
      ComputeUserInfluenceScores(graph, log, config.score_options)
          .ValueOrDie();
  double max_err = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    max_err = std::max(max_err, std::abs(scores[i] - plain[i]));
  }

  std::printf("tau = %llu influence scores for %zu users (max err vs "
              "plaintext: %.1e)\n\n",
              static_cast<unsigned long long>(config.score_options.tau),
              scores.size(), max_err);
  std::printf("Top influencers (score = avg sphere size over their "
              "actions):\n");
  std::printf("%6s %10s %14s %12s\n", "user", "score", "actions done",
              "out-degree");
  for (NodeId u : TopKUsers(scores, 10)) {
    std::printf("%6u %10.3f %14llu %12zu\n", u, scores[u],
                static_cast<unsigned long long>(
                    pipeline.revealed_action_counts()[u]),
                graph.OutDegree(u));
  }
  std::printf(
      "\nNote: H never saw a raw purchase record — only encrypted Delta\n"
      "vectors (relayed blindly by P1) and masked counter shares.\n");
  std::printf("Communication: %llu bytes over %llu rounds.\n",
              static_cast<unsigned long long>(net.Report().num_bytes),
              static_cast<unsigned long long>(net.Report().num_rounds));
  return 0;
}
