// Multi-platform influence learning — the Section 8 "multiple hosts"
// future-work setting, implemented as an extension.
//
// Two social platforms (think: a microblog and a photo network) each know a
// different slice of the real relationship graph. Three providers hold the
// purchase logs. One amortized protocol execution leaves *each* platform
// with the influence strengths of exactly its own links — neither platform
// learns the other's edge set, and no provider log leaves its owner.

#include <cstdio>
#include <memory>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "influence/link_influence.h"
#include "mpc/multi_host.h"

using namespace psi;  // Example code only.

int main() {
  constexpr size_t kUsers = 50;
  constexpr size_t kProviders = 3;
  constexpr size_t kActions = 80;

  // The (unobservable) real relationship graph drives the cascades.
  Rng rng(314);
  SocialGraph reality = BarabasiAlbert(&rng, kUsers, 3).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, reality, 0.1, 0.6);
  CascadeParams cascade;
  cascade.num_actions = kActions;
  ActionLog log = GenerateCascades(&rng, reality, truth, cascade).ValueOrDie();
  auto provider_logs = ExclusivePartition(&rng, log, kProviders).ValueOrDie();

  // Each platform observed ~55% of the real arcs (partially overlapping).
  std::vector<std::unique_ptr<SocialGraph>> platforms;
  for (int h = 0; h < 2; ++h) {
    auto g = std::make_unique<SocialGraph>(kUsers);
    for (const Arc& a : reality.arcs()) {
      if (rng.Bernoulli(0.55)) PSI_CHECK_OK(g->AddArc(a.from, a.to));
    }
    platforms.push_back(std::move(g));
  }
  std::printf("Platform A knows %zu arcs, platform B knows %zu arcs "
              "(of %zu real ones)\n",
              platforms[0]->num_arcs(), platforms[1]->num_arcs(),
              reality.num_arcs());

  Network net;
  std::vector<PartyId> hosts{net.RegisterParty("Platform A"),
                             net.RegisterParty("Platform B")};
  std::vector<PartyId> providers;
  std::vector<Rng> rng_store;
  for (size_t k = 0; k < kProviders; ++k) {
    providers.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    rng_store.emplace_back(100 + k);
  }
  std::vector<Rng*> provider_rngs;
  for (auto& r : rng_store) provider_rngs.push_back(&r);
  Rng hostA_rng(1), hostB_rng(2), pair_secret(3);
  std::vector<Rng*> host_rngs{&hostA_rng, &hostB_rng};

  Protocol4Config config;
  config.h = 4;
  MultiHostLinkInfluenceProtocol protocol(&net, hosts, providers, config);
  std::vector<const SocialGraph*> graph_ptrs{platforms[0].get(),
                                             platforms[1].get()};
  auto results = protocol.Run(graph_ptrs, kActions, provider_logs, host_rngs,
                              provider_rngs, &pair_secret)
                     .ValueOrDie();

  for (size_t h = 0; h < 2; ++h) {
    auto plain =
        ComputeLinkInfluence(log, platforms[h]->arcs(), kUsers, config.h)
            .ValueOrDie();
    double mae = MeanAbsoluteError(results[h], plain).ValueOrDie();
    double strongest = 0;
    size_t strongest_arc = 0;
    for (size_t e = 0; e < results[h].p.size(); ++e) {
      if (results[h].p[e] > strongest) {
        strongest = results[h].p[e];
        strongest_arc = e;
      }
    }
    std::printf(
        "Platform %c: %zu strengths learned (MAE vs plaintext %.1e); "
        "strongest link %u->%u at %.2f\n",
        static_cast<char>('A' + h), results[h].p.size(), mae,
        results[h].pairs[strongest_arc].from,
        results[h].pairs[strongest_arc].to, strongest);
  }
  auto report = net.Report();
  std::printf(
      "\nOne amortized execution: %llu rounds, %llu messages, %llu bytes\n"
      "(the m^2 share exchange was paid once for both platforms).\n",
      static_cast<unsigned long long>(report.num_rounds),
      static_cast<unsigned long long>(report.num_messages),
      static_cast<unsigned long long>(report.num_bytes));
  return 0;
}
