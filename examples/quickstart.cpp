// Quickstart: the smallest complete use of the library.
//
// A host H with a private social graph and two service providers with
// private purchase logs jointly compute the influence strength of every
// link (Protocol 4), and we verify at the end that the secure result equals
// what a trusted party with all the data would have computed.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "influence/link_influence.h"
#include "mpc/link_influence_protocol.h"

using namespace psi;  // Example code only; library code never does this.

int main() {
  // --- The world: a social graph at H, activity logs at the providers. ---
  Rng rng(2014);
  SocialGraph graph = ErdosRenyiArcs(&rng, /*num_nodes=*/30, /*num_arcs=*/120)
                          .ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.1, 0.6);
  CascadeParams cascade;
  cascade.num_actions = 50;  // 50 products propagate through the network.
  ActionLog unified_log =
      GenerateCascades(&rng, graph, truth, cascade).ValueOrDie();
  // Exclusive case: every product is sold by exactly one provider.
  std::vector<ActionLog> provider_logs =
      ExclusivePartition(&rng, unified_log, /*num_providers=*/2).ValueOrDie();

  // --- The parties. ---
  Network net;
  PartyId host = net.RegisterParty("H (social network)");
  std::vector<PartyId> providers{net.RegisterParty("P1 (book store)"),
                                 net.RegisterParty("P2 (music store)")};
  Rng host_rng(1), p1_rng(2), p2_rng(3);
  Rng pair_secret(4);  // P1/P2 pre-shared key material.
  std::vector<Rng*> provider_rngs{&p1_rng, &p2_rng};

  // --- Protocol 4: H learns p_ij for every arc of its graph. ---
  Protocol4Config config;
  config.h = 4;  // Memory window: follows within 4 time steps count.
  LinkInfluenceProtocol protocol(&net, host, providers, config);
  LinkInfluence secure =
      protocol.Run(graph, cascade.num_actions, provider_logs, &host_rng,
                   provider_rngs, &pair_secret)
          .ValueOrDie();

  // --- Verify against the plaintext baseline. ---
  LinkInfluence plain = ComputeLinkInfluence(unified_log, graph.arcs(),
                                             graph.num_nodes(), config.h)
                            .ValueOrDie();
  double mae = MeanAbsoluteError(secure, plain).ValueOrDie();

  std::printf("Secure link influence computed for %zu arcs.\n",
              secure.pairs.size());
  std::printf("First few strengths (arc: secure | plaintext):\n");
  for (size_t e = 0; e < 8 && e < secure.pairs.size(); ++e) {
    std::printf("  %2u -> %-2u : %.4f | %.4f\n", secure.pairs[e].from,
                secure.pairs[e].to, secure.p[e], plain.p[e]);
  }
  std::printf("Mean absolute error vs plaintext: %.2e (exact)\n", mae);
  std::printf("\nCommunication transcript:\n%s", net.Report().ToString().c_str());
  return 0;
}
