// Ablation A2 — the share modulus S versus the Theorem 4.1 leakage budget.
//
// Section 5.1.1 prescribes S >= A (1 + 2(n + q)/eps) to cap the probability
// that P2 or P3 learns any bound on any counter at eps. Larger S costs
// bandwidth (every share is log S bits). This bench sweeps the budget and
// reports modulus size, measured bytes, and — for deliberately tiny S —
// the empirically observed leakage frequency against the bound.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/secure_sum.h"
#include "privacy/leakage.h"

namespace psi {
namespace bench {
namespace {

void SweepBudget() {
  std::printf(
      "\n[A2a] Protocol 4 bandwidth vs leakage budget (m=3, n=200, |E|=1000)\n");
  std::printf("%14s %12s %12s %16s\n", "eps = 2^-k", "log S bits", "bytes",
              "bytes vs k=10");
  uint64_t base_bytes = 0;
  for (uint64_t k : {10u, 20u, 40u, 80u, 160u}) {
    auto world = MakeWorld(3, 200, 1000, 80, /*seed=*/BenchSeed(33));
  World& w = *world;
    Protocol4Config cfg;
    cfg.epsilon_log2 = k;
    LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
    PSI_CHECK_OK(proto.Run(*w.graph, 80, w.provider_logs, w.host_rng.get(),
                           w.RngPtrs(), w.pair_secret.get())
                     .status());
    uint64_t bytes = w.net.Report().num_bytes;
    if (base_bytes == 0) base_bytes = bytes;
    std::printf("%14" PRIu64 " %12zu %12" PRIu64 " %15.2fx\n", k,
                proto.modulus().BitLength(), bytes,
                static_cast<double>(bytes) / static_cast<double>(base_bytes));
  }
  std::printf(
      "-> halving the leakage probability costs one extra bit per share:\n"
      "   privacy is exponentially cheap in bandwidth (Theorem 4.1).\n");
}

void EmpiricalLeakage() {
  std::printf(
      "\n[A2b] Empirical Protocol 2 leakage vs the Theorem 4.1 rates\n"
      "(A = 10, x = 5, 4000 runs per S)\n");
  std::printf("%10s %16s %16s %16s %16s\n", "S", "P2 lower (emp)",
              "P2 lower (thm)", "P2 upper (emp)", "P2 upper (thm)");
  for (uint64_t s_val : {64u, 256u, 1024u, 4096u}) {
    Network net;
    PartyId host = net.RegisterParty("H");
    std::vector<PartyId> providers{net.RegisterParty("P1"),
                                   net.RegisterParty("P2")};
    Rng r1(1), r2(2), secret(3);
    std::vector<Rng*> rngs{&r1, &r2};
    SecureSumConfig cfg;
    cfg.input_bound_a = BigUInt(10);
    cfg.modulus_s = BigUInt(s_val);
    cfg.use_secret_permutation = false;
    size_t lower = 0, upper = 0;
    const size_t kTrials = 4000;
    for (size_t t = 0; t < kTrials; ++t) {
      SecureSumProtocol proto(&net, providers, host, cfg);
      auto shares = proto.RunProtocol2({{2}, {3}}, rngs, &secret, "a2.")
                        .ValueOrDie();
      bool corrected = proto.views().p2_correction[0];
      BigUInt s2_pre = corrected
                           ? (shares.s2[0] + BigInt(BigUInt(s_val))).magnitude()
                           : shares.s2[0].magnitude();
      LeakKind kind = ClassifyP2Observation(s2_pre, corrected, BigUInt(10));
      lower += kind == LeakKind::kLowerBound;
      upper += kind == LeakKind::kUpperBound;
    }
    auto thm = ComputeLeakageProbabilities(5, BigUInt(10), BigUInt(s_val))
                   .ValueOrDie();
    std::printf("%10" PRIu64 " %16.4f %16.4f %16.4f %16.4f\n", s_val,
                static_cast<double>(lower) / kTrials, thm.p2_lower,
                static_cast<double>(upper) / kTrials, thm.p2_upper);
  }
  std::printf("-> measured rates track x/S and (A-x)/S and vanish as S grows.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Ablation A2 — share modulus sizing vs leakage (Thm 4.1, Sec 5.1.1)");
  psi::bench::SweepBudget();
  psi::bench::EmpiricalLeakage();
  return 0;
}
