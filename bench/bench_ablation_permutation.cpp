// Ablation A3 — the secret permutation in batched Protocol 2.
//
// Section 5.1: when P1/P2 run Protocol 2 for many counters in parallel, the
// third party may learn a bound on a few of them (Theorem 4.1). By permuting
// the transmitted counter order with a secret permutation, a leaked bound
// cannot be attributed to any specific counter. This bench quantifies
// attributability: with a deliberately small S (frequent leaks), how many of
// the slots on which P3 learned something can it map back to the right
// counter?

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "mpc/secure_sum.h"
#include "privacy/leakage.h"

namespace psi {
namespace bench {
namespace {

void Run() {
  const size_t kCounters = 512;
  const uint64_t kSVal = 64;  // Tiny S: leaks are common, by design.
  const uint64_t kBound = 10;

  for (bool use_permutation : {false, true}) {
    Network net;
    PartyId host = net.RegisterParty("H");
    std::vector<PartyId> providers{net.RegisterParty("P1"),
                                   net.RegisterParty("P2")};
    Rng r1(1), r2(2), secret(3), inputs_rng(4);
    std::vector<Rng*> rngs{&r1, &r2};

    SecureSumConfig cfg;
    cfg.input_bound_a = BigUInt(kBound);
    cfg.modulus_s = BigUInt(kSVal);
    cfg.use_secret_permutation = use_permutation;

    std::vector<std::vector<uint64_t>> inputs(
        2, std::vector<uint64_t>(kCounters));
    for (size_t c = 0; c < kCounters; ++c) {
      inputs[0][c] = inputs_rng.UniformU64(5);
      inputs[1][c] = inputs_rng.UniformU64(5);
    }
    SecureSumProtocol proto(&net, providers, host, cfg);
    auto shares = proto.RunProtocol2(inputs, rngs, &secret, "a3.")
                      .ValueOrDie();
    (void)shares;

    // P3's view: slot t carried (s1, s2 + r). Count slots with a leak, and
    // how scrambled the transmitted counter order is: when the permutation
    // is off, slot t *is* counter t (P3 can attribute every leaked bound);
    // when on, the slot only matches its counter by coincidence of share
    // values (Z_S collisions), never by position.
    const auto& v = proto.views();
    size_t leaks = 0;
    for (size_t t = 0; t < kCounters; ++t) {
      BigUInt y = v.third_party_s1[t] + v.third_party_masked_s2[t];
      BigUInt z = (y >= BigUInt(kSVal)) ? y - BigUInt(kSVal) : y;
      LeakKind kind = ClassifyP3Observation(z, BigUInt(kBound), BigUInt(kSVal));
      if (kind != LeakKind::kNothing) ++leaks;
    }
    size_t positionally_aligned = 0;
    for (size_t t = 0; t < kCounters; ++t) {
      // Compare the transmitted slot content against the counter that the
      // protocol specification places there without a permutation.
      if (v.third_party_s1[t] == v.player_share_vectors[0][t]) {
        ++positionally_aligned;
      }
    }
    std::printf(
        "permutation %-3s : %4zu / %zu slots leaked a bound; transmitted\n"
        "                  order positionally aligned with counter order for\n"
        "                  %zu / %zu slots (%.1f%%)\n",
        use_permutation ? "ON" : "OFF", leaks, kCounters,
        positionally_aligned, kCounters,
        100.0 * static_cast<double>(positionally_aligned) /
            static_cast<double>(kCounters));
  }
  std::printf(
      "\n-> with the permutation OFF, slot order equals counter order, so\n"
      "   every leaked bound points at its counter; ON, alignment drops to\n"
      "   the Z_S collision baseline and a leaked bound cannot be attributed\n"
      "   — which is why Section 5.1 calls the residual leakage 'useless'.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Ablation A3 — secret permutation in batched Protocol 2 (Section 5.1)");
  psi::bench::Run();
  return 0;
}
