// Shared scaffolding for the table/figure benches: builds a synthetic world
// (graph + cascades + provider partition) and a party roster on a fresh
// metered network.

#ifndef PSI_BENCH_BENCH_UTIL_H_
#define PSI_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "common/logging.h"
#include "common/random.h"
#include "graph/generators.h"
#include "net/network.h"

namespace psi {
namespace bench {

/// \brief A complete synthetic deployment for one bench configuration.
struct World {
  std::unique_ptr<SocialGraph> graph;
  GroundTruthInfluence truth;
  ActionLog log;
  std::vector<ActionLog> provider_logs;
  Network net;
  PartyId host;
  std::vector<PartyId> providers;
  std::vector<std::unique_ptr<Rng>> provider_rngs;
  std::unique_ptr<Rng> host_rng;
  std::unique_ptr<Rng> pair_secret;
  std::unique_ptr<Rng> class_secret;

  std::vector<Rng*> RngPtrs() {
    std::vector<Rng*> out;
    for (auto& r : provider_rngs) out.push_back(r.get());
    return out;
  }
};

/// \brief The bench RNG seed: PSI_BENCH_SEED when set to a valid integer,
/// `fallback` (each bench's historical constant) otherwise. Lets a sweep
/// re-run every bench on fresh worlds without recompiling.
inline uint64_t BenchSeed(uint64_t fallback = 42) {
  const char* env = std::getenv("PSI_BENCH_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return v;
    std::fprintf(stderr, "PSI_BENCH_SEED='%s' is not an integer; using %llu\n",
                 env, static_cast<unsigned long long>(fallback));
  }
  return fallback;
}

inline std::unique_ptr<World> MakeWorld(size_t num_providers,
                                        size_t num_users, size_t num_arcs,
                                        size_t num_actions,
                                        uint64_t seed = BenchSeed(42)) {
  auto world = std::make_unique<World>();
  World& w = *world;
  Rng rng(seed);
  w.graph = std::make_unique<SocialGraph>(
      ErdosRenyiArcs(&rng, num_users, num_arcs).ValueOrDie());
  w.truth = GroundTruthInfluence::Random(&rng, *w.graph, 0.05, 0.6);
  CascadeParams params;
  params.num_actions = num_actions;
  params.seeds_per_action = 2;
  w.log = GenerateCascades(&rng, *w.graph, w.truth, params).ValueOrDie();
  w.provider_logs =
      ExclusivePartition(&rng, w.log, num_providers).ValueOrDie();
  w.host = w.net.RegisterParty("H");
  for (size_t k = 0; k < num_providers; ++k) {
    w.providers.push_back(w.net.RegisterParty("P" + std::to_string(k + 1)));
    w.provider_rngs.push_back(std::make_unique<Rng>(seed * 100 + k));
  }
  w.host_rng = std::make_unique<Rng>(seed + 1);
  w.pair_secret = std::make_unique<Rng>(seed + 2);
  w.class_secret = std::make_unique<Rng>(seed + 3);
  return world;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace psi

#endif  // PSI_BENCH_BENCH_UTIL_H_
