// Ablation A6 — influence-learning estimators (Section 2's discussion).
//
// The paper chooses the Goyal et al. frequency estimator (Eq. 1 / Eq. 2)
// over Saito et al.'s EM for three cited reasons: EM's overfitting risk,
// its scalability (every arc updated every iteration), and its awkwardness
// for MPC. This bench quantifies the accuracy side of that trade-off on
// synthetic IC cascades with known ground truth, sweeping the log size
// (the paper's motivation for pooling provider data: more data => less
// overfitting).

#include <chrono>
#include <cstdio>

#include "actionlog/generator.h"
#include "bench_util.h"
#include "common/stats.h"
#include "graph/generators.h"
#include "influence/em_learner.h"
#include "influence/evaluation.h"
#include "influence/link_influence.h"

namespace psi {
namespace bench {
namespace {

void Run() {
  constexpr size_t kUsers = 60;
  constexpr size_t kArcs = 300;
  constexpr uint64_t kWindow = 3;

  Rng rng(BenchSeed(2718));
  auto graph = ErdosRenyiArcs(&rng, kUsers, kArcs).ValueOrDie();
  auto truth = GroundTruthInfluence::Random(&rng, graph, 0.05, 0.9);

  std::printf(
      "\nAgreement with the generating ground truth (Pearson correlation,\n"
      "Kendall tau, top-30-link overlap) and wall time, as the action log\n"
      "grows (the pooling motivation):\n\n");
  std::printf("%8s | %7s %7s %7s | %6s %6s | %6s %6s | %10s %10s\n",
              "actions", "r Eq1", "r Eq2", "r EM", "tau1", "tauEM", "t30-1",
              "t30-EM", "Eq1 (s)", "EM (s)");

  for (size_t actions : {25u, 50u, 100u, 200u, 400u, 800u}) {
    CascadeParams params;
    params.num_actions = actions;
    params.max_delay = kWindow;
    Rng gen(99);
    auto log = GenerateCascades(&gen, graph, truth, params).ValueOrDie();

    auto t0 = std::chrono::steady_clock::now();
    auto eq1 = ComputeLinkInfluence(log, graph.arcs(), kUsers, kWindow)
                   .ValueOrDie();
    double eq1_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    auto eq2 = ComputeWeightedLinkInfluence(
                   log, graph.arcs(), kUsers,
                   TemporalWeights::ExponentialDecay(kWindow, 0.5))
                   .ValueOrDie();

    EmConfig em_cfg;
    em_cfg.h = kWindow;
    auto t1 = std::chrono::steady_clock::now();
    auto em = LearnInfluenceEm(graph, log, em_cfg).ValueOrDie();
    double em_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();

    std::printf("%8zu | %7.3f %7.3f %7.3f | %6.3f %6.3f | %6.2f %6.2f | "
                "%10.5f %10.5f\n",
                actions, PearsonCorrelation(truth.prob, eq1.p),
                PearsonCorrelation(truth.prob, eq2.p),
                PearsonCorrelation(truth.prob, em.influence.p),
                KendallTau(truth.prob, eq1.p).ValueOrDie(),
                KendallTau(truth.prob, em.influence.p).ValueOrDie(),
                TopKOverlap(truth.prob, eq1.p, 30).ValueOrDie(),
                TopKOverlap(truth.prob, em.influence.p, 30).ValueOrDie(),
                eq1_secs, em_secs);
  }

  std::printf(
      "\n-> all estimators improve with more data (the paper's case for\n"
      "   conjoining provider logs). On clean model-matched cascades EM is\n"
      "   markedly more accurate — but it costs ~10x CPU here and updates\n"
      "   every arc on every iteration, which is exactly why the paper deems\n"
      "   it impractical for the secure setting and adopts the one-shot\n"
      "   frequency estimator (Section 2).\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Ablation A6 — frequency estimators vs EM (Section 2 trade-off)");
  psi::bench::Run();
  return 0;
}
