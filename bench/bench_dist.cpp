// Distributed-execution bench: what running stage bodies on psid daemons
// costs over hairpin execution, and what a mid-session daemon loss costs.
//
// Prints one JSON document (google-benchmark layout, so
// tools/check_bench_dist.py can index the rows by name):
//
//   dist/local_session   — Protocol 6 as a checkpointed session on the
//                          in-process simulator: the metering control.
//   dist/hairpin_session — the same session through a psid daemon, stage
//                          programs executed host-side (hairpin): protocol
//                          metering must match the simulator to the byte.
//   dist/remote_session  — the same session with every encrypt-P<k> stage
//                          executed by the daemon's StageExecutor. The
//                          protocol transcript must still match the
//                          simulator bitwise; the exec channel's own bytes
//                          are the measured remote-stage overhead.
//   dist/remote_resume   — the daemon is torn down and replaced at the
//                          relay stage; the session must recover with
//                          exactly one resume handshake round (matching
//                          SessionResumeCosts to the message) and zero
//                          recomputed checkpointed crypto operations.
//
// Every counter except the *_ns fields is a deterministic meter (protocol
// traffic, exec frame bytes, resume handshake messages), so the committed
// BENCH_dist.json baseline gates regressions machine independently.
// Wall-clock latencies are reported for eyeballing only.

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "graph/generators.h"
#include "mpc/propagation_protocol.h"
#include "mpc/remote_exec.h"
#include "mpc/session.h"
#include "net/cost_model.h"
#include "net/daemon.h"
#include "net/network.h"
#include "net/socket_transport.h"

namespace psi {
namespace bench {
namespace {

constexpr size_t kProviders = 3;
constexpr size_t kUsers = 14;
constexpr size_t kArcs = 40;
constexpr size_t kActions = 8;
constexpr uint64_t kWorldSeed = 88;

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

SocketTransportConfig BenchConfig(const std::string& session) {
  SocketTransportConfig config;
  config.seed = 31;
  config.session_name = session;
  config.recv_timeout_ms = 2000;
  config.connect_timeout_ms = 1000;
  config.handshake_timeout_ms = 1000;
  // Long heartbeat spacing: probe counts depend on wall-clock timing, so
  // the bench keeps probes out of the measured window entirely.
  config.heartbeat_interval_ms = 500;
  config.heartbeat_timeout_ms = 5000;
  config.max_reconnect_attempts = 4;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 20;
  return config;
}

/// An in-process psid daemon, execution engine included, on its own
/// serving thread. `abrupt_stop` zeroes the drain grace so StopAndJoin()
/// drops connections without a goodbye — the client observes a dead peer,
/// exactly like a crash.
class DaemonThread {
 public:
  explicit DaemonThread(uint16_t port = 0, bool abrupt_stop = false) {
    RegisterPropagationStagePrograms();
    PsidConfig config;
    config.hosted_parties = {"P1", "P2", "P3"};
    if (abrupt_stop) config.drain_grace_ms = 0;
    config.exec_handler = executor_.Handler();
    daemon_ = std::make_unique<PsidDaemon>(config);
    port_ = daemon_->Listen(port).ValueOrDie();
    thread_ = std::thread([this] {
      const Status served = daemon_->Run();
      (void)served;
    });
  }
  ~DaemonThread() { StopAndJoin(); }

  uint16_t port() const { return port_; }
  const StageExecutorStats& exec_stats() const { return executor_.stats(); }

  void StopAndJoin() {
    if (daemon_ == nullptr) return;
    daemon_->Stop();
    thread_.join();
    // Destroying the daemon releases the listener so a successor can bind
    // the same port (a stopped daemon object still holds the fd).
    daemon_.reset();
  }

 private:
  StageExecutor executor_;  // Must outlive the daemon's serving thread.
  std::unique_ptr<PsidDaemon> daemon_;
  std::thread thread_;
  uint16_t port_ = 0;
};

struct World {
  std::unique_ptr<SocialGraph> graph;
  std::vector<ActionLog> provider_logs;
};

World MakeWorld() {
  World w;
  Rng rng(kWorldSeed);
  w.graph = std::make_unique<SocialGraph>(
      ErdosRenyiArcs(&rng, kUsers, kArcs).ValueOrDie());
  auto truth = GroundTruthInfluence::Random(&rng, *w.graph, 0.1, 0.7);
  CascadeParams params;
  params.num_actions = kActions;
  params.seeds_per_action = 2;
  ActionLog log = GenerateCascades(&rng, *w.graph, truth, params).ValueOrDie();
  w.provider_logs = ExclusivePartition(&rng, log, kProviders).ValueOrDie();
  return w;
}

struct Parties {
  PartyId host;
  std::vector<PartyId> providers;
};

Parties RegisterParties(Network* net) {
  Parties p;
  p.host = net->RegisterParty("H");
  for (size_t k = 0; k < kProviders; ++k) {
    p.providers.push_back(net->RegisterParty("P" + std::to_string(k + 1)));
  }
  return p;
}

struct SessionOutcome {
  bool ok = false;
  std::vector<std::array<uint64_t, 4>> arcs;  // Canonicalized output.
  TrafficReport traffic;
  SessionStats stats;
  double real_time_ns = 0.0;
};

/// One Protocol 6 session run with fixed seeds: any two completed runs, on
/// any backend, must agree bitwise on `arcs`.
SessionOutcome RunSession(const World& w, Network* net, const Parties& p,
                          SessionOrchestrator* orchestrator) {
  SessionOutcome out;
  Protocol6Config cfg;
  cfg.rsa_bits = 384;
  cfg.encryption = Protocol6Config::EncryptionMode::kHybrid;
  cfg.obfuscation_factor = 1.5;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < kProviders; ++k) {
    rngs.push_back(std::make_unique<Rng>(2000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(601);
  PropagationGraphProtocol proto(net, p.host, p.providers, cfg);
  RetryPolicy retry;  // Ignored: an orchestrator is always injected here.
  auto start = std::chrono::steady_clock::now();
  auto result = proto.RunSession(*w.graph, kActions, w.provider_logs,
                                 &host_rng, rng_ptrs, retry, &out.stats,
                                 orchestrator);
  out.real_time_ns = ElapsedNs(start);
  if (!result.ok()) {
    std::fprintf(stderr, "FAIL: session: %s\n",
                 result.status().message().c_str());
    return out;
  }
  const Protocol6Output& output = result.ValueOrDie();
  for (size_t a = 0; a < output.graphs.size(); ++a) {
    for (NodeId v = 0; v < output.graphs[a].num_nodes(); ++v) {
      for (const auto& arc : output.graphs[a].OutArcs(v)) {
        out.arcs.push_back({a, static_cast<uint64_t>(v),
                            static_cast<uint64_t>(arc.to), arc.delta_t});
      }
    }
  }
  std::sort(out.arcs.begin(), out.arcs.end());
  out.traffic = net->Report();
  out.ok = true;
  return out;
}

bool SameTranscript(const TrafficReport& a, const TrafficReport& b) {
  return a.num_messages == b.num_messages && a.num_bytes == b.num_bytes &&
         a.num_payload_bytes == b.num_payload_bytes;
}

void PrintCounter(const char* key, uint64_t value) {
  std::printf("      \"%s\": %" PRIu64 ",\n", key, value);
}

int Run() {
  const World w = MakeWorld();

  // --- Control: the in-process simulator. ---------------------------------
  Network sim;
  Parties sim_parties = RegisterParties(&sim);
  SessionOrchestrator local_orch(RetryPolicy{});
  SessionOutcome local = RunSession(w, &sim, sim_parties, &local_orch);
  if (!local.ok) return 1;

  // --- Hairpin: daemon routes frames, the host runs every stage body. -----
  DaemonThread hairpin_daemon;
  SocketNetwork hairpin_net(BenchConfig("bench-dist-hairpin"));
  Parties hairpin_parties = RegisterParties(&hairpin_net);
  Status connected = hairpin_net.ConnectDaemon(
      "127.0.0.1", hairpin_daemon.port(), hairpin_parties.providers);
  if (!connected.ok()) {
    std::fprintf(stderr, "FAIL: connect: %s\n", connected.message().c_str());
    return 1;
  }
  SessionOrchestrator hairpin_orch(RetryPolicy{});
  SessionOutcome hairpin =
      RunSession(w, &hairpin_net, hairpin_parties, &hairpin_orch);
  if (!hairpin.ok) return 1;
  const TransportStats hairpin_transport = hairpin_net.transport_stats();
  hairpin_net.Shutdown();
  hairpin_daemon.StopAndJoin();

  // --- Remote: the daemon's StageExecutor runs every encrypt stage. -------
  DaemonThread remote_daemon;
  SocketNetwork remote_net(BenchConfig("bench-dist-remote"));
  Parties remote_parties = RegisterParties(&remote_net);
  connected = remote_net.ConnectDaemon("127.0.0.1", remote_daemon.port(),
                                       remote_parties.providers);
  if (!connected.ok()) {
    std::fprintf(stderr, "FAIL: connect: %s\n", connected.message().c_str());
    return 1;
  }
  RemoteExecPolicy exec_policy;
  exec_policy.backoff_base_ms = 1;
  exec_policy.backoff_max_ms = 20;
  RemoteSessionOrchestrator remote_orch(RetryPolicy{}, exec_policy);
  SessionOutcome remote =
      RunSession(w, &remote_net, remote_parties, &remote_orch);
  if (!remote.ok) return 1;
  const RemoteExecStats remote_exec = remote_orch.exec_stats();
  const TransportStats remote_transport = remote_net.transport_stats();
  const StageExecutorStats daemon_exec = remote_daemon.exec_stats();
  remote_net.Shutdown();
  remote_daemon.StopAndJoin();

  // --- Resume: tear the daemon down at the relay stage, replace it. -------
  auto resume_daemon =
      std::make_unique<DaemonThread>(0, /*abrupt_stop=*/true);
  const uint16_t resume_port = resume_daemon->port();
  SocketNetwork resume_net(BenchConfig("bench-dist-resume"));
  Parties resume_parties = RegisterParties(&resume_net);
  connected = resume_net.ConnectDaemon("127.0.0.1", resume_port,
                                       resume_parties.providers);
  if (!connected.ok()) {
    std::fprintf(stderr, "FAIL: connect: %s\n", connected.message().c_str());
    return 1;
  }
  RetryPolicy resume_retry;
  resume_retry.max_attempts = 5;
  RemoteSessionOrchestrator resume_orch(resume_retry, exec_policy);
  bool swapped = false;
  resume_orch.SetStageObserver([&](uint32_t, const std::string& name) {
    if (name == "relay" && !swapped) {
      swapped = true;
      // The encrypt checkpoints are committed host-side by now; losing the
      // daemon at a wire stage forces exactly one session-level resume.
      resume_daemon->StopAndJoin();
      resume_daemon = std::make_unique<DaemonThread>(resume_port);
    }
  });
  SessionOutcome resumed =
      RunSession(w, &resume_net, resume_parties, &resume_orch);
  if (!resumed.ok) return 1;
  if (!swapped) {
    std::fprintf(stderr, "FAIL: relay stage never observed\n");
    return 1;
  }
  const TransportStats resume_transport = resume_net.transport_stats();
  const RemoteExecStats resume_exec = resume_orch.exec_stats();
  resume_net.Shutdown();
  resume_daemon->StopAndJoin();

  // Analytic resume cost: one handshake round over every ordered pair.
  SessionResumeCostParams resume_params;
  resume_params.num_parties = kProviders + 1;
  auto resume_model = SessionResumeCosts(resume_params);
  if (!resume_model.ok()) {
    std::fprintf(stderr, "FAIL: resume model: %s\n",
                 resume_model.status().message().c_str());
    return 1;
  }

  // --- Report. ------------------------------------------------------------
  std::printf(
      "{\n"
      "  \"context\": {\n"
#ifdef NDEBUG
      "    \"psi_build_type\": \"release\",\n"
#else
      "    \"psi_build_type\": \"debug\",\n"
#endif
      "    \"bench\": \"bench_dist\",\n"
      "    \"providers\": %zu,\n"
      "    \"users\": %zu,\n"
      "    \"actions\": %zu,\n"
      "    \"world_seed\": %" PRIu64 "\n"
      "  },\n"
      "  \"benchmarks\": [\n",
      kProviders, kUsers, kActions, kWorldSeed);

  std::printf(
      "    {\n"
      "      \"name\": \"dist/local_session\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      local.real_time_ns);
  PrintCounter("wire_messages", local.traffic.num_messages);
  PrintCounter("wire_bytes", local.traffic.num_bytes);
  PrintCounter("wire_payload_bytes", local.traffic.num_payload_bytes);
  PrintCounter("crypto_ops_total", local.stats.crypto_ops_total);
  std::printf("      \"stages_run\": %" PRIu64 "\n    },\n",
              local.stats.stages_run);

  std::printf(
      "    {\n"
      "      \"name\": \"dist/hairpin_session\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      hairpin.real_time_ns);
  PrintCounter("outputs_match", hairpin.arcs == local.arcs ? 1 : 0);
  PrintCounter("metering_matches_simulator",
               SameTranscript(hairpin.traffic, local.traffic) ? 1 : 0);
  PrintCounter("wire_messages", hairpin.traffic.num_messages);
  PrintCounter("wire_bytes", hairpin.traffic.num_bytes);
  PrintCounter("frames_relayed", hairpin_transport.frames_relayed);
  std::printf("      \"exec_calls\": %" PRIu64 "\n    },\n",
              hairpin_transport.exec_calls);

  std::printf(
      "    {\n"
      "      \"name\": \"dist/remote_session\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      remote.real_time_ns);
  PrintCounter("outputs_match", remote.arcs == local.arcs ? 1 : 0);
  PrintCounter("metering_matches_simulator",
               SameTranscript(remote.traffic, local.traffic) ? 1 : 0);
  PrintCounter("wire_messages", remote.traffic.num_messages);
  PrintCounter("wire_bytes", remote.traffic.num_bytes);
  PrintCounter("remote_stages", remote_exec.remote_stages);
  PrintCounter("degraded_to_local", remote_exec.degraded_to_local);
  PrintCounter("timeouts", remote_exec.timeouts);
  PrintCounter("remote_crypto_ops", remote_exec.remote_crypto_ops);
  PrintCounter("daemon_crypto_ops", daemon_exec.crypto_ops);
  PrintCounter("exec_calls", remote_transport.exec_calls);
  PrintCounter("exec_bytes_tx", remote_transport.exec_bytes_tx);
  std::printf("      \"exec_bytes_rx\": %" PRIu64 "\n    },\n",
              remote_transport.exec_bytes_rx);

  std::printf(
      "    {\n"
      "      \"name\": \"dist/remote_resume\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      resumed.real_time_ns);
  PrintCounter("outputs_match", resumed.arcs == local.arcs ? 1 : 0);
  PrintCounter("resumes", resumed.stats.resumes);
  PrintCounter("handshake_messages", resumed.stats.handshake_messages);
  PrintCounter("model_handshake_messages", resume_model.ValueOrDie().nm);
  PrintCounter("model_handshake_rounds", resume_model.ValueOrDie().nr);
  PrintCounter("crypto_ops_recomputed", resumed.stats.crypto_ops_recomputed);
  PrintCounter("crypto_ops_saved", resumed.stats.crypto_ops_saved);
  PrintCounter("remote_stages", resume_exec.remote_stages);
  PrintCounter("dead_peers_detected", resume_transport.dead_peers_detected);
  std::printf("      \"reconnects\": %" PRIu64 "\n    }\n",
              resume_transport.reconnects);

  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() { return psi::bench::Run(); }
