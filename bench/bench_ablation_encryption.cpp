// Ablation A4 — Protocol 6 encryption modes.
//
// The paper accounts one z-bit ciphertext per encrypted integer (z = 1024
// for RSA; Table 2). A production system would hybrid-encrypt each Delta
// vector instead (one RSA encapsulation + a stream cipher), shrinking both
// bandwidth and CPU time dramatically. This bench measures both modes plus
// the Paillier-based aggregation extension against Benaloh Protocol 1.

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "mpc/homomorphic_sum.h"
#include "mpc/propagation_protocol.h"
#include "mpc/secure_sum.h"

namespace psi {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void EncryptionModes() {
  std::printf(
      "\n[A4] Protocol 6: per-integer RSA vs hybrid KEM (m=2, A=30, z=512)\n");
  std::printf("%14s %14s %12s %12s\n", "mode", "bytes", "wall (s)",
              "vs hybrid");
  uint64_t hybrid_bytes = 0;
  double hybrid_time = 0;
  for (auto mode : {Protocol6Config::EncryptionMode::kHybrid,
                    Protocol6Config::EncryptionMode::kPerInteger}) {
    auto world = MakeWorld(2, 50, 200, 30, /*seed=*/BenchSeed(11));
  World& w = *world;
    Protocol6Config cfg;
    cfg.rsa_bits = 512;
    cfg.encryption = mode;
    PropagationGraphProtocol proto(&w.net, w.host, w.providers, cfg);
    auto start = std::chrono::steady_clock::now();
    PSI_CHECK_OK(proto.Run(*w.graph, 30, w.provider_logs, w.host_rng.get(),
                           w.RngPtrs())
                     .status());
    double secs = Seconds(start);
    uint64_t bytes = w.net.Report().num_bytes;
    bool is_hybrid = mode == Protocol6Config::EncryptionMode::kHybrid;
    if (is_hybrid) {
      hybrid_bytes = bytes;
      hybrid_time = secs;
    }
    std::printf("%14s %14" PRIu64 " %12.3f %9.1fx/%.0fx\n",
                is_hybrid ? "hybrid" : "per-integer", bytes, secs,
                static_cast<double>(bytes) /
                    static_cast<double>(hybrid_bytes ? hybrid_bytes : bytes),
                hybrid_time > 0 ? secs / hybrid_time : 1.0);
  }
  std::printf(
      "-> Table 2's per-integer accounting is the upper envelope; hybrid\n"
      "   encryption removes the q-fold ciphertext blow-up entirely.\n");
}

void AggregationAlternatives() {
  std::printf(
      "\n[A4b] Share aggregation: Benaloh Protocol 1 vs Paillier extension\n"
      "(m providers, 64 counters)\n");
  std::printf("%4s | %10s %12s %10s | %10s %12s %10s\n", "m", "P1 msgs",
              "P1 bytes", "P1 (s)", "Hom msgs", "Hom bytes", "Hom (s)");
  for (size_t m : {3u, 5u, 8u}) {
    // Benaloh.
    Network net1;
    PartyId host = net1.RegisterParty("H");
    std::vector<PartyId> players;
    std::vector<std::unique_ptr<Rng>> rng_store;
    std::vector<Rng*> rngs;
    for (size_t k = 0; k < m; ++k) {
      players.push_back(net1.RegisterParty("P" + std::to_string(k)));
      rng_store.push_back(std::make_unique<Rng>(100 + k));
      rngs.push_back(rng_store.back().get());
    }
    std::vector<std::vector<uint64_t>> inputs(m,
                                              std::vector<uint64_t>(64, 3));
    SecureSumConfig cfg;
    cfg.input_bound_a = BigUInt(64 * 10);
    cfg.modulus_s = BigUInt::PowerOfTwo(512);  // Match Paillier modulus size.
    SecureSumProtocol benaloh(&net1, players, host, cfg);
    auto t1 = std::chrono::steady_clock::now();
    PSI_CHECK_OK(benaloh.RunProtocol1(inputs, rngs, "b.").status());
    double s1 = Seconds(t1);
    auto r1 = net1.Report();

    // Paillier (shares mod N, 512-bit N).
    Network net2;
    std::vector<PartyId> players2;
    for (size_t k = 0; k < m; ++k) {
      players2.push_back(net2.RegisterParty("P" + std::to_string(k)));
    }
    HomomorphicSumProtocol hom(&net2, players2, 512);
    auto t2 = std::chrono::steady_clock::now();
    PSI_CHECK_OK(hom.Run(inputs, rngs, "h.").status());
    double s2 = Seconds(t2);
    auto r2 = net2.Report();

    std::printf("%4zu | %10" PRIu64 " %12" PRIu64 " %10.4f | %10" PRIu64
                " %12" PRIu64 " %10.4f\n",
                m, r1.num_messages, r1.num_bytes, s1, r2.num_messages,
                r2.num_bytes, s2);
  }
  std::printf(
      "-> the homomorphic variant sends O(m) messages instead of O(m^2) but\n"
      "   pays Paillier exponentiations: bandwidth-bound deployments prefer\n"
      "   it, CPU-bound ones prefer Benaloh.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Ablation A4 — encryption/aggregation alternatives (Sec 7.1.2 + ext.)");
  psi::bench::EncryptionModes();
  psi::bench::AggregationAlternatives();
  return 0;
}
