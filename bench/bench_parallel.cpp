// Parallel-engine benchmarks: ParallelFor dispatch overhead, thread-count
// scaling of the batched Paillier paths, and the parallelized protocol and
// EM hot loops. Emit the committed baseline with:
//
//   ./bench/bench_parallel --benchmark_out=BENCH_parallel.json
//       --benchmark_out_format=json  (both flags on one command line)
//
// Benchmarks take the thread count as the trailing benchmark argument and
// set it on the global pool, so one run sweeps the scaling curve. Results
// (ciphertexts, shares, probabilities) are bit-identical across thread
// counts by construction — the sweep shows wall-clock only.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "bench_main.h"

#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "common/thread_pool.h"
#include "crypto/paillier.h"
#include "graph/generators.h"
#include "influence/em_learner.h"
#include "mpc/homomorphic_sum.h"

namespace psi {
namespace {

// Thread counts to sweep. On a single-core container the >1 entries measure
// the dispatch overhead of the pool rather than any speedup.
void ThreadArgs(benchmark::internal::Benchmark* b) {
  for (int t : {1, 2, 4, 8}) b->Arg(t);
}

void BM_ParallelForDispatch(benchmark::State& state) {
  // Overhead of fanning a trivial body out over the pool, per 4096 indices.
  ThreadPool::Global().SetNumThreads(static_cast<size_t>(state.range(0)));
  constexpr size_t kN = 4096;
  std::vector<uint64_t> out(kN);
  for (auto _ : state) {
    ParallelFor(kN, [&](size_t i) { out[i] = i * i; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kN));
}
BENCHMARK(BM_ParallelForDispatch)->Apply(ThreadArgs);

void BM_ParallelPaillierBatch(benchmark::State& state) {
  // The tentpole path: batch of 32 Paillier encryptions, randomizers drawn
  // serially, powers and assembly fanned out.
  ThreadPool::Global().SetNumThreads(static_cast<size_t>(state.range(0)));
  Rng rng(21);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  std::vector<BigUInt> plain(32);
  for (size_t i = 0; i < plain.size(); ++i) plain[i] = BigUInt(7 * i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PaillierEncryptBatch(kp.public_key, plain, &rng).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plain.size()));
}
BENCHMARK(BM_ParallelPaillierBatch)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelHomomorphicSum(benchmark::State& state) {
  // Protocol-level view: the homomorphic-sum subprotocol over 64 counters
  // with three players (batched encryption + parallel aggregation/decrypt).
  ThreadPool::Global().SetNumThreads(static_cast<size_t>(state.range(0)));
  Network net;
  std::vector<PartyId> players{net.RegisterParty("P1"),
                               net.RegisterParty("P2"),
                               net.RegisterParty("P3")};
  std::vector<std::vector<uint64_t>> inputs(3, std::vector<uint64_t>(64, 9));
  for (auto _ : state) {
    Rng r1(1), r2(2), r3(3);
    std::vector<Rng*> rngs{&r1, &r2, &r3};
    HomomorphicSumProtocol proto(&net, players, 512);
    benchmark::DoNotOptimize(proto.Run(inputs, rngs, "bp.").ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ParallelHomomorphicSum)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelEmEstep(benchmark::State& state) {
  // EM learning over a mid-size cascade log; the E-step accumulation is the
  // chunked-reduction ParallelFor.
  ThreadPool::Global().SetNumThreads(static_cast<size_t>(state.range(0)));
  Rng rng(22);
  auto graph = ErdosRenyiArcs(&rng, 300, 2400).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.3);
  CascadeParams params;
  params.num_actions = 100;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  EmConfig cfg;
  cfg.h = 4;
  cfg.max_iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnInfluenceEm(graph, log, cfg).ValueOrDie());
  }
}
BENCHMARK(BM_ParallelEmEstep)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace psi

PSI_BENCHMARK_MAIN();
