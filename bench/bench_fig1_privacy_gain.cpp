// Reproduces Figure 1 of the paper: the privacy of Protocol 3's masking.
//
// The experiment (Section 7.2): for x in {1..A}, 1000 trials each, draw
// M ~ Z and r ~ U(0, M), reveal y = r*x, form the Theorem 4.4 posterior and
// record the guessing gain G = |x - prior_mean| - |x - posterior_mean|.
// Figure 1 shows the histogram of the 10,000 gains for (a) a uniform prior
// and (b) a unimodal prior, with a positive but very small average gain.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "privacy/gain_experiment.h"

namespace psi {
namespace bench {
namespace {

void RunPrior(const std::string& name, const std::vector<double>& prior,
              Rng* rng) {
  GainExperimentConfig cfg;  // Paper defaults: A=10, 1000 trials per x.
  auto res = RunGainExperiment(prior, cfg, rng).ValueOrDie();

  std::printf("\n--- Figure 1(%s): %zu gains ---\n", name.c_str(),
              res.gains.size());
  std::printf("%s", res.histogram.Render(56).c_str());
  std::printf("average gain        : %+.4f\n", res.average_gain);
  std::printf("gain std deviation  : %.4f\n", StdDev(res.gains));
  std::printf("positive-gain frac  : %.3f\n", res.positive_fraction);
  std::printf("median gain         : %+.4f\n", Percentile(res.gains, 0.5));
  std::printf("p5 / p95            : %+.4f / %+.4f\n",
              Percentile(res.gains, 0.05), Percentile(res.gains, 0.95));
  // Reference scale: the average prior error E_pre over x = 1..10.
  PosteriorAnalyzer an = PosteriorAnalyzer::Create(prior).ValueOrDie();
  double e_pre = 0.0;
  for (size_t x = 1; x <= an.bound_a(); ++x) {
    e_pre += std::abs(static_cast<double>(x) - an.PriorMean());
  }
  e_pre /= static_cast<double>(an.bound_a());
  std::printf("mean prior error    : %.4f (gain/error = %.1f%%)\n", e_pre,
              100.0 * res.average_gain / e_pre);
}

void Run() {
  PrintHeader(
      "Figure 1 — Distribution of the information gain of the curious party\n"
      "under Protocol 3's masking (A = 10, 1000 trials per x, 10,000 gains)");
  Rng rng(1729);
  RunPrior("a: uniform prior", UniformPrior(10), &rng);
  RunPrior("b: unimodal prior", UnimodalPrior(10), &rng);
  std::printf(
      "\nShape check vs paper: both histograms concentrate near zero, the\n"
      "positive side slightly outweighs the negative side, and the average\n"
      "gain is positive but small relative to the prior error scale —\n"
      "information-theoretic leakage exists but is practically insignificant\n"
      "(Section 7.2's conclusion).\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::Run();
  return 0;
}
