// Transport bench: what the socket backend costs over the in-process
// simulator, and what a dead-daemon recovery costs end to end.
//
// Prints one JSON document (google-benchmark layout, so
// tools/check_bench_transport.py can index the rows by name):
//
//   transport/simulator_roundtrip — K framed ping-pong round trips on the
//                                   in-process simulator: the latency and
//                                   metering control.
//   transport/socket_roundtrip    — the identical traffic through a psid
//                                   daemon over TCP loopback. Protocol
//                                   metering must match the simulator to
//                                   the byte; the relay framing the wire
//                                   pays on top is checked against the
//                                   analytic TransportOverheadCosts model.
//   transport/reconnect_resume    — the daemon dies (listener destroyed)
//                                   and is restarted on the same port; the
//                                   row times dead-wire detection +
//                                   Reestablish + resync + first payload.
//
// Every counter except the real_time_ns / *_ns fields is a deterministic
// meter (protocol traffic, relay frame counts, reconnect attempts), so the
// committed BENCH_transport.json baseline gates regressions machine
// independently. Wall-clock latencies are reported for eyeballing only:
// loopback scheduling is not reproducible across machines.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/cost_model.h"
#include "net/daemon.h"
#include "net/network.h"
#include "net/socket_transport.h"

namespace psi {
namespace bench {
namespace {

constexpr size_t kRoundTrips = 200;
constexpr size_t kPayloadBytes = 64;

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

SocketTransportConfig BenchTransportConfig() {
  SocketTransportConfig config;
  config.seed = 31;
  config.session_name = "bench-transport";
  config.recv_timeout_ms = 2000;
  config.connect_timeout_ms = 1000;
  config.handshake_timeout_ms = 1000;
  // Long heartbeat spacing: probe counts depend on wall-clock timing, so
  // the bench keeps probes out of the measured window entirely.
  config.heartbeat_interval_ms = 500;
  config.heartbeat_timeout_ms = 5000;
  config.max_reconnect_attempts = 4;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 20;
  return config;
}

/// An in-process psid daemon on its own serving thread. `abrupt_stop`
/// zeroes the drain grace so StopAndJoin() drops connections without a
/// goodbye — the client observes a dead peer, exactly like a crash.
class DaemonThread {
 public:
  explicit DaemonThread(uint16_t port = 0, bool abrupt_stop = false) {
    PsidConfig config;
    config.hosted_parties = {"P1"};
    if (abrupt_stop) config.drain_grace_ms = 0;
    daemon_ = std::make_unique<PsidDaemon>(config);
    port_ = daemon_->Listen(port).ValueOrDie();
    thread_ = std::thread([this] {
      const Status served = daemon_->Run();
      (void)served;
    });
  }
  ~DaemonThread() { StopAndJoin(); }

  uint16_t port() const { return port_; }

  PsidStats StopAndJoin() {
    if (daemon_ == nullptr) return last_stats_;
    daemon_->Stop();
    thread_.join();
    last_stats_ = daemon_->stats();
    // Destroying the daemon releases the listener so a successor can bind
    // the same port (a stopped daemon object still holds the fd).
    daemon_.reset();
    return last_stats_;
  }

 private:
  std::unique_ptr<PsidDaemon> daemon_;
  std::thread thread_;
  uint16_t port_ = 0;
  PsidStats last_stats_;
};

struct RoundTripOutcome {
  bool ok = false;
  TrafficReport traffic;
  double real_time_ns = 0.0;
};

/// K framed H->P1->H round trips on any backend; both directions touch P1,
/// so over sockets every frame relays through the daemon.
RoundTripOutcome PingPong(Network* net, PartyId h, PartyId p1) {
  RoundTripOutcome out;
  net->BeginRound("bench.roundtrip");
  std::vector<uint8_t> ping(kPayloadBytes, 0xa5);
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kRoundTrips; ++i) {
    if (!net->SendFramed(h, p1, ProtocolId::kSecureSum, 1, ping).ok()) {
      return out;
    }
    auto got = net->RecvValidated(p1, h, ProtocolId::kSecureSum, 1);
    if (!got.ok()) return out;
    if (!net->SendFramed(p1, h, ProtocolId::kSecureSum, 2, got.ValueOrDie())
             .ok()) {
      return out;
    }
    if (!net->RecvValidated(h, p1, ProtocolId::kSecureSum, 2).ok()) return out;
  }
  out.real_time_ns = ElapsedNs(start);
  out.ok = true;
  out.traffic = net->Report();
  return out;
}

void PrintCounter(const char* key, uint64_t value) {
  std::printf("      \"%s\": %" PRIu64 ",\n", key, value);
}

int Run() {
  // --- Control: the in-process simulator. ---------------------------------
  Network sim;
  PartyId sim_h = sim.RegisterParty("H");
  PartyId sim_p1 = sim.RegisterParty("P1");
  RoundTripOutcome control = PingPong(&sim, sim_h, sim_p1);
  if (!control.ok) {
    std::fprintf(stderr, "FAIL: simulator round trips\n");
    return 1;
  }

  // --- The same traffic over TCP loopback through a daemon. ---------------
  auto daemon = std::make_unique<DaemonThread>(0, /*abrupt_stop=*/true);
  const uint16_t port = daemon->port();
  SocketNetwork net(BenchTransportConfig());
  PartyId h = net.RegisterParty("H");
  PartyId p1 = net.RegisterParty("P1");
  Status connected = net.ConnectDaemon("127.0.0.1", port, {p1});
  if (!connected.ok()) {
    std::fprintf(stderr, "FAIL: connect: %s\n", connected.message().c_str());
    return 1;
  }
  RoundTripOutcome socket_run = PingPong(&net, h, p1);
  if (!socket_run.ok) {
    std::fprintf(stderr, "FAIL: socket round trips\n");
    return 1;
  }
  const TransportStats after_pingpong = net.transport_stats();

  const bool metering_matches =
      socket_run.traffic.num_messages == control.traffic.num_messages &&
      socket_run.traffic.num_bytes == control.traffic.num_bytes &&
      socket_run.traffic.num_payload_bytes ==
          control.traffic.num_payload_bytes;

  // Analytic relay overhead for exactly the frames that crossed the wire.
  TransportOverheadCostParams overhead_params;
  overhead_params.relayed_messages = after_pingpong.frames_relayed;
  auto overhead = TransportOverheadCosts(overhead_params);
  if (!overhead.ok()) {
    std::fprintf(stderr, "FAIL: overhead model: %s\n",
                 overhead.status().message().c_str());
    return 1;
  }

  // --- Reconnect-to-resume: kill the daemon, restart, repair the link. ----
  const PsidStats first_daemon = daemon->StopAndJoin();
  daemon.reset();  // Port is genuinely dead now.
  const Status reset = net.ResetMetering();
  if (!reset.ok()) {
    std::fprintf(stderr, "FAIL: reset metering: %s\n",
                 reset.message().c_str());
    return 1;
  }
  net.BeginRound("bench.outage");
  // The send lands in the client queue; the receive detects the dead wire.
  if (!net.SendFramed(h, p1, ProtocolId::kSecureSum, 3, {1}).ok()) {
    std::fprintf(stderr, "FAIL: post-kill send\n");
    return 1;
  }
  auto dead = net.RecvValidated(p1, h, ProtocolId::kSecureSum, 3);
  if (dead.ok() || net.LinkAlive(p1)) {
    std::fprintf(stderr, "FAIL: dead daemon went undetected\n");
    return 1;
  }

  DaemonThread restarted(port);
  auto reconnect_start = std::chrono::steady_clock::now();
  Status repaired = net.Reestablish();
  if (!repaired.ok()) {
    std::fprintf(stderr, "FAIL: reestablish: %s\n",
                 repaired.message().c_str());
    return 1;
  }
  // Resync exactly as a session resume would: the frame lost inside the
  // killed daemon becomes a stale sequence number, not a wedge.
  net.ResyncChannel(h, p1);
  net.BeginRound("bench.resume");
  if (!net.SendFramed(h, p1, ProtocolId::kSecureSum, 4, {2}).ok() ||
      !net.RecvValidated(p1, h, ProtocolId::kSecureSum, 4).ok()) {
    std::fprintf(stderr, "FAIL: post-reconnect round trip\n");
    return 1;
  }
  const double reconnect_ns = ElapsedNs(reconnect_start);
  const TransportStats final_stats = net.transport_stats();
  net.Shutdown();
  const PsidStats second_daemon = restarted.StopAndJoin();

  // --- Report. ------------------------------------------------------------
  std::printf(
      "{\n"
      "  \"context\": {\n"
#ifdef NDEBUG
      "    \"psi_build_type\": \"release\",\n"
#else
      "    \"psi_build_type\": \"debug\",\n"
#endif
      "    \"bench\": \"bench_transport\",\n"
      "    \"round_trips\": %zu,\n"
      "    \"payload_bytes\": %zu,\n"
      "    \"transport_seed\": 31\n"
      "  },\n"
      "  \"benchmarks\": [\n",
      kRoundTrips, kPayloadBytes);

  std::printf(
      "    {\n"
      "      \"name\": \"transport/simulator_roundtrip\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"roundtrip_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      control.real_time_ns, control.real_time_ns / kRoundTrips);
  PrintCounter("wire_messages", control.traffic.num_messages);
  PrintCounter("wire_bytes", control.traffic.num_bytes);
  std::printf("      \"wire_payload_bytes\": %" PRIu64 "\n    },\n",
              control.traffic.num_payload_bytes);

  std::printf(
      "    {\n"
      "      \"name\": \"transport/socket_roundtrip\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"roundtrip_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      socket_run.real_time_ns, socket_run.real_time_ns / kRoundTrips);
  PrintCounter("metering_matches_simulator", metering_matches ? 1 : 0);
  PrintCounter("wire_messages", socket_run.traffic.num_messages);
  PrintCounter("wire_bytes", socket_run.traffic.num_bytes);
  PrintCounter("wire_payload_bytes", socket_run.traffic.num_payload_bytes);
  PrintCounter("frames_relayed", after_pingpong.frames_relayed);
  PrintCounter("frames_echoed", after_pingpong.frames_echoed);
  PrintCounter("frames_hairpinned", first_daemon.frames_hairpinned);
  PrintCounter("relay_overhead_bytes",
               overhead.ValueOrDie().relay_overhead_bytes);
  std::printf("      \"daemon_protocol_violations\": %" PRIu64 "\n    },\n",
              first_daemon.protocol_violations);

  std::printf(
      "    {\n"
      "      \"name\": \"transport/reconnect_resume\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"ok\": 1,\n",
      reconnect_ns);
  PrintCounter("reconnects", final_stats.reconnects);
  PrintCounter("reconnect_attempts", final_stats.reconnect_attempts);
  PrintCounter("backoff_sleep_ms", final_stats.backoff_sleep_ms);
  PrintCounter("dead_peers_detected", final_stats.dead_peers_detected);
  std::printf("      \"resumed_hellos\": %" PRIu64 "\n    }\n",
              second_daemon.resumed_hellos);

  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() { return psi::bench::Run(); }
