// Extensions bench — the two Section 8 future-work settings implemented in
// this library:
//  * multi-host: r platforms share one batched secure-sum execution; the
//    amortization keeps rounds flat and grows bytes sublinearly vs running
//    Protocol 4 r times;
//  * segmented influence: per-category strengths at the cost of widening
//    the counter batch by the segment count.

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "mpc/multi_host.h"
#include "mpc/segmented_influence.h"

namespace psi {
namespace bench {
namespace {

void MultiHost() {
  std::printf(
      "\n[E1] Multi-host amortization (m=3 providers, hosts own 60%% arc\n"
      "slices of a 30-user/180-arc graph)\n");
  std::printf("%8s %8s %10s %12s %24s\n", "hosts", "rounds", "msgs", "bytes",
              "bytes vs r separate runs");
  uint64_t single_run_bytes = 0;
  for (size_t r : {1u, 2u, 4u, 8u}) {
    Rng rng(81);
    SocialGraph global = ErdosRenyiArcs(&rng, 30, 180).ValueOrDie();
    auto truth = GroundTruthInfluence::Uniform(global, 0.3);
    CascadeParams params;
    params.num_actions = 50;
    auto log = GenerateCascades(&rng, global, truth, params).ValueOrDie();
    auto logs = ExclusivePartition(&rng, log, 3).ValueOrDie();

    std::vector<std::unique_ptr<SocialGraph>> host_graphs;
    for (size_t h = 0; h < r; ++h) {
      auto g = std::make_unique<SocialGraph>(global.num_nodes());
      for (const Arc& a : global.arcs()) {
        if (rng.Bernoulli(0.6)) PSI_CHECK_OK(g->AddArc(a.from, a.to));
      }
      host_graphs.push_back(std::move(g));
    }

    Network net;
    std::vector<PartyId> hosts, providers;
    std::vector<std::unique_ptr<Rng>> rng_store;
    std::vector<Rng*> host_rngs, provider_rngs;
    for (size_t h = 0; h < r; ++h) {
      hosts.push_back(net.RegisterParty("H" + std::to_string(h)));
      rng_store.push_back(std::make_unique<Rng>(1000 + h));
      host_rngs.push_back(rng_store.back().get());
    }
    for (size_t k = 0; k < 3; ++k) {
      providers.push_back(net.RegisterParty("P" + std::to_string(k)));
      rng_store.push_back(std::make_unique<Rng>(2000 + k));
      provider_rngs.push_back(rng_store.back().get());
    }
    Rng pair_secret(3000);

    Protocol4Config cfg;
    MultiHostLinkInfluenceProtocol proto(&net, hosts, providers, cfg);
    std::vector<const SocialGraph*> graph_ptrs;
    for (const auto& g : host_graphs) graph_ptrs.push_back(g.get());
    PSI_CHECK_OK(proto.Run(graph_ptrs, 50, logs, host_rngs, provider_rngs,
                           &pair_secret)
                     .status());
    auto report = net.Report();
    if (r == 1) single_run_bytes = report.num_bytes;
    std::printf("%8zu %8" PRIu64 " %10" PRIu64 " %12" PRIu64 " %23.2fx\n", r,
                report.num_rounds, report.num_messages, report.num_bytes,
                static_cast<double>(report.num_bytes) /
                    (static_cast<double>(r) *
                     static_cast<double>(single_run_bytes)));
  }
  std::printf(
      "-> the m^2 share exchange is paid once: r hosts cost well under r\n"
      "   separate Protocol 4 executions, at a flat 8 rounds.\n");
}

void Segmented() {
  std::printf(
      "\n[E2] Segmented influence: cost of per-category strengths (m=3)\n");
  std::printf("%10s %8s %10s %12s\n", "segments", "rounds", "msgs", "bytes");
  for (uint32_t g_count : {1u, 2u, 4u, 8u}) {
    auto world = MakeWorld(3, 40, 200, 64, /*seed=*/55);
    World& w = *world;
    std::vector<uint32_t> segments(64);
    Rng seg_rng(5);
    for (auto& g : segments) {
      g = static_cast<uint32_t>(seg_rng.UniformU64(g_count));
    }
    Protocol4Config cfg;
    SegmentedInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
    PSI_CHECK_OK(proto.Run(*w.graph, 64, w.provider_logs, segments, g_count,
                           w.host_rng.get(), w.RngPtrs(),
                           w.pair_secret.get())
                     .status());
    auto report = w.net.Report();
    std::printf("%10u %8" PRIu64 " %10" PRIu64 " %12" PRIu64 "\n", g_count,
                report.num_rounds, report.num_messages, report.num_bytes);
  }
  std::printf(
      "-> bytes grow linearly in the segment count (wider batches), while\n"
      "   rounds and message counts stay at Protocol 4's 8 / m^2+m+7.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Extensions — multi-host & segmented influence (Section 8 future work)");
  psi::bench::MultiHost();
  psi::bench::Segmented();
  return 0;
}
