// Shared main() for the google-benchmark binaries. The stock
// BENCHMARK_MAIN() is not enough for our JSON gates: the library-provided
// "library_build_type" context key describes how *libbenchmark* was built,
// not this binary — a Release psi build linked against a distro debug
// libbenchmark reports "debug". PSI_BENCHMARK_MAIN() stamps the context
// with the truth about this binary (psi_build_type) plus which limb-kernel
// variant the one-time CPU dispatch selected (psi_limb_kernel), and the
// tools/check_bench_*.py gates refuse to accept debug numbers.

#ifndef PSI_BENCH_BENCH_MAIN_H_
#define PSI_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "bigint/limb_kernel.h"

namespace psi {
namespace bench {

#ifdef NDEBUG
inline constexpr const char kPsiBuildType[] = "release";
#else
inline constexpr const char kPsiBuildType[] = "debug";
#endif

}  // namespace bench
}  // namespace psi

#define PSI_BENCHMARK_MAIN()                                                 \
  int main(int argc, char** argv) {                                          \
    benchmark::AddCustomContext("psi_build_type", psi::bench::kPsiBuildType); \
    benchmark::AddCustomContext(                                             \
        "psi_limb_kernel",                                                   \
        psi::limb_kernel::VariantName(psi::limb_kernel::ActiveVariant()));   \
    benchmark::Initialize(&argc, argv);                                      \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;        \
    benchmark::RunSpecifiedBenchmarks();                                     \
    benchmark::Shutdown();                                                   \
    return 0;                                                                \
  }                                                                          \
  static_assert(true, "require a trailing semicolon")

#endif  // PSI_BENCH_BENCH_MAIN_H_
