// Recovery bench: what checkpointed sessions buy under a crash-restart.
//
// Runs Protocol 4 three ways on the same world and prints one JSON document
// (google-benchmark layout, so tools/check_bench_recovery.py can index the
// rows by name):
//
//   recovery/no_fault      — session layer on a clean network: the control.
//                            One attempt, zero handshake traffic.
//   recovery/stage_resume  — a provider crashes mid-run and restarts; the
//                            orchestrator resumes from the last checkpoint.
//                            Checkpointed crypto work is never redone
//                            (crypto_ops_recomputed == 0) and the completed
//                            stages' ops show up as crypto_ops_saved.
//   recovery/full_restart  — identical crash schedule with
//                            resume_from_checkpoint off: the "no recovery
//                            layer" baseline that redoes every completed
//                            stage (crypto_ops_recomputed > 0).
//
// Every counter except real_time_ns is a deterministic meter (session stats
// and wire traffic), so the committed BENCH_recovery.json baseline gates
// regressions machine-independently. Both faulted runs must reproduce the
// fault-free influence estimates bit for bit; result_matches_fault_free
// records that.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "influence/link_influence.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/session.h"
#include "net/fault.h"

namespace psi {
namespace bench {
namespace {

constexpr size_t kProviders = 3;
constexpr size_t kUsers = 16;
constexpr size_t kArcs = 50;
constexpr size_t kActions = 20;

struct RunOutcome {
  Result<LinkInfluence> result = Status::Internal("not run");
  SessionStats stats;
  TrafficReport traffic;
  double real_time_ns = 0.0;
};

// One full session run on `net` with fixed RNG seeds, so every scenario
// derives the same randomness and a recovered run can match the control
// bitwise.
RunOutcome RunP4Session(const World& w, Network* net,
                        const RetryPolicy& retry) {
  PartyId host = net->RegisterParty("H");
  std::vector<PartyId> providers;
  for (size_t k = 0; k < kProviders; ++k) {
    providers.push_back(net->RegisterParty("P" + std::to_string(k + 1)));
  }
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.paillier_bits = 384;
  // The packed-Paillier aggregation is the crypto-heavy path where the
  // saved/recomputed ledger is non-trivial (the secure-sum path meters its
  // ops in the stage the crash interrupts, so nothing is ever "saved").
  cfg.aggregation = P4Aggregation::kPaillierPacked;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<Rng*> rng_ptrs;
  for (size_t k = 0; k < kProviders; ++k) {
    rngs.push_back(std::make_unique<Rng>(1000 + k));
    rng_ptrs.push_back(rngs.back().get());
  }
  Rng host_rng(501), pair_secret(502);
  LinkInfluenceProtocol proto(net, host, providers, cfg);
  RunOutcome out;
  auto start = std::chrono::steady_clock::now();
  out.result = proto.RunSession(*w.graph, kActions, w.provider_logs,
                                &host_rng, rng_ptrs, &pair_secret, retry,
                                &out.stats);
  auto stop = std::chrono::steady_clock::now();
  out.real_time_ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  out.traffic = net->Report();
  return out;
}

bool SameInfluence(const Result<LinkInfluence>& got,
                   const LinkInfluence& want) {
  if (!got.ok()) return false;
  const LinkInfluence& g = got.ValueOrDie();
  if (g.p.size() != want.p.size()) return false;
  for (size_t i = 0; i < g.p.size(); ++i) {
    if (g.p[i] != want.p[i]) return false;
  }
  return true;
}

void PrintScenario(const char* name, const RunOutcome& r, bool matches,
                   bool* first) {
  if (!*first) std::printf(",\n");
  *first = false;
  const SessionStats& s = r.stats;
  std::printf(
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"run_type\": \"counters\",\n"
      "      \"real_time_ns\": %.0f,\n"
      "      \"ok\": %d,\n"
      "      \"result_matches_fault_free\": %d,\n"
      "      \"attempts\": %" PRIu32 ",\n"
      "      \"resumes\": %" PRIu32 ",\n"
      "      \"stages_run\": %" PRIu64 ",\n"
      "      \"stages_resumed\": %" PRIu64 ",\n"
      "      \"checkpoints_written\": %" PRIu64 ",\n"
      "      \"checkpoint_bytes\": %" PRIu64 ",\n"
      "      \"backoff_rounds\": %" PRIu64 ",\n"
      "      \"handshake_messages\": %" PRIu64 ",\n"
      "      \"handshake_bytes\": %" PRIu64 ",\n"
      "      \"crypto_ops_total\": %" PRIu64 ",\n"
      "      \"crypto_ops_saved\": %" PRIu64 ",\n"
      "      \"crypto_ops_recomputed\": %" PRIu64 ",\n"
      "      \"wire_messages\": %" PRIu64 ",\n"
      "      \"wire_bytes\": %" PRIu64 ",\n"
      "      \"wire_payload_bytes\": %" PRIu64 "\n"
      "    }",
      name, r.real_time_ns, r.result.ok() ? 1 : 0, matches ? 1 : 0,
      s.attempts, s.resumes, s.stages_run, s.stages_resumed,
      s.checkpoints_written, s.checkpoint_bytes, s.backoff_rounds,
      s.handshake_messages, s.handshake_bytes, s.crypto_ops_total,
      s.crypto_ops_saved, s.crypto_ops_recomputed, r.traffic.num_messages,
      r.traffic.num_bytes, r.traffic.num_payload_bytes);
}

FaultPlan CrashOnlyPlan(PartyId party, uint64_t after_round,
                        uint64_t restart_round) {
  FaultPlan plan;
  plan.crash = CrashSpec{party, after_round, restart_round};
  return plan;
}

int Run() {
  const uint64_t seed = BenchSeed(77);
  auto world = MakeWorld(kProviders, kUsers, kArcs, kActions, seed);
  const World& w = *world;

  RetryPolicy no_fault_policy;  // Defaults: resume on, 3 attempts.
  FaultyNetwork clean(FaultPlan::None());
  RunOutcome control = RunP4Session(w, &clean, no_fault_policy);
  if (!control.result.ok()) {
    std::fprintf(stderr, "FAIL: fault-free control run: %s\n",
                 control.result.status().message().c_str());
    return 1;
  }
  const LinkInfluence& truth = control.result.ValueOrDie();

  // Probe the crash window: the first provider restart that actually forces
  // a resume handshake. Round numbering may shift as protocols evolve, so
  // the bench searches instead of hard-coding a round index.
  RetryPolicy resume_policy;
  resume_policy.max_attempts = 4;
  RunOutcome resume;
  uint64_t crash_after = 0;
  bool found = false;
  for (uint64_t after = 1; after <= 10 && !found; ++after) {
    FaultyNetwork net(CrashOnlyPlan(/*party=*/1, after, after + 3));
    RunOutcome attempt = RunP4Session(w, &net, resume_policy);
    std::fprintf(stderr,
                 "probe after=%" PRIu64 ": ok=%d resumes=%u saved=%" PRIu64
                 " msg=%s\n",
                 after, attempt.result.ok() ? 1 : 0, attempt.stats.resumes,
                 attempt.stats.crypto_ops_saved,
                 attempt.result.ok()
                     ? ""
                     : attempt.result.status().message().c_str());
    if (attempt.result.ok() && attempt.stats.resumes > 0 &&
        attempt.stats.crypto_ops_saved > 0) {
      resume = std::move(attempt);
      crash_after = after;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr,
                 "FAIL: no crash window in rounds 1..10 forced a recovered "
                 "run; the probe needs widening\n");
    return 1;
  }

  RetryPolicy restart_policy = resume_policy;
  restart_policy.resume_from_checkpoint = false;
  FaultyNetwork net(CrashOnlyPlan(/*party=*/1, crash_after, crash_after + 3));
  RunOutcome full = RunP4Session(w, &net, restart_policy);

  std::printf(
      "{\n"
      "  \"context\": {\n"
#ifdef NDEBUG
      "    \"psi_build_type\": \"release\",\n"
#else
      "    \"psi_build_type\": \"debug\",\n"
#endif
      "    \"bench\": \"bench_recovery\",\n"
      "    \"protocol\": \"link_influence (Protocol 4)\",\n"
      "    \"providers\": %zu,\n"
      "    \"users\": %zu,\n"
      "    \"arcs\": %zu,\n"
      "    \"actions\": %zu,\n"
      "    \"paillier_bits\": 384,\n"
      "    \"seed\": %" PRIu64 ",\n"
      "    \"crash_party\": 1,\n"
      "    \"crash_after_round\": %" PRIu64 ",\n"
      "    \"crash_restart_round\": %" PRIu64 "\n"
      "  },\n"
      "  \"benchmarks\": [\n",
      kProviders, kUsers, kArcs, kActions, seed, crash_after, crash_after + 3);
  bool first = true;
  PrintScenario("recovery/no_fault", control, /*matches=*/true, &first);
  PrintScenario("recovery/stage_resume", resume,
                SameInfluence(resume.result, truth), &first);
  PrintScenario("recovery/full_restart", full,
                SameInfluence(full.result, truth), &first);
  std::printf("\n  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() { return psi::bench::Run(); }
