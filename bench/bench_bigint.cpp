// Fixed-width limb engine benches: every pair BM_Foo / BM_FooHeap measures
// the same operation with the engine attached vs forced onto the heap
// BigUInt path (ScopedHeapOnlyModPow / EngineMode::kHeapOnly) in the same
// run, so tools/check_bench_bigint.py can gate on machine-independent
// same-run ratios. BENCH_bigint.json is the committed baseline.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_main.h"
#include "bench_util.h"
#include "bigint/modular.h"
#include "bigint/montgomery.h"
#include "common/logging.h"
#include "crypto/paillier.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/propagation_protocol.h"

namespace psi {
namespace {

// ------------------------------------------------------- Montgomery Pow --

BigUInt BenchModulus(Rng* rng, size_t bits) {
  BigUInt m = BigUInt::RandomBits(rng, bits);
  m.SetBit(bits - 1);  // Exactly bits/64 limbs: the engine widths.
  m.SetBit(0);
  return m;
}

void RunMontgomeryPow(benchmark::State& state, EngineMode mode) {
  Rng rng(36);
  const auto bits = static_cast<size_t>(state.range(0));
  BigUInt m = BenchModulus(&rng, bits);
  auto ctx = MontgomeryContext::Create(m, mode).ValueOrDie();
  PSI_CHECK((ctx.fixed_engine() != nullptr) == (mode == EngineMode::kAuto));
  BigUInt base = BigUInt::RandomBelow(&rng, m);
  BigUInt exp = BigUInt::RandomBits(&rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Pow(base, exp));
  }
}

void BM_MontgomeryPow(benchmark::State& state) {
  RunMontgomeryPow(state, EngineMode::kAuto);
}
BENCHMARK(BM_MontgomeryPow)->Arg(512)->Arg(1024)->Arg(2048);

void BM_MontgomeryPowHeap(benchmark::State& state) {
  RunMontgomeryPow(state, EngineMode::kHeapOnly);
}
BENCHMARK(BM_MontgomeryPowHeap)->Arg(512)->Arg(1024)->Arg(2048);

// -------------------------------------------------------------- Paillier --

// Arg is the Paillier key size; the CRT decrypt works over p^2/q^2 of the
// same bit count, so Arg(1024) exercises the 16-limb engine geometry the
// acceptance gate names.
void RunPaillierDecryptCrt(benchmark::State& state, bool heap_only) {
  Rng rng(8);
  auto kp =
      PaillierGenerateKeyPair(&rng, static_cast<size_t>(state.range(0)))
          .ValueOrDie();
  BigUInt c =
      PaillierEncrypt(kp.public_key, BigUInt(123456789), &rng).ValueOrDie();
  if (heap_only) {
    ScopedHeapOnlyModPow guard;
    for (auto _ : state) {
      benchmark::DoNotOptimize(PaillierDecryptCrt(kp.private_key, c).ValueOrDie());
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(PaillierDecryptCrt(kp.private_key, c).ValueOrDie());
    }
  }
}

void BM_PaillierDecryptCrt(benchmark::State& state) {
  RunPaillierDecryptCrt(state, /*heap_only=*/false);
}
BENCHMARK(BM_PaillierDecryptCrt)->Arg(512)->Arg(1024);

void BM_PaillierDecryptCrtHeap(benchmark::State& state) {
  RunPaillierDecryptCrt(state, /*heap_only=*/true);
}
BENCHMARK(BM_PaillierDecryptCrtHeap)->Arg(512)->Arg(1024);

void RunPaillierEncrypt(benchmark::State& state, bool heap_only) {
  Rng rng(8);
  auto kp =
      PaillierGenerateKeyPair(&rng, static_cast<size_t>(state.range(0)))
          .ValueOrDie();
  BigUInt m(123456789);
  if (heap_only) {
    ScopedHeapOnlyModPow guard;
    for (auto _ : state) {
      benchmark::DoNotOptimize(PaillierEncrypt(kp.public_key, m, &rng).ValueOrDie());
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(PaillierEncrypt(kp.public_key, m, &rng).ValueOrDie());
    }
  }
}

void BM_PaillierEncrypt(benchmark::State& state) {
  RunPaillierEncrypt(state, /*heap_only=*/false);
}
BENCHMARK(BM_PaillierEncrypt)->Arg(512)->Arg(1024);

void BM_PaillierEncryptHeap(benchmark::State& state) {
  RunPaillierEncrypt(state, /*heap_only=*/true);
}
BENCHMARK(BM_PaillierEncryptHeap)->Arg(512)->Arg(1024);

// ------------------------------------------------------------ end-to-end --

// Whole-protocol deltas: everything below the drivers (Paillier, RSA,
// masked shares, metered network) rides the engine automatically, so these
// two pairs measure what the limb engine buys a full P4 / P6 run.

void RunProtocol4(benchmark::State& state, bool heap_only) {
  const size_t n = 100;
  Rng rng(9);
  auto graph = ErdosRenyiArcs(&rng, n, 5 * n).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.3);
  CascadeParams params;
  params.num_actions = 50;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto logs = ExclusivePartition(&rng, log, 3).ValueOrDie();
  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2"),
                                 net.RegisterParty("P3")};
  Rng r1(1), r2(2), r3(3), hr(4), secret(5);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  Protocol4Config cfg;
  std::unique_ptr<ScopedHeapOnlyModPow> guard;
  if (heap_only) guard = std::make_unique<ScopedHeapOnlyModPow>();
  for (auto _ : state) {
    LinkInfluenceProtocol proto(&net, host, providers, cfg);
    benchmark::DoNotOptimize(
        proto.Run(graph, 50, logs, &hr, rngs, &secret).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_arcs()));
}

void BM_Protocol4EndToEnd(benchmark::State& state) {
  RunProtocol4(state, /*heap_only=*/false);
}
BENCHMARK(BM_Protocol4EndToEnd)->Unit(benchmark::kMillisecond);

void BM_Protocol4EndToEndHeap(benchmark::State& state) {
  RunProtocol4(state, /*heap_only=*/true);
}
BENCHMARK(BM_Protocol4EndToEndHeap)->Unit(benchmark::kMillisecond);

void RunProtocol6(benchmark::State& state, bool heap_only) {
  auto world = bench::MakeWorld(/*num_providers=*/3, /*num_users=*/50,
                                /*num_arcs=*/160, /*num_actions=*/20,
                                /*seed=*/97);
  bench::World& w = *world;
  Protocol6Config cfg;
  cfg.rsa_bits = 512;
  cfg.obfuscation_factor = 2.0;
  std::unique_ptr<ScopedHeapOnlyModPow> guard;
  if (heap_only) guard = std::make_unique<ScopedHeapOnlyModPow>();
  for (auto _ : state) {
    PropagationGraphProtocol proto(&w.net, w.host, w.providers, cfg);
    benchmark::DoNotOptimize(proto.Run(*w.graph, 20, w.provider_logs,
                                       w.host_rng.get(), w.RngPtrs())
                                 .ValueOrDie());
  }
}

void BM_Protocol6EndToEnd(benchmark::State& state) {
  RunProtocol6(state, /*heap_only=*/false);
}
BENCHMARK(BM_Protocol6EndToEnd)->Unit(benchmark::kMillisecond);

void BM_Protocol6EndToEndHeap(benchmark::State& state) {
  RunProtocol6(state, /*heap_only=*/true);
}
BENCHMARK(BM_Protocol6EndToEndHeap)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace psi

PSI_BENCHMARK_MAIN();
