// Ablation A7 — perfect arc hiding via oblivious transfer (Section 5.1.1).
//
// The paper rejects the OT-based perfectly hiding variant as "extremely
// prohibitive": Protocol 2 over all n^2 - n pairs plus O(|E| n^2) modular
// exponentiations. This bench measures both variants on the same worlds so
// the trade-off is a number, not an adjective.

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "influence/link_influence.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/perfect_hiding.h"

namespace psi {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Run() {
  std::printf(
      "\nStandard Protocol 4 (E' obfuscation, c = 2) vs the OT variant\n"
      "(|E|-out-of-(n^2-n) transfers, 512-bit RSA), m = 2 providers:\n\n");
  std::printf("%4s %6s | %12s %10s | %12s %10s | %8s\n", "n", "|E|",
              "P4 bytes", "P4 (s)", "OT bytes", "OT (s)", "x cost");
  for (size_t n : {6u, 8u, 10u, 14u}) {
    size_t arcs = 2 * n;
    // Standard Protocol 4.
    auto world_a = MakeWorld(2, n, arcs, 20, /*seed=*/BenchSeed(n));
    World& wa = *world_a;
    Protocol4Config p4_cfg;
    LinkInfluenceProtocol p4(&wa.net, wa.host, wa.providers, p4_cfg);
    auto t0 = std::chrono::steady_clock::now();
    auto a = p4.Run(*wa.graph, 20, wa.provider_logs, wa.host_rng.get(),
                    wa.RngPtrs(), wa.pair_secret.get())
                 .ValueOrDie();
    double p4_secs = Seconds(t0);
    uint64_t p4_bytes = wa.net.Report().num_bytes;

    // OT-based perfect hiding, same world.
    auto world_b = MakeWorld(2, n, arcs, 20, /*seed=*/BenchSeed(n));
    World& wb = *world_b;
    PerfectHidingConfig ph_cfg;
    PerfectHidingLinkInfluenceProtocol ph(&wb.net, wb.host, wb.providers,
                                          ph_cfg);
    auto t1 = std::chrono::steady_clock::now();
    auto b = ph.Run(*wb.graph, 20, wb.provider_logs, wb.host_rng.get(),
                    wb.RngPtrs(), wb.pair_secret.get())
                 .ValueOrDie();
    double ph_secs = Seconds(t1);
    uint64_t ph_bytes = wb.net.Report().num_bytes;

    // Both must equal the plaintext result on their own worlds.
    auto plain_a =
        ComputeLinkInfluence(wa.log, wa.graph->arcs(), n, 4).ValueOrDie();
    auto plain_b =
        ComputeLinkInfluence(wb.log, wb.graph->arcs(), n, 4).ValueOrDie();
    PSI_CHECK(MeanAbsoluteError(a, plain_a).ValueOrDie() < 1e-9);
    PSI_CHECK(MeanAbsoluteError(b, plain_b).ValueOrDie() < 1e-9);

    std::printf("%4zu %6zu | %12" PRIu64 " %10.4f | %12" PRIu64
                " %10.3f | %7.0fx\n",
                n, arcs, p4_bytes, p4_secs, ph_bytes, ph_secs,
                ph_secs / p4_secs);
  }
  std::printf(
      "\n-> the OT variant's wall time explodes with n (each of the |E|\n"
      "   transfers performs n^2-n RSA decryptions at the sender), while\n"
      "   the E' obfuscation stays near-free — exactly the Section 5.1.1\n"
      "   argument for trading perfect arc privacy for the 1/c posterior.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Ablation A7 — perfect arc hiding via OT vs E' obfuscation (Sec 5.1.1)");
  psi::bench::Run();
  return 0;
}
