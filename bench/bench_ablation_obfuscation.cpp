// Ablation A1/A5 — the privacy-efficiency trade-offs the paper discusses in
// Sections 5.1.1 and 5.2:
//  (1) the arc-obfuscation factor c: larger c hides E better (each Omega
//      pair is a true arc with probability 1/c) but inflates every counter
//      round linearly;
//  (2) Protocol 5's enhanced obfuscation: shift-ciphered timestamps need
//      fake-user padding, whose volume depends on the activity skew.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "influence/link_influence.h"
#include "mpc/class_aggregation.h"
#include "mpc/link_influence_protocol.h"

namespace psi {
namespace bench {
namespace {

void SweepObfuscationFactor() {
  std::printf(
      "\n[A1] Protocol 4 arc-obfuscation factor c (m=3, n=200, |E|=1000)\n");
  std::printf("%8s %8s %12s %14s %20s\n", "c", "q", "bytes",
              "bytes/true arc", "P(pair in E | Omega)");
  for (double c : {1.25, 1.5, 2.0, 3.0, 5.0}) {
    auto world = MakeWorld(3, 200, 1000, 80, /*seed=*/BenchSeed(97));
  World& w = *world;
    Protocol4Config cfg;
    cfg.obfuscation_factor = c;
    LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
    PSI_CHECK_OK(proto.Run(*w.graph, 80, w.provider_logs, w.host_rng.get(),
                           w.RngPtrs(), w.pair_secret.get())
                     .status());
    auto report = w.net.Report();
    size_t q = proto.views().omega.size();
    std::printf("%8.2f %8zu %12" PRIu64 " %14.1f %20.3f\n", c, q,
                report.num_bytes,
                static_cast<double>(report.num_bytes) / 1000.0,
                1000.0 / static_cast<double>(q));
  }
  std::printf(
      "-> cost grows ~linearly in c while the providers' posterior that a\n"
      "   given Omega pair is a real arc falls as 1/c (Section 5.1.1).\n");
}

void CompareObfuscationMethods() {
  std::printf(
      "\n[A5] Protocol 5 obfuscation methods: transmitted records and bytes\n");
  std::printf("%12s %10s %14s %12s %10s\n", "method", "fakes", "records sent",
              "bytes", "overhead");
  for (auto [name, method, fakes] :
       {std::tuple<const char*, ObfuscationMethod, size_t>{
            "basic", ObfuscationMethod::kBasic, 0},
        {"enhanced", ObfuscationMethod::kEnhanced, 4},
        {"enhanced", ObfuscationMethod::kEnhanced, 16},
        {"enhanced", ObfuscationMethod::kEnhanced, 64}}) {
    Rng rng(BenchSeed(555));
    auto graph = ErdosRenyiArcs(&rng, 60, 300).ValueOrDie();
    auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
    CascadeParams params;
    params.num_actions = 40;
    auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
    ActionClassConfig ccfg;
    ccfg.class_of_action.assign(40, 0);
    ccfg.provider_groups.push_back({0, 1, 2});
    auto class_logs = NonExclusivePartition(&rng, log, 3, ccfg).ValueOrDie();

    Network net;
    PartyId agg = net.RegisterParty("P-hat");
    std::vector<PartyId> group{net.RegisterParty("P1"),
                               net.RegisterParty("P2"),
                               net.RegisterParty("P3")};
    Protocol5Config cfg;
    cfg.h = 4;
    cfg.method = method;
    cfg.num_fake_users = fakes;
    cfg.time_frame_t = log.MaxTime() + 1;
    ClassAggregationProtocol proto(&net, group, agg, cfg);
    Rng secret(7);
    PSI_CHECK_OK(proto.Run(class_logs, 60, &secret, "a5.").status());
    size_t sent = 0;
    for (const auto& records : proto.views().aggregator_logs) {
      sent += records.size();
    }
    auto report = net.Report();
    std::printf("%12s %10zu %14zu %12" PRIu64 " %9.2fx\n", name, fakes, sent,
                report.num_bytes,
                static_cast<double>(sent) / static_cast<double>(log.size()));
  }
  std::printf(
      "-> the enhanced method's flat-histogram padding costs a multiple of\n"
      "   the real log volume: the price of hiding the time shift key.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::PrintHeader(
      "Ablations A1 + A5 — obfuscation trade-offs (Sections 5.1.1, 5.2)");
  psi::bench::SweepObfuscationFactor();
  psi::bench::CompareObfuscationMethods();
  return 0;
}
