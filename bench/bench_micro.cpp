// Microbenchmarks (google-benchmark) for the substrates: big-integer
// arithmetic, cryptographic primitives, the secure protocols, and the
// plaintext influence algorithms. These quantify where the wall-clock time
// of the table benches goes.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_main.h"

#include "actionlog/counters.h"
#include "actionlog/generator.h"
#include "actionlog/partition.h"
#include "bigint/modular.h"
#include "bigint/montgomery.h"
#include "bigint/primes.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "graph/generators.h"
#include "influence/influence_max.h"
#include "influence/link_influence.h"
#include "influence/user_score.h"
#include "mpc/homomorphic_sum.h"
#include "mpc/link_influence_protocol.h"
#include "mpc/secure_sum.h"

namespace psi {
namespace {

// ---------------------------------------------------------------- bigint --

void BM_BigUIntMul(benchmark::State& state) {
  Rng rng(1);
  auto bits = static_cast<size_t>(state.range(0));
  BigUInt a = BigUInt::RandomBits(&rng, bits);
  BigUInt b = BigUInt::RandomBits(&rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigUIntMul)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BigUIntDivMod(benchmark::State& state) {
  Rng rng(2);
  auto bits = static_cast<size_t>(state.range(0));
  BigUInt a = BigUInt::RandomBits(&rng, 2 * bits);
  BigUInt b = BigUInt::RandomBits(&rng, bits);
  b.SetBit(bits - 1);
  for (auto _ : state) {
    BigUInt q, r;
    BigUInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigUIntDivMod)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ModPow(benchmark::State& state) {
  Rng rng(3);
  auto bits = static_cast<size_t>(state.range(0));
  BigUInt m = BigUInt::RandomBits(&rng, bits);
  m.SetBit(bits - 1);
  m.SetBit(0);
  BigUInt base = BigUInt::RandomBelow(&rng, m);
  BigUInt exp = BigUInt::RandomBits(&rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModPow(base, exp, m));
  }
}
BENCHMARK(BM_ModPow)->Arg(256)->Arg(512)->Arg(1024);

void BM_ModPowGenericPath(benchmark::State& state) {
  // The pre-Montgomery baseline: square-and-multiply with Knuth-division
  // reductions (forced by using an even modulus of the same size).
  Rng rng(33);
  auto bits = static_cast<size_t>(state.range(0));
  BigUInt m = BigUInt::RandomBits(&rng, bits);
  m.SetBit(bits - 1);
  if (m.IsOdd()) m += BigUInt(1);  // Even => generic path.
  BigUInt base = BigUInt::RandomBelow(&rng, m);
  BigUInt exp = BigUInt::RandomBits(&rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModPow(base, exp, m));
  }
}
BENCHMARK(BM_ModPowGenericPath)->Arg(512)->Arg(1024);

void BM_MontgomeryMultiply(benchmark::State& state) {
  Rng rng(34);
  auto bits = static_cast<size_t>(state.range(0));
  BigUInt m = BigUInt::RandomBits(&rng, bits);
  m.SetBit(bits - 1);
  m.SetBit(0);
  auto ctx = MontgomeryContext::Create(m).ValueOrDie();
  BigUInt a = ctx.ToMontgomery(BigUInt::RandomBelow(&rng, m));
  BigUInt b = ctx.ToMontgomery(BigUInt::RandomBelow(&rng, m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Multiply(a, b));
  }
}
BENCHMARK(BM_MontgomeryMultiply)->Arg(512)->Arg(1024)->Arg(2048);

void BM_MillerRabin(benchmark::State& state) {
  Rng rng(4);
  BigUInt p = RandomPrime(&rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsProbablePrime(p, &rng, 16));
  }
}
BENCHMARK(BM_MillerRabin)->Arg(256)->Arg(512);

// ---------------------------------------------------------------- crypto --

void BM_Sha256(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  rng.FillBytes(data.data(), data.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 16);

void BM_RsaEncrypt(benchmark::State& state) {
  Rng rng(6);
  auto kp = RsaGenerateKeyPair(&rng, static_cast<size_t>(state.range(0)))
                .ValueOrDie();
  BigUInt m = BigUInt::RandomBelow(&rng, kp.public_key.n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaEncrypt(kp.public_key, m).ValueOrDie());
  }
}
BENCHMARK(BM_RsaEncrypt)->Arg(512)->Arg(1024);

void BM_RsaDecrypt(benchmark::State& state) {
  Rng rng(7);
  auto kp = RsaGenerateKeyPair(&rng, static_cast<size_t>(state.range(0)))
                .ValueOrDie();
  BigUInt m = BigUInt::RandomBelow(&rng, kp.public_key.n);
  BigUInt c = RsaEncrypt(kp.public_key, m).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaDecrypt(kp.private_key, c).ValueOrDie());
  }
}
BENCHMARK(BM_RsaDecrypt)->Arg(512)->Arg(1024);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  BigUInt m(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PaillierEncrypt(kp.public_key, m, &rng).ValueOrDie());
  }
}
BENCHMARK(BM_PaillierEncrypt);

void BM_PaillierEncryptBatch(benchmark::State& state) {
  // Whole batch per iteration: randomizer draws stay serial, r^n powers and
  // ciphertext assembly fan out across the thread pool.
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  const auto batch = static_cast<size_t>(state.range(0));
  std::vector<BigUInt> plain(batch);
  for (size_t i = 0; i < batch; ++i) plain[i] = BigUInt(1000 + i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PaillierEncryptBatch(kp.public_key, plain, &rng).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PaillierEncryptBatch)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PaillierEncryptPooled(benchmark::State& state) {
  // Online phase of pool-backed encryption: the r^n powers are precomputed
  // (offline), so each ciphertext costs two modular multiplications. This is
  // the number the protocol hot loops see once a randomizer pool is warmed.
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  BigUInt m(123456789);
  constexpr size_t kPool = 256;
  auto pool =
      PaillierRandomizerPool::Create(kp.public_key, &rng, kPool).ValueOrDie();
  for (auto _ : state) {
    if (pool.remaining() == 0) {
      state.PauseTiming();
      pool = PaillierRandomizerPool::Create(kp.public_key, &rng, kPool)
                 .ValueOrDie();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        PaillierEncryptWithPool(kp.public_key, m, &pool).ValueOrDie());
  }
}
BENCHMARK(BM_PaillierEncryptPooled);

void BM_PaillierRandomizerPoolCreate(benchmark::State& state) {
  // Offline phase: sequential randomizer draws plus parallel r^n powers.
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  const auto count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PaillierRandomizerPool::Create(kp.public_key, &rng, count)
            .ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PaillierRandomizerPoolCreate)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_PaillierDecrypt(benchmark::State& state) {
  // The classic path: one c^lambda mod n^2 exponentiation per counter.
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  BigUInt c =
      PaillierEncrypt(kp.public_key, BigUInt(123456789), &rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaillierDecrypt(kp.private_key, c).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaillierDecrypt);

void BM_PaillierDecryptCrt(benchmark::State& state) {
  // CRT path: half-size moduli and half-size exponents, Garner recombine.
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  BigUInt c =
      PaillierEncrypt(kp.public_key, BigUInt(123456789), &rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PaillierDecryptCrt(kp.private_key, c).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaillierDecryptCrt);

// The homomorphic-sum packing geometry the acceptance gate measures: 512-bit
// keys, 20-bit counters, m = 3 players, 2^-30 statistical masks.
constexpr uint64_t kPackCounterBound = (1ull << 20) - 1;
constexpr size_t kPackPlayers = 3;
constexpr uint64_t kPackEpsilonLog2 = 30;

void BM_PackedCounterDecrypt(benchmark::State& state) {
  // One CRT decryption + slot extraction recovers a whole ciphertext's worth
  // of counters; items/sec is counters per second (compare with
  // BM_PaillierDecrypt, the old per-counter cost).
  Rng rng(8);
  auto kp = PaillierGenerateKeyPair(&rng, 512).ValueOrDie();
  auto codec = HomomorphicSumPackedCodec(
                   kp.public_key.n.BitLength() - 1, BigUInt(kPackCounterBound),
                   kPackPlayers, kPackEpsilonLog2)
                   .ValueOrDie();
  const size_t k = codec.slots_per_plaintext();
  std::vector<BigUInt> counters(k);
  for (size_t i = 0; i < k; ++i) counters[i] = BigUInt(kPackCounterBound - i);
  auto plain = codec.Pack(counters).ValueOrDie();
  BigUInt c = PaillierEncrypt(kp.public_key, plain[0], &rng).ValueOrDie();
  for (auto _ : state) {
    BigUInt m = PaillierDecryptCrt(kp.private_key, c).ValueOrDie();
    benchmark::DoNotOptimize(codec.Unpack({m}, k).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
  state.counters["slots"] = static_cast<double>(k);
}
BENCHMARK(BM_PackedCounterDecrypt);

void BM_PackingRoundTrip(benchmark::State& state) {
  // Pure codec arithmetic (no crypto): pack + unpack of `count` counters.
  auto codec = HomomorphicSumPackedCodec(511, BigUInt(kPackCounterBound),
                                         kPackPlayers, kPackEpsilonLog2)
                   .ValueOrDie();
  const auto count = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> counters(count);
  for (size_t i = 0; i < count; ++i) counters[i] = i % kPackCounterBound;
  for (auto _ : state) {
    auto packed = codec.Pack(counters).ValueOrDie();
    benchmark::DoNotOptimize(codec.UnpackU64(packed, count).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackingRoundTrip)->Arg(512);

void BM_FixedBaseTablePow(benchmark::State& state) {
  // Repeated-base exponentiation via the precomputed window table: zero
  // squarings per call, ~bits/w multiplies. Compare with BM_ModPow, which
  // pays bits squarings per call.
  Rng rng(35);
  auto bits = static_cast<size_t>(state.range(0));
  BigUInt m = BigUInt::RandomBits(&rng, bits);
  m.SetBit(bits - 1);
  m.SetBit(0);
  auto ctx = MontgomeryContext::Create(m).ValueOrDie();
  BigUInt base = BigUInt::RandomBelow(&rng, m);
  FixedBaseTable table(&ctx, base, bits);
  BigUInt exp = BigUInt::RandomBits(&rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Pow(exp));
  }
}
BENCHMARK(BM_FixedBaseTablePow)->Arg(512)->Arg(1024);

// ------------------------------------------------------------- protocols --

void BM_Protocol2Batch(benchmark::State& state) {
  const auto counters = static_cast<size_t>(state.range(0));
  Network net;
  net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2"),
                                 net.RegisterParty("P3")};
  Rng r1(1), r2(2), r3(3), secret(4);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  SecureSumConfig cfg;
  cfg.input_bound_a = BigUInt(1u << 20);
  cfg.modulus_s = BigUInt::PowerOfTwo(128);
  std::vector<std::vector<uint64_t>> inputs(3,
                                            std::vector<uint64_t>(counters, 7));
  for (auto _ : state) {
    SecureSumProtocol proto(&net, providers, providers[2], cfg);
    benchmark::DoNotOptimize(
        proto.RunProtocol2(inputs, rngs, &secret, "bm.").ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Protocol2Batch)->Arg(100)->Arg(1000)->Arg(5000);

// Packed vs unpacked homomorphic sum at identical inputs: the two headline
// numbers of the packing optimisation. `bits_per_counter` meters the full
// run (key publish + ciphertext rounds + envelope overhead) from the
// network simulator; items/sec counts aggregated counters.
void RunHomomorphicSumBench(benchmark::State& state, bool packed) {
  const size_t count = 512;
  std::vector<std::vector<uint64_t>> inputs(
      kPackPlayers, std::vector<uint64_t>(count));
  for (size_t k = 0; k < kPackPlayers; ++k) {
    for (size_t c = 0; c < count; ++c) {
      inputs[k][c] = (1000 * k + 7 * c) % kPackCounterBound;
    }
  }
  HomomorphicSumConfig cfg;
  cfg.paillier_bits = 512;
  if (packed) {
    cfg.counter_bound = BigUInt(kPackCounterBound);
    cfg.packing_epsilon_log2 = kPackEpsilonLog2;
  }
  uint64_t bytes = 0, runs = 0;
  for (auto _ : state) {
    Network net;
    std::vector<PartyId> players;
    for (size_t k = 0; k < kPackPlayers; ++k) {
      players.push_back(net.RegisterParty("P" + std::to_string(k + 1)));
    }
    Rng r1(91), r2(92), r3(93);
    std::vector<Rng*> rngs{&r1, &r2, &r3};
    HomomorphicSumProtocol proto(&net, players, cfg);
    benchmark::DoNotOptimize(proto.Run(inputs, rngs, "bm.").ValueOrDie());
    if (packed && !proto.last_run_packed()) {
      state.SkipWithError("packed run fell back to unpacked");
      return;
    }
    bytes += net.Report().num_bytes;
    ++runs;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
  if (runs > 0) {
    state.counters["bits_per_counter"] =
        static_cast<double>(bytes) * 8.0 / (static_cast<double>(runs) * count);
  }
}

void BM_HomomorphicSumUnpacked(benchmark::State& state) {
  RunHomomorphicSumBench(state, /*packed=*/false);
}
BENCHMARK(BM_HomomorphicSumUnpacked)->Unit(benchmark::kMillisecond);

void BM_HomomorphicSumPacked(benchmark::State& state) {
  RunHomomorphicSumBench(state, /*packed=*/true);
}
BENCHMARK(BM_HomomorphicSumPacked)->Unit(benchmark::kMillisecond);

void BM_Protocol4EndToEnd(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  auto graph = ErdosRenyiArcs(&rng, n, 5 * n).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.3);
  CascadeParams params;
  params.num_actions = 50;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  auto logs = ExclusivePartition(&rng, log, 3).ValueOrDie();
  Network net;
  PartyId host = net.RegisterParty("H");
  std::vector<PartyId> providers{net.RegisterParty("P1"),
                                 net.RegisterParty("P2"),
                                 net.RegisterParty("P3")};
  Rng r1(1), r2(2), r3(3), hr(4), secret(5);
  std::vector<Rng*> rngs{&r1, &r2, &r3};
  Protocol4Config cfg;
  for (auto _ : state) {
    LinkInfluenceProtocol proto(&net, host, providers, cfg);
    benchmark::DoNotOptimize(
        proto.Run(graph, 50, logs, &hr, rngs, &secret).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_arcs()));
}
BENCHMARK(BM_Protocol4EndToEnd)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- influence --

void BM_ComputeCounters(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(10);
  auto graph = ErdosRenyiArcs(&rng, n, 8 * n).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.3);
  CascadeParams params;
  params.num_actions = 200;
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeFollowCounts(log, graph.arcs(), 4));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_arcs()));
}
BENCHMARK(BM_ComputeCounters)->Arg(200)->Arg(1000);

void BM_UserScores(benchmark::State& state) {
  Rng rng(11);
  auto graph = ErdosRenyiArcs(&rng, 150, 900).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.4);
  CascadeParams params;
  params.num_actions = static_cast<size_t>(state.range(0));
  auto log = GenerateCascades(&rng, graph, truth, params).ValueOrDie();
  UserScoreOptions opt;
  opt.tau = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeUserInfluenceScores(graph, log, opt).ValueOrDie());
  }
}
BENCHMARK(BM_UserScores)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_CelfSeedSelection(benchmark::State& state) {
  Rng rng(12);
  auto graph = BarabasiAlbert(&rng, static_cast<size_t>(state.range(0)), 2)
                   .ValueOrDie();
  ArcProbabilities probs(graph.num_arcs(), 0.1);
  for (auto _ : state) {
    Rng opt(13);
    benchmark::DoNotOptimize(
        CelfInfluenceMaximization(graph, probs, 5, &opt, 50).ValueOrDie());
  }
}
BENCHMARK(BM_CelfSeedSelection)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_CascadeGeneration(benchmark::State& state) {
  Rng rng(14);
  auto graph = ErdosRenyiArcs(&rng, 500, 4000).ValueOrDie();
  auto truth = GroundTruthInfluence::Uniform(graph, 0.2);
  CascadeParams params;
  params.num_actions = 100;
  for (auto _ : state) {
    Rng gen(15);
    benchmark::DoNotOptimize(
        GenerateCascades(&gen, graph, truth, params).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CascadeGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace psi

PSI_BENCHMARK_MAIN();
