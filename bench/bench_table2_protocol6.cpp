// Reproduces Table 2 of the paper: communication costs of Protocol 6.
//
// Paper: NR = 4 rounds, NM = 3m messages, dominant size 2 q z A bits with
// z the ciphertext size (1024 for RSA). This bench runs Protocol 6 with
// per-integer RSA encryption (the paper's accounting) on the metered
// simulator and prints measured vs analytic rows, sweeping m, the action
// count A and the modulus size z.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "mpc/propagation_protocol.h"
#include "net/cost_model.h"

namespace psi {
namespace bench {
namespace {

struct RunResult {
  TrafficReport measured;
  CostSummary analytic;
  size_t q;
};

RunResult RunOnce(size_t m, size_t actions, size_t rsa_bits,
                  Protocol6Config::EncryptionMode mode, size_t n = 50,
                  size_t arcs = 160) {
  auto world = MakeWorld(m, n, arcs, actions, /*seed=*/m * 31 + actions);
  World& w = *world;
  Protocol6Config cfg;
  cfg.rsa_bits = rsa_bits;
  cfg.encryption = mode;
  cfg.obfuscation_factor = 2.0;
  PropagationGraphProtocol proto(&w.net, w.host, w.providers, cfg);
  auto out = proto.Run(*w.graph, actions, w.provider_logs, w.host_rng.get(),
                       w.RngPtrs())
                 .ValueOrDie();
  PSI_CHECK(out.graphs.size() == actions);

  RunResult r{w.net.Report(), {}, proto.views().omega.size()};
  Protocol6CostParams params;
  params.m = m;
  params.q = r.q;
  params.z = rsa_bits;
  params.kappa = 2 * rsa_bits;  // n and e on the wire.
  params.actions_per_provider.assign(m, 0);
  for (size_t k = 0; k < m; ++k) {
    std::unordered_set<ActionId> owned;
    for (const auto& rec : w.provider_logs[k].records()) {
      owned.insert(rec.action);
    }
    params.actions_per_provider[k] = owned.size();
  }
  r.analytic = Protocol6Costs(params).ValueOrDie();
  return r;
}

void Run() {
  PrintHeader(
      "Table 2 — Communication costs of Protocol 6 (secure propagation "
      "graphs)\nPaper: NR = 4 rounds, NM = 3m messages, MS ~ 2 q z A bits");

  std::printf("\n[Sweep 1] provider count m (A=40 actions, z=512)\n");
  for (size_t m : {2u, 3u, 5u}) {
    auto r = RunOnce(m, 40, 512, Protocol6Config::EncryptionMode::kPerInteger);
    std::printf("\n--- m=%zu, q=%zu ---\n", m, r.q);
    std::printf("%-40s %8s %12s | %10s %14s\n", "communication round", "msgs",
                "bytes", "model msgs", "model bytes");
    for (size_t i = 0; i < r.measured.rounds.size(); ++i) {
      const auto& round = r.measured.rounds[i];
      const auto& row = r.analytic.rows[i];
      std::printf("%-40s %8" PRIu64 " %12" PRIu64 " | %10" PRIu64 " %14" PRIu64
                  "\n",
                  round.label.c_str(), round.num_messages, round.num_bytes,
                  row.num_messages, row.TotalBits() / 8);
    }
    std::printf("NR measured=%" PRIu64 " model=4 | NM measured=%" PRIu64
                " model(3m)=%zu | MS measured=%" PRIu64 " model=%" PRIu64
                " bytes\n",
                r.measured.num_rounds, r.measured.num_messages, 3 * m,
                r.measured.num_bytes, r.analytic.ms_bits / 8);
    std::printf("MS payload=%" PRIu64 " wire=%" PRIu64
                " bytes | model enveloped=%" PRIu64
                " bytes (+29/msg framing)\n",
                r.measured.num_payload_bytes, r.measured.num_bytes,
                EnvelopedBits(r.analytic) / 8);
  }

  std::printf("\n[Sweep 2] ciphertext size z (m=2, A=20): MS scales with z\n");
  std::printf("%8s %14s %16s\n", "z bits", "bytes", "model bytes");
  for (size_t z : {256u, 512u, 1024u}) {
    auto r = RunOnce(2, 20, z, Protocol6Config::EncryptionMode::kPerInteger);
    std::printf("%8zu %14" PRIu64 " %16" PRIu64 "\n", z,
                r.measured.num_bytes, r.analytic.ms_bits / 8);
  }

  std::printf("\n[Sweep 3] action count A (m=3, z=512): MS scales with A\n");
  std::printf("%8s %14s %16s\n", "A", "bytes", "model bytes");
  for (size_t a : {10u, 20u, 40u}) {
    auto r = RunOnce(3, a, 512, Protocol6Config::EncryptionMode::kPerInteger);
    std::printf("%8zu %14" PRIu64 " %16" PRIu64 "\n", a,
                r.measured.num_bytes, r.analytic.ms_bits / 8);
  }

  std::printf(
      "\nShape check vs paper: NR/NM match exactly; bytes are dominated by\n"
      "the two ciphertext rounds and scale linearly in q, z and A, i.e.\n"
      "~2qzA bits as Table 2 states.\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::Run();
  return 0;
}
