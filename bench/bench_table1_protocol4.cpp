// Reproduces Table 1 of the paper: communication costs of Protocol 4.
//
// The paper reports, per communication round, the number of messages and the
// per-message size, and the aggregates NR = 8, NM = m^2 + m + 7,
// MS = O(m^2 (n + q) log S). This bench runs the real protocol on the
// metered network simulator and prints the measured traffic next to the
// analytic model rows, for sweeps over the provider count m, the user count
// n, and the share modulus size log S.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "influence/link_influence.h"
#include "mpc/link_influence_protocol.h"
#include "net/cost_model.h"

namespace psi {
namespace bench {
namespace {

struct RunResult {
  TrafficReport measured;
  CostSummary analytic;
  size_t modulus_bits;
  size_t q;
  double max_error;  // vs plaintext: sanity that the run was genuine.
};

RunResult RunOnce(size_t m, size_t n, size_t arcs, size_t actions,
                  double obfuscation_c) {
  auto world = MakeWorld(m, n, arcs, actions, /*seed=*/m * 7919 + n);
  World& w = *world;
  Protocol4Config cfg;
  cfg.h = 4;
  cfg.obfuscation_factor = obfuscation_c;
  LinkInfluenceProtocol proto(&w.net, w.host, w.providers, cfg);
  auto secure = proto.Run(*w.graph, actions, w.provider_logs,
                          w.host_rng.get(), w.RngPtrs(), w.pair_secret.get())
                    .ValueOrDie();
  auto plain =
      ComputeLinkInfluence(w.log, w.graph->arcs(), n, cfg.h).ValueOrDie();

  RunResult r{w.net.Report(),
              {},
              proto.modulus().BitLength(),
              proto.views().omega.size(),
              MeanAbsoluteError(secure, plain).ValueOrDie()};
  Protocol4CostParams params;
  params.m = m;
  params.n = n;
  params.q = r.q;
  params.log_s = r.modulus_bits;
  r.analytic = Protocol4Costs(params).ValueOrDie();
  return r;
}

void PrintComparison(const RunResult& r, size_t m, size_t n) {
  std::printf("\n--- m=%zu providers, n=%zu users, q=%zu, log S=%zu bits ---\n",
              m, n, r.q, r.modulus_bits);
  std::printf("%-44s %10s %12s | %10s %14s\n", "communication round",
              "msgs", "bytes", "model msgs", "model bytes");
  for (size_t i = 0; i < r.measured.rounds.size(); ++i) {
    const auto& round = r.measured.rounds[i];
    const auto& row = r.analytic.rows[i];
    std::printf("%-44s %10" PRIu64 " %12" PRIu64 " | %10" PRIu64 " %14" PRIu64
                "\n",
                round.label.c_str(), round.num_messages, round.num_bytes,
                row.num_messages, row.TotalBits() / 8);
  }
  std::printf("%-44s %10" PRIu64 " %12" PRIu64 " | %10" PRIu64 " %14" PRIu64
              "\n",
              "TOTAL", r.measured.num_messages, r.measured.num_bytes,
              r.analytic.nm, r.analytic.ms_bits / 8);
  std::printf("NR measured=%" PRIu64 " model=8 | NM measured=%" PRIu64
              " model(m^2+m+7)=%zu | plaintext max err=%.1e\n",
              r.measured.num_rounds, r.measured.num_messages, m * m + m + 7,
              r.max_error);
  std::printf("MS payload=%" PRIu64 " wire=%" PRIu64
              " bytes | model enveloped=%" PRIu64 " bytes (+29/msg framing)\n",
              r.measured.num_payload_bytes, r.measured.num_bytes,
              EnvelopedBits(r.analytic) / 8);
}

void Run() {
  PrintHeader(
      "Table 1 — Communication costs of Protocol 4 (secure link influence)\n"
      "Paper: NR = 8 rounds, NM = m^2 + m + 7 messages, MS = O(m^2 (n+q) log S)");

  std::printf("\n[Sweep 1] provider count m (n=200 users, |E|=1000, c=2)\n");
  for (size_t m : {2u, 3u, 5u, 8u}) {
    auto r = RunOnce(m, 200, 1000, 100, 2.0);
    PrintComparison(r, m, 200);
  }

  std::printf("\n[Sweep 2] problem size n (m=3 providers)\n");
  std::printf("%8s %8s %8s %12s %12s %16s\n", "n", "|E|", "q", "NM", "bytes",
              "model bytes");
  for (size_t n : {100u, 200u, 500u, 1000u}) {
    auto r = RunOnce(3, n, 5 * n, 100, 2.0);
    std::printf("%8zu %8zu %8zu %12" PRIu64 " %12" PRIu64 " %16" PRIu64 "\n",
                n, 5 * n, r.q, r.measured.num_messages, r.measured.num_bytes,
                r.analytic.ms_bits / 8);
  }

  std::printf(
      "\nShape check vs paper: messages grow quadratically in m, bytes grow\n"
      "linearly in (n + q) and in log S; the measured byte totals track the\n"
      "analytic model (serialization adds small varint overheads).\n");
}

}  // namespace
}  // namespace bench
}  // namespace psi

int main() {
  psi::bench::Run();
  return 0;
}
