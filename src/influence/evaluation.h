// Evaluation metrics for learned influence: how well does an estimate
// *rank* links/users against a reference? Viral marketing consumes
// rankings (top-k seeds, strongest links), so rank metrics complement the
// plain correlation used in the learning ablation.

#ifndef PSI_INFLUENCE_EVALUATION_H_
#define PSI_INFLUENCE_EVALUATION_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Kendall rank correlation tau-a in [-1, 1]: the normalized excess
/// of concordant over discordant pairs. 0 for degenerate inputs.
[[nodiscard]] Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b);

/// \brief Fraction of the reference top-k that the estimate's top-k
/// recovers (a.k.a. precision@k == recall@k for equal k).
[[nodiscard]] Result<double> TopKOverlap(const std::vector<double>& reference,
                           const std::vector<double>& estimate, size_t k);

/// \brief Mean reciprocal rank of the reference's argmax within the
/// estimate's ranking (1 = the estimate ranks the true best item first).
[[nodiscard]] Result<double> ReciprocalRankOfBest(const std::vector<double>& reference,
                                    const std::vector<double>& estimate);

}  // namespace psi

#endif  // PSI_INFLUENCE_EVALUATION_H_
