#include "influence/evaluation.h"

#include <algorithm>
#include <numeric>

namespace psi {

Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("KendallTau requires equal lengths");
  }
  const size_t n = a.size();
  if (n < 2) return 0.0;
  // O(n^2) tau-a: adequate for the evaluation sizes used here.
  int64_t concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      double prod = da * db;
      if (prod > 0) ++concordant;
      if (prod < 0) ++discordant;
    }
  }
  auto pairs = static_cast<double>(n * (n - 1) / 2);
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) /
         pairs;
}

namespace {

std::vector<size_t> RankedIndices(const std::vector<double>& scores) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
    return scores[x] > scores[y];
  });
  return idx;
}

}  // namespace

Result<double> TopKOverlap(const std::vector<double>& reference,
                           const std::vector<double>& estimate, size_t k) {
  if (reference.size() != estimate.size()) {
    return Status::InvalidArgument("TopKOverlap requires equal lengths");
  }
  if (k == 0 || k > reference.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  auto ref_rank = RankedIndices(reference);
  auto est_rank = RankedIndices(estimate);
  std::vector<bool> in_ref(reference.size(), false);
  for (size_t i = 0; i < k; ++i) in_ref[ref_rank[i]] = true;
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) hits += in_ref[est_rank[i]];
  return static_cast<double>(hits) / static_cast<double>(k);
}

Result<double> ReciprocalRankOfBest(const std::vector<double>& reference,
                                    const std::vector<double>& estimate) {
  if (reference.size() != estimate.size()) {
    return Status::InvalidArgument("requires equal lengths");
  }
  if (reference.empty()) return Status::InvalidArgument("empty input");
  size_t best = 0;
  for (size_t i = 1; i < reference.size(); ++i) {
    if (reference[i] > reference[best]) best = i;
  }
  auto est_rank = RankedIndices(estimate);
  for (size_t pos = 0; pos < est_rank.size(); ++pos) {
    if (est_rank[pos] == best) {
      return 1.0 / static_cast<double>(pos + 1);
    }
  }
  return Status::Internal("best index missing from ranking");
}

}  // namespace psi
