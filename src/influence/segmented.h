// Extension: segment-conditioned link influence.
//
// The paper's future work suggests using attributes "in conjunction with the
// activity logs, to better estimate the influence strengths" (Section 8).
// This module conditions the Eq. (1) estimator on a public segmentation of
// the actions (product categories, topics, campaign types):
//     p^g_ij = b^h_ij[g] / a_i[g]
// "u influences v on books but not on movies" — strictly more informative
// than the pooled estimate for targeting a category-specific campaign.
// The secure counterpart lives in mpc/segmented_influence.h.

#ifndef PSI_INFLUENCE_SEGMENTED_H_
#define PSI_INFLUENCE_SEGMENTED_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "influence/link_influence.h"

namespace psi {

/// \brief Per-segment link strengths; per_segment[g] covers segment g.
struct SegmentedLinkInfluence {
  std::vector<LinkInfluence> per_segment;

  size_t num_segments() const { return per_segment.size(); }
};

/// \brief Restricts a log to the actions of one segment.
ActionLog FilterLogBySegment(const ActionLog& log,
                             const std::vector<uint32_t>& segment_of_action,
                             uint32_t segment);

/// \brief Plaintext baseline: Eq. (1) per segment over the unified log.
[[nodiscard]] Result<SegmentedLinkInfluence> ComputeSegmentedLinkInfluence(
    const ActionLog& log, const std::vector<Arc>& pairs, size_t num_users,
    uint64_t h, const std::vector<uint32_t>& segment_of_action,
    uint32_t num_segments);

}  // namespace psi

#endif  // PSI_INFLUENCE_SEGMENTED_H_
