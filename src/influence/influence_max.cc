#include "influence/influence_max.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace psi {

namespace {

// One IC simulation; returns the number of activated nodes.
size_t SimulateOnce(const SocialGraph& graph, const ArcProbabilities& probs,
                    const std::vector<NodeId>& seeds, Rng* rng,
                    std::vector<uint32_t>* visited_epoch, uint32_t epoch,
                    const std::vector<size_t>& arc_offset) {
  std::vector<NodeId> frontier = seeds;
  size_t activated = 0;
  for (NodeId s : seeds) {
    if ((*visited_epoch)[s] != epoch) {
      (*visited_epoch)[s] = epoch;
      ++activated;
    }
  }
  while (!frontier.empty()) {
    NodeId u = frontier.back();
    frontier.pop_back();
    const auto& nbrs = graph.OutNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      NodeId v = nbrs[j];
      if ((*visited_epoch)[v] == epoch) continue;
      if (rng->Bernoulli(probs[arc_offset[u] + j])) {
        (*visited_epoch)[v] = epoch;
        ++activated;
        frontier.push_back(v);
      }
    }
  }
  return activated;
}

// Precomputes, for every node, the index into the arc-aligned probability
// vector of its first out-arc. Requires probs to be ordered by (node, j)
// like SocialGraph stores arcs... it is not, so build a remapped vector.
struct FlatProbs {
  std::vector<size_t> offset;  // node -> first slot
  std::vector<double> p;       // per (node, out-neighbor j)
};

[[nodiscard]] Result<FlatProbs> Flatten(const SocialGraph& graph,
                          const ArcProbabilities& probs) {
  if (probs.size() != graph.num_arcs()) {
    return Status::InvalidArgument("probability vector length != arc count");
  }
  FlatProbs flat;
  flat.offset.resize(graph.num_nodes() + 1, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    flat.offset[u + 1] = flat.offset[u] + graph.OutDegree(u);
  }
  flat.p.assign(graph.num_arcs(), 0.0);
  std::vector<size_t> cursor(graph.num_nodes(), 0);
  for (size_t k = 0; k < graph.num_arcs(); ++k) {
    const Arc& a = graph.arcs()[k];
    flat.p[flat.offset[a.from] + cursor[a.from]] = probs[k];
    ++cursor[a.from];
  }
  return flat;
}

double EstimateSpreadFlat(const SocialGraph& graph, const FlatProbs& flat,
                          const std::vector<NodeId>& seeds, Rng* rng,
                          size_t num_simulations,
                          std::vector<uint32_t>* visited_epoch,
                          uint32_t* epoch) {
  double total = 0.0;
  for (size_t s = 0; s < num_simulations; ++s) {
    ++*epoch;
    total += static_cast<double>(SimulateOnce(
        graph, flat.p, seeds, rng, visited_epoch, *epoch, flat.offset));
  }
  return total / static_cast<double>(num_simulations);
}

}  // namespace

Result<double> EstimateSpread(const SocialGraph& graph,
                              const ArcProbabilities& probs,
                              const std::vector<NodeId>& seeds, Rng* rng,
                              size_t num_simulations) {
  if (num_simulations == 0) {
    return Status::InvalidArgument("need at least one simulation");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) return Status::OutOfRange("bad seed id");
  }
  PSI_ASSIGN_OR_RETURN(FlatProbs flat, Flatten(graph, probs));
  std::vector<uint32_t> visited(graph.num_nodes(), 0);
  uint32_t epoch = 0;
  return EstimateSpreadFlat(graph, flat, seeds, rng, num_simulations, &visited,
                            &epoch);
}

Result<SeedSelection> GreedyInfluenceMaximization(const SocialGraph& graph,
                                                  const ArcProbabilities& probs,
                                                  size_t k, Rng* rng,
                                                  size_t num_simulations) {
  if (k == 0 || k > graph.num_nodes()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  PSI_ASSIGN_OR_RETURN(FlatProbs flat, Flatten(graph, probs));
  std::vector<uint32_t> visited(graph.num_nodes(), 0);
  uint32_t epoch = 0;

  SeedSelection sel;
  std::vector<bool> chosen(graph.num_nodes(), false);
  double current = 0.0;
  for (size_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    NodeId best = 0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (chosen[v]) continue;
      auto candidate = sel.seeds;
      candidate.push_back(v);
      double spread = EstimateSpreadFlat(graph, flat, candidate, rng,
                                         num_simulations, &visited, &epoch);
      ++sel.spread_evaluations;
      if (spread - current > best_gain) {
        best_gain = spread - current;
        best = v;
      }
    }
    chosen[best] = true;
    sel.seeds.push_back(best);
    current += best_gain;
  }
  sel.expected_spread = current;
  return sel;
}

Result<SeedSelection> CelfInfluenceMaximization(const SocialGraph& graph,
                                                const ArcProbabilities& probs,
                                                size_t k, Rng* rng,
                                                size_t num_simulations) {
  if (k == 0 || k > graph.num_nodes()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  PSI_ASSIGN_OR_RETURN(FlatProbs flat, Flatten(graph, probs));
  std::vector<uint32_t> visited(graph.num_nodes(), 0);
  uint32_t epoch = 0;

  SeedSelection sel;
  // (gain, node, round-when-evaluated): lazy priority queue.
  struct Entry {
    double gain;
    NodeId node;
    size_t fresh_at;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.gain < b.gain; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    double spread = EstimateSpreadFlat(graph, flat, {v}, rng, num_simulations,
                                       &visited, &epoch);
    ++sel.spread_evaluations;
    heap.push(Entry{spread, v, 0});
  }

  double current = 0.0;
  while (sel.seeds.size() < k) {
    Entry top = heap.top();
    heap.pop();
    if (top.fresh_at == sel.seeds.size()) {
      sel.seeds.push_back(top.node);
      current += top.gain;
    } else {
      // Stale: re-evaluate the marginal gain against the current seed set.
      auto candidate = sel.seeds;
      candidate.push_back(top.node);
      double spread = EstimateSpreadFlat(graph, flat, candidate, rng,
                                         num_simulations, &visited, &epoch);
      ++sel.spread_evaluations;
      heap.push(Entry{spread - current, top.node, sel.seeds.size()});
    }
  }
  sel.expected_spread = current;
  return sel;
}

SeedSelection DegreeHeuristic(const SocialGraph& graph, size_t k) {
  std::vector<NodeId> ids(graph.num_nodes());
  std::iota(ids.begin(), ids.end(), 0u);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k),
                    ids.end(), [&](NodeId a, NodeId b) {
                      return graph.OutDegree(a) > graph.OutDegree(b);
                    });
  SeedSelection sel;
  sel.seeds.assign(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k));
  return sel;
}

}  // namespace psi
