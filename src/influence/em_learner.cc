#include "influence/em_learner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/thread_pool.h"

namespace psi {

namespace {

// Precomputed episode structure: for each arc, the indices of actions where
// it was tried, and for each activation, its candidate parent arcs.
struct Episodes {
  // Per arc: number of trials (u active, v not already active at u's time).
  std::vector<uint64_t> trials;
  // Activations with at least one candidate parent: list of (arc indices).
  std::vector<std::vector<size_t>> activation_parents;
};

Episodes BuildEpisodes(const SocialGraph& graph, const ActionLog& log,
                       uint64_t h) {
  Episodes ep;
  ep.trials.assign(graph.num_arcs(), 0);

  // Arc index lookup.
  std::unordered_map<uint64_t, size_t> arc_index;
  arc_index.reserve(graph.num_arcs());
  for (size_t k = 0; k < graph.num_arcs(); ++k) {
    const Arc& a = graph.arcs()[k];
    arc_index.emplace((static_cast<uint64_t>(a.from) << 32) | a.to, k);
  }

  ActionId num_actions = log.MaxActionId();
  for (ActionId action = 0; action < num_actions; ++action) {
    auto records = log.RecordsOfAction(action);
    std::unordered_map<NodeId, uint64_t> when;
    when.reserve(records.size());
    for (const auto& r : records) when.emplace(r.user, r.time);

    // Trials: u active at t_u, v not active at any t_v <= t_u.
    for (const auto& r : records) {
      for (NodeId v : graph.OutNeighbors(r.user)) {
        auto it = when.find(v);
        if (it != when.end() && it->second <= r.time) continue;  // Not a trial.
        size_t k = arc_index.at((static_cast<uint64_t>(r.user) << 32) | v);
        ++ep.trials[k];
      }
    }
    // Activations: candidate parents of each activated v.
    for (const auto& r : records) {
      std::vector<size_t> parents;
      for (NodeId u : graph.InNeighbors(r.user)) {
        auto it = when.find(u);
        if (it == when.end()) continue;
        uint64_t tu = it->second;
        if (tu < r.time && r.time <= tu + h) {
          parents.push_back(
              arc_index.at((static_cast<uint64_t>(u) << 32) | r.user));
        }
      }
      if (!parents.empty()) {
        ep.activation_parents.push_back(std::move(parents));
      }
    }
  }
  return ep;
}

}  // namespace

Result<EmResult> LearnInfluenceEm(const SocialGraph& graph,
                                  const ActionLog& log,
                                  const EmConfig& config) {
  if (config.h == 0) return Status::InvalidArgument("window h must be > 0");
  if (config.initial_p <= 0.0 || config.initial_p >= 1.0) {
    return Status::InvalidArgument("initial_p must be in (0, 1)");
  }
  if (config.max_iterations == 0) {
    return Status::InvalidArgument("need at least one iteration");
  }

  Episodes ep = BuildEpisodes(graph, log, config.h);
  std::vector<double> p(graph.num_arcs(), config.initial_p);
  // Arcs with zero trials carry no evidence: probability pinned to 0.
  for (size_t k = 0; k < p.size(); ++k) {
    if (ep.trials[k] == 0) p[k] = 0.0;
  }

  EmResult result;
  std::vector<double> successes(graph.num_arcs());
  // E-step fan-out state: activations are split into a chunk count that
  // depends only on their number (never on PSI_THREADS), each chunk
  // accumulates into its own partial array, and partials are reduced in
  // chunk order — so the floating-point result is identical for every
  // thread count. Partial buffers are allocated once across iterations.
  const size_t num_activations = ep.activation_parents.size();
  const size_t num_chunks = ThreadPool::NumChunks(num_activations);
  std::vector<std::vector<double>> partials(num_chunks);
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    // E-step: ascribe each activation to its candidate parents.
    ParallelForChunked(num_activations,
                       [&](size_t chunk, size_t begin, size_t end) {
      auto& part = partials[chunk];
      part.assign(p.size(), 0.0);
      for (size_t a = begin; a < end; ++a) {
        const auto& parents = ep.activation_parents[a];
        double fail_all = 1.0;
        for (size_t k : parents) fail_all *= 1.0 - p[k];
        double activation_prob = 1.0 - fail_all;
        if (activation_prob <= 0.0) {
          // All candidate parents currently at 0: split evenly to escape
          // the degenerate fixpoint.
          double share = 1.0 / static_cast<double>(parents.size());
          for (size_t k : parents) part[k] += share;
          continue;
        }
        for (size_t k : parents) {
          part[k] += p[k] / activation_prob;
        }
      }
    });
    ParallelFor(successes.size(), [&](size_t k) {
      double sum = 0.0;
      for (size_t c = 0; c < num_chunks; ++c) sum += partials[c][k];
      successes[k] = sum;
    });
    // M-step: successes over trials.
    double delta = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
      if (ep.trials[k] == 0) continue;
      double updated = successes[k] / static_cast<double>(ep.trials[k]);
      updated = std::clamp(updated, 0.0, 1.0);
      delta = std::max(delta, std::abs(updated - p[k]));
      p[k] = updated;
    }
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < config.tolerance) break;
  }

  // Final log-likelihood: activations with parents + failed trials.
  double ll = 0.0;
  for (const auto& parents : ep.activation_parents) {
    double fail_all = 1.0;
    for (size_t k : parents) fail_all *= 1.0 - p[k];
    double prob = 1.0 - fail_all;
    ll += std::log(std::max(prob, 1e-300));
  }
  // Failure terms: each trial that did not lead to the success accounted in
  // activation_parents contributes log(1 - p). Successes per arc at the
  // fixpoint equal the E-step ascriptions; approximate failures as
  // trials - ascribed successes.
  for (size_t k = 0; k < p.size(); ++k) {
    if (ep.trials[k] == 0 || p[k] >= 1.0) continue;
    double failures =
        std::max(0.0, static_cast<double>(ep.trials[k]) - successes[k]);
    ll += failures * std::log(1.0 - p[k]);
  }
  result.log_likelihood = ll;

  result.influence.pairs = graph.arcs();
  result.influence.p = std::move(p);
  return result;
}

}  // namespace psi
