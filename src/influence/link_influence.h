// Plaintext computation of link influence strengths (Section 3.1).
// This is the ground truth the secure Protocol 4 must reproduce exactly:
//   Eq. (1): p_ij = b^h_ij / a_i
//   Eq. (2): p_ij = (sum_l w_l c^l_ij) / a_i
// with p_ij = 0 whenever a_i = 0.

#ifndef PSI_INFLUENCE_LINK_INFLUENCE_H_
#define PSI_INFLUENCE_LINK_INFLUENCE_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "actionlog/counters.h"
#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief Link strengths aligned with `pairs` (usually graph.arcs()).
struct LinkInfluence {
  std::vector<Arc> pairs;
  std::vector<double> p;
};

/// \brief Eq. (1): p_ij = b^h_ij / a_i over the unified log.
[[nodiscard]] Result<LinkInfluence> ComputeLinkInfluence(const ActionLog& log,
                                           const std::vector<Arc>& pairs,
                                           size_t num_users, uint64_t h);

/// \brief Eq. (2): temporally weighted variant.
[[nodiscard]] Result<LinkInfluence> ComputeWeightedLinkInfluence(
    const ActionLog& log, const std::vector<Arc>& pairs, size_t num_users,
    const TemporalWeights& weights);

/// \brief Mean absolute error between two influence vectors on the same
/// pairs (used to compare learned strengths against ground truth and secure
/// output against plaintext).
[[nodiscard]] Result<double> MeanAbsoluteError(const LinkInfluence& a,
                                 const LinkInfluence& b);

}  // namespace psi

#endif  // PSI_INFLUENCE_LINK_INFLUENCE_H_
