#include "influence/segmented.h"

namespace psi {

ActionLog FilterLogBySegment(const ActionLog& log,
                             const std::vector<uint32_t>& segment_of_action,
                             uint32_t segment) {
  ActionLog out;
  for (const auto& r : log.records()) {
    if (r.action < segment_of_action.size() &&
        segment_of_action[r.action] == segment) {
      out.Add(r);
    }
  }
  return out;
}

Result<SegmentedLinkInfluence> ComputeSegmentedLinkInfluence(
    const ActionLog& log, const std::vector<Arc>& pairs, size_t num_users,
    uint64_t h, const std::vector<uint32_t>& segment_of_action,
    uint32_t num_segments) {
  if (num_segments == 0) {
    return Status::InvalidArgument("need at least one segment");
  }
  for (uint32_t g : segment_of_action) {
    if (g >= num_segments) {
      return Status::OutOfRange("segment label out of range");
    }
  }
  SegmentedLinkInfluence out;
  out.per_segment.reserve(num_segments);
  for (uint32_t g = 0; g < num_segments; ++g) {
    ActionLog filtered = FilterLogBySegment(log, segment_of_action, g);
    PSI_ASSIGN_OR_RETURN(LinkInfluence li,
                         ComputeLinkInfluence(filtered, pairs, num_users, h));
    out.per_segment.push_back(std::move(li));
  }
  return out;
}

}  // namespace psi
