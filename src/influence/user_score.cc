#include "influence/user_score.h"

#include <algorithm>
#include <numeric>

#include "actionlog/counters.h"

namespace psi {

Result<PropagationGraph> BuildPropagationGraph(const SocialGraph& graph,
                                               const ActionLog& log,
                                               ActionId action) {
  PropagationGraph pg(graph.num_nodes());
  auto records = log.RecordsOfAction(action);
  // Adoption time per performer of this action.
  std::unordered_map<NodeId, uint64_t> when;
  when.reserve(records.size());
  for (const auto& r : records) when.emplace(r.user, r.time);
  for (const auto& r : records) {
    for (NodeId v : graph.OutNeighbors(r.user)) {
      auto it = when.find(v);
      if (it != when.end() && it->second > r.time) {
        PSI_RETURN_NOT_OK(pg.AddArc(r.user, v, it->second - r.time));
      }
    }
  }
  return pg;
}

Result<std::vector<double>> ComputeUserInfluenceScores(
    const SocialGraph& graph, const ActionLog& log,
    const UserScoreOptions& options) {
  const size_t n = graph.num_nodes();
  auto a = ComputeActionCounts(log, n);
  std::vector<double> numer(n, 0.0);

  ActionId num_actions = log.MaxActionId();
  for (ActionId action = 0; action < num_actions; ++action) {
    PSI_ASSIGN_OR_RETURN(PropagationGraph pg,
                         BuildPropagationGraph(graph, log, action));
    // Only performers of the action can have non-empty spheres.
    for (const auto& r : log.RecordsOfAction(action)) {
      size_t sphere = pg.InfluenceSphereSize(r.user, options.tau);
      if (options.include_self) sphere += 1;
      numer[r.user] += static_cast<double>(sphere);
    }
  }

  std::vector<double> scores(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (a[v] > 0) scores[v] = numer[v] / static_cast<double>(a[v]);
  }
  return scores;
}

Result<std::vector<double>> ScoresFromPropagationGraphs(
    const std::vector<PropagationGraph>& graphs,
    const std::vector<std::vector<NodeId>>& performers,
    const std::vector<uint64_t>& action_counts,
    const UserScoreOptions& options) {
  if (graphs.size() != performers.size()) {
    return Status::InvalidArgument("graphs/performers size mismatch");
  }
  const size_t n = action_counts.size();
  std::vector<double> numer(n, 0.0);
  for (size_t a = 0; a < graphs.size(); ++a) {
    if (graphs[a].num_nodes() != n) {
      return Status::InvalidArgument("propagation graph node count mismatch");
    }
    for (NodeId u : performers[a]) {
      if (u >= n) return Status::OutOfRange("performer id out of range");
      size_t sphere = graphs[a].InfluenceSphereSize(u, options.tau);
      if (options.include_self) sphere += 1;
      numer[u] += static_cast<double>(sphere);
    }
  }
  std::vector<double> scores(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (action_counts[v] > 0) {
      scores[v] = numer[v] / static_cast<double>(action_counts[v]);
    }
  }
  return scores;
}

std::vector<NodeId> TopKUsers(const std::vector<double>& scores, size_t k) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0u);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k),
                    ids.end(), [&](NodeId x, NodeId y) {
                      if (scores[x] != scores[y]) return scores[x] > scores[y];
                      return x < y;
                    });
  ids.resize(k);
  return ids;
}

}  // namespace psi
