// Plaintext user influence scores (Section 3.2, Definitions 3.1-3.3):
// the baseline for the secure Protocol 6 pipeline.

#ifndef PSI_INFLUENCE_USER_SCORE_H_
#define PSI_INFLUENCE_USER_SCORE_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/propagation_graph.h"

namespace psi {

/// \brief Builds PG(alpha) per Definition 3.1: arc (v_i, v_j) labeled
/// Delta t = t_j - t_i whenever (v_i, v_j) in E, both performed `action`,
/// and Delta t > 0.
[[nodiscard]] Result<PropagationGraph> BuildPropagationGraph(const SocialGraph& graph,
                                               const ActionLog& log,
                                               ActionId action);

/// \brief Options for the influence-score computation.
struct UserScoreOptions {
  uint64_t tau = 16;        ///< Maximum propagation time threshold.
  bool include_self = false;  ///< Count v_i in its own sphere (see DESIGN.md).
};

/// \brief score(v_i) = (sum_alpha |Inf_tau(v_i, alpha)|) / a_i per Eq. (3);
/// 0 when a_i = 0. Returned per user id.
[[nodiscard]] Result<std::vector<double>> ComputeUserInfluenceScores(
    const SocialGraph& graph, const ActionLog& log,
    const UserScoreOptions& options);

/// \brief Same scores computed from pre-built propagation graphs (the form
/// the host uses after Protocol 6): graphs[a] is PG(a), `action_counts` is
/// the a_i vector obtained via Protocol 4.
[[nodiscard]] Result<std::vector<double>> ScoresFromPropagationGraphs(
    const std::vector<PropagationGraph>& graphs,
    const std::vector<std::vector<NodeId>>& performers,
    const std::vector<uint64_t>& action_counts,
    const UserScoreOptions& options);

/// \brief Indices of the top-k scores, descending (ties by smaller id).
std::vector<NodeId> TopKUsers(const std::vector<double>& scores, size_t k);

}  // namespace psi

#endif  // PSI_INFLUENCE_USER_SCORE_H_
