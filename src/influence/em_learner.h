// Expectation-Maximization learning of IC influence probabilities
// (Saito, Nakano, Kimura 2008) — the alternative estimator the paper's
// related-work section discusses and deliberately avoids in the secure
// setting (it updates every arc on every iteration, so a secure version
// would multiply the MPC cost by the iteration count; Section 2).
//
// Included here as a *plaintext* baseline: the learning-method ablation
// bench compares Eq. (1), Eq. (2) and EM against the generating ground
// truth, reproducing the trade-off the paper cites for preferring the
// frequency estimator of Goyal et al.
//
// Model: user v activates on action alpha at time t_v; its potential
// influencers are the in-neighbors u with 0 < t_v - t_u <= h. The
// activation likelihood is 1 - prod_u (1 - p_uv); EM ascribes each
// activation fractionally to its candidate parents (E-step) and re-estimates
// p_uv as ascribed successes over trials (M-step). A trial of (u, v) is an
// action u performed while v was not already active; it succeeds if v
// follows within the window.

#ifndef PSI_INFLUENCE_EM_LEARNER_H_
#define PSI_INFLUENCE_EM_LEARNER_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"
#include "influence/link_influence.h"

namespace psi {

/// \brief EM configuration.
struct EmConfig {
  uint64_t h = 4;             ///< Influence window (same role as Eq. (1)).
  size_t max_iterations = 50;
  double tolerance = 1e-6;    ///< Stop when max |p - p_prev| drops below.
  double initial_p = 0.3;     ///< Uniform initialization.
};

/// \brief EM output.
struct EmResult {
  LinkInfluence influence;    ///< Arc-aligned learned probabilities.
  size_t iterations = 0;      ///< Iterations actually run.
  double final_delta = 0.0;   ///< Last max parameter change.
  double log_likelihood = 0.0;  ///< Final data log-likelihood.
};

/// \brief Learns p_uv for every arc of `graph` from the unified log.
[[nodiscard]] Result<EmResult> LearnInfluenceEm(const SocialGraph& graph,
                                  const ActionLog& log,
                                  const EmConfig& config);

}  // namespace psi

#endif  // PSI_INFLUENCE_EM_LEARNER_H_
