#include "influence/link_influence.h"

#include <cmath>

namespace psi {

Result<LinkInfluence> ComputeLinkInfluence(const ActionLog& log,
                                           const std::vector<Arc>& pairs,
                                           size_t num_users, uint64_t h) {
  if (h == 0) return Status::InvalidArgument("window h must be positive");
  auto a = ComputeActionCounts(log, num_users);
  auto b = ComputeFollowCounts(log, pairs, h);
  LinkInfluence out;
  out.pairs = pairs;
  out.p.resize(pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    NodeId i = pairs[k].from;
    if (i >= num_users || a[i] == 0) {
      out.p[k] = 0.0;  // Paper: p_ij := 0 when the denominator is 0.
    } else {
      out.p[k] = static_cast<double>(b[k]) / static_cast<double>(a[i]);
    }
  }
  return out;
}

Result<LinkInfluence> ComputeWeightedLinkInfluence(
    const ActionLog& log, const std::vector<Arc>& pairs, size_t num_users,
    const TemporalWeights& weights) {
  if (weights.h() == 0) {
    return Status::InvalidArgument("window h must be positive");
  }
  auto a = ComputeActionCounts(log, num_users);
  auto num = ComputeWeightedFollowCounts(log, pairs, weights);
  LinkInfluence out;
  out.pairs = pairs;
  out.p.resize(pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    NodeId i = pairs[k].from;
    if (i >= num_users || a[i] == 0) {
      out.p[k] = 0.0;
    } else {
      out.p[k] = num[k] / static_cast<double>(a[i]);
    }
  }
  return out;
}

Result<double> MeanAbsoluteError(const LinkInfluence& a,
                                 const LinkInfluence& b) {
  if (a.p.size() != b.p.size()) {
    return Status::InvalidArgument("influence vectors differ in length");
  }
  if (a.p.empty()) return 0.0;
  double acc = 0.0;
  for (size_t k = 0; k < a.p.size(); ++k) {
    acc += std::abs(a.p[k] - b.p[k]);
  }
  return acc / static_cast<double>(a.p.size());
}

}  // namespace psi
