// Influence maximization under the independent-cascade model: the downstream
// consumer of the learned link strengths (Kempe-Kleinberg-Tardos greedy, with
// the CELF lazy-evaluation speedup). The paper lists this as the purpose of
// the whole pipeline ("computing the nodes which maximize the expected
// spread") and as future work for the secure setting; here it closes the loop
// in the viral-marketing example and benches.

#ifndef PSI_INFLUENCE_INFLUENCE_MAX_H_
#define PSI_INFLUENCE_INFLUENCE_MAX_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace psi {

/// \brief Arc-aligned influence probabilities (same order as graph.arcs()).
using ArcProbabilities = std::vector<double>;

/// \brief Monte Carlo estimate of the expected IC spread of `seeds`.
[[nodiscard]] Result<double> EstimateSpread(const SocialGraph& graph,
                              const ArcProbabilities& probs,
                              const std::vector<NodeId>& seeds, Rng* rng,
                              size_t num_simulations);

/// \brief Result of a seed-selection run.
struct SeedSelection {
  std::vector<NodeId> seeds;
  double expected_spread = 0.0;
  size_t spread_evaluations = 0;  ///< Monte Carlo calls (CELF saves these).
};

/// \brief KKT greedy: k rounds, each adding the node with the largest
/// marginal spread gain.
[[nodiscard]] Result<SeedSelection> GreedyInfluenceMaximization(const SocialGraph& graph,
                                                  const ArcProbabilities& probs,
                                                  size_t k, Rng* rng,
                                                  size_t num_simulations);

/// \brief CELF lazy greedy (Leskovec et al.): exploits submodularity to skip
/// most marginal-gain re-evaluations; returns the same seeds as plain greedy
/// up to Monte Carlo noise, with far fewer evaluations.
[[nodiscard]] Result<SeedSelection> CelfInfluenceMaximization(const SocialGraph& graph,
                                                const ArcProbabilities& probs,
                                                size_t k, Rng* rng,
                                                size_t num_simulations);

/// \brief Baseline: the k highest out-degree nodes.
SeedSelection DegreeHeuristic(const SocialGraph& graph, size_t k);

}  // namespace psi

#endif  // PSI_INFLUENCE_INFLUENCE_MAX_H_
