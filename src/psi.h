// Umbrella header: pulls in the whole public API. Fine for applications and
// examples; library code includes the specific headers it needs.

#ifndef PSI_PSI_H_
#define PSI_PSI_H_

#include "actionlog/action_log.h"     // IWYU pragma: export
#include "actionlog/counters.h"       // IWYU pragma: export
#include "actionlog/generator.h"      // IWYU pragma: export
#include "actionlog/io.h"             // IWYU pragma: export
#include "actionlog/partition.h"      // IWYU pragma: export
#include "bigint/bigint.h"            // IWYU pragma: export
#include "bigint/biguint.h"           // IWYU pragma: export
#include "bigint/modular.h"           // IWYU pragma: export
#include "bigint/montgomery.h"        // IWYU pragma: export
#include "bigint/primes.h"            // IWYU pragma: export
#include "common/histogram.h"         // IWYU pragma: export
#include "common/random.h"            // IWYU pragma: export
#include "common/serialize.h"         // IWYU pragma: export
#include "common/stats.h"             // IWYU pragma: export
#include "common/status.h"            // IWYU pragma: export
#include "crypto/chacha20.h"          // IWYU pragma: export
#include "crypto/commitment.h"        // IWYU pragma: export
#include "crypto/oblivious_transfer.h"  // IWYU pragma: export
#include "crypto/packing.h"           // IWYU pragma: export
#include "crypto/paillier.h"          // IWYU pragma: export
#include "crypto/permutation.h"       // IWYU pragma: export
#include "crypto/rsa.h"               // IWYU pragma: export
#include "crypto/sha256.h"            // IWYU pragma: export
#include "crypto/shift_cipher.h"      // IWYU pragma: export
#include "graph/generators.h"         // IWYU pragma: export
#include "graph/graph.h"              // IWYU pragma: export
#include "graph/io.h"                 // IWYU pragma: export
#include "graph/metrics.h"            // IWYU pragma: export
#include "graph/propagation_graph.h"  // IWYU pragma: export
#include "influence/em_learner.h"     // IWYU pragma: export
#include "influence/evaluation.h"     // IWYU pragma: export
#include "influence/influence_max.h"  // IWYU pragma: export
#include "influence/link_influence.h"  // IWYU pragma: export
#include "influence/segmented.h"      // IWYU pragma: export
#include "influence/user_score.h"     // IWYU pragma: export
#include "mpc/class_aggregation.h"    // IWYU pragma: export
#include "mpc/homomorphic_sum.h"      // IWYU pragma: export
#include "mpc/joint_random.h"         // IWYU pragma: export
#include "mpc/link_influence_protocol.h"  // IWYU pragma: export
#include "mpc/multi_host.h"           // IWYU pragma: export
#include "mpc/non_exclusive.h"        // IWYU pragma: export
#include "mpc/perfect_hiding.h"       // IWYU pragma: export
#include "mpc/propagation_protocol.h"  // IWYU pragma: export
#include "mpc/remote_exec.h"          // IWYU pragma: export
#include "mpc/wire.h"                 // IWYU pragma: export
#include "mpc/secure_division.h"      // IWYU pragma: export
#include "mpc/secure_sum.h"           // IWYU pragma: export
#include "mpc/secure_user_score.h"    // IWYU pragma: export
#include "mpc/segmented_influence.h"  // IWYU pragma: export
#include "mpc/session.h"             // IWYU pragma: export
#include "net/cost_model.h"           // IWYU pragma: export
#include "net/daemon.h"               // IWYU pragma: export
#include "net/envelope.h"             // IWYU pragma: export
#include "net/fault.h"                // IWYU pragma: export
#include "net/fault_injector.h"       // IWYU pragma: export
#include "net/network.h"              // IWYU pragma: export
#include "net/socket_transport.h"     // IWYU pragma: export
#include "net/socket_util.h"          // IWYU pragma: export
#include "privacy/gain_experiment.h"  // IWYU pragma: export
#include "privacy/leakage.h"          // IWYU pragma: export
#include "privacy/posterior.h"        // IWYU pragma: export

#endif  // PSI_PSI_H_
