// Fixed-bin histogram used by the Figure-1 privacy-gain experiment. Matches
// the paper's presentation: the bar over [a, b) counts samples in that
// interval.

#ifndef PSI_COMMON_HISTOGRAM_H_
#define PSI_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace psi {

/// \brief Equal-width histogram over [lo, hi) with two overflow bins.
class Histogram {
 public:
  /// \param lo left edge of the first bin.
  /// \param hi right edge of the last bin.
  /// \param num_bins number of equal-width bins (> 0).
  Histogram(double lo, double hi, size_t num_bins);

  /// \brief Records one sample (out-of-range samples go to overflow bins).
  void Add(double sample);

  /// \brief Records many samples.
  void AddAll(const std::vector<double>& samples);

  size_t num_bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }

  /// \brief [left, right) edges of bin i.
  std::pair<double, double> bin_edges(size_t i) const;

  /// \brief Mean of all recorded samples (including overflow samples).
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }

  /// \brief Multi-line ASCII rendering (one bar per bin), for bench output.
  std::string Render(size_t max_bar_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace psi

#endif  // PSI_COMMON_HISTOGRAM_H_
