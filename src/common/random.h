// Deterministic cryptographically strong pseudo-random generator and the
// distributions used throughout the paper's protocols:
//   * uniform integers / reals (rejection sampling, no modulo bias),
//   * the paper's `Z` distribution on [1, inf) with pdf mu^-2 (Protocol 3),
//   * U(0, M) masks, Bernoulli coins, Fisher-Yates shuffles.

#ifndef PSI_COMMON_RANDOM_H_
#define PSI_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/status.h"

namespace psi {

/// \brief ChaCha20-based deterministic CSPRNG.
///
/// A fixed seed yields a fully reproducible stream, which the test suite and
/// the benchmark harness rely on. Use `Rng::FromEntropy()` for a
/// nondeterministic instance.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded into the 256-bit
  /// ChaCha key by splat-and-distinguish so distinct seeds give independent
  /// streams).
  explicit Rng(uint64_t seed);

  /// Constructs a generator from a full 256-bit key.
  explicit Rng(const std::array<uint32_t, 8>& key);

  /// \brief Generator seeded from the OS entropy source.
  static Rng FromEntropy();

  /// \brief Derives an independent generator keyed by (this stream, label).
  ///
  /// Forking never perturbs the parent stream, so adding a forked consumer
  /// does not change the parent's subsequent output.
  Rng Fork(std::string_view label);

  /// \brief Next uniformly random 64-bit value.
  uint64_t NextU64();

  /// \brief Next uniformly random 32-bit value.
  uint32_t NextU32();

  /// \brief Fills `out` with random bytes.
  void FillBytes(uint8_t* out, size_t len);

  /// \brief Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t UniformU64(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform real in [0, 1).
  double UniformReal();

  /// \brief Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// \brief Uniform real in (0, 1) — never exactly zero (safe for 1/(1-u)).
  double UniformRealOpen();

  /// \brief Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// \brief Sample from the paper's Z distribution on [1, inf), pdf mu^-2.
  ///
  /// Inverse-CDF: F(mu) = 1 - 1/mu, so M = 1/(1-U) for U ~ U(0,1).
  double SampleZ();

  /// \brief Uniform random permutation of {0, .., n-1} (Fisher-Yates).
  std::vector<size_t> Permutation(size_t n);

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformU64(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Byte length of a `SaveState()` snapshot (fixed-width).
  static constexpr size_t kStateBytes = 32 + 12 + 4 + 64 + 8;

  /// \brief Serializes the full generator state (key, nonce, counter, block
  /// buffer, cursor) into a fixed-width `kStateBytes` snapshot.
  ///
  /// Restoring the snapshot with `LoadState` reproduces the exact output
  /// stream from the capture point, which is what lets a checkpointed
  /// protocol stage replay with bitwise-identical randomness. The snapshot
  /// contains the ChaCha key, i.e. it is as secret as the generator itself:
  /// checkpoint stores must treat it as `PSI_SECRET` and never send it.
  [[nodiscard]] std::vector<uint8_t> SaveState() const;

  /// \brief Restores a `SaveState()` snapshot. Returns SerializationError if
  /// `state` is not exactly `kStateBytes` long or the cursor is out of range.
  [[nodiscard]] Status LoadState(const std::vector<uint8_t>& state);

 private:
  void Refill();

  PSI_SECRET std::array<uint32_t, 8> key_;
  std::array<uint32_t, 3> nonce_ = {0, 0, 0};
  uint32_t counter_ = 0;
  PSI_SECRET std::array<uint8_t, 64> block_{};
  size_t pos_ = 64;  // Forces a refill on first use.
};

}  // namespace psi

#endif  // PSI_COMMON_RANDOM_H_
