// Minimal leveled logging plus CHECK macros for internal invariants.
// CHECK failures indicate programming errors and abort; recoverable errors go
// through Status (see common/status.h).

#ifndef PSI_COMMON_LOGGING_H_
#define PSI_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace psi {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the minimum level emitted to stderr (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(expr_, file_, line_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PSI_LOG(level)                                                     \
  ::psi::internal::LogMessage(::psi::LogLevel::k##level, __FILE__, __LINE__)

#define PSI_CHECK(cond)                                                \
  if (cond) {                                                          \
  } else /* NOLINT */                                                  \
    ::psi::internal::CheckMessage(#cond, __FILE__, __LINE__)

#define PSI_CHECK_OK(expr)                                       \
  do {                                                           \
    ::psi::Status _st = (expr);                                  \
    PSI_CHECK(_st.ok()) << _st.ToString();                       \
  } while (false)

#ifdef NDEBUG
#define PSI_DCHECK(cond) PSI_CHECK(true || (cond))
#else
#define PSI_DCHECK(cond) PSI_CHECK(cond)
#endif

}  // namespace psi

#endif  // PSI_COMMON_LOGGING_H_
