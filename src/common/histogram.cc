#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace psi {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_bins)) {
  PSI_CHECK(hi > lo) << "histogram range must be non-empty";
  PSI_CHECK(num_bins > 0) << "histogram needs at least one bin";
  counts_.assign(num_bins, 0);
}

void Histogram::Add(double sample) {
  ++total_;
  sum_ += sample;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<size_t>((sample - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // Guards the hi_ - epsilon edge.
  ++counts_[bin];
}

void Histogram::AddAll(const std::vector<double>& samples) {
  for (double s : samples) Add(s);
}

std::pair<double, double> Histogram::bin_edges(size_t i) const {
  return {lo_ + static_cast<double>(i) * width_,
          lo_ + static_cast<double>(i + 1) * width_};
}

std::string Histogram::Render(size_t max_bar_width) const {
  uint64_t peak = underflow_;
  peak = std::max(peak, overflow_);
  for (uint64_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;

  auto bar = [&](uint64_t count) {
    size_t w = static_cast<size_t>(
        std::llround(static_cast<double>(count) * static_cast<double>(max_bar_width) /
                     static_cast<double>(peak)));
    return std::string(w, '#');
  };

  std::string out;
  char line[160];
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "  (<%8.3f)        %8llu %s\n", lo_,
                  static_cast<unsigned long long>(underflow_),
                  bar(underflow_).c_str());
    out += line;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    auto [a, b] = bin_edges(i);
    std::snprintf(line, sizeof(line), "  [%8.3f,%8.3f) %8llu %s\n", a, b,
                  static_cast<unsigned long long>(counts_[i]),
                  bar(counts_[i]).c_str());
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "  (>=%7.3f)        %8llu %s\n", hi_,
                  static_cast<unsigned long long>(overflow_),
                  bar(overflow_).c_str());
    out += line;
  }
  return out;
}

}  // namespace psi
