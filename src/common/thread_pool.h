// Intra-party parallelism for the crypto hot paths.
//
// The protocols' wall-clock time is dominated by modular exponentiations
// that are pure functions of already-drawn values (Tables 1-2 cost
// analysis), so they fan out across cores while every RNG draw stays in
// serial program order. The contract that makes this safe to thread through
// the deterministic test suite:
//
//   * ParallelFor(n, fn) invokes fn(i) exactly once for every i in [0, n).
//     Each index owns its output slot, so results are bit-identical for any
//     worker count — including the serial degrade at num_threads() == 1.
//   * Chunking is static (no work stealing): worker t handles the t-th
//     contiguous slice of [0, n). Scheduling never feeds back into results.
//   * ParallelForChunked splits [0, n) into a chunk count that depends only
//     on n — never on the thread count — so floating-point reductions that
//     accumulate per chunk and combine partials in chunk order are also
//     bit-identical under PSI_THREADS=1 vs PSI_THREADS=8.
//   * The first exception thrown by any fn is rethrown in the calling
//     thread after all workers finish; remaining indices still run.
//
// The pool size comes from the PSI_THREADS environment variable when set
// (clamped to [1, 64]), else std::thread::hardware_concurrency(). Nested
// ParallelFor calls from inside a worker degrade to serial instead of
// deadlocking on the shared pool.

#ifndef PSI_COMMON_THREAD_POOL_H_
#define PSI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Fixed-size fork-join worker pool with deterministic static
/// chunking. One process-wide instance (Global()) backs the free-function
/// ParallelFor helpers.
class ThreadPool {
 public:
  /// \brief Builds a pool with `num_threads` workers total (the calling
  /// thread counts as worker 0, so num_threads == 1 spawns nothing).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief The process-wide pool, sized from PSI_THREADS (else hardware
  /// concurrency) on first use.
  static ThreadPool& Global();

  size_t num_threads() const { return num_threads_; }

  /// \brief Resizes the pool (test hook; joins the current workers). Not
  /// safe to call concurrently with ParallelFor.
  void SetNumThreads(size_t num_threads);

  /// \brief Invokes fn(i) for every i in [0, n); see the header comment for
  /// the determinism contract. Blocks until all indices have run.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Splits [0, n) into NumChunks(n) contiguous slices and invokes
  /// fn(chunk_index, begin, end) once per slice. Chunk boundaries depend
  /// only on n, so order-sensitive reductions stay thread-count-invariant.
  void ParallelForChunked(
      size_t n,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

  /// \brief Number of slices ParallelForChunked uses for a loop of size n
  /// (a pure function of n; at most kMaxChunks).
  static size_t NumChunks(size_t n);

  /// \brief Chunk-count ceiling for ParallelForChunked (and the reduction
  /// partial-buffer size callers should allocate).
  static constexpr size_t kMaxChunks = 64;

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    size_t num_workers = 0;  // Slices this job was split into.
  };

  void StartWorkers(size_t num_threads);
  void StopWorkers();
  /// `seen_epoch` is the job epoch current when the worker was started;
  /// epochs survive SetNumThreads resizes, so starting from 0 would replay
  /// a stale job.
  void WorkerLoop(size_t worker_index, uint64_t seen_epoch);
  /// Runs worker `w`'s static slice of the current job.
  void RunSlice(const Job& job, size_t w);

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  Job job_;
  uint64_t job_epoch_ = 0;   // Bumped per ParallelFor; wakes the workers.
  size_t pending_ = 0;       // Workers still running the current job.
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

/// \brief ParallelFor on the global pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

/// \brief ParallelFor over a Status-returning body. Every index runs; on
/// failure the error of the lowest failing index is returned, so the
/// surfaced Status does not depend on worker scheduling.
[[nodiscard]] Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn);

/// \brief ParallelForChunked on the global pool.
void ParallelForChunked(
    size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

}  // namespace psi

#endif  // PSI_COMMON_THREAD_POOL_H_
