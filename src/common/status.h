// Status / Result<T> error-handling primitives, modeled on the idiom used by
// Apache Arrow and RocksDB: no exceptions cross public API boundaries.

#ifndef PSI_COMMON_STATUS_H_
#define PSI_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace psi {

/// \brief Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kProtocolError = 6,
  kCryptoError = 7,
  kSerializationError = 8,
  kInternal = 9,
  kUnimplemented = 10,
};

/// \brief Returns a human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or an error code plus message.
///
/// The OK state stores no message and never allocates, so returning
/// `Status::OK()` from hot paths is free.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \brief The OK (success) status.
  [[nodiscard]] static Status OK() { return Status(); }

  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  [[nodiscard]] static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  [[nodiscard]] static Status SerializationError(std::string msg) {
    return Status(StatusCode::kSerializationError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// \brief True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Semantics follow arrow::Result: a moved-from Result is in a valid but
/// unspecified state; `ValueOrDie()` aborts on error (tests only).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Access the contained value. Precondition: ok().
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// \brief Move the value out. Precondition: ok().
  T MoveValue() { return std::move(*value_); }

  /// \brief Returns the value, aborting the process on error. Test use only.
  const T& ValueOrDie() const;

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnErrorStatus(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::ValueOrDie() const {
  if (!ok()) internal::DieOnErrorStatus(status_);
  return *value_;
}

/// Propagates a non-OK Status out of the current function.
#define PSI_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::psi::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define PSI_CONCAT_IMPL(a, b) a##b
#define PSI_CONCAT(a, b) PSI_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define PSI_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto PSI_CONCAT(_psi_result_, __LINE__) = (rexpr);            \
  if (!PSI_CONCAT(_psi_result_, __LINE__).ok())                 \
    return PSI_CONCAT(_psi_result_, __LINE__).status();         \
  lhs = std::move(PSI_CONCAT(_psi_result_, __LINE__)).MoveValue()

}  // namespace psi

#endif  // PSI_COMMON_STATUS_H_
