// Annotation vocabulary for psi_lint's secret-flow check.
//
// PSI_SECRET marks a field, parameter, or local whose value must never
// influence control flow, division/modulo operands, log output, or an
// unencrypted network send. The macro expands to nothing — it exists purely
// so tools/psi_lint can track where secret values flow (the secret-flow check
// in docs/STATIC_ANALYSIS.md). Annotate the declaration:
//
//   PSI_SECRET BigUInt lambda;                 // struct field
//   void Derive(PSI_SECRET const BigUInt& p);  // parameter
//
// A secret may reach a sink only through a sanitizing call (a function whose
// name indicates masking/encryption, e.g. Mask, Encrypt, Blind, Commit,
// Hash); anything else needs a `// psi-lint: allow(secret-flow) <reason>`
// suppression with a written justification.

#ifndef PSI_COMMON_ANNOTATIONS_H_
#define PSI_COMMON_ANNOTATIONS_H_

#define PSI_SECRET

#endif  // PSI_COMMON_ANNOTATIONS_H_
