// Annotation vocabulary for psi_lint's flow-sensitive secret-taint engine.
//
// PSI_SECRET marks a field, parameter, or local whose value must never
// influence control flow, variable-time arithmetic, memory addresses, shift
// counts, log output, or an unencrypted network send. The macro expands to
// nothing — it exists purely so tools/psi_lint can track where secret values
// flow (the secret-flow check in docs/STATIC_ANALYSIS.md). Annotate the
// declaration:
//
//   PSI_SECRET BigUInt lambda;                 // struct field
//   void Derive(PSI_SECRET const BigUInt& p);  // parameter
//
// Taint propagates through assignments and return values: a local assigned
// from a secret is secret, and a function whose return value derives from a
// secret parameter taints its call sites.
//
// PSI_SANITIZES marks a declassification boundary: a function whose return
// value is safe to branch on, send, or log even when its arguments are
// secret (masking, encryption, commitment, constant-time comparison).
// Place it on the declaration; psi_lint picks up the function name that
// follows:
//
//   PSI_SANITIZES BigUInt MaskShare(PSI_SECRET const BigUInt& s, ...);
//
// The old name-vocabulary heuristic (any function called Mask/Encrypt/...)
// is gone: only explicitly annotated functions launder taint. A secret that
// reaches a sink without passing through a PSI_SANITIZES call needs a
// `// psi-lint: allow(secret-flow) <reason>` suppression with a written
// justification.

#ifndef PSI_COMMON_ANNOTATIONS_H_
#define PSI_COMMON_ANNOTATIONS_H_

#define PSI_SECRET
#define PSI_SANITIZES

#endif  // PSI_COMMON_ANNOTATIONS_H_
