#include "common/chacha_core.h"

#include <cstddef>

namespace psi {
namespace internal {
namespace {

inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(uint32_t* a, uint32_t* b, uint32_t* c, uint32_t* d) {
  *a += *b;
  *d = Rotl32(*d ^ *a, 16);
  *c += *d;
  *b = Rotl32(*b ^ *c, 12);
  *a += *b;
  *d = Rotl32(*d ^ *a, 8);
  *c += *d;
  *b = Rotl32(*b ^ *c, 7);
}

}  // namespace

void ChaCha20Block(const std::array<uint32_t, 8>& key, uint32_t counter,
                   const std::array<uint32_t, 3>& nonce,
                   std::array<uint8_t, 64>* out) {
  // "expand 32-byte k"
  uint32_t state[16] = {0x61707865u, 0x3320646eu, 0x79622d32u, 0x6b206574u,
                        key[0],      key[1],      key[2],      key[3],
                        key[4],      key[5],      key[6],      key[7],
                        counter,     nonce[0],    nonce[1],    nonce[2]};
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];

  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRound(&x[0], &x[4], &x[8], &x[12]);
    QuarterRound(&x[1], &x[5], &x[9], &x[13]);
    QuarterRound(&x[2], &x[6], &x[10], &x[14]);
    QuarterRound(&x[3], &x[7], &x[11], &x[15]);
    // Diagonal rounds.
    QuarterRound(&x[0], &x[5], &x[10], &x[15]);
    QuarterRound(&x[1], &x[6], &x[11], &x[12]);
    QuarterRound(&x[2], &x[7], &x[8], &x[13]);
    QuarterRound(&x[3], &x[4], &x[9], &x[14]);
  }

  for (int i = 0; i < 16; ++i) {
    uint32_t word = x[i] + state[i];
    (*out)[static_cast<size_t>(4 * i) + 0] = static_cast<uint8_t>(word & 0xff);
    (*out)[static_cast<size_t>(4 * i) + 1] =
        static_cast<uint8_t>((word >> 8) & 0xff);
    (*out)[static_cast<size_t>(4 * i) + 2] =
        static_cast<uint8_t>((word >> 16) & 0xff);
    (*out)[static_cast<size_t>(4 * i) + 3] =
        static_cast<uint8_t>((word >> 24) & 0xff);
  }
}

}  // namespace internal
}  // namespace psi
