#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace psi {

namespace {

// True while the current thread is executing a pool job: nested ParallelFor
// calls run serially instead of deadlocking on the shared workers.
thread_local bool t_inside_pool_job = false;

size_t DefaultNumThreads() {
  if (const char* env = std::getenv("PSI_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return std::min<unsigned long>(v, 64);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  StartWorkers(std::max<size_t>(num_threads, 1));
}

ThreadPool::~ThreadPool() { StopWorkers(); }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

void ThreadPool::StartWorkers(size_t num_threads) {
  num_threads_ = num_threads;
  shutdown_ = false;
  pending_ = 0;
  // New workers must treat the CURRENT epoch as already seen: after a
  // SetNumThreads resize the counter carries over from the previous pool
  // generation, and a worker starting at epoch 0 would re-run the stale
  // job_ (whose fn points into a dead caller frame). Captured here, on the
  // starting thread, so a job published right after StartWorkers returns
  // can never be missed.
  uint64_t epoch = job_epoch_;
  workers_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w, epoch] { WorkerLoop(w, epoch); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::SetNumThreads(size_t num_threads) {
  StopWorkers();
  StartWorkers(std::max<size_t>(num_threads, 1));
}

void ThreadPool::RunSlice(const Job& job, size_t w) {
  // Static chunking: worker w always owns the w-th contiguous slice.
  size_t begin = w * job.n / job.num_workers;
  size_t end = (w + 1) * job.n / job.num_workers;
  t_inside_pool_job = true;
  try {
    for (size_t i = begin; i < end; ++i) (*job.fn)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  t_inside_pool_job = false;
}

void ThreadPool::WorkerLoop(size_t worker_index, uint64_t seen_epoch) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [&] {
        return shutdown_ || job_epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    RunSlice(job, worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) job_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1 || t_inside_pool_job) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.fn = &fn;
    job_.n = n;
    job_.num_workers = num_threads_;
    pending_ = num_threads_ - 1;
    ++job_epoch_;
  }
  job_ready_.notify_all();
  RunSlice(job_, 0);  // The calling thread is worker 0.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_done_.wait(lock, [&] { return pending_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

size_t ThreadPool::NumChunks(size_t n) { return std::min(n, kMaxChunks); }

void ThreadPool::ParallelForChunked(
    size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  size_t chunks = NumChunks(n);
  if (chunks == 0) return;
  ParallelFor(chunks, [&](size_t c) {
    fn(c, c * n / chunks, (c + 1) * n / chunks);
  });
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ThreadPool::Global().ParallelFor(n, fn);
}

Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn) {
  // OK statuses never allocate, so the per-index slot vector is cheap.
  std::vector<Status> statuses(n);
  ThreadPool::Global().ParallelFor(n,
                                   [&](size_t i) { statuses[i] = fn(i); });
  for (auto& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

void ParallelForChunked(
    size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  ThreadPool::Global().ParallelForChunked(n, fn);
}

}  // namespace psi
