#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace psi {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  double idx = p * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double ChiSquaredUniform(const std::vector<uint64_t>& observed) {
  if (observed.empty()) return 0.0;
  uint64_t total = 0;
  for (uint64_t o : observed) total += o;
  if (total == 0) return 0.0;
  double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double chi2 = 0.0;
  for (uint64_t o : observed) {
    double d = static_cast<double>(o) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

}  // namespace psi
