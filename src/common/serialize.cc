#include "common/serialize.h"

namespace psi {

void BinaryWriter::WriteVarU64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteVarU64(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteVarU64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Status BinaryReader::Take(void* out, size_t n) {
  if (pos_ + n > size_) {
    return Status::SerializationError("read past end of buffer");
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* out) { return Take(out, 1); }
Status BinaryReader::ReadU16(uint16_t* out) { return Take(out, 2); }
Status BinaryReader::ReadU32(uint32_t* out) { return Take(out, 4); }
Status BinaryReader::ReadU64(uint64_t* out) { return Take(out, 8); }

Status BinaryReader::ReadI64(int64_t* out) {
  uint64_t v;
  PSI_RETURN_NOT_OK(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadDouble(double* out) {
  uint64_t bits;
  PSI_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, 8);
  return Status::OK();
}

Status BinaryReader::ReadVarU64(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t b;
    PSI_RETURN_NOT_OK(ReadU8(&b));
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::SerializationError("varint longer than 10 bytes");
}

Status BinaryReader::ReadBytes(std::vector<uint8_t>* out) {
  uint64_t len;
  PSI_RETURN_NOT_OK(ReadVarU64(&len));
  // Compare against the remaining span: `pos_ + len` could wrap uint64.
  if (len > size_ - pos_) {
    return Status::SerializationError("byte string length exceeds buffer");
  }
  out->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  uint64_t len;
  PSI_RETURN_NOT_OK(ReadVarU64(&len));
  if (len > size_ - pos_) {
    return Status::SerializationError("string length exceeds buffer");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::ReadCount(uint64_t* out, size_t min_bytes_per_element) {
  uint64_t count;
  PSI_RETURN_NOT_OK(ReadVarU64(&count));
  const uint64_t min_bytes = min_bytes_per_element == 0 ? 1 : min_bytes_per_element;
  if (count > remaining() / min_bytes) {
    return Status::SerializationError("element count exceeds buffer capacity");
  }
  *out = count;
  return Status::OK();
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace psi
