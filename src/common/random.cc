#include "common/random.h"

#include <cstring>
#include <random>

#include "common/chacha_core.h"

namespace psi {

namespace {

// splitmix64: used only to expand a 64-bit seed into a 256-bit key.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (int i = 0; i < 4; ++i) {
    uint64_t w = SplitMix64(&state);
    key_[static_cast<size_t>(2 * i)] = static_cast<uint32_t>(w & 0xffffffffu);
    key_[static_cast<size_t>(2 * i) + 1] = static_cast<uint32_t>(w >> 32);
  }
}

Rng::Rng(const std::array<uint32_t, 8>& key) : key_(key) {}

Rng Rng::FromEntropy() {
  std::random_device rd;
  std::array<uint32_t, 8> key;
  for (auto& w : key) w = rd();
  return Rng(key);
}

Rng Rng::Fork(std::string_view label) {
  // Mix the parent key, a fresh parent draw, and the label bytes into a new
  // key. The draw advances the parent exactly once per fork.
  std::array<uint32_t, 8> child = key_;
  uint64_t salt = NextU64();
  child[0] ^= static_cast<uint32_t>(salt & 0xffffffffu);
  child[1] ^= static_cast<uint32_t>(salt >> 32);
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the label.
  for (char ch : label) {
    h ^= static_cast<uint8_t>(ch);
    h *= 1099511628211ull;
  }
  child[2] ^= static_cast<uint32_t>(h & 0xffffffffu);
  child[3] ^= static_cast<uint32_t>(h >> 32);
  child[4] ^= 0x9e3779b9u;  // Domain separation from the parent stream.
  return Rng(child);
}

void Rng::Refill() {
  internal::ChaCha20Block(key_, counter_, nonce_, &block_);
  if (++counter_ == 0) {
    // 256 GiB consumed: roll the nonce to keep the stream unique.
    if (++nonce_[0] == 0) ++nonce_[1];
  }
  pos_ = 0;
}

uint64_t Rng::NextU64() {
  if (pos_ + 8 > 64) Refill();
  uint64_t v;
  std::memcpy(&v, block_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

uint32_t Rng::NextU32() {
  if (pos_ + 4 > 64) Refill();
  uint32_t v;
  std::memcpy(&v, block_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

void Rng::FillBytes(uint8_t* out, size_t len) {
  size_t done = 0;
  while (done < len) {
    if (pos_ >= 64) Refill();
    size_t take = std::min<size_t>(64 - pos_, len - done);
    std::memcpy(out + done, block_.data() + pos_, take);
    pos_ += take;
    done += take;
  }
}

uint64_t Rng::UniformU64(uint64_t bound) {
  PSI_CHECK(bound > 0) << "UniformU64 bound must be positive";
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t v = NextU64();
    if (v >= threshold) return v % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PSI_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // Full range.
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + UniformU64(span));
}

double Rng::UniformReal() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * UniformReal();
}

double Rng::UniformRealOpen() {
  // (v + 0.5) / 2^53 lies in (0, 1) for v in [0, 2^53).
  return (static_cast<double>(NextU64() >> 11) + 0.5) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformReal() < p; }

double Rng::SampleZ() { return 1.0 / (1.0 - UniformRealOpen()); }

std::vector<uint8_t> Rng::SaveState() const {
  std::vector<uint8_t> state(kStateBytes);
  uint8_t* p = state.data();
  std::memcpy(p, key_.data(), 32);
  p += 32;
  std::memcpy(p, nonce_.data(), 12);
  p += 12;
  std::memcpy(p, &counter_, 4);
  p += 4;
  std::memcpy(p, block_.data(), 64);
  p += 64;
  uint64_t pos64 = pos_;
  std::memcpy(p, &pos64, 8);
  return state;
}

Status Rng::LoadState(const std::vector<uint8_t>& state) {
  if (state.size() != kStateBytes) {
    return Status::SerializationError("Rng::LoadState: snapshot is " +
                              std::to_string(state.size()) + " bytes, want " +
                              std::to_string(kStateBytes));
  }
  const uint8_t* p = state.data();
  uint64_t pos64 = 0;
  std::memcpy(&pos64, p + 32 + 12 + 4 + 64, 8);
  if (pos64 > 64) {
    return Status::SerializationError("Rng::LoadState: cursor " +
                              std::to_string(pos64) + " out of range [0, 64]");
  }
  std::memcpy(key_.data(), p, 32);
  p += 32;
  std::memcpy(nonce_.data(), p, 12);
  p += 12;
  std::memcpy(&counter_, p, 4);
  p += 4;
  std::memcpy(block_.data(), p, 64);
  pos_ = static_cast<size_t>(pos64);
  return Status::OK();
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

}  // namespace psi
