// Binary serialization used by the simulated multiparty network. Message
// sizes reported in the Table 1/2 benches are the exact byte counts these
// writers produce.

#ifndef PSI_COMMON_SERIALIZE_H_
#define PSI_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Append-only little-endian binary writer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v) { WriteLE(&v, 2); }
  void WriteU32(uint32_t v) { WriteLE(&v, 4); }
  void WriteU64(uint64_t v) { WriteLE(&v, 8); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

  /// Writes an IEEE-754 double (8 bytes).
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    WriteU64(bits);
  }

  /// Writes a LEB128-style variable-length unsigned integer (1-10 bytes).
  void WriteVarU64(uint64_t v);

  /// Writes a length-prefixed byte string.
  void WriteBytes(const std::vector<uint8_t>& bytes);

  /// Writes a length-prefixed UTF-8 string.
  void WriteString(const std::string& s);

  /// Writes raw bytes without a length prefix.
  void WriteRaw(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  /// Pre-allocates capacity for `n` bytes.
  void Reserve(size_t n) { buf_.reserve(n); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void WriteLE(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);  // Little-endian host assumed (x86/ARM).
  }

  std::vector<uint8_t> buf_;
};

/// \brief Bounds-checked reader over a byte buffer.
class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] Status ReadU8(uint8_t* out);
  [[nodiscard]] Status ReadU16(uint16_t* out);
  [[nodiscard]] Status ReadU32(uint32_t* out);
  [[nodiscard]] Status ReadU64(uint64_t* out);
  [[nodiscard]] Status ReadI64(int64_t* out);
  [[nodiscard]] Status ReadDouble(double* out);
  [[nodiscard]] Status ReadVarU64(uint64_t* out);
  [[nodiscard]] Status ReadBytes(std::vector<uint8_t>* out);
  [[nodiscard]] Status ReadString(std::string* out);

  /// \brief Reads a varint element count and rejects any value that could not
  /// possibly fit in the remaining bytes (each element occupies at least
  /// `min_bytes_per_element`). Decoders must use this before `resize(count)`
  /// on peer-controlled buffers, so a corrupted length prefix cannot trigger
  /// a multi-gigabyte allocation.
  [[nodiscard]] Status ReadCount(uint64_t* out, size_t min_bytes_per_element = 1);

  /// \brief Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  [[nodiscard]] Status Take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len`
/// bytes. Used by the network envelope to detect corrupted frames before any
/// payload decoding happens.
uint32_t Crc32(const uint8_t* data, size_t len);

inline uint32_t Crc32(const std::vector<uint8_t>& buf) {
  return Crc32(buf.data(), buf.size());
}

}  // namespace psi

#endif  // PSI_COMMON_SERIALIZE_H_
