// The ChaCha20 block function (RFC 8439), shared by the CSPRNG in
// common/random.h and the stream cipher in crypto/chacha20.h.

#ifndef PSI_COMMON_CHACHA_CORE_H_
#define PSI_COMMON_CHACHA_CORE_H_

#include <array>
#include <cstdint>

namespace psi {
namespace internal {

/// \brief Computes one 64-byte ChaCha20 keystream block.
///
/// \param key 256-bit key as 8 little-endian words.
/// \param counter 32-bit block counter.
/// \param nonce 96-bit nonce as 3 little-endian words.
/// \param out receives the 64-byte keystream block.
void ChaCha20Block(const std::array<uint32_t, 8>& key, uint32_t counter,
                   const std::array<uint32_t, 3>& nonce,
                   std::array<uint8_t, 64>* out);

}  // namespace internal
}  // namespace psi

#endif  // PSI_COMMON_CHACHA_CORE_H_
