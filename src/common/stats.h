// Small descriptive-statistics helpers shared by tests and benches.

#ifndef PSI_COMMON_STATS_H_
#define PSI_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psi {

/// \brief Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// \brief Unbiased sample variance; 0 for fewer than two samples.
double Variance(const std::vector<double>& xs);

/// \brief Sample standard deviation.
double StdDev(const std::vector<double>& xs);

/// \brief p-th percentile (p in [0,1]) by linear interpolation; 0 if empty.
double Percentile(std::vector<double> xs, double p);

/// \brief Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// \brief Chi-squared statistic of observed counts against uniform expected.
double ChiSquaredUniform(const std::vector<uint64_t>& observed);

}  // namespace psi

#endif  // PSI_COMMON_STATS_H_
