#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace psi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kSerializationError:
      return "SerializationError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnErrorStatus(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace psi
