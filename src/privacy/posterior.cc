#include "privacy/posterior.h"

#include <cmath>

namespace psi {

Result<PosteriorAnalyzer> PosteriorAnalyzer::Create(std::vector<double> prior) {
  if (prior.size() < 2) {
    return Status::InvalidArgument("prior needs support {0..A} with A >= 1");
  }
  // Trim to the largest x with positive mass (the paper's WLOG f_X(A) > 0).
  size_t a = prior.size() - 1;
  while (a > 0 && prior[a] <= 0.0) --a;
  if (a == 0) {
    return Status::InvalidArgument("prior has no mass on positive values");
  }
  prior.resize(a + 1);
  double total = 0.0;
  for (double p : prior) {
    if (p < 0.0) return Status::InvalidArgument("negative prior mass");
    total += p;
  }
  if (total <= 0.0) return Status::InvalidArgument("prior sums to zero");
  for (double& p : prior) p /= total;
  return PosteriorAnalyzer(std::move(prior));
}

PosteriorAnalyzer::PosteriorAnalyzer(std::vector<double> prior)
    : prior_(std::move(prior)) {
  const size_t a = prior_.size() - 1;
  tail_.assign(a + 1, 0.0);
  psi_.assign(a + 1, 0.0);
  psi_prefix_.assign(a + 1, 0.0);
  // T(j) = sum_{t=j..A} f(t)/t, computed back-to-front.
  double acc = 0.0;
  for (size_t j = a; j >= 1; --j) {
    acc += prior_[j] / static_cast<double>(j);
    tail_[j] = acc;
  }
  for (size_t j = 1; j <= a; ++j) {
    psi_[j] = tail_[j] > 0.0 ? 1.0 / tail_[j] : 0.0;
    psi_prefix_[j] = psi_prefix_[j - 1] + psi_[j];
  }
}

double PosteriorAnalyzer::PriorMean() const { return DistributionMean(prior_); }

double PosteriorAnalyzer::DistributionMean(const std::vector<double>& dist) {
  double mean = 0.0;
  for (size_t x = 0; x < dist.size(); ++x) {
    mean += static_cast<double>(x) * dist[x];
  }
  return mean;
}

Result<std::vector<double>> PosteriorAnalyzer::Posterior(double y) const {
  if (!(y > 0.0)) return Status::InvalidArgument("Posterior requires y > 0");
  const size_t a = bound_a();
  const double a_real = static_cast<double>(a);
  std::vector<double> post(a + 1, 0.0);  // post[0] stays 0: y > 0 => x > 0.

  if (y > a_real) {
    // Theorem 4.4, Eq. (10): independent of the exact y.
    for (size_t x = 1; x <= a; ++x) {
      post[x] = prior_[x] * Psi(x) / (static_cast<double>(x) * a_real);
    }
  } else {
    const double floor_y = std::floor(y);
    const double ceil_y = std::ceil(y);
    // The x > y branch shares one mu-integral value J.
    double j_above = 0.0;
    {
      auto ceil_idx = static_cast<size_t>(ceil_y);
      double first_term = 0.0;
      if (floor_y < y && ceil_idx >= 1 && ceil_idx <= a) {
        first_term = psi_[ceil_idx] * (1.0 - floor_y / y);
      }
      double second_term =
          Psi(static_cast<size_t>(std::min(floor_y, a_real))) / y;
      j_above = first_term + second_term;
    }
    for (size_t x = 1; x <= a; ++x) {
      double xf = static_cast<double>(x);
      if (xf <= y) {
        post[x] = prior_[x] * Psi(x) / (xf * y);  // Eq. (9), first case.
      } else {
        post[x] = prior_[x] / xf * j_above;       // Eq. (9), second case.
      }
    }
  }

  double total = 0.0;
  for (double p : post) total += p;
  if (total <= 0.0) {
    return Status::Internal("posterior vanished; prior/y inconsistent");
  }
  for (double& p : post) p /= total;
  return post;
}

Result<std::vector<double>> PosteriorAnalyzer::PosteriorNumerical(
    double y, size_t grid_points) const {
  if (!(y > 0.0)) return Status::InvalidArgument("requires y > 0");
  if (grid_points < 16) return Status::InvalidArgument("grid too coarse");
  const size_t a = bound_a();
  const double a_real = static_cast<double>(a);
  // Substitute v = 1/mu: integral_{lo}^{inf} mu^-2 g(mu) dmu =
  // integral_0^{1/lo} g(1/v) dv. Phi's y > A truncation scales by y/A and
  // shrinks the domain to v <= A/y.
  const double scale = (y > a_real) ? y / a_real : 1.0;

  auto alpha_inv = [&](double v) -> double {
    // 1 / alpha(y, mu) with mu = 1/v; alpha = T(max(1, ceil(y*v))).
    double yv = y * v;
    auto j = static_cast<size_t>(std::ceil(yv));
    if (j < 1) j = 1;
    if (j > a) return 0.0;
    return psi_[j];
  };

  std::vector<double> post(a + 1, 0.0);
  for (size_t x = 1; x <= a; ++x) {
    if (prior_[x] <= 0.0) continue;
    double xf = static_cast<double>(x);
    // Domain: mu >= max(1, y/x) and (if y > A) mu >= y/A.
    double lo_mu = std::max(1.0, y / xf);
    if (y > a_real) lo_mu = std::max(lo_mu, y / a_real);
    double hi_v = 1.0 / lo_mu;
    // Midpoint rule over v in (0, hi_v].
    double sum = 0.0;
    double dv = hi_v / static_cast<double>(grid_points);
    for (size_t g = 0; g < grid_points; ++g) {
      double v = (static_cast<double>(g) + 0.5) * dv;
      sum += alpha_inv(v);
    }
    post[x] = prior_[x] / xf * scale * sum * dv;
  }
  double total = 0.0;
  for (double p : post) total += p;
  if (total <= 0.0) return Status::Internal("numerical posterior vanished");
  for (double& p : post) p /= total;
  return post;
}

std::vector<double> UniformPrior(size_t bound_a) {
  return std::vector<double>(bound_a + 1, 1.0 / static_cast<double>(bound_a + 1));
}

std::vector<double> UnimodalPrior(size_t bound_a) {
  std::vector<double> prior(bound_a + 1);
  double half = static_cast<double>(bound_a) / 2.0;
  double denom = (1.0 + half) * (1.0 + half);
  for (size_t i = 0; i <= bound_a; ++i) {
    double fi = static_cast<double>(i);
    prior[i] = (fi <= half ? fi + 1.0 : static_cast<double>(bound_a) + 1.0 - fi) /
               denom;
  }
  return prior;
}

}  // namespace psi
