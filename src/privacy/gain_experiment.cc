#include "privacy/gain_experiment.h"

#include <cmath>

namespace psi {

Result<GainExperimentResult> RunGainExperiment(const std::vector<double>& prior,
                                               const GainExperimentConfig& config,
                                               Rng* rng) {
  PSI_ASSIGN_OR_RETURN(PosteriorAnalyzer analyzer,
                       PosteriorAnalyzer::Create(prior));
  const size_t a = analyzer.bound_a();
  const double prior_mean = analyzer.PriorMean();

  GainExperimentResult result{
      {},
      0.0,
      0.0,
      Histogram(config.histogram_lo, config.histogram_hi,
                config.histogram_bins)};
  result.gains.reserve(a * config.trials_per_x);

  size_t positives = 0;
  for (size_t x = 1; x <= a; ++x) {
    const double xf = static_cast<double>(x);
    const double e_pre = std::abs(xf - prior_mean);
    for (size_t trial = 0; trial < config.trials_per_x; ++trial) {
      double m = rng->SampleZ();
      double r = rng->UniformReal() * m;
      double y = r * xf;
      if (y <= 0.0) {
        // r can round to 0; the observer then knows only x's sign class,
        // which the posterior machinery models as "no update".
        result.gains.push_back(0.0);
        result.histogram.Add(0.0);
        continue;
      }
      PSI_ASSIGN_OR_RETURN(auto post, analyzer.Posterior(y));
      double e_pos = std::abs(xf - PosteriorAnalyzer::DistributionMean(post));
      double gain = e_pre - e_pos;
      if (gain > 0.0) ++positives;
      result.gains.push_back(gain);
      result.histogram.Add(gain);
    }
  }

  double total = 0.0;
  for (double g : result.gains) total += g;
  result.average_gain =
      result.gains.empty() ? 0.0 : total / static_cast<double>(result.gains.size());
  result.positive_fraction =
      result.gains.empty()
          ? 0.0
          : static_cast<double>(positives) / static_cast<double>(result.gains.size());
  return result;
}

}  // namespace psi
