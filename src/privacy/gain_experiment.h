// The Section 7.2 experiment (Figure 1): does observing y = r*x let the
// curious party H guess x better than its prior did?
//
// For every x in {1..A} and `trials_per_x` trials: draw M ~ Z, r ~ U(0, M),
// set y = r*x, compute the posterior mean, and record the gain
//   G = |x - prior_mean| - |x - posterior_mean|.
// Figure 1 histograms the 10,000 gains (A = 10, 1000 trials) and reports an
// average gain that is positive but very small.

#ifndef PSI_PRIVACY_GAIN_EXPERIMENT_H_
#define PSI_PRIVACY_GAIN_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "privacy/posterior.h"

namespace psi {

/// \brief Experiment parameters (paper defaults).
struct GainExperimentConfig {
  size_t trials_per_x = 1000;
  double histogram_lo = -3.0;
  double histogram_hi = 3.0;
  size_t histogram_bins = 24;
};

/// \brief Experiment output.
struct GainExperimentResult {
  std::vector<double> gains;  ///< A * trials_per_x values.
  double average_gain = 0.0;
  double positive_fraction = 0.0;  ///< Fraction of trials with G > 0.
  Histogram histogram;
};

/// \brief Runs the experiment for one prior over {0..A}.
[[nodiscard]] Result<GainExperimentResult> RunGainExperiment(const std::vector<double>& prior,
                                               const GainExperimentConfig& config,
                                               Rng* rng);

}  // namespace psi

#endif  // PSI_PRIVACY_GAIN_EXPERIMENT_H_
