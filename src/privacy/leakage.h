// Theorem 4.1: what Protocol 2 can leak, to whom, and how often.
//
// P2 may learn a lower bound on the sum x (probability x/S), an upper bound
// (probability (A-x)/S), or nothing ((S-A)/S). P3 may learn a bound with
// probability at most A/(S-A) per side. Everyone else learns nothing. The
// classifiers below reproduce the proof's case analysis so property tests
// can compare empirical frequencies against the bounds, and
// `RequiredModulusForBudget` inverts the bound into the S >= A(1 + 2K/eps)
// sizing rule of Section 5.1.1.

#ifndef PSI_PRIVACY_LEAKAGE_H_
#define PSI_PRIVACY_LEAKAGE_H_

#include <cstdint>

#include "bigint/bigint.h"
#include "bigint/biguint.h"
#include "common/status.h"

namespace psi {

/// \brief What an observer inferred about the private sum x.
enum class LeakKind {
  kNothing,
  kLowerBound,  ///< The observer can rule out small values of x.
  kUpperBound,  ///< The observer can rule out large values of x.
};

/// \brief Theorem 4.1 closed-form probabilities for one protocol run.
struct LeakageProbabilities {
  double p2_lower;  ///< x / S
  double p2_upper;  ///< (A - x) / S
  double p2_nothing;
  double p3_lower_max;  ///< <= A / (S - A)
  double p3_upper_max;  ///< <= A / (S - A)
};

/// \brief Evaluates the Theorem 4.1 probabilities.
[[nodiscard]] Result<LeakageProbabilities> ComputeLeakageProbabilities(uint64_t x,
                                                         const BigUInt& bound_a,
                                                         const BigUInt& s);

/// \brief Classifies what P2 learned from one run: P2 holds s2 (pre-
/// correction, in [0, S)) and the correction bit.
///
/// From the proof: without correction P2 infers x >= s2 (nontrivial when
/// 0 < s2); with correction it infers x <= s2 - 1 (nontrivial when s2 <= A).
LeakKind ClassifyP2Observation(const BigUInt& s2_before_correction,
                               bool corrected, const BigUInt& bound_a);

/// \brief Classifies what P3 learned from z = x + r (recovered from y):
/// upper bound when z < A, lower bound when z > S - A - 1.
LeakKind ClassifyP3Observation(const BigUInt& z, const BigUInt& bound_a,
                               const BigUInt& s);

/// \brief Smallest power-of-two S such that the probability that P2 or P3
/// learns any bound across `num_counters` parallel runs is at most
/// 2^-epsilon_log2 (the Section 5.1.1 rule S >= A(1 + 2K/eps)).
BigUInt RequiredModulusForBudget(const BigUInt& bound_a, uint64_t num_counters,
                                 uint64_t epsilon_log2);

}  // namespace psi

#endif  // PSI_PRIVACY_LEAKAGE_H_
