#include "privacy/leakage.h"

namespace psi {

Result<LeakageProbabilities> ComputeLeakageProbabilities(uint64_t x,
                                                         const BigUInt& bound_a,
                                                         const BigUInt& s) {
  if (BigUInt(x) > bound_a) {
    return Status::InvalidArgument("x exceeds the bound A");
  }
  if (s <= bound_a * BigUInt(2)) {
    return Status::InvalidArgument("S must exceed 2A");
  }
  const double a = bound_a.ToDouble();
  const double s_real = s.ToDouble();
  LeakageProbabilities p;
  p.p2_lower = static_cast<double>(x) / s_real;
  p.p2_upper = (a - static_cast<double>(x)) / s_real;
  p.p2_nothing = 1.0 - p.p2_lower - p.p2_upper;
  p.p3_lower_max = a / (s_real - a);
  p.p3_upper_max = a / (s_real - a);
  return p;
}

LeakKind ClassifyP2Observation(const BigUInt& s2_before_correction,
                               bool corrected, const BigUInt& bound_a) {
  if (!corrected) {
    // s1 + s2 < S held, so x = s1 + s2 >= s2: a lower bound, nontrivial
    // when s2 > 0.
    return s2_before_correction.IsZero() ? LeakKind::kNothing
                                         : LeakKind::kLowerBound;
  }
  // s1 + s2 >= S held, which requires both shares > x, so x <= s2 - 1:
  // nontrivial only when s2 <= A.
  return (s2_before_correction <= bound_a) ? LeakKind::kUpperBound
                                           : LeakKind::kNothing;
}

LeakKind ClassifyP3Observation(const BigUInt& z, const BigUInt& bound_a,
                               const BigUInt& s) {
  // z = x + r with r in [0, S-A-1]; bounds from Theorem 4.1's proof:
  // x >= z - (S - A - 1) is nontrivial iff z > S - A - 1, and x <= z is
  // nontrivial iff z < A.
  if (z < bound_a) return LeakKind::kUpperBound;
  if (z + bound_a + BigUInt(1) > s) return LeakKind::kLowerBound;
  return LeakKind::kNothing;
}

BigUInt RequiredModulusForBudget(const BigUInt& bound_a, uint64_t num_counters,
                                 uint64_t epsilon_log2) {
  BigUInt target =
      bound_a * (BigUInt(1) + (BigUInt(2) * BigUInt(num_counters)
                               << static_cast<size_t>(epsilon_log2)));
  return BigUInt::PowerOfTwo(target.BitLength());
}

}  // namespace psi
