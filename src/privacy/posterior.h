// Theorems 4.2-4.4: the a-posteriori belief f_X(x | Y = y) an observer can
// form about a private integer x in {0..A} after seeing y = r*x, where
// M ~ Z (pdf mu^-2 on [1, inf)) and r ~ U(0, M).
//
// Closed form (Theorem 4.4). With T(j) = sum_{t=j..A} f_X(t)/t,
// psi(j) = 1/T(j) and Psi(x) = sum_{j=1..x} psi(j), the unnormalized
// posterior of x >= 1 given y > 0 is
//   y <= A, x <= y :  f_X(x) * Psi(x) / (x*y)
//   y <= A, x >  y :  f_X(x)/x * [ psi(ceil(y))*(1 - floor(y)/y)
//                                  + Psi(floor(y))/y ]
//   y >  A         :  f_X(x) * Psi(x) / (x*A)
// and f(0 | y>0) = 0 (a positive y rules out x = 0). Note the y > A case is
// independent of y, exactly as the paper remarks. The paper's ratio form is
// not self-normalizing, so Posterior() normalizes over {0..A}; a numerical
// integration of Eq. (7) cross-checks the closed form in the tests.

#ifndef PSI_PRIVACY_POSTERIOR_H_
#define PSI_PRIVACY_POSTERIOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace psi {

/// \brief Posterior-belief calculator for one prior distribution on {0..A}.
class PosteriorAnalyzer {
 public:
  /// \brief Builds the analyzer. `prior[x]` is f_X(x); it is normalized
  /// internally. The effective A is the largest x with prior[x] > 0
  /// (the paper's WLOG).
  [[nodiscard]] static Result<PosteriorAnalyzer> Create(std::vector<double> prior);

  /// \brief f_X(. | Y = y), normalized. Requires y > 0.
  [[nodiscard]] Result<std::vector<double>> Posterior(double y) const;

  /// \brief Eq. (7) by direct numerical integration over mu (substituted to
  /// v = 1/mu), normalized. Cross-validates the closed form.
  [[nodiscard]] Result<std::vector<double>> PosteriorNumerical(double y,
                                                 size_t grid_points) const;

  /// \brief Mean of the prior (the observer's best guess with no y).
  double PriorMean() const;

  /// \brief Mean of an arbitrary distribution on {0..A}.
  static double DistributionMean(const std::vector<double>& dist);

  const std::vector<double>& prior() const { return prior_; }
  size_t bound_a() const { return prior_.size() - 1; }

 private:
  explicit PosteriorAnalyzer(std::vector<double> prior);

  double Psi(size_t x) const { return psi_prefix_[x]; }  // Psi(0) == 0.

  std::vector<double> prior_;       // f_X on {0..A}, trimmed + normalized.
  std::vector<double> tail_;        // tail_[j] = T(j), j in [1, A].
  std::vector<double> psi_;         // psi_[j] = 1/T(j), j in [1, A].
  std::vector<double> psi_prefix_;  // Psi(x) = sum_{j<=x} psi(j).
};

/// \brief Uniform prior on {0..A}.
std::vector<double> UniformPrior(size_t bound_a);

/// \brief The paper's unimodal prior peaking at A/2:
/// f(i) = (i+1)/(1+A/2)^2 for i <= A/2, (A+1-i)/(1+A/2)^2 otherwise.
std::vector<double> UnimodalPrior(size_t bound_a);

}  // namespace psi

#endif  // PSI_PRIVACY_POSTERIOR_H_
