// Textbook RSA with CRT decryption, plus a hybrid (RSA-KEM + ChaCha20) mode.
//
// Protocol 6 has each provider encrypt its Delta_alpha vectors under the
// host's public key so that the relaying provider P1 learns nothing. The
// paper's Table 2 accounts one `z`-bit ciphertext per encrypted integer
// (z = 1024 for RSA); `RsaPublicKey::CiphertextBytes()` reproduces exactly
// that accounting. Deterministic padding-free RSA is malleable and
// deterministic -- acceptable here only because every plaintext is already
// masked/obfuscated upstream; the hybrid mode is the recommended production
// configuration and is benchmarked as ablation A4.

#ifndef PSI_CRYPTO_RSA_H_
#define PSI_CRYPTO_RSA_H_

#include <cstdint>
#include <vector>

#include "bigint/biguint.h"
#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"

namespace psi {

/// \brief RSA public key (n, e).
struct RsaPublicKey {
  BigUInt n;
  BigUInt e;

  /// \brief Bits in the modulus (the `z` of Table 2).
  size_t ModulusBits() const { return n.BitLength(); }

  /// \brief Size of one ciphertext on the wire.
  size_t CiphertextBytes() const { return (ModulusBits() + 7) / 8; }

  /// \brief Serialized public-key size (the |kappa| of Table 2).
  size_t SerializedSize() const {
    return n.SerializedSize() + e.SerializedSize();
  }
};

/// \brief RSA private key with CRT acceleration values.
struct RsaPrivateKey {
  BigUInt n;
  PSI_SECRET BigUInt d;
  PSI_SECRET BigUInt p;
  PSI_SECRET BigUInt q;
  PSI_SECRET BigUInt d_mod_p1;   ///< d mod (p-1)
  PSI_SECRET BigUInt d_mod_q1;   ///< d mod (q-1)
  PSI_SECRET BigUInt q_inv_p;    ///< q^-1 mod p
};

/// \brief Key pair container.
struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

/// \brief Generates an RSA key pair with a `bits`-bit modulus and e = 65537.
[[nodiscard]] Result<RsaKeyPair> RsaGenerateKeyPair(Rng* rng, size_t bits);

/// \brief c = m^e mod n. Requires m < n.
[[nodiscard]] Result<BigUInt> RsaEncrypt(const RsaPublicKey& key, const BigUInt& m);

/// \brief m = c^d mod n via CRT. Requires c < n.
[[nodiscard]] Result<BigUInt> RsaDecrypt(const RsaPrivateKey& key, const BigUInt& c);

/// \brief Hybrid ciphertext: RSA-encapsulated ChaCha20 key + stream payload.
struct HybridCiphertext {
  BigUInt encapsulated_key;      ///< RSA encryption of the session secret.
  std::vector<uint8_t> nonce;    ///< 12-byte stream nonce.
  std::vector<uint8_t> payload;  ///< ChaCha20-encrypted body.

  size_t SerializedSize() const {
    return encapsulated_key.SerializedSize() + nonce.size() + payload.size();
  }
};

/// \brief Encrypts an arbitrary byte string: one RSA operation total
/// (vs one per integer for plain RSA), the Table-2 ablation point.
[[nodiscard]] Result<HybridCiphertext> HybridEncrypt(const RsaPublicKey& key,
                                       const std::vector<uint8_t>& plaintext,
                                       Rng* rng);

/// \brief Inverse of HybridEncrypt.
[[nodiscard]] Result<std::vector<uint8_t>> HybridDecrypt(const RsaPrivateKey& key,
                                           const HybridCiphertext& ct);

}  // namespace psi

#endif  // PSI_CRYPTO_RSA_H_
