#include "crypto/rsa.h"

#include "bigint/modular.h"
#include "bigint/primes.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace psi {

Result<RsaKeyPair> RsaGenerateKeyPair(Rng* rng, size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    return Status::InvalidArgument(
        "RSA modulus must be an even bit count >= 128");
  }
  BigUInt e(65537);
  for (;;) {
    BigUInt p = RandomPrime(rng, bits / 2);
    BigUInt q = RandomPrime(rng, bits / 2);
    // psi-lint: allow(secret-flow) one-time key generation; no attacker-visible interaction has started yet
    if (p == q) continue;
    BigUInt p1 = p - BigUInt(1);
    BigUInt q1 = q - BigUInt(1);
    BigUInt phi = p1 * q1;
    // psi-lint: allow(secret-flow) one-time key generation; no attacker-visible interaction has started yet
    if (!Gcd(e, phi).IsOne()) continue;

    RsaKeyPair kp;
    kp.public_key.n = p * q;
    kp.public_key.e = e;
    PSI_ASSIGN_OR_RETURN(kp.private_key.d, ModInverse(e, phi));
    kp.private_key.n = kp.public_key.n;
    kp.private_key.p = p;
    kp.private_key.q = q;
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    kp.private_key.d_mod_p1 = kp.private_key.d % p1;
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    kp.private_key.d_mod_q1 = kp.private_key.d % q1;
    PSI_ASSIGN_OR_RETURN(kp.private_key.q_inv_p, ModInverse(q, p));
    return kp;
  }
}

Result<BigUInt> RsaEncrypt(const RsaPublicKey& key, const BigUInt& m) {
  if (m >= key.n) return Status::InvalidArgument("RSA plaintext >= modulus");
  return ModPow(m, key.e, key.n);
}

Result<BigUInt> RsaDecrypt(const RsaPrivateKey& key, const BigUInt& c) {
  if (c >= key.n) return Status::InvalidArgument("RSA ciphertext >= modulus");
  // CRT: m_p = c^dP mod p, m_q = c^dQ mod q, recombine via Garner.
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt m_p = ModPow(c % key.p, key.d_mod_p1, key.p);
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt m_q = ModPow(c % key.q, key.d_mod_q1, key.q);
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt h = ModMul(key.q_inv_p, ModSub(m_p, m_q % key.p, key.p), key.p);
  return m_q + h * key.q;
}

Result<HybridCiphertext> HybridEncrypt(const RsaPublicKey& key,
                                       const std::vector<uint8_t>& plaintext,
                                       Rng* rng) {
  if (key.n.BitLength() < 300) {
    return Status::InvalidArgument(
        "hybrid mode needs a modulus >= 300 bits to encapsulate a 256-bit key");
  }
  // KEM: random secret < n; the symmetric key is SHA-256(secret bytes).
  BigUInt secret = BigUInt::RandomBelow(rng, key.n);
  PSI_ASSIGN_OR_RETURN(BigUInt encapsulated, RsaEncrypt(key, secret));

  auto kdf = Sha256::Hash(secret.ToLittleEndianBytes());
  std::array<uint8_t, ChaCha20Cipher::kKeySize> sym_key;
  std::copy(kdf.begin(), kdf.end(), sym_key.begin());

  HybridCiphertext ct;
  ct.encapsulated_key = std::move(encapsulated);
  ct.nonce.resize(ChaCha20Cipher::kNonceSize);
  rng->FillBytes(ct.nonce.data(), ct.nonce.size());
  std::array<uint8_t, ChaCha20Cipher::kNonceSize> nonce_arr;
  std::copy(ct.nonce.begin(), ct.nonce.end(), nonce_arr.begin());

  ChaCha20Cipher cipher(sym_key, nonce_arr);
  ct.payload = cipher.Process(plaintext);
  return ct;
}

Result<std::vector<uint8_t>> HybridDecrypt(const RsaPrivateKey& key,
                                           const HybridCiphertext& ct) {
  if (ct.nonce.size() != ChaCha20Cipher::kNonceSize) {
    return Status::CryptoError("bad hybrid nonce size");
  }
  PSI_ASSIGN_OR_RETURN(BigUInt secret, RsaDecrypt(key, ct.encapsulated_key));
  auto kdf = Sha256::Hash(secret.ToLittleEndianBytes());
  std::array<uint8_t, ChaCha20Cipher::kKeySize> sym_key;
  std::copy(kdf.begin(), kdf.end(), sym_key.begin());
  std::array<uint8_t, ChaCha20Cipher::kNonceSize> nonce_arr;
  std::copy(ct.nonce.begin(), ct.nonce.end(), nonce_arr.begin());
  ChaCha20Cipher cipher(sym_key, nonce_arr);
  return cipher.Process(ct.payload);
}

}  // namespace psi
