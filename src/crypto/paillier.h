// Paillier additively homomorphic encryption.
//
// Not required by the paper's Protocols 1-6, but it powers the extension
// protocol in mpc/homomorphic_sum.h: an alternative realization of secure
// counter aggregation in which the host aggregates provider ciphertexts
// without a third party. Benchmarked against Protocol 2 as an ablation.

#ifndef PSI_CRYPTO_PAILLIER_H_
#define PSI_CRYPTO_PAILLIER_H_

#include "bigint/biguint.h"
#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"

namespace psi {

/// \brief Paillier public key (n, g = n + 1).
struct PaillierPublicKey {
  BigUInt n;
  BigUInt n_squared;

  size_t CiphertextBytes() const { return (n_squared.BitLength() + 7) / 8; }
};

/// \brief Paillier private key (lambda, mu) plus precomputed CRT parameters.
///
/// The CRT block is filled by PaillierGenerateKeyPair and lets
/// PaillierDecryptCrt exponentiate mod p^2 and q^2 (half-size moduli,
/// half-size exponents) instead of mod n^2 — ~3-4x per decryption. Keys
/// deserialized from the legacy wire format lack the block (HasCrt() is
/// false) and decrypt through the classic path.
struct PaillierPrivateKey {
  BigUInt n;
  BigUInt n_squared;
  PSI_SECRET BigUInt lambda;  ///< lcm(p-1, q-1)
  PSI_SECRET BigUInt mu;      ///< (L(g^lambda mod n^2))^-1 mod n

  // -- CRT block (empty when unavailable) -----------------------------------
  PSI_SECRET BigUInt p;          ///< First prime factor of n.
  PSI_SECRET BigUInt q;          ///< Second prime factor.
  PSI_SECRET BigUInt p_squared;  ///< p^2.
  PSI_SECRET BigUInt q_squared;  ///< q^2.
  PSI_SECRET BigUInt hp;  ///< (L_p((n+1)^(p-1) mod p^2))^-1 mod p.
  PSI_SECRET BigUInt hq;  ///< (L_q((n+1)^(q-1) mod q^2))^-1 mod q.
  PSI_SECRET BigUInt q_inv_p;  ///< q^-1 mod p, for Garner recombination.

  /// Key-shape predicate, not key material: the has-CRT bit is serialized
  /// in the clear by WritePaillierPrivateKey, so branching on it is public
  /// metadata (PSI_SANITIZES declassifies the p-derived taint).
  PSI_SANITIZES bool HasCrt() const { return !p.IsZero(); }
};

struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// \brief Generates a key pair with an `bits`-bit modulus n.
[[nodiscard]] Result<PaillierKeyPair> PaillierGenerateKeyPair(Rng* rng, size_t bits);

/// \brief Encrypts m < n: c = (1 + m*n) * r^n mod n^2 with random r.
[[nodiscard]] Result<BigUInt> PaillierEncrypt(const PaillierPublicKey& key, const BigUInt& m,
                                Rng* rng);

/// \brief Pool of precomputed randomizer powers r^n mod n^2.
///
/// The r values are drawn from `rng` in strict sequential program order —
/// the exact byte stream repeated PaillierEncrypt calls would consume — so
/// a pool-backed encryption produces byte-identical ciphertexts to the
/// serial path. Only the pure r^n modular exponentiations (the dominant
/// cost, Table 1 ablation) fan out across the thread pool.
class PaillierRandomizerPool {
 public:
  /// \brief Draws `count` randomizers sequentially from `rng`, then computes
  /// their n-th powers mod n^2 in parallel.
  [[nodiscard]] static Result<PaillierRandomizerPool> Create(const PaillierPublicKey& key,
                                               Rng* rng, size_t count);

  /// \brief Precomputed powers not yet consumed.
  size_t remaining() const { return powers_.size() - next_; }

  /// \brief Pops the next r^n in draw order; FailedPrecondition when empty.
  [[nodiscard]] Result<BigUInt> Next();

 private:
  PaillierRandomizerPool() = default;
  std::vector<BigUInt> powers_;
  size_t next_ = 0;
};

/// \brief Encrypts with a randomizer power taken from `pool` instead of a
/// fresh modular exponentiation. Byte-identical to PaillierEncrypt with the
/// rng the pool was filled from.
[[nodiscard]] Result<BigUInt> PaillierEncryptWithPool(const PaillierPublicKey& key,
                                        const BigUInt& m,
                                        PaillierRandomizerPool* pool);

/// \brief Encrypts a vector of plaintexts: randomizers drawn sequentially
/// from `rng` (same stream as count serial PaillierEncrypt calls), the r^n
/// powers computed in parallel. Ciphertexts are byte-identical to the
/// serial path for every thread count.
[[nodiscard]] Result<std::vector<BigUInt>> PaillierEncryptBatch(
    const PaillierPublicKey& key, const std::vector<BigUInt>& plaintexts,
    Rng* rng);

/// \brief Decrypts: m = L(c^lambda mod n^2) * mu mod n, L(u) = (u-1)/n.
[[nodiscard]] Result<BigUInt> PaillierDecrypt(const PaillierPrivateKey& key,
                                const BigUInt& c);

/// \brief CRT-accelerated decryption: exponentiates mod p^2 and q^2 with
/// exponents p-1 and q-1, recombines via Garner — same result as
/// PaillierDecrypt at ~3-4x the speed (half-size moduli AND half-size
/// exponents). Falls back to PaillierDecrypt when the key lacks the CRT
/// block. Rejects c >= n^2 and (like the classic path) ciphertexts not
/// coprime to n as malformed.
[[nodiscard]] Result<BigUInt> PaillierDecryptCrt(const PaillierPrivateKey& key,
                                   const BigUInt& c);

/// \brief Decrypts a vector, fanning the pure per-ciphertext CRT
/// exponentiations out across the thread pool. Results are index-aligned
/// and identical to serial PaillierDecryptCrt calls.
[[nodiscard]] Result<std::vector<BigUInt>> PaillierDecryptBatch(
    const PaillierPrivateKey& key, const std::vector<BigUInt>& ciphertexts);

/// \brief Serializes a private key. Writes the versioned format (v1) that
/// carries the CRT block; ReadPaillierPrivateKey also accepts the legacy
/// v0 layout (n, lambda, mu — no version byte, no CRT block), yielding a
/// key with HasCrt() == false that still decrypts via the classic path.
void WritePaillierPrivateKey(BinaryWriter* w, const PaillierPrivateKey& key);
[[nodiscard]] Status ReadPaillierPrivateKey(BinaryReader* r, PaillierPrivateKey* out);

/// \brief Homomorphic addition: Dec(AddCiphertexts(c1, c2)) = m1 + m2 mod n.
BigUInt PaillierAddCiphertexts(const PaillierPublicKey& key, const BigUInt& c1,
                               const BigUInt& c2);

/// \brief Homomorphic scalar multiply: Dec(c^k) = k * m mod n.
BigUInt PaillierMultiplyPlain(const PaillierPublicKey& key, const BigUInt& c,
                              const BigUInt& k);

}  // namespace psi

#endif  // PSI_CRYPTO_PAILLIER_H_
