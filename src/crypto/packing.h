// Plaintext slot packing for additively homomorphic counters.
//
// A Paillier plaintext at a 512-bit key carries ~20 useful bits when the
// protocols move one counter per ciphertext: a >50x blowup in wire bits,
// encryptions, homomorphic multiplies and decryptions. PackingCodec
// concatenates k bounded counters into one plaintext, each in a fixed-width
// slot wide enough that slot-wise sums of up to `max_additions` packed
// plaintexts cannot carry into the neighbouring slot:
//
//   slot_bits = BitLength(counter_bound) + ceil(log2(max_additions))
//   k         = floor((plaintext_bits - pad_bits) / slot_bits)
//
// Homomorphic addition of packed ciphertexts then adds all k slots at once,
// and one decryption recovers k counters. The bound is *checked at pack
// time*: a counter above `counter_bound` is a hard error, never silent
// corruption, so a caller that cannot prove its bound must fall back to the
// unpacked path instead.
//
// `pad_bits` reserves the low bits of every plaintext for a caller-supplied
// randomizer (Protocol 6 packs under deterministic RSA, which needs a random
// pad exactly like its per-integer mode). Paillier callers leave it 0.
//
// The codec is pure arithmetic over public parameters — both endpoints of a
// protocol derive the same geometry from the public key size and the public
// counter bound, so no extra negotiation travels on the wire.

#ifndef PSI_CRYPTO_PACKING_H_
#define PSI_CRYPTO_PACKING_H_

#include <cstdint>
#include <vector>

#include "bigint/biguint.h"
#include "common/status.h"

namespace psi {

/// \brief Fixed-geometry codec packing bounded counters into plaintext slots.
class PackingCodec {
 public:
  /// \brief Builds a codec.
  ///
  /// \param plaintext_bits usable bits of one plaintext (use key bits - 1 so
  ///        every packed value stays below the modulus).
  /// \param counter_bound inclusive upper bound of every packed counter.
  /// \param max_additions how many packed plaintexts may be added slot-wise
  ///        (>= 1; the pack itself counts as one).
  /// \param pad_bits low bits reserved per plaintext for a randomizer pad.
  /// \return InvalidArgument when the geometry yields no whole slot.
  [[nodiscard]] static Result<PackingCodec> Create(size_t plaintext_bits,
                                     const BigUInt& counter_bound,
                                     uint64_t max_additions,
                                     size_t pad_bits = 0);

  size_t slot_bits() const { return slot_bits_; }
  size_t slots_per_plaintext() const { return slots_; }
  size_t guard_bits() const { return guard_bits_; }
  size_t pad_bits() const { return pad_bits_; }
  uint64_t max_additions() const { return max_additions_; }
  const BigUInt& counter_bound() const { return counter_bound_; }

  /// \brief Plaintexts needed for `count` counters: ceil(count / k).
  size_t NumPlaintexts(size_t count) const {
    return (count + slots_ - 1) / slots_;
  }

  /// \brief Guard-bit budget check: adding `num_addends` packed plaintexts
  /// slot-wise is safe only while num_addends <= max_additions. Callers
  /// about to fold ciphertexts together must consult this first.
  [[nodiscard]] Status CheckAdditionBudget(uint64_t num_addends) const;

  /// \brief Packs counters into NumPlaintexts(counters.size()) plaintexts.
  /// The last plaintext's tail slots are zero. Returns InvalidArgument on
  /// the first counter above counter_bound (the pack-time bound check).
  [[nodiscard]] Result<std::vector<BigUInt>> Pack(const std::vector<BigUInt>& counters) const;

  /// \brief Pack() plus a caller-drawn pad per plaintext, stored in the low
  /// pad_bits. pads.size() must equal NumPlaintexts(counters.size()); each
  /// pad must fit pad_bits.
  [[nodiscard]] Result<std::vector<BigUInt>> Pack(const std::vector<BigUInt>& counters,
                                    const std::vector<BigUInt>& pads) const;

  /// \brief Convenience overload for native counters.
  [[nodiscard]] Result<std::vector<BigUInt>> Pack(const std::vector<uint64_t>& counters) const;

  /// \brief Recovers `count` slot values (pads are skipped, not returned).
  /// Slot values up to max_additions * counter_bound round-trip exactly;
  /// rejects plaintexts wider than the declared geometry.
  [[nodiscard]] Result<std::vector<BigUInt>> Unpack(const std::vector<BigUInt>& plaintexts,
                                      size_t count) const;

  /// \brief Unpack() narrowed to uint64 (OutOfRange when a slot exceeds it).
  [[nodiscard]] Result<std::vector<uint64_t>> UnpackU64(
      const std::vector<BigUInt>& plaintexts, size_t count) const;

 private:
  PackingCodec() = default;

  size_t plaintext_bits_ = 0;
  size_t slot_bits_ = 0;
  size_t guard_bits_ = 0;
  size_t pad_bits_ = 0;
  size_t slots_ = 0;
  uint64_t max_additions_ = 1;
  BigUInt counter_bound_;
  BigUInt slot_mask_plus_one_;  // 2^slot_bits, for slot extraction.
};

/// \brief ceil(log2(v)) for v >= 1 (0 for v == 1).
size_t CeilLog2(uint64_t v);

}  // namespace psi

#endif  // PSI_CRYPTO_PACKING_H_
