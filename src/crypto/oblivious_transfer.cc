#include "crypto/oblivious_transfer.h"

#include <algorithm>

#include "bigint/modular.h"
#include "common/serialize.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace psi {

namespace {

// Derives a ChaCha20 pad of `len` bytes from a group element.
std::vector<uint8_t> PadFromElement(const BigUInt& element, size_t len) {
  auto digest = Sha256::Hash(element.ToLittleEndianBytes());
  std::array<uint8_t, ChaCha20Cipher::kKeySize> key;
  std::copy(digest.begin(), digest.end(), key.begin());
  std::array<uint8_t, ChaCha20Cipher::kNonceSize> nonce{};  // Single use key.
  ChaCha20Cipher cipher(key, nonce);
  std::vector<uint8_t> pad(len, 0);
  cipher.Process(&pad);
  return pad;
}

// Length-prefix + pad every message to a common size, so ciphertext sizes
// cannot reveal the receiver's choice.
std::vector<std::vector<uint8_t>> PadMessages(
    const std::vector<std::vector<uint8_t>>& messages, size_t* padded_len) {
  size_t max_len = 0;
  for (const auto& m : messages) max_len = std::max(max_len, m.size());
  *padded_len = max_len + 4;  // 4-byte length prefix.
  std::vector<std::vector<uint8_t>> out;
  out.reserve(messages.size());
  for (const auto& m : messages) {
    std::vector<uint8_t> padded(*padded_len, 0);
    auto len32 = static_cast<uint32_t>(m.size());
    padded[0] = static_cast<uint8_t>(len32 & 0xff);
    padded[1] = static_cast<uint8_t>((len32 >> 8) & 0xff);
    padded[2] = static_cast<uint8_t>((len32 >> 16) & 0xff);
    padded[3] = static_cast<uint8_t>((len32 >> 24) & 0xff);
    std::copy(m.begin(), m.end(), padded.begin() + 4);
    out.push_back(std::move(padded));
  }
  return out;
}

[[nodiscard]] Result<std::vector<uint8_t>> UnpadMessage(const std::vector<uint8_t>& padded) {
  if (padded.size() < 4) return Status::CryptoError("OT message too short");
  uint32_t len = static_cast<uint32_t>(padded[0]) |
                 (static_cast<uint32_t>(padded[1]) << 8) |
                 (static_cast<uint32_t>(padded[2]) << 16) |
                 (static_cast<uint32_t>(padded[3]) << 24);
  if (len > padded.size() - 4) {
    return Status::CryptoError("OT message length prefix corrupt");
  }
  return std::vector<uint8_t>(padded.begin() + 4, padded.begin() + 4 + len);
}

}  // namespace

Result<std::vector<std::vector<uint8_t>>> RunObliviousTransfers(
    Network* network, PartyId sender, PartyId receiver,
    const std::vector<std::vector<uint8_t>>& messages,
    const std::vector<size_t>& choices, const RsaKeyPair& sender_keys,
    Rng* sender_rng, Rng* receiver_rng, const std::string& label) {
  const size_t count_n = messages.size();
  if (count_n == 0) return Status::InvalidArgument("no messages to transfer");
  for (size_t b : choices) {
    if (b >= count_n) return Status::InvalidArgument("choice out of range");
  }
  const BigUInt& modulus = sender_keys.public_key.n;
  const size_t num_transfers = choices.size();

  // Round 1: per transfer, N fresh random group elements.
  network->BeginRound(label + "OT.Round1 (S -> R: x vectors)");
  std::vector<std::vector<BigUInt>> xs(num_transfers);
  {
    BinaryWriter w;
    w.WriteVarU64(num_transfers);
    w.WriteVarU64(count_n);
    for (auto& vec : xs) {
      vec.resize(count_n);
      for (auto& x : vec) {
        x = BigUInt::RandomBelow(sender_rng, modulus);
        WriteBigUInt(&w, x);
      }
    }
    PSI_RETURN_NOT_OK(network->Send(sender, receiver, w.TakeBuffer()));
  }
  PSI_ASSIGN_OR_RETURN(auto r1_buf, network->Recv(receiver, sender));
  std::vector<std::vector<BigUInt>> r_xs(num_transfers);
  {
    BinaryReader r(r1_buf);
    uint64_t t, n_msgs;
    PSI_RETURN_NOT_OK(r.ReadVarU64(&t));
    PSI_RETURN_NOT_OK(r.ReadVarU64(&n_msgs));
    if (t != num_transfers || n_msgs != count_n) {
      return Status::ProtocolError("OT round-1 shape mismatch");
    }
    for (auto& vec : r_xs) {
      vec.resize(count_n);
      for (auto& x : vec) PSI_RETURN_NOT_OK(ReadBigUInt(&r, &x));
    }
  }

  // Round 2: receiver blinds its choices: v = x_b + k^e.
  network->BeginRound(label + "OT.Round2 (R -> S: blinded choices)");
  std::vector<BigUInt> secrets(num_transfers);
  {
    BinaryWriter w;
    w.WriteVarU64(num_transfers);
    for (size_t t = 0; t < num_transfers; ++t) {
      secrets[t] = BigUInt::RandomBelow(receiver_rng, modulus);
      PSI_ASSIGN_OR_RETURN(BigUInt k_enc,
                           RsaEncrypt(sender_keys.public_key, secrets[t]));
      BigUInt v = ModAdd(r_xs[t][choices[t]] % modulus, k_enc, modulus);
      WriteBigUInt(&w, v);
    }
    PSI_RETURN_NOT_OK(network->Send(receiver, sender, w.TakeBuffer()));
  }
  PSI_ASSIGN_OR_RETURN(auto r2_buf, network->Recv(sender, receiver));
  std::vector<BigUInt> vs(num_transfers);
  {
    BinaryReader r(r2_buf);
    uint64_t t;
    PSI_RETURN_NOT_OK(r.ReadVarU64(&t));
    if (t != num_transfers) {
      return Status::ProtocolError("OT round-2 shape mismatch");
    }
    for (auto& v : vs) PSI_RETURN_NOT_OK(ReadBigUInt(&r, &v));
  }

  // Round 3: sender encrypts every message under every candidate key.
  size_t padded_len = 0;
  auto padded = PadMessages(messages, &padded_len);
  network->BeginRound(label + "OT.Round3 (S -> R: encrypted messages)");
  {
    BinaryWriter w;
    w.WriteVarU64(num_transfers);
    w.WriteVarU64(count_n);
    w.WriteVarU64(padded_len);
    for (size_t t = 0; t < num_transfers; ++t) {
      for (size_t i = 0; i < count_n; ++i) {
        BigUInt diff = ModSub(vs[t], xs[t][i] % modulus, modulus);
        PSI_ASSIGN_OR_RETURN(BigUInt key_i,
                             RsaDecrypt(sender_keys.private_key, diff));
        auto pad = PadFromElement(key_i, padded_len);
        std::vector<uint8_t> ct = padded[i];
        for (size_t b = 0; b < padded_len; ++b) ct[b] ^= pad[b];
        w.WriteRaw(ct.data(), ct.size());
      }
    }
    PSI_RETURN_NOT_OK(network->Send(sender, receiver, w.TakeBuffer()));
  }

  // Receiver decrypts its chosen slots.
  PSI_ASSIGN_OR_RETURN(auto r3_buf, network->Recv(receiver, sender));
  BinaryReader r(r3_buf);
  uint64_t t_count, n_msgs, plen;
  PSI_RETURN_NOT_OK(r.ReadVarU64(&t_count));
  PSI_RETURN_NOT_OK(r.ReadVarU64(&n_msgs));
  PSI_RETURN_NOT_OK(r.ReadVarU64(&plen));
  if (t_count != num_transfers || n_msgs != count_n) {
    return Status::ProtocolError("OT round-3 shape mismatch");
  }
  std::vector<std::vector<uint8_t>> out;
  out.reserve(num_transfers);
  std::vector<uint8_t> slot(plen);
  for (size_t t = 0; t < num_transfers; ++t) {
    std::vector<uint8_t> chosen;
    for (size_t i = 0; i < count_n; ++i) {
      if (r.remaining() < plen) {
        return Status::ProtocolError("OT round-3 truncated");
      }
      // Consume the slot bytes.
      for (size_t b = 0; b < plen; ++b) {
        uint8_t byte;
        PSI_RETURN_NOT_OK(r.ReadU8(&byte));
        slot[b] = byte;
      }
      if (i == choices[t]) chosen = slot;
    }
    auto pad = PadFromElement(secrets[t], plen);
    for (size_t b = 0; b < plen; ++b) chosen[b] ^= pad[b];
    PSI_ASSIGN_OR_RETURN(auto message, UnpadMessage(chosen));
    out.push_back(std::move(message));
  }
  return out;
}

}  // namespace psi
