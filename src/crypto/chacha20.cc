#include "crypto/chacha20.h"

#include "common/chacha_core.h"

namespace psi {

namespace {

uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20Cipher::ChaCha20Cipher(const std::array<uint8_t, kKeySize>& key,
                               const std::array<uint8_t, kNonceSize>& nonce) {
  for (size_t i = 0; i < 8; ++i) key_words_[i] = LoadLE32(key.data() + 4 * i);
  for (size_t i = 0; i < 3; ++i) {
    nonce_words_[i] = LoadLE32(nonce.data() + 4 * i);
  }
}

void ChaCha20Cipher::Process(std::vector<uint8_t>* data) {
  for (auto& byte : *data) {
    if (pos_ >= 64) {
      internal::ChaCha20Block(key_words_, counter_++, nonce_words_, &block_);
      pos_ = 0;
    }
    byte ^= block_[pos_++];
  }
}

std::vector<uint8_t> ChaCha20Cipher::Process(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> out = data;
  Process(&out);
  return out;
}

}  // namespace psi
