// The shift cipher on timestamps used by Protocol 5's enhanced log
// obfuscation: t -> (t + s) mod frame, with the key s shared by the providers
// of an action class and hidden from the semi-trusted aggregator.

#ifndef PSI_CRYPTO_SHIFT_CIPHER_H_
#define PSI_CRYPTO_SHIFT_CIPHER_H_

#include <cstdint>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/random.h"

namespace psi {

/// \brief Additive cipher over Z_frame.
class ShiftCipher {
 public:
  /// \param key shift amount in [0, frame).
  /// \param frame cyclic frame size (the paper's S' = T + h).
  ShiftCipher(uint64_t key, uint64_t frame) : key_(key % frame), frame_(frame) {
    PSI_CHECK(frame > 0) << "shift cipher frame must be positive";
  }

  /// \brief Samples a uniformly random key for the frame.
  static ShiftCipher Random(Rng* rng, uint64_t frame) {
    return ShiftCipher(rng->UniformU64(frame), frame);
  }

  /// \brief e_s(t) = t + s mod frame. Precondition: t < frame.
  ///
  /// The ciphertext is what the providers hand the semi-trusted aggregator,
  /// so the return value is public by construction (PSI_SANITIZES). The
  /// reduction is branch-free: a branching `shifted >= frame_ ? ... : ...`
  /// would leak key bits through timing.
  PSI_SANITIZES uint64_t Encrypt(uint64_t t) const {
    PSI_DCHECK(t < frame_);
    const uint64_t shifted = t + key_;
    const uint64_t wrap = 0 - static_cast<uint64_t>(shifted >= frame_);
    return shifted - (frame_ & wrap);
  }

  /// \brief Inverse of Encrypt, with the same branch-free reduction. The
  /// plaintext timestamp is the protocol output at the authorized party,
  /// so the return value is likewise declassified.
  PSI_SANITIZES uint64_t Decrypt(uint64_t c) const {
    PSI_DCHECK(c < frame_);
    const uint64_t shifted = c + frame_ - key_;
    const uint64_t wrap = 0 - static_cast<uint64_t>(shifted >= frame_);
    return shifted - (frame_ & wrap);
  }

  uint64_t key() const { return key_; }
  uint64_t frame() const { return frame_; }

 private:
  PSI_SECRET uint64_t key_;
  uint64_t frame_;
};

}  // namespace psi

#endif  // PSI_CRYPTO_SHIFT_CIPHER_H_
