// SHA-256 (FIPS 180-4): used for hash commitments in the joint coin-flipping
// subprotocol and as the KDF of the hybrid encryption mode.

#ifndef PSI_CRYPTO_SHA256_H_
#define PSI_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace psi {

/// \brief Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  /// \brief Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// \brief Finishes and returns the 32-byte digest. The hasher must not be
  /// updated afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  /// \brief One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const std::vector<uint8_t>& data);
  static std::array<uint8_t, kDigestSize> Hash(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// \brief Hex rendering of a digest.
std::string DigestToHex(const std::array<uint8_t, Sha256::kDigestSize>& digest);

}  // namespace psi

#endif  // PSI_CRYPTO_SHA256_H_
