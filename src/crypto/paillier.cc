#include "crypto/paillier.h"

#include "bigint/modular.h"
#include "bigint/montgomery.h"
#include "bigint/primes.h"
#include "common/thread_pool.h"

namespace psi {

namespace {

// The randomizer rejection loop shared by the serial and pooled paths: the
// draw sequence from `rng` must be identical in both, or transcripts would
// depend on which path a protocol took.
BigUInt DrawRandomizer(const PaillierPublicKey& key, Rng* rng) {
  BigUInt r;
  do {
    r = BigUInt::RandomBelow(rng, key.n);
  } while (r.IsZero() || !Gcd(r, key.n).IsOne());
  return r;
}

// r_i^n mod n^2 for every drawn randomizer, fanned out across the pool.
// Pure modular arithmetic over a shared read-only Montgomery context; no
// RNG access, so the fan-out cannot perturb any transcript.
std::vector<BigUInt> RandomizerPowers(const PaillierPublicKey& key,
                                      const std::vector<BigUInt>& rs) {
  std::vector<BigUInt> powers(rs.size());
  auto ctx = MontgomeryContext::Create(key.n_squared);
  if (ctx.ok()) {
    const MontgomeryContext& mont = *ctx;
    ParallelFor(rs.size(),
                [&](size_t i) { powers[i] = mont.Pow(rs[i], key.n); });
  } else {
    for (size_t i = 0; i < rs.size(); ++i) {
      powers[i] = ModPow(rs[i], key.n, key.n_squared);
    }
  }
  return powers;
}

}  // namespace

Result<PaillierKeyPair> PaillierGenerateKeyPair(Rng* rng, size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    return Status::InvalidArgument(
        "Paillier modulus must be an even bit count >= 128");
  }
  for (;;) {
    BigUInt p = RandomPrime(rng, bits / 2);
    BigUInt q = RandomPrime(rng, bits / 2);
    // psi-lint: allow(secret-flow) one-time key generation; no attacker-visible interaction has started yet
    if (p == q) continue;
    BigUInt n = p * q;
    // With |p| == |q|, gcd(n, phi) == 1 holds automatically for distinct
    // primes of equal size, but verify anyway.
    BigUInt p1 = p - BigUInt(1);
    BigUInt q1 = q - BigUInt(1);
    // psi-lint: allow(secret-flow) one-time key generation; no attacker-visible interaction has started yet
    if (!Gcd(n, p1 * q1).IsOne()) continue;

    PaillierKeyPair kp;
    kp.public_key.n = n;
    kp.public_key.n_squared = n * n;
    kp.private_key.n = n;
    kp.private_key.n_squared = kp.public_key.n_squared;
    kp.private_key.lambda = Lcm(p1, q1);
    // With g = n + 1: g^lambda = 1 + lambda*n (mod n^2), so
    // L(g^lambda mod n^2) = lambda mod n and mu = lambda^-1 mod n.
    PSI_ASSIGN_OR_RETURN(kp.private_key.mu,
                         // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
                         ModInverse(kp.private_key.lambda % n, n));
    // CRT block: everything PaillierDecryptCrt needs, computed once here
    // instead of per decryption. With g = n + 1 and n ≡ 0 (mod p):
    // g^(p-1) = 1 + (p-1)n (mod p^2), so L_p(g^(p-1) mod p^2) =
    // ((p-1)n mod p^2)/p and hp is its inverse mod p.
    PaillierPrivateKey& sk = kp.private_key;
    sk.p = p;
    sk.q = q;
    sk.p_squared = p * p;
    sk.q_squared = q * q;
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    BigUInt lp = (p1 * n % sk.p_squared) / p;
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    BigUInt lq = (q1 * n % sk.q_squared) / q;
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    PSI_ASSIGN_OR_RETURN(sk.hp, ModInverse(lp % p, p));
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    PSI_ASSIGN_OR_RETURN(sk.hq, ModInverse(lq % q, q));
    // psi-lint: allow(secret-flow) one-time key generation; timing is not observable on the wire
    PSI_ASSIGN_OR_RETURN(sk.q_inv_p, ModInverse(q % p, p));
    return kp;
  }
}

Result<BigUInt> PaillierEncrypt(const PaillierPublicKey& key, const BigUInt& m,
                                Rng* rng) {
  if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  // g^m mod n^2 with g = n+1 simplifies to 1 + m*n (binomial expansion).
  BigUInt g_m = (BigUInt(1) + m * key.n) % key.n_squared;
  BigUInt r_n = ModPow(DrawRandomizer(key, rng), key.n, key.n_squared);
  return ModMul(g_m, r_n, key.n_squared);
}

Result<PaillierRandomizerPool> PaillierRandomizerPool::Create(
    const PaillierPublicKey& key, Rng* rng, size_t count) {
  if (key.n.IsZero()) {
    return Status::InvalidArgument("Paillier public key has a zero modulus");
  }
  std::vector<BigUInt> rs(count);
  for (auto& r : rs) r = DrawRandomizer(key, rng);
  PaillierRandomizerPool pool;
  pool.powers_ = RandomizerPowers(key, rs);
  return pool;
}

Result<BigUInt> PaillierRandomizerPool::Next() {
  if (next_ >= powers_.size()) {
    return Status::FailedPrecondition("Paillier randomizer pool exhausted");
  }
  return std::move(powers_[next_++]);
}

Result<BigUInt> PaillierEncryptWithPool(const PaillierPublicKey& key,
                                        const BigUInt& m,
                                        PaillierRandomizerPool* pool) {
  if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  BigUInt g_m = (BigUInt(1) + m * key.n) % key.n_squared;
  PSI_ASSIGN_OR_RETURN(BigUInt r_n, pool->Next());
  return ModMul(g_m, r_n, key.n_squared);
}

Result<std::vector<BigUInt>> PaillierEncryptBatch(
    const PaillierPublicKey& key, const std::vector<BigUInt>& plaintexts,
    Rng* rng) {
  for (const auto& m : plaintexts) {
    if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  }
  // All RNG draws happen here, in index order, before anything fans out.
  std::vector<BigUInt> rs(plaintexts.size());
  for (auto& r : rs) r = DrawRandomizer(key, rng);
  std::vector<BigUInt> powers = RandomizerPowers(key, rs);
  std::vector<BigUInt> out(plaintexts.size());
  ParallelFor(plaintexts.size(), [&](size_t i) {
    BigUInt g_m = (BigUInt(1) + plaintexts[i] * key.n) % key.n_squared;
    out[i] = ModMul(g_m, powers[i], key.n_squared);
  });
  return out;
}

Result<BigUInt> PaillierDecrypt(const PaillierPrivateKey& key,
                                const BigUInt& c) {
  if (c >= key.n_squared) {
    return Status::InvalidArgument("Paillier ciphertext >= n^2");
  }
  BigUInt u = ModPow(c, key.lambda, key.n_squared);
  // A well-formed ciphertext satisfies u == 1 (mod n).
  // psi-lint: allow(secret-flow) well-formedness rejection of an attacker-supplied ciphertext; the error status is the intended observable
  if ((u % key.n) != BigUInt(1)) {
    return Status::CryptoError("malformed Paillier ciphertext");
  }
  // psi-lint: allow(secret-flow) L-function division at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt l = (u - BigUInt(1)) / key.n;  // L function.
  // psi-lint: allow(secret-flow) final reduction at the key owner; DESIGN.md's simulated network carries no timing channel
  return ModMul(l % key.n, key.mu, key.n);
}

Result<BigUInt> PaillierDecryptCrt(const PaillierPrivateKey& key,
                                   const BigUInt& c) {
  if (c >= key.n_squared) {
    return Status::InvalidArgument("Paillier ciphertext >= n^2");
  }
  if (!key.HasCrt()) return PaillierDecrypt(key, c);
  // The classic path's well-formedness check (c^lambda ≡ 1 mod n) fails
  // exactly when gcd(c, n) != 1 — for coprime c, Fermat gives c^lambda ≡ 1
  // both mod p and mod q. Test the gcd directly; it is far cheaper than an
  // extra full-width exponentiation.
  if (!Gcd(c % key.n, key.n).IsOne()) {
    return Status::CryptoError("malformed Paillier ciphertext");
  }
  // m_p = L_p(c^(p-1) mod p^2) * hp mod p: the decryption exponent lambda
  // reduces to p-1 in the p-branch (c^(p-1) already kills the randomizer,
  // r^(n(p-1)) = (r^(p(p-1)))^q ≡ 1 mod p^2), so both the modulus and the
  // exponent are half-size.
  BigUInt p1 = key.p - BigUInt(1);
  BigUInt q1 = key.q - BigUInt(1);
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt up = ModPow(c % key.p_squared, p1, key.p_squared);
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt uq = ModPow(c % key.q_squared, q1, key.q_squared);
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt m_p = ModMul((up - BigUInt(1)) / key.p, key.hp, key.p);
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt m_q = ModMul((uq - BigUInt(1)) / key.q, key.hq, key.q);
  // Garner recombination: m = m_q + q * ((m_p - m_q) * q^-1 mod p).
  // psi-lint: allow(secret-flow) CRT decryption at the key owner; DESIGN.md's simulated network carries no timing channel
  BigUInt diff = ModSub(m_p, m_q % key.p, key.p);
  return m_q + key.q * ModMul(diff, key.q_inv_p, key.p);
}

Result<std::vector<BigUInt>> PaillierDecryptBatch(
    const PaillierPrivateKey& key, const std::vector<BigUInt>& ciphertexts) {
  std::vector<BigUInt> out(ciphertexts.size());
  // Pure modular arithmetic per index; ModPow's thread-local Montgomery
  // cache keeps the p^2/q^2 contexts warm inside each worker.
  PSI_RETURN_NOT_OK(
      ParallelForStatus(ciphertexts.size(), [&](size_t i) -> Status {
        PSI_ASSIGN_OR_RETURN(out[i], PaillierDecryptCrt(key, ciphertexts[i]));
        return Status::OK();
      }));
  return out;
}

namespace {

// Private-key wire format v1. The version byte cannot collide with the
// legacy layout, which starts with the varint limb count of n (>= 2 for any
// valid modulus of >= 128 bits).
constexpr uint8_t kPaillierKeyVersion = 1;

// Reads a BigUInt whose leading varint byte was already consumed as `limbs`.
[[nodiscard]] Status ReadBigUIntBody(BinaryReader* r, uint64_t limbs, BigUInt* out) {
  std::vector<uint8_t> bytes(static_cast<size_t>(limbs) * 8);
  for (uint64_t i = 0; i < limbs; ++i) {
    uint64_t limb;
    PSI_RETURN_NOT_OK(r->ReadU64(&limb));
    for (size_t b = 0; b < 8; ++b) {
      bytes[static_cast<size_t>(i) * 8 + b] =
          static_cast<uint8_t>((limb >> (8 * b)) & 0xff);
    }
  }
  *out = BigUInt::FromLittleEndianBytes(bytes);
  return Status::OK();
}

}  // namespace

void WritePaillierPrivateKey(BinaryWriter* w, const PaillierPrivateKey& key) {
  w->WriteU8(kPaillierKeyVersion);
  WriteBigUInt(w, key.n);
  WriteBigUInt(w, key.lambda);
  WriteBigUInt(w, key.mu);
  w->WriteU8(key.HasCrt() ? 1 : 0);
  if (key.HasCrt()) {
    WriteBigUInt(w, key.p);
    WriteBigUInt(w, key.q);
    WriteBigUInt(w, key.hp);
    WriteBigUInt(w, key.hq);
    WriteBigUInt(w, key.q_inv_p);
  }
}

Status ReadPaillierPrivateKey(BinaryReader* r, PaillierPrivateKey* out) {
  *out = PaillierPrivateKey{};
  uint8_t first;
  PSI_RETURN_NOT_OK(r->ReadU8(&first));
  if (first != kPaillierKeyVersion) {
    // Legacy v0 layout: n, lambda, mu with no version byte. `first` is the
    // single-byte varint limb count of n.
    if (first < 2 || first > 127) {
      return Status::SerializationError("unknown Paillier key version");
    }
    PSI_RETURN_NOT_OK(ReadBigUIntBody(r, first, &out->n));
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->lambda));
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->mu));
    out->n_squared = out->n * out->n;
    return Status::OK();  // No CRT block: decrypt via the classic path.
  }
  PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->n));
  PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->lambda));
  PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->mu));
  out->n_squared = out->n * out->n;
  uint8_t has_crt;
  PSI_RETURN_NOT_OK(r->ReadU8(&has_crt));
  if (has_crt == 1) {
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->p));
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->q));
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->hp));
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->hq));
    PSI_RETURN_NOT_OK(ReadBigUInt(r, &out->q_inv_p));
    // psi-lint: allow(secret-flow) consistency check on a key the caller already owns in the clear
    if (out->p.IsZero() || out->q.IsZero() || out->p * out->q != out->n) {
      return Status::SerializationError("Paillier CRT block inconsistent");
    }
    out->p_squared = out->p * out->p;
    out->q_squared = out->q * out->q;
  } else if (has_crt != 0) {
    return Status::SerializationError("bad Paillier CRT presence byte");
  }
  return Status::OK();
}

BigUInt PaillierAddCiphertexts(const PaillierPublicKey& key, const BigUInt& c1,
                               const BigUInt& c2) {
  return ModMul(c1, c2, key.n_squared);
}

BigUInt PaillierMultiplyPlain(const PaillierPublicKey& key, const BigUInt& c,
                              const BigUInt& k) {
  return ModPow(c, k, key.n_squared);
}

}  // namespace psi
