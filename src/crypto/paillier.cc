#include "crypto/paillier.h"

#include "bigint/modular.h"
#include "bigint/primes.h"

namespace psi {

Result<PaillierKeyPair> PaillierGenerateKeyPair(Rng* rng, size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    return Status::InvalidArgument(
        "Paillier modulus must be an even bit count >= 128");
  }
  for (;;) {
    BigUInt p = RandomPrime(rng, bits / 2);
    BigUInt q = RandomPrime(rng, bits / 2);
    if (p == q) continue;
    BigUInt n = p * q;
    // With |p| == |q|, gcd(n, phi) == 1 holds automatically for distinct
    // primes of equal size, but verify anyway.
    BigUInt p1 = p - BigUInt(1);
    BigUInt q1 = q - BigUInt(1);
    if (!Gcd(n, p1 * q1).IsOne()) continue;

    PaillierKeyPair kp;
    kp.public_key.n = n;
    kp.public_key.n_squared = n * n;
    kp.private_key.n = n;
    kp.private_key.n_squared = kp.public_key.n_squared;
    kp.private_key.lambda = Lcm(p1, q1);
    // With g = n + 1: g^lambda = 1 + lambda*n (mod n^2), so
    // L(g^lambda mod n^2) = lambda mod n and mu = lambda^-1 mod n.
    PSI_ASSIGN_OR_RETURN(kp.private_key.mu,
                         ModInverse(kp.private_key.lambda % n, n));
    return kp;
  }
}

Result<BigUInt> PaillierEncrypt(const PaillierPublicKey& key, const BigUInt& m,
                                Rng* rng) {
  if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  // g^m mod n^2 with g = n+1 simplifies to 1 + m*n (binomial expansion).
  BigUInt g_m = (BigUInt(1) + m * key.n) % key.n_squared;
  BigUInt r;
  do {
    r = BigUInt::RandomBelow(rng, key.n);
  } while (r.IsZero() || !Gcd(r, key.n).IsOne());
  BigUInt r_n = ModPow(r, key.n, key.n_squared);
  return ModMul(g_m, r_n, key.n_squared);
}

Result<BigUInt> PaillierDecrypt(const PaillierPrivateKey& key,
                                const BigUInt& c) {
  if (c >= key.n_squared) {
    return Status::InvalidArgument("Paillier ciphertext >= n^2");
  }
  BigUInt u = ModPow(c, key.lambda, key.n_squared);
  // A well-formed ciphertext satisfies u == 1 (mod n).
  if ((u % key.n) != BigUInt(1)) {
    return Status::CryptoError("malformed Paillier ciphertext");
  }
  BigUInt l = (u - BigUInt(1)) / key.n;  // L function.
  return ModMul(l % key.n, key.mu, key.n);
}

BigUInt PaillierAddCiphertexts(const PaillierPublicKey& key, const BigUInt& c1,
                               const BigUInt& c2) {
  return ModMul(c1, c2, key.n_squared);
}

BigUInt PaillierMultiplyPlain(const PaillierPublicKey& key, const BigUInt& c,
                              const BigUInt& k) {
  return ModPow(c, k, key.n_squared);
}

}  // namespace psi
