#include "crypto/paillier.h"

#include "bigint/modular.h"
#include "bigint/montgomery.h"
#include "bigint/primes.h"
#include "common/thread_pool.h"

namespace psi {

namespace {

// The randomizer rejection loop shared by the serial and pooled paths: the
// draw sequence from `rng` must be identical in both, or transcripts would
// depend on which path a protocol took.
BigUInt DrawRandomizer(const PaillierPublicKey& key, Rng* rng) {
  BigUInt r;
  do {
    r = BigUInt::RandomBelow(rng, key.n);
  } while (r.IsZero() || !Gcd(r, key.n).IsOne());
  return r;
}

// r_i^n mod n^2 for every drawn randomizer, fanned out across the pool.
// Pure modular arithmetic over a shared read-only Montgomery context; no
// RNG access, so the fan-out cannot perturb any transcript.
std::vector<BigUInt> RandomizerPowers(const PaillierPublicKey& key,
                                      const std::vector<BigUInt>& rs) {
  std::vector<BigUInt> powers(rs.size());
  auto ctx = MontgomeryContext::Create(key.n_squared);
  if (ctx.ok()) {
    const MontgomeryContext& mont = *ctx;
    ParallelFor(rs.size(),
                [&](size_t i) { powers[i] = mont.Pow(rs[i], key.n); });
  } else {
    for (size_t i = 0; i < rs.size(); ++i) {
      powers[i] = ModPow(rs[i], key.n, key.n_squared);
    }
  }
  return powers;
}

}  // namespace

Result<PaillierKeyPair> PaillierGenerateKeyPair(Rng* rng, size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    return Status::InvalidArgument(
        "Paillier modulus must be an even bit count >= 128");
  }
  for (;;) {
    BigUInt p = RandomPrime(rng, bits / 2);
    BigUInt q = RandomPrime(rng, bits / 2);
    if (p == q) continue;
    BigUInt n = p * q;
    // With |p| == |q|, gcd(n, phi) == 1 holds automatically for distinct
    // primes of equal size, but verify anyway.
    BigUInt p1 = p - BigUInt(1);
    BigUInt q1 = q - BigUInt(1);
    if (!Gcd(n, p1 * q1).IsOne()) continue;

    PaillierKeyPair kp;
    kp.public_key.n = n;
    kp.public_key.n_squared = n * n;
    kp.private_key.n = n;
    kp.private_key.n_squared = kp.public_key.n_squared;
    kp.private_key.lambda = Lcm(p1, q1);
    // With g = n + 1: g^lambda = 1 + lambda*n (mod n^2), so
    // L(g^lambda mod n^2) = lambda mod n and mu = lambda^-1 mod n.
    PSI_ASSIGN_OR_RETURN(kp.private_key.mu,
                         ModInverse(kp.private_key.lambda % n, n));
    return kp;
  }
}

Result<BigUInt> PaillierEncrypt(const PaillierPublicKey& key, const BigUInt& m,
                                Rng* rng) {
  if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  // g^m mod n^2 with g = n+1 simplifies to 1 + m*n (binomial expansion).
  BigUInt g_m = (BigUInt(1) + m * key.n) % key.n_squared;
  BigUInt r_n = ModPow(DrawRandomizer(key, rng), key.n, key.n_squared);
  return ModMul(g_m, r_n, key.n_squared);
}

Result<PaillierRandomizerPool> PaillierRandomizerPool::Create(
    const PaillierPublicKey& key, Rng* rng, size_t count) {
  if (key.n.IsZero()) {
    return Status::InvalidArgument("Paillier public key has a zero modulus");
  }
  std::vector<BigUInt> rs(count);
  for (auto& r : rs) r = DrawRandomizer(key, rng);
  PaillierRandomizerPool pool;
  pool.powers_ = RandomizerPowers(key, rs);
  return pool;
}

Result<BigUInt> PaillierRandomizerPool::Next() {
  if (next_ >= powers_.size()) {
    return Status::FailedPrecondition("Paillier randomizer pool exhausted");
  }
  return std::move(powers_[next_++]);
}

Result<BigUInt> PaillierEncryptWithPool(const PaillierPublicKey& key,
                                        const BigUInt& m,
                                        PaillierRandomizerPool* pool) {
  if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  BigUInt g_m = (BigUInt(1) + m * key.n) % key.n_squared;
  PSI_ASSIGN_OR_RETURN(BigUInt r_n, pool->Next());
  return ModMul(g_m, r_n, key.n_squared);
}

Result<std::vector<BigUInt>> PaillierEncryptBatch(
    const PaillierPublicKey& key, const std::vector<BigUInt>& plaintexts,
    Rng* rng) {
  for (const auto& m : plaintexts) {
    if (m >= key.n) return Status::InvalidArgument("Paillier plaintext >= n");
  }
  // All RNG draws happen here, in index order, before anything fans out.
  std::vector<BigUInt> rs(plaintexts.size());
  for (auto& r : rs) r = DrawRandomizer(key, rng);
  std::vector<BigUInt> powers = RandomizerPowers(key, rs);
  std::vector<BigUInt> out(plaintexts.size());
  ParallelFor(plaintexts.size(), [&](size_t i) {
    BigUInt g_m = (BigUInt(1) + plaintexts[i] * key.n) % key.n_squared;
    out[i] = ModMul(g_m, powers[i], key.n_squared);
  });
  return out;
}

Result<BigUInt> PaillierDecrypt(const PaillierPrivateKey& key,
                                const BigUInt& c) {
  if (c >= key.n_squared) {
    return Status::InvalidArgument("Paillier ciphertext >= n^2");
  }
  BigUInt u = ModPow(c, key.lambda, key.n_squared);
  // A well-formed ciphertext satisfies u == 1 (mod n).
  if ((u % key.n) != BigUInt(1)) {
    return Status::CryptoError("malformed Paillier ciphertext");
  }
  BigUInt l = (u - BigUInt(1)) / key.n;  // L function.
  return ModMul(l % key.n, key.mu, key.n);
}

BigUInt PaillierAddCiphertexts(const PaillierPublicKey& key, const BigUInt& c1,
                               const BigUInt& c2) {
  return ModMul(c1, c2, key.n_squared);
}

BigUInt PaillierMultiplyPlain(const PaillierPublicKey& key, const BigUInt& c,
                              const BigUInt& k) {
  return ModPow(c, k, key.n_squared);
}

}  // namespace psi
