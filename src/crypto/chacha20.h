// ChaCha20 stream cipher (RFC 8439 keystream, no MAC): the symmetric half of
// the hybrid encryption option for Protocol 6's Delta-vector transfer.

#ifndef PSI_CRYPTO_CHACHA20_H_
#define PSI_CRYPTO_CHACHA20_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace psi {

/// \brief Symmetric stream cipher; encryption and decryption are identical.
class ChaCha20Cipher {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  /// \param key 32-byte key.
  /// \param nonce 12-byte nonce; must be unique per key.
  ChaCha20Cipher(const std::array<uint8_t, kKeySize>& key,
                 const std::array<uint8_t, kNonceSize>& nonce);

  /// \brief XORs the keystream into `data` in place.
  void Process(std::vector<uint8_t>* data);

  /// \brief Returns data XOR keystream.
  std::vector<uint8_t> Process(const std::vector<uint8_t>& data);

 private:
  std::array<uint32_t, 8> key_words_;
  std::array<uint32_t, 3> nonce_words_;
  uint32_t counter_ = 1;  // RFC 8439 starts payload keystream at block 1.
  std::array<uint8_t, 64> block_{};
  size_t pos_ = 64;
};

}  // namespace psi

#endif  // PSI_CRYPTO_CHACHA20_H_
