// Hash commitments for the commit-then-reveal joint coin flipping that
// realizes "P1 and P2 jointly generate a random real" in Protocols 3-4.

#ifndef PSI_CRYPTO_COMMITMENT_H_
#define PSI_CRYPTO_COMMITMENT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "crypto/sha256.h"

namespace psi {

/// \brief An opened commitment: the committed value plus blinding randomness.
struct CommitmentOpening {
  std::vector<uint8_t> value;
  std::array<uint8_t, 32> blinding;
};

/// \brief C = SHA-256(blinding || value).
std::array<uint8_t, Sha256::kDigestSize> Commit(const CommitmentOpening& open);

/// \brief Creates an opening with fresh blinding for `value`.
CommitmentOpening MakeOpening(const std::vector<uint8_t>& value, Rng* rng);

/// \brief Verifies that `commitment` opens to `open`.
bool VerifyCommitment(const std::array<uint8_t, Sha256::kDigestSize>& commitment,
                      const CommitmentOpening& open);

}  // namespace psi

#endif  // PSI_CRYPTO_COMMITMENT_H_
