#include "crypto/commitment.h"

namespace psi {

std::array<uint8_t, Sha256::kDigestSize> Commit(const CommitmentOpening& open) {
  Sha256 h;
  h.Update(open.blinding.data(), open.blinding.size());
  h.Update(open.value);
  return h.Finish();
}

CommitmentOpening MakeOpening(const std::vector<uint8_t>& value, Rng* rng) {
  CommitmentOpening open;
  open.value = value;
  rng->FillBytes(open.blinding.data(), open.blinding.size());
  return open;
}

bool VerifyCommitment(const std::array<uint8_t, Sha256::kDigestSize>& commitment,
                      const CommitmentOpening& open) {
  return Commit(open) == commitment;
}

}  // namespace psi
