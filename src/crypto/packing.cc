#include "crypto/packing.h"

namespace psi {

size_t CeilLog2(uint64_t v) {
  size_t bits = 0;
  uint64_t pow = 1;
  while (pow < v) {
    ++bits;
    if (pow > (uint64_t{1} << 62)) break;  // v > 2^63: saturate.
    pow <<= 1;
  }
  return bits;
}

Result<PackingCodec> PackingCodec::Create(size_t plaintext_bits,
                                          const BigUInt& counter_bound,
                                          uint64_t max_additions,
                                          size_t pad_bits) {
  if (counter_bound.IsZero()) {
    return Status::InvalidArgument("packing counter bound must be positive");
  }
  if (max_additions == 0) {
    return Status::InvalidArgument("packing needs max_additions >= 1");
  }
  if (plaintext_bits <= pad_bits) {
    return Status::InvalidArgument("pad leaves no plaintext bits to pack");
  }
  PackingCodec codec;
  codec.plaintext_bits_ = plaintext_bits;
  codec.counter_bound_ = counter_bound;
  codec.max_additions_ = max_additions;
  codec.pad_bits_ = pad_bits;
  codec.guard_bits_ = CeilLog2(max_additions);
  codec.slot_bits_ = counter_bound.BitLength() + codec.guard_bits_;
  codec.slots_ = (plaintext_bits - pad_bits) / codec.slot_bits_;
  if (codec.slots_ == 0) {
    return Status::InvalidArgument(
        "packing slot of " + std::to_string(codec.slot_bits_) +
        " bits does not fit in " + std::to_string(plaintext_bits - pad_bits) +
        " usable plaintext bits");
  }
  codec.slot_mask_plus_one_ = BigUInt::PowerOfTwo(codec.slot_bits_);
  return codec;
}

Status PackingCodec::CheckAdditionBudget(uint64_t num_addends) const {
  if (num_addends > max_additions_) {
    return Status::FailedPrecondition(
        "packed addition budget exhausted: " + std::to_string(num_addends) +
        " addends exceed the declared max of " +
        std::to_string(max_additions_) +
        " (guard bits would overflow into the next slot)");
  }
  return Status::OK();
}

Result<std::vector<BigUInt>> PackingCodec::Pack(
    const std::vector<BigUInt>& counters) const {
  return Pack(counters, std::vector<BigUInt>(NumPlaintexts(counters.size())));
}

Result<std::vector<BigUInt>> PackingCodec::Pack(
    const std::vector<BigUInt>& counters,
    const std::vector<BigUInt>& pads) const {
  const size_t plaintexts = NumPlaintexts(counters.size());
  if (pads.size() != plaintexts) {
    return Status::InvalidArgument("need exactly one pad per plaintext");
  }
  std::vector<BigUInt> out(plaintexts);
  for (size_t p = 0; p < plaintexts; ++p) {
    if (pads[p].BitLength() > pad_bits_) {
      return Status::InvalidArgument("packing pad wider than pad_bits");
    }
    BigUInt packed = pads[p];
    const size_t begin = p * slots_;
    const size_t end =
        begin + slots_ < counters.size() ? begin + slots_ : counters.size();
    for (size_t c = begin; c < end; ++c) {
      if (counters[c] > counter_bound_) {
        return Status::InvalidArgument(
            "counter " + std::to_string(c) +
            " exceeds the declared packing bound " +
            counter_bound_.ToDecimalString() +
            " — fall back to the unpacked path");
      }
      packed += counters[c] << (pad_bits_ + (c - begin) * slot_bits_);
    }
    out[p] = std::move(packed);
  }
  return out;
}

Result<std::vector<BigUInt>> PackingCodec::Pack(
    const std::vector<uint64_t>& counters) const {
  std::vector<BigUInt> big(counters.size());
  for (size_t i = 0; i < counters.size(); ++i) big[i] = BigUInt(counters[i]);
  return Pack(big);
}

Result<std::vector<BigUInt>> PackingCodec::Unpack(
    const std::vector<BigUInt>& plaintexts, size_t count) const {
  if (plaintexts.size() != NumPlaintexts(count)) {
    return Status::InvalidArgument("packed plaintext count mismatch");
  }
  std::vector<BigUInt> out(count);
  for (size_t p = 0; p < plaintexts.size(); ++p) {
    if (plaintexts[p].BitLength() > plaintext_bits_) {
      return Status::InvalidArgument("packed plaintext wider than declared");
    }
    BigUInt rest = plaintexts[p] >> pad_bits_;
    const size_t begin = p * slots_;
    const size_t end = begin + slots_ < count ? begin + slots_ : count;
    for (size_t c = begin; c < end; ++c) {
      out[c] = rest % slot_mask_plus_one_;
      rest >>= slot_bits_;
    }
  }
  return out;
}

Result<std::vector<uint64_t>> PackingCodec::UnpackU64(
    const std::vector<BigUInt>& plaintexts, size_t count) const {
  PSI_ASSIGN_OR_RETURN(auto big, Unpack(plaintexts, count));
  std::vector<uint64_t> out(count);
  for (size_t i = 0; i < count; ++i) {
    PSI_ASSIGN_OR_RETURN(out[i], big[i].ToUint64());
  }
  return out;
}

}  // namespace psi
