#include "crypto/permutation.h"

#include <algorithm>

namespace psi {

SecretPermutation::SecretPermutation(std::vector<size_t> forward)
    : forward_(std::move(forward)), inverse_(forward_.size()) {
  for (size_t i = 0; i < forward_.size(); ++i) inverse_[forward_[i]] = i;
}

SecretPermutation SecretPermutation::Random(Rng* rng, size_t n) {
  return SecretPermutation(rng->Permutation(n));
}

Result<SecretPermutation> SecretPermutation::FromMapping(
    std::vector<size_t> forward) {
  std::vector<bool> seen(forward.size(), false);
  for (size_t v : forward) {
    if (v >= forward.size() || seen[v]) {
      return Status::InvalidArgument("mapping is not a permutation");
    }
    seen[v] = true;
  }
  return SecretPermutation(std::move(forward));
}

SecretInjection SecretInjection::Random(Rng* rng, size_t n, size_t extra) {
  std::vector<size_t> codomain = rng->Permutation(n + extra);
  // The first n slots of a random permutation of the codomain give a uniform
  // random injection.
  std::vector<size_t> image(codomain.begin(),
                            codomain.begin() + static_cast<ptrdiff_t>(n));
  std::vector<size_t> preimage(n + extra, SIZE_MAX);
  for (size_t i = 0; i < n; ++i) preimage[image[i]] = i;
  return SecretInjection(std::move(image), std::move(preimage));
}

std::vector<size_t> SecretInjection::FakeIds() const {
  std::vector<size_t> fakes;
  for (size_t j = 0; j < preimage_.size(); ++j) {
    if (preimage_[j] == SIZE_MAX) fakes.push_back(j);
  }
  return fakes;
}

}  // namespace psi
