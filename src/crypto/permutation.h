// Secret permutations and injections.
//
// Used in two places:
//  * Protocol 4's batched Protocol-2 runs: P1 and P2 permute the counter
//    sequence sent to P3 so any leaked bound cannot be tied to a counter.
//  * Protocol 5's basic obfuscation: providers jointly relabel user ids
//    (a permutation pi of {0..n-1}) and action ids before handing logs to
//    the semi-trusted aggregator.

#ifndef PSI_CRYPTO_PERMUTATION_H_
#define PSI_CRYPTO_PERMUTATION_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"

namespace psi {

/// \brief A permutation of {0, .., n-1} with O(1) apply and invert.
class SecretPermutation {
 public:
  /// \brief Uniformly random permutation (Fisher-Yates under the CSPRNG).
  static SecretPermutation Random(Rng* rng, size_t n);

  /// \brief Wraps an explicit mapping; returns InvalidArgument if `forward`
  /// is not a permutation.
  [[nodiscard]] static Result<SecretPermutation> FromMapping(std::vector<size_t> forward);

  /// \brief pi(i).
  size_t Apply(size_t i) const {
    PSI_DCHECK(i < forward_.size());
    return forward_[i];
  }

  /// \brief pi^-1(j).
  size_t Invert(size_t j) const {
    PSI_DCHECK(j < inverse_.size());
    return inverse_[j];
  }

  size_t size() const { return forward_.size(); }

  /// \brief Permutes a vector: out[pi(i)] = in[i].
  template <typename T>
  std::vector<T> Scatter(const std::vector<T>& in) const {
    PSI_CHECK(in.size() == forward_.size());
    std::vector<T> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[forward_[i]] = in[i];
    return out;
  }

  /// \brief Inverse of Scatter: out[i] = in[pi(i)].
  template <typename T>
  std::vector<T> Gather(const std::vector<T>& in) const {
    PSI_CHECK(in.size() == forward_.size());
    std::vector<T> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[i] = in[forward_[i]];
    return out;
  }

 private:
  explicit SecretPermutation(std::vector<size_t> forward);

  std::vector<size_t> forward_;
  std::vector<size_t> inverse_;
};

/// \brief A random injection {0..n-1} -> {0..n+extra-1}, hiding real ids
/// among `extra` fake ones (Protocol 5's enhanced obfuscation: fake users).
class SecretInjection {
 public:
  static SecretInjection Random(Rng* rng, size_t n, size_t extra);

  size_t Apply(size_t i) const {
    PSI_DCHECK(i < image_.size());
    return image_[i];
  }

  /// \brief Preimage of j, or SIZE_MAX if j is a fake (unmapped) id.
  size_t InvertOrFake(size_t j) const {
    PSI_DCHECK(j < preimage_.size());
    return preimage_[j];
  }

  bool IsFake(size_t j) const { return InvertOrFake(j) == SIZE_MAX; }

  size_t domain_size() const { return image_.size(); }
  size_t codomain_size() const { return preimage_.size(); }

  /// \brief All fake (unmapped) codomain ids, ascending.
  std::vector<size_t> FakeIds() const;

 private:
  SecretInjection(std::vector<size_t> image, std::vector<size_t> preimage)
      : image_(std::move(image)), preimage_(std::move(preimage)) {}

  std::vector<size_t> image_;     // domain -> codomain
  std::vector<size_t> preimage_;  // codomain -> domain or SIZE_MAX
};

}  // namespace psi

#endif  // PSI_CRYPTO_PERMUTATION_H_
