// 1-out-of-N oblivious transfer (Even-Goldreich-Lempel style, RSA-based),
// semi-honest model.
//
// Section 5.1.1 sketches a perfectly arc-hiding variant of Protocol 4: run
// the counter stage for all n^2 - n ordered pairs and let H retrieve the
// masked values for its |E| arcs via |E|-out-of-(n^2 - n) oblivious
// transfer — secure but "extremely prohibitive" (O(|E| n^2) modular
// exponentiations). This module provides the OT primitive and
// mpc/perfect_hiding.h builds that variant so the prohibitive cost can be
// measured instead of taken on faith (ablation A7).
//
// Protocol (per transfer):
//   S -> R : N random group elements x_0..x_{N-1} in Z_n
//   R -> S : v = (x_b + k^e) mod n for random k (b = R's choice)
//   S -> R : for every i, c_i = m_i XOR PRG(SHA-256((v - x_i)^d mod n))
// R decrypts c_b with k; the other pads require d. S sees only the uniform
// v. Messages are padded to a common length so |m_i| cannot leak b.

#ifndef PSI_CRYPTO_OBLIVIOUS_TRANSFER_H_
#define PSI_CRYPTO_OBLIVIOUS_TRANSFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/rsa.h"
#include "net/network.h"

namespace psi {

/// \brief Runs `choices.size()` independent 1-out-of-N transfers of the
/// same message vector (the "k-out-of-N" shape of Section 5.1.1), over
/// three metered communication rounds.
///
/// \param messages the sender's N byte strings (padded internally).
/// \param choices the receiver's indices into `messages`.
/// \param sender_keys an RSA key pair owned by the sender.
/// \return the chosen messages, in choice order (receiver output).
[[nodiscard]] Result<std::vector<std::vector<uint8_t>>> RunObliviousTransfers(
    Network* network, PartyId sender, PartyId receiver,
    const std::vector<std::vector<uint8_t>>& messages,
    const std::vector<size_t>& choices, const RsaKeyPair& sender_keys,
    Rng* sender_rng, Rng* receiver_rng, const std::string& label);

}  // namespace psi

#endif  // PSI_CRYPTO_OBLIVIOUS_TRANSFER_H_
