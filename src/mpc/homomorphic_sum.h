// Extension protocol (not in the paper): Paillier-based share aggregation.
//
// An alternative realization of Protocol 1's outcome that trades the
// O(m^2) pairwise share exchange for 2m - 2 messages using additively
// homomorphic encryption:
//   1. P1 publishes a Paillier public key.
//   2. Every P_k (k >= 3) encrypts its counter vector and sends it to P2.
//   3. P2 homomorphically adds everything, its own inputs, and a random
//      mask vector rho, and sends the aggregate ciphertexts to P1.
//   4. P1 decrypts, obtaining s1 = (sum x_k + rho) mod N; P2 keeps
//      s2 = -rho mod N. Then s1 + s2 == sum x_k (mod N).
//
// P1 sees only the masked sum (uniform in Z_N); P2 and the others see only
// ciphertexts. The share modulus S is the Paillier modulus N. Benchmarked
// against Protocol 1 as an ablation (message count and CPU trade-off).
//
// **Packed mode** (config.counter_bound set): when every input counter is
// bounded by a public constant B, each player packs
// k = floor((|N| - 1) / slot_bits) counters per plaintext
// (crypto/packing.h), so every encryption, homomorphic addition,
// decryption, and wire ciphertext carries k counters at once — ~k x less
// compute and traffic. P2's mask becomes per-slot: rho_c uniform in
// [0, B * m * 2^eps), giving statistical hiding with distance <= 2^-eps
// (the same Theorem 4.1 style bound the share modulus S already uses)
// instead of the unpacked path's perfect mask; eps defaults to 40, matching
// Protocol4Config::epsilon_log2. Because the masked slot sums never wrap,
// packed runs can also produce *integer* shares (s1 + s2 == x over Z, s2
// <= 0), which is exactly what Protocol 4's masking pipeline consumes.
// When a bound cannot be proven for the inputs — or no whole slot fits —
// Run() transparently falls back to the unpacked path.

#ifndef PSI_MPC_HOMOMORPHIC_SUM_H_
#define PSI_MPC_HOMOMORPHIC_SUM_H_

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"
#include "mpc/shares.h"
#include "net/network.h"

namespace psi {

/// \brief Parameters of the Paillier aggregation (public to all players).
struct HomomorphicSumConfig {
  size_t paillier_bits = 512;  ///< Modulus size |N|.
  /// Public inclusive bound B on every player's counters. Set => packed
  /// mode (with automatic fallback); nullopt => classic one-counter-per-
  /// ciphertext aggregation.
  std::optional<BigUInt> counter_bound;
  /// Per-slot statistical-mask headroom: P1's view of each slot leaks at
  /// most 2^-eps (Theorem 4.1 style). Costs eps bits of slot width.
  uint64_t packing_epsilon_log2 = 40;
};

/// \brief The packing geometry the protocol derives from public data: the
/// key size, the counter bound, the player count, and the mask headroom.
/// Slot values must hold (m - 1) ciphertext addends of up to mask_bound + B
/// each, so max_additions = m. Returns InvalidArgument when no whole slot
/// fits the plaintext (callers then use the unpacked path).
[[nodiscard]] Result<PackingCodec> HomomorphicSumPackedCodec(size_t plaintext_bits,
                                               const BigUInt& counter_bound,
                                               size_t num_players,
                                               uint64_t epsilon_log2);

/// \brief Paillier-based batched share aggregation.
class HomomorphicSumProtocol {
 public:
  /// \param players protocol order (P1 holds the key, P2 holds the mask).
  HomomorphicSumProtocol(Network* network, std::vector<PartyId> players,
                         HomomorphicSumConfig config);

  /// \brief Legacy signature: unpacked aggregation at `paillier_bits`.
  HomomorphicSumProtocol(Network* network, std::vector<PartyId> players,
                         size_t paillier_bits);

  /// \brief Runs the batched aggregation; three communication rounds.
  /// Packed when config.counter_bound is set, every input obeys it, and a
  /// slot fits; silently unpacked otherwise (check last_run_packed()).
  [[nodiscard]] Result<BatchedModularShares> Run(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  /// \brief Packed-only variant returning *integer* shares: s1 + s2 == x
  /// exactly over the integers (s2 <= 0), the contract Protocol 4's
  /// share-masking stage needs. FailedPrecondition when the counter bound
  /// is unset, cannot be proven for the inputs, or no slot fits — callers
  /// fall back to Protocol 2 in that case.
  [[nodiscard]] Result<BatchedIntegerShares> RunInteger(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  /// \brief The share modulus (Paillier N) of the last run.
  const BigUInt& modulus() const { return modulus_; }

  /// \brief Whether the last Run()/RunInteger() used packed ciphertexts.
  bool last_run_packed() const { return last_run_packed_; }

  /// \brief Counters per ciphertext of the last run (1 when unpacked).
  size_t last_run_slots() const { return last_run_slots_; }

  /// \brief Public-key operations of the last run: keygen + encryptions +
  /// homomorphic additions + decryptions. Feeds the session layer's
  /// crypto-op ledger (mpc/session.h), which is how the chaos harness
  /// proves stage-resume recomputes nothing.
  uint64_t last_run_crypto_ops() const { return last_run_crypto_ops_; }

 private:
  // The packed wire protocol: returns, per counter, the recombined value
  // sum_k x_k + rho_c (exact over Z) and P2's masks rho_c.
  struct PackedOutcome {
    std::vector<BigUInt> masked;  // sum of all inputs + rho, per counter.
    std::vector<BigUInt> rho;     // P2's per-slot masks.
  };
  // The protocol bodies; the public entries drain mailboxes on error.
  [[nodiscard]] Result<BatchedModularShares> RunImpl(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);
  [[nodiscard]] Result<BatchedIntegerShares> RunIntegerImpl(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  [[nodiscard]] Result<PackedOutcome> RunPacked(
      const PaillierKeyPair& keys, const PackingCodec& codec,
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  [[nodiscard]] Result<BatchedModularShares> RunUnpacked(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  [[nodiscard]] Result<BatchedModularShares> RunUnpacked(
      const PaillierKeyPair& keys,
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  [[nodiscard]] Status ValidateInputs(const std::vector<std::vector<uint64_t>>& inputs,
                        const std::vector<Rng*>& player_rngs) const;

  // True when a bound is configured, all inputs obey it, and a slot fits.
  bool PackingApplies(const std::vector<std::vector<uint64_t>>& inputs) const;

  Network* network_;
  std::vector<PartyId> players_;
  HomomorphicSumConfig config_;
  BigUInt modulus_;
  bool last_run_packed_ = false;
  size_t last_run_slots_ = 1;
  uint64_t last_run_crypto_ops_ = 0;
};

}  // namespace psi

#endif  // PSI_MPC_HOMOMORPHIC_SUM_H_
