// Extension protocol (not in the paper): Paillier-based share aggregation.
//
// An alternative realization of Protocol 1's outcome that trades the
// O(m^2) pairwise share exchange for 2m - 2 messages using additively
// homomorphic encryption:
//   1. P1 publishes a Paillier public key.
//   2. Every P_k (k >= 3) encrypts its counter vector and sends it to P2.
//   3. P2 homomorphically adds everything, its own inputs, and a random
//      mask vector rho, and sends the aggregate ciphertexts to P1.
//   4. P1 decrypts, obtaining s1 = (sum x_k + rho) mod N; P2 keeps
//      s2 = -rho mod N. Then s1 + s2 == sum x_k (mod N).
//
// P1 sees only the masked sum (uniform in Z_N); P2 and the others see only
// ciphertexts. The share modulus S is the Paillier modulus N. Benchmarked
// against Protocol 1 as an ablation (message count and CPU trade-off).

#ifndef PSI_MPC_HOMOMORPHIC_SUM_H_
#define PSI_MPC_HOMOMORPHIC_SUM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/paillier.h"
#include "mpc/shares.h"
#include "net/network.h"

namespace psi {

/// \brief Paillier-based batched share aggregation.
class HomomorphicSumProtocol {
 public:
  /// \param players protocol order (P1 holds the key, P2 holds the mask).
  HomomorphicSumProtocol(Network* network, std::vector<PartyId> players,
                         size_t paillier_bits);

  /// \brief Runs the batched aggregation; three communication rounds.
  Result<BatchedModularShares> Run(
      const std::vector<std::vector<uint64_t>>& inputs,
      const std::vector<Rng*>& player_rngs, const std::string& label_prefix);

  /// \brief The share modulus (Paillier N) of the last run.
  const BigUInt& modulus() const { return modulus_; }

 private:
  Network* network_;
  std::vector<PartyId> players_;
  size_t paillier_bits_;
  BigUInt modulus_;
};

}  // namespace psi

#endif  // PSI_MPC_HOMOMORPHIC_SUM_H_
